//! Every numbered example and quantitative claim of the paper, end to end.
//!
//! Each test names the paper artifact it reproduces; `EXPERIMENTS.md`
//! indexes them.

use cfmap::prelude::*;

/// Example 2.1: the 4-D algorithm with T of Equation 2.8 — γ₁, γ₂ are
/// feasible conflict vectors, γ₃ is non-feasible, [2,0,−2,0] is not a
/// conflict vector at all, and T is not conflict-free.
#[test]
fn example_2_1() {
    let j = IndexSet::cube(4, 6);
    let t = MappingMatrix::from_rows(&[&[1, 7, 1, 1], &[1, 7, 1, 0]]);
    let g1 = IVec::from_i64s(&[0, 1, -7, 0]);
    let g2 = IVec::from_i64s(&[7, -1, 0, 0]);
    let g3 = IVec::from_i64s(&[1, 0, -1, 0]);
    let not_primitive = IVec::from_i64s(&[2, 0, -2, 0]);

    for g in [&g1, &g2, &g3, &not_primitive] {
        assert!(t.as_mat().mul_vec(g).is_zero(), "Tγ = 0 required");
    }
    assert!(g1.is_primitive() && g2.is_primitive() && g3.is_primitive());
    assert!(!not_primitive.is_primitive());
    assert_eq!(feasibility(&g1, &j), Feasibility::Feasible);
    assert_eq!(feasibility(&g2, &j), Feasibility::Feasible);
    assert_eq!(feasibility(&g3, &j), Feasibility::NonFeasible);

    // "Therefore, T is not conflict-free." — by all three deciders.
    let analysis = ConflictAnalysis::new(&t, &j);
    assert!(!analysis.is_conflict_free_exact());
    assert!(!oracle::is_conflict_free_by_enumeration(&t, &j));
    let report = Simulator::new(&algorithms::example_2_1(), &t).run().unwrap();
    assert!(!report.conflicts.is_empty());
}

/// Theorem 2.2 on the Figure 1 instance, both directions.
#[test]
fn theorem_2_2_figure_1() {
    let j = IndexSet::new(&[4, 4]);
    // Non-feasible γ₁ = [1,1]: exhibit the witness pair.
    let g1 = IVec::from_i64s(&[1, 1]);
    assert_eq!(feasibility(&g1, &j), Feasibility::NonFeasible);
    assert!(j.iter().any(|p| j.contains_offset(&p, &g1)));
    // Feasible γ₂ = [3,5]: no pair anywhere.
    let g2 = IVec::from_i64s(&[3, 5]);
    assert_eq!(feasibility(&g2, &j), Feasibility::Feasible);
    assert!(j.iter().all(|p| !j.contains_offset(&p, &g2)));
}

/// Example 3.1 / Equation 3.5: the symbolic conflict vector of the matmul
/// mapping and its rank condition.
#[test]
fn example_3_1() {
    let j = IndexSet::cube(3, 4);
    for pi in [[1i64, 4, 1], [2, 1, 4], [3, 2, 5]] {
        let t = MappingMatrix::from_rows(&[&[1, 1, -1], &pi]);
        let analysis = ConflictAnalysis::new(&t, &j);
        let gamma = analysis.conflict_vector_eq_3_2().expect("B nonsingular");
        let raw = IVec::from_i64s(&[-(pi[1] + pi[2]), pi[0] + pi[2], pi[0] - pi[1]]);
        assert_eq!(gamma, raw.primitive_part().unwrap());
        // "T·γ = −d̄₃-direction": γ is in the kernel.
        assert!(t.as_mat().mul_vec(&gamma).is_zero());
        // rank(T) = 2 whenever some entry of the formula is nonzero.
        assert!(t.has_full_rank());
    }
}

/// Example 3.2 / Equation 3.7: the transitive-closure conflict vector.
#[test]
fn example_3_2() {
    let j = IndexSet::cube(3, 4);
    let t = MappingMatrix::from_rows(&[&[0, 0, 1], &[5, 1, 1]]);
    let analysis = ConflictAnalysis::new(&t, &j);
    let gamma = analysis.conflict_vector_eq_3_2().unwrap();
    // γ ∝ [π₂, −π₁, 0] = [1, −5, 0].
    assert_eq!(gamma, IVec::from_i64s(&[1, -5, 0]));
}

/// Example 4.1: two feasible conflict vectors whose rational combination
/// is a non-feasible conflict vector — the motivation for the Hermite
/// (integral-combination) representation.
#[test]
fn example_4_1() {
    let j = IndexSet::cube(4, 6);
    let g1 = IVec::from_i64s(&[0, 1, -7, 0]);
    let g2 = IVec::from_i64s(&[7, -1, 0, 0]);
    // γ = (γ₁ + γ₂)/7 — integral, primitive, non-feasible.
    let sum = &g1 + &g2;
    let g = sum.primitive_part().unwrap();
    assert_eq!(g, IVec::from_i64s(&[1, 0, -1, 0]));
    assert_eq!(feasibility(&g, &j), Feasibility::NonFeasible);
    assert_eq!(feasibility(&g1, &j), Feasibility::Feasible);
    assert_eq!(feasibility(&g2, &j), Feasibility::Feasible);
}

/// Example 4.2: the Hermite normal form of the Eq 2.8 mapping — the
/// paper's stated H, U, V verify, and our hand-rolled HNF produces an
/// equivalent decomposition.
#[test]
fn example_4_2() {
    let t = IMat::from_rows(&[&[1, 7, 1, 1], &[1, 7, 1, 0]]);
    let u_paper = IMat::from_rows(&[
        &[1, -1, -1, -7],
        &[0, 0, 0, 1],
        &[0, 0, 1, 0],
        &[0, 1, 0, 0],
    ]);
    let v_paper = IMat::from_rows(&[
        &[1, 7, 1, 1],
        &[0, 0, 0, 1],
        &[0, 0, 1, 0],
        &[0, 1, 0, 0],
    ]);
    // TU = H = [[1,0,0,0],[1,−1,0,0]], U unimodular, V = U⁻¹.
    let h = &t * &u_paper;
    assert_eq!(h, IMat::from_rows(&[&[1, 0, 0, 0], &[1, -1, 0, 0]]));
    assert!(u_paper.is_unimodular());
    assert_eq!(&u_paper * &v_paper, IMat::identity(4));

    // Our HNF: same defining properties, same kernel lattice.
    let ours = hermite_normal_form(&t);
    assert_eq!(ours.rank, 2);
    assert_eq!(&(&t * &ours.u), &ours.h);
    assert!(ours.u.is_unimodular());
    // The paper's kernel columns are integral combinations of ours.
    for c in [2usize, 3] {
        let beta = ours.v().mul_vec(&u_paper.col(c));
        assert!(beta[0].is_zero() && beta[1].is_zero());
    }
}

/// Example 5.1: optimal matmul design — objective, time formula,
/// buffers, conflict-freedom, link-collision-freedom, and the claim that
/// the [23] baseline needs one more buffer and four more cycles (μ = 4).
#[test]
fn example_5_1_complete() {
    let mu = 4i64;
    let alg = algorithms::matmul(mu);
    let s = SpaceMap::row(&[1, 1, -1]);
    let prims = InterconnectionPrimitives::from_columns(&[&[1], &[1], &[-1]]);

    let opt = Procedure51::new(&alg, &s).primitives(&prims).solve().unwrap().expect_optimal("solvable");
    assert_eq!(opt.total_time, mu * (mu + 2) + 1);
    let routing = opt.routing.unwrap();
    assert_eq!(routing.total_buffers(), Int::from(3));
    assert!(routing.is_collision_free_by_k());

    // The paper's own Π₂ = [1, μ, 1] is an optimum too.
    let paper_mapping = MappingMatrix::new(s.clone(), LinearSchedule::new(&[1, mu, 1]));
    assert!(oracle::is_conflict_free_by_enumeration(&paper_mapping, &alg.index_set));
    assert_eq!(paper_mapping.schedule().total_time(&alg.index_set), opt.total_time);

    // Baseline [23].
    let base = baselines::matmul_baseline_23(mu);
    assert_eq!(base.total_time(&alg), mu * (mu + 3) + 1);
    let base_routing = route(&base.mapping(), &alg.deps, &prims).unwrap();
    assert_eq!(base_routing.total_buffers(), Int::from(4));

    // Simulated, both clean; optimal faster by exactly μ cycles.
    let r_opt = Simulator::new(&alg, &opt.mapping).with_routing(&routing).run().unwrap();
    let bm = base.mapping();
    let r_base = Simulator::new(&alg, &bm).with_routing(&base_routing).run().unwrap();
    assert!(r_opt.is_clean() && r_base.is_clean());
    assert_eq!(r_base.makespan() - r_opt.makespan(), mu);
}

/// Example 5.2: optimal transitive-closure design vs the [22] heuristic.
#[test]
fn example_5_2_complete() {
    for mu in 2..=5i64 {
        let alg = algorithms::transitive_closure(mu);
        let s = SpaceMap::row(&[0, 0, 1]);
        let opt = Procedure51::new(&alg, &s).solve().unwrap().expect_optimal("solvable");
        assert_eq!(opt.schedule.as_slice(), &[mu + 1, 1, 1], "μ = {mu}");
        assert_eq!(opt.total_time, mu * (mu + 3) + 1);

        // Conflict vector γ = [1, −(μ+1), 0] (the paper's, canonicalized).
        let analysis = ConflictAnalysis::new(&opt.mapping, &alg.index_set);
        let gamma = analysis.unique_conflict_vector().unwrap();
        assert_eq!(gamma.to_i64s().unwrap(), vec![1, -(mu + 1), 0]);

        // Improvement over [22]: μ(2μ+3)+1 → μ(μ+3)+1.
        let base = baselines::transitive_closure_baseline_22(mu);
        assert_eq!(base.total_time(&alg) - opt.total_time, mu * mu);
    }
}

/// Section 5's complexity remark made concrete: the candidate space
/// Procedure 5.1 wades through grows quickly with the objective cap, while
/// the closed-form conflict test needs no index-point enumeration at all.
#[test]
fn procedure_5_1_candidate_growth() {
    let alg = algorithms::matmul(4);
    let s = SpaceMap::row(&[1, 1, -1]);
    let p = Procedure51::new(&alg, &s);
    let counts: Vec<u64> = [8, 16, 24, 32].iter().map(|&c| p.count_candidates(c)).collect();
    assert!(counts.windows(2).all(|w| w[0] < w[1]));
}

/// Extension finding (Problem 6.2): freeing the space map improves the
/// transitive closure beyond the paper's fixed-S design — `S = [1, −1, 0]`
/// with `Π = [4, 1, 1]` achieves `t = 25 < μ(μ+3)+1 = 29` at μ = 4,
/// conflict-free by every decider.
#[test]
fn transitive_closure_joint_design_beats_paper_fixed_s() {
    let mu = 4;
    let alg = algorithms::transitive_closure(mu);
    let t = MappingMatrix::from_rows(&[&[1, -1, 0], &[4, 1, 1]]);
    assert!(t.schedule().is_valid_for(&alg.deps));
    assert!(t.has_full_rank());
    assert!(oracle::is_conflict_free_by_enumeration(&t, &alg.index_set));
    let report = Simulator::new(&alg, &t).run().unwrap();
    assert!(report.conflicts.is_empty());
    assert_eq!(report.makespan(), 25);
    assert!(report.makespan() < mu * (mu + 3) + 1);
}

/// The appendix's rejected candidate: Π₁ = [1, 1, μ] has the non-feasible
/// (after gcd reduction) conflict vector — all three deciders agree.
#[test]
fn appendix_pi1_rejection() {
    let mu = 4;
    let alg = algorithms::matmul(mu);
    let t = MappingMatrix::from_rows(&[&[1, 1, -1], &[1, 1, mu]]);
    let analysis = ConflictAnalysis::new(&t, &alg.index_set);
    assert!(!analysis.is_conflict_free_exact());
    assert!(!oracle::is_conflict_free_by_enumeration(&t, &alg.index_set));
    assert!(!Simulator::new(&alg, &t).run().unwrap().conflicts.is_empty());
}
