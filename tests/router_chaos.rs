//! Multi-process router chaos: a real 3-backend `cfmapd` fleet behind an
//! in-process `cfmapd-router`, disrupted by a seeded
//! [`cfmap_testkit::fault::FleetPlan`] — one backend SIGKILLed mid-burst
//! (plus, seed permitting, a stalled survivor). The invariants under
//! test are the router's whole contract:
//!
//! * every request in the burst gets a *well-formed* answer — a `200`
//!   mapping or a `503` + `Retry-After` — never a hang or a bare RST;
//! * the dead backend's circuit opens, and after the backend restarts on
//!   the same port it recovers through a half-open probe;
//! * identical canonical keys keep landing on the same surviving
//!   backend (cache affinity survives the failover).
//!
//! Every random choice flows from a hardcoded seed, and the scenario is
//! replayed three times end to end: a failure here reproduces from the
//! seed printed in the assertion message.

use cfmap::service::client::{self, Client, ClientConfig};
use cfmap::service::json::{parse, Json};
use cfmap::service::router::{CfmapRouter, RouterConfig};
use cfmap::service::wire::{MapRequest, MapResponse, RouterReject, RouterRejectKind};
use cfmap_testkit::fault::{run_action, FaultAction, FleetEvent, FleetPlan};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::str::FromStr;
use std::time::{Duration, Instant};

/// One `cfmapd` backend process; killed on drop unless stopped.
struct BackendProc {
    child: Child,
    addr: String,
}

impl BackendProc {
    /// Spawn on an ephemeral port and parse the resolved address.
    fn spawn() -> BackendProc {
        BackendProc::spawn_at("127.0.0.1:0")
    }

    /// Spawn on a fixed address — how a killed backend comes back on the
    /// port the router still has on its ring.
    fn spawn_at(addr: &str) -> BackendProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_cfmapd"))
            .args(["--addr", addr, "--workers", "2", "--enable-fault-injection"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("cfmapd spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut first_line = String::new();
        BufReader::new(stdout).read_line(&mut first_line).expect("startup line");
        let addr = first_line
            .trim()
            .strip_prefix("cfmapd listening on ")
            .unwrap_or_else(|| panic!("unexpected startup line {first_line:?}"))
            .to_string();
        BackendProc { child, addr }
    }

    /// SIGKILL — no drain, no goodbye; pooled connections die with RSTs.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    fn stop(mut self) {
        let _ = client::post(&self.addr, "/shutdown", "");
        let status = self.child.wait().expect("cfmapd exits");
        assert!(status.success(), "cfmapd exited with {status:?}");
        std::mem::forget(self); // disarm the Drop kill
    }
}

impl Drop for BackendProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The in-process router plus the thread running its serve loop.
struct RouterProc {
    addr: String,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
}

/// Chaos-tuned router: fast probes and cooldowns so circuit transitions
/// happen within the test's patience, budget enough to walk the whole
/// 3-backend ring.
fn start_router(backends: &[String]) -> RouterProc {
    let config = RouterConfig {
        addr: "127.0.0.1:0".into(),
        backends: backends.to_vec(),
        workers: 4,
        health_interval: Duration::from_millis(200),
        failure_threshold: 2,
        open_cooldown: Duration::from_millis(300),
        failover_budget: 2,
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_secs(10),
        ..RouterConfig::default()
    };
    let router = CfmapRouter::bind(&config).expect("router binds");
    let addr = router.local_addr().expect("router addr").to_string();
    let handle = std::thread::spawn(move || router.run());
    RouterProc { addr, handle }
}

fn stop_router(router: RouterProc) {
    let _ = client::post(&router.addr, "/shutdown", "");
    router.handle.join().expect("router thread").expect("router serve loop");
}

/// Distinct canonical keys: matmul at distinct problem sizes.
fn key_request(mu: i64) -> MapRequest {
    MapRequest::named("matmul", mu, vec![vec![1, 1, -1]])
}

/// Poll `check` every 20 ms until it passes or `patience` runs out.
fn wait_until(patience: Duration, mut check: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + patience;
    loop {
        if check() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// `(up, circuit)` of one backend as reported by the router's
/// `GET /backends`.
fn backend_state(router_addr: &str, backend_addr: &str) -> Option<(bool, String)> {
    let body = client::get(router_addr, "/backends").ok()?.body;
    let json = parse(&body).ok()?;
    json.get("backends")?.as_arr()?.iter().find_map(|b| {
        if b.get("addr").and_then(Json::as_str) == Some(backend_addr) {
            Some((
                b.get("up").and_then(Json::as_bool)?,
                b.get("circuit").and_then(Json::as_str)?.to_string(),
            ))
        } else {
            None
        }
    })
}

/// Scrape the router's `/metrics` and return the value of the series
/// whose line starts with `name` and (when given) carries the
/// `backend="<addr>"` label.
fn router_metric(router_addr: &str, name: &str, backend: Option<&str>) -> Option<i64> {
    let text = client::get(router_addr, "/metrics").ok()?.body;
    text.lines()
        .filter(|l| l.starts_with(name))
        .find(|l| match backend {
            Some(addr) => l.contains(&format!("backend=\"{addr}\"")),
            None => l[name.len()..].starts_with(' '),
        })
        .and_then(|l| l.rsplit(' ').next()?.trim().parse().ok())
}

/// One full scenario: boot the fleet, replay the seeded burst with its
/// mid-burst kill, then restart the victim and watch the circuit heal.
fn run_kill_recover_scenario(seed: u64, run: usize) {
    let plan = FleetPlan::from_seed(seed, 3, 45);
    let victim_idx = plan.killed_backend();
    let kill_at = plan.kill_offset();
    let ctx = |i: usize| format!("seed {seed:#x} run {run} request {i}");

    let mut fleet: Vec<BackendProc> = (0..plan.backends).map(|_| BackendProc::spawn()).collect();
    let addrs: Vec<String> = fleet.iter().map(|b| b.addr.clone()).collect();
    let victim_addr = addrs[victim_idx].clone();
    let router = start_router(&addrs);
    assert!(
        wait_until(Duration::from_secs(5), || {
            client::get(&router.addr, "/readyz").map(|r| r.status == 200).unwrap_or(false)
        }),
        "seed {seed:#x} run {run}: router never became ready"
    );

    // Warmup: learn where the ring places each candidate key (and that
    // every forwarded answer is stamped with its backend). This doubles
    // as the pre-kill affinity baseline.
    let mut client = Client::new(&router.addr, ClientConfig::default());
    let mut placed: BTreeMap<i64, String> = BTreeMap::new();
    for mu in 3..=80 {
        let body = key_request(mu).to_json().serialize();
        let reply = client.post("/map", &body).expect("warmup request");
        assert_eq!(reply.status, 200, "warmup mu={mu}: {}", reply.body);
        let backend = reply
            .backend
            .clone()
            .unwrap_or_else(|| panic!("warmup mu={mu}: forwarded answer lacks X-Cfmapd-Backend"));
        assert!(addrs.contains(&backend), "stamped backend {backend} not in the fleet");
        placed.insert(mu, backend);
        // Stop once every backend owns a key (ephemeral ports re-roll
        // the ring every run, so the key range adapts instead of
        // gambling on a fixed set).
        if mu >= 8 && addrs.iter().all(|a| placed.values().any(|b| b == a)) {
            break;
        }
    }
    // The burst cycles over up to two keys per backend, so the victim
    // keeps receiving traffic after the kill (that traffic is what must
    // fail over) and every survivor's affinity is observable.
    let mut burst_keys: Vec<i64> = Vec::new();
    for addr in &addrs {
        burst_keys.extend(placed.iter().filter(|(_, b)| *b == addr).map(|(mu, _)| *mu).take(2));
    }
    assert!(
        placed.values().any(|b| *b == victim_addr),
        "seed {seed:#x} run {run}: no warmup key landed on the victim {victim_addr}; \
         widen the warmup key range"
    );

    // The seeded burst. Events fire *before* the request at their
    // offset, so requests with index >= kill_at are post-kill.
    let mut stalls = Vec::new();
    let mut post_kill: BTreeMap<i64, BTreeSet<String>> = BTreeMap::new();
    for i in 0..plan.requests {
        for event in plan.due_at(i) {
            match event {
                FleetEvent::KillBackend { backend } => fleet[*backend].kill(),
                FleetEvent::StallBackend { backend, ms } => {
                    let addr = addrs[*backend].clone();
                    let body = key_request(4).to_json().serialize();
                    let ms = *ms;
                    stalls.push(std::thread::spawn(move || {
                        run_action(&addr, "/map", &body, &FaultAction::SearchStall { ms })
                    }));
                }
                FleetEvent::DrainBackend { backend } => {
                    let _ = client::post(&addrs[*backend], "/shutdown", "");
                }
            }
        }
        let mu = burst_keys[i % burst_keys.len()];
        let body = key_request(mu).to_json().serialize();
        let reply = client
            .post("/map", &body)
            .unwrap_or_else(|e| panic!("{}: transport failed: {e}", ctx(i)));
        match reply.status {
            200 => {
                let resp = MapResponse::from_str(&reply.body)
                    .unwrap_or_else(|e| panic!("{}: malformed body: {e}", ctx(i)));
                assert!(matches!(resp, MapResponse::Ok(_)), "{}: {resp:?}", ctx(i));
                let backend = reply
                    .backend
                    .clone()
                    .unwrap_or_else(|| panic!("{}: answer lacks X-Cfmapd-Backend", ctx(i)));
                if i >= kill_at {
                    post_kill.entry(mu).or_default().insert(backend);
                }
            }
            503 => {
                // A shed is a legal answer under chaos — but only a
                // *well-formed* one.
                assert!(
                    reply.retry_after.is_some(),
                    "{}: 503 without Retry-After: {}",
                    ctx(i),
                    reply.body
                );
                assert!(parse(&reply.body).is_ok(), "{}: 503 body not JSON: {}", ctx(i), reply.body);
            }
            other => panic!("{}: unexpected status {other}: {}", ctx(i), reply.body),
        }
    }
    for stall in stalls {
        let outcome = stall.join().expect("stall thread");
        let _ = outcome; // the stalled request's own answer is the backend's business
    }

    // The victim's circuit opens — from passive traffic failures, the
    // prober, or both — and the failover counter recorded the re-routes.
    assert!(
        wait_until(Duration::from_secs(5), || {
            backend_state(&router.addr, &victim_addr)
                .is_some_and(|(up, circuit)| !up && circuit == "open")
        }),
        "seed {seed:#x} run {run}: killed backend {victim_addr} never reported (down, open): {:?}",
        backend_state(&router.addr, &victim_addr)
    );
    let failovers = router_metric(&router.addr, "cfmapd_router_failovers_total", None);
    assert!(
        failovers.unwrap_or(0) >= 1,
        "seed {seed:#x} run {run}: cfmapd_router_failovers_total = {failovers:?}, want >= 1"
    );
    assert_eq!(
        router_metric(&router.addr, "cfmapd_router_backend_up", Some(&victim_addr)),
        Some(0),
        "seed {seed:#x} run {run}: victim's up gauge must read 0"
    );

    // Affinity across the kill: keys placed on a survivor stay on that
    // exact backend; keys placed on the victim all fail over to one
    // consistent survivor (the ring successor).
    for (mu, backends) in &post_kill {
        let home = &placed[mu];
        if home == &victim_addr {
            assert!(
                !backends.contains(&victim_addr),
                "seed {seed:#x} run {run}: key mu={mu} answered by the dead backend"
            );
            assert_eq!(
                backends.len(),
                1,
                "seed {seed:#x} run {run}: key mu={mu} failed over inconsistently: {backends:?}"
            );
        } else {
            assert_eq!(
                backends.iter().collect::<Vec<_>>(),
                vec![home],
                "seed {seed:#x} run {run}: surviving key mu={mu} moved off its backend"
            );
        }
    }

    // Restart the victim on its old port: the prober's next success is
    // the half-open trial, and the circuit closes without needing live
    // traffic to volunteer.
    fleet[victim_idx] = BackendProc::spawn_at(&victim_addr);
    assert!(
        wait_until(Duration::from_secs(8), || {
            backend_state(&router.addr, &victim_addr)
                .is_some_and(|(up, circuit)| up && circuit == "closed")
        }),
        "seed {seed:#x} run {run}: restarted backend {victim_addr} never recovered: {:?}",
        backend_state(&router.addr, &victim_addr)
    );
    let probes =
        router_metric(&router.addr, "cfmapd_router_half_open_probes_total", Some(&victim_addr));
    assert!(
        probes.unwrap_or(0) >= 1,
        "seed {seed:#x} run {run}: recovery must pass through half-open, got {probes:?}"
    );
    assert_eq!(
        router_metric(&router.addr, "cfmapd_router_backend_up", Some(&victim_addr)),
        Some(1),
        "seed {seed:#x} run {run}: recovered backend's up gauge must read 1"
    );

    // With the circuit closed the victim's keys come home.
    let home_mu = *placed.iter().find(|(_, b)| **b == victim_addr).expect("victim had keys").0;
    let reply = client.post("/map", &key_request(home_mu).to_json().serialize()).expect("post");
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert_eq!(
        reply.backend.as_deref(),
        Some(victim_addr.as_str()),
        "seed {seed:#x} run {run}: recovered backend must reclaim its ring segment"
    );

    stop_router(router);
    for backend in fleet {
        backend.stop();
    }
}

/// The headline acceptance scenario, replayed three times from one
/// seed: kill one of three backends mid-burst, observe failover, open
/// circuit, half-open recovery, and unbroken cache affinity.
#[test]
fn seeded_kill_mid_burst_fails_over_opens_circuit_and_recovers() {
    const SEED: u64 = 0xF1EE7;
    let reference = FleetPlan::from_seed(SEED, 3, 45);
    for run in 0..3 {
        assert_eq!(
            FleetPlan::from_seed(SEED, 3, 45),
            reference,
            "seed {SEED:#x} must replay byte-for-byte"
        );
        run_kill_recover_scenario(SEED, run);
    }
}

/// A router whose whole fleet is unreachable must answer immediately
/// with the `RouterReject` taxonomy — `502` while it is still probing
/// candidates, then a stable `503` + `Retry-After` once every circuit
/// is open — and report not-ready. Never a hang, never a bare reset.
#[test]
fn unreachable_fleet_sheds_with_router_reject_taxonomy() {
    // Grab two ephemeral ports and release them: real addresses, no
    // listeners behind them.
    let dead: Vec<String> = (0..2)
        .map(|_| {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("bind probe");
            probe.local_addr().expect("addr").to_string()
        })
        .collect();
    let router = start_router(&dead);
    let body = key_request(4).to_json().serialize();

    let reply = client::post(&router.addr, "/map", &body).expect("router always answers");
    assert!(matches!(reply.status, 502 | 503), "status {}: {}", reply.status, reply.body);
    let reject = RouterReject::from_str(&reply.body)
        .unwrap_or_else(|e| panic!("body must decode as RouterReject: {e}: {}", reply.body));
    assert_eq!(reject.kind.http_status(), reply.status, "{reject:?}");

    // Once the prober has tripped every breaker the answer settles into
    // the all-circuits-open shed.
    assert!(
        wait_until(Duration::from_secs(5), || {
            match client::post(&router.addr, "/map", &body) {
                Ok(r) if r.status == 503 => {
                    r.retry_after.is_some()
                        && RouterReject::from_str(&r.body)
                            .is_ok_and(|j| j.kind == RouterRejectKind::AllCircuitsOpen)
                }
                _ => false,
            }
        }),
        "router never settled into 503 all_circuits_open"
    );

    let ready = client::get(&router.addr, "/readyz").expect("readyz answers");
    assert_eq!(ready.status, 503, "{}", ready.body);
    assert!(ready.retry_after.is_some(), "not-ready must carry Retry-After");

    // Liveness is independent of the fleet: the router itself is up.
    let health = client::get(&router.addr, "/healthz").expect("healthz answers");
    assert_eq!(health.status, 200);
    let json = parse(&health.body).expect("healthz is JSON");
    assert_eq!(json.get("backends_up").and_then(Json::as_i64), Some(0), "{}", health.body);

    stop_router(router);
}

/// A graceful drain steers traffic away before the backend sheds: after
/// `POST /shutdown` the backend reports `draining` on `/healthz`, the
/// prober marks it not-ready, and its keys move to a survivor without a
/// single failed request.
#[test]
fn draining_backend_is_steered_around_without_errors() {
    let fleet: Vec<BackendProc> = (0..2).map(|_| BackendProc::spawn()).collect();
    let addrs: Vec<String> = fleet.iter().map(|b| b.addr.clone()).collect();
    let router = start_router(&addrs);
    assert!(wait_until(Duration::from_secs(5), || {
        client::get(&router.addr, "/readyz").map(|r| r.status == 200).unwrap_or(false)
    }));

    // Find a key homed on each backend.
    let mut client = Client::new(&router.addr, ClientConfig::default());
    let mut placed: BTreeMap<String, i64> = BTreeMap::new();
    for mu in 3..=80 {
        let reply = client.post("/map", &key_request(mu).to_json().serialize()).expect("map");
        assert_eq!(reply.status, 200, "{}", reply.body);
        placed.entry(reply.backend.clone().expect("stamped")).or_insert(mu);
        if placed.len() == addrs.len() {
            break;
        }
    }
    let (drained_addr, &drained_mu) = placed.iter().next().expect("at least one backend placed");
    let drained_addr = drained_addr.clone();

    // Drain it (graceful /shutdown keeps it answering while it winds
    // down) and wait for the prober to see not-ready or the process to
    // finish exiting (either way the router must steer around it).
    let _ = client::post(&drained_addr, "/shutdown", "");
    assert!(
        wait_until(Duration::from_secs(5), || {
            backend_state(&router.addr, &drained_addr).is_some_and(|(up, _)| !up)
                || client::get(&drained_addr, "/healthz").is_err()
        }),
        "drained backend never left the ready set"
    );
    std::thread::sleep(Duration::from_millis(300)); // one probe period of margin

    // Its keys now answer from the survivor — still 200, still stamped.
    for _ in 0..3 {
        let reply =
            client.post("/map", &key_request(drained_mu).to_json().serialize()).expect("map");
        assert_eq!(reply.status, 200, "{}", reply.body);
        let backend = reply.backend.expect("stamped");
        assert_ne!(backend, drained_addr, "drained backend must stop receiving new work");
        assert!(addrs.contains(&backend));
    }

    stop_router(router);
    for backend in fleet {
        // The drained backend already exited; stop() would double-
        // shutdown it. Let Drop reap whatever is left.
        drop(backend);
    }
}

/// Hostile `/batch` bodies the router can prove unusable — an empty
/// `requests` array, or one whose every member fails to parse or
/// canonicalize — must be answered locally with a well-formed `400`
/// `RouterReject` of kind `bad_request`: no forward, no panic, and the
/// backend keeps serving honest traffic afterwards.
#[test]
fn provably_unusable_batches_reject_locally_without_a_forward() {
    let backend = BackendProc::spawn();
    let router = start_router(std::slice::from_ref(&backend.addr));
    assert!(
        wait_until(Duration::from_secs(5), || {
            client::get(&router.addr, "/readyz").map(|r| r.status == 200).unwrap_or(false)
        }),
        "router never became ready"
    );

    let empty = Json::Obj(vec![("requests".into(), Json::Arr(vec![]))]).serialize();
    let garbage_member = Json::Obj(vec![(
        "requests".into(),
        Json::Arr(vec![
            Json::Obj(vec![("nonsense".into(), Json::Int(1))]),
            // Parses as a request shape but cannot canonicalize: μ is empty.
            Json::Obj(vec![
                ("mu".into(), Json::Arr(vec![])),
                ("space".into(), Json::Arr(vec![])),
            ]),
        ]),
    )])
    .serialize();
    for (label, body) in [("empty", &empty), ("all-garbage", &garbage_member)] {
        let reply = client::post(&router.addr, "/batch", body).expect("router answers");
        assert_eq!(reply.status, 400, "{label}: {}", reply.body);
        let reject = RouterReject::from_str(&reply.body)
            .unwrap_or_else(|e| panic!("{label}: body must decode as RouterReject: {e}"));
        assert_eq!(reject.kind, RouterRejectKind::BadRequest, "{label}: {reject:?}");
        assert_eq!(reject.attempted, 0, "{label}: nothing may be forwarded");
    }
    // No forward happened: the per-backend request counter never
    // materialized on /metrics.
    assert_eq!(
        router_metric(&router.addr, "cfmapd_router_requests_total", Some(&backend.addr)),
        None,
        "hostile batches must not reach the backend"
    );

    // The backend is unaffected: an honest batch still round-trips.
    let honest = Json::Obj(vec![(
        "requests".into(),
        Json::Arr(vec![key_request(4).to_json()]),
    )])
    .serialize();
    let reply = client::post(&router.addr, "/batch", &honest).expect("honest batch answers");
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert!(
        router_metric(&router.addr, "cfmapd_router_requests_total", Some(&backend.addr))
            .is_some_and(|v| v >= 1),
        "the honest batch must be forwarded"
    );

    stop_router(router);
    backend.stop();
}
