//! Exhaustive verification of the Pareto frontier (ISSUE 10).
//!
//! Three layers of guarantees, mirroring `space_joint_props.rs`:
//!
//! 1. **Ground truth** — on problems small enough to enumerate *every*
//!    design in the search's candidate space (canonical 1-row space
//!    maps × schedules within the objective cap), an independent
//!    brute-force oracle recomputes feasibility (schedule validity,
//!    rank, conflict-freedom by index-point enumeration), the VLSI
//!    cost axes, and the bandwidth axis, then takes the true
//!    non-dominated set with the lex-greatest witness per vector. The
//!    frontier must equal it point for point.
//! 2. **Simulator verification** — every returned point is replayed on
//!    the cycle-level simulator: zero conflicts, the advertised
//!    makespan, and (when tracked) exactly the advertised peak link
//!    load, within the requested budget.
//! 3. **Determinism** — identical frontiers across thread counts,
//!    `SymmetryMode::Quotient` on/off, and conflict-memo on/off; and
//!    the classic-search corners: the time corner is bit-identical to
//!    `Procedure51` under `TieBreak::LexMax`, the space corner to
//!    `SpaceSearch` under `TieBreak::LexMax`, across the word-level
//!    and bit-level catalogue.

use cfmap::core::{find_valid_schedule, is_schedulable, SymmetryMode};
use cfmap::intlin::non_dominated_indices;
use cfmap::prelude::*;
use cfmap::systolic::peak_link_load;
use cfmap_testkit::{gen, tk_assume};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};

/// One brute-forced design: objective vector (`[time, PEs, wires]`,
/// plus bandwidth when tracked), space rows, schedule.
type Design = (Vec<i64>, Vec<Vec<i64>>, Vec<i64>);

fn weighted(pi: &[i64], mu: &[i64]) -> i64 {
    pi.iter().zip(mu).map(|(&p, &m)| p.abs() * m).sum()
}

/// The search's candidate row pool, recomputed independently: nonzero
/// rows with entries in `[-bound, bound]`, first nonzero entry positive.
fn canonical_rows(n: usize, bound: i64) -> Vec<Vec<i64>> {
    fn rec(n: usize, bound: i64, cur: &mut Vec<i64>, out: &mut Vec<Vec<i64>>) {
        if cur.len() == n {
            if cur.iter().find(|&&x| x != 0).is_some_and(|&x| x > 0) {
                out.push(cur.clone());
            }
            return;
        }
        for v in -bound..=bound {
            cur.push(v);
            rec(n, bound, cur, out);
            cur.pop();
        }
    }
    let mut out = Vec::new();
    rec(n, bound, &mut Vec::new(), &mut out);
    out
}

/// Every integer schedule with `Σ|π_i|μ_i ≤ cap` — the time horizon the
/// search scans when given the same explicit `max_objective`.
fn enumerate_pis(mu: &[i64], cap: i64) -> Vec<Vec<i64>> {
    fn rec(mu: &[i64], cap: i64, cur: &mut Vec<i64>, out: &mut Vec<Vec<i64>>) {
        if cur.len() == mu.len() {
            out.push(cur.clone());
            return;
        }
        let bound = cap / mu[cur.len()].max(1);
        for v in -bound..=bound {
            cur.push(v);
            rec(mu, cap, cur, out);
            cur.pop();
        }
    }
    let mut out = Vec::new();
    rec(mu, cap, &mut Vec::new(), &mut out);
    out.retain(|pi| weighted(pi, mu) <= cap);
    out
}

/// `vlsi_cost` recomputed from first principles: sites are the product
/// of per-row bounding-box spans `1 + Σ|s_i|μ_i`, wires the total L1
/// displacement `Σ‖S·d̄‖₁` over the dependence columns.
fn oracle_cost(alg: &Uda, rows: &[Vec<i64>]) -> (usize, i64) {
    let mu = alg.index_set.mu();
    let mut sites = 1i64;
    for row in rows {
        let span: i64 = row.iter().zip(mu).map(|(&s, &m)| s.abs() * m).sum();
        sites *= span + 1;
    }
    let deps = alg.deps.as_mat().to_i64_rows().expect("catalogue deps fit i64");
    let cols = deps.first().map_or(0, |r| r.len());
    let dep_cols: Vec<Vec<i64>> =
        (0..cols).map(|c| deps.iter().map(|dep_row| dep_row[c]).collect()).collect();
    let mut wires = 0i64;
    for col in &dep_cols {
        for row in rows {
            let hop: i64 = row.iter().zip(col).map(|(&s, &d)| s * d).sum();
            wires += hop.abs();
        }
    }
    (sites as usize, wires)
}

/// Ground-truth feasibility, sharing *nothing* with the search's
/// screening: schedule validity, full mapping rank, and conflict
/// freedom established by enumerating every index-point pair.
fn feasible_mapping(alg: &Uda, rows: &[Vec<i64>], pi: &[i64]) -> Option<MappingMatrix> {
    let schedule = LinearSchedule::new(pi);
    if !schedule.is_valid_for(&alg.deps) {
        return None;
    }
    let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
    let mapping = MappingMatrix::new(SpaceMap::from_rows(&refs), schedule);
    if !mapping.has_full_rank() {
        return None;
    }
    if !oracle::is_conflict_free_by_enumeration(&mapping, &alg.index_set) {
        return None;
    }
    Some(mapping)
}

/// Enumerate the complete design space of one search scope: the given
/// rows (fixed space) or the canonical 1-row pool, crossed with the
/// given schedule (fixed schedule) or every schedule within `cap`.
fn all_feasible_designs(
    alg: &Uda,
    space: Option<&[Vec<i64>]>,
    schedule: Option<&[i64]>,
    cap: i64,
    with_bandwidth: bool,
) -> Vec<Design> {
    let mu = alg.index_set.mu();
    let row_pool: Vec<Vec<Vec<i64>>> = match space {
        Some(rows) => vec![rows.to_vec()],
        None => canonical_rows(alg.dim(), 2).into_iter().map(|r| vec![r]).collect(),
    };
    let pi_pool: Vec<Vec<i64>> = match schedule {
        Some(pi) => vec![pi.to_vec()],
        None => enumerate_pis(mu, cap),
    };
    let mut out = Vec::new();
    for rows in &row_pool {
        let (pes, wires) = oracle_cost(alg, rows);
        for pi in &pi_pool {
            let Some(mapping) = feasible_mapping(alg, rows, pi) else { continue };
            let mut v = vec![1 + weighted(pi, mu), pes as i64, wires];
            if with_bandwidth {
                match peak_link_load(alg, &mapping) {
                    Some(bw) => v.push(bw as i64),
                    None => continue, // mesh-unroutable: excluded by the probe
                }
            }
            out.push((v, rows.clone(), pi.clone()));
        }
    }
    out
}

/// The true frontier: one lex-greatest `(rows, schedule)` witness per
/// distinct vector, filtered to the non-dominated set, in ascending
/// vector order — the exact contract of `ParetoFrontier::points`.
fn oracle_frontier(designs: Vec<Design>) -> Vec<Design> {
    type Witness = (Vec<Vec<i64>>, Vec<i64>);
    let mut best: BTreeMap<Vec<i64>, Witness> = BTreeMap::new();
    for (v, rows, pi) in designs {
        match best.entry(v) {
            Entry::Occupied(mut e) => {
                if (&rows, &pi) > (&e.get().0, &e.get().1) {
                    e.insert((rows, pi));
                }
            }
            Entry::Vacant(e) => {
                e.insert((rows, pi));
            }
        }
    }
    let vectors: Vec<Vec<Rat>> = best
        .keys()
        .map(|v| v.iter().map(|&x| Rat::from_i64(x)).collect())
        .collect();
    let keep: BTreeSet<usize> = non_dominated_indices(&vectors).into_iter().collect();
    best.into_iter()
        .enumerate()
        .filter(|(i, _)| keep.contains(i))
        .map(|(_, (v, (rows, pi)))| (v, rows, pi))
        .collect()
}

fn point_vector(p: &ParetoPoint) -> Vec<i64> {
    let mut v = vec![p.total_time, p.processors as i64, p.wires];
    if let Some(bw) = p.bandwidth {
        v.push(bw as i64);
    }
    v
}

/// Layer 2: replay every frontier point on the cycle-level simulator.
fn simulator_verify(alg: &Uda, frontier: &ParetoFrontier, max_bandwidth: Option<u64>, ctx: &str) {
    for p in &frontier.points {
        let report = Simulator::new(alg, &p.mapping)
            .run()
            .unwrap_or_else(|e| panic!("{ctx}: simulator rejected {:?}: {e}", point_vector(p)));
        assert!(
            report.conflicts.is_empty(),
            "{ctx}: simulator found conflicts at {:?}",
            point_vector(p)
        );
        assert_eq!(report.makespan(), p.total_time, "{ctx}: makespan vs total_time");
        if let Some(bw) = p.bandwidth {
            assert_eq!(
                peak_link_load(alg, &p.mapping),
                Some(bw),
                "{ctx}: stored bandwidth must reproduce"
            );
            if let Some(b) = max_bandwidth {
                assert!(bw <= b, "{ctx}: bandwidth {bw} exceeds budget {b}");
            }
        }
    }
}

/// Layer 1: the frontier equals the oracle point for point — vectors,
/// witness space maps, and witness schedules, in order.
fn assert_matches_oracle(
    alg: &Uda,
    frontier: &ParetoFrontier,
    oracle: &[Design],
    max_bandwidth: Option<u64>,
    ctx: &str,
) {
    let got: Vec<Vec<i64>> = frontier.points.iter().map(point_vector).collect();
    let want: Vec<Vec<i64>> = oracle.iter().map(|(v, ..)| v.clone()).collect();
    assert_eq!(got, want, "{ctx}: objective vectors");
    for (p, (_, rows, pi)) in frontier.points.iter().zip(oracle) {
        assert_eq!(&p.space_rows(), rows, "{ctx}: witness space at {:?}", point_vector(p));
        assert_eq!(p.schedule.as_slice(), &pi[..], "{ctx}: witness schedule at {:?}", point_vector(p));
    }
    simulator_verify(alg, frontier, max_bandwidth, ctx);
}

/// Determinism comparisons, `assert_space_eq`-style: the design content
/// always, the effort counters only when the two runs screen the same
/// candidate stream (`counts_too`).
fn assert_frontier_eq(a: &ParetoFrontier, b: &ParetoFrontier, counts_too: bool, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: frontier size");
    for (x, y) in a.points.iter().zip(&b.points) {
        assert_eq!(point_vector(x), point_vector(y), "{ctx}: objective vector");
        assert_eq!(x.space_rows(), y.space_rows(), "{ctx}: space map");
        assert_eq!(x.schedule.as_slice(), y.schedule.as_slice(), "{ctx}: schedule");
    }
    if counts_too {
        assert_eq!(a.points_seen, b.points_seen, "{ctx}: points seen");
        assert_eq!(a.dominated_pruned, b.dominated_pruned, "{ctx}: dominated pruned");
        assert_eq!(a.candidates_examined, b.candidates_examined, "{ctx}: examined");
    }
}

/// Problems small enough for the full cross product in debug builds,
/// with an objective cap that still contains each optimum.
fn exhaustive_catalogue() -> Vec<(Uda, i64, &'static str)> {
    vec![
        (algorithms::matmul(2), 12, "matmul μ=2"),
        (algorithms::transitive_closure(2), 12, "tc μ=2"),
        (algorithms::convolution(3, 2), 10, "conv 3/2"),
        (algorithms::sor(2, 2), 8, "sor 2×2"),
        (algorithms::matvec(2, 2), 8, "matvec 2×2"),
    ]
}

// ---------------------------------------------------------------------
// Layer 1+2: exhaustive ground truth.
// ---------------------------------------------------------------------

/// Satellite acceptance: on every exhaustive-catalogue problem, the
/// joint frontier is exactly the non-dominated set of *all* feasible
/// designs in the candidate space — no point missing, none extra, and
/// every witness the lex-greatest achiever of its vector.
#[test]
fn joint_frontier_is_the_exact_nondominated_set() {
    for (alg, cap, name) in exhaustive_catalogue() {
        let frontier = ParetoSearch::new(&alg).max_objective(cap).solve().unwrap();
        let truth = oracle_frontier(all_feasible_designs(&alg, None, None, cap, false));
        assert!(!truth.is_empty(), "{name}: oracle should find feasible designs");
        assert_matches_oracle(&alg, &frontier, &truth, None, name);
    }
}

/// Same guarantee with the bandwidth axis switched on: the probe is the
/// simulator's `peak_link_load`, unroutable designs drop out, and the
/// frontier is the exact 4-axis non-dominated set.
#[test]
fn joint_bandwidth_frontier_is_the_exact_nondominated_set() {
    let alg = algorithms::matmul(2);
    let cap = 8;
    let probe = |m: &MappingMatrix| peak_link_load(&alg, m);
    let frontier = ParetoSearch::new(&alg)
        .max_objective(cap)
        .resources(ResourceModel { include_bandwidth: true, ..Default::default() })
        .bandwidth_probe(&probe)
        .solve()
        .unwrap();
    let truth = oracle_frontier(all_feasible_designs(&alg, None, None, cap, true));
    assert!(!truth.is_empty());
    assert!(truth.iter().all(|(v, ..)| v.len() == 4), "bandwidth axis present");
    assert_matches_oracle(&alg, &frontier, &truth, None, "matmul μ=2 +bandwidth");
}

/// A binding bandwidth budget: the frontier under `max_bandwidth = b`
/// equals the oracle frontier of the designs with peak load ≤ b.
#[test]
fn bandwidth_budget_filters_exactly() {
    let alg = algorithms::matmul(2);
    let cap = 8;
    let designs = all_feasible_designs(&alg, None, None, cap, true);
    let min_bw = designs.iter().map(|(v, ..)| v[3]).min().expect("feasible designs exist");
    let probe = |m: &MappingMatrix| peak_link_load(&alg, m);
    let frontier = ParetoSearch::new(&alg)
        .max_objective(cap)
        .resources(ResourceModel {
            max_bandwidth: Some(min_bw as u64),
            ..Default::default()
        })
        .bandwidth_probe(&probe)
        .solve()
        .unwrap();
    let truth =
        oracle_frontier(designs.into_iter().filter(|(v, ..)| v[3] <= min_bw).collect());
    assert!(!truth.is_empty(), "the tightest-satisfiable budget keeps its achievers");
    assert_matches_oracle(&alg, &frontier, &truth, Some(min_bw as u64), "matmul μ=2 bw budget");
}

/// Fixed-schedule scope, with and without the bandwidth axis: the
/// candidate space is the canonical row pool alone, and the frontier
/// must be its exact non-dominated set.
#[test]
fn fixed_schedule_frontier_is_the_exact_nondominated_set() {
    let tc = algorithms::transitive_closure(2);
    let tc_pi = find_valid_schedule(&tc).expect("tc μ=2 is schedulable");
    // The last flag: must the *bandwidth-tracked* frontier be non-empty?
    // With Π = [1, 1, 1] every conflict-free matmul row needs an entry
    // |s_i| = 2, violating the mesh budget Π·d̄ ≥ ‖S·d̄‖₁ — the probe
    // rejects everything, and the oracle must agree the frontier is
    // empty. Π = [1, 1, 2] leaves slack (e.g. S = [1, 0, −2] routes).
    let cases: Vec<(Uda, Vec<i64>, &str, bool)> = vec![
        (algorithms::matmul(2), vec![1, 1, 1], "matmul μ=2 tight", false),
        (algorithms::matmul(2), vec![1, 1, 2], "matmul μ=2 slack", true),
        (tc, tc_pi.as_slice().to_vec(), "tc μ=2", false),
        (algorithms::convolution(3, 2), vec![1, 1], "conv 3/2", false),
        (algorithms::matvec(2, 2), vec![1, 1], "matvec 2×2", false),
    ];
    for (alg, pi, name, bw_nonempty) in cases {
        let schedule = LinearSchedule::new(&pi);
        for with_bw in [false, true] {
            let probe = |m: &MappingMatrix| peak_link_load(&alg, m);
            let mut search = ParetoSearch::new(&alg).fixed_schedule(&schedule).resources(
                ResourceModel { include_bandwidth: with_bw, ..Default::default() },
            );
            if with_bw {
                search = search.bandwidth_probe(&probe);
            }
            let frontier = search.solve().unwrap();
            let truth =
                oracle_frontier(all_feasible_designs(&alg, None, Some(&pi), 0, with_bw));
            if !with_bw {
                assert!(!truth.is_empty(), "{name}: oracle should find designs");
            } else if bw_nonempty {
                assert!(!truth.is_empty(), "{name}: routable designs should exist");
            }
            assert_matches_oracle(&alg, &frontier, &truth, None, &format!("{name} bw={with_bw}"));
        }
    }
}

/// Fixed-space scope with the bandwidth axis (no early stop, so the
/// schedule scan is exhaustive in the horizon): the frontier equals the
/// oracle over every schedule within the cap.
#[test]
fn fixed_space_bandwidth_frontier_is_the_exact_nondominated_set() {
    let alg = algorithms::matmul(2);
    let rows = vec![vec![1i64, 1, -1]];
    let space = SpaceMap::row(&rows[0]);
    let cap = 10;
    let probe = |m: &MappingMatrix| peak_link_load(&alg, m);
    let frontier = ParetoSearch::new(&alg)
        .fixed_space(&space)
        .max_objective(cap)
        .resources(ResourceModel { include_bandwidth: true, ..Default::default() })
        .bandwidth_probe(&probe)
        .solve()
        .unwrap();
    let truth = oracle_frontier(all_feasible_designs(&alg, Some(&rows), None, cap, true));
    assert!(!truth.is_empty());
    assert_matches_oracle(&alg, &frontier, &truth, None, "matmul μ=2 fixed space +bw");
}

/// Resource budgets agree with the oracle at both edges: one notch
/// below the smallest feasible PE count the frontier is empty, at the
/// notch it equals the filtered oracle.
#[test]
fn processor_budget_edges_match_the_oracle() {
    let alg = algorithms::matmul(2);
    let cap = 10;
    let designs = all_feasible_designs(&alg, None, None, cap, false);
    let min_pes = designs.iter().map(|(v, ..)| v[1]).min().unwrap();
    let with_budget = |pes: i64| {
        ParetoSearch::new(&alg)
            .max_objective(cap)
            .resources(ResourceModel {
                max_processors: Some(pes as usize),
                ..Default::default()
            })
            .solve()
            .unwrap()
    };
    assert!(with_budget(min_pes - 1).is_empty(), "below the minimum nothing fits");
    let truth =
        oracle_frontier(designs.into_iter().filter(|(v, ..)| v[1] <= min_pes).collect());
    assert_matches_oracle(&alg, &with_budget(min_pes), &truth, None, "matmul μ=2 pes budget");
}

/// An invalid pinned schedule admits no design — the frontier is empty
/// without screening a single candidate.
#[test]
fn invalid_fixed_schedule_yields_an_empty_frontier() {
    let alg = algorithms::matmul(2);
    let zero = LinearSchedule::new(&[0, 0, 0]);
    let frontier = ParetoSearch::new(&alg).fixed_schedule(&zero).solve().unwrap();
    assert!(frontier.is_empty());
    assert_eq!(frontier.candidates_examined, 0);
}

// ---------------------------------------------------------------------
// Layer 3: corners are bit-identical to the classic searches.
// ---------------------------------------------------------------------

/// Regression (fixed space): on the word-level and bit-level catalogue
/// the frontier's time corner is exactly `Procedure51`'s LexMax winner
/// — same schedule, same makespan — under the same objective cap.
#[test]
fn time_corner_is_bit_identical_to_procedure51_on_catalogue() {
    let cases: Vec<(Uda, SpaceMap, i64, &'static str)> = vec![
        (algorithms::matmul(3), SpaceMap::row(&[1, 1, -1]), 60, "matmul μ=3"),
        (algorithms::matmul(4), SpaceMap::row(&[1, 1, -1]), 60, "matmul μ=4"),
        (algorithms::transitive_closure(3), SpaceMap::row(&[0, 0, 1]), 60, "tc μ=3"),
        (algorithms::convolution(4, 3), SpaceMap::row(&[1, -1]), 60, "conv 4/3"),
        (algorithms::lu_decomposition(3), SpaceMap::row(&[1, 0, -1]), 60, "lu μ=3"),
        (
            algorithms::bitlevel_convolution(2, 2),
            SpaceMap::from_rows(&[&[1, 0, 0, 0], &[0, 1, 0, 0]]),
            60,
            "bitlevel conv 2/2",
        ),
        (
            algorithms::bitlevel_matmul(2, 2),
            SpaceMap::from_rows(&[&[1, 0, 0, 0, 0], &[0, 1, 0, 0, 0]]),
            80,
            "bitlevel matmul 2/2",
        ),
    ];
    for (alg, space, cap, name) in cases {
        let frontier =
            ParetoSearch::new(&alg).fixed_space(&space).max_objective(cap).solve().unwrap();
        let classic = Procedure51::new(&alg, &space)
            .tie_break(TieBreak::LexMax)
            .max_objective(cap)
            .solve()
            .unwrap()
            .into_mapping();
        match classic {
            Some(opt) => {
                assert_eq!(frontier.len(), 1, "{name}: fixed space, 3 axes → one vector");
                let corner = frontier.time_corner().unwrap();
                assert_eq!(corner.total_time, opt.total_time, "{name}: makespan");
                assert_eq!(
                    corner.schedule.as_slice(),
                    opt.schedule.as_slice(),
                    "{name}: witness schedule"
                );
                simulator_verify(&alg, &frontier, None, name);
            }
            None => assert!(frontier.is_empty(), "{name}: feasibility parity"),
        }
    }
}

/// Regression (fixed schedule): the space corner is exactly
/// `SpaceSearch`'s LexMax winner — same space map, same PE count, same
/// wire length — across the catalogue including the bit-level entries.
#[test]
fn space_corner_is_bit_identical_to_space_search_on_catalogue() {
    let mut cases: Vec<(Uda, LinearSchedule, &'static str)> = vec![
        (algorithms::matmul(3), LinearSchedule::new(&[1, 3, 1]), "matmul μ=3"),
        (algorithms::matmul(4), LinearSchedule::new(&[1, 4, 1]), "matmul μ=4"),
        (algorithms::transitive_closure(4), LinearSchedule::new(&[5, 1, 1]), "tc μ=4"),
        (algorithms::sor(3, 3), LinearSchedule::new(&[2, 1]), "sor 3×3"),
        (algorithms::matvec(3, 3), LinearSchedule::new(&[1, 1]), "matvec 3×3"),
        (algorithms::convolution(5, 3), LinearSchedule::new(&[1, 1]), "conv 5/3"),
    ];
    for (alg, name) in [
        (algorithms::lu_decomposition(4), "lu μ=4"),
        (algorithms::bitlevel_matmul(2, 2), "bitlevel matmul 2/2"),
        (algorithms::bitlevel_convolution(2, 2), "bitlevel conv 2/2"),
        (algorithms::bitlevel_lu(2, 1), "bitlevel lu 2/1"),
    ] {
        let pi = find_valid_schedule(&alg)
            .unwrap_or_else(|| panic!("{name} should be schedulable"));
        cases.push((alg, pi, name));
    }
    for (alg, pi, name) in cases {
        let frontier = ParetoSearch::new(&alg).fixed_schedule(&pi).solve().unwrap();
        let classic =
            SpaceSearch::new(&alg, &pi).tie_break(TieBreak::LexMax).solve().unwrap().mapping;
        match classic {
            Some(sol) => {
                let corner = frontier
                    .space_corner()
                    .unwrap_or_else(|| panic!("{name}: classic found a design"));
                assert_eq!(
                    corner.space_rows(),
                    vec![sol.space.as_mat().row(0).to_i64s().unwrap()],
                    "{name}: witness space map"
                );
                assert_eq!(corner.processors, sol.processors, "{name}: processors");
                assert_eq!(corner.wires, sol.wire_length, "{name}: wires");
            }
            None => assert!(frontier.is_empty(), "{name}: feasibility parity"),
        }
    }
}

// ---------------------------------------------------------------------
// Layer 3: determinism across every fast route.
// ---------------------------------------------------------------------

/// The `JointSearch`-sized corpus for determinism runs.
fn joint_catalogue() -> Vec<(Uda, i64, &'static str)> {
    vec![
        (algorithms::matmul(3), 25, "matmul μ=3"),
        (algorithms::transitive_closure(3), 19, "tc μ=3"),
        (algorithms::sor(3, 3), 15, "sor 3×3"),
        (algorithms::matvec(3, 3), 15, "matvec 3×3"),
        (algorithms::convolution(5, 3), 15, "conv 5/3"),
    ]
}

/// Disabling the kernel-lattice conflict memo changes nothing — the
/// frontier *and* the effort counters are bit-identical.
#[test]
fn memo_off_is_bit_identical_on_catalogue() {
    for (alg, cap, name) in joint_catalogue() {
        let on = ParetoSearch::new(&alg).max_objective(cap).solve().unwrap();
        let off = ParetoSearch::new(&alg).max_objective(cap).memo(false).solve().unwrap();
        assert_frontier_eq(&on, &off, true, &format!("{name} memo on/off"));
    }
}

/// The symmetry quotient screens fewer rows but must keep the frontier:
/// the witness rule is lex-max, so orbit representatives suffice.
#[test]
fn quotient_matches_full_on_catalogue() {
    for (alg, cap, name) in joint_catalogue() {
        let full = ParetoSearch::new(&alg).max_objective(cap).solve().unwrap();
        let quot = ParetoSearch::new(&alg)
            .max_objective(cap)
            .symmetry(SymmetryMode::Quotient)
            .solve()
            .unwrap();
        assert_frontier_eq(&full, &quot, false, &format!("{name} full vs quotient"));
    }
}

/// Sharded solving replays the sequential fold verbatim — frontier and
/// counters identical for any thread count, with and without the
/// quotient, in both row-enumerating scopes.
#[test]
fn sharded_solve_is_bit_identical_on_catalogue() {
    for (alg, cap, name) in joint_catalogue() {
        let seq = ParetoSearch::new(&alg).max_objective(cap).solve().unwrap();
        let par = ParetoSearch::new(&alg).max_objective(cap).solve_parallel(3).unwrap();
        assert_frontier_eq(&seq, &par, true, &format!("{name} joint t=3"));
        let qseq = ParetoSearch::new(&alg)
            .max_objective(cap)
            .symmetry(SymmetryMode::Quotient)
            .solve()
            .unwrap();
        for threads in [2usize, 4] {
            let qpar = ParetoSearch::new(&alg)
                .max_objective(cap)
                .symmetry(SymmetryMode::Quotient)
                .solve_parallel(threads)
                .unwrap();
            assert_frontier_eq(&qseq, &qpar, true, &format!("{name} quotient t={threads}"));
        }
    }
    let alg = algorithms::matmul(4);
    let pi = LinearSchedule::new(&[1, 4, 1]);
    let seq = ParetoSearch::new(&alg).fixed_schedule(&pi).solve().unwrap();
    for threads in [2usize, 4] {
        let par =
            ParetoSearch::new(&alg).fixed_schedule(&pi).solve_parallel(threads).unwrap();
        assert_frontier_eq(&seq, &par, true, &format!("matmul μ=4 fixed Π t={threads}"));
    }
}

/// With bandwidth tracked the quotient must deactivate (time-reversing
/// stabilizer elements need not preserve per-slot contention), so
/// quotient-on is bit-identical to quotient-off *including counters*;
/// the memo and the shards stay exact as well.
#[test]
fn bandwidth_frontier_is_invariant_across_every_fast_route() {
    let alg = algorithms::matmul(2);
    let cap = 8;
    let probe = |m: &MappingMatrix| peak_link_load(&alg, m);
    let base = |search: ParetoSearch| -> ParetoFrontier {
        search
            .resources(ResourceModel { include_bandwidth: true, ..Default::default() })
            .bandwidth_probe(&probe)
            .solve()
            .unwrap()
    };
    let full = base(ParetoSearch::new(&alg).max_objective(cap));
    let quot = base(ParetoSearch::new(&alg).max_objective(cap).symmetry(SymmetryMode::Quotient));
    assert_frontier_eq(&full, &quot, true, "bw quotient is a no-op");
    let off = base(ParetoSearch::new(&alg).max_objective(cap).memo(false));
    assert_frontier_eq(&full, &off, true, "bw memo on/off");
    for threads in [2usize, 3] {
        let par = ParetoSearch::new(&alg)
            .max_objective(cap)
            .resources(ResourceModel { include_bandwidth: true, ..Default::default() })
            .bandwidth_probe(&probe)
            .solve_parallel(threads)
            .unwrap();
        assert_frontier_eq(&full, &par, true, &format!("bw t={threads}"));
    }
}

cfmap_testkit::props! {
    cases = 8;

    /// Randomized differential mirroring `space_joint_props`: on
    /// generated 3-D problems every fast route (memo, quotient, shards)
    /// agrees with the plain sequential frontier in both scopes.
    fn pareto_fast_routes_match_on_generated_problems(
        mu in gen::vec(2i64..=3, 3),
        extra in gen::vec(-2i64..=2, 6),
    ) {
        let (a, b) = (&extra[..3], &extra[3..]);
        tk_assume!(a.iter().any(|&x| x != 0) && b.iter().any(|&x| x != 0));
        tk_assume!(a != b);
        let identity: [[i64; 3]; 3] = [[1, 0, 0], [0, 1, 0], [0, 0, 1]];
        tk_assume!(identity.iter().all(|e| e != a && e != b));
        let alg = UdaBuilder::new("generated")
            .bounds(&mu)
            .deps(&[&identity[0], &identity[1], &identity[2], a, b])
            .build();
        tk_assume!(is_schedulable(&alg));
        let pi = find_valid_schedule(&alg).unwrap();

        let seq = ParetoSearch::new(&alg).fixed_schedule(&pi).solve().unwrap();
        let off = ParetoSearch::new(&alg).fixed_schedule(&pi).memo(false).solve().unwrap();
        assert_frontier_eq(&seq, &off, true, "generated fixed-Π memo");
        let quot = ParetoSearch::new(&alg)
            .fixed_schedule(&pi)
            .symmetry(SymmetryMode::Quotient)
            .solve()
            .unwrap();
        assert_frontier_eq(&seq, &quot, false, "generated fixed-Π quotient");
        let par = ParetoSearch::new(&alg)
            .fixed_schedule(&pi)
            .symmetry(SymmetryMode::Quotient)
            .solve_parallel(3)
            .unwrap();
        assert_frontier_eq(&quot, &par, true, "generated fixed-Π parallel");

        let jseq = ParetoSearch::new(&alg).max_objective(12).solve().unwrap();
        let joff = ParetoSearch::new(&alg).max_objective(12).memo(false).solve().unwrap();
        assert_frontier_eq(&jseq, &joff, true, "generated joint memo");
        let jquot = ParetoSearch::new(&alg)
            .max_objective(12)
            .symmetry(SymmetryMode::Quotient)
            .solve()
            .unwrap();
        assert_frontier_eq(&jseq, &jquot, false, "generated joint quotient");
        let jpar = ParetoSearch::new(&alg)
            .max_objective(12)
            .symmetry(SymmetryMode::Quotient)
            .solve_parallel(3)
            .unwrap();
        assert_frontier_eq(&jquot, &jpar, true, "generated joint parallel");
    }
}
