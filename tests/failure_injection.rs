//! Failure injection: deliberately broken mappings must be caught at
//! every layer — closed-form conditions, exact lattice test, exhaustive
//! oracle, and the cycle-level simulator.

use cfmap::prelude::*;

/// A catalogue of broken designs and the property they violate.
fn broken_designs() -> Vec<(&'static str, Uda, MappingMatrix)> {
    vec![
        (
            "matmul Π₁ = [1,1,μ] (appendix reject: conflicts)",
            algorithms::matmul(4),
            MappingMatrix::from_rows(&[&[1, 1, -1], &[1, 1, 4]]),
        ),
        (
            "matmul Π = [1,1,1] (diagonal collapse)",
            algorithms::matmul(4),
            MappingMatrix::from_rows(&[&[1, 1, -1], &[1, 1, 1]]),
        ),
        (
            "Eq 2.8 mapping over {0..6}⁴",
            algorithms::example_2_1(),
            MappingMatrix::from_rows(&[&[1, 7, 1, 1], &[1, 7, 1, 0]]),
        ),
        (
            "TC with undersized schedule [3,1,1] (γ = [1,−3,0] fits μ=4)",
            algorithms::transitive_closure(4),
            MappingMatrix::from_rows(&[&[0, 0, 1], &[3, 1, 1]]),
        ),
        (
            "Theorem 4.8 repair regression instance",
            algorithms::bitlevel_matmul(2, 1),
            MappingMatrix::from_rows(&[&[1, 1, 0, 0, 0], &[1, 3, 6, 6, 1]]),
        ),
        // Two more k = n−3 instances (n = 5, k = 2, so r = 3) on which
        // the *literal* full-support conditions of Theorem 4.8 certify
        // conflict-freedom but an in-box conflict vector with a zero β
        // component slips through — only the repaired proper-subset
        // condition refuses them. One varies the space map, one the
        // algorithm, relative to the regression instance above.
        (
            "Theorem 4.8 subset form, S = [0,1,1,0,0] (repair E6″)",
            algorithms::bitlevel_matmul(2, 1),
            MappingMatrix::from_rows(&[&[0, 1, 1, 0, 0], &[2, 1, 7, 6, 1]]),
        ),
        (
            "Theorem 4.8 subset form on bit-level LU (repair E8)",
            algorithms::bitlevel_lu(2, 1),
            MappingMatrix::from_rows(&[&[1, 1, 0, 0, 0], &[3, 1, 6, 6, 1]]),
        ),
    ]
}

#[test]
fn every_layer_catches_conflicts() {
    for (name, alg, t) in broken_designs() {
        // Layer 1: exact lattice decision.
        let analysis = ConflictAnalysis::new(&t, &alg.index_set);
        assert!(!analysis.is_conflict_free_exact(), "exact missed: {name}");

        // Layer 2: a concrete small kernel vector with a witness pair.
        let gamma = analysis.find_small_kernel_vector().expect(name);
        let w = analysis.witness_from_kernel_vector(&gamma).expect(name);
        assert!(alg.index_set.contains(&w.j1), "{name}");
        assert!(alg.index_set.contains(&w.j2), "{name}");
        assert_eq!(t.apply(&w.j1), t.apply(&w.j2), "{name}");

        // Layer 3: exhaustive oracle.
        assert!(!oracle::is_conflict_free_by_enumeration(&t, &alg.index_set), "oracle missed: {name}");

        // Layer 4: the paper's closed-form condition never certifies it.
        let verdict = conditions::paper_condition(&analysis, &alg.index_set);
        assert_ne!(verdict, ConditionVerdict::ConflictFree, "closed form certified: {name}");

        // Layer 5: the simulator observes the collision on the "hardware".
        let report = Simulator::new(&alg, &t).run().unwrap();
        assert!(!report.conflicts.is_empty(), "simulator missed: {name}");
    }
}

/// Schedules violating `ΠD > 0` are rejected by validity checks and
/// produce causality violations in execution.
#[test]
fn dependence_violations_detected() {
    let alg = algorithms::transitive_closure(3);
    // π₁ − π₂ − π₃ = 0 violates strict positivity on d̄₃.
    let bad = LinearSchedule::new(&[2, 1, 1]);
    assert!(!bad.is_valid_for(&alg.deps));
    let t = MappingMatrix::new(SpaceMap::row(&[0, 0, 1]), bad);
    let result = execute(&alg, &t, &DepthKernel);
    assert!(!result.causality_violations.is_empty());
}

/// Rank-deficient mappings (condition 4 of Definition 2.2) are rejected,
/// and the search never returns one.
#[test]
fn rank_deficiency_detected() {
    let t = MappingMatrix::from_rows(&[&[1, 1, -1], &[2, 2, -2]]);
    assert!(!t.has_full_rank());
    let alg = algorithms::matmul(3);
    let s = SpaceMap::row(&[1, 1, -1]);
    let opt = Procedure51::new(&alg, &s).solve().unwrap().expect_optimal("solvable");
    assert!(opt.mapping.has_full_rank());
}

/// Unroutable interconnects are refused rather than silently misrouted.
#[test]
fn unroutable_interconnect_detected() {
    let alg = algorithms::matmul(3);
    // Only a leftward primitive, but B and A must move right.
    let prims = InterconnectionPrimitives::from_columns(&[&[-1]]);
    let t = MappingMatrix::from_rows(&[&[1, 1, -1], &[1, 3, 1]]);
    assert!(route(&t, &alg.deps, &prims).is_err());
}

/// Sanity: a mapping that conflicts on a *sub-box* only — bound tightness
/// of Theorem 2.2. γ = [1, −(μ+1), 0] is feasible for bound μ but not for
/// bound μ+1 on axis 2.
#[test]
fn feasibility_is_bound_tight() {
    let mu = 4;
    let t = MappingMatrix::from_rows(&[&[0, 0, 1], &[mu + 1, 1, 1]]);
    let tight = IndexSet::new(&[mu, mu, mu]);
    let loose = IndexSet::new(&[mu, mu + 1, mu]);
    let a_tight = ConflictAnalysis::new(&t, &tight);
    let a_loose = ConflictAnalysis::new(&t, &loose);
    assert!(a_tight.is_conflict_free_exact());
    assert!(!a_loose.is_conflict_free_exact());
}
