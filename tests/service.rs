//! End-to-end smoke test: spawn the real `cfmapd` binary on an ephemeral
//! port, hit it with concurrent clients, and check the cache, batch,
//! stats, and shutdown behavior through the wire.

use cfmap::service::client;
use cfmap::service::json::{parse, Json};
use cfmap::service::wire::{MapRequest, MapResponse};
use std::str::FromStr;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

/// A running daemon that is shut down (or killed) when dropped.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(extra_args: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_cfmapd"))
            .args(["--addr", "127.0.0.1:0"])
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("cfmapd spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut first_line = String::new();
        BufReader::new(stdout).read_line(&mut first_line).expect("startup line");
        let addr = first_line
            .trim()
            .strip_prefix("cfmapd listening on ")
            .unwrap_or_else(|| panic!("unexpected startup line {first_line:?}"))
            .to_string();
        Daemon { child, addr }
    }

    fn stop(mut self) {
        let _ = client::post(&self.addr, "/shutdown", "");
        let status = self.child.wait().expect("cfmapd exits");
        assert!(status.success(), "cfmapd exited with {status:?}");
        // Disarm the Drop kill.
        std::mem::forget(self);
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn matmul_request() -> MapRequest {
    MapRequest::named("matmul", 4, vec![vec![1, 1, -1]])
}

#[test]
fn eight_concurrent_clients_get_identical_answers() {
    let daemon = Daemon::spawn(&["--workers", "4"]);
    let addr = daemon.addr.clone();

    let handles: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || client::map(&addr, &matmul_request()).expect("map call"))
        })
        .collect();
    let responses: Vec<MapResponse> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let mut schedules = Vec::new();
    for resp in &responses {
        let MapResponse::Ok(o) = resp else { panic!("expected ok, got {resp:?}") };
        assert_eq!(o.total_time, 25, "Example 5.1: t = μ(μ+2)+1");
        assert_eq!(o.objective, 24);
        schedules.push(o.schedule.clone());
    }
    assert!(
        schedules.windows(2).all(|w| w[0] == w[1]),
        "all 8 concurrent clients must see the identical schedule: {schedules:?}"
    );

    // The same problem again is a cache hit, answered identically.
    let warm = client::map(&addr, &matmul_request()).expect("warm call");
    let MapResponse::Ok(w) = warm else { panic!("expected ok") };
    assert!(w.cached, "second identical request must come from the design cache");
    assert_eq!(w.schedule, schedules[0]);

    // /stats shows the traffic and at least one hit.
    let stats_body = client::get(&addr, "/stats").expect("stats").body;
    let stats = parse(&stats_body).expect("stats is JSON");
    let cache = stats.get("cache").expect("cache block");
    assert!(cache.get("hits").and_then(Json::as_i64).unwrap() >= 1, "{stats_body}");
    assert!(cache.get("entries").and_then(Json::as_i64).unwrap() >= 1, "{stats_body}");
    assert!(stats.get("requests").and_then(Json::as_i64).unwrap() >= 9, "{stats_body}");

    daemon.stop();
}

#[test]
fn batch_deduplicates_and_cache_clear_resets() {
    let daemon = Daemon::spawn(&[]);
    let addr = daemon.addr.clone();

    // A batch of three identical problems plus one distinct one.
    let reqs: Vec<Json> = vec![
        matmul_request().to_json(),
        matmul_request().to_json(),
        matmul_request().to_json(),
        MapRequest::named("matmul", 5, vec![vec![1, 1, -1]]).to_json(),
    ];
    let body = Json::Obj(vec![("requests".into(), Json::Arr(reqs))]).serialize();
    let reply = client::post(&addr, "/batch", &body).expect("batch");
    assert_eq!(reply.status, 200, "{}", reply.body);
    let parsed = parse(&reply.body).expect("batch reply is JSON");
    assert_eq!(
        parsed.get("distinct_solves").and_then(Json::as_i64),
        Some(2),
        "three identical requests share one search: {}",
        reply.body
    );
    let responses = parsed.get("responses").and_then(Json::as_arr).expect("responses");
    assert_eq!(responses.len(), 4);
    let decoded: Vec<MapResponse> =
        responses.iter().map(|v| MapResponse::from_json(v).expect("decodes")).collect();
    assert!(decoded.iter().all(|r| matches!(r, MapResponse::Ok(_))), "{}", reply.body);

    // Clearing the cache forgets both designs.
    let cleared = client::post(&addr, "/cache/clear", "").expect("clear").body;
    assert_eq!(parse(&cleared).unwrap().get("cleared").and_then(Json::as_i64), Some(2));
    let fresh = client::map(&addr, &matmul_request()).expect("post-clear call");
    let MapResponse::Ok(o) = fresh else { panic!("expected ok") };
    assert!(!o.cached, "cache was just cleared");

    daemon.stop();
}

#[test]
fn wire_errors_map_to_http_statuses() {
    let daemon = Daemon::spawn(&[]);
    let addr = daemon.addr.clone();

    // Malformed JSON → 400 bad_request.
    let reply = client::post(&addr, "/map", "{not json").expect("reply");
    assert_eq!(reply.status, 400, "{}", reply.body);
    assert!(matches!(
        MapResponse::from_str(&reply.body),
        Ok(MapResponse::BadRequest { .. })
    ));

    // Well-formed JSON, bad problem shape → 400 with exit class 2.
    let bad = MapRequest { space: vec![vec![1, 2]], ..matmul_request() };
    let reply = client::post(&addr, "/map", &bad.to_json().serialize()).expect("reply");
    assert_eq!(reply.status, 400, "{}", reply.body);
    let resp = MapResponse::from_str(&reply.body).expect("decodes");
    assert_eq!(resp.exit_class(), 2);

    // Unknown route → 404.
    let reply = client::get(&addr, "/nope").expect("reply");
    assert_eq!(reply.status, 404);

    // Health check.
    let reply = client::get(&addr, "/healthz").expect("reply");
    assert_eq!(reply.status, 200);

    daemon.stop();
}

#[test]
fn hostile_requests_do_not_kill_workers() {
    // Default pool: 4 workers. Every request below once panicked (or
    // hung) its worker; more hostile requests than workers would leave a
    // daemon that accepts but never answers. Each must get an orderly
    // HTTP answer, and the daemon must still serve afterwards.
    let daemon = Daemon::spawn(&[]);
    let addr = daemon.addr.clone();

    // 25 equal-μ axes: the tie-permutation count is 25!, which used to
    // overflow in the canonicalizer (debug panic / release wrap into an
    // attempted 10²⁵-entry expansion) and the budget-degrade fallback
    // would walk 25! permutations. The dimension bound now refuses it at
    // the wire; the canonicalizer's own saturation is unit-tested in
    // crates/core/src/canon.rs.
    let n = 25;
    let mut dep = vec![0i64; n];
    dep[0] = 1;
    let mut row = vec![0i64; n];
    row[n - 1] = 1;
    let wide = MapRequest {
        algorithm: None,
        mu: vec![2; n],
        deps: Some(vec![dep]),
        space: vec![row],
        cap: None,
        max_candidates: Some(10),
        timeout_ms: None,
        deadline_ms: None,
    };
    // i64::MIN in a space row: sign-normalization cannot negate it; the
    // magnitude bound now rejects it at the wire.
    let minrow = MapRequest { space: vec![vec![1, 1, i64::MIN]], ..matmul_request() };

    for _ in 0..3 {
        for hostile in [&wide, &minrow] {
            let reply =
                client::post(&addr, "/map", &hostile.to_json().serialize()).expect("reply");
            assert_eq!(reply.status, 400, "{}", reply.body);
        }
    }

    // All workers must still be alive and answering.
    let reply = client::get(&addr, "/healthz").expect("daemon still serves");
    assert_eq!(reply.status, 200);
    let resp = client::map(&addr, &matmul_request()).expect("real work still served");
    assert!(matches!(resp, MapResponse::Ok(_)));

    daemon.stop();
}

#[test]
fn newline_free_header_stream_gets_413_not_unbounded_buffering() {
    use std::io::{Read, Write};

    // Mirrors MAX_HEAD_BYTES in crates/service/src/server.rs. The test
    // sends exactly the bytes the server will consume before refusing,
    // so the close is clean (no unread data → no TCP RST eating the
    // reply).
    const MAX_HEAD: usize = 64 << 10;

    let daemon = Daemon::spawn(&[]);
    let addr = daemon.addr.clone();

    // A newline-free byte stream must hit the head bound and be answered
    // 413 instead of growing the server's line buffer without limit.
    let mut raw = std::net::TcpStream::connect(&addr).expect("connect");
    raw.write_all(&vec![b'A'; MAX_HEAD + 1]).expect("send newline-free head");
    let mut reply = String::new();
    raw.read_to_string(&mut reply).expect("server answers and closes");
    assert!(reply.starts_with("HTTP/1.1 413 "), "{reply:?}");

    // Same bound for an over-long header *section* made of short lines.
    let mut raw = std::net::TcpStream::connect(&addr).expect("connect");
    let request_line = b"GET /healthz HTTP/1.1\r\n";
    raw.write_all(request_line).expect("request line");
    let header_line = format!("X-Pad: {}\r\n", "b".repeat(1015)); // 1024 bytes
    let mut budget = MAX_HEAD - request_line.len();
    while budget >= header_line.len() {
        raw.write_all(header_line.as_bytes()).expect("header line");
        budget -= header_line.len();
    }
    // One byte past the remaining budget, newline-free: the server reads
    // all of it, then refuses.
    raw.write_all(&vec![b'b'; budget + 1]).expect("overflowing tail");
    let mut reply = String::new();
    raw.read_to_string(&mut reply).expect("server answers and closes");
    assert!(reply.starts_with("HTTP/1.1 413 "), "{reply:?}");

    // The worker that served each refusal is still in the pool.
    let reply = client::get(&addr, "/healthz").expect("daemon still serves");
    assert_eq!(reply.status, 200);

    daemon.stop();
}

#[test]
fn conflicting_content_length_headers_get_400() {
    use std::io::{Read, Write};

    let daemon = Daemon::spawn(&[]);
    let addr = daemon.addr.clone();

    // Two Content-Length headers that disagree: the classic
    // request-smuggling shape. The server must refuse instead of quietly
    // honouring the later copy. No body follows the head, so the close
    // is clean (no unread data → no TCP RST eating the reply).
    let mut raw = std::net::TcpStream::connect(&addr).expect("connect");
    raw.write_all(
        b"POST /map HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 9\r\n\r\n",
    )
    .expect("send conflicting head");
    let mut reply = String::new();
    raw.read_to_string(&mut reply).expect("server answers and closes");
    assert!(reply.starts_with("HTTP/1.1 400 "), "{reply:?}");
    assert!(reply.contains("conflicting Content-Length"), "{reply:?}");

    // Identical repeats are legal (RFC 9110 §8.6) and keep working.
    let mut raw = std::net::TcpStream::connect(&addr).expect("connect");
    raw.write_all(
        b"GET /healthz HTTP/1.1\r\nContent-Length: 0\r\nContent-Length: 0\r\n\r\n",
    )
    .expect("send identical duplicates");
    let mut reply = String::new();
    raw.read_to_string(&mut reply).expect("server answers and closes");
    assert!(reply.starts_with("HTTP/1.1 200 "), "{reply:?}");

    // The workers survived both.
    let reply = client::get(&addr, "/healthz").expect("daemon still serves");
    assert_eq!(reply.status, 200);

    daemon.stop();
}

#[test]
fn metrics_endpoint_exposes_route_and_search_counters() {
    let daemon = Daemon::spawn(&[]);
    let addr = daemon.addr.clone();

    let resp = client::map(&addr, &matmul_request()).expect("map call");
    assert!(matches!(resp, MapResponse::Ok(_)));

    let reply = client::get(&addr, "/metrics").expect("metrics");
    assert_eq!(reply.status, 200);
    let text = &reply.body;
    // Route accounting: exactly the one /map request so far.
    assert!(
        text.contains("cfmapd_requests_total{route=\"/map\",status=\"200\"} 1"),
        "{text}"
    );
    // Latency histogram for the route, with seconds-unit buckets.
    assert!(text.contains("cfmapd_request_duration_seconds_bucket{route=\"/map\",le=\"0.0001\"}"), "{text}");
    assert!(text.contains("cfmapd_request_duration_seconds_count{route=\"/map\"} 1"), "{text}");
    // Search telemetry flowed from Procedure 5.1 into the registry.
    assert!(text.contains("cfmap_solves_total 1"), "{text}");
    // Accepted-candidate counts depend on the LexMax tie-break (every
    // accepted candidate at the winning level is counted), so assert
    // presence rather than a specific count.
    assert!(text.contains("cfmap_search_screened_total{result=\"accepted\"}"), "{text}");
    assert!(text.contains("cfmap_search_condition_hits_total"), "{text}");
    assert!(text.contains("# TYPE cfmapd_requests_total counter"), "{text}");

    // A cached repeat bumps the route counter but not the solve counter.
    let _ = client::map(&addr, &matmul_request()).expect("warm call");
    let text = client::get(&addr, "/metrics").expect("metrics").body;
    assert!(
        text.contains("cfmapd_requests_total{route=\"/map\",status=\"200\"} 2"),
        "{text}"
    );
    assert!(text.contains("cfmap_solves_total 1"), "{text}");

    // /stats carries the same aggregates in JSON.
    let stats_body = client::get(&addr, "/stats").expect("stats").body;
    let stats = parse(&stats_body).expect("stats is JSON");
    let search = stats.get("search").expect("search block");
    assert_eq!(search.get("solves").and_then(Json::as_i64), Some(1), "{stats_body}");
    assert!(
        search.get("candidates_enumerated").and_then(Json::as_i64).unwrap() > 0,
        "{stats_body}"
    );

    daemon.stop();
}

#[test]
fn json_log_format_writes_structured_access_lines() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_cfmapd"))
        .args(["--addr", "127.0.0.1:0", "--log-format", "json"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("cfmapd spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut first_line = String::new();
    BufReader::new(stdout).read_line(&mut first_line).expect("startup line");
    let addr = first_line
        .trim()
        .strip_prefix("cfmapd listening on ")
        .expect("startup line")
        .to_string();

    let resp = client::map(&addr, &matmul_request()).expect("map call");
    assert!(matches!(resp, MapResponse::Ok(_)));
    let _ = client::post(&addr, "/shutdown", "");
    let status = child.wait().expect("cfmapd exits");
    assert!(status.success(), "{status:?}");

    let mut stderr_text = String::new();
    use std::io::Read;
    child
        .stderr
        .take()
        .expect("stderr piped")
        .read_to_string(&mut stderr_text)
        .expect("stderr readable");
    let map_line = stderr_text
        .lines()
        .find(|l| l.contains("\"/map\""))
        .unwrap_or_else(|| panic!("no /map access-log line in {stderr_text:?}"));
    let entry = parse(map_line).expect("access-log line is JSON");
    assert_eq!(entry.get("method").and_then(Json::as_str), Some("POST"));
    assert_eq!(entry.get("path").and_then(Json::as_str), Some("/map"));
    assert_eq!(entry.get("status").and_then(Json::as_i64), Some(200));
    assert!(entry.get("duration_us").and_then(Json::as_i64).unwrap() >= 0);
    assert!(entry.get("ts_ms").and_then(Json::as_i64).unwrap() > 0);
    assert!(entry.get("bytes").and_then(Json::as_i64).unwrap() > 0);
}

/// Read one `Content-Length`-framed HTTP response off a raw socket:
/// `(status, lower-cased headers, body)`. Exact framing is what makes
/// keep-alive reuse byte-safe, so the test reads exactly what the
/// server frames — no EOF sentinel.
fn read_framed_response(
    reader: &mut impl std::io::BufRead,
) -> (u16, Vec<(String, String)>, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
        }
    }
    let len: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse().expect("numeric Content-Length"))
        .expect("keep-alive responses must be Content-Length framed");
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).expect("exactly Content-Length body bytes");
    (status, headers, String::from_utf8(body).expect("UTF-8 body"))
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    use std::io::{Read, Write};

    let daemon = Daemon::spawn(&[]);
    let addr = daemon.addr.clone();

    let mut raw = std::net::TcpStream::connect(&addr).expect("connect");
    raw.set_read_timeout(Some(std::time::Duration::from_secs(10))).unwrap();
    let mut reader = BufReader::new(raw.try_clone().expect("clone"));
    let body = matmul_request().to_json().serialize();

    // Three requests down one socket: each must be answered in
    // sequence, exactly framed, with the connection held open.
    for i in 0..3 {
        let head = format!(
            "POST /map HTTP/1.1\r\nHost: {addr}\r\nConnection: keep-alive\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        raw.write_all(head.as_bytes()).expect("request head");
        raw.write_all(body.as_bytes()).expect("request body");
        let (status, headers, reply) = read_framed_response(&mut reader);
        assert_eq!(status, 200, "request {i}: {reply}");
        assert_eq!(
            headers.iter().find(|(k, _)| k == "connection").map(|(_, v)| v.as_str()),
            Some("keep-alive"),
            "request {i} must keep the connection open"
        );
        let resp = MapResponse::from_str(&reply).expect("wire body");
        let MapResponse::Ok(o) = resp else { panic!("request {i}: {resp:?}") };
        assert_eq!(o.cached, i > 0, "repeats on the same connection hit the cache");
    }

    // A `Connection: close` request on the same socket is honored: one
    // last answer, then EOF.
    let head = format!(
        "GET /healthz HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    );
    raw.write_all(head.as_bytes()).expect("final request");
    let (status, headers, _) = read_framed_response(&mut reader);
    assert_eq!(status, 200);
    assert_eq!(
        headers.iter().find(|(k, _)| k == "connection").map(|(_, v)| v.as_str()),
        Some("close")
    );
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("clean EOF");
    assert!(rest.is_empty(), "server must close after Connection: close, not send {rest:?}");

    daemon.stop();
}

#[test]
fn healthz_carries_liveness_fields_and_readyz_answers() {
    let daemon = Daemon::spawn(&["--workers", "2"]);
    let addr = daemon.addr.clone();

    let reply = client::get(&addr, "/healthz").expect("healthz");
    assert_eq!(reply.status, 200);
    let json = parse(&reply.body).expect("healthz is JSON");
    assert_eq!(json.get("status").and_then(Json::as_str), Some("ok"), "{}", reply.body);
    assert_eq!(json.get("draining").and_then(Json::as_bool), Some(false), "{}", reply.body);
    assert_eq!(json.get("queue_depth").and_then(Json::as_i64), Some(0), "{}", reply.body);
    assert_eq!(json.get("workers").and_then(Json::as_i64), Some(2), "{}", reply.body);

    // Readiness is a separate signal (it flips 503 during a drain; the
    // drain path itself is covered by the chaos suite).
    let ready = client::get(&addr, "/readyz").expect("readyz");
    assert_eq!(ready.status, 200, "{}", ready.body);

    // A bare daemon (no router in front) stamps no backend header; the
    // client surfaces its absence as None.
    assert!(reply.backend.is_none(), "X-Cfmapd-Backend is the router's stamp, not the daemon's");

    daemon.stop();
}

#[test]
fn watch_stdin_shuts_down_on_eof() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_cfmapd"))
        .args(["--addr", "127.0.0.1:0", "--watch-stdin"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("cfmapd spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut first_line = String::new();
    BufReader::new(stdout).read_line(&mut first_line).expect("startup line");
    assert!(first_line.starts_with("cfmapd listening on "), "{first_line:?}");
    // Closing stdin is the supervisor's shutdown signal.
    drop(child.stdin.take());
    let status = child.wait().expect("cfmapd exits on stdin EOF");
    assert!(status.success(), "{status:?}");
}
