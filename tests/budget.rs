//! Budget-guarded search: graceful degradation under exhausted budgets.
//!
//! A search that runs out of budget must still hand back a *valid*
//! conflict-free mapping, honestly tagged [`Certification::BestEffort`] —
//! never a panic, never a silent wrong answer — and the degraded result
//! must be deterministic so CI runs are reproducible.

use cfmap::prelude::*;
use std::time::Duration;

/// A candidate budget far too small for the 5-D bit-level search trips
/// the meter and degrades to a tagged, valid, conflict-free fallback.
#[test]
fn tiny_budget_degrades_to_best_effort() {
    let alg = algorithms::bitlevel_matmul(2, 3);
    let s = SpaceMap::from_rows(&[&[1, 0, 0, 0, 0], &[0, 1, 0, 0, 0]]);
    let outcome = Procedure51::new(&alg, &s)
        .budget(SearchBudget::candidates(3))
        .solve()
        .expect("degradation is not an error");

    assert!(outcome.certification.is_best_effort(), "{:?}", outcome.certification);
    let opt = outcome.into_mapping().expect("best-effort carries a mapping");

    // The degraded mapping satisfies every condition of Definition 2.2.
    assert!(opt.mapping.has_full_rank());
    assert!(opt.schedule.is_valid_for(&alg.deps));
    let analysis = ConflictAnalysis::new(&opt.mapping, &alg.index_set);
    assert!(analysis.is_conflict_free_exact());

    // And it actually runs conflict-free on the simulated hardware.
    let report = Simulator::new(&alg, &opt.mapping).run().unwrap();
    assert!(report.conflicts.is_empty());
}

/// Degradation is deterministic: the same exhausted budget yields the
/// same fallback schedule every time.
#[test]
fn degraded_result_is_deterministic() {
    let alg = algorithms::bitlevel_matmul(2, 3);
    let s = SpaceMap::from_rows(&[&[1, 0, 0, 0, 0], &[0, 1, 0, 0, 0]]);
    let solve = || {
        Procedure51::new(&alg, &s)
            .budget(SearchBudget::candidates(3))
            .solve()
            .unwrap()
            .into_mapping()
            .unwrap()
    };
    let a = solve();
    let b = solve();
    assert_eq!(a.schedule.as_slice(), b.schedule.as_slice());
    assert_eq!(a.objective, b.objective);
    assert_eq!(a.total_time, b.total_time);
}

/// An unlimited budget on the same problem certifies optimality, and the
/// best-effort fallback is never better than it (sanity of the tag).
#[test]
fn best_effort_never_beats_optimal() {
    let alg = algorithms::bitlevel_matmul(2, 3);
    let s = SpaceMap::from_rows(&[&[1, 0, 0, 0, 0], &[0, 1, 0, 0, 0]]);
    let optimal = Procedure51::new(&alg, &s)
        .solve()
        .unwrap()
        .expect_optimal("unlimited budget completes");
    let degraded = Procedure51::new(&alg, &s)
        .budget(SearchBudget::candidates(3))
        .solve()
        .unwrap()
        .into_mapping()
        .unwrap();
    assert!(degraded.objective >= optimal.objective);
}

/// A zero wall-clock budget trips before the first candidate; the search
/// still degrades rather than erroring out.
#[test]
fn zero_wall_clock_still_degrades() {
    let alg = algorithms::matmul(4);
    let s = SpaceMap::row(&[1, 1, -1]);
    let outcome = Procedure51::new(&alg, &s)
        .budget(SearchBudget::wall_clock(Duration::ZERO))
        .solve()
        .expect("degradation is not an error");
    assert!(outcome.certification.is_best_effort());
    let opt = outcome.into_mapping().unwrap();
    let analysis = ConflictAnalysis::new(&opt.mapping, &alg.index_set);
    assert!(analysis.is_conflict_free_exact());
}

/// Budgets thread through the joint search (Problem 6.2) the same way.
#[test]
fn joint_search_degrades_under_budget() {
    let alg = algorithms::matmul(3);
    let outcome = JointSearch::new(&alg)
        .budget(SearchBudget::candidates(2))
        .solve()
        .expect("degradation is not an error");
    assert!(
        !outcome.certification.is_optimal(),
        "2 candidates cannot certify a joint optimum: {:?}",
        outcome.certification
    );
    if let Some(sol) = outcome.into_mapping() {
        let t = MappingMatrix::new(sol.space.clone(), sol.schedule.clone());
        let analysis = ConflictAnalysis::new(&t, &alg.index_set);
        assert!(analysis.is_conflict_free_exact());
    }
}

/// `candidates_examined` reports honest effort: the exhausted search
/// stops at its cap.
#[test]
fn candidates_examined_respects_cap() {
    let alg = algorithms::bitlevel_matmul(2, 3);
    let s = SpaceMap::from_rows(&[&[1, 0, 0, 0, 0], &[0, 1, 0, 0, 0]]);
    let outcome = Procedure51::new(&alg, &s)
        .budget(SearchBudget::candidates(3))
        .solve()
        .unwrap();
    assert!(outcome.candidates_examined <= 3, "{}", outcome.candidates_examined);
}
