//! Budget-guarded search: graceful degradation under exhausted budgets.
//!
//! A search that runs out of budget must still hand back a *valid*
//! conflict-free mapping, honestly tagged [`Certification::BestEffort`] —
//! never a panic, never a silent wrong answer — and the degraded result
//! must be deterministic so CI runs are reproducible.

use cfmap::prelude::*;
use std::time::Duration;

/// A candidate budget far too small for the 5-D bit-level search trips
/// the meter and degrades to a tagged, valid, conflict-free fallback.
#[test]
fn tiny_budget_degrades_to_best_effort() {
    let alg = algorithms::bitlevel_matmul(2, 3);
    let s = SpaceMap::from_rows(&[&[1, 0, 0, 0, 0], &[0, 1, 0, 0, 0]]);
    let outcome = Procedure51::new(&alg, &s)
        .budget(SearchBudget::candidates(3))
        .solve()
        .expect("degradation is not an error");

    assert!(outcome.certification.is_best_effort(), "{:?}", outcome.certification);
    let opt = outcome.into_mapping().expect("best-effort carries a mapping");

    // The degraded mapping satisfies every condition of Definition 2.2.
    assert!(opt.mapping.has_full_rank());
    assert!(opt.schedule.is_valid_for(&alg.deps));
    let analysis = ConflictAnalysis::new(&opt.mapping, &alg.index_set);
    assert!(analysis.is_conflict_free_exact());

    // And it actually runs conflict-free on the simulated hardware.
    let report = Simulator::new(&alg, &opt.mapping).run().unwrap();
    assert!(report.conflicts.is_empty());
}

/// Degradation is deterministic: the same exhausted budget yields the
/// same fallback schedule every time.
#[test]
fn degraded_result_is_deterministic() {
    let alg = algorithms::bitlevel_matmul(2, 3);
    let s = SpaceMap::from_rows(&[&[1, 0, 0, 0, 0], &[0, 1, 0, 0, 0]]);
    let solve = || {
        Procedure51::new(&alg, &s)
            .budget(SearchBudget::candidates(3))
            .solve()
            .unwrap()
            .into_mapping()
            .unwrap()
    };
    let a = solve();
    let b = solve();
    assert_eq!(a.schedule.as_slice(), b.schedule.as_slice());
    assert_eq!(a.objective, b.objective);
    assert_eq!(a.total_time, b.total_time);
}

/// An unlimited budget on the same problem certifies optimality, and the
/// best-effort fallback is never better than it (sanity of the tag).
#[test]
fn best_effort_never_beats_optimal() {
    let alg = algorithms::bitlevel_matmul(2, 3);
    let s = SpaceMap::from_rows(&[&[1, 0, 0, 0, 0], &[0, 1, 0, 0, 0]]);
    let optimal = Procedure51::new(&alg, &s)
        .solve()
        .unwrap()
        .expect_optimal("unlimited budget completes");
    let degraded = Procedure51::new(&alg, &s)
        .budget(SearchBudget::candidates(3))
        .solve()
        .unwrap()
        .into_mapping()
        .unwrap();
    assert!(degraded.objective >= optimal.objective);
}

/// A zero wall-clock budget trips before the first candidate; the search
/// still degrades rather than erroring out.
#[test]
fn zero_wall_clock_still_degrades() {
    let alg = algorithms::matmul(4);
    let s = SpaceMap::row(&[1, 1, -1]);
    let outcome = Procedure51::new(&alg, &s)
        .budget(SearchBudget::wall_clock(Duration::ZERO))
        .solve()
        .expect("degradation is not an error");
    assert!(outcome.certification.is_best_effort());
    let opt = outcome.into_mapping().unwrap();
    let analysis = ConflictAnalysis::new(&opt.mapping, &alg.index_set);
    assert!(analysis.is_conflict_free_exact());
}

/// Budgets thread through the joint search (Problem 6.2) the same way.
#[test]
fn joint_search_degrades_under_budget() {
    let alg = algorithms::matmul(3);
    let outcome = JointSearch::new(&alg)
        .budget(SearchBudget::candidates(2))
        .solve()
        .expect("degradation is not an error");
    assert!(
        !outcome.certification.is_optimal(),
        "2 candidates cannot certify a joint optimum: {:?}",
        outcome.certification
    );
    if let Some(sol) = outcome.into_mapping() {
        let t = MappingMatrix::new(sol.space.clone(), sol.schedule.clone());
        let analysis = ConflictAnalysis::new(&t, &alg.index_set);
        assert!(analysis.is_conflict_free_exact());
    }
}

/// A request deadline that expires *mid-search* — driven by the
/// injected test clock, so no real time passes — degrades within one
/// candidate screen to a valid, conflict-free BestEffort mapping, and
/// the telemetry records the deadline as the tripped gate.
#[test]
fn deadline_expiry_mid_search_degrades_within_one_candidate() {
    use cfmap::core::budget::clock;
    use std::sync::atomic::{AtomicU64, Ordering};

    let alg = algorithms::matmul(4);
    let s = SpaceMap::row(&[1, 1, -1]);
    let _clock = clock::TestClock::start_at(1_000);
    let screened = AtomicU64::new(0);
    // The 4th candidate screen pushes the clock past the deadline; the
    // meter is checked before each subsequent candidate, so the search
    // must wind down after exactly one more charge.
    let probe = |_: &[i64]| {
        if screened.fetch_add(1, Ordering::Relaxed) + 1 == 4 {
            clock::advance_test_clock(9_000);
        }
    };
    let outcome = Procedure51::new(&alg, &s)
        .budget(SearchBudget::until(Deadline::at_micros(5_000)))
        .candidate_probe(&probe)
        .solve()
        .expect("deadline expiry degrades, it is not an error");

    assert!(outcome.certification.is_best_effort(), "{:?}", outcome.certification);
    assert_eq!(
        outcome.telemetry.budget_limit,
        Some(BudgetLimit::Deadline),
        "telemetry must record the deadline gate"
    );
    assert_eq!(
        outcome.candidates_examined, 5,
        "expiry at candidate 4 must stop after one more charge"
    );
    // Partial but *valid*: the fallback satisfies Definition 2.2 and
    // runs conflict-free on the simulated hardware.
    let opt = outcome.into_mapping().expect("best-effort carries a mapping");
    assert!(opt.mapping.has_full_rank());
    assert!(opt.schedule.is_valid_for(&alg.deps));
    let analysis = ConflictAnalysis::new(&opt.mapping, &alg.index_set);
    assert!(analysis.is_conflict_free_exact());
    let report = Simulator::new(&alg, &opt.mapping).run().unwrap();
    assert!(report.conflicts.is_empty());
}

/// The deadline-degraded result is deterministic: two runs under the
/// identical injected clock schedule produce the identical schedule.
#[test]
fn deadline_degraded_result_is_deterministic() {
    use cfmap::core::budget::clock;
    use std::sync::atomic::{AtomicU64, Ordering};

    let alg = algorithms::matmul(4);
    let s = SpaceMap::row(&[1, 1, -1]);
    let solve = || {
        let _clock = clock::TestClock::start_at(0);
        let screened = AtomicU64::new(0);
        let probe = |_: &[i64]| {
            if screened.fetch_add(1, Ordering::Relaxed) + 1 == 3 {
                clock::advance_test_clock(1_000_000);
            }
        };
        Procedure51::new(&alg, &s)
            .budget(SearchBudget::until(Deadline::at_micros(500)))
            .candidate_probe(&probe)
            .solve()
            .unwrap()
    };
    let (a, b) = (solve(), solve());
    assert_eq!(a.telemetry.budget_limit, Some(BudgetLimit::Deadline));
    assert_eq!(a.candidates_examined, b.candidates_examined);
    let (ma, mb) = (a.into_mapping().unwrap(), b.into_mapping().unwrap());
    assert_eq!(ma.schedule.as_slice(), mb.schedule.as_slice());
    assert_eq!(ma.objective, mb.objective);
    assert_eq!(ma.total_time, mb.total_time);
}

/// A deadline already expired at solve() returns BestEffort without
/// screening a single enumerated candidate.
#[test]
fn pre_expired_deadline_skips_enumeration() {
    use cfmap::core::budget::clock;

    let alg = algorithms::matmul(4);
    let s = SpaceMap::row(&[1, 1, -1]);
    let clock = clock::TestClock::start_at(9_000);
    let _ = &clock;
    let outcome = Procedure51::new(&alg, &s)
        .budget(SearchBudget::until(Deadline::at_micros(5_000)))
        .solve()
        .expect("degrades");
    assert_eq!(outcome.telemetry.budget_limit, Some(BudgetLimit::Deadline));
    assert_eq!(outcome.telemetry.enumerated, 0, "no candidate may be screened");
    assert!(outcome.certification.is_best_effort());
    assert!(outcome.into_mapping().is_some(), "fallback still hands back a mapping");
}

/// `candidates_examined` reports honest effort: the exhausted search
/// stops at its cap.
#[test]
fn candidates_examined_respects_cap() {
    let alg = algorithms::bitlevel_matmul(2, 3);
    let s = SpaceMap::from_rows(&[&[1, 0, 0, 0, 0], &[0, 1, 0, 0, 0]]);
    let outcome = Procedure51::new(&alg, &s)
        .budget(SearchBudget::candidates(3))
        .solve()
        .unwrap();
    assert!(outcome.candidates_examined <= 3, "{}", outcome.candidates_examined);
}
