//! Moderate-scale stress: larger index sets through the full stack.

use cfmap::prelude::*;

/// μ = 12 matmul: 2197 computations on a 37-PE linear array — analysis,
/// simulation and numeric execution all hold up.
#[test]
fn matmul_mu_12_full_stack() {
    let mu = 12;
    let alg = algorithms::matmul(mu);
    let mapping =
        MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[1, mu, 1]));

    // Theory: conflict-free, rank 2.
    let analysis = ConflictAnalysis::new(&mapping, &alg.index_set);
    assert!(analysis.is_conflict_free_exact());
    let gamma = analysis.unique_conflict_vector().unwrap();
    assert_eq!(gamma.to_i64s().unwrap(), vec![mu + 1, -2, mu - 1]);

    // Simulation (parallel placement) agrees with the formula.
    let report = Simulator::new(&alg, &mapping).run_parallel(4).unwrap();
    assert!(report.conflicts.is_empty());
    assert_eq!(report.makespan(), mu * (mu + 2) + 1);
    assert_eq!(report.computations, 13u64.pow(3));

    // Numeric: a 13×13 matrix product, parallel execution.
    let kernel = MatmulKernel::random((mu + 1) as usize, 3);
    let result = execute_parallel(&alg, &mapping, &kernel, 4);
    assert!(result.causality_violations.is_empty());
    assert_eq!(kernel.extract_product(&result, mu), kernel.reference_product());
}

/// μ = 10 transitive closure with the paper-optimal schedule: the oracle
/// (1331 points) and the lattice test agree, and the speedup over the
/// [22] baseline approaches its asymptote.
#[test]
fn transitive_closure_mu_10() {
    let mu = 10;
    let alg = algorithms::transitive_closure(mu);
    let mapping =
        MappingMatrix::new(SpaceMap::row(&[0, 0, 1]), LinearSchedule::new(&[mu + 1, 1, 1]));
    assert!(oracle::is_conflict_free_by_enumeration(&mapping, &alg.index_set));
    let analysis = ConflictAnalysis::new(&mapping, &alg.index_set);
    assert!(analysis.is_conflict_free_exact());
    let t_opt = mapping.schedule().total_time(&alg.index_set);
    let t_base = mu * (2 * mu + 3) + 1;
    assert_eq!(t_opt, mu * (mu + 3) + 1);
    assert!((t_base as f64 / t_opt as f64) > 1.7);
}

/// A 6-dimensional synthetic algorithm through analysis (kernel dimension
/// 4 exercises the generalized conditions and the LLL path).
#[test]
fn six_dimensional_analysis() {
    let alg = algorithms::identity_cube(6, 2);
    let mapping = MappingMatrix::from_rows(&[
        &[1, 0, 0, 0, 0, 0],
        &[1, 3, 9, 27, 81, 243],
    ]);
    let analysis = ConflictAnalysis::new(&mapping, &alg.index_set);
    assert_eq!(analysis.lattice_basis().len(), 4);
    // Powers of 3 with μ = 2: any kernel vector needs an entry ≥ 3 in
    // magnitude ⇒ conflict-free.
    assert!(analysis.is_conflict_free_exact());
    assert!(oracle::is_conflict_free_by_enumeration(&mapping, &alg.index_set));
    // And the repaired subset condition must not contradict (it may be
    // Unknown, never a false refutation of a clean mapping is possible
    // since refutations come from Theorem 4.4 which is necessary).
    let verdict = conditions::paper_condition(&analysis, &alg.index_set);
    assert_ne!(verdict, ConditionVerdict::HasConflict);
}

/// Bit-expanded convolution at a larger size: derived algorithm maps and
/// simulates cleanly on a 2-D array.
#[test]
fn expanded_convolution_scale() {
    let word = algorithms::convolution(4, 4);
    let bit = expand_to_bit_level(&word, 2);
    assert_eq!(bit.dim(), 4);
    let rows = extend_space_rows(&[vec![1, 0], vec![0, 1]]);
    let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
    let design = ArrayDesign::synthesize(&bit, SpaceMap::from_rows(&refs))
        .build()
        .expect("synthesizable");
    assert!(design.report.is_clean());
    assert_eq!(design.report.computations as u128, bit.num_computations());
    assert!(design.stats.mean_utilization() > 0.5);
}
