//! Chaos suite: replay seeded fault plans against a live `cfmapd` and
//! assert the service-level invariants — workers survive every injected
//! failure, admission control sheds with well-formed `503` + `Retry-After`
//! answers (never unbounded buffering), expired deadlines come back
//! best-effort promptly, and shutdown drains queued work within its
//! deadline.
//!
//! Every random choice flows from a hardcoded seed through
//! `cfmap_testkit::fault::FaultPlan`, so a failure here reproduces
//! byte-for-byte from the seed printed in the assertion message.

use cfmap::service::client::{self, Client, ClientConfig};
use cfmap::service::json::{parse, Json};
use cfmap::service::wire::{MapRequest, MapResponse};
use cfmap_testkit::fault::{run_action, FaultAction, FaultPlan};
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::str::FromStr;
use std::time::{Duration, Instant};

/// A running daemon that is shut down (or killed) when dropped.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(extra_args: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_cfmapd"))
            .args(["--addr", "127.0.0.1:0"])
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("cfmapd spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut first_line = String::new();
        BufReader::new(stdout).read_line(&mut first_line).expect("startup line");
        let addr = first_line
            .trim()
            .strip_prefix("cfmapd listening on ")
            .unwrap_or_else(|| panic!("unexpected startup line {first_line:?}"))
            .to_string();
        Daemon { child, addr }
    }

    /// POST /shutdown and wait for a clean exit, returning how long the
    /// drain took.
    fn stop(mut self) -> Duration {
        let started = Instant::now();
        let _ = client::post(&self.addr, "/shutdown", "");
        let status = self.child.wait().expect("cfmapd exits");
        assert!(status.success(), "cfmapd exited with {status:?}");
        let elapsed = started.elapsed();
        std::mem::forget(self); // disarm the Drop kill
        elapsed
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn matmul_request() -> MapRequest {
    MapRequest::named("matmul", 4, vec![vec![1, 1, -1]])
}

fn matmul_body() -> String {
    matmul_request().to_json().serialize()
}

/// Assert the daemon's whole worker pool still answers real work.
fn assert_workers_alive(addr: &str) {
    let reply = client::get(addr, "/healthz").expect("daemon still serves /healthz");
    assert_eq!(reply.status, 200);
    let resp = client::map(addr, &matmul_request()).expect("daemon still solves");
    assert!(matches!(resp, MapResponse::Ok(_)), "{resp:?}");
}

/// Scrape `/metrics` and return the value of an unlabeled series.
fn metric_value(addr: &str, name: &str) -> Option<i64> {
    let text = client::get(addr, "/metrics").expect("metrics scrape").body;
    text.lines()
        .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
        .and_then(|l| l[name.len()..].trim().parse().ok())
}

/// Replay a seeded 24-action fault plan — slow-loris writes, mid-request
/// and pre-response disconnects, injected worker panics and stalls mixed
/// into healthy traffic — and check every response class. The plan (and
/// therefore the whole test) is a pure function of the seed.
#[test]
fn seeded_fault_plan_replay_keeps_every_worker_alive() {
    const SEED: u64 = 0xCFAD_0000;
    let daemon = Daemon::spawn(&["--workers", "4", "--enable-fault-injection"]);
    let addr = daemon.addr.clone();
    let plan = FaultPlan::from_seed(SEED, 24);
    let body = matmul_body();

    for (i, action) in plan.actions.iter().enumerate() {
        let ctx = format!("seed {SEED:#x}, action {i}: {action:?}");
        let outcome = run_action(&addr, "/map", &body, action)
            .unwrap_or_else(|e| panic!("{ctx}: transport failed: {e}"));
        match action {
            FaultAction::Normal | FaultAction::SlowWrite { .. } | FaultAction::SearchStall { .. } => {
                assert_eq!(outcome.status, Some(200), "{ctx}: {}", outcome.body);
                let resp = MapResponse::from_str(&outcome.body)
                    .unwrap_or_else(|e| panic!("{ctx}: bad wire body: {e}"));
                assert!(matches!(resp, MapResponse::Ok(_)), "{ctx}: {resp:?}");
            }
            FaultAction::WorkerPanic => {
                assert_eq!(outcome.status, Some(500), "{ctx}: {}", outcome.body);
                let json = parse(&outcome.body).unwrap_or_else(|e| panic!("{ctx}: {e}"));
                assert_eq!(
                    json.get("status").and_then(Json::as_str),
                    Some("internal_error"),
                    "{ctx}"
                );
            }
            FaultAction::DisconnectMidRequest { .. } | FaultAction::DisconnectBeforeResponse => {
                assert_eq!(outcome.status, None, "{ctx}: disconnects read nothing");
            }
        }
    }

    // The plan must have actually exercised faults, not just been lucky.
    assert!(
        plan.actions.iter().any(|a| matches!(a, FaultAction::WorkerPanic)),
        "seed {SEED:#x} drew no worker panic; pick a different seed"
    );
    assert_workers_alive(&addr);
    assert_eq!(metric_value(&addr, "cfmapd_queue_depth"), Some(0), "queue drains to zero");
    daemon.stop();
}

/// Overload: one worker wedged by an injected stall, queue capacity 1,
/// then a burst of 8 concurrent clients. The daemon must shed the
/// overflow immediately with a *well-formed* `503` carrying
/// `Retry-After` — and must never buffer the burst unboundedly.
#[test]
fn queue_full_burst_sheds_with_well_formed_503() {
    let daemon = Daemon::spawn(&[
        "--workers",
        "1",
        "--queue-capacity",
        "1",
        "--enable-fault-injection",
    ]);
    let addr = daemon.addr.clone();

    // Wedge the only worker for 3 s.
    let stall_addr = addr.clone();
    let stall = std::thread::spawn(move || {
        run_action(
            &stall_addr,
            "/map",
            &matmul_body(),
            &FaultAction::SearchStall { ms: 3_000 },
        )
        .expect("stalled request eventually answers")
    });
    // Let the worker pick the stall request up before bursting.
    std::thread::sleep(Duration::from_millis(300));

    let burst: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || client::post(&addr, "/map", &matmul_body()))
        })
        .collect();
    let replies: Vec<_> = burst
        .into_iter()
        .map(|h| h.join().unwrap().expect("shed or served, never a dead socket"))
        .collect();

    let shed: Vec<_> = replies.iter().filter(|r| r.status == 503).collect();
    let served = replies.iter().filter(|r| r.status == 200).count();
    assert!(
        !shed.is_empty(),
        "queue capacity 1 with a wedged worker must shed most of an 8-burst: {:?}",
        replies.iter().map(|r| r.status).collect::<Vec<_>>()
    );
    assert!(served <= 2, "at most the queued request (and a post-stall pickup) can be served");
    for reply in &shed {
        assert_eq!(reply.retry_after, Some(1), "every shed must carry Retry-After: {reply:?}");
        let json = parse(&reply.body).expect("shed body is JSON");
        assert_eq!(json.get("status").and_then(Json::as_str), Some("overloaded"), "{reply:?}");
    }

    let outcome = stall.join().unwrap();
    assert_eq!(outcome.status, Some(200), "the stalled request still answers");

    assert_workers_alive(&addr);
    assert!(
        metric_value(&addr, "cfmapd_requests_shed_total").unwrap_or(0) >= shed.len() as i64,
        "shed counter must record the burst"
    );
    assert_eq!(metric_value(&addr, "cfmapd_queue_depth"), Some(0));
    daemon.stop();
}

/// A client with retries enabled rides out a shed: it honors the 503's
/// Retry-After with jittered backoff and succeeds once the worker frees
/// up.
#[test]
fn retrying_client_recovers_from_sheds() {
    let daemon = Daemon::spawn(&[
        "--workers",
        "1",
        "--queue-capacity",
        "1",
        "--enable-fault-injection",
    ]);
    let addr = daemon.addr.clone();

    let stall_addr = addr.clone();
    let stall = std::thread::spawn(move || {
        run_action(&stall_addr, "/map", &matmul_body(), &FaultAction::SearchStall { ms: 1_500 })
    });
    std::thread::sleep(Duration::from_millis(300));

    // Saturate the queue slot so the retrying client's first attempt is
    // likely shed, then watch it recover.
    let filler_addr = addr.clone();
    let filler = std::thread::spawn(move || client::post(&filler_addr, "/map", &matmul_body()));

    std::thread::sleep(Duration::from_millis(50));
    let mut retrying = Client::new(
        &addr,
        ClientConfig { retries: 5, jitter_seed: 0xBEEF, ..ClientConfig::default() },
    );
    let resp = retrying.map(&matmul_request()).expect("retries ride out the shed");
    assert!(matches!(resp, MapResponse::Ok(_)), "{resp:?}");

    let _ = filler.join().unwrap();
    let _ = stall.join().unwrap();
    daemon.stop();
}

/// An expired deadline must come back `BestEffort` within one
/// candidate-screen latency — not after a full search. The bound here is
/// generous for CI noise, but orders of magnitude below a stuck search.
#[test]
fn expired_deadline_returns_best_effort_promptly() {
    let daemon = Daemon::spawn(&[]);
    let addr = daemon.addr.clone();

    let mut req = matmul_request();
    req.deadline_ms = Some(0); // expired the moment the daemon accepts it
    let started = Instant::now();
    let resp = client::map(&addr, &req).expect("deadline expiry degrades, not errors");
    let elapsed = started.elapsed();
    let MapResponse::Ok(o) = resp else { panic!("expected best-effort Ok, got {resp:?}") };
    assert!(
        matches!(o.certification, cfmap::prelude::Certification::BestEffort { .. }),
        "{:?}",
        o.certification
    );
    assert!(!o.cached, "deadline-limited answers must not come from or feed the cache");
    assert!(
        elapsed < Duration::from_secs(2),
        "expired deadline answered in {elapsed:?}; must be within one candidate screen"
    );

    // The deadline metrics recorded the expiry.
    assert!(metric_value(&addr, "cfmap_deadline_expired_total").unwrap_or(0) >= 1);
    daemon.stop();
}

/// Shutdown under load: queued requests are answered during the drain,
/// the daemon refuses new work afterwards, and the whole drain stays
/// within the configured deadline (plus scheduling slack).
#[test]
fn drain_answers_queued_requests_within_deadline() {
    let daemon = Daemon::spawn(&[
        "--workers",
        "1",
        "--queue-capacity",
        "8",
        "--drain-deadline-ms",
        "5000",
        "--enable-fault-injection",
    ]);
    let addr = daemon.addr.clone();

    // Wedge the worker briefly so follow-up requests sit in the queue.
    let stall_addr = addr.clone();
    let stall = std::thread::spawn(move || {
        run_action(&stall_addr, "/map", &matmul_body(), &FaultAction::SearchStall { ms: 1_000 })
    });
    std::thread::sleep(Duration::from_millis(300));
    let queued: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || client::post(&addr, "/map", &matmul_body()))
        })
        .collect();
    std::thread::sleep(Duration::from_millis(200)); // let them enqueue

    let drain = daemon.stop();
    assert!(
        drain < Duration::from_secs(8),
        "drain took {drain:?}, exceeding the deadline + slack"
    );

    // Every request that made it into the queue before shutdown was
    // answered during the drain with a complete response.
    for handle in queued {
        let reply = handle.join().unwrap().expect("queued request answered during drain");
        assert_eq!(reply.status, 200, "{}", reply.body);
        let resp = MapResponse::from_str(&reply.body).expect("well-formed drain answer");
        assert!(matches!(resp, MapResponse::Ok(_)));
    }
    let _ = stall.join().unwrap();

    // The listener is gone: new connections are refused, not buffered.
    assert!(client::get(&addr, "/healthz").is_err(), "daemon must stop accepting after drain");
}

/// Raw slow-loris bytes and half-written requests directly against the
/// socket (outside any fault plan) must neither wedge nor kill workers.
#[test]
fn slow_loris_and_half_requests_leave_pool_intact() {
    let daemon = Daemon::spawn(&["--workers", "2"]);
    let addr = daemon.addr.clone();
    let body = matmul_body();

    for keep in [0usize, 1, 10, 25, 40] {
        let out = run_action(&addr, "/map", &body, &FaultAction::DisconnectMidRequest { keep_bytes: keep })
            .expect("mid-request disconnect is not a transport error");
        assert_eq!(out.status, None);
    }
    for _ in 0..3 {
        let out = run_action(&addr, "/map", &body, &FaultAction::DisconnectBeforeResponse)
            .expect("pre-response disconnect is not a transport error");
        assert_eq!(out.status, None);
    }
    let out = run_action(&addr, "/map", &body, &FaultAction::SlowWrite { chunk: 3, delay_ms: 5 })
        .expect("slow-loris request completes");
    assert_eq!(out.status, Some(200), "{}", out.body);

    // An unfinished header line that just stops: the worker's socket
    // read timeout reclaims it (we don't wait the full 10 s here — just
    // prove the daemon still serves with a loris connection open).
    let mut wedge = std::net::TcpStream::connect(&addr).expect("connect");
    wedge.write_all(b"POST /map HTT").expect("half a request line");
    assert_workers_alive(&addr);
    drop(wedge);

    daemon.stop();
}
