//! Randomized cross-validation across the full stack: closed-form
//! conditions vs exact lattice decision vs exhaustive oracle vs simulator,
//! and Procedure 5.1 vs the ILP decomposition.

use cfmap::prelude::*;
use cfmap_testkit::gen;

cfmap_testkit::props! {
    cases = 40;

    /// Four deciders, one verdict (3-D, k = 2).
    fn all_deciders_agree_3d(
        s in gen::vec(-3i64..=3, 3),
        pi in gen::vec(-3i64..=3, 3),
        mu in 1i64..5,
    ) {
        let t = MappingMatrix::from_rows(&[&s[..], &pi[..]]);
        let j = IndexSet::cube(3, mu);
        let analysis = ConflictAnalysis::new(&t, &j);
        let exact = analysis.is_conflict_free_exact();
        let by_oracle = oracle::is_conflict_free_by_enumeration(&t, &j);
        assert_eq!(exact, by_oracle);

        // Simulator agrees (use a small algorithm shell around J).
        let alg = Uda::new(
            "probe",
            j.clone(),
            DependenceMatrix::from_columns(&[&[1, 0, 0], &[0, 1, 0], &[0, 0, 1]]),
        );
        let report = Simulator::new(&alg, &t).run().unwrap();
        assert_eq!(exact, report.conflicts.is_empty());

        // Closed form never contradicts.
        match conditions::paper_condition(&analysis, &j) {
            ConditionVerdict::ConflictFree => assert!(exact),
            ConditionVerdict::HasConflict => assert!(!exact),
            ConditionVerdict::Unknown => {}
        }
    }

    /// Witnesses extracted from the lattice are real collisions (4-D).
    fn lattice_witnesses_collide_4d(
        s in gen::vec(-2i64..=2, 4),
        pi in gen::vec(-2i64..=2, 4),
        mu in 1i64..4,
    ) {
        let t = MappingMatrix::from_rows(&[&s[..], &pi[..]]);
        let j = IndexSet::cube(4, mu);
        let analysis = ConflictAnalysis::new(&t, &j);
        if let Some(gamma) = analysis.find_small_kernel_vector() {
            let w = analysis.witness_from_kernel_vector(&gamma).unwrap();
            assert!(j.contains(&w.j1));
            assert!(j.contains(&w.j2));
            assert_ne!(&w.j1, &w.j2);
            assert_eq!(t.apply(&w.j1), t.apply(&w.j2));
        }
    }

    /// Equation 3.2's adjugate formula and the HNF kernel agree for every
    /// full-rank (n−1)×n mapping.
    fn eq_3_2_equals_hnf(
        s in gen::vec(-3i64..=3, 4),
        pi in gen::vec(-3i64..=3, 4),
        s2 in gen::vec(-3i64..=3, 4),
    ) {
        let t = MappingMatrix::from_rows(&[&s[..], &s2[..], &pi[..]]);
        let j = IndexSet::cube(4, 3);
        let analysis = ConflictAnalysis::new(&t, &j);
        if analysis.rank() != 3 {
            return;
        }
        let via_hnf = analysis.unique_conflict_vector();
        let via_adj = analysis.conflict_vector_eq_3_2();
        if let (Some(a), Some(b)) = (&via_hnf, &via_adj) {
            assert_eq!(a, b);
        }
    }
}

/// Procedure 5.1 and the ILP decomposition find the same optimum across a
/// μ sweep on both paper workloads (experiment E7's core claim).
#[test]
fn search_and_ilp_agree() {
    for mu in 2..=5i64 {
        let alg = algorithms::matmul(mu);
        let s = SpaceMap::row(&[1, 1, -1]);
        let a = Procedure51::new(&alg, &s).solve().unwrap().expect_optimal("solvable");
        let b = optimal_schedule_ilp(&alg, &s, 2 * mu + 4, SearchBudget::unlimited())
            .unwrap()
            .expect_optimal("solvable");
        assert_eq!(a.objective, b.objective, "matmul μ = {mu}");

        let alg = algorithms::transitive_closure(mu);
        let s = SpaceMap::row(&[0, 0, 1]);
        let a = Procedure51::new(&alg, &s).solve().unwrap().expect_optimal("solvable");
        let b = optimal_schedule_ilp(&alg, &s, 2 * mu + 4, SearchBudget::unlimited())
            .unwrap()
            .expect_optimal("solvable");
        assert_eq!(a.objective, b.objective, "TC μ = {mu}");
    }
}

/// Paper-condition-driven search is never better than the exact search
/// (sufficiency ⇒ soundness) and agrees on the paper workloads.
#[test]
fn paper_conditions_sound_in_search() {
    for mu in 2..=4i64 {
        let alg = algorithms::matmul(mu);
        let s = SpaceMap::row(&[1, 1, -1]);
        let exact = Procedure51::new(&alg, &s).solve().unwrap().expect_optimal("solvable");
        let paper = Procedure51::new(&alg, &s)
            .condition(ConditionKind::Paper)
            .solve()
            .unwrap()
            .expect_optimal("solvable");
        assert!(paper.objective >= exact.objective, "μ = {mu}");
        assert_eq!(paper.objective, exact.objective, "μ = {mu}: Thm 3.1 is exact for r = 1");
    }
}

/// Proposition 8.1's closed form plugged into the repaired Theorem 4.7/4.8
/// test is sound against the oracle on random normalized 3×5 mappings.
#[test]
fn prop81_plus_sign_conditions_sound() {
    let mut checked = 0;
    for seed in 0..200i64 {
        // Simple deterministic pseudo-random pattern.
        let v = |k: i64| ((seed * 37 + k * 101) % 7) - 3;
        let s12 = v(1);
        let s21 = v(2);
        let s22 = 1 + s21 * s12;
        let s_rows: [Vec<i64>; 2] = [
            vec![1, s12, v(3), v(4), v(5)],
            vec![s21, s22, v(6), v(7), v(8)],
        ];
        let pi: Vec<i64> = (9..14).map(v).collect();
        let t = MappingMatrix::from_rows(&[&s_rows[0][..], &s_rows[1][..], &pi[..]]);
        if t.as_mat().rank() < 3 {
            continue;
        }
        let Some((u4, u5)) = prop_8_1_basis(&t) else { continue };
        let j = IndexSet::cube(5, 2);
        let verdict = conditions::sign_pattern_condition_on_basis(&[u4, u5], &j);
        if verdict == ConditionVerdict::ConflictFree {
            assert!(
                oracle::is_conflict_free_by_enumeration(&t, &j),
                "false certificate at seed {seed}"
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "no certificates fired — strengthen the instance family");
}
