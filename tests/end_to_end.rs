//! End-to-end integration: every library algorithm gets mapped, analyzed,
//! simulated and (where semantics exist) numerically verified.

use cfmap::prelude::*;

/// For each algorithm: pick a natural space map, find the optimal
/// conflict-free schedule, synthesize the array, simulate, and check that
/// the theory and the simulation agree on every observable.
#[test]
fn full_pipeline_over_the_library() {
    let cases: Vec<(Uda, SpaceMap, i64)> = vec![
        (algorithms::matmul(3), SpaceMap::row(&[1, 1, -1]), 60),
        (algorithms::transitive_closure(3), SpaceMap::row(&[0, 0, 1]), 60),
        (algorithms::convolution(4, 3), SpaceMap::row(&[1, -1]), 60),
        (algorithms::lu_decomposition(3), SpaceMap::row(&[1, 0, -1]), 60),
        (
            algorithms::bitlevel_convolution(2, 2),
            SpaceMap::from_rows(&[&[1, 0, 0, 0], &[0, 1, 0, 0]]),
            60,
        ),
        (
            algorithms::bitlevel_matmul(2, 2),
            SpaceMap::from_rows(&[&[1, 0, 0, 0, 0], &[0, 1, 0, 0, 0]]),
            80,
        ),
    ];
    for (alg, s, cap) in cases {
        let opt = Procedure51::new(&alg, &s)
            .max_objective(cap)
            .solve()
            .unwrap()
            .into_mapping()
            .unwrap_or_else(|| panic!("no mapping for {}", alg.name));

        // Theory side.
        assert!(opt.mapping.has_full_rank(), "{}", alg.name);
        assert!(opt.schedule.is_valid_for(&alg.deps), "{}", alg.name);
        let analysis = ConflictAnalysis::new(&opt.mapping, &alg.index_set);
        assert!(analysis.is_conflict_free_exact(), "{}", alg.name);

        // Simulation side must agree observable by observable.
        let report = Simulator::new(&alg, &opt.mapping).run().unwrap();
        assert!(report.conflicts.is_empty(), "{}", alg.name);
        assert_eq!(report.makespan(), opt.total_time, "{}", alg.name);
        assert_eq!(report.computations as u128, alg.num_computations(), "{}", alg.name);

        // Array geometry is consistent.
        let array = SystolicArray::synthesize(&alg, &opt.mapping);
        assert_eq!(array.total_time(), opt.total_time, "{}", alg.name);
        assert_eq!(array.dims(), s.array_dims(), "{}", alg.name);
        assert!(report.peak_parallelism <= array.num_processors(), "{}", alg.name);

        // Structural execution: causal, chain-depth bounded by makespan.
        let depth = execute(&alg, &opt.mapping, &DepthKernel);
        assert!(depth.causality_violations.is_empty(), "{}", alg.name);
        let max_depth = depth.values.values().copied().max().unwrap();
        assert!(max_depth <= opt.total_time, "{}", alg.name);
    }
}

/// Numeric end-to-end: the mapped matmul array multiplies matrices for a
/// range of sizes, sequentially and in parallel.
#[test]
fn matmul_numeric_sweep() {
    for mu in 2..=5i64 {
        let alg = algorithms::matmul(mu);
        let s = SpaceMap::row(&[1, 1, -1]);
        let opt = Procedure51::new(&alg, &s).solve().unwrap().expect_optimal("solvable");
        let kernel = MatmulKernel::random((mu + 1) as usize, mu as u64);
        let seq = execute(&alg, &opt.mapping, &kernel);
        assert!(seq.causality_violations.is_empty());
        assert_eq!(kernel.extract_product(&seq, mu), kernel.reference_product(), "μ = {mu}");
        let par = execute_parallel(&alg, &opt.mapping, &kernel, 4);
        assert_eq!(par.values, seq.values, "μ = {mu} parallel determinism");
    }
}

/// Numeric end-to-end: convolution on its systolic mapping.
#[test]
fn convolution_numeric() {
    let (mu_y, mu_w) = (7, 4);
    let alg = algorithms::convolution(mu_y, mu_w);
    let s = SpaceMap::row(&[1, -1]);
    let opt = Procedure51::new(&alg, &s).solve().unwrap().expect_optimal("solvable");
    let kernel = ConvolutionKernel {
        x: vec![2, -3, 5, 7, -11, 13, 0, 1],
        w: vec![1, -2, 4, 0, 3],
    };
    let result = execute(&alg, &opt.mapping, &kernel);
    assert!(result.causality_violations.is_empty());
    let y: Vec<i64> = (0..=mu_y).map(|i| result.values[&vec![i, mu_w]].y).collect();
    assert_eq!(y, kernel.reference(mu_y));
}

/// The routing layer composes with the optimizer for every 1-D design.
#[test]
fn routed_linear_designs() {
    let prims = InterconnectionPrimitives::from_columns(&[&[1], &[-1]]);
    for (alg, s) in [
        (algorithms::transitive_closure(3), SpaceMap::row(&[0, 0, 1])),
        (algorithms::convolution(4, 3), SpaceMap::row(&[1, -1])),
    ] {
        let opt = Procedure51::new(&alg, &s)
            .primitives(&prims)
            .solve()
            .unwrap()
            .into_mapping()
            .unwrap_or_else(|| panic!("no routable mapping for {}", alg.name));
        let routing = opt.routing.expect("routing present");
        // P·K = S·D.
        let sd = opt.mapping.space().as_mat() * alg.deps.as_mat();
        assert_eq!(&(prims.as_mat() * &routing.k), &sd, "{}", alg.name);
        // Simulated link traffic is collision-free.
        let report = Simulator::new(&alg, &opt.mapping).with_routing(&routing).run().unwrap();
        assert!(report.is_clean(), "{}", alg.name);
    }
}

/// Smith and Hermite agree on every mapping the optimizer produces.
#[test]
fn normal_forms_cross_check() {
    for (alg, s) in [
        (algorithms::matmul(4), SpaceMap::row(&[1, 1, -1])),
        (algorithms::transitive_closure(4), SpaceMap::row(&[0, 0, 1])),
    ] {
        let opt = Procedure51::new(&alg, &s).solve().unwrap().expect_optimal("solvable");
        let t = opt.mapping.as_mat();
        let hnf = hermite_normal_form(t);
        let smith = smith_normal_form(t);
        assert_eq!(hnf.rank, smith.rank);
        assert_eq!(hnf.kernel_cols().len(), smith.kernel_cols().len());
        // Both designs are onto Z^k: dense processor/time utilization.
        assert!(smith.is_surjective_onto_zk());
    }
}
