//! End-to-end tests of the `cfmap` command-line tool.

use std::process::Command;

fn cfmap(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_cfmap"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn cfmap_code(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_cfmap"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code().expect("not signal-killed"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn map_finds_paper_optimum() {
    let (ok, stdout, _) = cfmap(&["map", "--alg", "matmul", "--mu", "4", "--space", "1,1,-1"]);
    assert!(ok);
    assert!(stdout.contains("t = 25 cycles"), "{stdout}");
    assert!(stdout.contains("13 PEs"), "{stdout}");
}

#[test]
fn analyze_flags_conflicting_schedule() {
    let (ok, stdout, _) = cfmap(&[
        "analyze", "--alg", "matmul", "--mu", "4", "--space", "1,1,-1", "--pi", "1,1,4",
    ]);
    assert!(ok);
    assert!(stdout.contains("CONFLICTS"), "{stdout}");
    assert!(stdout.contains("NonFeasible"), "{stdout}");
}

#[test]
fn analyze_certifies_clean_schedule() {
    let (ok, stdout, _) = cfmap(&[
        "analyze", "--alg", "matmul", "--mu", "4", "--space", "1,1,-1", "--pi", "1,4,1",
    ]);
    assert!(ok);
    assert!(stdout.contains("CONFLICT-FREE"), "{stdout}");
}

#[test]
fn simulate_reports_makespan_and_diagram() {
    let (ok, stdout, _) = cfmap(&[
        "simulate", "--alg", "matmul", "--mu", "2", "--space", "1,1,-1", "--pi", "1,2,1",
        "--diagram",
    ]);
    assert!(ok);
    assert!(stdout.contains("makespan     : 9 cycles"), "{stdout}");
    assert!(stdout.contains("conflicts    : 0"), "{stdout}");
    assert!(stdout.contains("PE0"), "{stdout}");
}

#[test]
fn space_opt_matches_library() {
    let (ok, stdout, _) = cfmap(&["space-opt", "--alg", "matmul", "--mu", "4", "--pi", "1,4,1"]);
    assert!(ok);
    assert!(stdout.contains("combined cost : 11"), "{stdout}");
}

#[test]
fn transitive_closure_via_cli() {
    let (ok, stdout, _) = cfmap(&[
        "map", "--alg", "transitive-closure", "--mu", "4", "--space", "0,0,1",
    ]);
    assert!(ok);
    assert!(stdout.contains("t = 29 cycles"), "{stdout}");
    assert!(stdout.contains("[5, 1, 1]"), "{stdout}");
}

#[test]
fn joint_finds_problem_6_2_design() {
    let (ok, stdout, _) = cfmap(&["joint", "--alg", "matmul", "--mu", "3"]);
    assert!(ok);
    assert!(stdout.contains("total time : 16 cycles"), "{stdout}");
    let (ok, stdout, _) = cfmap(&["joint", "--alg", "matmul", "--mu", "3", "--criterion", "space"]);
    assert!(ok);
    assert!(stdout.contains("space cost"), "{stdout}");
}

#[test]
fn bounds_reports_floors() {
    let (ok, stdout, _) = cfmap(&["bounds", "--alg", "matmul", "--mu", "4"]);
    assert!(ok);
    assert!(stdout.contains("critical path         : 13 cycles"), "{stdout}");
    assert!(stdout.contains("pigeonhole"), "{stdout}");
}

#[test]
fn analyze_prints_condition_table() {
    let (ok, stdout, _) = cfmap(&[
        "analyze", "--alg", "matmul", "--mu", "4", "--space", "1,1,-1", "--pi", "1,1,4",
    ]);
    assert!(ok);
    assert!(stdout.contains("1. ΠD > 0"), "{stdout}");
    assert!(stdout.contains("collision witness"), "{stdout}");
}

#[test]
fn list_shows_workloads() {
    let (ok, stdout, _) = cfmap(&["list"]);
    assert!(ok);
    assert!(stdout.contains("matmul"));
    assert!(stdout.contains("bitlevel"));
}

#[test]
fn errors_are_reported_cleanly() {
    let (ok, _, stderr) = cfmap(&["map", "--alg", "nonsense", "--mu", "4", "--space", "1,1,-1"]);
    assert!(!ok);
    assert!(stderr.contains("unknown algorithm"), "{stderr}");

    let (ok, _, stderr) = cfmap(&["map", "--alg", "matmul", "--mu", "4", "--space", "1,1"]);
    assert!(!ok);
    assert!(stderr.contains("entries"), "{stderr}");

    let (ok, _, stderr) = cfmap(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"), "{stderr}");

    let (ok, _, stderr) = cfmap(&[]);
    assert!(!ok);
    assert!(stderr.contains("USAGE"), "{stderr}");
}

#[test]
fn broken_pipe_exits_quietly() {
    // `cfmap … | head` closes stdout early; the CLI must end like a
    // normal Unix filter (no panic backtrace, success-ish exit).
    use std::io::Read;
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_cfmap"))
        // μ = 16 produces ~110 KB of diagram — larger than the 64 KB pipe
        // buffer, so the early close genuinely triggers the broken pipe.
        .args(["simulate", "--alg", "matmul", "--mu", "16", "--space", "1,1,-1", "--pi", "1,16,1", "--diagram"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    // Read a few bytes, then drop the pipe while the diagram is still
    // being written.
    let mut buf = [0u8; 64];
    let _ = child.stdout.as_mut().unwrap().read(&mut buf);
    drop(child.stdout.take());
    let status = child.wait().expect("wait");
    let mut stderr = String::new();
    child.stderr.take().unwrap().read_to_string(&mut stderr).unwrap();
    assert!(!stderr.contains("panicked"), "backtrace leaked: {stderr}");
    assert!(status.success(), "status: {status:?}, stderr: {stderr}");
}

#[test]
fn cap_exhaustion_is_an_error() {
    let (ok, _, stderr) = cfmap(&[
        "map", "--alg", "matmul", "--mu", "4", "--space", "1,1,-1", "--cap", "2",
    ]);
    assert!(!ok);
    assert!(stderr.contains("no conflict-free schedule"), "{stderr}");
}

#[test]
fn exit_codes_encode_the_failure_class() {
    // 0: success.
    let (code, _, _) = cfmap_code(&["map", "--alg", "matmul", "--mu", "4", "--space", "1,1,-1"]);
    assert_eq!(code, 0);
    // 1: the search proved infeasibility within its caps.
    let (code, _, _) = cfmap_code(&[
        "map", "--alg", "matmul", "--mu", "4", "--space", "1,1,-1", "--cap", "2",
    ]);
    assert_eq!(code, 1);
    // 2: usage errors (bad args, unknown command, unknown algorithm).
    let (code, _, _) = cfmap_code(&["frobnicate"]);
    assert_eq!(code, 2);
    let (code, _, _) = cfmap_code(&["map", "--alg", "nonsense", "--mu", "4", "--space", "1,1,-1"]);
    assert_eq!(code, 2);
    let (code, _, _) = cfmap_code(&["map", "--alg", "matmul", "--mu", "4", "--space", "1,1"]);
    assert_eq!(code, 2);
}

#[test]
fn budget_flag_degrades_to_best_effort() {
    // A 3-candidate budget cannot certify optimality; the CLI reports a
    // valid best-effort design and still exits 0 — degraded, not failed.
    let (code, stdout, _) = cfmap_code(&[
        "map", "--alg", "bitlevel-matmul", "--mu", "2", "--space",
        "1,0,0,0,0;0,1,0,0,0", "--max-candidates", "3",
    ]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("best-effort"), "{stdout}");
    assert!(stdout.contains("schedule"), "{stdout}");
}

#[test]
fn unlimited_budget_certifies_optimal() {
    let (code, stdout, _) =
        cfmap_code(&["map", "--alg", "matmul", "--mu", "4", "--space", "1,1,-1"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("certified : optimal"), "{stdout}");
}
