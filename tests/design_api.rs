//! The one-call design API (`ArrayDesign`) and the Problem 6.1 space
//! search, end to end.

use cfmap::prelude::*;

#[test]
fn design_api_over_the_library() {
    let cases: Vec<(Uda, SpaceMap)> = vec![
        (algorithms::matmul(4), SpaceMap::row(&[1, 1, -1])),
        (algorithms::transitive_closure(4), SpaceMap::row(&[0, 0, 1])),
        (algorithms::convolution(5, 3), SpaceMap::row(&[1, -1])),
        (algorithms::sor(4, 4), SpaceMap::row(&[0, 1])),
        (algorithms::matvec(4, 4), SpaceMap::row(&[1, 0])),
    ];
    for (alg, space) in cases {
        let design = ArrayDesign::synthesize(&alg, space)
            .build()
            .unwrap_or_else(|e| panic!("{}: {e}", alg.name));
        assert!(design.report.is_clean(), "{}", alg.name);
        assert_eq!(design.total_time, design.array.total_time(), "{}", alg.name);
        assert!(design.stats.mean_utilization() > 0.0, "{}", alg.name);
        assert!(design.stats.mean_utilization() <= 1.0, "{}", alg.name);
        // The schedule the builder found is optimal: no cheaper valid
        // conflict-free schedule exists (spot-check one notch below).
        let found = design.mapping.schedule().total_time(&alg.index_set);
        assert_eq!(found, design.total_time, "{}", alg.name);
    }
}

#[test]
fn design_with_schedule_matches_optimizer() {
    let alg = algorithms::matmul(4);
    let optimized = ArrayDesign::synthesize(&alg, SpaceMap::row(&[1, 1, -1]))
        .build()
        .unwrap();
    let pinned = ArrayDesign::synthesize(&alg, SpaceMap::row(&[1, 1, -1]))
        .with_schedule(LinearSchedule::new(&[1, 4, 1]))
        .build()
        .unwrap();
    assert_eq!(optimized.total_time, pinned.total_time);
    assert_eq!(optimized.array.num_processors(), pinned.array.num_processors());
}

#[test]
fn space_search_composes_with_design() {
    // Problem 6.1 output feeds straight back into design synthesis.
    let alg = algorithms::matmul(4);
    let pi = LinearSchedule::new(&[1, 4, 1]);
    let sol = SpaceSearch::new(&alg, &pi)
        .entry_bound(2)
        .solve()
        .unwrap()
        .expect_optimal("space map exists");
    let design = ArrayDesign::synthesize(&alg, sol.space.clone())
        .with_schedule(pi)
        .build()
        .unwrap();
    assert!(design.report.is_clean());
    assert_eq!(design.array.num_processors(), sol.processors);
    // Fewer processors than the paper's design at the same time.
    assert!(design.array.num_processors() <= 13);
    assert_eq!(design.total_time, 25);
}

#[test]
fn utilization_ranks_designs() {
    // Same array, slower schedule ⇒ lower utilization.
    let alg = algorithms::matmul(4);
    let fast = ArrayDesign::synthesize(&alg, SpaceMap::row(&[1, 1, -1]))
        .with_schedule(LinearSchedule::new(&[1, 4, 1]))
        .build()
        .unwrap();
    let slow = ArrayDesign::synthesize(&alg, SpaceMap::row(&[1, 1, -1]))
        .with_schedule(LinearSchedule::new(&[2, 1, 4]))
        .build()
        .unwrap();
    assert!(fast.stats.mean_utilization() > slow.stats.mean_utilization());
    assert!(fast.total_time < slow.total_time);
}

#[test]
fn custom_algorithm_via_builder() {
    let alg = UdaBuilder::new("wavefront")
        .bounds(&[6, 6])
        .dep(&[1, 0])
        .dep(&[0, 1])
        .build();
    let design = ArrayDesign::synthesize(&alg, SpaceMap::row(&[0, 1]))
        .build()
        .unwrap();
    assert!(design.report.is_clean());
    // Wavefront on a line of 7 PEs: t = 13 (anti-diagonal sweep) at best…
    // actually the optimal linear schedule is Π = [μ+1, 1] (conflict
    // vector [1, −7]) with t = 1 + 7·6 + 6 = 49, or symmetric better ones;
    // just sanity-bound it.
    assert!(design.total_time >= 13);
    let depth = execute(&alg, &design.mapping, &DepthKernel);
    assert!(depth.causality_violations.is_empty());
    assert_eq!(depth.values.values().copied().max().unwrap(), 13);
}
