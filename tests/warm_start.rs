//! Fleet warm-start through the wire: a daemon observes a few sizes of a
//! problem family, its background fitter promotes them to an affine-in-μ
//! certificate, the certificate ships out through `GET /cache/save`, and
//! a *freshly started* daemon loaded with `--cache-load` answers a size
//! no process ever solved — from the certificate, with zero search, and
//! bit-identical to a cold solve.

use cfmap::service::client;
use cfmap::service::engine::Engine;
use cfmap::service::json::{parse, Json};
use cfmap::service::wire::{MapRequest, MapResponse};
use std::io::{BufRead, BufReader, Read};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A running daemon that is shut down (or killed) when dropped.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(extra_args: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_cfmapd"))
            .args(["--addr", "127.0.0.1:0"])
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("cfmapd spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut first_line = String::new();
        BufReader::new(stdout).read_line(&mut first_line).expect("startup line");
        let addr = first_line
            .trim()
            .strip_prefix("cfmapd listening on ")
            .unwrap_or_else(|| panic!("unexpected startup line {first_line:?}"))
            .to_string();
        Daemon { child, addr }
    }

    fn stop(mut self) {
        let _ = client::post(&self.addr, "/shutdown", "");
        let status = self.child.wait().expect("cfmapd exits");
        assert!(status.success(), "cfmapd exited with {status:?}");
        std::mem::forget(self);
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn matmul(mu: i64) -> MapRequest {
    MapRequest::named("matmul", mu, vec![vec![1, 1, -1]])
}

/// Poll `GET /family` until at least one certificate exists (the
/// background fitter needs a few probe solves), bounded by `deadline`.
fn wait_for_certificate(addr: &str, deadline: Duration) -> Json {
    let started = Instant::now();
    loop {
        let body = client::get(addr, "/family").expect("GET /family").body;
        let json = parse(&body).expect("family body is JSON");
        if json.get("certificates").and_then(Json::as_i64).unwrap_or(0) >= 1 {
            return json;
        }
        assert!(
            started.elapsed() < deadline,
            "fitter produced no certificate within {deadline:?}: {body}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn snapshot_ships_family_warmth_to_a_fresh_daemon() {
    // Daemon A: solve three sizes; the background fitter certifies the
    // matmul family on its own.
    let a = Daemon::spawn(&[]);
    for mu in [2, 3, 4] {
        let resp = client::map(&a.addr, &matmul(mu)).expect("map call");
        assert!(matches!(resp, MapResponse::Ok(_)), "{resp:?}");
    }
    let family = wait_for_certificate(&a.addr, Duration::from_secs(60));
    let families = family.get("families").and_then(Json::as_arr).expect("families array");
    assert_eq!(families.len(), 1, "{family:?}");
    assert_eq!(families[0].get("fully_symbolic").and_then(Json::as_bool), Some(true));

    // The snapshot travels as text — exactly what the fleet quickstart
    // pipes to a file.
    let snap = client::get(&a.addr, "/cache/save").expect("GET /cache/save");
    assert_eq!(snap.status, 200);
    assert!(snap.body.starts_with("cfmapsnap v1 "), "{}", &snap.body[..40.min(snap.body.len())]);
    let path = std::env::temp_dir().join(format!("cfmap-warm-{}.snap", std::process::id()));
    std::fs::write(&path, &snap.body).expect("snapshot written");
    a.stop();

    // Daemon B: fresh process, warm-started from the file. μ = 9 was
    // never solved by any process — it must come from the certificate,
    // with zero candidates examined, certified optimal.
    let b = Daemon::spawn(&["--cache-load", path.to_str().unwrap()]);
    let resp = client::map(&b.addr, &matmul(9)).expect("map call");
    let MapResponse::Ok(warm) = &resp else { panic!("expected ok, got {resp:?}") };
    assert!(warm.cached, "family answer reports cached=true");
    assert_eq!(warm.candidates_examined, 0, "zero search on a family hit");
    // Bit-identical to a cold in-process solve of the same request.
    let MapResponse::Ok(cold) = Engine::new(8, 1).resolve(&matmul(9)) else {
        panic!("cold reference solve failed")
    };
    assert_eq!(warm.schedule, cold.schedule);
    assert_eq!(warm.objective, cold.objective);
    assert_eq!(warm.total_time, cold.total_time);
    assert_eq!(warm.processors, cold.processors);

    let family = parse(&client::get(&b.addr, "/family").expect("family").body).unwrap();
    assert!(family.get("hits").and_then(Json::as_i64).unwrap_or(0) >= 1, "{family:?}");
    let metrics = client::get(&b.addr, "/metrics").expect("metrics").body;
    assert!(metrics.contains("cfmapd_family_hits_total 1"), "{metrics}");
    b.stop();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn post_cache_save_writes_the_snapshot_server_side() {
    let d = Daemon::spawn(&[]);
    let resp = client::map(&d.addr, &matmul(4)).expect("map call");
    assert!(matches!(resp, MapResponse::Ok(_)));
    let path = std::env::temp_dir().join(format!("cfmap-save-{}.snap", std::process::id()));
    let body = Json::Obj(vec![(
        "path".into(),
        Json::Str(path.to_str().unwrap().into()),
    )])
    .serialize();
    let reply = client::post(&d.addr, "/cache/save", &body).expect("POST /cache/save");
    assert_eq!(reply.status, 200, "{}", reply.body);
    let saved = parse(&reply.body).unwrap();
    assert_eq!(saved.get("status").and_then(Json::as_str), Some("saved"));
    assert!(saved.get("entries").and_then(Json::as_i64).unwrap_or(0) >= 1, "{}", reply.body);
    let on_disk = std::fs::read_to_string(&path).expect("snapshot file exists");
    assert!(on_disk.starts_with("cfmapsnap v1 "));
    // Missing path is a 400, not a panic.
    let reply = client::post(&d.addr, "/cache/save", "{}").expect("POST without path");
    assert_eq!(reply.status, 400, "{}", reply.body);
    d.stop();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_snapshot_refuses_startup_with_a_precise_message() {
    let path = std::env::temp_dir().join(format!("cfmap-bad-{}.snap", std::process::id()));
    std::fs::write(&path, "cfmapsnap v9 digest=0 checksum=0 bytes=2\n{}").unwrap();
    let mut child = Command::new(env!("CARGO_BIN_EXE_cfmapd"))
        .args(["--addr", "127.0.0.1:0", "--cache-load", path.to_str().unwrap()])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("cfmapd spawns");
    let status = child.wait().expect("cfmapd exits");
    assert!(!status.success(), "a refused snapshot must fail startup");
    let mut stderr = String::new();
    child.stderr.take().unwrap().read_to_string(&mut stderr).unwrap();
    assert!(stderr.contains("snapshot mismatch"), "{stderr}");
    assert!(stderr.contains("--cache-load"), "{stderr}");
    let _ = std::fs::remove_file(&path);
}
