//! Hermetic build guard: every dependency in the workspace must be an
//! in-tree path dependency.
//!
//! The project's build policy is that `cargo build && cargo test` succeed
//! with no network, no registry, and no vendored third-party code. This
//! test parses every `Cargo.toml` in the workspace by hand (using a toml
//! crate here would defeat the point) and fails if any dependency is
//! declared by version, git URL, or registry — i.e. anything other than
//! `path = "…"` or `workspace = true`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A single `name = spec` entry found in a dependency section.
#[derive(Debug)]
struct DepEntry {
    manifest: PathBuf,
    section: String,
    line_no: usize,
    line: String,
}

/// Collect every manifest in the workspace: the root plus `crates/*`.
fn workspace_manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut manifests = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    let entries = std::fs::read_dir(&crates).expect("crates/ exists");
    for entry in entries {
        let path = entry.expect("readable dir entry").path().join("Cargo.toml");
        if path.is_file() {
            manifests.push(path);
        }
    }
    manifests.sort();
    assert!(manifests.len() >= 2, "workspace layout changed; update this guard");
    manifests
}

/// True for section headers whose entries are dependency declarations.
fn is_dependency_section(header: &str) -> bool {
    header == "dependencies"
        || header == "dev-dependencies"
        || header == "build-dependencies"
        || header == "workspace.dependencies"
        || header.ends_with(".dependencies")
        || header.ends_with(".dev-dependencies")
        || header.ends_with(".build-dependencies")
}

/// Extract all dependency entries from one manifest.
fn dependency_entries(manifest: &Path) -> Vec<DepEntry> {
    let text = std::fs::read_to_string(manifest)
        .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
    let mut entries = Vec::new();
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = header.trim().to_string();
            continue;
        }
        if !is_dependency_section(&section) {
            continue;
        }
        entries.push(DepEntry {
            manifest: manifest.to_path_buf(),
            section: section.clone(),
            line_no: idx + 1,
            line: line.to_string(),
        });
    }
    entries
}

/// A dependency spec is hermetic iff it resolves in-tree: either
/// `workspace = true` (the workspace table itself is checked too) or an
/// inline table whose only source key is `path`.
fn is_hermetic(spec: &str) -> bool {
    let spec = spec.trim();
    // `name.workspace = true` arrives as the whole line; `name = {...}`
    // arrives as the right-hand side.
    if spec == "true" {
        return true;
    }
    let banned = ["version", "git", "registry", "branch", "rev", "tag"];
    if banned.iter().any(|k| spec.contains(k)) {
        return false;
    }
    spec.contains("path") || spec.contains("workspace = true")
}

#[test]
fn every_dependency_is_an_in_tree_path() {
    let mut violations = String::new();
    let mut total = 0usize;
    for manifest in workspace_manifests() {
        for dep in dependency_entries(&manifest) {
            total += 1;
            let Some((_, spec)) = dep.line.split_once('=') else {
                continue; // inline-table continuation lines don't occur in this repo
            };
            if !is_hermetic(spec) {
                writeln!(
                    violations,
                    "  {}:{} [{}] {}",
                    dep.manifest.display(),
                    dep.line_no,
                    dep.section,
                    dep.line
                )
                .unwrap();
            }
        }
    }
    assert!(total > 0, "no dependency entries found; the parser regressed");
    assert!(
        violations.is_empty(),
        "non-path dependencies violate the hermetic build policy:\n{violations}\
         \nEvery dependency must be `path = \"…\"` in [workspace.dependencies] \
         or `workspace = true` in a member crate."
    );
}

/// No manifest may declare a build script — those can reach the network
/// or the host toolchain behind the build's back.
#[test]
fn no_build_scripts() {
    for manifest in workspace_manifests() {
        let text = std::fs::read_to_string(&manifest).unwrap();
        assert!(
            !text.contains("build ="),
            "{} declares a build script",
            manifest.display()
        );
        let build_rs = manifest.parent().unwrap().join("build.rs");
        assert!(!build_rs.exists(), "{} exists", build_rs.display());
    }
}

/// The service crate is the one most tempted by registry crates (HTTP
/// frameworks, serde, async runtimes). Pin it explicitly: its manifest
/// must be discovered by the workspace walk and declare only in-tree
/// dependencies — the daemon is std-only by construction.
#[test]
fn service_crate_is_hermetic() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let manifest = root.join("crates/service/Cargo.toml");
    assert!(manifest.is_file(), "crates/service/Cargo.toml missing");
    assert!(
        workspace_manifests().contains(&manifest),
        "workspace walk no longer covers crates/service"
    );
    let entries = dependency_entries(&manifest);
    assert!(!entries.is_empty(), "service crate declares no dependencies?");
    for dep in entries {
        let spec = dep.line.split_once('=').map(|(_, s)| s).unwrap_or("");
        assert!(
            is_hermetic(spec),
            "crates/service/Cargo.toml:{} is not hermetic: {}",
            dep.line_no,
            dep.line
        );
        for banned in ["serde", "tokio", "hyper", "axum", "reqwest"] {
            assert!(
                !dep.line.contains(banned),
                "crates/service must stay std-only, found {banned:?} in {}",
                dep.line
            );
        }
    }
}

/// The bench harnesses are plain binaries (`harness = false`), not
/// framework-driven: a criterion revival would need a registry crate.
#[test]
fn bench_targets_are_plain_binaries() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let bench_toml =
        std::fs::read_to_string(root.join("crates/bench/Cargo.toml")).expect("bench manifest");
    let bench_sections = bench_toml.matches("[[bench]]").count();
    let harness_false = bench_toml.matches("harness = false").count();
    assert_eq!(
        bench_sections, harness_false,
        "every [[bench]] target must set harness = false"
    );
    assert!(bench_sections >= 8, "bench targets disappeared");
}
