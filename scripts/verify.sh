#!/usr/bin/env sh
# Full offline verification gate: build, test, benches compile, examples
# compile — all with the network forbidden (--offline). This is the same
# bar CI holds; the hermetic-dependency guard itself lives in
# tests/hermetic.rs and runs as part of the test suite.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release --offline"
cargo build --release --offline --workspace

echo "== cargo test --offline"
cargo test -q --offline --workspace

echo "== benches and examples compile (offline)"
cargo build --offline --benches -p cfmap-bench
cargo build --offline --examples

echo "== smoke: CLI exit codes"
CFMAP=target/release/cfmap
"$CFMAP" map --alg matmul --mu 4 --space 1,1,-1 > /dev/null
set +e
"$CFMAP" map --alg matmul --mu 4 --space 1,1,-1 --cap 2 > /dev/null 2>&1
[ $? -eq 1 ] || { echo "expected exit 1 for infeasible"; exit 1; }
"$CFMAP" frobnicate > /dev/null 2>&1
[ $? -eq 2 ] || { echo "expected exit 2 for usage error"; exit 1; }
set -e

echo "== smoke: one timing bench under a 5 ms budget"
CFMAP_BENCH_MS=5 cargo bench --offline -p cfmap-bench --bench e1_feasibility > /dev/null

echo "verify: OK"
