#!/usr/bin/env sh
# Full offline verification gate: lint, build, test, benches compile,
# examples compile — all with the network forbidden (--offline). This is
# the same bar CI holds; the hermetic-dependency guard itself lives in
# tests/hermetic.rs and runs as part of the test suite.
set -eu

cd "$(dirname "$0")/.."

# Every temp resource is released on ANY exit — success, assertion
# failure, or an interrupt mid-smoke-test. Without this a failed run
# leaked the daemon process and its fifo under /tmp.
FIFO=/tmp/cfmapd_verify_$$
OUTFILE=/tmp/cfmapd_out_$$
CFMAPD_PID=
cleanup() {
    [ -n "$CFMAPD_PID" ] && kill "$CFMAPD_PID" 2>/dev/null
    rm -f "$FIFO" "$OUTFILE"
}
trap cleanup EXIT INT TERM

echo "== cargo clippy --offline -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo build --release --offline"
cargo build --release --offline --workspace

echo "== cargo test --offline"
cargo test -q --offline --workspace

echo "== benches and examples compile (offline)"
cargo build --offline --benches -p cfmap-bench
# --workspace so example rot in ANY crate fails the gate, not just the
# root package's examples.
cargo build --offline --examples --workspace

echo "== smoke: CLI exit codes"
CFMAP=target/release/cfmap
"$CFMAP" map --alg matmul --mu 4 --space 1,1,-1 > /dev/null
set +e
"$CFMAP" map --alg matmul --mu 4 --space 1,1,-1 --cap 2 > /dev/null 2>&1
[ $? -eq 1 ] || { echo "expected exit 1 for infeasible"; exit 1; }
"$CFMAP" frobnicate > /dev/null 2>&1
[ $? -eq 2 ] || { echo "expected exit 2 for usage error"; exit 1; }
set -e

echo "== smoke: cfmapd round trip (ephemeral port, stdin-EOF shutdown)"
CFMAPD=target/release/cfmapd
# Start the daemon with stdin held open on a fifo; closing it shuts down.
mkfifo "$FIFO"
"$CFMAPD" --addr 127.0.0.1:0 --watch-stdin < "$FIFO" > "$OUTFILE" &
CFMAPD_PID=$!
exec 9> "$FIFO"
# Wait for the startup line.
for _ in $(seq 1 50); do
    grep -q "cfmapd listening on" "$OUTFILE" 2>/dev/null && break
    sleep 0.1
done
ADDR=$(sed -n 's/^cfmapd listening on //p' "$OUTFILE")
[ -n "$ADDR" ] || { echo "cfmapd did not start"; exit 1; }
"$CFMAP" client --addr "$ADDR" --alg matmul --mu 4 --space 1,1,-1 | grep -q "t = 25 cycles" \
    || { echo "cfmap client round trip failed"; exit 1; }
# The request above must be visible in the observability layer: the /map
# route counter is at 1 and the solve actually ran (solves_total 1).
METRICS=$("$CFMAP" client --addr "$ADDR" --get /metrics)
echo "$METRICS" | grep -q 'cfmapd_requests_total{route="/map",status="200"} 1' \
    || { echo "/metrics is missing the /map request counter"; exit 1; }
echo "$METRICS" | grep -q '^cfmap_solves_total 1$' \
    || { echo "/metrics is missing the solve counter"; exit 1; }
echo "$METRICS" | grep -q 'cfmapd_request_duration_seconds_count{route="/map"} 1' \
    || { echo "/metrics is missing the /map latency histogram"; exit 1; }
# Exact-arithmetic fast-path telemetry: the spill gauge must be exported
# and stay at zero for a paper-sized solve (the fast-path guarantee).
echo "$METRICS" | grep -q '^cfmap_intlin_bigint_spills_total 0$' \
    || { echo "/metrics is missing a zero bigint spill counter"; exit 1; }
echo "$METRICS" | grep -q 'cfmap_candidate_screen_duration_seconds_count' \
    || { echo "/metrics is missing the candidate screen histogram"; exit 1; }
# Admission-control telemetry: both series must be exported from startup,
# and an unloaded daemon must show an empty queue and zero sheds.
echo "$METRICS" | grep -q '^cfmapd_queue_depth 0$' \
    || { echo "/metrics is missing a zero queue-depth gauge"; exit 1; }
echo "$METRICS" | grep -q '^cfmapd_requests_shed_total 0$' \
    || { echo "/metrics is missing a zero shed counter"; exit 1; }
exec 9>&-          # close stdin: the daemon drains and exits
wait "$CFMAPD_PID" || { echo "cfmapd did not exit cleanly"; exit 1; }
CFMAPD_PID=

echo "== smoke: chaos — one seeded fault plan against a live daemon"
# Replays a fixed-seed FaultPlan (slow-loris, disconnects, injected
# panics and stalls) against a fault-injection-enabled daemon and checks
# every response class plus worker survival. Deterministic from its seed.
cargo test -q --offline --test service_chaos seeded_fault_plan \
    || { echo "seeded fault plan replay failed"; exit 1; }

echo "== smoke: timing benches under a 5 ms budget"
CFMAP_BENCH_MS=5 cargo bench --offline -p cfmap-bench --bench e1_feasibility > /dev/null
CFMAP_BENCH_MS=5 cargo bench --offline -p cfmap-bench --bench e12_service_throughput > /dev/null
CFMAP_BENCH_MS=5 cargo bench --offline -p cfmap-bench --bench e13_hot_path > /dev/null

echo "== smoke: bench.sh writes experiment JSON"
CFMAP_BENCH_MS=5 BENCH_OUT=/tmp/cfmap_bench_smoke_$$.json scripts/bench.sh E13 > /dev/null
grep -q '"id":"E13"' "/tmp/cfmap_bench_smoke_$$.json" \
    || { echo "bench.sh produced no E13 report"; exit 1; }
rm -f "/tmp/cfmap_bench_smoke_$$.json"

echo "verify: OK"
