#!/usr/bin/env sh
# Full offline verification gate: lint, build, test, benches compile,
# examples compile — all with the network forbidden (--offline). This is
# the same bar CI holds; the hermetic-dependency guard itself lives in
# tests/hermetic.rs and runs as part of the test suite.
set -eu

cd "$(dirname "$0")/.."

# Every temp resource is released on ANY exit — success, assertion
# failure, or an interrupt mid-smoke-test. Without this a failed run
# leaked the daemon process and its fifo under /tmp.
FIFO=/tmp/cfmapd_verify_$$
OUTFILE=/tmp/cfmapd_out_$$
B1_FIFO=/tmp/cfmapd_b1_fifo_$$
B2_FIFO=/tmp/cfmapd_b2_fifo_$$
R_FIFO=/tmp/cfmapd_r_fifo_$$
B1_OUT=/tmp/cfmapd_b1_out_$$
B2_OUT=/tmp/cfmapd_b2_out_$$
R_OUT=/tmp/cfmapd_r_out_$$
W1_FIFO=/tmp/cfmapd_w1_fifo_$$
W2_FIFO=/tmp/cfmapd_w2_fifo_$$
W1_OUT=/tmp/cfmapd_w1_out_$$
W2_OUT=/tmp/cfmapd_w2_out_$$
SNAP=/tmp/cfmapd_warm_$$.snap
CFMAPD_PID=
B1_PID=
B2_PID=
R_PID=
W1_PID=
W2_PID=
cleanup() {
    for pid in "$CFMAPD_PID" "$B1_PID" "$B2_PID" "$R_PID" "$W1_PID" "$W2_PID"; do
        # `|| true` keeps `set -e` from aborting the trap mid-cleanup.
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -f "$FIFO" "$OUTFILE" "$B1_FIFO" "$B2_FIFO" "$R_FIFO" "$B1_OUT" "$B2_OUT" "$R_OUT" \
        "$W1_FIFO" "$W2_FIFO" "$W1_OUT" "$W2_OUT" "$SNAP"
}
trap cleanup EXIT INT TERM

echo "== cargo clippy --offline -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo build --release --offline"
cargo build --release --offline --workspace

echo "== cargo test --offline"
cargo test -q --offline --workspace

echo "== benches and examples compile (offline)"
cargo build --offline --benches -p cfmap-bench
# --workspace so example rot in ANY crate fails the gate, not just the
# root package's examples.
cargo build --offline --examples --workspace

echo "== smoke: CLI exit codes"
CFMAP=target/release/cfmap
"$CFMAP" map --alg matmul --mu 4 --space 1,1,-1 > /dev/null
"$CFMAP" pareto --alg matmul --mu 4 --space 1,1,-1 > /dev/null
set +e
"$CFMAP" map --alg matmul --mu 4 --space 1,1,-1 --cap 2 > /dev/null 2>&1
[ $? -eq 1 ] || { echo "expected exit 1 for infeasible"; exit 1; }
"$CFMAP" frobnicate > /dev/null 2>&1
[ $? -eq 2 ] || { echo "expected exit 2 for usage error"; exit 1; }
set -e

echo "== smoke: cfmapd round trip (ephemeral port, stdin-EOF shutdown)"
CFMAPD=target/release/cfmapd
# Start the daemon with stdin held open on a fifo; closing it shuts down.
mkfifo "$FIFO"
"$CFMAPD" --addr 127.0.0.1:0 --watch-stdin < "$FIFO" > "$OUTFILE" &
CFMAPD_PID=$!
exec 9> "$FIFO"
# Wait for the startup line.
for _ in $(seq 1 50); do
    grep -q "cfmapd listening on" "$OUTFILE" 2>/dev/null && break
    sleep 0.1
done
ADDR=$(sed -n 's/^cfmapd listening on //p' "$OUTFILE")
[ -n "$ADDR" ] || { echo "cfmapd did not start"; exit 1; }
"$CFMAP" client --addr "$ADDR" --alg matmul --mu 4 --space 1,1,-1 | grep -q "t = 25 cycles" \
    || { echo "cfmap client round trip failed"; exit 1; }
# The request above must be visible in the observability layer: the /map
# route counter is at 1 and the solve actually ran (solves_total 1).
METRICS=$("$CFMAP" client --addr "$ADDR" --get /metrics)
echo "$METRICS" | grep -q 'cfmapd_requests_total{route="/map",status="200"} 1' \
    || { echo "/metrics is missing the /map request counter"; exit 1; }
echo "$METRICS" | grep -q '^cfmap_solves_total 1$' \
    || { echo "/metrics is missing the solve counter"; exit 1; }
echo "$METRICS" | grep -q 'cfmapd_request_duration_seconds_count{route="/map"} 1' \
    || { echo "/metrics is missing the /map latency histogram"; exit 1; }
# Exact-arithmetic fast-path telemetry: the spill gauge must be exported
# and stay at zero for a paper-sized solve (the fast-path guarantee).
echo "$METRICS" | grep -q '^cfmap_intlin_bigint_spills_total 0$' \
    || { echo "/metrics is missing a zero bigint spill counter"; exit 1; }
echo "$METRICS" | grep -q 'cfmap_candidate_screen_duration_seconds_count' \
    || { echo "/metrics is missing the candidate screen histogram"; exit 1; }
# Admission-control telemetry: both series must be exported from startup,
# and an unloaded daemon must show an empty queue and zero sheds.
echo "$METRICS" | grep -q '^cfmapd_queue_depth 0$' \
    || { echo "/metrics is missing a zero queue-depth gauge"; exit 1; }
echo "$METRICS" | grep -q '^cfmapd_requests_shed_total 0$' \
    || { echo "/metrics is missing a zero shed counter"; exit 1; }
# Symmetry-quotient gate (ISSUE 8): an n=4 identity solve — 29,960
# candidates unquotiented — must finish under the default budget with
# the quotient engaged: t = f°+1 = 29 and orbits actually pruned.
"$CFMAP" client --addr "$ADDR" --alg identity4 --mu 2 --space 1,0,0,0 | grep -q "t = 29 cycles" \
    || { echo "identity4 solve failed or returned a wrong optimum"; exit 1; }
POST_METRICS=$("$CFMAP" client --addr "$ADDR" --get /metrics)
ORBITS=$(printf '%s\n' "$POST_METRICS" \
    | sed -n 's/^cfmap_orbits_pruned_total \([0-9]*\)$/\1/p')
[ "${ORBITS:-0}" -gt 0 ] \
    || { echo "cfmap_orbits_pruned_total = '${ORBITS:-missing}', want > 0"; exit 1; }
# Conflict-memo gate (ISSUE 9): the exact solves above must have routed
# verdicts through the kernel-lattice memo and found repeats, all on the
# i64 fast path (no bignum spills).
MEMO_HITS=$(printf '%s\n' "$POST_METRICS" \
    | sed -n 's/^cfmap_conflict_memo_hits_total \([0-9]*\)$/\1/p')
[ "${MEMO_HITS:-0}" -gt 0 ] \
    || { echo "cfmap_conflict_memo_hits_total = '${MEMO_HITS:-missing}', want > 0"; exit 1; }
printf '%s\n' "$POST_METRICS" | grep -q '^cfmap_intlin_bigint_spills_total 0$' \
    || { echo "bigint spills after the quotient/memo solves, want 0"; exit 1; }
# Pareto gate (ISSUE 10): the fixed-space frontier for matmul mu=4 on
# S = [1,1,-1] is a single point whose time corner must agree with the
# Procedure 5.1 answer /map gives for the identical body — same t = 25
# and the exact same pulled-back schedule witness.
PARETO_BODY='{"algorithm":"matmul","mu":[4],"space":[[1,1,-1]]}'
MAP_SCHED=$("$CFMAP" client --addr "$ADDR" --post /map --body "$PARETO_BODY" \
    | sed -n 's/.*"schedule":\(\[[0-9,-]*\]\).*/\1/p')
[ -n "$MAP_SCHED" ] || { echo "/map gave no schedule to compare the corner against"; exit 1; }
PARETO=$("$CFMAP" client --addr "$ADDR" --post /pareto --body "$PARETO_BODY")
printf '%s\n' "$PARETO" | grep -q '"status":"ok"' \
    || { echo "/pareto did not answer ok: $PARETO"; exit 1; }
printf '%s\n' "$PARETO" | grep -q '"frontier_size":1' \
    || { echo "/pareto frontier is not the expected single point: $PARETO"; exit 1; }
printf '%s\n' "$PARETO" | grep -q '"total_time":25' \
    || { echo "/pareto time corner disagrees with Procedure 5.1: $PARETO"; exit 1; }
printf '%s\n' "$PARETO" | grep -qF "\"schedule\":$MAP_SCHED" \
    || { echo "/pareto corner witness differs from /map's ($MAP_SCHED): $PARETO"; exit 1; }
printf '%s\n' "$PARETO" | grep -q '"verified":true' \
    || { echo "/pareto answered without simulator verification: $PARETO"; exit 1; }
PARETO_METRICS=$("$CFMAP" client --addr "$ADDR" --get /metrics)
printf '%s\n' "$PARETO_METRICS" | grep -q '^cfmap_pareto_frontier_size 1$' \
    || { echo "/metrics is missing the pareto frontier-size gauge"; exit 1; }
printf '%s\n' "$PARETO_METRICS" | grep -q '^cfmap_pareto_solves_total 1$' \
    || { echo "/metrics is missing the pareto solve counter"; exit 1; }
printf '%s\n' "$PARETO_METRICS" \
    | grep -q 'cfmapd_requests_total{route="/pareto",status="200"} 1' \
    || { echo "/metrics is missing the /pareto request counter"; exit 1; }
exec 9>&-          # close stdin: the daemon drains and exits
wait "$CFMAPD_PID" || { echo "cfmapd did not exit cleanly"; exit 1; }
CFMAPD_PID=

echo "== smoke: router — failover across a live 2-backend fleet"
ROUTER=target/release/cfmapd-router
mkfifo "$B1_FIFO" "$B2_FIFO" "$R_FIFO"
"$CFMAPD" --addr 127.0.0.1:0 --watch-stdin < "$B1_FIFO" > "$B1_OUT" &
B1_PID=$!
exec 7> "$B1_FIFO"
"$CFMAPD" --addr 127.0.0.1:0 --watch-stdin < "$B2_FIFO" > "$B2_OUT" &
B2_PID=$!
exec 8> "$B2_FIFO"
for _ in $(seq 1 50); do
    grep -q "cfmapd listening on" "$B1_OUT" 2>/dev/null \
        && grep -q "cfmapd listening on" "$B2_OUT" 2>/dev/null && break
    sleep 0.1
done
B1_ADDR=$(sed -n 's/^cfmapd listening on //p' "$B1_OUT")
B2_ADDR=$(sed -n 's/^cfmapd listening on //p' "$B2_OUT")
[ -n "$B1_ADDR" ] && [ -n "$B2_ADDR" ] || { echo "backends did not start"; exit 1; }
# A slow probe loop on purpose: the failover below must be discovered
# passively (by the forwarded request), not by a lucky health probe.
"$ROUTER" --backend "$B1_ADDR" --backend "$B2_ADDR" --addr 127.0.0.1:0 \
    --health-interval-ms 2000 --watch-stdin < "$R_FIFO" > "$R_OUT" &
R_PID=$!
exec 6> "$R_FIFO"
for _ in $(seq 1 50); do
    grep -q "cfmapd-router listening on" "$R_OUT" 2>/dev/null && break
    sleep 0.1
done
R_ADDR=$(sed -n 's/^cfmapd-router listening on //p' "$R_OUT")
[ -n "$R_ADDR" ] || { echo "cfmapd-router did not start"; exit 1; }
"$CFMAP" client --addr "$R_ADDR" --alg matmul --mu 4 --space 1,1,-1 | grep -q "t = 25 cycles" \
    || { echo "router round trip failed"; exit 1; }
# Which backend answered? Kill exactly that one, so the repeat request
# is forced through the failover path.
SERVING=$("$CFMAP" client --addr "$R_ADDR" --get /metrics \
    | sed -n 's/^cfmapd_router_requests_total{backend="\([^"]*\)",status="200"}.*/\1/p' | head -n 1)
case "$SERVING" in
    "$B1_ADDR") VICTIM_PID=$B1_PID; B1_PID= ;;
    "$B2_ADDR") VICTIM_PID=$B2_PID; B2_PID= ;;
    *) echo "metrics did not name the serving backend (got '$SERVING')"; exit 1 ;;
esac
kill -9 "$VICTIM_PID"
"$CFMAP" client --addr "$R_ADDR" --alg matmul --mu 4 --space 1,1,-1 | grep -q "t = 25 cycles" \
    || { echo "map after backend kill failed: no failover"; exit 1; }
R_METRICS=$("$CFMAP" client --addr "$R_ADDR" --get /metrics)
FAILOVERS=$(printf '%s\n' "$R_METRICS" | sed -n 's/^cfmapd_router_failovers_total \([0-9]*\)$/\1/p')
[ "${FAILOVERS:-0}" -ge 1 ] \
    || { echo "cfmapd_router_failovers_total = '${FAILOVERS:-missing}', want >= 1"; exit 1; }
printf '%s\n' "$R_METRICS" | grep -q '^cfmapd_router_backend_up{backend="' \
    || { echo "/metrics is missing the per-backend up gauge"; exit 1; }
wait "$VICTIM_PID" 2>/dev/null || true   # reap the SIGKILLed backend
exec 6>&-          # close the router's stdin: it drains and exits
wait "$R_PID" || { echo "cfmapd-router did not exit cleanly"; exit 1; }
R_PID=
exec 7>&- 8>&-     # the surviving backend follows suit
for pid in "$B1_PID" "$B2_PID"; do
    if [ -n "$pid" ]; then
        wait "$pid" || { echo "backend did not exit cleanly"; exit 1; }
    fi
done
B1_PID=
B2_PID=

echo "== smoke: family warm-start — save, restart, warm hit"
# Daemon 1 solves three sizes of the matmul family; its background
# fitter mints an affine-in-μ certificate; the snapshot ships to disk.
# Daemon 2 — a fresh process loaded with --cache-load — must answer a
# size NO process ever solved from that certificate alone.
mkfifo "$W1_FIFO"
"$CFMAPD" --addr 127.0.0.1:0 --watch-stdin < "$W1_FIFO" > "$W1_OUT" &
W1_PID=$!
exec 5> "$W1_FIFO"
for _ in $(seq 1 50); do
    grep -q "cfmapd listening on" "$W1_OUT" 2>/dev/null && break
    sleep 0.1
done
W1_ADDR=$(sed -n 's/^cfmapd listening on //p' "$W1_OUT")
[ -n "$W1_ADDR" ] || { echo "warm-start daemon 1 did not start"; exit 1; }
for MU in 2 3 4; do
    "$CFMAP" client --addr "$W1_ADDR" --alg matmul --mu "$MU" --space 1,1,-1 > /dev/null \
        || { echo "warm-start seed solve (mu=$MU) failed"; exit 1; }
done
# The fitter runs in the background; wait for the certificate.
CERTS=0
for _ in $(seq 1 100); do
    CERTS=$("$CFMAP" client --addr "$W1_ADDR" --get /family \
        | sed -n 's/.*"certificates":\([0-9]*\).*/\1/p')
    [ "${CERTS:-0}" -ge 1 ] && break
    sleep 0.1
done
[ "${CERTS:-0}" -ge 1 ] || { echo "background fitter minted no certificate"; exit 1; }
"$CFMAP" client --addr "$W1_ADDR" --get /cache/save > "$SNAP"
head -c 12 "$SNAP" | grep -q "cfmapsnap v1" \
    || { echo "snapshot is missing its versioned header"; exit 1; }
exec 5>&-          # daemon 1 drains and exits
wait "$W1_PID" || { echo "warm-start daemon 1 did not exit cleanly"; exit 1; }
W1_PID=
mkfifo "$W2_FIFO"
"$CFMAPD" --addr 127.0.0.1:0 --cache-load "$SNAP" --watch-stdin < "$W2_FIFO" > "$W2_OUT" &
W2_PID=$!
exec 5> "$W2_FIFO"
for _ in $(seq 1 50); do
    grep -q "cfmapd listening on" "$W2_OUT" 2>/dev/null && break
    sleep 0.1
done
W2_ADDR=$(sed -n 's/^cfmapd listening on //p' "$W2_OUT")
[ -n "$W2_ADDR" ] || { echo "warm-start daemon 2 did not start"; exit 1; }
# μ = 9 was never solved by either process: the answer must come from
# the certificate (family hit), at the exact optimum t = μ(μ+2)+1 = 100.
"$CFMAP" client --addr "$W2_ADDR" --alg matmul --mu 9 --space 1,1,-1 | grep -q "t = 100 cycles" \
    || { echo "warm-started daemon gave a wrong answer at mu=9"; exit 1; }
W_METRICS=$("$CFMAP" client --addr "$W2_ADDR" --get /metrics)
echo "$W_METRICS" | grep -q '^cfmapd_family_hits_total 1$' \
    || { echo "/metrics is missing the family hit"; exit 1; }
echo "$W_METRICS" | grep -q '^cfmap_solves_total 0$' \
    || { echo "warm-started daemon ran a search it should not need"; exit 1; }
exec 5>&-          # daemon 2 drains and exits
wait "$W2_PID" || { echo "warm-start daemon 2 did not exit cleanly"; exit 1; }
W2_PID=

echo "== smoke: chaos — one seeded fault plan against a live daemon"
# Replays a fixed-seed FaultPlan (slow-loris, disconnects, injected
# panics and stalls) against a fault-injection-enabled daemon and checks
# every response class plus worker survival. Deterministic from its seed.
cargo test -q --offline --test service_chaos seeded_fault_plan \
    || { echo "seeded fault plan replay failed"; exit 1; }

echo "== smoke: timing benches under a 5 ms budget"
CFMAP_BENCH_MS=5 cargo bench --offline -p cfmap-bench --bench e1_feasibility > /dev/null
CFMAP_BENCH_MS=5 cargo bench --offline -p cfmap-bench --bench e12_service_throughput > /dev/null
CFMAP_BENCH_MS=5 cargo bench --offline -p cfmap-bench --bench e13_hot_path > /dev/null

echo "== smoke: bench.sh writes experiment JSON"
SMOKE_START=$(date +%s)
CFMAP_BENCH_MS=5 BENCH_OUT=/tmp/cfmap_bench_smoke_$$.json scripts/bench.sh E13 E14 E15 E16 E17 > /dev/null
SMOKE_ELAPSED=$(( $(date +%s) - SMOKE_START ))
grep -q '"commit":"' "/tmp/cfmap_bench_smoke_$$.json" \
    || { echo "bench.sh JSON header is missing the commit stamp"; exit 1; }
grep -q '"threads":' "/tmp/cfmap_bench_smoke_$$.json" \
    || { echo "bench.sh JSON header is missing the thread count"; exit 1; }
grep -q '"id":"E13"' "/tmp/cfmap_bench_smoke_$$.json" \
    || { echo "bench.sh produced no E13 report"; exit 1; }
grep -q '"id":"E14"' "/tmp/cfmap_bench_smoke_$$.json" \
    || { echo "bench.sh produced no E14 report"; exit 1; }
grep -q '"id":"E15"' "/tmp/cfmap_bench_smoke_$$.json" \
    || { echo "bench.sh produced no E15 report"; exit 1; }
grep -q '"id":"E16"' "/tmp/cfmap_bench_smoke_$$.json" \
    || { echo "bench.sh produced no E16 report"; exit 1; }
grep -q '"id":"E17"' "/tmp/cfmap_bench_smoke_$$.json" \
    || { echo "bench.sh produced no E17 report"; exit 1; }
grep -q 'hybrid-ilp' "/tmp/cfmap_bench_smoke_$$.json" \
    || { echo "E15 shows no enumeration→ILP crossover"; exit 1; }
# E16 gates: the smoke run must stay under a wall-clock ceiling (the
# smoke instances are sized for seconds, not the full bit-level boxes),
# and the fast route must actually hit the conflict memo.
[ "$SMOKE_ELAPSED" -le 90 ] \
    || { echo "bench smoke took ${SMOKE_ELAPSED}s, ceiling is 90s"; exit 1; }
E16_HITS=$(sed -n 's/.*"id":"E16".*/&/p' "/tmp/cfmap_bench_smoke_$$.json" \
    | sed -n 's/.*"memo_hits":\([0-9]*\).*/\1/p')
[ "${E16_HITS:-0}" -gt 0 ] \
    || { echo "E16 telemetry shows no conflict-memo hits (got '${E16_HITS:-missing}')"; exit 1; }
rm -f "/tmp/cfmap_bench_smoke_$$.json"

echo "verify: OK"
