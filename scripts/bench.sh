#!/usr/bin/env sh
# Run the experiment harness and record the results as JSON.
#
#   scripts/bench.sh              # all experiments -> BENCH_10.json
#   scripts/bench.sh E14          # subset, same output file
#   BENCH_OUT=/tmp/b.json scripts/bench.sh
#   CFMAP_BENCH_MS=5 scripts/bench.sh E13   # fast smoke budget
#
# The harness is deterministic apart from the timing columns (E13, E16),
# so diffs of the output file across commits show real behaviour changes.
# The JSON header stamps the commit and thread count the run came from,
# so recorded timings stay attributable.
set -eu

cd "$(dirname "$0")/.."

# Default output derives from the current PR/issue number so successive
# trajectories stop overwriting or stranding each other's files; override
# with BENCH_OUT for scratch runs.
ISSUE=10
OUT=${BENCH_OUT:-BENCH_${ISSUE}.json}

COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
THREADS=$(nproc 2>/dev/null || echo 1)

{
    printf '{"commit":"%s","threads":%s,"reports":\n' "$COMMIT" "$THREADS"
    cargo run --release --offline -p cfmap-bench --bin experiments -- --json "$@"
    printf '}\n'
} > "$OUT"
echo "bench: wrote $OUT"
