#!/usr/bin/env sh
# Run the experiment harness and record the results as JSON.
#
#   scripts/bench.sh              # all experiments -> BENCH_7.json
#   scripts/bench.sh E14          # subset, same output file
#   BENCH_OUT=/tmp/b.json scripts/bench.sh
#   CFMAP_BENCH_MS=5 scripts/bench.sh E13   # fast smoke budget
#
# The harness is deterministic apart from the timing columns (E13), so
# diffs of the output file across commits show real behaviour changes.
set -eu

cd "$(dirname "$0")/.."

OUT=${BENCH_OUT:-BENCH_7.json}

cargo run --release --offline -p cfmap-bench --bin experiments -- --json "$@" > "$OUT"
echo "bench: wrote $OUT"
