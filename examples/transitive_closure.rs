//! Example 5.2 of the paper: the time-optimal linear-array design for the
//! reindexed transitive closure algorithm, improving the total execution
//! time of the heuristic in [22] from μ(2μ+3)+1 to μ(μ+3)+1.
//!
//! ```sh
//! cargo run --release --example transitive_closure -- [μ]
//! ```

use cfmap::prelude::*;

fn main() {
    let mu: i64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4);
    let alg = algorithms::transitive_closure(mu);
    let s = SpaceMap::row(&[0, 0, 1]);

    println!("═══ Example 5.2: transitive closure (μ = {mu}) onto a linear array ═══\n");
    println!("Dependence matrix (Equation 3.6):\n{}\n", alg.deps);

    // ---- Optimal design ----------------------------------------------
    let opt = Procedure51::new(&alg, &s).solve().expect("search ran to completion").expect_optimal("optimal mapping exists");
    println!("This paper:   Π° = {:?}", opt.schedule.as_slice());
    println!("              t  = {} (= μ(μ+3)+1 = {})", opt.total_time, mu * (mu + 3) + 1);

    // The conflict vector the paper reports: γ = [1, −(μ+1), 0].
    let analysis = ConflictAnalysis::new(&opt.mapping, &alg.index_set);
    let gamma = analysis.unique_conflict_vector().expect("one conflict vector");
    println!("              γ  = {gamma} ({:?})", feasibility(&gamma, &alg.index_set));

    // ---- Baseline [22] -----------------------------------------------
    let base = baselines::transitive_closure_baseline_22(mu);
    println!("\nBaseline {}: Π' = {:?}", base.source, base.schedule.as_slice());
    println!(
        "              t' = {} (= μ(2μ+3)+1 = {})",
        base.total_time(&alg),
        mu * (2 * mu + 3) + 1
    );
    println!(
        "\nSpeedup of this paper over [22]: {:.2}×",
        base.total_time(&alg) as f64 / opt.total_time as f64
    );

    // ---- Simulate both -------------------------------------------------
    let prims = InterconnectionPrimitives::from_columns(&[&[1], &[-1]]);
    let routing = route(&opt.mapping, &alg.deps, &prims).expect("routable");
    let report = Simulator::new(&alg, &opt.mapping).with_routing(&routing).run().unwrap();
    let base_mapping = base.mapping();
    let base_report = Simulator::new(&alg, &base_mapping).run().unwrap();
    println!("\n─── Simulation ───");
    println!(
        "optimal : {} PEs, makespan {:3}, conflicts {}, link collisions {}",
        SystolicArray::synthesize(&alg, &opt.mapping).num_processors(),
        report.makespan(),
        report.conflicts.len(),
        report.link_collisions.len()
    );
    println!(
        "baseline: {} PEs, makespan {:3}, conflicts {}",
        SystolicArray::synthesize(&alg, &base_mapping).num_processors(),
        base_report.makespan(),
        base_report.conflicts.len()
    );
    assert!(report.is_clean());
    assert!(base_report.conflicts.is_empty());

    // ---- Structural execution (longest dependence chain) --------------
    let depth = execute(&alg, &opt.mapping, &DepthKernel);
    assert!(depth.causality_violations.is_empty());
    let max_chain = depth.values.values().copied().max().unwrap_or(0);
    println!(
        "\nLongest dependence chain: {max_chain} ≤ makespan {} (schedule is causal) ✓",
        report.makespan()
    );

    if mu <= 3 {
        println!("\n─── Space-time diagram (cells are j₁j₂j₃) ───");
        println!("{}", space_time_diagram(&report, &opt.mapping));
    }
}
