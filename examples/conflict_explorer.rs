//! Figure 1 of the paper, interactively: feasible vs. non-feasible
//! conflict vectors over a 2-D index set.
//!
//! The paper's Figure 1 shows `J = {0..4}²` with γ₁ = [1, 1]ᵀ
//! (non-feasible: the whole diagonal collapses) and γ₂ = [3, 5]ᵀ
//! (feasible: from any point of J it leaves J). This example renders that
//! picture, classifies a family of vectors with Theorem 2.2, and
//! cross-checks each verdict by brute force.
//!
//! ```sh
//! cargo run --release --example conflict_explorer
//! ```

use cfmap::prelude::*;

fn main() {
    let mu = 4;
    let j = IndexSet::new(&[mu, mu]);
    println!("Index set J = {j}  ({} points)\n", j.len());

    let candidates: Vec<Vec<i64>> = vec![
        vec![1, 1],   // Figure 1's γ₁ — non-feasible
        vec![3, 5],   // Figure 1's γ₂ — feasible
        vec![2, 3],
        vec![5, -1],
        vec![-4, 4],
        vec![0, 5],
        vec![4, 4],
        vec![5, 5],   // not primitive — not a conflict vector at all
    ];

    println!("{:>10}  {:>11}  {:>13}  {:>11}", "γ", "primitive?", "Theorem 2.2", "brute force");
    println!("{}", "─".repeat(52));
    for c in &candidates {
        let gamma = IVec::from_i64s(c);
        let primitive = gamma.is_primitive();
        let verdict = feasibility(&gamma, &j);
        // Brute force: does any j ∈ J have j + γ ∈ J?
        let collides = j.iter().any(|p| j.contains_offset(&p, &gamma));
        let brute = if collides { "collides" } else { "clean" };
        match verdict {
            Feasibility::Feasible => assert!(!collides, "Theorem 2.2 must be exact"),
            Feasibility::NonFeasible => assert!(collides, "Theorem 2.2 must be exact"),
        }
        println!(
            "{:>10}  {:>11}  {:>13}  {:>11}",
            format!("[{},{}]", c[0], c[1]),
            if primitive { "yes" } else { "no" },
            format!("{verdict:?}"),
            brute
        );
    }

    // Render Figure 1: the grid with the two paper vectors drawn from the
    // origin.
    println!("\nFigure 1 rendition ('\u{25cf}' = index point, A = γ₁ chain, B = γ₂ endpoint):\n");
    let _diag = [1i64, 1]; // γ₁ direction (drawn via the x == y test below)
    let g2 = [3i64, 5];
    for y in (0..=mu + 5).rev() {
        let mut line = format!("{y:>2} ");
        for x in 0..=mu + 4 {
            let in_j = x <= mu && y <= mu;
            let on_g1_chain = in_j && x == y; // multiples of γ₁ from origin
            let g2_end = x == g2[0] && y == g2[1];
            line.push(' ');
            line.push(if g2_end {
                'B'
            } else if on_g1_chain {
                'A'
            } else if in_j {
                '\u{25cf}'
            } else {
                '·'
            });
        }
        println!("{line}");
    }
    println!("    0 1 2 3 4 5 6 7 8");
    println!("\nAll points marked A map to the same (processor, time) under any T with Tγ₁ = 0;");
    println!("B lies outside J, so γ₂ never pairs two points of J (Theorem 2.2).");

    // Tie it back to mappings: a 2×2 mapping with kernel γ₁ vs one with
    // kernel-free structure.
    let bad = MappingMatrix::from_rows(&[&[1, -1], &[2, -2]]); // kernel ∋ [1,1]
    let pairs = oracle::count_conflicting_pairs(&bad, &j);
    println!("\nMapping with kernel γ₁: {pairs} conflicting pairs observed by enumeration.");
}
