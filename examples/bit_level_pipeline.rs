//! The paper's motivating pipeline, end to end — what RAB [26] + this
//! paper's theory do together:
//!
//! 1. start from a *word-level* nested loop (matrix multiplication);
//! 2. expand it mechanically to a *bit-level* uniform dependence algorithm
//!    (`expand_to_bit_level` — two bit axes + carry/accumulate/shift
//!    chains);
//! 3. map the 5-D result onto a 2-D bit-level processor array with a
//!    time-optimal conflict-free schedule (Problem 2.2);
//! 4. validate on the cycle-level simulator and report utilization and
//!    optimality gaps against absolute lower bounds.
//!
//! ```sh
//! cargo run --release --example bit_level_pipeline
//! ```

use cfmap::prelude::*;

fn main() {
    // ── 1. The word-level algorithm ────────────────────────────────────
    let mu_word = 2;
    let word = algorithms::matmul(mu_word);
    println!("word-level : {}  ({} computations)", word.name, word.num_computations());

    // ── 2. Bit-level expansion (the RAB front-end) ─────────────────────
    let mu_bit = 3; // 4-bit operands
    let bit = expand_to_bit_level(&word, mu_bit);
    println!(
        "bit-level  : {}  (n = {}, m = {}, {} computations)",
        bit.name,
        bit.dim(),
        bit.num_deps(),
        bit.num_computations()
    );
    println!("dependence matrix D:\n{}\n", bit.deps);

    // ── 3. Map onto a 2-D array: word axes → array axes ────────────────
    let rows = extend_space_rows(&[vec![1, 0, 0], vec![0, 1, 0]]);
    let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
    let space = SpaceMap::from_rows(&refs);
    let design = ArrayDesign::synthesize(&bit, space).build().expect("synthesizable");
    println!(
        "mapping    : Π° = {:?},  t = {} cycles on a {}×{} bit-level array",
        design.mapping.schedule().as_slice(),
        design.total_time,
        design.array.bounds()[0].1 - design.array.bounds()[0].0 + 1,
        design.array.bounds()[1].1 - design.array.bounds()[1].0 + 1,
    );

    // ── 4. Validate and contextualize ──────────────────────────────────
    assert!(design.report.is_clean());
    println!(
        "simulation : {} computations, zero conflicts, mean utilization {:.1}%",
        design.report.computations,
        design.stats.mean_utilization() * 100.0
    );
    let cp = critical_path(&bit);
    let pigeon = pigeonhole_bound(&bit, design.array.num_processors());
    let linear = linear_schedule_bound(&bit, 120).unwrap();
    println!("\noptimality context:");
    println!("  critical dependence chain : {cp:>4} cycles");
    println!("  pigeonhole ({} PEs)        : {pigeon:>4} cycles", design.array.num_processors());
    println!("  best linear (no conflicts): {linear:>4} cycles");
    println!("  conflict-free optimum     : {:>4} cycles", design.total_time);
    assert!(cp <= linear && linear <= design.total_time);

    // The conflict machinery behind it: Proposition 8.1's closed form.
    if let Some((u4, u5)) = prop_8_1_basis(&design.mapping) {
        println!("\nProposition 8.1 conflict-lattice basis: ū₄ = {u4}, ū₅ = {u5}");
        let verdict = conditions::sign_pattern_condition_on_basis(&[u4, u5], &bit.index_set);
        println!("Theorem 4.7 (repaired) on the closed-form basis: {verdict:?}");
    }
}
