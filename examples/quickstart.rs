//! Quickstart: map 3-D matrix multiplication onto a linear systolic array
//! and watch it run.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cfmap::prelude::*;

fn main() {
    // 1. The algorithm: C = A·B as a uniform dependence algorithm
    //    (J = {0..μ}³, D = I₃ — Example 3.1 of the paper).
    let mu = 4;
    let alg = algorithms::matmul(mu);
    println!("Algorithm:\n{alg}\n");

    // 2. The space map: S = [1, 1, −1] sends index point j̄ to processor
    //    j₁ + j₂ − j₃ of a linear array.
    let s = SpaceMap::row(&[1, 1, -1]);

    // 3. Find the time-optimal conflict-free schedule (Problem 2.2) with
    //    Procedure 5.1.
    let opt = Procedure51::new(&alg, &s).solve().expect("search ran to completion").expect_optimal("a conflict-free mapping exists");
    println!(
        "Optimal schedule {}  →  total time t = {} = μ(μ+2)+1   ({} candidates examined)",
        opt.schedule, opt.total_time, opt.candidates_examined
    );
    println!("{}\n", opt.mapping);

    // 4. Inspect the conflict analysis: the unique conflict vector must be
    //    feasible (some |γ_i| > μ, Theorem 2.2).
    let analysis = ConflictAnalysis::new(&opt.mapping, &alg.index_set);
    let gamma = analysis.unique_conflict_vector().expect("k = n−1 has one conflict vector");
    println!(
        "Conflict vector γ = {gamma}, feasibility: {:?}",
        feasibility(&gamma, &alg.index_set)
    );

    // 5. Synthesize and simulate the array.
    let array = SystolicArray::synthesize(&alg, &opt.mapping);
    println!(
        "\nArray: {} PEs spanning {:?}, {} cycles",
        array.num_processors(),
        array.bounds(),
        array.total_time()
    );
    let report = Simulator::new(&alg, &opt.mapping).run().unwrap();
    assert!(report.conflicts.is_empty(), "theory promised conflict-freedom");
    println!(
        "Simulated: {} computations, makespan {}, peak parallelism {}, zero conflicts",
        report.computations,
        report.makespan(),
        report.peak_parallelism
    );

    // 6. And it really multiplies matrices: execute with real values.
    let kernel = MatmulKernel::random((mu + 1) as usize, 2026);
    let result = execute(&alg, &opt.mapping, &kernel);
    assert_eq!(kernel.extract_product(&result, mu), kernel.reference_product());
    println!("Numeric check: array output equals A·B ✓");
}
