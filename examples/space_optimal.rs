//! Problem 6.1 — the paper's stated future work, implemented: given a
//! linear schedule, find the space map minimizing processors + wire
//! length, subject to conflict-freedom.
//!
//! ```sh
//! cargo run --release --example space_optimal
//! ```

use cfmap::prelude::*;

fn main() {
    println!("═══ Problem 6.1: space-optimal conflict-free mappings ═══\n");

    // Matmul under the paper's optimal schedule Π = [1, μ, 1].
    let mu = 4;
    let alg = algorithms::matmul(mu);
    let pi = LinearSchedule::new(&[1, mu, 1]);
    println!("matmul(μ = {mu}) with fixed {pi}:");
    let paper_space = SpaceMap::row(&[1, 1, -1]);
    let paper_design =
        MappingMatrix::new(paper_space.clone(), pi.clone());
    let paper_pes = SystolicArray::synthesize(&alg, &paper_design).num_processors();
    println!("  paper's S = [1, 1, −1]: {paper_pes} PEs");

    let sol = SpaceSearch::new(&alg, &pi).entry_bound(2).solve().expect("search ran to completion").expect_optimal("solvable");
    println!(
        "  space-optimal:  S = {} → {} PEs + {} wire units (cost {}), {} candidates examined",
        sol.space, sol.processors, sol.wire_length, sol.cost, sol.candidates_examined
    );
    assert!(oracle::is_conflict_free_by_enumeration(&sol.mapping, &alg.index_set));
    let report = Simulator::new(&alg, &sol.mapping).run().unwrap();
    assert!(report.conflicts.is_empty());
    println!(
        "  validated: conflict-free by enumeration and simulation; makespan {}",
        report.makespan()
    );

    // Transitive closure under its optimal schedule.
    let alg = algorithms::transitive_closure(mu);
    let pi = LinearSchedule::new(&[mu + 1, 1, 1]);
    println!("\ntransitive-closure(μ = {mu}) with fixed {pi}:");
    let sol = SpaceSearch::new(&alg, &pi).entry_bound(2).solve().expect("search ran to completion").expect_optimal("solvable");
    println!(
        "  space-optimal: S = {} → {} PEs + {} wire units (cost {})",
        sol.space, sol.processors, sol.wire_length, sol.cost
    );
    println!("  (the paper's S = [0, 0, 1] costs 5 PEs + 3 wires = 8)");

    // The time/space trade-off made visible: sweep schedules by total
    // time and report the space-optimal cost for each.
    println!("\nTime/space trade-off for matmul(μ = 4):");
    println!("{:>14} {:>8} {:>10}", "Π", "t", "space cost");
    let alg = algorithms::matmul(mu);
    for pi_entries in [[1i64, 2, 3], [1, 4, 1], [2, 1, 4], [2, 4, 2], [1, 6, 1]] {
        let pi = LinearSchedule::new(&pi_entries);
        if !pi.is_valid_for(&alg.deps) {
            continue;
        }
        let t = pi.total_time(&alg.index_set);
        match SpaceSearch::new(&alg, &pi).entry_bound(1).solve().unwrap().into_mapping() {
            Some(sol) => println!("{:>14} {:>8} {:>10}", format!("{pi_entries:?}"), t, sol.cost),
            None => println!("{:>14} {:>8} {:>10}", format!("{pi_entries:?}"), t, "—"),
        }
    }
}
