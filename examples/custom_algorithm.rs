//! Bring your own loop nest: build a custom uniform dependence algorithm,
//! synthesize a validated array design in one call, and inspect it.
//!
//! The loop nest here is a 3-D stencil relaxation:
//!
//! ```text
//! for t in 0..=T { for i in 0..=N { for j in 0..=N {
//!     u[i][j] = f(u_prev[i][j], u_prev[i-1][j], u[i][j-1])
//! } } }
//! ```
//!
//! ```sh
//! cargo run --release --example custom_algorithm
//! ```

use cfmap::prelude::*;

fn main() {
    // 1. Describe the loop nest: axes (t, i, j), three dependencies.
    let alg = UdaBuilder::new("stencil-relaxation")
        .bounds(&[4, 5, 5])
        .dep(&[1, 0, 0]) // u_prev[i][j]   — previous sweep
        .dep(&[1, 1, 0]) // u_prev[i−1][j] — previous sweep, neighbour row
        .dep(&[0, 0, 1]) // u[i][j−1]      — current sweep, left neighbour
        .build();
    println!("{alg}\n");

    // 2. One-call synthesis: PE per grid row (S = [0, 1, 0]), optimal
    //    conflict-free schedule, cycle-level validation.
    let design = ArrayDesign::synthesize(&alg, SpaceMap::row(&[0, 1, 0]))
        .build()
        .expect("synthesizable design");

    println!(
        "Mapping:\n{}\nt = {} cycles on {} PEs ({}-D array)",
        design.mapping,
        design.total_time,
        design.array.num_processors(),
        design.array.dims()
    );
    println!(
        "Utilization: mean {:.1}%, peak parallelism {}, load imbalance {:.2}",
        design.stats.mean_utilization() * 100.0,
        design.report.peak_parallelism,
        design.stats.load_imbalance()
    );
    assert!(design.report.conflicts.is_empty());

    // 3. Why that schedule? Inspect the conflict analysis.
    let analysis = ConflictAnalysis::new(&design.mapping, &alg.index_set);
    println!("\nConflict-lattice basis (kernel columns of the Hermite multiplier U):");
    for u in analysis.lattice_basis() {
        println!(
            "  {} → {:?}",
            u,
            feasibility(&u, &alg.index_set)
        );
    }

    // 4. Compare against the space-optimal alternative (Problem 6.1):
    //    keep the found schedule, search for the cheapest space map.
    let sol = SpaceSearch::new(&alg, design.mapping.schedule())
        .entry_bound(1)
        .solve()
        .expect("search ran to completion")
        .expect_optimal("space-optimal design exists");
    println!(
        "\nProblem 6.1 (space-optimal for the same schedule): S = {}  →  {} PEs + {} wire units (cost {})",
        sol.space,
        sol.processors,
        sol.wire_length,
        sol.cost
    );

    // 5. Execute structurally and report the critical path.
    let depth = execute(&alg, &design.mapping, &DepthKernel);
    let critical = depth.values.values().copied().max().unwrap();
    println!(
        "\nCritical dependence chain: {critical} cycles (schedule achieves {})",
        design.total_time
    );
}
