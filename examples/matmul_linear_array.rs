//! Example 5.1 of the paper, end to end: the time-optimal linear-array
//! design for matrix multiplication, compared against the prior design of
//! [23], with Figure 2 (block diagram) and Figure 3 (space-time diagram)
//! regenerated.
//!
//! ```sh
//! cargo run --release --example matmul_linear_array -- [μ]
//! ```

use cfmap::prelude::*;

fn main() {
    let mu: i64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4);
    let alg = algorithms::matmul(mu);
    let s = SpaceMap::row(&[1, 1, -1]);
    let prims = InterconnectionPrimitives::from_columns(&[&[1], &[1], &[-1]]);

    println!("═══ Example 5.1: matmul (μ = {mu}) onto a linear array ═══\n");

    // ---- Optimal design (this paper) -------------------------------
    let opt = Procedure51::new(&alg, &s)
        .primitives(&prims)
        .solve()
        .expect("search ran to completion")
        .expect_optimal("optimal mapping exists");
    let routing = opt.routing.as_ref().expect("routing requested");
    println!("This paper:   Π° = {:?}", opt.schedule.as_slice());
    println!("              t  = {} (= μ(μ+2)+1 = {})", opt.total_time, mu * (mu + 2) + 1);
    println!("              buffers = {}", routing.total_buffers());

    // ---- Baseline [23] ----------------------------------------------
    let base = baselines::matmul_baseline_23(mu);
    let base_mapping = base.mapping();
    let base_routing = route(&base_mapping, &alg.deps, &prims).expect("baseline routable");
    println!(
        "\nBaseline {}: Π' = {:?}",
        base.source,
        base.schedule.as_slice()
    );
    println!(
        "              t' = {} (= μ(μ+3)+1 = {})",
        base.total_time(&alg),
        mu * (mu + 3) + 1
    );
    println!("              buffers = {}", base_routing.total_buffers());

    // ---- Figure 2: block diagram ------------------------------------
    println!("\n─── Figure 2: linear array block diagram (optimal design) ───");
    println!("{}", block_diagram(&alg, &opt.mapping, routing, &["B", "A", "C"]));

    // ---- Simulate both designs --------------------------------------
    let report = Simulator::new(&alg, &opt.mapping).with_routing(routing).run().unwrap();
    let base_report = Simulator::new(&alg, &base_mapping).with_routing(&base_routing).run().unwrap();
    println!("─── Simulation ───");
    println!(
        "optimal : makespan {:2}, conflicts {}, link collisions {}",
        report.makespan(),
        report.conflicts.len(),
        report.link_collisions.len()
    );
    println!(
        "baseline: makespan {:2}, conflicts {}, link collisions {}",
        base_report.makespan(),
        base_report.conflicts.len(),
        base_report.link_collisions.len()
    );
    assert!(report.is_clean() && base_report.is_clean());

    // ---- Numeric verification ---------------------------------------
    let kernel = MatmulKernel::random((mu + 1) as usize, 7);
    let result = execute(&alg, &opt.mapping, &kernel);
    assert_eq!(kernel.extract_product(&result, mu), kernel.reference_product());
    println!("\nNumeric check: the array computes C = A·B exactly ✓");

    // ---- Figure 3: space-time diagram -------------------------------
    if mu <= 4 {
        println!("\n─── Figure 3: space-time execution diagram (cells are j₁j₂j₃) ───");
        println!("{}", space_time_diagram(&report, &opt.mapping));
    } else {
        println!("\n(space-time diagram suppressed for μ > 4; run with μ ≤ 4 to see it)");
    }
}
