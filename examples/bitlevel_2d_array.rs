//! The paper's motivating use case (Section 1): bit-level algorithms are
//! 4- and 5-dimensional, bit-level processor arrays are 2-dimensional —
//! map the former onto the latter.
//!
//! This example maps:
//!
//! 1. the 5-D bit-level matrix multiplication onto a 2-D array
//!    (`T ∈ Z^{3×5}`, kernel dimension 2 → Theorem 4.7, with the
//!    conflict-lattice basis also obtained in closed form from
//!    Proposition 8.1);
//! 2. the 4-D bit-level convolution onto a 2-D array (`T ∈ Z^{3×4}`,
//!    kernel dimension 1 → Theorem 3.1);
//! 3. the 5-D bit-level matmul onto a **1-D** array (`T ∈ Z^{2×5}`,
//!    kernel dimension 3 → Theorem 4.8).
//!
//! ```sh
//! cargo run --release --example bitlevel_2d_array
//! ```

use cfmap::prelude::*;

fn main() {
    five_d_matmul_to_2d();
    four_d_convolution_to_2d();
    five_d_matmul_to_1d();
}

fn five_d_matmul_to_2d() {
    let (mu_w, mu_b) = (2, 3);
    let alg = algorithms::bitlevel_matmul(mu_w, mu_b);
    println!("═══ 5-D bit-level matmul (μ_w = {mu_w}, μ_b = {mu_b}) → 2-D array ═══");
    // PE per (row, column) word position; the reduction and bit axes are
    // folded into time.
    let s = SpaceMap::from_rows(&[&[1, 0, 0, 0, 0], &[0, 1, 0, 0, 0]]);
    let opt = Procedure51::new(&alg, &s).solve().expect("search ran to completion").expect_optimal("mapping exists");
    println!("Π° = {:?},  t = {}", opt.schedule.as_slice(), opt.total_time);

    // Proposition 8.1: the conflict lattice in closed form, checked
    // against the paper's Theorem 4.7 test.
    let (u4, u5) = prop_8_1_basis(&opt.mapping).expect("normalized S");
    println!("Prop 8.1 basis: ū₄ = {u4}, ū₅ = {u5}");
    let verdict = conditions::sign_pattern_condition_on_basis(
        &[u4, u5],
        &alg.index_set,
    );
    println!("Theorem 4.7 on the closed-form basis: {verdict:?}");

    let report = Simulator::new(&alg, &opt.mapping).run().unwrap();
    assert!(report.conflicts.is_empty());
    let array = SystolicArray::synthesize(&alg, &opt.mapping);
    println!(
        "Simulated {} computations on a {}-PE 2-D array, makespan {}, zero conflicts ✓\n",
        report.computations,
        array.num_processors(),
        report.makespan()
    );
}

fn four_d_convolution_to_2d() {
    let (mu_w, mu_b) = (3, 3);
    let alg = algorithms::bitlevel_convolution(mu_w, mu_b);
    println!("═══ 4-D bit-level convolution (μ_w = {mu_w}, μ_b = {mu_b}) → 2-D array ═══");
    let s = SpaceMap::from_rows(&[&[1, 0, 0, 0], &[0, 1, 0, 0]]);
    let opt = Procedure51::new(&alg, &s).solve().expect("search ran to completion").expect_optimal("mapping exists");
    println!("Π° = {:?},  t = {}", opt.schedule.as_slice(), opt.total_time);

    let analysis = ConflictAnalysis::new(&opt.mapping, &alg.index_set);
    let gamma = analysis.unique_conflict_vector().expect("kernel dimension 1");
    println!("Unique conflict vector γ = {gamma} (Theorem 3.1): {:?}", feasibility(&gamma, &alg.index_set));

    let report = Simulator::new(&alg, &opt.mapping).run().unwrap();
    assert!(report.conflicts.is_empty());
    println!(
        "Simulated {} computations, makespan {}, zero conflicts ✓\n",
        report.computations,
        report.makespan()
    );
}

fn five_d_matmul_to_1d() {
    let (mu_w, mu_b) = (2, 1);
    let alg = algorithms::bitlevel_matmul(mu_w, mu_b);
    println!("═══ 5-D bit-level matmul (μ_w = {mu_w}, μ_b = {mu_b}) → 1-D array (Theorem 4.8) ═══");
    let s = SpaceMap::row(&[1, 1, 0, 0, 0]);
    // A pigeonhole lower bound: |J| = 108 computations on 5 PEs need
    // t ≥ ⌈108/5⌉ = 22 cycles, i.e. objective ≥ 21; the conflict-free
    // optimum lands at t = 40.
    let exact = Procedure51::new(&alg, &s)
        .max_objective(45)
        .solve()
        .expect("search ran to completion")
        .expect_optimal("mapping exists");
    println!("Π° (exact test)   = {:?},  t = {}", exact.schedule.as_slice(), exact.total_time);
    // The same search driven by the paper's Theorem 4.8 test (kernel
    // dimension 3). The condition is sufficient-only, so it can only land
    // on an equal-or-later schedule — or none within the cap.
    match Procedure51::new(&alg, &s)
        .condition(ConditionKind::Paper)
        .max_objective(45)
        .solve()
        .expect("search ran to completion")
        .into_mapping()
    {
        Some(paper) => {
            println!("Π° (Thm 4.8 test) = {:?},  t = {}", paper.schedule.as_slice(), paper.total_time);
            assert!(paper.total_time >= exact.total_time, "paper conditions are sufficient ⇒ sound");
        }
        None => println!("Π° (Thm 4.8 test) = not certified within the cap (sufficiency gap)"),
    }

    let report = Simulator::new(&alg, &exact.mapping).run().unwrap();
    assert!(report.conflicts.is_empty());
    println!(
        "Simulated {} computations on {} PEs, makespan {}, zero conflicts ✓",
        report.computations,
        SystolicArray::synthesize(&alg, &exact.mapping).num_processors(),
        report.makespan()
    );
}
