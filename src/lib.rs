//! # cfmap — conflict-free mappings onto lower-dimensional processor arrays
//!
//! A full reproduction of Weijia Shang & Jose A. B. Fortes,
//! *Time-Optimal and Conflict-Free Mappings of Uniform Dependence
//! Algorithms into Lower Dimensional Processor Arrays* (ICPP 1990 /
//! Purdue TR-EE 90-29).
//!
//! An `n`-dimensional nested-loop algorithm `(J, D)` is mapped onto a
//! `(k−1)`-dimensional processor array by `T = [S; Π]`: index point `j̄`
//! executes on processor `S·j̄` at time `Π·j̄`. For `k < n` the mapping is
//! non-injective on `Z^n`, and the paper's contribution is a closed-form
//! theory — built on the Hermite normal form of `T` — of when no two
//! points of `J` collide on the same (processor, time) pair, plus
//! optimization procedures for the fastest such schedule.
//!
//! ## Quick start
//!
//! ```
//! use cfmap::prelude::*;
//!
//! // Example 5.1 of the paper: map 3-D matrix multiplication (μ = 4)
//! // onto a linear systolic array with space map S = [1, 1, −1].
//! let alg = algorithms::matmul(4);
//! let s = SpaceMap::row(&[1, 1, -1]);
//! let opt = Procedure51::new(&alg, &s)
//!     .solve()
//!     .expect("search ran to completion")
//!     .expect_optimal("mapping exists");
//! assert_eq!(opt.total_time, 4 * (4 + 2) + 1); // t = μ(μ+2)+1 = 25
//!
//! // Simulate the synthesized array and observe zero conflicts.
//! let report = Simulator::new(&alg, &opt.mapping).run().unwrap();
//! assert!(report.conflicts.is_empty());
//! assert_eq!(report.makespan(), 25);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`cfmap_intlin`] | exact big integers, rationals, integer matrices, Hermite/Smith normal forms |
//! | [`cfmap_lp`] | exact simplex, branch & bound ILP, vertex enumeration, disjunctive programs |
//! | [`cfmap_model`] | uniform dependence algorithms, index sets, schedules, workload library |
//! | [`cfmap_core`] | conflict vectors, Theorems 2.2–4.8, Procedure 5.1, ILP formulations, Prop. 8.1 |
//! | [`cfmap_systolic`] | cycle-level array simulator, semantic kernels, Figure 2/3 renderers |
//! | [`cfmap_service`] | `cfmapd`: mapping-as-a-service daemon with a canonicalizing design cache |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cfmap_core as core;
pub use cfmap_intlin as intlin;
pub use cfmap_lp as lp;
pub use cfmap_model as model;
pub use cfmap_service as service;
pub use cfmap_systolic as systolic;

/// Everything a downstream user typically needs, in one import.
pub mod prelude {
    pub use cfmap_core::baselines;
    pub use cfmap_core::conditions::{self, ConditionKind, ConditionVerdict};
    pub use cfmap_core::conflict::{feasibility, ConflictAnalysis, Feasibility};
    pub use cfmap_core::ilp::optimal_schedule_ilp;
    pub use cfmap_core::mapping::{route, Routing};
    pub use cfmap_core::oracle;
    pub use cfmap_core::prop81::prop_8_1_basis;
    pub use cfmap_core::{
        diagnose, BudgetLimit, CancelToken, Certification, CfmapError, Check, Deadline,
        InterconnectionPrimitives, JointCriterion, JointOptimal, JointSearch, MappingDiagnosis,
        MappingMatrix, OptimalMapping, ParetoFrontier, ParetoPoint, ParetoSearch, Procedure51,
        ResourceModel, SearchBudget, SearchOutcome, SpaceMap, TieBreak,
        SpaceOptimalMapping, SpaceSearch,
    };
    pub use cfmap_systolic::rtl::{execute_rtl, RtlResult};
    pub use cfmap_model::bitexpand::{expand_to_bit_level, extend_space_rows};
    pub use cfmap_model::bounds::{critical_path, linear_schedule_bound, pigeonhole_bound};
    pub use cfmap_intlin::{hermite_normal_form, smith_normal_form, IMat, IVec, Int, Rat};
    pub use cfmap_model::{algorithms, DependenceMatrix, IndexSet, LinearSchedule, Uda, UdaBuilder};
    pub use cfmap_systolic::diagram::{block_diagram, space_time_diagram};
    pub use cfmap_systolic::exec::{execute, execute_parallel};
    pub use cfmap_systolic::{
        ArrayDesign, ConvolutionKernel, DepthKernel, DesignError, Kernel, LuKernel,
        MatmulKernel, SimReport, Simulator, SystolicArray, UtilizationStats,
    };
}
