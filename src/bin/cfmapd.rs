//! `cfmapd` — the mapping-as-a-service daemon.
//!
//! ```text
//! cfmapd [--addr 127.0.0.1:7971] [--workers 4] [--cache-capacity 256]
//!        [--shards 8] [--queue-capacity 64] [--drain-deadline-ms 5000]
//!        [--cache-load PATH] [--watch-stdin] [--log-format json]
//!        [--enable-fault-injection]
//! ```
//!
//! On startup the daemon prints exactly one line, `cfmapd listening on
//! <addr>`, to stdout — scripts (and the smoke tests) bind port 0 and
//! parse the resolved address from it.
//!
//! Shutdown: `POST /shutdown`, or start with `--watch-stdin` and close
//! the daemon's stdin (the idiom for supervisors that signal children by
//! closing a pipe — plain `std` has no signal API, so SIGTERM handling
//! belongs to the process supervisor).

use cfmap::service::server::{CfmapServer, ServerConfig};
use std::io::{Read, Write};
use std::process::ExitCode;

const USAGE: &str = "\
cfmapd — mapping-as-a-service daemon (Shang & Fortes conflict-free mappings)

USAGE:
  cfmapd [--addr HOST:PORT] [--workers N] [--cache-capacity N] [--shards N]
         [--queue-capacity N] [--drain-deadline-ms N] [--cache-load PATH]
         [--watch-stdin] [--log-format text|json] [--enable-fault-injection]

OPTIONS:
  --addr               bind address (default 127.0.0.1:7971; port 0 = ephemeral)
  --workers            worker threads (default 4)
  --cache-capacity     design-cache entries (default 256)
  --shards             design-cache shards (default 8)
  --queue-capacity     admission queue slots; beyond this, connections are
                       shed with 503 + Retry-After (default 64)
  --drain-deadline-ms  shutdown drain bound before in-flight searches are
                       cancelled to best-effort answers (default 5000)
  --cache-load         warm-start snapshot to load before serving (written by
                       GET/POST /cache/save); refused precisely on a version,
                       digest, or checksum mismatch
  --watch-stdin        shut down gracefully when stdin reaches EOF
  --log-format         'json' emits one access-log line per request on stderr
                       (default 'text': no per-request logging)
  --enable-fault-injection
                       honor X-Cfmapd-Fault test headers (panic | stall-ms:N);
                       for chaos testing only

ROUTES:
  POST /map          one mapping request        POST /batch   {\"requests\": [...]}
  GET  /stats        cache + search counters    GET  /healthz liveness (+ draining, queue depth)
  GET  /metrics      Prometheus text format     GET  /readyz  readiness (503 while draining)
  GET  /family       schedule-family catalogue  GET  /cache/save  snapshot as text
  POST /cache/clear  drop cached designs        POST /cache/save  {\"path\": \"...\"} save server-side
  POST /shutdown     drain and exit";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_config(&args) {
        Ok(Some(c)) => c,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let (config, watch_stdin) = config;
    let server = match CfmapServer::bind(&config) {
        Ok(s) => s,
        Err(e) => {
            // Covers both bind failures and a refused --cache-load
            // snapshot (the error names the flag and the mismatch).
            eprintln!("error: cannot start on {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: no local address: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("cfmapd listening on {addr}");
    let _ = std::io::stdout().flush();

    if watch_stdin {
        let stop = match server.shutdown_handle() {
            Ok(h) => h,
            Err(e) => {
                eprintln!("error: no shutdown handle: {e}");
                return ExitCode::FAILURE;
            }
        };
        std::thread::spawn(move || {
            // Block until the supervisor closes our stdin, then drain.
            let mut sink = [0u8; 4096];
            let mut stdin = std::io::stdin();
            while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
            stop.shutdown();
        });
    }

    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: serve loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parse arguments; `Ok(None)` means help was requested.
fn parse_config(args: &[String]) -> Result<Option<(ServerConfig, bool)>, String> {
    let mut config = ServerConfig { addr: "127.0.0.1:7971".into(), ..ServerConfig::default() };
    let mut watch_stdin = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" | "help" => return Ok(None),
            "--watch-stdin" => watch_stdin = true,
            "--addr" => {
                config.addr = it.next().ok_or("--addr needs a value")?.clone();
            }
            "--workers" => {
                config.workers = parse_count(it.next(), "--workers")?;
            }
            "--cache-capacity" => {
                config.cache_capacity = parse_count(it.next(), "--cache-capacity")?;
            }
            "--shards" => {
                config.cache_shards = parse_count(it.next(), "--shards")?;
            }
            "--queue-capacity" => {
                config.queue_capacity = parse_count(it.next(), "--queue-capacity")?;
            }
            "--drain-deadline-ms" => {
                let ms = parse_count(it.next(), "--drain-deadline-ms")?;
                config.drain_deadline = std::time::Duration::from_millis(ms as u64);
            }
            "--cache-load" => {
                config.cache_load = Some(it.next().ok_or("--cache-load needs a value")?.clone());
            }
            "--enable-fault-injection" => config.fault_injection = true,
            "--log-format" => {
                let v = it.next().ok_or("--log-format needs a value")?;
                config.log_json = match v.as_str() {
                    "json" => true,
                    "text" => false,
                    other => {
                        return Err(format!("bad --log-format value {other:?} (text or json)"))
                    }
                };
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(Some((config, watch_stdin)))
}

fn parse_count(value: Option<&String>, flag: &str) -> Result<usize, String> {
    let v = value.ok_or_else(|| format!("{flag} needs a value"))?;
    let n: usize = v.parse().map_err(|_| format!("bad {flag} value {v:?}"))?;
    if n == 0 {
        return Err(format!("{flag} must be ≥ 1"));
    }
    Ok(n)
}
