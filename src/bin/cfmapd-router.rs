//! `cfmapd-router` — cache-affine reverse proxy over a `cfmapd` fleet.
//!
//! ```text
//! cfmapd-router --backend 127.0.0.1:7971 --backend 127.0.0.1:7972
//!               [--addr 127.0.0.1:7970] [--replicas 64] [--workers 8]
//!               [--queue-capacity 128] [--health-interval-ms 500]
//!               [--failure-threshold 3] [--open-cooldown-ms 1000]
//!               [--failover-budget 2] [--watch-stdin]
//! ```
//!
//! On startup the router prints exactly one line, `cfmapd-router
//! listening on <addr>`, to stdout — scripts bind port 0 and parse the
//! resolved address from it, same contract as `cfmapd`.
//!
//! Shutdown: `POST /shutdown`, or start with `--watch-stdin` and close
//! stdin (the supervisor idiom shared with `cfmapd`).

use cfmap::service::router::{CfmapRouter, RouterConfig};
use std::io::{Read, Write};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
cfmapd-router — health-checked, cache-affine fan-out over cfmapd backends

USAGE:
  cfmapd-router --backend HOST:PORT [--backend HOST:PORT ...]
                [--addr HOST:PORT] [--replicas N] [--workers N]
                [--queue-capacity N] [--health-interval-ms N]
                [--failure-threshold N] [--open-cooldown-ms N]
                [--failover-budget N] [--watch-stdin]

OPTIONS:
  --backend             a cfmapd backend address; repeat once per backend
  --addr                bind address (default 127.0.0.1:7970; port 0 = ephemeral)
  --replicas            virtual nodes per backend on the hash ring (default 64)
  --workers             downstream worker threads (default 8)
  --queue-capacity      admission queue slots before shedding 503 (default 128)
  --health-interval-ms  period of the /healthz probe loop (default 500)
  --failure-threshold   consecutive failures that open a circuit (default 3)
  --open-cooldown-ms    open-circuit wait before one half-open trial (default 1000)
  --failover-budget     extra backends tried after a transport failure (default 2)
  --watch-stdin         shut down gracefully when stdin reaches EOF

ROUTES:
  POST /map        canonicalize, ring-route, forward with failover
  POST /batch      ring-route by the first canonicalizable member
  GET  /healthz    router liveness + backend up-count
  GET  /readyz     200 while at least one backend is routable
  GET  /backends   per-backend health/circuit/pool state
  GET  /metrics    the router's own Prometheus registry
  POST /shutdown   drain and exit";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (config, watch_stdin) = match parse_config(&args) {
        Ok(Some(c)) => c,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let router = match CfmapRouter::bind(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    let addr = match router.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: no local address: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("cfmapd-router listening on {addr}");
    let _ = std::io::stdout().flush();

    if watch_stdin {
        let stop = match router.shutdown_handle() {
            Ok(h) => h,
            Err(e) => {
                eprintln!("error: no shutdown handle: {e}");
                return ExitCode::FAILURE;
            }
        };
        std::thread::spawn(move || {
            let mut sink = [0u8; 4096];
            let mut stdin = std::io::stdin();
            while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
            stop.shutdown();
        });
    }

    match router.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: serve loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parse arguments; `Ok(None)` means help was requested.
fn parse_config(args: &[String]) -> Result<Option<(RouterConfig, bool)>, String> {
    let mut config = RouterConfig { addr: "127.0.0.1:7970".into(), ..RouterConfig::default() };
    let mut watch_stdin = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" | "help" => return Ok(None),
            "--watch-stdin" => watch_stdin = true,
            "--addr" => config.addr = it.next().ok_or("--addr needs a value")?.clone(),
            "--backend" => {
                config.backends.push(it.next().ok_or("--backend needs a value")?.clone());
            }
            "--replicas" => config.replicas = parse_count(it.next(), "--replicas")?,
            "--workers" => config.workers = parse_count(it.next(), "--workers")?,
            "--queue-capacity" => {
                config.queue_capacity = parse_count(it.next(), "--queue-capacity")?;
            }
            "--health-interval-ms" => {
                config.health_interval =
                    Duration::from_millis(parse_count(it.next(), "--health-interval-ms")? as u64);
            }
            "--failure-threshold" => {
                config.failure_threshold =
                    parse_count(it.next(), "--failure-threshold")? as u32;
            }
            "--open-cooldown-ms" => {
                config.open_cooldown =
                    Duration::from_millis(parse_count(it.next(), "--open-cooldown-ms")? as u64);
            }
            "--failover-budget" => {
                // 0 is a legal budget (no failover), so parse without
                // the ≥ 1 guard.
                let v = it.next().ok_or("--failover-budget needs a value")?;
                config.failover_budget =
                    v.parse().map_err(|_| format!("bad --failover-budget value {v:?}"))?;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if config.backends.is_empty() {
        return Err("at least one --backend is required".into());
    }
    Ok(Some((config, watch_stdin)))
}

fn parse_count(value: Option<&String>, flag: &str) -> Result<usize, String> {
    let v = value.ok_or_else(|| format!("{flag} needs a value"))?;
    let n: usize = v.parse().map_err(|_| format!("bad {flag} value {v:?}"))?;
    if n == 0 {
        return Err(format!("{flag} must be ≥ 1"));
    }
    Ok(n)
}
