//! `cfmap` — command-line front end to the conflict-free mapping library.
//!
//! ```text
//! cfmap map       --alg matmul --mu 4 --space 1,1,-1        # Problem 2.2
//! cfmap analyze   --alg matmul --mu 4 --space 1,1,-1 --pi 1,4,1
//! cfmap simulate  --alg matmul --mu 4 --space 1,1,-1 --pi 1,4,1 [--diagram]
//! cfmap space-opt --alg matmul --mu 4 --pi 1,4,1             # Problem 6.1
//! cfmap list                                                 # workloads
//! ```
//!
//! Argument parsing is deliberately dependency-free (`--key value` pairs).
//!
//! Exit codes are structured so scripts can branch on the failure class:
//! `0` success, `1` infeasible (the search proved no mapping exists within
//! its caps), `2` usage error, `3` a structured [`CfmapError`] (overflow,
//! exhausted budget, shape mismatch, …).

use cfmap::prelude::*;
use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Duration;

/// CLI failure classes, each with its own exit code.
enum CliError {
    /// Bad arguments (exit 2).
    Usage(String),
    /// The search completed and proved infeasibility (exit 1).
    Infeasible(String),
    /// A structured library error surfaced (exit 3).
    Failed(CfmapError),
}

impl CliError {
    fn exit_code(&self) -> ExitCode {
        match self {
            CliError::Infeasible(_) => ExitCode::from(1),
            CliError::Usage(_) => ExitCode::from(2),
            CliError::Failed(_) => ExitCode::from(3),
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Infeasible(m) => write!(f, "{m}"),
            CliError::Failed(e) => write!(f, "{e}"),
        }
    }
}

impl From<CfmapError> for CliError {
    fn from(e: CfmapError) -> Self {
        CliError::Failed(e)
    }
}

impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Usage(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> Self {
        CliError::Usage(m.to_string())
    }
}

fn main() -> ExitCode {
    // Dying with a panic backtrace when stdout is closed early
    // (`cfmap … | head`) is hostile; treat a broken pipe as the normal
    // end of output, like every other Unix filter. Rust only exposes
    // SIGPIPE through the print panic, so intercept exactly that panic.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info.payload().downcast_ref::<String>().map(String::as_str);
        if msg.is_some_and(|m| m.contains("Broken pipe")) {
            std::process::exit(0);
        }
        default_hook(info);
    }));
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match command.as_str() {
        "map" => cmd_map(&opts),
        "analyze" => cmd_analyze(&opts),
        "simulate" => cmd_simulate(&opts),
        "space-opt" => cmd_space_opt(&opts),
        "pareto" => cmd_pareto(&opts),
        "joint" => cmd_joint(&opts),
        "bounds" => cmd_bounds(&opts),
        "client" => cmd_client(&opts),
        "list" => cmd_list(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            e.exit_code()
        }
    }
}

const USAGE: &str = "\
cfmap — time-optimal conflict-free mappings onto lower-dimensional arrays

USAGE:
  cfmap map       --alg <name> --mu <n> --space <row[;row]> [--trace]  find Π° (Problem 2.2)
  cfmap analyze   --alg <name> --mu <n> --space <row> --pi <row> conflict analysis of T = [S; Π]
  cfmap simulate  --alg <name> --mu <n> --space <row> --pi <row> [--diagram] cycle-level simulation
  cfmap space-opt --alg <name> --mu <n> --pi <row> [--trace]     find S° (Problem 6.1)
  cfmap pareto    --alg <name> --mu <n> [--space <row> | --pi <row>] [--bandwidth]
                  [--max-pes N] [--max-wires N] [--max-bandwidth N]   Pareto frontier
  cfmap joint     --alg <name> --mu <n> [--criterion time|space] [--trace] find (S°, Π°) (Problem 6.2)
  cfmap bounds    --alg <name> --mu <n>                          absolute lower bounds
  cfmap client    --addr host:port --alg <name> --mu <n> --space <row>  ask a running cfmapd
  cfmap client    --addr host:port --get /metrics               scrape one daemon route
  cfmap client    --addr host:port --post /pareto --body '<json>'  POST a raw body to a route
  cfmap list                                                     available workloads

CLIENT OPTIONS:
  --deadline-ms         absolute request deadline, anchored when the daemon
                        accepts the connection (queue wait counts); past it
                        the daemon answers best-effort
  --connect-timeout-ms  TCP connect timeout (default 5000)
  --read-timeout-ms     socket read timeout (default 30000)
  --write-timeout-ms    socket write timeout (default 30000)
  --retries             attempts after the first on i/o errors and 503 sheds,
                        with jittered exponential backoff honoring the
                        daemon's Retry-After (default 0)

OPTIONS:
  --alg       matmul | transitive-closure | convolution | lu | sor | matvec |
              identity4 | bitlevel-matmul | bitlevel-convolution | bitlevel-lu
  --mu        problem size μ (bit-level kernels use μ_w = μ and μ_b = μ+1)
  --space     space map rows, comma-separated entries, ';' between rows: \"1,1,-1\" or \"1,0,0,0,0;0,1,0,0,0\"
  --pi        schedule vector: \"1,4,1\"
  --cap       objective cap for searches (default: heuristic)
  --max-candidates  search budget: stop after examining N candidates (best-effort result)
  --timeout-ms      search budget: stop after N milliseconds of wall clock
  --diagram   print the space-time diagram (linear arrays)
  --bandwidth pareto: track peak link bandwidth as a fourth objective axis
  --max-pes / --max-wires / --max-bandwidth   pareto: resource budgets
  --entry-bound  pareto/space-opt: bound on |s_i| for enumerated rows (default 2)
  --get       client: GET a daemon route (/metrics, /stats, /healthz) and print the body
  --post      client: POST --body to a daemon route (/pareto, /map) and print the body
  --trace     after the mapping, print the per-stage search trace
              (candidates per screening gate, conflict rules hit, timing)

EXIT CODES:
  0  success        1  search proved infeasibility
  2  usage error    3  structured failure (overflow, exhausted budget, …)";

type Opts = HashMap<String, String>;

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("expected --option, got {a:?}"));
        };
        if key == "diagram" || key == "trace" || key == "bandwidth" {
            map.insert(key.to_string(), "true".to_string());
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        map.insert(key.to_string(), value.clone());
    }
    Ok(map)
}

fn parse_row(s: &str) -> Result<Vec<i64>, String> {
    s.split(',')
        .map(|p| p.trim().parse::<i64>().map_err(|_| format!("bad integer {p:?}")))
        .collect()
}

fn get_alg(opts: &Opts) -> Result<Uda, String> {
    let name = opts.get("alg").ok_or("--alg required")?;
    let mu: i64 = opts
        .get("mu")
        .ok_or("--mu required")?
        .parse()
        .map_err(|_| "bad --mu")?;
    if mu < 1 {
        return Err("--mu must be ≥ 1".into());
    }
    Ok(match name.as_str() {
        "matmul" => algorithms::matmul(mu),
        "transitive-closure" | "tc" => algorithms::transitive_closure(mu),
        "convolution" | "conv" => algorithms::convolution(mu, (mu / 2).max(1)),
        "lu" => algorithms::lu_decomposition(mu),
        "sor" => algorithms::sor(mu, mu),
        "matvec" => algorithms::matvec(mu, mu),
        "identity4" => algorithms::identity_cube(4, mu),
        "bitlevel-matmul" => algorithms::bitlevel_matmul(mu, mu + 1),
        "bitlevel-convolution" => algorithms::bitlevel_convolution(mu, mu + 1),
        "bitlevel-lu" => algorithms::bitlevel_lu(mu, mu + 1),
        other => return Err(format!("unknown algorithm {other:?} (try `cfmap list`)")),
    })
}

fn get_space(opts: &Opts, n: usize) -> Result<SpaceMap, String> {
    let spec = opts.get("space").ok_or("--space required")?;
    let rows: Result<Vec<Vec<i64>>, String> = spec.split(';').map(parse_row).collect();
    let rows = rows?;
    for r in &rows {
        if r.len() != n {
            return Err(format!("space row has {} entries, algorithm has n = {n}", r.len()));
        }
    }
    let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
    Ok(SpaceMap::from_rows(&refs))
}

fn get_pi(opts: &Opts, n: usize) -> Result<LinearSchedule, String> {
    let row = parse_row(opts.get("pi").ok_or("--pi required")?)?;
    if row.len() != n {
        return Err(format!("--pi has {} entries, algorithm has n = {n}", row.len()));
    }
    Ok(LinearSchedule::new(&row))
}

/// Assemble a [`SearchBudget`] from `--max-candidates` / `--timeout-ms`.
fn get_budget(opts: &Opts) -> Result<SearchBudget, String> {
    let mut budget = SearchBudget::unlimited();
    if let Some(v) = opts.get("max-candidates") {
        let n: u64 = v.parse().map_err(|_| "bad --max-candidates")?;
        budget = budget.with_candidates(n);
    }
    if let Some(v) = opts.get("timeout-ms") {
        let ms: u64 = v.parse().map_err(|_| "bad --timeout-ms")?;
        budget = budget.with_wall_clock(Duration::from_millis(ms));
    }
    Ok(budget)
}

fn cmd_list() -> Result<(), CliError> {
    println!("available workloads (all sizes parameterized by --mu):");
    for alg in algorithms::all_small() {
        println!("  {}", alg.name);
    }
    Ok(())
}

fn cmd_map(opts: &Opts) -> Result<(), CliError> {
    let alg = get_alg(opts)?;
    let space = get_space(opts, alg.dim())?;
    let mut proc = Procedure51::new(&alg, &space).budget(get_budget(opts)?);
    if let Some(cap) = opts.get("cap") {
        proc = proc.max_objective(cap.parse().map_err(|_| "bad --cap")?);
    }
    let started = std::time::Instant::now();
    let outcome = proc.solve().map_err(CliError::Failed)?;
    let elapsed = started.elapsed();
    let certification = outcome.certification;
    let telemetry = outcome.telemetry.clone();
    let mapping = outcome.into_mapping();
    if opts.contains_key("trace") {
        print_trace(&telemetry, elapsed);
    }
    let opt = mapping
        .ok_or_else(|| CliError::Infeasible("no conflict-free schedule within the cap".into()))?;
    println!("algorithm : {}", alg.name);
    println!("space map :\n{space}");
    println!("schedule  : {}", opt.schedule);
    println!("mapping   :\n{}", opt.mapping);
    println!("time      : t = {} cycles (objective f = {})", opt.total_time, opt.objective);
    println!("examined  : {} candidates", opt.candidates_examined);
    println!("certified : {certification}");
    let array = SystolicArray::synthesize(&alg, &opt.mapping);
    println!("array     : {} PEs, {}-D, bounds {:?}", array.num_processors(), array.dims(), array.bounds());
    Ok(())
}

/// The `--trace` table: one row per screening gate of Definition 2.2,
/// then the conflict-rule breakdown and wall-clock time. The same
/// counters ride the daemon's `/metrics` endpoint and the bench JSON.
fn print_trace(tel: &cfmap::core::SearchTelemetry, elapsed: Duration) {
    println!("search trace:");
    for (label, v) in [
        ("candidates enumerated", tel.enumerated),
        ("rejected: schedule", tel.rejected_schedule),
        ("rejected: prefilter", tel.rejected_prefilter),
        ("rejected: rank", tel.rejected_rank),
        ("rejected: conflict", tel.rejected_conflict),
        ("rejected: unroutable", tel.rejected_unroutable),
        ("accepted", tel.accepted),
        ("hnf computations", tel.hnf_computations),
        ("fallback screened", tel.fallback_screened),
        ("orbits pruned", tel.orbits_pruned),
        ("memo hits", tel.memo_hits),
        ("memo misses", tel.memo_misses),
    ] {
        println!("  {label:<22} : {v}");
    }
    for (rule, n) in tel.condition_hits.entries() {
        if n > 0 {
            println!("  conflict rule {rule:<8} : {n}");
        }
    }
    if let Some(limit) = tel.budget_limit {
        let name = match limit {
            cfmap::core::BudgetLimit::Candidates => "candidates",
            cfmap::core::BudgetLimit::Nodes => "nodes",
            cfmap::core::BudgetLimit::WallClock => "wall_clock",
            cfmap::core::BudgetLimit::Deadline => "deadline",
            cfmap::core::BudgetLimit::Cancelled => "cancelled",
        };
        println!("  budget tripped         : {name}");
    }
    if !tel.levels.is_empty() {
        let per_level: Vec<String> = tel
            .levels
            .iter()
            .map(|l| format!("{}:{}", l.objective, l.enumerated))
            .collect();
        println!(
            "  per level (f:examined) : {}{}",
            per_level.join(" "),
            if tel.levels_truncated { " …" } else { "" }
        );
    }
    println!("  solve wall time        : {} µs", elapsed.as_micros());
    println!();
}

fn cmd_analyze(opts: &Opts) -> Result<(), CliError> {
    let alg = get_alg(opts)?;
    let space = get_space(opts, alg.dim())?;
    let pi = get_pi(opts, alg.dim())?;
    let mapping = MappingMatrix::new(space, pi);
    println!("{mapping}");
    let diagnosis = cfmap::core::diagnose(&alg, &mapping, None);
    println!("{diagnosis}");
    if diagnosis.is_valid() {
        println!("\nverdict: CONFLICT-FREE (exact lattice test)");
    } else {
        println!("\nverdict: CONFLICTS / INVALID (see failed conditions above)");
    }
    Ok(())
}

fn cmd_joint(opts: &Opts) -> Result<(), CliError> {
    let alg = get_alg(opts)?;
    let criterion = match opts.get("criterion").map(String::as_str) {
        None | Some("time") => JointCriterion::TimeThenSpace,
        Some("space") => JointCriterion::SpaceThenTime,
        Some(other) => {
            return Err(CliError::Usage(format!("unknown criterion {other:?} (time|space)")))
        }
    };
    let started = std::time::Instant::now();
    let outcome = JointSearch::new(&alg)
        .criterion(criterion)
        .budget(get_budget(opts)?)
        .solve()
        .map_err(CliError::Failed)?;
    let elapsed = started.elapsed();
    if opts.contains_key("trace") {
        print_trace(&outcome.telemetry, elapsed);
    }
    let certification = outcome.certification;
    let sol = outcome
        .into_mapping()
        .ok_or_else(|| CliError::Infeasible("no conflict-free joint design found".into()))?;
    println!("space map  : {}", sol.space);
    println!("schedule   : {}", sol.schedule);
    println!("total time : {} cycles", sol.total_time);
    println!("space cost : {} (sites + wires)", sol.space_cost);
    println!("certified  : {certification}");
    Ok(())
}

fn cmd_bounds(opts: &Opts) -> Result<(), CliError> {
    let alg = get_alg(opts)?;
    println!("algorithm             : {}", alg.name);
    println!("computations |J|      : {}", alg.num_computations());
    println!("critical path         : {} cycles", critical_path(&alg));
    match linear_schedule_bound(&alg, 200) {
        Some(t) => println!("best linear schedule  : {t} cycles (conflicts ignored)"),
        None => println!("best linear schedule  : none within cap"),
    }
    for pes in [1usize, 4, 16] {
        println!(
            "pigeonhole ({pes:>3} PEs)  : {} cycles",
            pigeonhole_bound(&alg, pes)
        );
    }
    Ok(())
}

fn cmd_simulate(opts: &Opts) -> Result<(), CliError> {
    let alg = get_alg(opts)?;
    let space = get_space(opts, alg.dim())?;
    let pi = get_pi(opts, alg.dim())?;
    let mapping = MappingMatrix::new(space, pi);
    let report = Simulator::new(&alg, &mapping).run().map_err(CliError::Failed)?;
    println!("computations : {}", report.computations);
    println!("makespan     : {} cycles", report.makespan());
    println!("conflicts    : {}", report.conflicts.len());
    println!("peak par.    : {}", report.peak_parallelism);
    let stats = UtilizationStats::from_report(&report);
    println!("utilization  : {:.1}% mean, imbalance {:.2}", stats.mean_utilization() * 100.0, stats.load_imbalance());
    if opts.contains_key("diagram") {
        if mapping.k() == 2 {
            println!("\n{}", cfmap::systolic::diagram::space_time_diagram(&report, &mapping));
        } else {
            eprintln!("(diagram only available for linear arrays)");
        }
    }
    Ok(())
}

/// `cfmap client` — submit one mapping request to a running `cfmapd`
/// and mirror the daemon's answer onto the CLI's exit-code taxonomy.
fn cmd_client(opts: &Opts) -> Result<(), CliError> {
    use cfmap::service::client::{Client, ClientConfig};
    use cfmap::service::wire::{MapRequest, MapResponse};
    use std::str::FromStr;

    let addr = opts.get("addr").ok_or("--addr required (host:port of a running cfmapd)")?;
    let mut config = ClientConfig::default();
    let timeout_ms = |key: &str| -> Result<Option<Duration>, CliError> {
        opts.get(key)
            .map(|v| {
                v.parse::<u64>()
                    .map(Duration::from_millis)
                    .map_err(|_| CliError::Usage(format!("bad --{key}")))
            })
            .transpose()
    };
    if let Some(d) = timeout_ms("connect-timeout-ms")? {
        config.connect_timeout = d;
    }
    if let Some(d) = timeout_ms("read-timeout-ms")? {
        config.read_timeout = d;
    }
    if let Some(d) = timeout_ms("write-timeout-ms")? {
        config.write_timeout = d;
    }
    if let Some(v) = opts.get("retries") {
        config.retries = v.parse().map_err(|_| "bad --retries")?;
    }
    let mut client = Client::new(addr, config);
    // `--get PATH` is the ops escape hatch: scrape any daemon route
    // (/metrics, /stats, /healthz) without needing curl on the box.
    if let Some(path) = opts.get("get") {
        let reply = client
            .get(path)
            .map_err(|e| CliError::Usage(format!("cfmapd at {addr}: {e}")))?;
        if reply.status != 200 {
            return Err(CliError::Usage(format!("GET {path}: HTTP {}", reply.status)));
        }
        print!("{}", reply.body);
        return Ok(());
    }
    // `--post PATH --body JSON` is the raw escape hatch for routes the
    // CLI has no dedicated verbs for (/pareto, /batch): the body is
    // forwarded verbatim and the daemon's answer printed as-is.
    if let Some(path) = opts.get("post") {
        let body = opts.get("body").ok_or("--post needs --body '<json>'")?;
        let reply = client
            .post(path, body)
            .map_err(|e| CliError::Usage(format!("cfmapd at {addr}: {e}")))?;
        println!("{}", reply.body);
        if reply.status >= 400 {
            return Err(CliError::Usage(format!("POST {path}: HTTP {}", reply.status)));
        }
        return Ok(());
    }
    let name = opts.get("alg").ok_or("--alg required")?.clone();
    let mu: i64 = opts.get("mu").ok_or("--mu required")?.parse().map_err(|_| "bad --mu")?;
    let spec = opts.get("space").ok_or("--space required")?;
    let space: Vec<Vec<i64>> =
        spec.split(';').map(parse_row).collect::<Result<_, String>>()?;
    let mut request = MapRequest::named(&name, mu, space);
    if let Some(cap) = opts.get("cap") {
        request.cap = Some(cap.parse().map_err(|_| "bad --cap")?);
    }
    if let Some(v) = opts.get("max-candidates") {
        request.max_candidates = Some(v.parse().map_err(|_| "bad --max-candidates")?);
    }
    if let Some(v) = opts.get("timeout-ms") {
        request.timeout_ms = Some(v.parse().map_err(|_| "bad --timeout-ms")?);
    }
    if let Some(v) = opts.get("deadline-ms") {
        request.deadline_ms = Some(v.parse().map_err(|_| "bad --deadline-ms")?);
    }
    let reply = client
        .post("/map", &request.to_json().serialize())
        .map_err(|e| CliError::Usage(format!("cfmapd at {addr}: {e}")))?;
    let response = MapResponse::from_str(&reply.body)
        .map_err(|e| CliError::Usage(format!("cfmapd at {addr}: {e}")))?;
    match response {
        MapResponse::Ok(o) => {
            let pi: Vec<String> = o.schedule.iter().map(i64::to_string).collect();
            println!("schedule  : [{}]", pi.join(", "));
            println!("time      : t = {} cycles (objective f = {})", o.total_time, o.objective);
            println!("array     : {} PEs, {}-D", o.processors, o.array_dims);
            println!("examined  : {} candidates", o.candidates_examined);
            println!(
                "served    : {} ({:?})",
                if o.cached { "design cache" } else { "fresh search" },
                o.certification
            );
            Ok(())
        }
        MapResponse::Infeasible { candidates_examined } => Err(CliError::Infeasible(format!(
            "cfmapd proved infeasibility after {candidates_examined} candidates"
        ))),
        MapResponse::BadRequest { msg } => Err(CliError::Usage(msg)),
        MapResponse::Error(e) => Err(CliError::Failed(e)),
    }
}

fn cmd_space_opt(opts: &Opts) -> Result<(), CliError> {
    let alg = get_alg(opts)?;
    let pi = get_pi(opts, alg.dim())?;
    let bound = opts
        .get("cap")
        .map(|c| c.parse().map_err(|_| "bad --cap"))
        .transpose()?
        .unwrap_or(2);
    let started = std::time::Instant::now();
    let outcome = SpaceSearch::new(&alg, &pi)
        .entry_bound(bound)
        .budget(get_budget(opts)?)
        .solve()
        .map_err(CliError::Failed)?;
    let elapsed = started.elapsed();
    if opts.contains_key("trace") {
        print_trace(&outcome.telemetry, elapsed);
    }
    let certification = outcome.certification;
    let sol = outcome
        .into_mapping()
        .ok_or_else(|| CliError::Infeasible("no conflict-free space map within the entry bound".into()))?;
    println!("schedule      : {pi}");
    println!("space map     : {}", sol.space);
    println!("processors    : {}", sol.processors);
    println!("wire length   : {}", sol.wire_length);
    println!("combined cost : {}", sol.cost);
    println!("certified     : {certification}");
    Ok(())
}

/// `cfmap pareto` — the exact non-dominated set over time × PEs × wires
/// (× peak link bandwidth with `--bandwidth`). Pin `--space` to sweep
/// schedules, `--pi` to sweep 1-row space maps, or neither for the
/// joint sweep. Exit 1 when the budgets admit no design at all.
fn cmd_pareto(opts: &Opts) -> Result<(), CliError> {
    let alg = get_alg(opts)?;
    if opts.contains_key("space") && opts.contains_key("pi") {
        return Err("pin at most one of --space and --pi".into());
    }
    let space = opts.contains_key("space").then(|| get_space(opts, alg.dim())).transpose()?;
    let pi = opts.contains_key("pi").then(|| get_pi(opts, alg.dim())).transpose()?;
    let parse_u64 = |key: &str| -> Result<Option<u64>, CliError> {
        opts.get(key)
            .map(|v| v.parse::<u64>().map_err(|_| CliError::Usage(format!("bad --{key}"))))
            .transpose()
    };
    let model = ResourceModel {
        max_processors: parse_u64("max-pes")?.map(|p| usize::try_from(p).unwrap_or(usize::MAX)),
        max_wires: opts
            .get("max-wires")
            .map(|v| v.parse::<i64>().map_err(|_| CliError::Usage("bad --max-wires".into())))
            .transpose()?,
        max_bandwidth: parse_u64("max-bandwidth")?,
        include_bandwidth: opts.contains_key("bandwidth"),
    };
    let tracks_bandwidth = model.tracks_bandwidth();
    let probe = |m: &MappingMatrix| cfmap::systolic::peak_link_load(&alg, m);
    let mut search = ParetoSearch::new(&alg).resources(model);
    if let Some(s) = &space {
        search = search.fixed_space(s);
    }
    if let Some(p) = &pi {
        search = search.fixed_schedule(p);
    }
    if let Some(cap) = opts.get("cap") {
        search = search.max_objective(cap.parse().map_err(|_| "bad --cap")?);
    }
    if let Some(b) = opts.get("entry-bound") {
        search = search.entry_bound(b.parse().map_err(|_| "bad --entry-bound")?);
    }
    if tracks_bandwidth {
        search = search.bandwidth_probe(&probe);
    }
    let started = std::time::Instant::now();
    let frontier = search.solve().map_err(CliError::Failed)?;
    let elapsed = started.elapsed();
    println!("algorithm : {}", alg.name);
    println!(
        "frontier  : {} points ({} dominated/duplicate pruned, {} candidates, {} µs)",
        frontier.len(),
        frontier.dominated_pruned,
        frontier.candidates_examined,
        elapsed.as_micros()
    );
    if frontier.is_empty() {
        return Err(CliError::Infeasible(
            "the resource budgets admit no conflict-free design".into(),
        ));
    }
    let bw_header = if tracks_bandwidth { "  bandwidth" } else { "" };
    println!("{:>6}  {:>5}  {:>5}{}  schedule / space rows", "time", "PEs", "wires", bw_header);
    for p in &frontier.points {
        let bw = match p.bandwidth {
            Some(b) if tracks_bandwidth => format!("  {b:>9}"),
            _ => String::new(),
        };
        let rows: Vec<String> = p
            .space_rows()
            .iter()
            .map(|r| {
                let cells: Vec<String> = r.iter().map(i64::to_string).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        let sched: Vec<String> = p.schedule.as_slice().iter().map(i64::to_string).collect();
        println!(
            "{:>6}  {:>5}  {:>5}{}  Π=[{}] S={}",
            p.total_time,
            p.processors,
            p.wires,
            bw,
            sched.join(","),
            rows.join(";")
        );
    }
    Ok(())
}
