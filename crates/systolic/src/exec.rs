//! Semantic execution: the array really computes things.
//!
//! Definition 2.1's `v(j̄) = g_j̄(v(j̄−d̄₁), …, v(j̄−d̄_m))` is executed in
//! schedule order, giving end-to-end evidence that a mapped design
//! computes what the original nested loop computed (Figure 3's
//! `c_{j₁j₂} += a_{j₁j₃}·b_{j₃j₂}` cells). Execution also *checks* the
//! schedule: every operand must have been produced at a strictly earlier
//! cycle (`ΠD > 0` made observable).
//!
//! A [`Kernel`] supplies the computation and boundary inputs. Provided
//! kernels:
//!
//! * [`MatmulKernel`] — word-level matrix product (Example 3.1 semantics);
//! * [`ConvolutionKernel`] — 1-D convolution;
//! * [`DepthKernel`] — the generic "longest dependence chain" kernel,
//!   usable with *any* algorithm to validate scheduling structurally.
//!
//! [`execute`] runs sequentially; [`execute_parallel`] runs each cycle's
//! computations on worker threads (`std::thread` scoped threads — cycles are
//! synchronization barriers, exactly like the hardware), which doubles as
//! a determinism check: both must produce identical results.

use cfmap_core::MappingMatrix;
use cfmap_model::{Point, Uda};
use std::collections::HashMap;
use std::fmt::Debug;

/// A computation semantics for a uniform dependence algorithm.
pub trait Kernel: Sync {
    /// The value type flowing through the array.
    type Value: Clone + Debug + PartialEq + Send + Sync;

    /// Compute `v(j̄)`. `inputs[i]` is `Some(v(j̄ − d̄ᵢ))` when the
    /// predecessor is inside the index set, `None` when `j̄ − d̄ᵢ` falls
    /// outside (the kernel supplies the boundary datum itself).
    fn compute(&self, j: &[i64], inputs: &[Option<Self::Value>]) -> Self::Value;
}

/// The result of a semantic execution.
#[derive(Clone, Debug)]
pub struct ExecutionResult<V> {
    /// `v(j̄)` for every index point.
    pub values: HashMap<Point, V>,
    /// Cycles simulated.
    pub cycles: i64,
    /// Causality violations: operands read in the same-or-later cycle
    /// than production (empty for valid schedules).
    pub causality_violations: Vec<(Point, usize)>,
}

/// Execute `alg` under `mapping` with `kernel`, sequentially, in schedule
/// order.
pub fn execute<K: Kernel>(alg: &Uda, mapping: &MappingMatrix, kernel: &K) -> ExecutionResult<K::Value> {
    let mut by_time: HashMap<i64, Vec<Point>> = HashMap::new();
    for j in alg.index_set.iter() {
        by_time.entry(mapping.schedule().time_of(&j)).or_default().push(j);
    }
    let mut times: Vec<i64> = by_time.keys().copied().collect();
    times.sort_unstable();

    let mut values: HashMap<Point, K::Value> = HashMap::with_capacity(alg.num_computations().min(1 << 24) as usize);
    let mut violations = Vec::new();
    for &t in &times {
        // Values computed *this* cycle are not visible to this cycle —
        // use a staging buffer, like hardware registers.
        let mut staged: Vec<(Point, K::Value)> = Vec::new();
        for j in &by_time[&t] {
            let (inputs, viols) = gather_inputs(alg, mapping, &values, j, t);
            violations.extend(viols);
            staged.push((j.clone(), kernel.compute(j, &inputs)));
        }
        values.extend(staged);
    }
    let cycles = times.last().map_or(0, |last| last - times[0] + 1);
    ExecutionResult { values, cycles, causality_violations: violations }
}

/// One worker's output for a cycle: the `(point, value)` writes it
/// staged plus any causality violations it observed.
type StagedWrites<V> = Vec<((Point, V), Vec<(Point, usize)>)>;

/// Execute with each cycle's computations spread across `threads` workers
/// (`std::thread` scoped threads, barrier per cycle — the synchronous
/// hardware model). Produces bit-identical results to [`execute`].
pub fn execute_parallel<K: Kernel>(
    alg: &Uda,
    mapping: &MappingMatrix,
    kernel: &K,
    threads: usize,
) -> ExecutionResult<K::Value> {
    assert!(threads >= 1, "need at least one worker");
    let mut by_time: HashMap<i64, Vec<Point>> = HashMap::new();
    for j in alg.index_set.iter() {
        by_time.entry(mapping.schedule().time_of(&j)).or_default().push(j);
    }
    let mut times: Vec<i64> = by_time.keys().copied().collect();
    times.sort_unstable();

    let mut values: HashMap<Point, K::Value> = HashMap::new();
    let mut violations: Vec<(Point, usize)> = Vec::new();
    for &t in &times {
        let points = &by_time[&t];
        let chunk = points.len().div_ceil(threads);
        // Immutable view of past cycles shared across workers; each worker
        // returns its staged writes (cycle barrier = scope join).
        let staged: Vec<StagedWrites<K::Value>> =
            std::thread::scope(|scope| {
                let values_ref = &values;
                let handles: Vec<_> = points
                    .chunks(chunk.max(1))
                    .map(|slice| {
                        scope.spawn(move || {
                            slice
                                .iter()
                                .map(|j| {
                                    let (inputs, viols) =
                                        gather_inputs(alg, mapping, values_ref, j, t);
                                    ((j.clone(), kernel.compute(j, &inputs)), viols)
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
            });
        for worker in staged {
            for ((j, v), viols) in worker {
                violations.extend(viols);
                values.insert(j, v);
            }
        }
    }
    let cycles = times.last().map_or(0, |last| last - times[0] + 1);
    ExecutionResult { values, cycles, causality_violations: violations }
}

fn gather_inputs<V: Clone>(
    alg: &Uda,
    mapping: &MappingMatrix,
    values: &HashMap<Point, V>,
    j: &[i64],
    t: i64,
) -> (Vec<Option<V>>, Vec<(Point, usize)>) {
    let m = alg.num_deps();
    let mut inputs = Vec::with_capacity(m);
    let mut violations = Vec::new();
    for i in 0..m {
        let d = alg.deps.dep_i64(i);
        let pred: Point = j.iter().zip(&d).map(|(&ji, &di)| ji - di).collect();
        if alg.index_set.contains(&pred) {
            let t_pred = mapping.schedule().time_of(&pred);
            if t_pred >= t {
                violations.push((j.to_vec(), i));
                inputs.push(None);
            } else {
                inputs.push(values.get(&pred).cloned());
            }
        } else {
            inputs.push(None);
        }
    }
    (inputs, violations)
}

/// Matrix-multiplication semantics (Example 3.1 / Figure 3).
///
/// At `j̄ = [j₁, j₂, j₃]ᵀ` the cell computes
/// `c_{j₁j₂} += a_{j₁j₃}·b_{j₃j₂}`; `b` rides `d̄₁ = e₁`, `a` rides
/// `d̄₂ = e₂`, the `c` partial sum rides `d̄₃ = e₃`. Boundary cells load
/// `a`/`b` from the input matrices and start `c` at zero.
pub struct MatmulKernel {
    /// Left operand, `(μ+1)×(μ+1)`.
    pub a: Vec<Vec<i64>>,
    /// Right operand, `(μ+1)×(μ+1)`.
    pub b: Vec<Vec<i64>>,
}

/// The value tuple flowing through a matmul cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatmulValue {
    /// `a_{j₁j₃}` passing through.
    pub a: i64,
    /// `b_{j₃j₂}` passing through.
    pub b: i64,
    /// Partial sum `Σ_{j₃' ≤ j₃} a_{j₁j₃'}·b_{j₃'j₂}`.
    pub c: i64,
}

impl MatmulKernel {
    /// Random matrices of the given size (deterministic from `seed`).
    pub fn random(n: usize, seed: u64) -> MatmulKernel {
        // Tiny LCG: reproducible without external dependencies.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 19) as i64 - 9
        };
        let a = (0..n).map(|_| (0..n).map(|_| next()).collect()).collect();
        let b = (0..n).map(|_| (0..n).map(|_| next()).collect()).collect();
        MatmulKernel { a, b }
    }

    /// Reference product computed directly.
    pub fn reference_product(&self) -> Vec<Vec<i64>> {
        let n = self.a.len();
        let mut c = vec![vec![0i64; n]; n];
        for (i, row) in c.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (0..n).map(|k| self.a[i][k] * self.b[k][j]).sum();
            }
        }
        c
    }

    /// Extract `C` from an execution result (values at `j₃ = μ`).
    pub fn extract_product(&self, result: &ExecutionResult<MatmulValue>, mu: i64) -> Vec<Vec<i64>> {
        Self::extract_from_values(&result.values, mu)
    }

    /// Extract `C` from an RTL execution result.
    pub fn extract_product_rtl(
        &self,
        result: &crate::rtl::RtlResult<MatmulValue>,
        mu: i64,
    ) -> Vec<Vec<i64>> {
        Self::extract_from_values(&result.values, mu)
    }

    fn extract_from_values(values: &HashMap<Point, MatmulValue>, mu: i64) -> Vec<Vec<i64>> {
        let n = (mu + 1) as usize;
        let mut c = vec![vec![0i64; n]; n];
        for (i, row) in c.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = values[&vec![i as i64, j as i64, mu]].c;
            }
        }
        c
    }
}

impl Kernel for MatmulKernel {
    type Value = MatmulValue;

    fn compute(&self, j: &[i64], inputs: &[Option<MatmulValue>]) -> MatmulValue {
        let (j1, j2, j3) = (j[0] as usize, j[1] as usize, j[2] as usize);
        // b rides d̄₁ (along j₁), a rides d̄₂ (along j₂), c rides d̄₃.
        let b = match &inputs[0] {
            Some(v) => v.b,
            None => self.b[j3][j2],
        };
        let a = match &inputs[1] {
            Some(v) => v.a,
            None => self.a[j1][j3],
        };
        let c_in = match &inputs[2] {
            Some(v) => v.c,
            None => 0,
        };
        MatmulValue { a, b, c: c_in + a * b }
    }
}

/// 1-D convolution semantics for [`cfmap_model::algorithms::convolution`]:
/// at `j̄ = [i, j]ᵀ` the cell computes `y_i += w_j·x_{i−j}`.
pub struct ConvolutionKernel {
    /// Input samples `x` (indexed by `i − j`; negative indices read 0).
    pub x: Vec<i64>,
    /// Filter taps `w`.
    pub w: Vec<i64>,
}

/// Value tuple of a convolution cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConvValue {
    /// Running sum of `y_i`.
    pub y: i64,
    /// The tap `w_j` passing through.
    pub w: i64,
    /// The sample `x_{i−j}` passing through.
    pub x: i64,
}

impl ConvolutionKernel {
    /// Direct reference convolution `y_i = Σ_j w_j·x_{i−j}`.
    pub fn reference(&self, mu_out: i64) -> Vec<i64> {
        (0..=mu_out)
            .map(|i| {
                self.w
                    .iter()
                    .enumerate()
                    .map(|(j, &wj)| wj * self.sample(i - j as i64))
                    .sum()
            })
            .collect()
    }

    fn sample(&self, idx: i64) -> i64 {
        if idx < 0 {
            0
        } else {
            self.x.get(idx as usize).copied().unwrap_or(0)
        }
    }
}

impl Kernel for ConvolutionKernel {
    type Value = ConvValue;

    fn compute(&self, j: &[i64], inputs: &[Option<ConvValue>]) -> ConvValue {
        let (i, tap) = (j[0], j[1] as usize);
        // D columns: y along [0,1], w along [1,0], x along [1,1].
        let y_in = inputs[0].as_ref().map_or(0, |v| v.y);
        let w = inputs[1].as_ref().map_or(self.w[tap], |v| v.w);
        let x = inputs[2].as_ref().map_or_else(|| self.sample(i - tap as i64), |v| v.x);
        ConvValue { y: y_in + w * x, w, x }
    }
}

/// LU-decomposition semantics for
/// [`cfmap_model::algorithms::lu_decomposition`] (axes `[k, i, j]ᵀ`):
/// Gaussian elimination without pivoting, in the Kung–Leiserson systolic
/// formulation. At step `k`, cell `(k, i, j)` updates
/// `a_{ij} ← a_{ij} − l_{ik}·u_{kj}`; the pivot row propagates down `i`
/// (`d̄₂`), the multiplier column across `j` (`d̄₃`), the updated matrix
/// value feeds step `k+1` (`d̄₁`).
///
/// To keep the arithmetic exact (no floats anywhere in this workspace)
/// the input is constructed as `A = L·U` with *unit* lower-triangular
/// integer `L` — then every division the elimination performs is exact in
/// the integers, and the array must recover `L` and `U` bit for bit.
pub struct LuKernel {
    /// The input matrix `A = L·U`.
    pub a: Vec<Vec<i64>>,
}

/// The value tuple flowing through an LU cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LuValue {
    /// Current matrix entry `a_{ij}` after the first `k+1` steps.
    pub a: i64,
    /// Multiplier `l_{ik}` travelling along `j`.
    pub l: i64,
    /// Pivot-row entry `u_{kj}` travelling along `i`.
    pub u: i64,
}

impl LuKernel {
    /// Build `A = L·U` from a seed: `L` unit lower triangular, `U` upper
    /// triangular with unit diagonal-divisibility (here simply ±1, 2 on
    /// the diagonal is avoided to keep quotients exact — we use 1).
    pub fn random(n: usize, seed: u64) -> LuKernel {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 9) as i64 - 4
        };
        let mut l = vec![vec![0i64; n]; n];
        let mut u = vec![vec![0i64; n]; n];
        for i in 0..n {
            l[i][i] = 1;
            u[i][i] = 1; // unit diagonal ⇒ all elimination divisions exact
            for cell in l[i][..i].iter_mut() {
                *cell = next();
            }
            for cell in u[i][i + 1..].iter_mut() {
                *cell = next();
            }
        }
        let mut a = vec![vec![0i64; n]; n];
        for (i, row) in a.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (0..n).map(|k| l[i][k] * u[k][j]).sum();
            }
        }
        LuKernel { a }
    }

    /// Reference factorization by direct Doolittle elimination.
    pub fn reference_factors(&self) -> (Vec<Vec<i64>>, Vec<Vec<i64>>) {
        let n = self.a.len();
        let mut work = self.a.clone();
        let mut l = vec![vec![0i64; n]; n];
        for (i, row) in l.iter_mut().enumerate() {
            row[i] = 1;
        }
        for k in 0..n {
            // Row k is frozen during this elimination step.
            let pivot_row = work[k].clone();
            let pivot = pivot_row[k];
            for i in k + 1..n {
                assert_eq!(work[i][k] % pivot, 0, "non-exact elimination");
                let m = work[i][k] / pivot;
                l[i][k] = m;
                for (cell, p) in work[i][k..].iter_mut().zip(&pivot_row[k..]) {
                    *cell -= m * p;
                }
            }
        }
        (l, work) // work is now U
    }

    /// Extract `(L, U)` from an execution result.
    ///
    /// `u_{kj}` is the pivot-row value at cell `(k, k, j)`; `l_{ik}` is
    /// the multiplier computed at cell `(k, i, k)`.
    pub fn extract_factors(
        &self,
        result: &ExecutionResult<LuValue>,
        mu: i64,
    ) -> (Vec<Vec<i64>>, Vec<Vec<i64>>) {
        let n = (mu + 1) as usize;
        let mut l = vec![vec![0i64; n]; n];
        let mut u = vec![vec![0i64; n]; n];
        for k in 0..n {
            for (j, cell) in u[k].iter_mut().enumerate().skip(k) {
                *cell = result.values[&vec![k as i64, k as i64, j as i64]].u;
            }
            for (i, row) in l.iter_mut().enumerate().skip(k + 1) {
                row[k] = result.values[&vec![k as i64, i as i64, k as i64]].l;
            }
            l[k][k] = 1; // unit diagonal by construction
        }
        (l, u)
    }
}

impl Kernel for LuKernel {
    type Value = LuValue;

    fn compute(&self, j: &[i64], inputs: &[Option<LuValue>]) -> LuValue {
        let (k, i, jj) = (j[0] as usize, j[1] as usize, j[2] as usize);
        // d̄₁ = e₁: previous step's matrix value; step 0 loads A.
        let a_prev = inputs[0].as_ref().map_or(self.a[i][jj], |v| v.a);
        // d̄₂ = e₂: pivot-row value travelling down i.
        // d̄₃ = e₃: multiplier travelling across j.
        // Cells above/left of the active region pass values through.
        if i < k || jj < k {
            // Inactive cell at this step: hold the value.
            return LuValue { a: a_prev, l: 0, u: 0 };
        }
        let u = if i == k {
            a_prev // pivot row defines u_{kj}
        } else {
            inputs[1].as_ref().map(|v| v.u).unwrap_or(0)
        };
        let l = if i == k {
            0
        } else if jj == k {
            // Multiplier: a_{ik} / u_{kk}; exact by construction.
            let pivot = inputs[1].as_ref().map(|v| v.u).unwrap_or(1);
            debug_assert_ne!(pivot, 0, "zero pivot");
            debug_assert_eq!(a_prev % pivot, 0, "non-exact division");
            a_prev / pivot
        } else {
            inputs[2].as_ref().map(|v| v.l).unwrap_or(0)
        };
        let a = if i == k { a_prev } else { a_prev - l * u };
        LuValue { a, l, u }
    }
}

/// The generic structural kernel: `v(j̄) = 1 + max` over present inputs
/// (longest dependence chain ending at `j̄`). Works with *any* algorithm
/// and doubles as a schedule lower-bound probe: `Π·j̄ − Π·j̄₀ ≥ depth`.
pub struct DepthKernel;

impl Kernel for DepthKernel {
    type Value = i64;

    fn compute(&self, _j: &[i64], inputs: &[Option<i64>]) -> i64 {
        1 + inputs.iter().flatten().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfmap_core::{MappingMatrix, SpaceMap};
    use cfmap_model::{algorithms, LinearSchedule};

    #[test]
    fn matmul_array_computes_correct_product() {
        // Figure 3's computation, end-to-end: C = A·B on the linear array.
        let mu = 4;
        let alg = algorithms::matmul(mu);
        let m =
            MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[1, 4, 1]));
        let kernel = MatmulKernel::random((mu + 1) as usize, 42);
        let result = execute(&alg, &m, &kernel);
        assert!(result.causality_violations.is_empty());
        assert_eq!(result.cycles, 25);
        assert_eq!(kernel.extract_product(&result, mu), kernel.reference_product());
    }

    #[test]
    fn matmul_baseline_also_correct_but_slower() {
        let mu = 4;
        let alg = algorithms::matmul(mu);
        let m =
            MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[2, 1, 4]));
        let kernel = MatmulKernel::random((mu + 1) as usize, 7);
        let result = execute(&alg, &m, &kernel);
        assert!(result.causality_violations.is_empty());
        assert_eq!(result.cycles, 29); // μ(μ+3)+1
        assert_eq!(kernel.extract_product(&result, mu), kernel.reference_product());
    }

    #[test]
    fn parallel_execution_is_deterministic() {
        let mu = 3;
        let alg = algorithms::matmul(mu);
        let m =
            MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[1, 3, 1]));
        let kernel = MatmulKernel::random((mu + 1) as usize, 99);
        let seq = execute(&alg, &m, &kernel);
        for threads in [1, 2, 4] {
            let par = execute_parallel(&alg, &m, &kernel, threads);
            assert_eq!(par.values, seq.values, "threads = {threads}");
            assert!(par.causality_violations.is_empty());
        }
    }

    #[test]
    fn convolution_array_computes_reference() {
        let (mu_out, mu_w) = (6, 3);
        let alg = algorithms::convolution(mu_out, mu_w);
        // Simple valid mapping: S = [1, 0] (PE per output... actually per
        // i), Π = [1, μ_out+1]? ΠD > 0 needs π2 > 0, π1 > 0, π1+π2 > 0.
        let m = MappingMatrix::new(SpaceMap::row(&[1, -1]), LinearSchedule::new(&[1, 7]));
        let kernel = ConvolutionKernel { x: vec![3, -1, 4, 1, 5, -9, 2], w: vec![2, 0, -1, 5] };
        let result = execute(&alg, &m, &kernel);
        assert!(result.causality_violations.is_empty());
        // y_i is the value at (i, μ_w).
        let y: Vec<i64> = (0..=mu_out).map(|i| result.values[&vec![i, mu_w]].y).collect();
        assert_eq!(y, kernel.reference(mu_out));
    }

    #[test]
    fn lu_array_recovers_exact_factors() {
        let mu = 4;
        let alg = algorithms::lu_decomposition(mu);
        // Any valid schedule works; use the plain wavefront with a
        // row-projection space map.
        let m = MappingMatrix::new(SpaceMap::row(&[0, 1, 0]), LinearSchedule::new(&[1, 1, 1]));
        assert!(m.schedule().is_valid_for(&alg.deps));
        let kernel = LuKernel::random((mu + 1) as usize, 17);
        let result = execute(&alg, &m, &kernel);
        assert!(result.causality_violations.is_empty());
        let (l, u) = kernel.extract_factors(&result, mu);
        let (l_ref, u_ref) = kernel.reference_factors();
        assert_eq!(l, l_ref, "L factor mismatch");
        assert_eq!(u, u_ref, "U factor mismatch");
        // And L·U really reconstructs A.
        for (i, l_row) in l.iter().enumerate() {
            for (j, &a_ij) in kernel.a[i].iter().enumerate() {
                let prod: i64 = l_row.iter().zip(&u).map(|(&lv, u_row)| lv * u_row[j]).sum();
                assert_eq!(prod, a_ij, "A reconstruction at ({i},{j})");
            }
        }
    }

    #[test]
    fn lu_parallel_matches_sequential() {
        let mu = 3;
        let alg = algorithms::lu_decomposition(mu);
        let m = MappingMatrix::new(SpaceMap::row(&[0, 1, 0]), LinearSchedule::new(&[2, 1, 1]));
        let kernel = LuKernel::random((mu + 1) as usize, 5);
        let seq = execute(&alg, &m, &kernel);
        let par = execute_parallel(&alg, &m, &kernel, 3);
        assert_eq!(seq.values, par.values);
    }

    #[test]
    fn depth_kernel_bounds_schedule() {
        // Longest chain depth ≤ makespan for any valid schedule.
        for alg in [algorithms::matmul(3), algorithms::transitive_closure(3)] {
            let pi: Vec<i64> = match alg.dim() {
                3 if alg.num_deps() == 3 => vec![1, 1, 1],
                _ => vec![4, 1, 1],
            };
            let s_row: Vec<i64> = vec![0, 0, 1];
            let m = MappingMatrix::new(SpaceMap::row(&s_row), LinearSchedule::new(&pi));
            assert!(m.schedule().is_valid_for(&alg.deps), "{}", alg.name);
            let result = execute(&alg, &m, &DepthKernel);
            assert!(result.causality_violations.is_empty());
            let max_depth = result.values.values().copied().max().unwrap();
            assert!(max_depth <= result.cycles, "{}", alg.name);
        }
    }

    #[test]
    fn causality_violation_detected_for_invalid_schedule() {
        // Π = [0, 1, 1] violates ΠD > 0 for matmul (π1 = 0): predecessors
        // along d̄₁ execute in the same cycle.
        let alg = algorithms::matmul(2);
        let m = MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[0, 1, 1]));
        let result = execute(&alg, &m, &DepthKernel);
        assert!(!result.causality_violations.is_empty());
    }
}
