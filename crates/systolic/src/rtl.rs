//! Register-transfer-level execution: values physically travel.
//!
//! [`crate::exec`] validates *what* the array computes by reading produced
//! values from a global map. This module validates *how* they get there:
//! every dependence channel is a clocked delay line of
//! `Π·d̄ᵢ = bufferᵢ + hopᵢ` register stages between producer and consumer
//! (Definition 2.2 condition 2 with source-side buffers). A PE may only
//! read a value that is **sitting in its input register this cycle** — if
//! the inequality of Equation 2.3 were violated, or buffers mis-sized, the
//! value would not be there and the run reports a delivery failure instead
//! of silently computing the right answer.
//!
//! The paper's claim being tested end to end: with `K` from the routing
//! and `Π·d̄ᵢ − Σ_j k_{ji}` buffers, every operand arrives exactly on
//! time, so the RTL run must produce bit-identical results to the
//! idealized executor.

use crate::exec::Kernel;
use cfmap_core::mapping::Routing;
use cfmap_core::MappingMatrix;
use cfmap_model::{Point, Uda};
use std::collections::HashMap;

/// A delivery failure: a consumer's input register did not hold the
/// expected operand at execution time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeliveryFailure {
    /// The consuming index point.
    pub consumer: Point,
    /// Which dependence channel.
    pub dep: usize,
    /// Cycle at which the read failed.
    pub time: i64,
}

/// Result of an RTL execution.
#[derive(Clone, Debug)]
pub struct RtlResult<V> {
    /// `v(j̄)` for every index point (as computed from delivered operands).
    pub values: HashMap<Point, V>,
    /// Cycles simulated.
    pub cycles: i64,
    /// Delivery failures (empty iff the routing certificate is honest).
    pub failures: Vec<DeliveryFailure>,
    /// Total register-stage occupancy summed over cycles (pipeline work).
    pub register_occupancy: u64,
}

/// Execute `alg` with values clocked through per-dependence delay lines.
///
/// `routing` supplies the per-dependence latency split
/// (`buffers + hops = Π·d̄ᵢ`); correctness only depends on the total,
/// which the delay-line model uses directly — the structural hop/collision
/// story is covered by [`crate::links`].
pub fn execute_rtl<K: Kernel>(
    alg: &Uda,
    mapping: &MappingMatrix,
    routing: &Routing,
    kernel: &K,
) -> RtlResult<K::Value> {
    let m = alg.num_deps();
    // Latency per channel: Π·d̄ᵢ (buffers + hops).
    let latency: Vec<i64> = routing
        .dep_times
        .iter()
        .map(|t| t.to_i64().expect("latency fits i64"))
        .collect();

    // Group computations by cycle.
    let mut by_time: HashMap<i64, Vec<Point>> = HashMap::new();
    for j in alg.index_set.iter() {
        by_time.entry(mapping.schedule().time_of(&j)).or_default().push(j);
    }
    let mut times: Vec<i64> = by_time.keys().copied().collect();
    times.sort_unstable();

    // In-flight registers: (channel, consumer point) → (arrival time, value).
    // A datum produced at `p = j − d̄ᵢ` at time t_p is addressed to its
    // unique consumer `j` and becomes readable exactly at t_p + latency_i.
    let mut in_flight: HashMap<(usize, Point), (i64, K::Value)> = HashMap::new();
    let mut values: HashMap<Point, K::Value> = HashMap::new();
    let mut failures: Vec<DeliveryFailure> = Vec::new();
    let mut occupancy = 0u64;

    let deps_i64: Vec<Vec<i64>> = (0..m).map(|i| alg.deps.dep_i64(i)).collect();

    for &t in &times {
        occupancy += in_flight.len() as u64;
        let mut staged: Vec<(Point, K::Value)> = Vec::new();
        for j in &by_time[&t] {
            let mut inputs: Vec<Option<K::Value>> = Vec::with_capacity(m);
            for (i, d) in deps_i64.iter().enumerate() {
                let pred: Point = j.iter().zip(d).map(|(&ji, &di)| ji - di).collect();
                if !alg.index_set.contains(&pred) {
                    inputs.push(None); // boundary operand: kernel supplies it
                    continue;
                }
                // Read the input register: the datum addressed to `j` on
                // channel `i` must have arrived at exactly this cycle (it
                // was latched on arrival and holds until consumed).
                match in_flight.remove(&(i, j.clone())) {
                    Some((arrival, v)) if arrival <= t => inputs.push(Some(v)),
                    Some((arrival, _)) => {
                        failures.push(DeliveryFailure { consumer: j.clone(), dep: i, time: t });
                        let _ = arrival;
                        inputs.push(None);
                    }
                    None => {
                        failures.push(DeliveryFailure { consumer: j.clone(), dep: i, time: t });
                        inputs.push(None);
                    }
                }
            }
            staged.push((j.clone(), kernel.compute(j, &inputs)));
        }
        // Launch the produced values into their channels (visible to
        // consumers only after the channel latency).
        for (j, v) in staged {
            for (i, d) in deps_i64.iter().enumerate() {
                let consumer: Point = j.iter().zip(d).map(|(&ji, &di)| ji + di).collect();
                if alg.index_set.contains(&consumer) {
                    in_flight.insert((i, consumer), (t + latency[i], v.clone()));
                }
            }
            values.insert(j, v);
        }
    }

    let cycles = times.last().map_or(0, |last| last - times[0] + 1);
    RtlResult { values, cycles, failures, register_occupancy: occupancy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, MatmulKernel};
    use cfmap_core::mapping::{route, InterconnectionPrimitives, Routing};
    use cfmap_core::{MappingMatrix, SpaceMap};
    use cfmap_intlin::Int;
    use cfmap_model::{algorithms, LinearSchedule};

    fn matmul_routed(mu: i64, pi: &[i64]) -> (cfmap_model::Uda, MappingMatrix, Routing) {
        let alg = algorithms::matmul(mu);
        let m = MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(pi));
        let p = InterconnectionPrimitives::from_columns(&[&[1], &[1], &[-1]]);
        let routing = route(&m, &alg.deps, &p).unwrap();
        (alg, m, routing)
    }

    #[test]
    fn rtl_matches_idealized_execution() {
        let mu = 4;
        let (alg, m, routing) = matmul_routed(mu, &[1, 4, 1]);
        let kernel = MatmulKernel::random((mu + 1) as usize, 11);
        let ideal = execute(&alg, &m, &kernel);
        let rtl = execute_rtl(&alg, &m, &routing, &kernel);
        assert!(rtl.failures.is_empty(), "failures: {:?}", &rtl.failures[..rtl.failures.len().min(3)]);
        assert_eq!(rtl.values, ideal.values, "RTL delivery must be transparent");
        assert_eq!(rtl.cycles, 25);
        assert!(rtl.register_occupancy > 0);
        // And the product is right.
        assert_eq!(kernel.extract_product_rtl(&rtl, mu), kernel.reference_product());
    }

    #[test]
    fn rtl_works_for_baseline_design_too() {
        let mu = 4;
        let (alg, m, routing) = matmul_routed(mu, &[2, 1, 4]);
        let kernel = MatmulKernel::random((mu + 1) as usize, 23);
        let rtl = execute_rtl(&alg, &m, &routing, &kernel);
        assert!(rtl.failures.is_empty());
        assert_eq!(rtl.cycles, 29);
        assert_eq!(kernel.extract_product_rtl(&rtl, mu), kernel.reference_product());
    }

    #[test]
    fn undersized_latency_is_caught() {
        // Failure injection: corrupt the routing certificate so channel 1
        // claims a longer latency than the schedule provides — data then
        // arrive *late* and the RTL run must report delivery failures.
        let mu = 3;
        let (alg, m, mut routing) = matmul_routed(mu, &[1, 3, 1]);
        routing.dep_times[1] = Int::from(10); // real Πd̄₂ is 3
        let kernel = MatmulKernel::random((mu + 1) as usize, 9);
        let rtl = execute_rtl(&alg, &m, &routing, &kernel);
        assert!(!rtl.failures.is_empty(), "late delivery must be observed");
        assert!(rtl.failures.iter().all(|f| f.dep == 1));
    }

    #[test]
    fn occupancy_reflects_buffer_depth() {
        // More buffers (slower channel) ⇒ more register-cycles of
        // occupancy for the same data volume.
        let mu = 4;
        let (alg, m_fast, r_fast) = matmul_routed(mu, &[1, 1, 2]); // conflicts, but RTL runs anyway
        let (_, m_slow, r_slow) = matmul_routed(mu, &[2, 4, 3]);
        let kernel = MatmulKernel::random((mu + 1) as usize, 5);
        let fast = execute_rtl(&alg, &m_fast, &r_fast, &kernel);
        let slow = execute_rtl(&alg, &m_slow, &r_slow, &kernel);
        assert!(slow.register_occupancy > fast.register_occupancy);
    }
}
