//! Array utilization statistics.
//!
//! The paper's Problem 6.1 trades execution time against VLSI resources;
//! this module measures what a given design actually spends: per-PE busy
//! cycles, utilization ratios, load imbalance, and activity-over-time
//! profiles. The experiment harness uses these to compare the optimal and
//! baseline designs beyond raw makespan.

use crate::sim::SimReport;
use std::collections::HashMap;

/// Per-processor and whole-array utilization derived from a [`SimReport`].
#[derive(Clone, Debug)]
pub struct UtilizationStats {
    /// Busy cycles per processor.
    pub busy_cycles: HashMap<Vec<i64>, u64>,
    /// Computations per cycle (index 0 = first busy cycle).
    pub activity_profile: Vec<u64>,
    /// Makespan in cycles.
    pub makespan: i64,
    /// Number of processors that executed at least one computation.
    pub active_processors: usize,
}

impl UtilizationStats {
    /// Compute statistics from a simulation report.
    pub fn from_report(report: &SimReport) -> UtilizationStats {
        let (t0, t1) = report.time_range;
        let mut busy: HashMap<Vec<i64>, u64> = HashMap::new();
        let mut profile = vec![0u64; (t1 - t0 + 1).max(0) as usize];
        for (&t, per_proc) in &report.schedule {
            let mut count = 0u64;
            for (p, points) in per_proc {
                *busy.entry(p.clone()).or_insert(0) += points.len() as u64;
                count += points.len() as u64;
            }
            profile[(t - t0) as usize] = count;
        }
        UtilizationStats {
            active_processors: busy.len(),
            busy_cycles: busy,
            activity_profile: profile,
            makespan: t1 - t0 + 1,
        }
    }

    /// Mean utilization: busy PE-cycles / (PEs × makespan), in `[0, 1]`
    /// for conflict-free designs.
    pub fn mean_utilization(&self) -> f64 {
        if self.active_processors == 0 || self.makespan == 0 {
            return 0.0;
        }
        let busy: u64 = self.busy_cycles.values().sum();
        busy as f64 / (self.active_processors as f64 * self.makespan as f64)
    }

    /// Load imbalance: max PE busy-cycles / mean PE busy-cycles (1.0 =
    /// perfectly balanced).
    pub fn load_imbalance(&self) -> f64 {
        if self.busy_cycles.is_empty() {
            return 1.0;
        }
        let max = *self.busy_cycles.values().max().unwrap() as f64;
        let mean = self.busy_cycles.values().sum::<u64>() as f64 / self.busy_cycles.len() as f64;
        max / mean
    }

    /// The busiest cycle's computation count (equals peak parallelism for
    /// conflict-free designs).
    pub fn peak_activity(&self) -> u64 {
        self.activity_profile.iter().copied().max().unwrap_or(0)
    }

    /// Cycles during which no computation executed (pipeline bubbles
    /// between the first and last busy cycle).
    pub fn idle_cycles(&self) -> usize {
        self.activity_profile.iter().filter(|&&c| c == 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use cfmap_core::{MappingMatrix, SpaceMap};
    use cfmap_model::{algorithms, LinearSchedule};

    fn stats_for(pi: &[i64], mu: i64) -> UtilizationStats {
        let alg = algorithms::matmul(mu);
        let m = MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(pi));
        let report = Simulator::new(&alg, &m).run().unwrap();
        UtilizationStats::from_report(&report)
    }

    #[test]
    fn matmul_optimal_utilization() {
        let s = stats_for(&[1, 4, 1], 4);
        assert_eq!(s.makespan, 25);
        assert_eq!(s.active_processors, 13);
        // 125 computations / (13 PEs × 25 cycles) ≈ 0.385.
        let u = s.mean_utilization();
        assert!((u - 125.0 / (13.0 * 25.0)).abs() < 1e-12);
        assert!(s.load_imbalance() >= 1.0);
        // No cycle is fully idle inside the busy span.
        assert_eq!(s.idle_cycles(), 0);
        // Activity profile sums to |J|.
        assert_eq!(s.activity_profile.iter().sum::<u64>(), 125);
    }

    #[test]
    fn faster_design_has_higher_utilization() {
        let opt = stats_for(&[1, 4, 1], 4);
        let base = stats_for(&[2, 1, 4], 4);
        assert!(opt.mean_utilization() > base.mean_utilization());
    }

    #[test]
    fn peak_matches_report_when_conflict_free() {
        // Π = [1, 2, 2] is the conflict-free μ = 3 optimum, so activity
        // (computations/cycle) equals busy-PE count per cycle.
        let alg = algorithms::matmul(3);
        let m = MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[1, 2, 2]));
        let report = Simulator::new(&alg, &m).run().unwrap();
        assert!(report.conflicts.is_empty());
        let s = UtilizationStats::from_report(&report);
        assert_eq!(s.peak_activity(), report.peak_parallelism as u64);
    }

    #[test]
    fn conflicting_design_has_activity_above_parallelism() {
        // Π = [1, 3, 1] conflicts at μ = 3 (γ = [2,−1,1] fits the box):
        // some PE executes two computations in one cycle.
        let alg = algorithms::matmul(3);
        let m = MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[1, 3, 1]));
        let report = Simulator::new(&alg, &m).run().unwrap();
        assert!(!report.conflicts.is_empty());
        let s = UtilizationStats::from_report(&report);
        assert!(s.peak_activity() >= report.peak_parallelism as u64);
    }

    #[test]
    fn center_processor_is_busiest() {
        // Under S = [1,1,−1] the central PEs see the most index points.
        let s = stats_for(&[1, 4, 1], 4);
        let central = s.busy_cycles.get(&vec![4]).copied().unwrap_or(0);
        let edge = s.busy_cycles.get(&vec![-4]).copied().unwrap_or(0);
        assert!(central > edge);
        assert_eq!(edge, 1); // only [0,0,4] maps to PE −4
    }
}
