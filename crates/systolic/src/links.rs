//! Data-link channel simulation and analytics.
//!
//! Each dependence rides its own channel (the paper's per-datum links of
//! Figure 2). The journey model implements Definition 2.2 condition 2
//! with source-side buffers: a datum produced at `j̄ − d̄ᵢ` waits
//! `Π·d̄ᵢ − hᵢ` cycles in buffers, then hops one primitive per cycle,
//! arriving at `S·j̄` exactly at `Π·j̄`.
//!
//! Beyond the collision detection the paper's appendix argues about, this
//! module reports per-channel traffic analytics (data in flight, busiest
//! link, occupancy) used by the experiment harness to compare designs.

use cfmap_core::mapping::{route, InterconnectionPrimitives, Routing};
use cfmap_core::MappingMatrix;
use cfmap_model::{Point, Uda};
use std::collections::HashMap;

/// A link collision: two different data instances of one channel on the
/// same directed link in the same cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Collision {
    /// Which dependence channel.
    pub dep: usize,
    /// Source-end processor of the contested link.
    pub link_from: Vec<i64>,
    /// Cycle.
    pub time: i64,
    /// Producer points of the two colliding data.
    pub producers: (Point, Point),
}

/// Per-channel traffic statistics.
#[derive(Clone, Debug)]
pub struct ChannelStats {
    /// The dependence index this channel carries.
    pub dep: usize,
    /// Total data instances transported.
    pub data_count: u64,
    /// Total hop events.
    pub hop_events: u64,
    /// Maximum simultaneous occupancy of any single directed link.
    pub peak_link_occupancy: u64,
    /// Number of distinct directed links used.
    pub links_used: usize,
}

/// The result of simulating all channels.
#[derive(Clone, Debug)]
pub struct ChannelReport {
    /// All collisions observed (empty for valid designs).
    pub collisions: Vec<Collision>,
    /// Per-channel statistics, one entry per dependence.
    pub channels: Vec<ChannelStats>,
}

impl ChannelReport {
    /// Total hop events across channels.
    pub fn total_hop_events(&self) -> u64 {
        self.channels.iter().map(|c| c.hop_events).sum()
    }

    /// `true` iff no collisions anywhere.
    pub fn is_collision_free(&self) -> bool {
        self.collisions.is_empty()
    }
}

/// Simulate every channel's traffic for `alg` under `mapping`/`routing`.
///
/// The displacement `S·d̄ᵢ` is decomposed into unit steps along array
/// axes (exact for unit-vector primitive sets, which is what the paper's
/// designs use); `k`-columns routing farther than the net displacement
/// are padded with zero-sum hop pairs.
pub fn simulate_channels(
    alg: &Uda,
    mapping: &MappingMatrix,
    routing: &Routing,
) -> ChannelReport {
    let deps = &alg.deps;
    let m = deps.num_deps();
    let prim_dims = mapping.k() - 1;
    let sd_mat = mapping.space().as_mat() * deps.as_mat();

    let mut collisions = Vec::new();
    let mut channels = Vec::with_capacity(m);

    for i in 0..m {
        let d = deps.dep_i64(i);
        let hops = routing.hops[i].to_i64().expect("hops fit i64");
        let buffers = routing.buffers[i].to_i64().expect("buffers fit i64");
        let mut stats = ChannelStats {
            dep: i,
            data_count: 0,
            hop_events: 0,
            peak_link_occupancy: 0,
            links_used: 0,
        };
        if hops == 0 {
            channels.push(stats);
            continue; // stationary datum: no link traffic
        }
        let sd: Vec<i64> = sd_mat.col(i).to_i64s().expect("SD fits i64");
        let mut steps: Vec<(usize, i64)> = Vec::with_capacity(hops as usize);
        for (dim, &delta) in sd.iter().enumerate().take(prim_dims) {
            for _ in 0..delta.abs() {
                steps.push((dim, delta.signum()));
            }
        }
        while (steps.len() as i64) < hops {
            steps.push((0, 1));
            steps.push((0, -1));
        }

        // Occupancy per (link position, slot) and per-link counters.
        let mut occupancy: HashMap<(Vec<i64>, i64), Point> = HashMap::new();
        let mut per_link: HashMap<Vec<i64>, u64> = HashMap::new();
        for j in alg.index_set.iter() {
            let producer: Point = j.iter().zip(&d).map(|(&ji, &di)| ji - di).collect();
            if !alg.index_set.contains(&producer) {
                continue;
            }
            stats.data_count += 1;
            let (src, t_prod) = mapping.apply(&producer);
            let depart = t_prod + buffers;
            let mut pos = src.clone();
            for (h, &(dim, sgn)) in steps.iter().enumerate() {
                let slot = depart + h as i64;
                stats.hop_events += 1;
                *per_link.entry(pos.clone()).or_insert(0) += 1;
                match occupancy.get(&(pos.clone(), slot)) {
                    Some(prev) if prev != &producer => collisions.push(Collision {
                        dep: i,
                        link_from: pos.clone(),
                        time: slot,
                        producers: (prev.clone(), producer.clone()),
                    }),
                    Some(_) => {}
                    None => {
                        occupancy.insert((pos.clone(), slot), producer.clone());
                    }
                }
                pos[dim] += sgn;
            }
            debug_assert_eq!(pos, mapping.apply(&j).0, "datum must arrive at consumer");
        }
        stats.links_used = per_link.len();
        stats.peak_link_occupancy = per_link.values().copied().max().unwrap_or(0);
        channels.push(stats);
    }

    ChannelReport { collisions, channels }
}

/// Peak concurrent load on any *directed link* in any single cycle,
/// with every dependence channel aggregated onto shared wires — the
/// bandwidth each physical link must sustain. A directed link is
/// `(source PE, axis, sign)`; a datum loads it in the cycle it hops.
///
/// The mapping is routed over the mesh primitives `±e₁ … ±e_{k−1}`
/// (the paper's nearest-neighbour example set). Returns `None` when
/// that routing is infeasible — some dependence has a negative buffer
/// budget `Π·d̄ᵢ < ‖S·d̄ᵢ‖₁` — or a routed quantity leaves the `i64`
/// interchange range; such a design has no well-defined link traffic
/// and the resource model treats it as unschedulable.
pub fn peak_link_load(alg: &Uda, mapping: &MappingMatrix) -> Option<u64> {
    let prims = InterconnectionPrimitives::mesh(mapping.k() - 1);
    let routing = route(mapping, &alg.deps, &prims).ok()?;
    let deps = &alg.deps;
    let prim_dims = mapping.k() - 1;
    let sd_mat = mapping.space().as_mat() * deps.as_mat();

    // Load per (link source, axis, sign, cycle), all channels together.
    let mut load: HashMap<(Vec<i64>, usize, i64, i64), u64> = HashMap::new();
    for i in 0..deps.num_deps() {
        let d = deps.dep_i64(i);
        let hops = routing.hops[i].to_i64()?;
        let buffers = routing.buffers[i].to_i64()?;
        if hops == 0 {
            continue; // stationary datum: no link traffic
        }
        let sd: Vec<i64> = sd_mat.col(i).to_i64s()?;
        let mut steps: Vec<(usize, i64)> = Vec::with_capacity(hops as usize);
        for (dim, &delta) in sd.iter().enumerate().take(prim_dims) {
            for _ in 0..delta.abs() {
                steps.push((dim, delta.signum()));
            }
        }
        while (steps.len() as i64) < hops {
            steps.push((0, 1));
            steps.push((0, -1));
        }
        for j in alg.index_set.iter() {
            let producer: Point = j.iter().zip(&d).map(|(&ji, &di)| ji - di).collect();
            if !alg.index_set.contains(&producer) {
                continue;
            }
            let (src, t_prod) = mapping.apply(&producer);
            let depart = t_prod + buffers;
            let mut pos = src.clone();
            for (h, &(dim, sgn)) in steps.iter().enumerate() {
                let slot = depart + h as i64;
                *load.entry((pos.clone(), dim, sgn, slot)).or_insert(0) += 1;
                pos[dim] += sgn;
            }
        }
    }
    Some(load.values().copied().max().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfmap_core::mapping::{route, InterconnectionPrimitives};
    use cfmap_core::{MappingMatrix, SpaceMap};
    use cfmap_model::{algorithms, LinearSchedule};

    #[test]
    fn matmul_channels_match_figure_2() {
        let alg = algorithms::matmul(4);
        let m = MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[1, 4, 1]));
        let p = InterconnectionPrimitives::from_columns(&[&[1], &[1], &[-1]]);
        let routing = route(&m, &alg.deps, &p).unwrap();
        let report = simulate_channels(&alg, &m, &routing);
        assert!(report.is_collision_free());
        assert_eq!(report.channels.len(), 3);
        // Each dependence ships (μ+1)²·μ = 100 data instances (producers
        // with the consumer still inside the box).
        for c in &report.channels {
            assert_eq!(c.data_count, 100, "dep {}", c.dep);
            assert_eq!(c.hop_events, 100, "single hop per datum");
            assert!(c.links_used > 0);
        }
        assert_eq!(report.total_hop_events(), 300);
    }

    #[test]
    fn stationary_channel_has_no_traffic() {
        // TC: d̄₂ = [0,1,0] maps to displacement 0 under S = [0,0,1].
        let alg = algorithms::transitive_closure(4);
        let m = MappingMatrix::new(SpaceMap::row(&[0, 0, 1]), LinearSchedule::new(&[5, 1, 1]));
        let p = InterconnectionPrimitives::from_columns(&[&[1], &[-1]]);
        let routing = route(&m, &alg.deps, &p).unwrap();
        let report = simulate_channels(&alg, &m, &routing);
        assert!(report.is_collision_free());
        assert_eq!(report.channels[1].hop_events, 0);
        assert_eq!(report.channels[1].links_used, 0);
    }

    #[test]
    fn peak_link_load_on_paper_matmul_design() {
        let alg = algorithms::matmul(4);
        let m = MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[1, 4, 1]));
        let peak = peak_link_load(&alg, &m).expect("mesh-routable design");
        // Three single-hop channels share the mesh; at least one datum
        // moves every cycle, and no link ever carries more data than the
        // total channel count in one cycle.
        assert!(peak >= 1);
        assert!(peak <= 3, "peak {peak} exceeds channel count");
    }

    #[test]
    fn peak_link_load_rejects_unroutable_designs() {
        // S·d̄₁ = 3 hops but Π·d̄₁ = 1 cycle: negative buffer budget.
        let alg = algorithms::matmul(4);
        let m = MappingMatrix::new(SpaceMap::row(&[3, 1, -1]), LinearSchedule::new(&[1, 4, 1]));
        assert_eq!(peak_link_load(&alg, &m), None);
    }

    #[test]
    fn peak_occupancy_counts_reuse() {
        let alg = algorithms::matmul(2);
        let m = MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[1, 2, 1]));
        let p = InterconnectionPrimitives::from_columns(&[&[1], &[1], &[-1]]);
        let routing = route(&m, &alg.deps, &p).unwrap();
        let report = simulate_channels(&alg, &m, &routing);
        // Central links carry several data (different cycles, no collision).
        assert!(report.channels.iter().any(|c| c.peak_link_occupancy > 1));
        assert!(report.is_collision_free());
    }
}
