//! Cycle-level processor-array simulation for mapped uniform dependence
//! algorithms.
//!
//! The paper evaluates its mappings on (bit-level) systolic hardware —
//! GAPP, DAP, MPP, the Connection Machine. We have none of those, so this
//! crate is the substitution documented in `DESIGN.md` §5: a synchronous
//! simulator that executes computation `j̄` on processor `S·j̄` at time
//! `Π·j̄`, moves data along interconnection primitives with the buffer
//! delays of Definition 2.2 condition 2, and *observes* — rather than
//! trusts — the properties the theory guarantees:
//!
//! * **computational conflicts** (two computations on one PE in one
//!   cycle) — must be absent exactly when the mapping is conflict-free;
//! * **link collisions** (two data on one link in one cycle) — the
//!   property [23] introduced and the appendix argues about via `K`;
//! * **makespan** — must equal `1 + Σ|π_i|μ_i` (Equation 2.7);
//! * **numerical correctness** — the array really computes `C = A·B`
//!   (Figure 3's computation), convolutions, etc., via pluggable
//!   [`exec::Kernel`]s.
//!
//! [`diagram`] renders Figure 2 (array block diagram) and Figure 3
//! (space-time execution diagram) as text.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod design;
pub mod diagram;
pub mod exec;
pub mod links;
pub mod rtl;
pub mod sim;
pub mod stats;

pub use array::SystolicArray;
pub use design::{ArrayDesign, DesignError};
pub use exec::{ConvolutionKernel, DepthKernel, Kernel, LuKernel, MatmulKernel};
pub use links::{peak_link_load, ChannelReport, ChannelStats, Collision};
pub use sim::{SimReport, Simulator};
pub use stats::UtilizationStats;
