//! Cycle-level structural simulation: conflicts, link traffic, collisions.
//!
//! The simulator executes the mapped algorithm synchronously and records
//! what a logic analyzer on the array would see. Nothing here consults the
//! conflict theory — that is the point: the theory's guarantees are
//! *observed* on the simulated hardware (experiments E4/E5), and
//! deliberately broken mappings must be caught (failure-injection tests).
//!
//! Data movement model (Definition 2.2 condition 2 with source-side
//! buffers): the datum for dependence `d̄ᵢ` produced at `j̄ − d̄ᵢ` sits in
//! `Π·d̄ᵢ − hᵢ` buffer stages at its source, then makes its `hᵢ` routed
//! hops at one primitive per cycle, arriving at `S·j̄` exactly at `Π·j̄` —
//! the inequality of Equation 2.3 guarantees the slack is non-negative.
//! Each dependence rides its own channel (the paper's per-datum links in
//! Figure 2), so a collision is two *different* data instances of one
//! dependence occupying the same directed link in the same cycle.

use cfmap_core::mapping::Routing;
use cfmap_core::{CfmapError, MappingMatrix};
use cfmap_model::{Point, Uda};
use std::collections::HashMap;

/// A computational conflict observed by the simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObservedConflict {
    /// Processor coordinates.
    pub processor: Vec<i64>,
    /// Cycle.
    pub time: i64,
    /// The (≥ 2) index points that collided.
    pub points: Vec<Point>,
}

/// A link collision observed by the simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObservedCollision {
    /// Which dependence channel.
    pub dep: usize,
    /// Source-end processor of the contested link.
    pub link_from: Vec<i64>,
    /// Cycle.
    pub time: i64,
    /// Producer points of the two colliding data.
    pub producers: (Point, Point),
}

/// Everything the simulation observed.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Computations per (time → processor → points).
    pub schedule: HashMap<i64, HashMap<Vec<i64>, Vec<Point>>>,
    /// Computational conflicts (must be empty for conflict-free mappings).
    pub conflicts: Vec<ObservedConflict>,
    /// Link collisions (empty for the paper's designs).
    pub link_collisions: Vec<ObservedCollision>,
    /// First and last busy cycles.
    pub time_range: (i64, i64),
    /// Total computations executed.
    pub computations: u64,
    /// Peak number of simultaneously busy processors.
    pub peak_parallelism: usize,
    /// Total link-hop events simulated.
    pub hop_events: u64,
}

impl SimReport {
    /// Observed makespan (busy span in cycles) — Equation 2.7's `t` when
    /// the mapping is valid.
    pub fn makespan(&self) -> i64 {
        self.time_range.1 - self.time_range.0 + 1
    }

    /// `true` iff no conflicts and no collisions were observed.
    pub fn is_clean(&self) -> bool {
        self.conflicts.is_empty() && self.link_collisions.is_empty()
    }

    /// Average busy-PE count per cycle.
    pub fn average_parallelism(&self) -> f64 {
        let busy: usize = self
            .schedule
            .values()
            .map(|per_proc| per_proc.len())
            .sum();
        busy as f64 / self.makespan() as f64
    }
}

/// The structural simulator.
pub struct Simulator<'a> {
    alg: &'a Uda,
    mapping: &'a MappingMatrix,
    routing: Option<&'a Routing>,
}

impl<'a> Simulator<'a> {
    /// Simulate `alg` under `mapping`. Pass `routing` (from
    /// [`cfmap_core::mapping::route`]) to also simulate data movement and
    /// detect link collisions; without it only computation placement is
    /// simulated.
    pub fn new(alg: &'a Uda, mapping: &'a MappingMatrix) -> Self {
        Simulator { alg, mapping, routing: None }
    }

    /// Fail fast on shape errors instead of producing garbage placements.
    fn check_dims(&self) -> Result<(), CfmapError> {
        if self.alg.dim() != self.mapping.dim() {
            return Err(CfmapError::DimensionMismatch {
                context: "simulator: algorithm vs mapping".into(),
                expected: self.alg.dim(),
                actual: self.mapping.dim(),
            });
        }
        Ok(())
    }

    /// Attach a routing certificate for link-level simulation.
    pub fn with_routing(mut self, routing: &'a Routing) -> Self {
        self.routing = Some(routing);
        self
    }

    /// Run the simulation.
    pub fn run(&self) -> Result<SimReport, CfmapError> {
        self.check_dims()?;
        let mut schedule: HashMap<i64, HashMap<Vec<i64>, Vec<Point>>> = HashMap::new();
        let mut tmin = i64::MAX;
        let mut tmax = i64::MIN;
        let mut computations = 0u64;

        for j in self.alg.index_set.iter() {
            let (p, t) = self.mapping.apply(&j);
            tmin = tmin.min(t);
            tmax = tmax.max(t);
            computations += 1;
            schedule.entry(t).or_default().entry(p).or_default().push(j);
        }

        Ok(self.finish(schedule, tmin, tmax, computations))
    }

    /// Run the placement phase on `threads` worker threads (`std::thread`
    /// scoped threads, partitioned along the outermost loop axis), then
    /// merge. Produces a report identical to [`Self::run`] up to the
    /// ordering of points within a (processor, time) cell.
    pub fn run_parallel(&self, threads: usize) -> Result<SimReport, CfmapError> {
        if threads == 0 {
            return Err(CfmapError::Unsupported {
                reason: "parallel simulation needs at least one worker thread".into(),
            });
        }
        self.check_dims()?;
        let mu = self.alg.index_set.mu();
        if mu.is_empty() || threads == 1 {
            return self.run();
        }
        let outer = mu[0];
        let inner = cfmap_model::IndexSet::new(&mu[1..]);
        let outer_values: Vec<i64> = (0..=outer).collect();
        let chunk = outer_values.len().div_ceil(threads).max(1);

        type Partial = (HashMap<i64, HashMap<Vec<i64>, Vec<Point>>>, i64, i64, u64);
        let partials: Vec<Partial> = std::thread::scope(|scope| {
            let handles: Vec<_> = outer_values
                .chunks(chunk)
                .map(|slice| {
                    let inner = &inner;
                    scope.spawn(move || {
                        let mut schedule: HashMap<i64, HashMap<Vec<i64>, Vec<Point>>> =
                            HashMap::new();
                        let mut tmin = i64::MAX;
                        let mut tmax = i64::MIN;
                        let mut count = 0u64;
                        for &j0 in slice {
                            for rest in inner.iter() {
                                let mut j = Vec::with_capacity(rest.len() + 1);
                                j.push(j0);
                                j.extend_from_slice(&rest);
                                let (p, t) = self.mapping.apply(&j);
                                tmin = tmin.min(t);
                                tmax = tmax.max(t);
                                count += 1;
                                schedule.entry(t).or_default().entry(p).or_default().push(j);
                            }
                        }
                        (schedule, tmin, tmax, count)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });

        let mut schedule: HashMap<i64, HashMap<Vec<i64>, Vec<Point>>> = HashMap::new();
        let mut tmin = i64::MAX;
        let mut tmax = i64::MIN;
        let mut computations = 0u64;
        for (part, lo, hi, count) in partials {
            tmin = tmin.min(lo);
            tmax = tmax.max(hi);
            computations += count;
            for (t, per_proc) in part {
                let slot = schedule.entry(t).or_default();
                for (p, mut points) in per_proc {
                    slot.entry(p).or_default().append(&mut points);
                }
            }
        }
        Ok(self.finish(schedule, tmin, tmax, computations))
    }

    fn finish(
        &self,
        schedule: HashMap<i64, HashMap<Vec<i64>, Vec<Point>>>,
        tmin: i64,
        tmax: i64,
        computations: u64,
    ) -> SimReport {
        let mut conflicts = Vec::new();
        let mut peak = 0usize;
        for (&t, per_proc) in &schedule {
            peak = peak.max(per_proc.len());
            for (p, points) in per_proc {
                if points.len() > 1 {
                    conflicts.push(ObservedConflict {
                        processor: p.clone(),
                        time: t,
                        points: points.clone(),
                    });
                }
            }
        }
        conflicts.sort_by_key(|c| (c.time, c.processor.clone()));

        let (link_collisions, hop_events) = match self.routing {
            Some(routing) => self.simulate_links(routing),
            None => (Vec::new(), 0),
        };

        let time_range = if tmin == i64::MAX { (0, 0) } else { (tmin, tmax) };
        SimReport {
            schedule,
            conflicts,
            link_collisions,
            time_range,
            computations,
            peak_parallelism: peak,
            hop_events,
        }
    }

    /// Delegate data movement to the channel model in [`crate::links`]
    /// and convert its findings to the report's types.
    fn simulate_links(&self, routing: &Routing) -> (Vec<ObservedCollision>, u64) {
        let channel_report = crate::links::simulate_channels(self.alg, self.mapping, routing);
        let hops = channel_report.total_hop_events();
        let collisions = channel_report
            .collisions
            .into_iter()
            .map(|c| ObservedCollision {
                dep: c.dep,
                link_from: c.link_from,
                time: c.time,
                producers: c.producers,
            })
            .collect();
        (collisions, hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfmap_core::mapping::{route, InterconnectionPrimitives};
    use cfmap_core::{MappingMatrix, SpaceMap};
    use cfmap_model::{algorithms, LinearSchedule};

    fn matmul_setup(mu: i64, pi: &[i64]) -> (Uda, MappingMatrix) {
        let alg = algorithms::matmul(mu);
        let m = MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(pi));
        (alg, m)
    }

    #[test]
    fn optimal_matmul_simulation_is_clean() {
        let (alg, m) = matmul_setup(4, &[1, 4, 1]);
        let report = Simulator::new(&alg, &m).run().unwrap();
        assert!(report.conflicts.is_empty(), "paper design must be conflict-free");
        assert_eq!(report.makespan(), 25);
        assert_eq!(report.computations, 125);
        assert!(report.peak_parallelism <= 13);
    }

    #[test]
    fn conflicting_mapping_is_caught() {
        // Failure injection: Π1 = [1, 1, μ] conflicts; the simulator must
        // observe it.
        let (alg, m) = matmul_setup(4, &[1, 1, 4]);
        let report = Simulator::new(&alg, &m).run().unwrap();
        assert!(!report.conflicts.is_empty());
        let c = &report.conflicts[0];
        assert!(c.points.len() >= 2);
        // The witnesses really collide under T.
        let im: Vec<_> = c.points.iter().map(|p| m.apply(p)).collect();
        assert!(im.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn makespan_matches_eq_2_7_even_with_conflicts() {
        let (alg, m) = matmul_setup(3, &[2, 1, 3]);
        let report = Simulator::new(&alg, &m).run().unwrap();
        assert_eq!(report.makespan(), m.schedule().total_time(&alg.index_set));
    }

    #[test]
    fn link_simulation_example_5_1() {
        // Full Example 5.1 with routing: no conflicts, no collisions.
        let (alg, m) = matmul_setup(4, &[1, 4, 1]);
        let p = InterconnectionPrimitives::from_columns(&[&[1], &[1], &[-1]]);
        let routing = route(&m, &alg.deps, &p).expect("routable");
        let report = Simulator::new(&alg, &m).with_routing(&routing).run().unwrap();
        assert!(report.is_clean(), "collisions: {:?}", report.link_collisions);
        assert!(report.hop_events > 0);
    }

    #[test]
    fn link_simulation_baseline_23() {
        // [23]'s design is also collision-free (just slower).
        let (alg, m) = matmul_setup(4, &[2, 1, 4]);
        let p = InterconnectionPrimitives::from_columns(&[&[1], &[1], &[-1]]);
        let routing = route(&m, &alg.deps, &p).expect("routable");
        let report = Simulator::new(&alg, &m).with_routing(&routing).run().unwrap();
        assert!(report.is_clean());
        assert_eq!(report.makespan(), 4 * (4 + 3) + 1);
    }

    #[test]
    fn link_simulation_transitive_closure() {
        let alg = algorithms::transitive_closure(4);
        let m = MappingMatrix::new(SpaceMap::row(&[0, 0, 1]), LinearSchedule::new(&[5, 1, 1]));
        let p = InterconnectionPrimitives::from_columns(&[&[1], &[-1]]);
        let routing = route(&m, &alg.deps, &p).expect("routable");
        let report = Simulator::new(&alg, &m).with_routing(&routing).run().unwrap();
        assert!(report.is_clean(), "collisions: {:?}", report.link_collisions);
        assert_eq!(report.makespan(), 29);
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let (alg, m) = matmul_setup(4, &[1, 4, 1]);
        let seq = Simulator::new(&alg, &m).run().unwrap();
        for threads in [1, 2, 3, 8] {
            let par = Simulator::new(&alg, &m).run_parallel(threads).unwrap();
            assert_eq!(par.computations, seq.computations, "threads = {threads}");
            assert_eq!(par.time_range, seq.time_range);
            assert_eq!(par.conflicts.len(), seq.conflicts.len());
            assert_eq!(par.peak_parallelism, seq.peak_parallelism);
            // Cell contents match as sets.
            for (t, per_proc) in &seq.schedule {
                let other = &par.schedule[t];
                for (p, pts) in per_proc {
                    let mut a = pts.clone();
                    let mut b = other[p].clone();
                    a.sort();
                    b.sort();
                    assert_eq!(a, b);
                }
            }
        }
    }

    #[test]
    fn parallel_run_detects_conflicts_too() {
        let (alg, m) = matmul_setup(4, &[1, 1, 4]);
        let par = Simulator::new(&alg, &m).run_parallel(4).unwrap();
        assert!(!par.conflicts.is_empty());
    }

    #[test]
    fn average_parallelism_sane() {
        let (alg, m) = matmul_setup(4, &[1, 4, 1]);
        let report = Simulator::new(&alg, &m).run().unwrap();
        let avg = report.average_parallelism();
        assert!(avg > 1.0 && avg <= 13.0, "avg parallelism {avg}");
        // 125 computations over 25 cycles = 5 busy-PE-cycles per cycle.
        assert!((avg - 5.0).abs() < 1e-9);
    }
}
