//! Processor-array geometry synthesized from a mapping.
//!
//! The processor set is the image `S·J` of the index set under the space
//! map — for the paper's linear-array designs a contiguous segment of
//! `Z`, for 2-D bit-level designs a region of `Z²`.

use cfmap_core::MappingMatrix;
use cfmap_model::Uda;
use std::collections::BTreeSet;

/// A synthesized `(k−1)`-dimensional processor array.
#[derive(Clone, Debug)]
pub struct SystolicArray {
    /// Array dimensionality `k − 1`.
    dims: usize,
    /// All processor coordinates, sorted.
    processors: Vec<Vec<i64>>,
    /// Bounding box: per-dimension (min, max).
    bounds: Vec<(i64, i64)>,
    /// First and last execution times.
    time_range: (i64, i64),
}

impl SystolicArray {
    /// Synthesize the array for `alg` under `mapping`: enumerate `S·J` and
    /// the schedule's time span.
    pub fn synthesize(alg: &Uda, mapping: &MappingMatrix) -> SystolicArray {
        assert_eq!(alg.dim(), mapping.dim(), "algorithm / mapping dimension mismatch");
        let dims = mapping.k() - 1;
        let mut procs: BTreeSet<Vec<i64>> = BTreeSet::new();
        let mut tmin = i64::MAX;
        let mut tmax = i64::MIN;
        for j in alg.index_set.iter() {
            let (p, t) = mapping.apply(&j);
            procs.insert(p);
            tmin = tmin.min(t);
            tmax = tmax.max(t);
        }
        let processors: Vec<Vec<i64>> = procs.into_iter().collect();
        let bounds = (0..dims)
            .map(|d| {
                let min = processors.iter().map(|p| p[d]).min().unwrap_or(0);
                let max = processors.iter().map(|p| p[d]).max().unwrap_or(0);
                (min, max)
            })
            .collect();
        let time_range = if tmin == i64::MAX { (0, 0) } else { (tmin, tmax) };
        SystolicArray { dims, processors, bounds, time_range }
    }

    /// Array dimensionality `k − 1`.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of processors actually used.
    pub fn num_processors(&self) -> usize {
        self.processors.len()
    }

    /// All processor coordinates (sorted lexicographically).
    pub fn processors(&self) -> &[Vec<i64>] {
        &self.processors
    }

    /// Per-dimension coordinate bounds (min, max).
    pub fn bounds(&self) -> &[(i64, i64)] {
        &self.bounds
    }

    /// `(first, last)` execution times.
    pub fn time_range(&self) -> (i64, i64) {
        self.time_range
    }

    /// Total execution time `last − first + 1` — must equal Equation 2.7's
    /// `1 + Σ|π_i|μ_i` (asserted by the simulator's tests).
    pub fn total_time(&self) -> i64 {
        self.time_range.1 - self.time_range.0 + 1
    }

    /// `true` iff every integer point of the bounding box hosts a
    /// processor (no holes — full utilization of the VLSI span).
    pub fn is_dense(&self) -> bool {
        let volume: i64 = self.bounds.iter().map(|(lo, hi)| hi - lo + 1).product();
        volume == self.processors.len() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfmap_core::{MappingMatrix, SpaceMap};
    use cfmap_model::{algorithms, LinearSchedule};

    #[test]
    fn matmul_linear_array_geometry() {
        // Example 5.1, μ = 4: S = [1, 1, −1] over {0..4}³ spans
        // processors −4 .. 8 → 13 PEs; t ∈ [0, 24] → 25 cycles.
        let alg = algorithms::matmul(4);
        let m = MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[1, 4, 1]));
        let arr = SystolicArray::synthesize(&alg, &m);
        assert_eq!(arr.dims(), 1);
        assert_eq!(arr.num_processors(), 13);
        assert_eq!(arr.bounds(), &[(-4, 8)]);
        assert_eq!(arr.time_range(), (0, 24));
        assert_eq!(arr.total_time(), 25);
        assert!(arr.is_dense());
    }

    #[test]
    fn transitive_closure_array_geometry() {
        // Example 5.2, μ = 4: S = [0, 0, 1] → processors 0..4 (5 PEs);
        // Π = [5, 1, 1] → t ∈ [0, 28], 29 cycles.
        let alg = algorithms::transitive_closure(4);
        let m = MappingMatrix::new(SpaceMap::row(&[0, 0, 1]), LinearSchedule::new(&[5, 1, 1]));
        let arr = SystolicArray::synthesize(&alg, &m);
        assert_eq!(arr.num_processors(), 5);
        assert_eq!(arr.total_time(), 29);
        assert_eq!(arr.total_time(), 4 * (4 + 3) + 1);
    }

    #[test]
    fn two_dimensional_array() {
        // 4-D bit-level algorithm into a 2-D array.
        let alg = algorithms::bitlevel_convolution(2, 2);
        let m = MappingMatrix::from_rows(&[
            &[1, 0, 0, 0],
            &[0, 1, 0, 0],
            &[1, 1, 3, 9],
        ]);
        let arr = SystolicArray::synthesize(&alg, &m);
        assert_eq!(arr.dims(), 2);
        assert_eq!(arr.num_processors(), 9); // 3×3 grid
        assert!(arr.is_dense());
    }

    #[test]
    fn total_time_matches_eq_2_7() {
        for (alg, pi) in [
            (algorithms::matmul(3), vec![1i64, 3, 1]),
            (algorithms::matmul(5), vec![1, 5, 1]),
            (algorithms::transitive_closure(3), vec![4, 1, 1]),
        ] {
            let m = MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&pi));
            let arr = SystolicArray::synthesize(&alg, &m);
            assert_eq!(arr.total_time(), m.schedule().total_time(&alg.index_set));
        }
    }
}
