//! Text renderers for the paper's Figures 2 and 3.
//!
//! * [`block_diagram`] — Figure 2: the linear-array block diagram with one
//!   channel per dependence, its direction, and its buffer count
//!   ("Three buffers are needed in data link for A").
//! * [`space_time_diagram`] — Figure 3: the execution grid, processors
//!   across, time down, each cell listing the index point(s) computed.

use crate::sim::SimReport;
use cfmap_core::mapping::Routing;
use cfmap_core::MappingMatrix;
use cfmap_model::Uda;
use std::fmt::Write as _;

/// Render the Figure 2-style block diagram of a **linear** array design.
///
/// One line per dependence channel: direction (`→` / `←` / `•` for
/// stationary), hops, and buffer stages, plus the PE row itself.
pub fn block_diagram(
    alg: &Uda,
    mapping: &MappingMatrix,
    routing: &Routing,
    labels: &[&str],
) -> String {
    assert_eq!(mapping.k(), 2, "block diagram renders linear arrays (k = 2)");
    assert_eq!(labels.len(), alg.num_deps(), "one label per dependence");
    let array = crate::array::SystolicArray::synthesize(alg, mapping);
    let (lo, hi) = array.bounds()[0];

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Linear array: {} PEs (coordinates {lo} … {hi}), t = {} cycles",
        array.num_processors(),
        array.total_time()
    );
    let mut pes = String::from("  ");
    for p in lo..=hi {
        let _ = write!(pes, "[PE{p:>3}]");
        if p < hi {
            pes.push_str("──");
        }
    }
    let _ = writeln!(out, "{pes}");
    let sd = mapping.space().as_mat() * alg.deps.as_mat();
    for (i, label) in labels.iter().enumerate().take(alg.num_deps()) {
        let disp = sd.get(0, i).to_i64().expect("SD entry fits i64");
        let dir = match disp.signum() {
            1 => "→",
            -1 => "←",
            _ => "•",
        };
        let _ = writeln!(
            out,
            "  channel {}: {} moves {dir} ({} hop(s), {} buffer(s), Πd̄ = {})",
            label,
            label,
            routing.hops[i],
            routing.buffers[i],
            routing.dep_times[i],
        );
    }
    out
}

/// Render the Figure 3-style space-time diagram of a **linear** array
/// execution: rows are cycles, columns are PEs, cells show the index
/// point(s) executed (conflicts become multi-point cells, immediately
/// visible).
pub fn space_time_diagram(report: &SimReport, mapping: &MappingMatrix) -> String {
    assert_eq!(mapping.k(), 2, "space-time diagram renders linear arrays (k = 2)");
    // Collect PE coordinates.
    let mut pes: Vec<i64> = report
        .schedule
        .values()
        .flat_map(|per_proc| per_proc.keys().map(|p| p[0]))
        .collect();
    pes.sort_unstable();
    pes.dedup();
    let (t0, t1) = report.time_range;

    // Pre-render cells to compute the column width.
    let mut cells: Vec<Vec<String>> = Vec::new();
    for t in t0..=t1 {
        let mut row = Vec::with_capacity(pes.len());
        for &p in &pes {
            let content = report
                .schedule
                .get(&t)
                .and_then(|per_proc| per_proc.get(&vec![p]))
                .map(|points| {
                    points
                        .iter()
                        .map(|j| {
                            j.iter().map(i64::to_string).collect::<Vec<_>>().join("")
                        })
                        .collect::<Vec<_>>()
                        .join("|")
                })
                .unwrap_or_default();
            row.push(content);
        }
        cells.push(row);
    }
    let width = cells
        .iter()
        .flatten()
        .map(String::len)
        .max()
        .unwrap_or(1)
        .max(3);

    let mut out = String::new();
    let _ = write!(out, "{:>5} │", "t");
    for &p in &pes {
        let _ = write!(out, " {:^width$}", format!("PE{p}"));
    }
    out.push('\n');
    let _ = write!(out, "──────┼{}", "─".repeat((width + 1) * pes.len()));
    out.push('\n');
    for (ti, row) in cells.iter().enumerate() {
        let _ = write!(out, "{:>5} │", t0 + ti as i64);
        for cell in row {
            let _ = write!(out, " {:^width$}", if cell.is_empty() { "·" } else { cell });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use cfmap_core::mapping::{route, InterconnectionPrimitives};
    use cfmap_core::{MappingMatrix, SpaceMap};
    use cfmap_model::{algorithms, LinearSchedule};

    #[test]
    fn figure_2_block_diagram_contents() {
        let alg = algorithms::matmul(4);
        let m =
            MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[1, 4, 1]));
        let p = InterconnectionPrimitives::from_columns(&[&[1], &[1], &[-1]]);
        let routing = route(&m, &alg.deps, &p).unwrap();
        let diagram = block_diagram(&alg, &m, &routing, &["B", "A", "C"]);
        // The paper's Figure 2: A and B travel left→right, C right→left,
        // three buffers on A's link.
        assert!(diagram.contains("13 PEs"));
        assert!(diagram.contains("channel A: A moves → (1 hop(s), 3 buffer(s)"));
        assert!(diagram.contains("channel B: B moves →"));
        assert!(diagram.contains("channel C: C moves ←"));
        assert!(diagram.contains("t = 25 cycles"));
    }

    #[test]
    fn figure_3_space_time_diagram_shape() {
        let mu = 2;
        let alg = algorithms::matmul(mu);
        let m =
            MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[1, 2, 1]));
        let report = Simulator::new(&alg, &m).run().unwrap();
        let diagram = space_time_diagram(&report, &m);
        let lines: Vec<&str> = diagram.lines().collect();
        // Header + separator + one line per cycle.
        assert_eq!(lines.len() as i64, 2 + report.makespan());
        assert!(lines[0].contains("PE0"));
        // Every computation appears exactly once: count non-empty cells.
        let body = lines[2..].join("\n");
        let cell_count = body.split_whitespace().filter(|s| s.chars().any(|c| c.is_ascii_digit()) && !s.ends_with('│')).count();
        // 27 computations + 1 time label per row... count only 3-digit point cells:
        let point_cells = body
            .split_whitespace()
            .filter(|s| s.len() == 3 && s.chars().all(|c| c.is_ascii_digit()))
            .count();
        assert_eq!(point_cells as u64, report.computations - overlap_adjustment(&report));
        let _ = cell_count;
    }

    /// Points sharing a cell are joined with '|'; subtract them from the
    /// single-cell count.
    fn overlap_adjustment(report: &crate::sim::SimReport) -> u64 {
        report
            .conflicts
            .iter()
            .map(|c| c.points.len() as u64)
            .sum()
    }

    #[test]
    fn conflicts_visible_in_diagram() {
        let alg = algorithms::matmul(2);
        // Conflicting schedule [1, 1, 2]: γ = [−3, 3, 0]/3 = [1,−1,0].
        let m =
            MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[1, 1, 2]));
        let report = Simulator::new(&alg, &m).run().unwrap();
        assert!(!report.conflicts.is_empty());
        let diagram = space_time_diagram(&report, &m);
        assert!(diagram.contains('|'), "conflicting points must share a cell");
    }

    #[test]
    fn time_column_is_complete() {
        let alg = algorithms::matmul(2);
        let m =
            MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[1, 2, 1]));
        let report = Simulator::new(&alg, &m).run().unwrap();
        let diagram = space_time_diagram(&report, &m);
        for t in 0..report.makespan() {
            assert!(
                diagram.lines().any(|l| l.trim_start().starts_with(&format!("{t} "))),
                "cycle {t} missing"
            );
        }
    }
}
