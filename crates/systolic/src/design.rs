//! One-call array design: algorithm + space map in, complete validated
//! design out.
//!
//! [`ArrayDesign::synthesize`] bundles the whole pipeline — Problem 2.2
//! optimization (Procedure 5.1), routing (`SD = PK`), geometry synthesis,
//! cycle-level validation — into the call a downstream user actually
//! wants, with every paper-level observable exposed on the result.

use crate::array::SystolicArray;
use crate::diagram;
use crate::sim::{SimReport, Simulator};
use crate::stats::UtilizationStats;
use cfmap_core::conditions::ConditionKind;
use cfmap_core::mapping::Routing;
use cfmap_core::{InterconnectionPrimitives, MappingMatrix, Procedure51, SpaceMap};
use cfmap_model::{LinearSchedule, Uda};

/// Errors from design synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignError {
    /// No conflict-free schedule exists within the search cap.
    NoSchedule {
        /// The objective cap that was exhausted.
        cap: i64,
    },
    /// The requested schedule is invalid (`ΠD ≤ 0` somewhere).
    InvalidSchedule,
    /// The mapping has conflicts (only when a fixed schedule is supplied).
    Conflicting,
    /// Routing on the given primitives failed.
    Unroutable,
    /// A lower layer reported a structured failure (overflow, budget
    /// exhaustion, shape mismatch, …).
    Failed(cfmap_core::CfmapError),
}

impl std::fmt::Display for DesignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesignError::NoSchedule { cap } => {
                write!(f, "no conflict-free schedule within objective cap {cap}")
            }
            DesignError::InvalidSchedule => write!(f, "schedule violates ΠD > 0"),
            DesignError::Conflicting => write!(f, "mapping has computational conflicts"),
            DesignError::Unroutable => write!(f, "dependencies unroutable on the given primitives"),
            DesignError::Failed(e) => write!(f, "synthesis failed: {e}"),
        }
    }
}

impl std::error::Error for DesignError {}

/// A complete, validated processor-array design.
#[derive(Debug)]
pub struct ArrayDesign {
    /// The algorithm being mapped.
    pub algorithm: Uda,
    /// The mapping matrix `T = [S; Π]`.
    pub mapping: MappingMatrix,
    /// Array geometry.
    pub array: SystolicArray,
    /// Routing certificate (present when primitives were supplied).
    pub routing: Option<Routing>,
    /// The validation simulation.
    pub report: SimReport,
    /// Utilization statistics.
    pub stats: UtilizationStats,
    /// Total execution time `t` (Equation 2.7).
    pub total_time: i64,
}

/// Builder for [`ArrayDesign`].
pub struct DesignBuilder<'a> {
    alg: &'a Uda,
    space: SpaceMap,
    schedule: Option<LinearSchedule>,
    primitives: Option<&'a InterconnectionPrimitives>,
    condition: ConditionKind,
    max_objective: Option<i64>,
}

impl ArrayDesign {
    /// Start building a design for `alg` with the given space map.
    ///
    /// # Examples
    ///
    /// ```
    /// use cfmap_core::SpaceMap;
    /// use cfmap_model::algorithms;
    /// use cfmap_systolic::ArrayDesign;
    ///
    /// let alg = algorithms::matmul(4);
    /// let design = ArrayDesign::synthesize(&alg, SpaceMap::row(&[1, 1, -1]))
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(design.total_time, 25);
    /// assert!(design.report.is_clean());
    /// ```
    pub fn synthesize<'a>(alg: &'a Uda, space: SpaceMap) -> DesignBuilder<'a> {
        DesignBuilder {
            alg,
            space,
            schedule: None,
            primitives: None,
            condition: ConditionKind::Exact,
            max_objective: None,
        }
    }

    /// Figure 3-style space-time diagram (linear arrays only).
    pub fn space_time_diagram(&self) -> String {
        diagram::space_time_diagram(&self.report, &self.mapping)
    }

    /// Figure 2-style block diagram (linear arrays with routing only).
    pub fn block_diagram(&self, labels: &[&str]) -> Option<String> {
        let routing = self.routing.as_ref()?;
        Some(diagram::block_diagram(&self.algorithm, &self.mapping, routing, labels))
    }
}

impl<'a> DesignBuilder<'a> {
    /// Fix the schedule instead of optimizing (it will be validated).
    pub fn with_schedule(mut self, schedule: LinearSchedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Require routability on the given interconnection primitives.
    pub fn with_primitives(mut self, p: &'a InterconnectionPrimitives) -> Self {
        self.primitives = Some(p);
        self
    }

    /// Select the conflict test driving the optimizer.
    pub fn condition(mut self, kind: ConditionKind) -> Self {
        self.condition = kind;
        self
    }

    /// Cap the optimizer's objective search.
    pub fn max_objective(mut self, cap: i64) -> Self {
        self.max_objective = Some(cap);
        self
    }

    /// Synthesize and validate the design.
    pub fn build(self) -> Result<ArrayDesign, DesignError> {
        let alg = self.alg;
        let (mapping, routing) = match self.schedule {
            Some(schedule) => {
                // Fixed schedule path: validate everything explicitly.
                if !schedule.is_valid_for(&alg.deps) {
                    return Err(DesignError::InvalidSchedule);
                }
                let mapping = MappingMatrix::new(self.space.clone(), schedule);
                let analysis =
                    cfmap_core::ConflictAnalysis::new(&mapping, &alg.index_set);
                if !analysis.is_conflict_free_exact() {
                    return Err(DesignError::Conflicting);
                }
                let routing = match self.primitives {
                    Some(p) => Some(
                        cfmap_core::mapping::route(&mapping, &alg.deps, p)
                            .map_err(|_| DesignError::Unroutable)?,
                    ),
                    None => None,
                };
                (mapping, routing)
            }
            None => {
                let mut proc = Procedure51::new(alg, &self.space).condition(self.condition);
                if let Some(p) = self.primitives {
                    proc = proc.primitives(p);
                }
                let cap = self.max_objective;
                if let Some(c) = cap {
                    proc = proc.max_objective(c);
                }
                let opt = proc
                    .solve()
                    .map_err(DesignError::Failed)?
                    .into_mapping()
                    .ok_or(DesignError::NoSchedule { cap: cap.unwrap_or(-1) })?;
                (opt.mapping, opt.routing)
            }
        };

        let array = SystolicArray::synthesize(alg, &mapping);
        let mut sim = Simulator::new(alg, &mapping);
        if let Some(r) = routing.as_ref() {
            sim = sim.with_routing(r);
        }
        let report = sim.run().map_err(DesignError::Failed)?;
        debug_assert!(report.conflicts.is_empty(), "validated design must be conflict-free");
        let stats = UtilizationStats::from_report(&report);
        let total_time = report.makespan();
        Ok(ArrayDesign {
            algorithm: alg.clone(),
            mapping,
            array,
            routing,
            report,
            stats,
            total_time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfmap_model::algorithms;

    #[test]
    fn one_call_synthesis_example_5_1() {
        let alg = algorithms::matmul(4);
        let prims = InterconnectionPrimitives::from_columns(&[&[1], &[1], &[-1]]);
        let design = ArrayDesign::synthesize(&alg, SpaceMap::row(&[1, 1, -1]))
            .with_primitives(&prims)
            .build()
            .expect("synthesizable");
        assert_eq!(design.total_time, 25);
        assert_eq!(design.array.num_processors(), 13);
        assert!(design.report.is_clean());
        assert!(design.routing.is_some());
        assert!(design.block_diagram(&["B", "A", "C"]).unwrap().contains("13 PEs"));
        assert!(design.space_time_diagram().contains("PE0"));
        assert!(design.stats.mean_utilization() > 0.3);
    }

    #[test]
    fn fixed_schedule_path_validates() {
        let alg = algorithms::matmul(4);
        // The paper's Π₂ = [1, μ, 1].
        let design = ArrayDesign::synthesize(&alg, SpaceMap::row(&[1, 1, -1]))
            .with_schedule(cfmap_model::LinearSchedule::new(&[1, 4, 1]))
            .build()
            .expect("valid design");
        assert_eq!(design.total_time, 25);
    }

    #[test]
    fn fixed_schedule_conflicts_rejected() {
        let alg = algorithms::matmul(4);
        let err = ArrayDesign::synthesize(&alg, SpaceMap::row(&[1, 1, -1]))
            .with_schedule(cfmap_model::LinearSchedule::new(&[1, 1, 4]))
            .build()
            .unwrap_err();
        assert_eq!(err, DesignError::Conflicting);
    }

    #[test]
    fn invalid_schedule_rejected() {
        let alg = algorithms::matmul(4);
        let err = ArrayDesign::synthesize(&alg, SpaceMap::row(&[1, 1, -1]))
            .with_schedule(cfmap_model::LinearSchedule::new(&[0, 1, 1]))
            .build()
            .unwrap_err();
        assert_eq!(err, DesignError::InvalidSchedule);
    }

    #[test]
    fn cap_exhaustion_reports_no_schedule() {
        let alg = algorithms::matmul(4);
        let err = ArrayDesign::synthesize(&alg, SpaceMap::row(&[1, 1, -1]))
            .max_objective(3)
            .build()
            .unwrap_err();
        assert_eq!(err, DesignError::NoSchedule { cap: 3 });
        assert!(err.to_string().contains("cap 3"));
    }

    #[test]
    fn unroutable_reported() {
        let alg = algorithms::matmul(4);
        let prims = InterconnectionPrimitives::from_columns(&[&[-1]]);
        let err = ArrayDesign::synthesize(&alg, SpaceMap::row(&[1, 1, -1]))
            .with_schedule(cfmap_model::LinearSchedule::new(&[1, 4, 1]))
            .with_primitives(&prims)
            .build()
            .unwrap_err();
        assert_eq!(err, DesignError::Unroutable);
    }
}
