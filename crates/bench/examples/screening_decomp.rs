//! Decomposes the E16 fast-route speedup into its two levers — the
//! kernel-lattice conflict memo and the symmetry quotient — by timing
//! all four (memo × quotient) configurations on the bit-level rows.
//!
//! ```sh
//! cargo run --release -p cfmap-bench --example screening_decomp
//! ```

use cfmap_core::search::{Procedure51, SymmetryMode, TieBreak};
use cfmap_core::SpaceMap;
use cfmap_model::algorithms;
use std::time::Instant;

fn main() {
    let cases: Vec<(&str, cfmap_model::Uda, SpaceMap, i64)> = vec![
        (
            "bit-matmul 5D→2D (r=2)",
            algorithms::bitlevel_matmul(2, 3),
            SpaceMap::from_rows(&[&[1, 0, 0, 0, 0], &[0, 1, 0, 0, 0]]),
            0,
        ),
        (
            "bit-matmul 5D→1D (r=3)",
            algorithms::bitlevel_matmul(2, 1),
            SpaceMap::row(&[1, 1, 0, 0, 0]),
            45,
        ),
    ];
    for (name, alg, space, cap) in &cases {
        for (label, memo, quot) in [
            ("plain     ", false, false),
            ("memo      ", true, false),
            ("quotient  ", false, true),
            ("memo+quot ", true, true),
        ] {
            let mut p = Procedure51::new(alg, space).tie_break(TieBreak::LexMax).memo(memo);
            if quot {
                p = p.symmetry(SymmetryMode::Quotient);
            }
            if *cap > 0 {
                p = p.max_objective(*cap);
            }
            let t0 = Instant::now();
            let out = p.solve().unwrap();
            let dt = t0.elapsed();
            let t = &out.telemetry;
            println!(
                "{name} {label} {dt:>12.3?}  enumerated={} exact={} hits={} misses={} pruned={}",
                t.enumerated, t.condition_hits.exact, t.memo_hits, t.memo_misses, t.orbits_pruned,
            );
        }
        println!();
    }
}
