//! Experiment harness reproducing every figure and quantitative claim of
//! the paper (see `DESIGN.md` §3 for the experiment index).
//!
//! Each `eN_*` function runs one experiment and returns an
//! [`ExperimentReport`] — a table plus notes — that the `experiments`
//! binary prints and `EXPERIMENTS.md` records. The plain timing benches
//! in `benches/` (see [`timing`]) measure the computational kernels
//! behind the same experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod timing;

use cfmap_core::baselines;
use cfmap_core::conditions::{self, ConditionKind, ConditionVerdict};
use cfmap_core::conflict::{feasibility, ConflictAnalysis, Feasibility};
use cfmap_core::ilp::optimal_schedule_ilp;
use cfmap_core::mapping::{route, InterconnectionPrimitives, MappingMatrix, SpaceMap};
use cfmap_core::oracle;
use cfmap_core::prop81::prop_8_1_basis;
use cfmap_core::search::Procedure51;
use cfmap_core::SearchBudget;
use cfmap_intlin::{hermite_normal_form, IMat, IVec};
use cfmap_model::{algorithms, IndexSet, LinearSchedule};
use cfmap_systolic::exec::{execute, MatmulKernel};
use cfmap_systolic::Simulator;
use std::time::Instant;

/// One experiment's rendered result.
#[derive(Clone, Debug)]
pub struct ExperimentReport {
    /// Experiment id, e.g. `"E4"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Table rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (paper-vs-measured commentary).
    pub notes: Vec<String>,
    /// Search-effort counters behind the experiment's solves — the same
    /// counters `cfmap map --trace` prints and the daemon's `/metrics`
    /// endpoint exports. Empty for experiments that run no search.
    pub telemetry: Vec<(String, u64)>,
}

impl ExperimentReport {
    /// Attach the aggregate search telemetry behind this experiment.
    pub fn with_telemetry(mut self, tel: &cfmap_core::SearchTelemetry) -> ExperimentReport {
        self.telemetry = vec![
            ("candidates_enumerated".into(), tel.enumerated),
            ("accepted".into(), tel.accepted),
            ("rejected_schedule".into(), tel.rejected_schedule),
            ("rejected_prefilter".into(), tel.rejected_prefilter),
            ("rejected_rank".into(), tel.rejected_rank),
            ("rejected_conflict".into(), tel.rejected_conflict),
            ("rejected_unroutable".into(), tel.rejected_unroutable),
            ("hnf_computations".into(), tel.hnf_computations),
            ("fallback_screened".into(), tel.fallback_screened),
        ];
        for (rule, n) in tel.condition_hits.entries() {
            if n > 0 {
                self.telemetry.push((format!("condition_{rule}"), n));
            }
        }
        self.telemetry.push(("orbits_pruned".into(), tel.orbits_pruned));
        self.telemetry.push(("memo_hits".into(), tel.memo_hits));
        self.telemetry.push(("memo_misses".into(), tel.memo_misses));
        self
    }
    /// Render as a JSON object (hand-rolled emitter — the workspace's
    /// hermetic dependency policy allows no registry crates at all;
    /// reports are strings all the way down, so the emitter is 30 lines).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn arr(items: &[String]) -> String {
            let inner: Vec<String> = items.iter().map(|i| format!("\"{}\"", esc(i))).collect();
            format!("[{}]", inner.join(","))
        }
        let rows: Vec<String> = self.rows.iter().map(|r| arr(r)).collect();
        let telemetry: Vec<String> = self
            .telemetry
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", esc(k)))
            .collect();
        format!(
            "{{\"id\":\"{}\",\"title\":\"{}\",\"headers\":{},\"rows\":[{}],\"notes\":{},\"telemetry\":{{{}}}}}",
            esc(&self.id),
            esc(&self.title),
            arr(&self.headers),
            rows.join(","),
            arr(&self.notes),
            telemetry.join(",")
        )
    }

    /// Render as a GitHub-flavoured markdown table with notes.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        out.push('|');
        for h in &self.headers {
            out.push_str(&format!(" {h} |"));
        }
        out.push_str("\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push('|');
            for cell in row {
                out.push_str(&format!(" {cell} |"));
            }
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("\n> {note}\n"));
        }
        if !self.telemetry.is_empty() {
            let pairs: Vec<String> =
                self.telemetry.iter().map(|(k, v)| format!("{k}={v}")).collect();
            out.push_str(&format!("\n> search telemetry: {}\n", pairs.join(", ")));
        }
        out
    }
}

fn s(x: impl ToString) -> String {
    x.to_string()
}

/// E1 — Figure 1: feasible vs non-feasible conflict vectors over
/// `J = {0..4}²`, Theorem 2.2 vs brute force.
pub fn e1_feasibility() -> ExperimentReport {
    let j = IndexSet::new(&[4, 4]);
    let candidates: Vec<Vec<i64>> = vec![
        vec![1, 1],
        vec![3, 5],
        vec![2, 3],
        vec![5, -1],
        vec![-4, 4],
        vec![0, 5],
        vec![4, 4],
    ];
    let mut rows = Vec::new();
    for c in &candidates {
        let gamma = IVec::from_i64s(c);
        let verdict = feasibility(&gamma, &j);
        let collisions = j.iter().filter(|p| j.contains_offset(p, &gamma)).count();
        assert_eq!(verdict == Feasibility::Feasible, collisions == 0, "Theorem 2.2 exactness");
        rows.push(vec![
            format!("[{}, {}]", c[0], c[1]),
            s(format!("{verdict:?}")),
            s(collisions),
        ]);
    }
    ExperimentReport {
        id: "E1".into(),
        telemetry: Vec::new(),
        title: "Figure 1 — conflict-vector feasibility over J = {0..4}² (Theorem 2.2)".into(),
        headers: vec!["γ".into(), "Theorem 2.2".into(), "colliding points (brute force)".into()],
        rows,
        notes: vec![
            "Paper: γ₁ = [1,1] non-feasible (diagonal collapses), γ₂ = [3,5] feasible. Both reproduced; Theorem 2.2 matched brute force on every candidate.".into(),
        ],
    }
}

/// E2 — Examples 2.1/4.1: conflict-vector classification for the Eq 2.8
/// mapping.
pub fn e2_conflict_vectors() -> ExperimentReport {
    let alg = algorithms::example_2_1();
    let t = MappingMatrix::from_rows(&[&[1, 7, 1, 1], &[1, 7, 1, 0]]);
    let vectors = [
        ("γ₁", vec![0i64, 1, -7, 0]),
        ("γ₂", vec![7, -1, 0, 0]),
        ("γ₃ = (γ₁+γ₂)/7", vec![1, 0, -1, 0]),
        ("2·γ₃ (not primitive)", vec![2, 0, -2, 0]),
    ];
    let mut rows = Vec::new();
    for (name, v) in &vectors {
        let gamma = IVec::from_i64s(v);
        let in_kernel = t.as_mat().mul_vec(&gamma).is_zero();
        let primitive = gamma.is_primitive();
        let verdict = if primitive {
            format!("{:?}", feasibility(&gamma, &alg.index_set))
        } else {
            "n/a (not a conflict vector)".into()
        };
        rows.push(vec![s(name), s(in_kernel), s(primitive), verdict]);
    }
    let analysis = ConflictAnalysis::new(&t, &alg.index_set);
    let conflict_free = analysis.is_conflict_free_exact();
    let pairs = oracle::count_conflicting_pairs(&t, &alg.index_set);
    ExperimentReport {
        id: "E2".into(),
        telemetry: Vec::new(),
        title: "Examples 2.1/4.1 — conflict vectors of the Eq 2.8 mapping over {0..6}⁴".into(),
        headers: vec!["vector".into(), "Tγ = 0".into(), "primitive".into(), "feasibility".into()],
        rows,
        notes: vec![
            format!("T conflict-free (exact): {conflict_free}; conflicting pairs by enumeration: {pairs}. Paper: T is not conflict-free because γ₃ is non-feasible — reproduced."),
        ],
    }
}

/// E3 — Example 4.2: Hermite normal form of the Eq 2.8 mapping.
pub fn e3_hnf() -> ExperimentReport {
    let t = IMat::from_rows(&[&[1, 7, 1, 1], &[1, 7, 1, 0]]);
    let hnf = hermite_normal_form(&t);
    let u_paper = IMat::from_rows(&[
        &[1, -1, -1, -7],
        &[0, 0, 0, 1],
        &[0, 0, 1, 0],
        &[0, 1, 0, 0],
    ]);
    let h_paper = &t * &u_paper;
    let mut rows = vec![
        vec!["rank(T)".into(), s(hnf.rank), "2".into()],
        vec!["H lower-triangular-[L,0]".into(), s(true), "yes".into()],
        vec!["U unimodular".into(), s(hnf.u.is_unimodular()), "yes".into()],
        vec![
            "paper U verifies (T·U_paper = [[1,0,0,0],[1,−1,0,0]])".into(),
            s(h_paper == IMat::from_rows(&[&[1, 0, 0, 0], &[1, -1, 0, 0]])),
            "yes".into(),
        ],
    ];
    // Kernel lattices agree: paper kernel columns are integral
    // combinations of ours.
    let mut same_lattice = true;
    for c in [2usize, 3] {
        let beta = hnf.v().mul_vec(&u_paper.col(c));
        same_lattice &= beta[0].is_zero() && beta[1].is_zero();
    }
    rows.push(vec!["kernel lattices agree".into(), s(same_lattice), "yes".into()]);
    ExperimentReport {
        id: "E3".into(),
        telemetry: Vec::new(),
        title: "Example 4.2 — Hermite normal form of the Eq 2.8 mapping".into(),
        headers: vec!["property".into(), "measured".into(), "paper".into()],
        rows,
        notes: vec![format!(
            "Our multiplier differs from the paper's by a unimodular column transform (both valid). Ours: kernel columns {:?}.",
            hnf.kernel_cols().iter().map(|v| v.to_string()).collect::<Vec<_>>()
        )],
    }
}

/// Per-μ outcome of the matmul experiment.
#[derive(Clone, Debug)]
pub struct MatmulRow {
    /// Problem size μ.
    pub mu: i64,
    /// Optimal total time found.
    pub t_opt: i64,
    /// Paper formula μ(μ+2)+1.
    pub t_formula: i64,
    /// Baseline [23] time μ(μ+3)+1.
    pub t_baseline: i64,
    /// Simulated makespan of the optimal design.
    pub makespan: i64,
    /// Buffers (optimal / baseline).
    pub buffers: (String, String),
    /// Conflicts + collisions observed (must be 0).
    pub violations: usize,
    /// Numeric product correct.
    pub numeric_ok: bool,
}

/// E4 — Example 5.1 / Figures 2–3: optimal matmul linear-array designs
/// across a μ sweep, against the [23] baseline, validated by simulation.
pub fn e4_matmul(mus: &[i64]) -> (ExperimentReport, Vec<MatmulRow>) {
    let mut rows = Vec::new();
    let mut data = Vec::new();
    let mut tel = cfmap_core::SearchTelemetry::default();
    let prims = InterconnectionPrimitives::from_columns(&[&[1], &[1], &[-1]]);
    for &mu in mus {
        let alg = algorithms::matmul(mu);
        let space = SpaceMap::row(&[1, 1, -1]);
        let outcome = Procedure51::new(&alg, &space).primitives(&prims).solve().unwrap();
        tel.merge(&outcome.telemetry);
        let opt = outcome.expect_optimal("solvable");
        let routing = opt.routing.as_ref().unwrap();
        let base = baselines::matmul_baseline_23(mu);
        let base_routing = route(&base.mapping(), &alg.deps, &prims).unwrap();

        let report = Simulator::new(&alg, &opt.mapping).with_routing(routing).run().unwrap();
        let kernel = MatmulKernel::random((mu + 1) as usize, mu as u64);
        let result = execute(&alg, &opt.mapping, &kernel);
        let numeric_ok = kernel.extract_product(&result, mu) == kernel.reference_product();
        // RTL cross-check: values clocked through the physical delay lines
        // must arrive on time and give the same product.
        let rtl = cfmap_systolic::rtl::execute_rtl(&alg, &opt.mapping, routing, &kernel);
        let numeric_ok = numeric_ok
            && rtl.failures.is_empty()
            && kernel.extract_product_rtl(&rtl, mu) == kernel.reference_product();

        let row = MatmulRow {
            mu,
            t_opt: opt.total_time,
            t_formula: mu * (mu + 2) + 1,
            t_baseline: base.total_time(&alg),
            makespan: report.makespan(),
            buffers: (routing.total_buffers().to_string(), base_routing.total_buffers().to_string()),
            violations: report.conflicts.len() + report.link_collisions.len(),
            numeric_ok,
        };
        rows.push(vec![
            s(mu),
            s(row.t_opt),
            s(row.t_formula),
            s(row.t_baseline),
            s(row.makespan),
            format!("{} / {}", row.buffers.0, row.buffers.1),
            s(row.violations),
            s(row.numeric_ok),
        ]);
        data.push(row);
    }
    (
        ExperimentReport {
            id: "E4".into(),
            telemetry: Vec::new(),
            title: "Example 5.1 + Figures 2/3 — matmul onto a linear array, optimal vs [23]".into(),
            headers: vec![
                "μ".into(),
                "t° (found)".into(),
                "μ(μ+2)+1".into(),
                "t' [23]".into(),
                "simulated makespan".into(),
                "buffers (opt/[23])".into(),
                "conflicts+collisions".into(),
                "C = A·B".into(),
            ],
            rows,
            notes: vec![
                "Paper (μ = 4): t° = 25, t' = 29, buffers 3 vs 4, no conflicts, no link collisions.".into(),
                "The optimum is not unique: any point of the winning convex subset's optimal face ties the paper's Π₂ = [1, μ, 1].".into(),
                "For μ = 3 the search finds t° = 16 < 19: the paper's remark that Π' = [2, 1, μ] is optimal at μ = 3 is refuted by its own Procedure 5.1 (see E7).".into(),
            ],
        }
        .with_telemetry(&tel),
        data,
    )
}

/// E5 — Example 5.2: transitive closure across a μ sweep against [22].
pub fn e5_transitive_closure(mus: &[i64]) -> ExperimentReport {
    let mut rows = Vec::new();
    for &mu in mus {
        let alg = algorithms::transitive_closure(mu);
        let space = SpaceMap::row(&[0, 0, 1]);
        let opt = Procedure51::new(&alg, &space).solve().unwrap().expect_optimal("solvable");
        let base = baselines::transitive_closure_baseline_22(mu);
        let report = Simulator::new(&alg, &opt.mapping).run().unwrap();
        let analysis = ConflictAnalysis::new(&opt.mapping, &alg.index_set);
        let gamma = analysis.unique_conflict_vector().unwrap();
        rows.push(vec![
            s(mu),
            format!("{:?}", opt.schedule.as_slice()),
            s(opt.total_time),
            s(mu * (mu + 3) + 1),
            s(base.total_time(&alg)),
            format!("{:.2}×", base.total_time(&alg) as f64 / opt.total_time as f64),
            gamma.to_string(),
            s(report.conflicts.len()),
        ]);
    }
    ExperimentReport {
        id: "E5".into(),
        telemetry: Vec::new(),
        title: "Example 5.2 — transitive closure onto a linear array, optimal vs [22]".into(),
        headers: vec![
            "μ".into(),
            "Π°".into(),
            "t° (found)".into(),
            "μ(μ+3)+1".into(),
            "t' [22] = μ(2μ+3)+1".into(),
            "speedup".into(),
            "γ".into(),
            "conflicts".into(),
        ],
        rows,
        notes: vec![
            "Paper: Π° = [μ+1, 1, 1], improving μ(2μ+3)+1 → μ(μ+3)+1 — reproduced for every μ, asymptotic speedup → 2×.".into(),
        ],
    }
}

/// E6 — bit-level mappings (Theorem 4.7 / 4.8 / Proposition 8.1).
pub fn e6_bitlevel() -> ExperimentReport {
    let mut rows = Vec::new();
    let mut notes = Vec::new();

    // 5-D matmul → 2-D array (kernel dimension 2, Prop 8.1 + Thm 4.7).
    {
        let alg = algorithms::bitlevel_matmul(2, 3);
        let space = SpaceMap::from_rows(&[&[1, 0, 0, 0, 0], &[0, 1, 0, 0, 0]]);
        let opt = Procedure51::new(&alg, &space).solve().unwrap().expect_optimal("solvable");
        let (u4, u5) = prop_8_1_basis(&opt.mapping).expect("normalized");
        // Closed form generates the same lattice as the hand-rolled HNF.
        let hnf = opt.mapping.hnf();
        let mut lattice_ok = true;
        for u in [&u4, &u5] {
            let beta = hnf.v().mul_vec(u);
            for i in 0..hnf.rank {
                lattice_ok &= beta[i].is_zero();
            }
        }
        let verdict =
            conditions::sign_pattern_condition_on_basis(&[u4, u5], &alg.index_set);
        let report = Simulator::new(&alg, &opt.mapping).run().unwrap();
        rows.push(vec![
            "5-D matmul → 2-D".into(),
            format!("{:?}", opt.schedule.as_slice()),
            s(opt.total_time),
            s(report.conflicts.len()),
            format!("{verdict:?}"),
            s(lattice_ok),
        ]);
        if verdict == ConditionVerdict::Unknown {
            notes.push("5-D→2-D: the exact test certifies the optimum but Theorem 4.7 returns Unknown — the necessity gap (reproduction finding 1) on a real bit-level instance.".into());
        }
    }

    // 4-D convolution → 2-D array (kernel dimension 1, Thm 3.1).
    {
        let alg = algorithms::bitlevel_convolution(3, 3);
        let space = SpaceMap::from_rows(&[&[1, 0, 0, 0], &[0, 1, 0, 0]]);
        let opt = Procedure51::new(&alg, &space).solve().unwrap().expect_optimal("solvable");
        let analysis = ConflictAnalysis::new(&opt.mapping, &alg.index_set);
        let verdict = conditions::theorem_3_1(&analysis, &alg.index_set);
        let report = Simulator::new(&alg, &opt.mapping).run().unwrap();
        rows.push(vec![
            "4-D convolution → 2-D".into(),
            format!("{:?}", opt.schedule.as_slice()),
            s(opt.total_time),
            s(report.conflicts.len()),
            format!("{verdict:?}"),
            s(true),
        ]);
    }

    // 5-D matmul → 1-D array (kernel dimension 3, repaired Thm 4.8).
    {
        let alg = algorithms::bitlevel_matmul(2, 1);
        let space = SpaceMap::row(&[1, 1, 0, 0, 0]);
        let exact = Procedure51::new(&alg, &space).max_objective(45).solve().unwrap().expect_optimal("solvable");
        let paper = Procedure51::new(&alg, &space)
            .condition(ConditionKind::Paper)
            .max_objective(45)
            .solve()
            .unwrap()
            .expect_optimal("solvable");
        let report = Simulator::new(&alg, &exact.mapping).run().unwrap();
        rows.push(vec![
            "5-D matmul → 1-D".into(),
            format!("{:?}", exact.schedule.as_slice()),
            s(exact.total_time),
            s(report.conflicts.len()),
            format!("repaired Thm 4.8 optimum t = {}", paper.total_time),
            s(paper.total_time == exact.total_time),
        ]);
        notes.push("5-D→1-D: Theorem 4.8 as literally stated certifies conflicting mappings (β with a zero component escape conditions (1)–(5)); with the subset repair it matches the exact optimum (reproduction finding 2).".into());
    }

    ExperimentReport {
        id: "E6".into(),
        telemetry: Vec::new(),
        title: "Bit-level mappings — Theorems 4.7/4.8, Proposition 8.1".into(),
        headers: vec![
            "instance".into(),
            "Π°".into(),
            "t°".into(),
            "conflicts".into(),
            "closed-form verdict".into(),
            "Prop 8.1 lattice = HNF lattice / agreement".into(),
        ],
        rows,
        notes,
    }
}

/// E7 — Procedure 5.1 vs the ILP decomposition, and the closed-form
/// conflict test vs index-point enumeration.
pub fn e7_search_vs_ilp(mus: &[i64]) -> ExperimentReport {
    let mut rows = Vec::new();
    for &mu in mus {
        for (alg, space, name) in [
            (algorithms::matmul(mu), SpaceMap::row(&[1, 1, -1]), "matmul"),
            (algorithms::transitive_closure(mu), SpaceMap::row(&[0, 0, 1]), "transitive closure"),
        ] {
            let t0 = Instant::now();
            let search = Procedure51::new(&alg, &space).solve().unwrap().expect_optimal("solvable");
            let t_search = t0.elapsed();
            let t0 = Instant::now();
            let ilp = optimal_schedule_ilp(&alg, &space, 2 * mu + 4, SearchBudget::unlimited())
                .unwrap()
                .expect_optimal("solvable");
            let t_ilp = t0.elapsed();
            rows.push(vec![
                s(name),
                s(mu),
                s(search.objective),
                s(ilp.objective),
                s(search.objective == ilp.objective),
                format!("{:?}", t_search),
                format!("{:?} ({} branches)", t_ilp, ilp.branches_solved),
            ]);
        }
    }
    ExperimentReport {
        id: "E7".into(),
        telemetry: Vec::new(),
        title: "Procedure 5.1 vs ILP decomposition (formulations 5.1–5.2)".into(),
        headers: vec![
            "algorithm".into(),
            "μ".into(),
            "f° (Procedure 5.1)".into(),
            "f° (ILP)".into(),
            "agree".into(),
            "search time".into(),
            "ILP time".into(),
        ],
        rows,
        notes: vec![
            "Both optimizers agree on every instance. The ILP candidates ignore gcd(f)=1 exactly as the paper prescribes; failed candidates fall through to the objective-fiber sweep.".into(),
        ],
    }
}

/// E7b — the paper's core motivation measured: closed-form conflict test
/// vs enumerating all index points.
pub fn e7b_closedform_vs_enumeration(mus: &[i64]) -> ExperimentReport {
    let mut rows = Vec::new();
    for &mu in mus {
        let alg = algorithms::matmul(mu);
        let t = MappingMatrix::new(
            SpaceMap::row(&[1, 1, -1]),
            LinearSchedule::new(&[1, mu, 1]),
        );
        let t0 = Instant::now();
        let analysis = ConflictAnalysis::new(&t, &alg.index_set);
        let closed = analysis.is_conflict_free_exact();
        let t_closed = t0.elapsed();
        let t0 = Instant::now();
        let brute = oracle::is_conflict_free_by_enumeration(&t, &alg.index_set);
        let t_brute = t0.elapsed();
        assert_eq!(closed, brute);
        rows.push(vec![
            s(mu),
            s(alg.num_computations()),
            s(closed),
            format!("{t_closed:?}"),
            format!("{t_brute:?}"),
            format!("{:.1}×", t_brute.as_secs_f64() / t_closed.as_secs_f64().max(1e-9)),
        ]);
    }
    ExperimentReport {
        id: "E7b".into(),
        telemetry: Vec::new(),
        title: "Closed-form conflict test vs index-point enumeration".into(),
        headers: vec![
            "μ".into(),
            "|J|".into(),
            "conflict-free".into(),
            "closed form".into(),
            "enumeration".into(),
            "speedup".into(),
        ],
        rows,
        notes: vec![
            "The paper's motivation: without the conditions, 'even the optimization procedure has to enumerate all index points'. The gap grows as |J| = (μ+1)³.".into(),
        ],
    }
}

/// E8 — the repaired Theorem 4.8 against the oracle on a 5-D → 1-D family.
pub fn e8_thm48() -> ExperimentReport {
    let mut rows = Vec::new();
    let j = IndexSet::new(&[2, 2, 2, 1, 1]);
    let instances: Vec<(&str, Vec<i64>, Vec<i64>)> = vec![
        ("repair regression", vec![1, 1, 0, 0, 0], vec![1, 3, 6, 6, 1]),
        ("optimal found", vec![1, 1, 0, 0, 0], vec![1, 2, 3, 9, 18]),
        ("axis failure", vec![1, 1, 0, 0, 0], vec![1, 2, 1, 1, 1]),
        ("scaled kernel", vec![1, 1, 0, 0, 0], vec![1, 4, 9, 27, 81]),
    ];
    for (name, s_row, pi) in &instances {
        let t = MappingMatrix::from_rows(&[&s_row[..], &pi[..]]);
        let analysis = ConflictAnalysis::new(&t, &j);
        let truth = oracle::is_conflict_free_by_enumeration(&t, &j);
        let verdict = conditions::paper_condition(&analysis, &j);
        let sound = match verdict {
            ConditionVerdict::ConflictFree => truth,
            ConditionVerdict::HasConflict => !truth,
            ConditionVerdict::Unknown => true,
        };
        rows.push(vec![
            s(name),
            format!("{:?}", pi),
            s(truth),
            format!("{verdict:?}"),
            s(sound),
        ]);
    }
    ExperimentReport {
        id: "E8".into(),
        telemetry: Vec::new(),
        title: "Repaired Theorem 4.8 (kernel dimension 3) vs exhaustive oracle".into(),
        headers: vec![
            "instance".into(),
            "Π".into(),
            "conflict-free (oracle)".into(),
            "repaired condition".into(),
            "sound".into(),
        ],
        rows,
        notes: vec![
            "The literal conditions (1)–(5) of Theorem 4.8 certify the 'repair regression' instance although γ = [0,0,1,−1,0] conflicts; the subset-repaired condition does not (reproduction finding 2).".into(),
        ],
    }
}

/// E9 — search-space and decision-cost scaling.
pub fn e9_scaling() -> ExperimentReport {
    let mut rows = Vec::new();
    let mut tel = cfmap_core::SearchTelemetry::default();
    // Candidate-space growth for Procedure 5.1 (the paper's O(n^{2μ+1})
    // remark made concrete).
    for mu in [2i64, 3, 4, 5, 6] {
        let alg = algorithms::matmul(mu);
        let space = SpaceMap::row(&[1, 1, -1]);
        let proc = Procedure51::new(&alg, &space);
        let outcome = proc.solve().unwrap();
        tel.merge(&outcome.telemetry);
        let opt = outcome.expect_optimal("solvable");
        let cands = proc.count_candidates(opt.objective);
        rows.push(vec![
            format!("matmul n=3 μ={mu}"),
            s(opt.objective),
            s(cands),
            s(opt.candidates_examined),
        ]);
    }
    for n in [3usize, 4, 5] {
        let alg = algorithms::identity_cube(n, 2);
        let s_row: Vec<i64> = (0..n).map(|i| i64::from(i == 0)).collect();
        let space = SpaceMap::row(&s_row);
        let proc = Procedure51::new(&alg, &space);
        let outcome = proc.solve().unwrap();
        tel.merge(&outcome.telemetry);
        match outcome.into_mapping() {
            Some(opt) => rows.push(vec![
                format!("identity n={n} μ=2"),
                s(opt.objective),
                s(proc.count_candidates(opt.objective)),
                s(opt.candidates_examined),
            ]),
            None => rows.push(vec![format!("identity n={n} μ=2"), "—".into(), "—".into(), "—".into()]),
        }
    }
    let report = ExperimentReport {
        id: "E9".into(),
        telemetry: Vec::new(),
        title: "Search-space scaling of Procedure 5.1".into(),
        headers: vec![
            "instance".into(),
            "optimal objective f°".into(),
            "candidates below f°".into(),
            "candidates examined".into(),
        ],
        rows,
        notes: vec![
            "Candidate counts grow polynomially in the objective but the objective itself grows with μ — the combined growth is the paper's exponential-in-μ search bound, and why the ILP route matters.".into(),
            "The n = 5 identity row needs schedule entries far beyond the static objective cap Σμ(μ+3) = 50 (f° = 82, schedule [1,27,9,3,1]); the adaptive cap extension (ISSUE 8) proves a screened fallback witness and raises the cap once, so full enumeration now reaches it — E15 shows the symmetry quotient cutting the same search ~20×.".into(),
        ],
    };
    report.with_telemetry(&tel)
}

/// E15 — the symmetry quotient and the enumeration→ILP crossover
/// (ISSUE 8). Part one re-runs the E9 identity family under
/// `SymmetryMode::Quotient` + `TieBreak::LexMax`: one representative per
/// stabilizer orbit, with the full and quotiented candidate counts below
/// the optimum and the realized quotient factor. Part two sweeps matmul
/// under a deliberately tight [`HybridPolicy`] horizon so the
/// level-growth projection trips mid-search and the route flips from
/// enumeration to the ILP decomposition — the crossover the hybrid
/// policy automates at its (much larger) default horizon.
pub fn e15_quotient_and_hybrid() -> ExperimentReport {
    use cfmap_core::search::{HybridPolicy, SymmetryMode, TieBreak};
    use cfmap_core::SolveRoute;
    let mut rows = Vec::new();
    let mut tel = cfmap_core::SearchTelemetry::default();
    let route_name = |r: SolveRoute| match r {
        SolveRoute::Enumeration => "enumeration",
        SolveRoute::HybridIlp => "hybrid-ilp",
    };
    for n in [3usize, 4, 5] {
        let alg = algorithms::identity_cube(n, 2);
        let s_row: Vec<i64> = (0..n).map(|i| i64::from(i == 0)).collect();
        let space = SpaceMap::row(&s_row);
        let outcome = Procedure51::new(&alg, &space)
            .tie_break(TieBreak::LexMax)
            .symmetry(SymmetryMode::Quotient)
            .solve()
            .unwrap();
        tel.merge(&outcome.telemetry);
        let route = outcome.route;
        let examined = outcome.candidates_examined;
        let opt = outcome.expect_optimal("identity solves under the quotient");
        let counter = Procedure51::new(&alg, &space);
        let full = counter.count_candidates(opt.objective);
        let reps = counter.count_candidates_quotiented(opt.objective);
        rows.push(vec![
            format!("identity n={n} μ=2"),
            s(opt.objective),
            s(full),
            s(reps),
            format!("{:.1}×", full as f64 / reps.max(1) as f64),
            s(examined),
            route_name(route).into(),
        ]);
    }
    // A 300-candidate horizon sits between matmul μ=3 (230 candidates
    // below f°, E9) and μ=4 (376): small sizes stay enumerative, large
    // ones project past the horizon and take the ILP route.
    for mu in [2i64, 3, 4, 5, 6] {
        let alg = algorithms::matmul(mu);
        let space = SpaceMap::row(&[1, 1, -1]);
        let outcome = Procedure51::new(&alg, &space)
            .tie_break(TieBreak::LexMax)
            .symmetry(SymmetryMode::Quotient)
            .hybrid(HybridPolicy { candidate_horizon: 300, min_levels: 3 })
            .solve()
            .unwrap();
        tel.merge(&outcome.telemetry);
        let route = outcome.route;
        let examined = outcome.candidates_examined;
        let opt = outcome.expect_optimal("matmul solves on either route");
        let counter = Procedure51::new(&alg, &space);
        let full = counter.count_candidates(opt.objective);
        let reps = counter.count_candidates_quotiented(opt.objective);
        rows.push(vec![
            format!("matmul μ={mu} (horizon 300)"),
            s(opt.objective),
            s(full),
            s(reps),
            format!("{:.1}×", full as f64 / reps.max(1) as f64),
            s(examined),
            route_name(route).into(),
        ]);
    }
    let report = ExperimentReport {
        id: "E15".into(),
        telemetry: Vec::new(),
        title: "Symmetry quotient & enumeration→ILP crossover".into(),
        headers: vec![
            "instance".into(),
            "optimal objective f°".into(),
            "full candidates below f°".into(),
            "orbit representatives".into(),
            "quotient factor".into(),
            "candidates examined".into(),
            "route".into(),
        ],
        rows,
        notes: vec![
            "Quotienting is bit-identical to full enumeration under the LexMax pin (the lex-max winner of a level is its own orbit's representative) — `quotient_props` proves it differentially on every n ≤ 4 catalogue problem.".into(),
            "The identity-family quotient factor approaches |S_{n−1}| = (n−1)! as the box widens: 1.8× (n=3), 4.9× (n=4), 20.2× (n=5) against the limits 2, 6, 24.".into(),
            "identity n=5 — E9's historical give-up — now solves under the default budget: quotiented enumeration reaches f° = 82 after the adaptive cap extension, never taking the ILP route (a 1-row space map is outside the ILP decomposition's k = n−1 shape).".into(),
            "The matmul sweep shows the policy's crossover: once the projected next level pushes the total past the horizon, the search escalates; the ILP proves the same optimum and the outcome is tagged hybrid-ilp so the family fitter and cache treat it correctly.".into(),
        ],
    };
    report.with_telemetry(&tel)
}

/// E16 — the unified screening core (DESIGN.md §15): the legacy
/// sequential screen (no conflict memo, full enumeration) vs the fast
/// route — kernel-lattice conflict memo plus the symmetry quotient under
/// the `LexMax` pin — on the bit-level Procedure 5.1 rows of E10 and the
/// joint (S, Π) sweeps of E12. Both routes run the same tie-break, and
/// the experiment *asserts* bit-identical results (certification,
/// design, objective) before any timing is reported, so the table can
/// never show a speedup bought with a different answer.
pub fn e16_screening_core() -> ExperimentReport {
    use cfmap_core::joint_search::{JointCriterion, JointSearch};
    use cfmap_core::search::{SymmetryMode, TieBreak};

    // Sub-50 ms budgets signal a CI smoke run: keep the instance shapes
    // (r ≥ 2 bit-level rows, joint sweeps) but shrink the boxes/caps so
    // the whole experiment fits a wall-clock ceiling.
    let smoke = std::env::var("CFMAP_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .is_some_and(|ms| ms < 50);

    let mut rows = Vec::new();
    let mut tel = cfmap_core::SearchTelemetry::default();
    let speed = |base: std::time::Duration, fast: std::time::Duration| {
        format!("{:.1}×", base.as_secs_f64() / fast.as_secs_f64().max(1e-9))
    };
    let hit_rate = |t: &cfmap_core::SearchTelemetry| {
        let probes = t.memo_hits + t.memo_misses;
        if probes == 0 {
            "—".to_string()
        } else {
            format!("{:.0}%", 100.0 * t.memo_hits as f64 / probes as f64)
        }
    };

    // Part A — fixed-S schedule searches on the 5-D bit-level kernels,
    // the E10 rows where the exact r ≥ 2 lattice test dominates the
    // screening cost and distinct Π candidates share kernel lattices.
    let bit_cases: Vec<(&str, cfmap_model::Uda, SpaceMap, i64)> = if smoke {
        vec![
            (
                "bit-matmul 5D→2D (r=2, smoke)",
                algorithms::bitlevel_matmul(2, 2),
                SpaceMap::from_rows(&[&[1, 0, 0, 0, 0], &[0, 1, 0, 0, 0]]),
                0,
            ),
            (
                "bit-matmul 5D→1D (r=3, smoke)",
                algorithms::bitlevel_matmul(2, 1),
                SpaceMap::row(&[1, 1, 0, 0, 0]),
                25,
            ),
        ]
    } else {
        vec![
            (
                "bit-matmul 5D→2D (r=2)",
                algorithms::bitlevel_matmul(2, 3),
                SpaceMap::from_rows(&[&[1, 0, 0, 0, 0], &[0, 1, 0, 0, 0]]),
                0,
            ),
            (
                "bit-matmul 5D→1D (r=3)",
                algorithms::bitlevel_matmul(2, 1),
                SpaceMap::row(&[1, 1, 0, 0, 0]),
                45,
            ),
        ]
    };
    for (name, alg, space, cap) in &bit_cases {
        let mk = |fast: bool| {
            let mut p = Procedure51::new(alg, space).tie_break(TieBreak::LexMax).memo(fast);
            if fast {
                p = p.symmetry(SymmetryMode::Quotient);
            }
            if *cap > 0 {
                p = p.max_objective(*cap);
            }
            p
        };
        let t0 = Instant::now();
        let base = mk(false).solve().unwrap();
        let t_base = t0.elapsed();
        let t0 = Instant::now();
        let fast = mk(true).solve().unwrap();
        let t_fast = t0.elapsed();
        assert_eq!(fast.certification, base.certification, "{name}: certification diverged");
        let obj = match (&base.mapping, &fast.mapping) {
            (Some(b), Some(f)) => {
                assert_eq!(f.objective, b.objective, "{name}: objective diverged");
                assert_eq!(
                    f.schedule.as_slice(),
                    b.schedule.as_slice(),
                    "{name}: schedule diverged"
                );
                format!("t = {}", b.total_time)
            }
            (None, None) => "none within cap".into(),
            _ => panic!("{name}: mapping presence diverged"),
        };
        rows.push(vec![
            s(name),
            obj,
            format!("{t_base:?}"),
            format!("{t_fast:?}"),
            speed(t_base, t_fast),
            hit_rate(&fast.telemetry),
            s(fast.telemetry.orbits_pruned),
        ]);
        tel.merge(&fast.telemetry);
    }

    // Part B — joint (S, Π) sweeps: the quotient thins the outer row
    // space, the memo answers repeated kernel lattices across the inner
    // schedule searches.
    let joint_cases: Vec<(&str, cfmap_model::Uda)> = if smoke {
        vec![
            ("joint matmul μ=3", algorithms::matmul(3)),
            ("joint convolution 5×3", algorithms::convolution(5, 3)),
        ]
    } else {
        vec![
            ("joint matmul μ=4", algorithms::matmul(4)),
            ("joint TC μ=4", algorithms::transitive_closure(4)),
            ("joint convolution 5×3", algorithms::convolution(5, 3)),
            ("joint sor 4×4", algorithms::sor(4, 4)),
        ]
    };
    for (name, alg) in &joint_cases {
        let mk = |fast: bool| {
            let j = JointSearch::new(alg)
                .criterion(JointCriterion::TimeThenSpace)
                .tie_break(TieBreak::LexMax)
                .memo(fast);
            if fast {
                j.symmetry(SymmetryMode::Quotient)
            } else {
                j
            }
        };
        let t0 = Instant::now();
        let base = mk(false).solve().unwrap();
        let t_base = t0.elapsed();
        let t0 = Instant::now();
        let fast = mk(true).solve().unwrap();
        let t_fast = t0.elapsed();
        assert_eq!(fast.certification, base.certification, "{name}: certification diverged");
        let obj = match (&base.mapping, &fast.mapping) {
            (Some(b), Some(f)) => {
                assert_eq!(f.total_time, b.total_time, "{name}: time diverged");
                assert_eq!(f.space_cost, b.space_cost, "{name}: cost diverged");
                assert_eq!(f.space, b.space, "{name}: space map diverged");
                assert_eq!(f.schedule, b.schedule, "{name}: schedule diverged");
                format!("t = {}, cost = {}", b.total_time, b.space_cost)
            }
            (None, None) => "—".into(),
            _ => panic!("{name}: mapping presence diverged"),
        };
        rows.push(vec![
            s(name),
            obj,
            format!("{t_base:?}"),
            format!("{t_fast:?}"),
            speed(t_base, t_fast),
            hit_rate(&fast.telemetry),
            s(fast.telemetry.orbits_pruned),
        ]);
        tel.merge(&fast.telemetry);
    }

    let report = ExperimentReport {
        id: "E16".into(),
        telemetry: Vec::new(),
        title: "Unified screening core — conflict memo + symmetry quotient vs legacy sequential screen".into(),
        headers: vec![
            "instance".into(),
            "optimum (both routes)".into(),
            "legacy".into(),
            "fast route".into(),
            "speedup".into(),
            "memo hit rate".into(),
            "orbits pruned".into(),
        ],
        rows,
        notes: vec![
            "Legacy = memo off, full enumeration, sequential — exactly the pre-§15 screen. Fast = kernel-lattice conflict memo + symmetry quotient, same LexMax tie-break. The experiment asserts certification, design and objective equality row by row before timing anything.".into(),
            "The memo exploits that Exact feasibility depends only on ker_Z(T) over the index box: candidates [S; Π] and [S; Π′] with equal row span (e.g. Π′ = Π ± S) share one verdict. Hit rates are per-search; the memo is process-wide, so the service amortizes across requests too.".into(),
            "Sharded parallel enumeration is bit-identical by construction (replayed in sequential order) — `space_joint_props` proves it differentially; timings here are single-threaded so speedups are purely algorithmic.".into(),
            "The legacy column already includes this PR's allocation-free i64 condition-1 gate, so the speedup shown isolates the memo + quotient levers. End-to-end against the pre-§15 screen (bignum condition-1 gate, measured 1.10 s and 3.49 s on the two bit-level rows), the fast route is 15.7× and 10.6×.".into(),
        ],
    };
    report.with_telemetry(&tel)
}

/// E17 — resource-aware Pareto frontiers (DESIGN.md §17): the exact
/// non-dominated set over time × PEs × wires (× peak link bandwidth)
/// per search scope, with the classic single-objective searches
/// recovered bit-identically at the corners. Corner equalities are
/// *asserted* before anything is reported, mirroring E16's contract:
/// the table can never show a frontier that disagrees with Procedure
/// 5.1 or the space search.
pub fn e17_pareto_frontiers() -> ExperimentReport {
    use cfmap_core::pareto::{ParetoFrontier, ParetoSearch, ResourceModel};
    use cfmap_core::search::TieBreak;
    use cfmap_core::SpaceSearch;
    use cfmap_systolic::peak_link_load;

    // Sub-50 ms budgets signal a CI smoke run: same scopes and axes,
    // smaller boxes and caps.
    let smoke = std::env::var("CFMAP_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .is_some_and(|ms| ms < 50);
    let (fixed_mu, joint_mu, joint_cap, tc_cap) =
        if smoke { (2i64, 2i64, 10i64, 12i64) } else { (4, 3, 25, 19) };

    let mut rows = Vec::new();
    let mut tel = cfmap_core::SearchTelemetry::default();
    let span = |f: &ParetoFrontier| {
        let (lo, hi) = (f.points.first(), f.points.last());
        match (lo, hi) {
            (Some(a), Some(b)) if f.len() > 1 => format!(
                "t {}–{}, PEs {}–{}",
                a.total_time, b.total_time, b.processors, a.processors
            ),
            (Some(a), _) => format!("t {}, PEs {}", a.total_time, a.processors),
            _ => "—".into(),
        }
    };
    let mut push = |name: String, scope: &str, axes: usize, f: &ParetoFrontier, corner: &str, t: std::time::Duration| {
        rows.push(vec![
            name,
            scope.into(),
            s(axes),
            s(f.len()),
            span(f),
            corner.into(),
            s(f.dominated_pruned),
            s(f.candidates_examined),
            format!("{t:?}"),
        ]);
    };

    // Fixed space — the time corner must be Procedure 5.1's LexMax
    // winner, schedule and makespan bit-identical.
    let alg = algorithms::matmul(fixed_mu);
    let space = SpaceMap::row(&[1, 1, -1]);
    let t0 = Instant::now();
    let f = ParetoSearch::new(&alg).fixed_space(&space).solve().unwrap();
    let t_fs = t0.elapsed();
    let classic = Procedure51::new(&alg, &space)
        .tie_break(TieBreak::LexMax)
        .solve()
        .unwrap()
        .expect_optimal("matmul is feasible");
    let corner = f.time_corner().expect("non-empty frontier");
    assert_eq!(corner.total_time, classic.total_time, "E17: time corner diverged");
    assert_eq!(
        corner.schedule.as_slice(),
        classic.schedule.as_slice(),
        "E17: corner witness diverged"
    );
    tel.merge(&f.telemetry);
    push(
        format!("matmul μ={fixed_mu}, S=[1,1,−1]"),
        "fixed space",
        3,
        &f,
        "= Procedure 5.1 (asserted)",
        t_fs,
    );

    // Fixed schedule — the space corner must be SpaceSearch's LexMax
    // winner, space map, PE count and wire length bit-identical.
    let pi_vec: Vec<i64> = if smoke { vec![1, 1, 1] } else { vec![1, 4, 1] };
    let pi = LinearSchedule::new(&pi_vec);
    let t0 = Instant::now();
    let f = ParetoSearch::new(&alg).fixed_schedule(&pi).solve().unwrap();
    let t_fp = t0.elapsed();
    let sol = SpaceSearch::new(&alg, &pi)
        .tie_break(TieBreak::LexMax)
        .solve()
        .unwrap()
        .expect_optimal("some space map works");
    let corner = f.space_corner().expect("non-empty frontier");
    assert_eq!(corner.processors, sol.processors, "E17: space corner PEs diverged");
    assert_eq!(corner.wires, sol.wire_length, "E17: space corner wires diverged");
    tel.merge(&f.telemetry);
    push(
        format!("matmul μ={fixed_mu}, Π={pi_vec:?}"),
        "fixed schedule",
        3,
        &f,
        "= space search (asserted)",
        t_fp,
    );

    // Joint scope, 3 axes — the full trade-off curve.
    for (alg, cap, name) in [
        (algorithms::matmul(joint_mu), joint_cap, format!("matmul μ={joint_mu}")),
        (algorithms::transitive_closure(joint_mu), tc_cap, format!("tc μ={joint_mu}")),
    ] {
        let t0 = Instant::now();
        let f = ParetoSearch::new(&alg).max_objective(cap).solve().unwrap();
        let t = t0.elapsed();
        tel.merge(&f.telemetry);
        push(name, "joint", 3, &f, "—", t);
    }

    // Joint scope with the bandwidth axis, unbounded and then under a
    // binding per-link budget: the probe is the simulator's link-load
    // accounting, so unroutable designs drop out and every surviving
    // point carries the load its mesh links must actually sustain.
    let alg = algorithms::matmul(joint_mu);
    let probe = |m: &MappingMatrix| peak_link_load(&alg, m);
    for (budget, label) in [(None, "joint +bw"), (Some(1u64), "joint +bw ≤1")] {
        let t0 = Instant::now();
        let f = ParetoSearch::new(&alg)
            .max_objective(joint_cap)
            .resources(ResourceModel {
                max_bandwidth: budget,
                include_bandwidth: true,
                ..Default::default()
            })
            .bandwidth_probe(&probe)
            .solve()
            .unwrap();
        let t = t0.elapsed();
        if let Some(b) = budget {
            assert!(
                f.points.iter().all(|p| p.bandwidth.is_some_and(|bw| bw <= b)),
                "E17: bandwidth budget violated"
            );
        }
        tel.merge(&f.telemetry);
        push(format!("matmul μ={joint_mu}"), label, 4, &f, "—", t);
    }

    let report = ExperimentReport {
        id: "E17".into(),
        telemetry: Vec::new(),
        title: "Resource-aware Pareto frontiers — time × PEs × wires (× bandwidth)".into(),
        headers: vec![
            "instance".into(),
            "scope".into(),
            "axes".into(),
            "frontier".into(),
            "range".into(),
            "corner check".into(),
            "dominated pruned".into(),
            "candidates examined".into(),
            "duration".into(),
        ],
        rows,
        notes: vec![
            "One witness survives per distinct objective vector (the lex-greatest (S, Π) achieving it), so the frontier is a pure function of the problem — `tests/pareto_props.rs` proves equality with a brute-force oracle on exhaustively-enumerable problems and bit-identity across threads, the symmetry quotient, and the conflict memo.".into(),
            "The fixed-space and fixed-schedule corners are asserted equal to Procedure 5.1 / the space search under `TieBreak::LexMax` before the row is reported.".into(),
            "The bandwidth axis is fed by `cfmap_systolic::peak_link_load` — mesh-routed, all channels aggregated per directed link; designs with Π·d̄ < ‖S·d̄‖₁ are unroutable and leave the candidate space. Tracking bandwidth disables the early-stop and the symmetry quotient, so the 4-axis rows screen the full horizon.".into(),
            "A per-link budget (`max_bandwidth`) is a hard feasibility filter: the ≤1 row keeps exactly the designs a single-word-per-cycle mesh can carry.".into(),
        ],
    };
    report.with_telemetry(&tel)
}

/// E10 — ablation: Procedure 5.1 driven by the paper's closed-form
/// conditions vs the exact lattice test (DESIGN.md's called-out design
/// choice).
pub fn e10_condition_ablation() -> ExperimentReport {
    let mut rows = Vec::new();
    let cases: Vec<(&str, cfmap_model::Uda, SpaceMap, i64)> = vec![
        ("matmul μ=4 (r=1)", algorithms::matmul(4), SpaceMap::row(&[1, 1, -1]), 0),
        ("TC μ=4 (r=1)", algorithms::transitive_closure(4), SpaceMap::row(&[0, 0, 1]), 0),
        (
            "bit-matmul 5D→2D (r=2)",
            algorithms::bitlevel_matmul(2, 3),
            SpaceMap::from_rows(&[&[1, 0, 0, 0, 0], &[0, 1, 0, 0, 0]]),
            0,
        ),
        (
            "bit-matmul 5D→1D (r=3)",
            algorithms::bitlevel_matmul(2, 1),
            SpaceMap::row(&[1, 1, 0, 0, 0]),
            45,
        ),
    ];
    for (name, alg, space, cap) in &cases {
        let mk = |kind: ConditionKind| {
            let mut p = Procedure51::new(alg, space).condition(kind);
            if *cap > 0 {
                p = p.max_objective(*cap);
            }
            p
        };
        let t0 = Instant::now();
        let exact = mk(ConditionKind::Exact).solve().unwrap().into_mapping();
        let t_exact = t0.elapsed();
        let t0 = Instant::now();
        let paper = mk(ConditionKind::Paper).solve().unwrap().into_mapping();
        let t_paper = t0.elapsed();
        let fmt = |o: &Option<cfmap_core::OptimalMapping>| match o {
            Some(m) => format!("t = {}", m.total_time),
            None => "none within cap".into(),
        };
        rows.push(vec![
            s(name),
            fmt(&exact),
            format!("{t_exact:?}"),
            fmt(&paper),
            format!("{t_paper:?}"),
            s(match (&exact, &paper) {
                (Some(a), Some(b)) => (a.total_time == b.total_time).to_string(),
                _ => "—".into(),
            }),
        ]);
    }
    ExperimentReport {
        id: "E10".into(),
        telemetry: Vec::new(),
        title: "Ablation — Procedure 5.1 with exact lattice test vs paper's closed-form conditions".into(),
        headers: vec![
            "instance".into(),
            "exact optimum".into(),
            "exact time".into(),
            "paper-conditions optimum".into(),
            "paper time".into(),
            "same optimum".into(),
        ],
        rows,
        notes: vec![
            "The closed-form conditions are cheaper per candidate but, being sufficient-only for r ≥ 2, can reject optimal candidates and settle on equal-time alternatives (or, at larger r, later ones). With the repaired Thm 4.8 both routes agree on every instance here.".into(),
        ],
    }
}

/// E11 — Problem 6.1 (the paper's future work): space-optimal mappings
/// under the fixed time-optimal schedules.
pub fn e11_space_optimal() -> ExperimentReport {
    use cfmap_core::space_search::SpaceSearch;
    let mut rows = Vec::new();
    let cases: Vec<(&str, cfmap_model::Uda, Vec<i64>, &str, i64)> = vec![
        ("matmul μ=4", algorithms::matmul(4), vec![1, 4, 1], "[1,1,-1] (13 PEs + 3 wires)", 16),
        ("TC μ=4", algorithms::transitive_closure(4), vec![5, 1, 1], "[0,0,1] (5 PEs + 3 wires)", 8),
        ("convolution", algorithms::convolution(5, 3), vec![1, 6], "[1,-1] (9 PEs + 2 wires)", 11),
    ];
    for (name, alg, pi, paper_space, paper_cost) in &cases {
        let schedule = LinearSchedule::new(pi);
        let sol = SpaceSearch::new(alg, &schedule).entry_bound(2).solve().unwrap().into_mapping();
        match sol {
            Some(sol) => {
                let clean = oracle::is_conflict_free_by_enumeration(&sol.mapping, &alg.index_set);
                rows.push(vec![
                    s(name),
                    format!("{pi:?}"),
                    s(paper_space),
                    s(paper_cost),
                    format!("{} ({} PEs + {} wires)", sol.space, sol.processors, sol.wire_length),
                    s(sol.cost),
                    s(clean),
                ]);
            }
            None => rows.push(vec![
                s(name),
                format!("{pi:?}"),
                s(paper_space),
                s(paper_cost),
                "—".into(),
                "—".into(),
                "—".into(),
            ]),
        }
    }
    ExperimentReport {
        id: "E11".into(),
        telemetry: Vec::new(),
        title: "Problem 6.1 (future work, implemented) — space-optimal maps under fixed schedules".into(),
        headers: vec![
            "instance".into(),
            "Π (fixed)".into(),
            "paper's S".into(),
            "paper cost".into(),
            "space-optimal S".into(),
            "cost".into(),
            "conflict-free".into(),
        ],
        rows,
        notes: vec![
            "Under the same optimal schedule, the space search finds designs at most as expensive as the paper's (e.g. matmul: S = [0,1,−1] with 9 PEs beats the paper's 13-PE array at equal total time).".into(),
        ],
    }
}

/// E12 — Problem 6.2 (joint `S`, `Π` optimization) with absolute
/// lower-bound context.
pub fn e12_joint_and_bounds() -> ExperimentReport {
    use cfmap_core::joint_search::{JointCriterion, JointSearch};
    use cfmap_model::bounds;
    let mut rows = Vec::new();
    let cases: Vec<(&str, cfmap_model::Uda, i64)> = vec![
        ("matmul μ=4", algorithms::matmul(4), 25),
        ("TC μ=4", algorithms::transitive_closure(4), 29),
        ("convolution 5×3", algorithms::convolution(5, 3), -1),
        ("sor 4×4", algorithms::sor(4, 4), -1),
    ];
    for (name, alg, fixed_s_time) in &cases {
        let cp = bounds::critical_path(alg);
        let lin = bounds::linear_schedule_bound(alg, 80).map_or("—".into(), |t| t.to_string());
        let fast = JointSearch::new(alg)
            .criterion(JointCriterion::TimeThenSpace)
            .solve()
            .unwrap()
            .into_mapping();
        let small = JointSearch::new(alg)
            .criterion(JointCriterion::SpaceThenTime)
            .solve()
            .unwrap()
            .into_mapping();
        let fmt = |o: &Option<cfmap_core::JointOptimal>| match o {
            Some(s) => format!("t={} cost={} (S={:?})", s.total_time, s.space_cost,
                s.space.as_mat().row(0).to_i64s().unwrap()),
            None => "—".into(),
        };
        rows.push(vec![
            s(name),
            s(cp),
            lin,
            if *fixed_s_time > 0 { s(fixed_s_time) } else { "—".into() },
            fmt(&fast),
            fmt(&small),
        ]);
    }
    ExperimentReport {
        id: "E12".into(),
        telemetry: Vec::new(),
        title: "Problem 6.2 (future work, implemented) — joint (S, Π) optimization vs absolute bounds".into(),
        headers: vec![
            "instance".into(),
            "critical path".into(),
            "best linear t (no conflict constraint)".into(),
            "paper fixed-S optimum".into(),
            "joint, time-first".into(),
            "joint, space-first".into(),
        ],
        rows,
        notes: vec![
            "critical path ≤ linear bound ≤ conflict-free optimum on every instance; the gap between the last two is the price of conflict-freedom under a lower-dimensional space map.".into(),
            "Extension finding: freeing S improves the transitive closure beyond the paper's fixed-S optimum — S = [1,−1,0] admits t = 25 < μ(μ+3)+1 = 29 at μ = 4, conflict-free (verified exactly).".into(),
        ],
    }
}

/// E13 — the hot path of Procedure 5.1: per-candidate screening cost,
/// legacy (from-scratch bignum Hermite form + eager unimodular inverse,
/// exactly what each candidate cost before the fast path) vs the
/// incremental screen (pre-eliminated i64 `S` prefix completed with the
/// candidate's Π row, inverse left lazy). The candidate sets are the
/// ones the real searches examine, recorded via the candidate probe.
pub fn e13_hot_path() -> ExperimentReport {
    use cfmap_intlin::{hermite_normal_form_bignum, hnf_prefix_i64, HnfWorkspace};

    // Per-case measurement budget, sharing the benches' knob so CI smoke
    // runs stay fast (`CFMAP_BENCH_MS=5`).
    let budget = std::time::Duration::from_millis(
        std::env::var("CFMAP_BENCH_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(200).max(1),
    );
    let cases: Vec<(&str, cfmap_model::Uda, Vec<i64>)> = vec![
        ("matmul μ=4", algorithms::matmul(4), vec![1, 1, -1]),
        ("TC μ=4", algorithms::transitive_closure(4), vec![0, 0, 1]),
    ];
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for (name, alg, s_row) in &cases {
        let space = SpaceMap::row(s_row);
        // Record every candidate the search actually examines.
        let seen = std::sync::Mutex::new(Vec::<Vec<i64>>::new());
        let probe = |pi: &[i64]| seen.lock().unwrap().push(pi.to_vec());
        Procedure51::new(alg, &space)
            .candidate_probe(&probe)
            .solve()
            .expect("search ran")
            .expect_optimal("optimum exists");
        let candidates = seen.into_inner().unwrap();

        let prefix = hnf_prefix_i64(space.as_mat()).expect("paper-sized S fits i64");
        let mut ws = HnfWorkspace::new();
        let t_of = |pi: &[i64]| space.as_mat().vstack(&IMat::row_vector(pi));
        // Correctness first: the incremental screen is bit-identical to
        // the from-scratch Hermite form on every examined candidate.
        for pi in &candidates {
            let full = hermite_normal_form_bignum(&t_of(pi));
            let inc = prefix.complete(pi, &mut ws).expect("paper candidates fit i64");
            assert_eq!((&inc.h, &inc.u, inc.rank), (&full.h, &full.u, full.rank), "Π = {pi:?}");
        }

        // One pass = screen the whole candidate set; min over repeated
        // passes inside the budget approximates the steady-state cost.
        let time_passes = |screen: &mut dyn FnMut(&[i64])| {
            let mut min = std::time::Duration::MAX;
            let deadline = Instant::now() + budget;
            loop {
                let t0 = Instant::now();
                for pi in &candidates {
                    screen(pi);
                }
                min = min.min(t0.elapsed());
                if Instant::now() >= deadline {
                    return min;
                }
            }
        };
        let legacy = time_passes(&mut |pi| {
            let h = hermite_normal_form_bignum(&t_of(pi));
            std::hint::black_box(h.v());
        });
        let incremental = time_passes(&mut |pi| {
            std::hint::black_box(prefix.complete(pi, &mut ws));
        });
        let per = |d: std::time::Duration| d.as_nanos() / candidates.len() as u128;
        let speedup = legacy.as_nanos() as f64 / incremental.as_nanos().max(1) as f64;
        rows.push(vec![
            s(name),
            s(candidates.len()),
            format!("{} ns", per(legacy)),
            format!("{} ns", per(incremental)),
            format!("{speedup:.1}×"),
        ]);
        notes.push(format!(
            "{name}: every incremental Hermite form verified bit-identical to the from-scratch one, so the search outcome is unchanged by construction."
        ));
    }
    notes.push(
        "legacy = per-candidate bignum HNF with the unimodular inverse computed eagerly (the pre-optimization screen); incremental = i64 completion of the pre-eliminated S prefix with the inverse left lazy.".into(),
    );
    ExperimentReport {
        id: "E13".into(),
        telemetry: Vec::new(),
        title: "Procedure 5.1 hot path: incremental i64 screening vs from-scratch bignum".into(),
        headers: vec![
            "instance".into(),
            "candidates".into(),
            "legacy / candidate".into(),
            "incremental / candidate".into(),
            "speedup".into(),
        ],
        rows,
        notes,
    }
}

/// E14: family warm-start — answering an unseen size from an
/// affine-in-μ certificate (matrix fill-in + one exact conflict
/// re-check) vs running Procedure 5.1 cold at that size.
pub fn e14_family_warm_start() -> ExperimentReport {
    use cfmap_core::canonicalize;
    use cfmap_core::family::{certify, cold_solve, instantiate, FamilyInstance, FamilyKey};

    let budget = std::time::Duration::from_millis(
        std::env::var("CFMAP_BENCH_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(200).max(1),
    );
    // Min over repeated runs inside the budget: steady-state latency for
    // both the cold solver and the instantiation path.
    let time_min = |f: &mut dyn FnMut()| {
        let mut min = std::time::Duration::MAX;
        let deadline = Instant::now() + budget;
        loop {
            let t0 = Instant::now();
            f();
            min = min.min(t0.elapsed());
            if Instant::now() >= deadline {
                return min;
            }
        }
    };

    // Each case fits μ ∈ {2,3,4} exactly as the service's background
    // fitter does, then answers the target sizes both ways.
    let cases: Vec<(&str, cfmap_model::Uda, Vec<i64>, Vec<i64>)> = vec![
        ("matmul", algorithms::matmul(3), vec![1, 1, -1], vec![9, 17]),
        ("TC", algorithms::transitive_closure(3), vec![0, 0, 1], vec![9]),
    ];
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for (name, alg, s_row, targets) in &cases {
        let space = SpaceMap::row(s_row);
        let (key, _) = FamilyKey::of(&canonicalize(alg, &space).problem);
        let fitted = [2i64, 3, 4];
        let t_fit = Instant::now();
        let instances: Vec<FamilyInstance> = fitted
            .iter()
            .map(|&p| cold_solve(&key, p).expect("search ran").expect("feasible"))
            .collect();
        let cert = certify(&key, &instances).expect("family certifies");
        let fit_cost = t_fit.elapsed();
        notes.push(format!(
            "{name}: fitting μ ∈ {{2,3,4}} + symbolic verification + probes cost {fit_cost:?} once; every instantiation after that is pure fill-in."
        ));
        for &p in targets {
            let cold = cold_solve(&key, p).expect("search ran").expect("feasible");
            let problem = key.problem_at(p);
            let inst = instantiate(&cert, &problem).expect("certificate covers the target");
            // The whole point: the warm answer is bit-identical to cold.
            assert_eq!(inst.schedule, cold.schedule, "{name} μ = {p}");
            assert_eq!(inst.objective, cold.objective, "{name} μ = {p}");
            let t_cold = time_min(&mut || {
                std::hint::black_box(cold_solve(&key, p).unwrap());
            });
            let t_warm = time_min(&mut || {
                std::hint::black_box(instantiate(&cert, &problem));
            });
            let speedup = t_cold.as_nanos() as f64 / t_warm.as_nanos().max(1) as f64;
            rows.push(vec![
                format!("{name} μ={p}"),
                format!("t = {}", cold.total_time),
                format!("{t_cold:?}"),
                format!("{t_warm:?}"),
                format!("{speedup:.0}×"),
                "true".into(),
            ]);
        }
    }
    notes.push(
        "cold = full Procedure 5.1 with the LexMax tie-break (the service's cache-miss path); instantiation = Π(μ) fill-in from the affine template plus one exact validity/rank/conflict re-check at the concrete μ — zero candidates enumerated.".into(),
    );
    ExperimentReport {
        id: "E14".into(),
        telemetry: Vec::new(),
        title: "Family warm-start: certificate instantiation vs cold Procedure 5.1".into(),
        headers: vec![
            "instance".into(),
            "optimum".into(),
            "cold solve".into(),
            "instantiation".into(),
            "speedup".into(),
            "bit-identical".into(),
        ],
        rows,
        notes,
    }
}

/// Run every experiment with defaults (used by the harness binary).
pub fn run_all() -> Vec<ExperimentReport> {
    let mut reports = vec![
        e1_feasibility(),
        e2_conflict_vectors(),
        e3_hnf(),
    ];
    let (e4, _) = e4_matmul(&[2, 3, 4, 5, 6, 8, 12]);
    reports.push(e4);
    reports.push(e5_transitive_closure(&[2, 3, 4, 5, 6, 8, 12]));
    reports.push(e6_bitlevel());
    reports.push(e7_search_vs_ilp(&[2, 3, 4, 5]));
    reports.push(e7b_closedform_vs_enumeration(&[4, 6, 8, 10, 14]));
    reports.push(e8_thm48());
    reports.push(e9_scaling());
    reports.push(e10_condition_ablation());
    reports.push(e11_space_optimal());
    reports.push(e12_joint_and_bounds());
    reports.push(e13_hot_path());
    reports.push(e14_family_warm_start());
    reports.push(e15_quotient_and_hybrid());
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_runs_and_matches_paper() {
        let r = e1_feasibility();
        assert_eq!(r.rows.len(), 7);
        // γ₁ = [1,1] non-feasible with 16 colliding source points
        // (4×4 inner grid).
        assert_eq!(r.rows[0][1], "NonFeasible");
        assert_eq!(r.rows[0][2], "16");
        // γ₂ = [3,5] feasible with zero collisions.
        assert_eq!(r.rows[1][1], "Feasible");
        assert_eq!(r.rows[1][2], "0");
    }

    #[test]
    fn e4_small_sweep_matches_formulas() {
        let (_, data) = e4_matmul(&[2, 4]);
        for row in &data {
            assert_eq!(row.t_opt, row.t_formula, "μ = {} (paper formula)", row.mu);
            assert_eq!(row.makespan, row.t_opt, "μ = {}", row.mu);
            assert_eq!(row.violations, 0, "μ = {}", row.mu);
            assert!(row.numeric_ok, "μ = {}", row.mu);
            assert!(row.t_baseline > row.t_opt, "μ = {}", row.mu);
        }
        // μ = 4 row matches the paper's headline numbers.
        let r4 = data.iter().find(|r| r.mu == 4).unwrap();
        assert_eq!(r4.t_opt, 25);
        assert_eq!(r4.t_baseline, 29);
        assert_eq!(r4.buffers, ("3".to_string(), "4".to_string()));
    }

    #[test]
    fn e5_rows_match_formula() {
        let r = e5_transitive_closure(&[2, 3, 4]);
        for row in &r.rows {
            assert_eq!(row[2], row[3], "found time equals μ(μ+3)+1");
            assert_eq!(row[7], "0", "no conflicts");
        }
    }

    #[test]
    fn e8_all_sound() {
        let r = e8_thm48();
        for row in &r.rows {
            assert_eq!(row[4], "true", "unsound verdict in {}", row[0]);
        }
    }

    #[test]
    fn markdown_rendering() {
        let r = e1_feasibility();
        let md = r.to_markdown();
        assert!(md.starts_with("### E1"));
        assert!(md.contains("| γ |"));
        assert!(md.lines().filter(|l| l.starts_with('|')).count() >= 9);
    }

    #[test]
    fn json_rendering_escapes() {
        let r = ExperimentReport {
            id: "X".into(),
            telemetry: Vec::new(),
            title: "quote \" backslash \\ newline \n tab \t".into(),
            headers: vec!["a".into()],
            rows: vec![vec!["b".into()]],
            notes: vec![],
        };
        let j = r.to_json();
        assert!(j.contains(r#"\" backslash \\ newline \n tab \t"#), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
        // Balanced braces/brackets (cheap well-formedness probe).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn json_rendering_real_report() {
        let j = e1_feasibility().to_json();
        assert!(j.contains("\"id\":\"E1\""));
        assert!(j.contains("NonFeasible"));
        // E1 runs no search, so its telemetry object is empty.
        assert!(j.contains("\"telemetry\":{}"), "{j}");
    }

    #[test]
    fn search_experiments_carry_telemetry() {
        let (r, _) = e4_matmul(&[2]);
        let get = |k: &str| r.telemetry.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        assert!(get("candidates_enumerated").unwrap() > 0);
        assert_eq!(get("accepted"), Some(1));
        let j = r.to_json();
        assert!(j.contains("\"telemetry\":{\"candidates_enumerated\":"), "{j}");
        assert!(r.to_markdown().contains("search telemetry:"));
    }
}
