//! The experiment harness: regenerates every figure/table of the paper
//! and prints the results as markdown (the source of `EXPERIMENTS.md`).
//!
//! ```sh
//! cargo run --release -p cfmap-bench --bin experiments            # all
//! cargo run --release -p cfmap-bench --bin experiments -- E4 E5  # subset
//! ```

use cfmap_bench::*;

fn main() {
    let mut filter: Vec<String> = std::env::args().skip(1).map(|a| a.to_uppercase()).collect();
    let json = filter.iter().any(|f| f == "--JSON");
    filter.retain(|f| f != "--JSON");
    let run = |id: &str| filter.is_empty() || filter.iter().any(|f| f == id);

    let mut reports = Vec::new();
    if run("E1") {
        reports.push(e1_feasibility());
    }
    if run("E2") {
        reports.push(e2_conflict_vectors());
    }
    if run("E3") {
        reports.push(e3_hnf());
    }
    if run("E4") {
        reports.push(e4_matmul(&[2, 3, 4, 5, 6, 8, 12]).0);
    }
    if run("E5") {
        reports.push(e5_transitive_closure(&[2, 3, 4, 5, 6, 8, 12]));
    }
    if run("E6") {
        reports.push(e6_bitlevel());
    }
    if run("E7") {
        reports.push(e7_search_vs_ilp(&[2, 3, 4, 5]));
        reports.push(e7b_closedform_vs_enumeration(&[4, 6, 8, 10, 14]));
    }
    if run("E8") {
        reports.push(e8_thm48());
    }
    if run("E9") {
        reports.push(e9_scaling());
    }
    if run("E10") {
        reports.push(e10_condition_ablation());
    }
    if run("E11") {
        reports.push(e11_space_optimal());
    }
    if run("E12") {
        reports.push(e12_joint_and_bounds());
    }
    if run("E13") {
        reports.push(e13_hot_path());
    }
    if run("E14") {
        reports.push(e14_family_warm_start());
    }
    if run("E15") {
        reports.push(e15_quotient_and_hybrid());
    }
    if run("E16") {
        reports.push(e16_screening_core());
    }
    if run("E17") {
        reports.push(e17_pareto_frontiers());
    }

    if json {
        let objs: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
        println!("[{}]", objs.join(",\n"));
    } else {
        for r in &reports {
            println!("{}", r.to_markdown());
        }
    }
    eprintln!("({} experiment tables rendered)", reports.len());
}
