//! Minimal wall-clock timing harness behind the `benches/` binaries.
//!
//! The workspace's hermetic build policy rules out external bench
//! frameworks, so each bench target is a plain `fn main()` (Cargo
//! `harness = false`) that calls [`bench`] per measured kernel. The
//! output is one aligned line per kernel: min / mean over an adaptive
//! number of runs inside a fixed wall-clock budget.
//!
//! Set `CFMAP_BENCH_MS` to change the per-kernel budget (default 200 ms;
//! CI smoke runs can use `CFMAP_BENCH_MS=20`).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-kernel measurement budget.
fn budget() -> Duration {
    let ms = std::env::var("CFMAP_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms.max(1))
}

/// Print a group header, mirroring the old benchmark-group structure.
pub fn group(name: &str) {
    println!("\n## {name}");
}

/// Time `f`: a short warm-up, then repeated runs until the wall-clock
/// budget is spent (at least one run, at most 10 000). Reports min and
/// mean, which is what the experiment write-ups quote.
pub fn bench<R>(label: &str, mut f: impl FnMut() -> R) {
    let b = budget();
    // Warm-up: a few runs or 1/10 of the budget, whichever ends first.
    let warm_deadline = Instant::now() + b / 10;
    for _ in 0..3 {
        black_box(f());
        if Instant::now() > warm_deadline {
            break;
        }
    }

    let mut samples: Vec<Duration> = Vec::new();
    let deadline = Instant::now() + b;
    loop {
        let t0 = Instant::now();
        black_box(f());
        samples.push(t0.elapsed());
        if Instant::now() >= deadline || samples.len() >= 10_000 {
            break;
        }
    }

    let min = samples.iter().min().copied().unwrap_or_default();
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!("{label:<48} min {min:>12?}  mean {mean:>12?}  ({} runs)", samples.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_at_least_once() {
        // Even a kernel slower than the budget yields one sample and
        // does not panic (guards the min/mean math against empty input).
        std::env::set_var("CFMAP_BENCH_MS", "1");
        let mut calls = 0u32;
        bench("noop", || {
            calls += 1;
            std::thread::sleep(Duration::from_millis(2));
        });
        assert!(calls >= 1);
        std::env::remove_var("CFMAP_BENCH_MS");
    }
}
