//! E11/E12 — Problems 6.1 and 6.2: cost of the space-optimal and joint
//! searches.

use cfmap_bench::timing::{bench, group};
use cfmap_core::joint_search::{JointCriterion, JointSearch};
use cfmap_core::space_search::SpaceSearch;
use cfmap_model::{algorithms, bounds, LinearSchedule};
use std::hint::black_box;

fn main() {
    group("e11_space_search");
    for mu in [3i64, 4] {
        let alg = algorithms::matmul(mu);
        let pi = LinearSchedule::new(&[1, mu, 1]);
        bench(&format!("bound1/{mu}"), || {
            SpaceSearch::new(black_box(&alg), &pi).entry_bound(1).solve().unwrap()
        });
        bench(&format!("bound2/{mu}"), || {
            SpaceSearch::new(black_box(&alg), &pi).entry_bound(2).solve().unwrap()
        });
    }
    {
        let alg = algorithms::bitlevel_convolution(2, 2);
        let pi = LinearSchedule::new(&[1, 1, 1, 3]);
        bench("two_rows_bitlevel", || {
            SpaceSearch::new(black_box(&alg), &pi).rows(2).entry_bound(1).solve().unwrap()
        });
    }

    group("e12_joint_search");
    for mu in [3i64, 4] {
        let alg = algorithms::matmul(mu);
        bench(&format!("time_first/{mu}"), || {
            JointSearch::new(black_box(&alg)).solve().unwrap()
        });
        bench(&format!("space_first/{mu}"), || {
            JointSearch::new(black_box(&alg))
                .criterion(JointCriterion::SpaceThenTime)
                .solve()
                .unwrap()
        });
    }

    group("e12_bounds");
    for mu in [3i64, 4, 6] {
        let alg = algorithms::matmul(mu);
        bench(&format!("critical_path/{mu}"), || bounds::critical_path(black_box(&alg)));
    }
}
