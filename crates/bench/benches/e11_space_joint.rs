//! E11/E12 — Problems 6.1 and 6.2: cost of the space-optimal and joint
//! searches.

use cfmap_core::joint_search::{JointCriterion, JointSearch};
use cfmap_core::space_search::SpaceSearch;
use cfmap_model::{algorithms, bounds, LinearSchedule};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_space_search");
    group.sample_size(10);
    for mu in [3i64, 4] {
        let alg = algorithms::matmul(mu);
        let pi = LinearSchedule::new(&[1, mu, 1]);
        group.bench_with_input(BenchmarkId::new("bound1", mu), &mu, |b, _| {
            b.iter(|| SpaceSearch::new(black_box(&alg), &pi).entry_bound(1).solve())
        });
        group.bench_with_input(BenchmarkId::new("bound2", mu), &mu, |b, _| {
            b.iter(|| SpaceSearch::new(black_box(&alg), &pi).entry_bound(2).solve())
        });
    }
    {
        let alg = algorithms::bitlevel_convolution(2, 2);
        let pi = LinearSchedule::new(&[1, 1, 1, 3]);
        group.bench_function("two_rows_bitlevel", |b| {
            b.iter(|| SpaceSearch::new(black_box(&alg), &pi).rows(2).entry_bound(1).solve())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e12_joint_search");
    group.sample_size(10);
    for mu in [3i64, 4] {
        let alg = algorithms::matmul(mu);
        group.bench_with_input(BenchmarkId::new("time_first", mu), &mu, |b, _| {
            b.iter(|| JointSearch::new(black_box(&alg)).solve())
        });
        group.bench_with_input(BenchmarkId::new("space_first", mu), &mu, |b, _| {
            b.iter(|| {
                JointSearch::new(black_box(&alg))
                    .criterion(JointCriterion::SpaceThenTime)
                    .solve()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e12_bounds");
    for mu in [3i64, 4, 6] {
        let alg = algorithms::matmul(mu);
        group.bench_with_input(BenchmarkId::new("critical_path", mu), &mu, |b, _| {
            b.iter(|| bounds::critical_path(black_box(&alg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
