//! E4 — Example 5.1 / Figures 2–3: optimizer, routing, simulation and
//! numeric execution of the matmul linear-array design across μ.

use cfmap_bench::timing::{bench, group};
use cfmap_core::mapping::{route, InterconnectionPrimitives};
use cfmap_core::{MappingMatrix, Procedure51, SpaceMap};
use cfmap_model::{algorithms, LinearSchedule};
use cfmap_systolic::exec::{execute, MatmulKernel};
use cfmap_systolic::Simulator;
use std::hint::black_box;

fn main() {
    group("e4_matmul");
    for mu in [3i64, 4, 6] {
        let alg = algorithms::matmul(mu);
        let s = SpaceMap::row(&[1, 1, -1]);
        bench(&format!("procedure_5_1/{mu}"), || {
            Procedure51::new(black_box(&alg), &s).solve().unwrap()
        });
        let mapping = MappingMatrix::new(s.clone(), LinearSchedule::new(&[1, mu, 1]));
        let prims = InterconnectionPrimitives::from_columns(&[&[1], &[1], &[-1]]);
        bench(&format!("route/{mu}"), || {
            route(black_box(&mapping), &alg.deps, &prims).unwrap()
        });
        let routing = route(&mapping, &alg.deps, &prims).unwrap();
        bench(&format!("simulate_with_links/{mu}"), || {
            Simulator::new(black_box(&alg), &mapping).with_routing(&routing).run().unwrap()
        });
        let kernel = MatmulKernel::random((mu + 1) as usize, 1);
        bench(&format!("numeric_execution/{mu}"), || {
            execute(black_box(&alg), &mapping, &kernel)
        });
    }
}
