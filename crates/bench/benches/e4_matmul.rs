//! E4 — Example 5.1 / Figures 2–3: optimizer, routing, simulation and
//! numeric execution of the matmul linear-array design across μ.

use cfmap_core::mapping::{route, InterconnectionPrimitives};
use cfmap_core::{MappingMatrix, Procedure51, SpaceMap};
use cfmap_model::{algorithms, LinearSchedule};
use cfmap_systolic::exec::{execute, MatmulKernel};
use cfmap_systolic::Simulator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_matmul");
    group.sample_size(10);
    for mu in [3i64, 4, 6] {
        let alg = algorithms::matmul(mu);
        let s = SpaceMap::row(&[1, 1, -1]);
        group.bench_with_input(BenchmarkId::new("procedure_5_1", mu), &mu, |b, _| {
            b.iter(|| Procedure51::new(black_box(&alg), &s).solve().unwrap())
        });
        let mapping = MappingMatrix::new(s.clone(), LinearSchedule::new(&[1, mu, 1]));
        let prims = InterconnectionPrimitives::from_columns(&[&[1], &[1], &[-1]]);
        group.bench_with_input(BenchmarkId::new("route", mu), &mu, |b, _| {
            b.iter(|| route(black_box(&mapping), &alg.deps, &prims).unwrap())
        });
        let routing = route(&mapping, &alg.deps, &prims).unwrap();
        group.bench_with_input(BenchmarkId::new("simulate_with_links", mu), &mu, |b, _| {
            b.iter(|| Simulator::new(black_box(&alg), &mapping).with_routing(&routing).run())
        });
        let kernel = MatmulKernel::random((mu + 1) as usize, 1);
        group.bench_with_input(BenchmarkId::new("numeric_execution", mu), &mu, |b, _| {
            b.iter(|| execute(black_box(&alg), &mapping, &kernel))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
