//! E13 — the per-candidate screening kernels of Procedure 5.1: small-Int
//! arithmetic, i64 vs bignum Hermite forms, prefix completion, Bareiss
//! rank, and the end-to-end search they add up to.

use cfmap_bench::timing::{bench, group};
use cfmap_core::{Procedure51, SpaceMap};
use cfmap_intlin::{
    hermite_normal_form, hermite_normal_form_bignum, hnf_prefix_i64, HnfWorkspace, IMat, Int,
};
use cfmap_model::algorithms;
use std::hint::black_box;

fn main() {
    group("e13_small_int_ops");
    {
        let a = Int::from(123_456_789i64);
        let b = Int::from(-987_654i64);
        bench("add_small", || black_box(&a) + black_box(&b));
        bench("mul_small", || black_box(&a) * black_box(&b));
        bench("gcd_small", || black_box(&a).gcd(black_box(&b)));
        let big = Int::from(i128::MAX) * Int::from(i128::MAX);
        bench("mul_big_limb", || black_box(&big) * black_box(&big));
    }

    group("e13_hnf_kernels");
    let matmul_t = IMat::from_rows(&[&[1, 1, -1], &[1, 4, 1]]);
    bench("hnf_dispatch_i64", || hermite_normal_form(black_box(&matmul_t)));
    bench("hnf_bignum", || hermite_normal_form_bignum(black_box(&matmul_t)));
    bench("hnf_bignum_with_inverse", || {
        let h = hermite_normal_form_bignum(black_box(&matmul_t));
        black_box(h.v().clone())
    });
    {
        let s = IMat::row_vector(&[1, 1, -1]);
        let prefix = hnf_prefix_i64(&s).expect("fits i64");
        let mut ws = HnfWorkspace::new();
        bench("prefix_complete", || {
            black_box(prefix.complete(black_box(&[1, 4, 1]), &mut ws))
        });
    }
    bench("bareiss_rank", || black_box(&matmul_t).rank());

    group("e13_end_to_end_search");
    for (name, alg, s_row) in [
        ("matmul_mu4", algorithms::matmul(4), vec![1i64, 1, -1]),
        ("tc_mu4", algorithms::transitive_closure(4), vec![0, 0, 1]),
    ] {
        let space = SpaceMap::row(&s_row);
        bench(&format!("solve/{name}"), || {
            Procedure51::new(black_box(&alg), black_box(&space)).solve().unwrap()
        });
    }
}
