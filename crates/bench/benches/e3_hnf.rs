//! E3 — Example 4.2: Hermite normal form cost on mapping-matrix shapes
//! (the inner loop of every conflict-freedom test).

use cfmap_bench::timing::{bench, group};
use cfmap_intlin::{hermite_normal_form, smith_normal_form, IMat, Int};
use std::hint::black_box;

fn paper_matrix() -> IMat {
    IMat::from_rows(&[&[1, 7, 1, 1], &[1, 7, 1, 0]])
}

fn synthetic(k: usize, n: usize, scale: i64) -> IMat {
    IMat::from_fn(k, n, |i, j| {
        Int::from(((i as i64 + 1) * 31 + (j as i64 + 1) * 17) % (2 * scale + 1) - scale)
    })
}

fn main() {
    group("e3_hnf");
    {
        let t = paper_matrix();
        bench("paper_eq_2_8", || hermite_normal_form(black_box(&t)));
    }
    for (k, n) in [(2usize, 4usize), (3, 5), (4, 8), (6, 12)] {
        let t = synthetic(k, n, 9);
        bench(&format!("hnf/{k}x{n}"), || hermite_normal_form(black_box(&t)));
        bench(&format!("smith/{k}x{n}"), || smith_normal_form(black_box(&t)));
    }
    // Entry-magnitude sensitivity (bigint cost).
    for scale in [9i64, 999, 999_983] {
        let t = synthetic(3, 5, scale);
        bench(&format!("hnf_magnitude/{scale}"), || {
            hermite_normal_form(black_box(&t))
        });
    }
}
