//! E3 — Example 4.2: Hermite normal form cost on mapping-matrix shapes
//! (the inner loop of every conflict-freedom test).

use cfmap_intlin::{hermite_normal_form, smith_normal_form, IMat, Int};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn paper_matrix() -> IMat {
    IMat::from_rows(&[&[1, 7, 1, 1], &[1, 7, 1, 0]])
}

fn synthetic(k: usize, n: usize, scale: i64) -> IMat {
    IMat::from_fn(k, n, |i, j| {
        Int::from(((i as i64 + 1) * 31 + (j as i64 + 1) * 17) % (2 * scale + 1) - scale)
    })
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_hnf");
    group.bench_function("paper_eq_2_8", |b| {
        let t = paper_matrix();
        b.iter(|| hermite_normal_form(black_box(&t)))
    });
    for (k, n) in [(2usize, 4usize), (3, 5), (4, 8), (6, 12)] {
        let t = synthetic(k, n, 9);
        group.bench_with_input(BenchmarkId::new("hnf", format!("{k}x{n}")), &t, |b, t| {
            b.iter(|| hermite_normal_form(black_box(t)))
        });
        group.bench_with_input(BenchmarkId::new("smith", format!("{k}x{n}")), &t, |b, t| {
            b.iter(|| smith_normal_form(black_box(t)))
        });
    }
    // Entry-magnitude sensitivity (bigint cost).
    for scale in [9i64, 999, 999_983] {
        let t = synthetic(3, 5, scale);
        group.bench_with_input(BenchmarkId::new("hnf_magnitude", scale), &t, |b, t| {
            b.iter(|| hermite_normal_form(black_box(t)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
