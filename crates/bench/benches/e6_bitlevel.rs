//! E6 — bit-level mappings: Proposition 8.1 closed form vs hand-rolled
//! HNF, and the repaired sign-pattern conditions.

use cfmap_bench::timing::{bench, group};
use cfmap_core::conditions::sign_pattern_condition_on_basis;
use cfmap_core::prop81::prop_8_1_basis;
use cfmap_core::{MappingMatrix, SpaceMap};
use cfmap_intlin::hermite_normal_form;
use cfmap_model::{algorithms, IndexSet, LinearSchedule};
use std::hint::black_box;

fn main() {
    group("e6_bitlevel");
    let mapping = MappingMatrix::new(
        SpaceMap::from_rows(&[&[1, 0, 0, 0, 0], &[0, 1, 0, 0, 0]]),
        LinearSchedule::new(&[1, 1, 1, 3, 12]),
    );

    bench("prop_8_1_closed_form", || prop_8_1_basis(black_box(&mapping)).unwrap());
    bench("hand_rolled_hnf", || hermite_normal_form(black_box(mapping.as_mat())));

    let alg = algorithms::bitlevel_matmul(2, 3);
    let (u4, u5) = prop_8_1_basis(&mapping).unwrap();
    let basis = [u4, u5];
    bench("sign_pattern_condition_r2", || {
        sign_pattern_condition_on_basis(black_box(&basis), &alg.index_set)
    });

    // r = 3 condition cost (subset repair adds pairwise patterns).
    let t1d = MappingMatrix::from_rows(&[&[1, 1, 0, 0, 0], &[1, 2, 3, 9, 18]]);
    let j = IndexSet::new(&[2, 2, 2, 1, 1]);
    let hnf = hermite_normal_form(t1d.as_mat());
    let kernel = hnf.kernel_cols();
    bench("sign_pattern_condition_r3", || {
        sign_pattern_condition_on_basis(black_box(&kernel), &j)
    });
}
