//! E12b — cfmapd service throughput: cache-miss (cold) vs cache-hit
//! (warm) request rates, over the real TCP/HTTP path and at the engine
//! layer, for the matmul workload.
//!
//! Cold iterations clear the design cache first, so every `/map` pays a
//! full Procedure 5.1 search; warm iterations replay the identical
//! request against a primed cache. The gap is the value of the
//! canonicalizing cache. A batch measurement shows eight axis-permuted
//! presentations of the same problem costing one search.
//!
//! Besides the timing lines, the bench emits the standard experiment
//! JSON record (same shape as `experiments --json`) on stdout.

use cfmap_bench::timing::{bench, group};
use cfmap_bench::ExperimentReport;
use cfmap_model::algorithms;
use cfmap_service::client;
use cfmap_service::engine::Engine;
use cfmap_service::json::Json;
use cfmap_service::server::{CfmapServer, ServerConfig};
use cfmap_service::wire::{MapRequest, MapResponse};
use std::hint::black_box;
use std::str::FromStr;
use std::time::Instant;

const MU: i64 = 4;

fn matmul_request() -> MapRequest {
    MapRequest::named("matmul", MU, vec![vec![1, 1, -1]])
}

/// Eight structural presentations of the same matmul problem, axes
/// relabeled — the batch scheduler should solve exactly one of them.
fn permuted_batch() -> String {
    let alg = algorithms::matmul(MU);
    let perms: [[usize; 3]; 6] =
        [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
    let mut reqs = Vec::new();
    for perm in perms.iter().cycle().take(8) {
        let p = alg.permuted_axes(perm);
        let space: Vec<i64> = perm.iter().map(|&c| [1i64, 1, -1][c]).collect();
        reqs.push(
            MapRequest {
                algorithm: None,
                mu: p.index_set.mu().to_vec(),
                deps: Some(p.deps.columns_i64()),
                space: vec![space],
                cap: None,
                max_candidates: None,
                timeout_ms: None,
                deadline_ms: None,
            }
            .to_json(),
        );
    }
    Json::Obj(vec![("requests".into(), Json::Arr(reqs))]).serialize()
}

/// Median request latency in nanoseconds over `runs` timed calls.
fn median_latency_ns(runs: usize, mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn req_per_sec(latency_ns: u128) -> String {
    if latency_ns == 0 {
        return "inf".into();
    }
    format!("{:.0}", 1e9 / latency_ns as f64)
}

fn main() {
    let server = CfmapServer::bind(&ServerConfig::default()).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let stop = server.shutdown_handle().expect("shutdown handle");
    let daemon = std::thread::spawn(move || server.run());

    let body = matmul_request().to_json().serialize();
    let call = |addr: &str, body: &str| {
        let reply = client::post(addr, "/map", body).expect("map call");
        assert_eq!(reply.status, 200, "{}", reply.body);
        let MapResponse::Ok(o) = MapResponse::from_str(&reply.body).expect("decodes") else {
            panic!("expected ok: {}", reply.body)
        };
        o
    };

    group("e12_service_throughput");
    bench("http_cold/matmul4", || {
        client::post(&addr, "/cache/clear", "").expect("clear");
        black_box(call(&addr, &body))
    });
    call(&addr, &body); // prime
    bench("http_warm/matmul4", || black_box(call(&addr, &body)));
    let batch = permuted_batch();
    bench("http_batch8_permuted/matmul4", || {
        client::post(&addr, "/cache/clear", "").expect("clear");
        black_box(client::post(&addr, "/batch", &batch).expect("batch"))
    });

    group("e12_engine_throughput");
    let engine = Engine::new(256, 8);
    let req = matmul_request();
    bench("engine_cold/matmul4", || {
        engine.clear_cache();
        black_box(engine.resolve(&req))
    });
    engine.resolve(&req); // prime
    bench("engine_warm/matmul4", || black_box(engine.resolve(&req)));

    // The standard JSON record: median latencies and request rates.
    let runs = 30;
    let cold_http = median_latency_ns(runs, || {
        client::post(&addr, "/cache/clear", "").expect("clear");
        call(&addr, &body);
    });
    call(&addr, &body);
    let warm_http = median_latency_ns(runs, || {
        call(&addr, &body);
    });
    let cold_engine = median_latency_ns(runs, || {
        engine.clear_cache();
        engine.resolve(&req);
    });
    engine.resolve(&req);
    let warm_engine = median_latency_ns(runs, || {
        engine.resolve(&req);
    });

    let report = ExperimentReport {
        id: "E12b".into(),
        telemetry: Vec::new(),
        title: "cfmapd throughput: cold (cache-miss) vs warm (cache-hit), matmul μ=4".into(),
        headers: vec![
            "path".into(),
            "median cold (ns)".into(),
            "median warm (ns)".into(),
            "cold req/s".into(),
            "warm req/s".into(),
            "speedup".into(),
        ],
        rows: vec![
            vec![
                "http".into(),
                cold_http.to_string(),
                warm_http.to_string(),
                req_per_sec(cold_http),
                req_per_sec(warm_http),
                format!("{:.1}x", cold_http as f64 / warm_http.max(1) as f64),
            ],
            vec![
                "engine".into(),
                cold_engine.to_string(),
                warm_engine.to_string(),
                req_per_sec(cold_engine),
                req_per_sec(warm_engine),
                format!("{:.1}x", cold_engine as f64 / warm_engine.max(1) as f64),
            ],
        ],
        notes: vec![
            "cold iterations POST /cache/clear before each /map, so every request pays a \
             full Procedure 5.1 search; warm iterations hit the canonicalizing design cache"
                .into(),
            "http_batch8_permuted submits 8 axis-permuted presentations of the same problem \
             in one /batch; the canonical key collapses them to a single search"
                .into(),
        ],
    };
    println!("\n{}", report.to_json());

    stop.shutdown();
    daemon.join().expect("server thread").expect("clean shutdown");
}
