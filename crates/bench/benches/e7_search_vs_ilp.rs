//! E7 — the two optimizers head to head, and the closed-form conflict
//! test vs index-point enumeration (E7b).

use cfmap_bench::timing::{bench, group};
use cfmap_core::conflict::ConflictAnalysis;
use cfmap_core::ilp::optimal_schedule_ilp;
use cfmap_core::{oracle, MappingMatrix, Procedure51, SearchBudget, SpaceMap};
use cfmap_model::{algorithms, LinearSchedule};
use std::hint::black_box;

fn main() {
    group("e7_search_vs_ilp");
    for mu in [3i64, 4] {
        let alg = algorithms::matmul(mu);
        let s = SpaceMap::row(&[1, 1, -1]);
        bench(&format!("procedure_5_1/{mu}"), || {
            Procedure51::new(black_box(&alg), &s).solve().unwrap()
        });
        bench(&format!("ilp_decomposition/{mu}"), || {
            optimal_schedule_ilp(black_box(&alg), &s, 2 * mu + 4, SearchBudget::unlimited())
                .unwrap()
        });
    }

    // E7b: closed-form conflict decision vs exhaustive enumeration.
    group("e7b_closedform_vs_enum");
    for mu in [4i64, 8, 12] {
        let alg = algorithms::matmul(mu);
        let t = MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[1, mu, 1]));
        bench(&format!("closed_form/{mu}"), || {
            let analysis = ConflictAnalysis::new(black_box(&t), &alg.index_set);
            analysis.is_conflict_free_exact()
        });
        bench(&format!("enumeration/{mu}"), || {
            oracle::is_conflict_free_by_enumeration(black_box(&t), &alg.index_set)
        });
    }
}
