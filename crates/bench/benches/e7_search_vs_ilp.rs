//! E7 — the two optimizers head to head, and the closed-form conflict
//! test vs index-point enumeration (E7b).

use cfmap_core::conflict::ConflictAnalysis;
use cfmap_core::ilp::optimal_schedule_ilp;
use cfmap_core::{oracle, MappingMatrix, Procedure51, SpaceMap};
use cfmap_model::{algorithms, LinearSchedule};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_search_vs_ilp");
    group.sample_size(10);
    for mu in [3i64, 4] {
        let alg = algorithms::matmul(mu);
        let s = SpaceMap::row(&[1, 1, -1]);
        group.bench_with_input(BenchmarkId::new("procedure_5_1", mu), &mu, |b, _| {
            b.iter(|| Procedure51::new(black_box(&alg), &s).solve().unwrap())
        });
        group.bench_with_input(BenchmarkId::new("ilp_decomposition", mu), &mu, |b, _| {
            b.iter(|| optimal_schedule_ilp(black_box(&alg), &s, 2 * mu + 4).unwrap())
        });
    }
    group.finish();

    // E7b: closed-form conflict decision vs exhaustive enumeration.
    let mut group = c.benchmark_group("e7b_closedform_vs_enum");
    for mu in [4i64, 8, 12] {
        let alg = algorithms::matmul(mu);
        let t = MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[1, mu, 1]));
        group.bench_with_input(BenchmarkId::new("closed_form", mu), &mu, |b, _| {
            b.iter(|| {
                let analysis = ConflictAnalysis::new(black_box(&t), &alg.index_set);
                analysis.is_conflict_free_exact()
            })
        });
        group.bench_with_input(BenchmarkId::new("enumeration", mu), &mu, |b, _| {
            b.iter(|| oracle::is_conflict_free_by_enumeration(black_box(&t), &alg.index_set))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
