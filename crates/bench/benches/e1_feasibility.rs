//! E1 — Figure 1: cost of the Theorem 2.2 feasibility test vs the
//! brute-force "does any j + γ stay in J" scan.

use cfmap_bench::timing::{bench, group};
use cfmap_core::conflict::feasibility;
use cfmap_intlin::IVec;
use cfmap_model::IndexSet;
use std::hint::black_box;

fn main() {
    group("e1_feasibility");
    for mu in [4i64, 16, 64] {
        let j = IndexSet::new(&[mu, mu]);
        let gamma = IVec::from_i64s(&[mu - 1, mu + 1]);
        bench(&format!("theorem_2_2/{mu}"), || {
            feasibility(black_box(&gamma), black_box(&j))
        });
        bench(&format!("brute_force_scan/{mu}"), || {
            j.iter().filter(|p| j.contains_offset(p, &gamma)).count()
        });
    }
}
