//! E1 — Figure 1: cost of the Theorem 2.2 feasibility test vs the
//! brute-force "does any j + γ stay in J" scan.

use cfmap_core::conflict::feasibility;
use cfmap_intlin::IVec;
use cfmap_model::IndexSet;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_feasibility");
    for mu in [4i64, 16, 64] {
        let j = IndexSet::new(&[mu, mu]);
        let gamma = IVec::from_i64s(&[mu - 1, mu + 1]);
        group.bench_with_input(BenchmarkId::new("theorem_2_2", mu), &mu, |b, _| {
            b.iter(|| feasibility(black_box(&gamma), black_box(&j)))
        });
        group.bench_with_input(BenchmarkId::new("brute_force_scan", mu), &mu, |b, _| {
            b.iter(|| j.iter().filter(|p| j.contains_offset(p, &gamma)).count())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
