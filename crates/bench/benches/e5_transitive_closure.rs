//! E5 — Example 5.2: transitive-closure optimizer and simulation, optimal
//! design vs the [22] baseline.

use cfmap_core::{baselines, Procedure51, SpaceMap};
use cfmap_model::algorithms;
use cfmap_systolic::Simulator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_transitive_closure");
    group.sample_size(10);
    for mu in [3i64, 4, 6] {
        let alg = algorithms::transitive_closure(mu);
        let s = SpaceMap::row(&[0, 0, 1]);
        group.bench_with_input(BenchmarkId::new("procedure_5_1", mu), &mu, |b, _| {
            b.iter(|| Procedure51::new(black_box(&alg), &s).solve().unwrap())
        });
        let opt = Procedure51::new(&alg, &s).solve().unwrap();
        group.bench_with_input(BenchmarkId::new("simulate_optimal", mu), &mu, |b, _| {
            b.iter(|| Simulator::new(black_box(&alg), &opt.mapping).run())
        });
        let base = baselines::transitive_closure_baseline_22(mu).mapping();
        group.bench_with_input(BenchmarkId::new("simulate_baseline_22", mu), &mu, |b, _| {
            b.iter(|| Simulator::new(black_box(&alg), &base).run())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
