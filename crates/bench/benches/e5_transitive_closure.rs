//! E5 — Example 5.2: transitive-closure optimizer and simulation, optimal
//! design vs the [22] baseline.

use cfmap_bench::timing::{bench, group};
use cfmap_core::{baselines, Procedure51, SpaceMap};
use cfmap_model::algorithms;
use cfmap_systolic::Simulator;
use std::hint::black_box;

fn main() {
    group("e5_transitive_closure");
    for mu in [3i64, 4, 6] {
        let alg = algorithms::transitive_closure(mu);
        let s = SpaceMap::row(&[0, 0, 1]);
        bench(&format!("procedure_5_1/{mu}"), || {
            Procedure51::new(black_box(&alg), &s).solve().unwrap()
        });
        let opt = Procedure51::new(&alg, &s).solve().unwrap().expect_optimal("solvable");
        bench(&format!("simulate_optimal/{mu}"), || {
            Simulator::new(black_box(&alg), &opt.mapping).run().unwrap()
        });
        let base = baselines::transitive_closure_baseline_22(mu).mapping();
        bench(&format!("simulate_baseline_22/{mu}"), || {
            Simulator::new(black_box(&alg), &base).run().unwrap()
        });
    }
}
