//! E9 — scaling: candidate enumeration, exact conflict decision and
//! simulation cost as μ and n grow.

use cfmap_bench::timing::{bench, group};
use cfmap_core::conflict::ConflictAnalysis;
use cfmap_core::{MappingMatrix, Procedure51, SpaceMap};
use cfmap_model::{algorithms, LinearSchedule};
use cfmap_systolic::Simulator;
use std::hint::black_box;

fn main() {
    group("e9_candidate_enumeration");
    for mu in [3i64, 4, 6] {
        let alg = algorithms::matmul(mu);
        let s = SpaceMap::row(&[1, 1, -1]);
        let proc = Procedure51::new(&alg, &s);
        let cap = mu * (mu + 2);
        bench(&format!("matmul/{mu}"), || proc.count_candidates(black_box(cap)));
    }

    group("e9_exact_decision_by_dim");
    for n in [3usize, 4, 5, 6] {
        let alg = algorithms::identity_cube(n, 3);
        let mut s_row = vec![0i64; n];
        s_row[0] = 1;
        s_row[n - 1] = -1;
        let pi: Vec<i64> = (0..n).map(|i| 1 + (i as i64 * 2) % 5).collect();
        let t = MappingMatrix::new(SpaceMap::row(&s_row), LinearSchedule::new(&pi));
        bench(&format!("n={n}"), || {
            let analysis = ConflictAnalysis::new(black_box(&t), &alg.index_set);
            analysis.is_conflict_free_exact()
        });
    }

    group("e9_simulation_throughput");
    for mu in [4i64, 8, 12] {
        let alg = algorithms::matmul(mu);
        let t = MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[1, mu, 1]));
        let points = alg.num_computations();
        bench(&format!("mu={mu} ({points} points)"), || {
            Simulator::new(black_box(&alg), &t).run().unwrap()
        });
    }
}
