//! Cross-module algebraic identities at scale: the normal forms, the
//! reduction, and the elementary matrix operations must all tell one
//! consistent story about the same random matrices.

use cfmap_intlin::{
    hermite_normal_form, lll_reduce, norm_sq, smith_normal_form, IMat, IVec, Int,
};
use cfmap_testkit::gen;

fn mat_from(v: &[i64], k: usize, n: usize) -> IMat {
    IMat::from_fn(k, n, |i, j| Int::from(v[i * n + j]))
}

cfmap_testkit::props! {
    cases = 48;

    /// HNF and SNF agree on rank and kernel dimension; the lattice index
    /// |det L| equals the product of the invariant factors for full
    /// row rank.
    fn hnf_snf_consistency(v in gen::vec(-7i64..=7, 15)) {
        let t = mat_from(&v, 3, 5);
        let h = hermite_normal_form(&t);
        let s = smith_normal_form(&t);
        assert_eq!(h.rank, s.rank);
        assert_eq!(h.kernel_cols().len(), s.kernel_cols().len());
        if h.rank == 3 {
            let det_l = h.pivot_block().det().abs();
            let inv: Int = s.invariant_factors().into_iter().product();
            assert_eq!(det_l, inv);
        }
    }

    /// LLL on the HNF kernel: same lattice (checked via V·γ saturation),
    /// never longer than the worst original vector by more than the 2×
    /// LLL slack, and all still kernel vectors.
    fn lll_on_kernels(v in gen::vec(-9i64..=9, 10)) {
        let t = mat_from(&v, 2, 5);
        let h = hermite_normal_form(&t);
        let kernel = h.kernel_cols();
        if kernel.len() < 2 {
            return;
        }
        let red = lll_reduce(&kernel);
        assert_eq!(red.len(), kernel.len());
        for g in &red {
            assert!(t.mul_vec(g).is_zero());
            let beta = h.v().mul_vec(g);
            for i in 0..h.rank {
                assert!(beta[i].is_zero(), "reduced vector left the lattice");
            }
        }
        // Sorted reduced norms never exceed sorted original norms
        // pairwise by more than the LLL approximation factor 2^{d−1}.
        let mut orig: Vec<Int> = kernel.iter().map(norm_sq).collect();
        let mut new: Vec<Int> = red.iter().map(norm_sq).collect();
        orig.sort();
        new.sort();
        let factor = Int::from(1i64 << (kernel.len() - 1));
        for (a, b) in new.iter().zip(&orig) {
            assert!(a <= &(b * &factor));
        }
    }

    /// Adjugate, determinant and rational inverse agree:
    /// A⁻¹ = adj(A)/det(A) whenever det ≠ 0.
    fn adjugate_inverse_consistency(v in gen::vec(-6i64..=6, 16)) {
        let a = mat_from(&v, 4, 4);
        let d = a.det();
        if d.is_zero() {
            assert!(a.inverse_rational().is_none());
            return;
        }
        let adj = a.adjugate();
        let inv = a.inverse_rational().unwrap();
        for (i, inv_row) in inv.iter().enumerate() {
            for (j, entry) in inv_row.iter().enumerate() {
                let expected = cfmap_intlin::Rat::new(adj.get(i, j).clone(), d.clone());
                assert_eq!(entry, &expected, "entry ({}, {})", i, j);
            }
        }
    }

    /// Unimodular products: U from HNF times V gives I, and the products'
    /// determinants multiply.
    fn multiplier_group_structure(v1 in gen::vec(-5i64..=5, 8), v2 in gen::vec(-5i64..=5, 8)) {
        let t1 = mat_from(&v1, 2, 4);
        let t2 = mat_from(&v2, 2, 4);
        let h1 = hermite_normal_form(&t1);
        let h2 = hermite_normal_form(&t2);
        let prod = &h1.u * &h2.u;
        assert!(prod.is_unimodular(), "unimodular group closed under product");
        let back = &(&prod * h2.v()) * h1.v();
        assert_eq!(back, IMat::identity(4));
    }

    /// Large-magnitude stress through the whole pipeline.
    fn magnitude_stress(v in gen::vec(-1_000_000_000i64..=1_000_000_000, 6)) {
        let t = mat_from(&v, 2, 3);
        let h = hermite_normal_form(&t);
        assert_eq!(&(&t * &h.u), &h.h);
        assert!(h.u.is_unimodular());
        let s = smith_normal_form(&t);
        assert_eq!(s.rank, h.rank);
        for g in h.kernel_cols() {
            assert!(t.mul_vec(&g).is_zero());
        }
    }
}

#[test]
fn kernel_vectors_survive_the_full_pipeline() {
    // One deterministic end-to-end thread: matrix → HNF → kernel → LLL →
    // membership via V — every stage preserves the kernel lattice.
    let t = IMat::from_rows(&[&[2, 4, 6, 1, 3], &[1, 2, 3, 5, 7]]);
    let h = hermite_normal_form(&t);
    assert_eq!(h.rank, 2);
    let kernel = h.kernel_cols();
    assert_eq!(kernel.len(), 3);
    let red = lll_reduce(&kernel);
    for g in &red {
        assert!(t.mul_vec(g).is_zero());
        assert!(g.is_primitive() || g.is_zero());
    }
    // The reduced basis contains a genuinely short vector: the direction
    // [1, 1, -1, 0, 0] (2+4-6 = 0, 1+2-3 = 0) has norm² 3.
    let short = IVec::from_i64s(&[1, 1, -1, 0, 0]);
    assert!(t.mul_vec(&short).is_zero());
    let best = red.iter().map(norm_sq).min().unwrap();
    assert!(best <= Int::from(3), "LLL missed the short direction: {best}");
}
