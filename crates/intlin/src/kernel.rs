//! Integer kernel lattices of mapping matrices.
//!
//! The set of *conflict vectors* of a mapping matrix `T` (Definition 2.3) is
//! exactly the set of primitive vectors of the integer lattice
//! `ker_Z(T) = {γ ∈ Z^n : Tγ = 0}`. Theorem 4.2 (3) shows this lattice is
//! generated — over the *integers*, which is the whole point of the paper's
//! Hermite detour — by the last `n−k` columns of the Hermite multiplier `U`.
//!
//! A basis of rational solutions (e.g. `n−k` arbitrary linearly independent
//! integer solutions) is **not** enough: Example 4.1 of the paper shows two
//! feasible conflict vectors whose *rational* combination `γ/7 + γ'/7` is a
//! new, non-feasible conflict vector. The HNF basis rules this out because
//! every integral kernel vector is an *integral* combination of it.

use crate::hnf::hermite_normal_form;
use crate::int::Int;
use crate::mat::IMat;
use crate::vec::IVec;

/// A basis of the integer kernel lattice `{γ : Tγ = 0}`, obtained from the
/// last `n − rank(T)` columns of the Hermite multiplier `U` (Theorem 4.2).
///
/// Every integral solution of `Tγ = 0` is an integral combination of the
/// returned vectors, and every integral combination is a solution.
pub fn kernel_basis(t: &IMat) -> Vec<IVec> {
    hermite_normal_form(t).kernel_cols()
}

/// Enumerate all *primitive* kernel vectors `γ = Σ βᵢ·basisᵢ` with
/// coefficient vectors `β` ranging over `[-bound, bound]^{n-k}`, `β ≠ 0`,
/// `gcd(β) = 1`, and the first nonzero coefficient positive (so each
/// ±-pair is produced once).
///
/// Theorem 4.2 (3): these are exactly the conflict vectors of `T` whose
/// coefficients lie in the box. Used by the brute-force cross-checks and by
/// the necessary-condition counterexample search.
pub fn primitive_combinations(basis: &[IVec], bound: i64) -> Vec<IVec> {
    let m = basis.len();
    if m == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut beta = vec![0i64; m];
    enumerate(basis, bound, 0, &mut beta, &mut out);
    out
}

fn enumerate(basis: &[IVec], bound: i64, idx: usize, beta: &mut [i64], out: &mut Vec<IVec>) {
    if idx == basis.len() {
        if beta.iter().all(|&b| b == 0) {
            return;
        }
        if crate::gcd::gcd_slice(beta) != 1 {
            return;
        }
        // Canonical sign: first nonzero β positive.
        if beta.iter().find(|&&b| b != 0).is_some_and(|&b| b < 0) {
            return;
        }
        let n = basis[0].dim();
        let mut gamma = IVec::zeros(n);
        for (b, vec) in beta.iter().zip(basis) {
            gamma = &gamma + &vec.scale(&Int::from(*b));
        }
        out.push(gamma);
        return;
    }
    for b in -bound..=bound {
        beta[idx] = b;
        enumerate(basis, bound, idx + 1, beta, out);
    }
    beta[idx] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[i64]]) -> IMat {
        IMat::from_rows(rows)
    }

    #[test]
    fn kernel_of_paper_eq_2_8() {
        let t = m(&[&[1, 7, 1, 1], &[1, 7, 1, 0]]);
        let basis = kernel_basis(&t);
        assert_eq!(basis.len(), 2);
        for gamma in &basis {
            assert!(t.mul_vec(gamma).is_zero());
            assert!(gamma.is_primitive());
        }
    }

    #[test]
    fn primitive_combinations_yield_conflict_vectors() {
        // Example 2.1: γ1 = [0,1,-7,0], γ2 = [7,-1,0,0], γ3 = [1,0,-1,0]
        // are all conflict vectors of T — so each must appear (up to sign)
        // among the primitive combinations of the HNF kernel basis.
        let t = m(&[&[1, 7, 1, 1], &[1, 7, 1, 0]]);
        let basis = kernel_basis(&t);
        let combos = primitive_combinations(&basis, 8);
        let want = [
            IVec::from_i64s(&[0, 1, -7, 0]),
            IVec::from_i64s(&[7, -1, 0, 0]),
            IVec::from_i64s(&[1, 0, -1, 0]),
        ];
        for w in &want {
            let neg = -w;
            assert!(
                combos.iter().any(|g| g == w || g == &neg),
                "missing conflict vector {w}"
            );
        }
        // Every combination is a primitive kernel vector.
        for g in &combos {
            assert!(t.mul_vec(g).is_zero());
            assert!(g.is_primitive(), "non-primitive combination {g}");
        }
    }

    #[test]
    fn empty_kernel_for_full_column_rank() {
        let t = m(&[&[1, 0], &[0, 1], &[1, 1]]);
        assert!(kernel_basis(&t).is_empty());
        assert!(primitive_combinations(&[], 3).is_empty());
    }

    #[test]
    fn combinations_canonical_signs_unique() {
        let t = m(&[&[1, 1, -1], &[1, 4, 1]]);
        let basis = kernel_basis(&t);
        let combos = primitive_combinations(&basis, 5);
        // One-dimensional kernel: primitive combos are exactly ±basis with
        // canonical sign ⇒ a single vector regardless of the bound.
        assert_eq!(combos.len(), 1);
        let mut seen = std::collections::HashSet::new();
        for g in &combos {
            assert!(seen.insert(format!("{g}")), "duplicate combination");
        }
    }

    cfmap_testkit::props! {
        cases = 48;

        fn kernel_vectors_are_killed(entries in cfmap_testkit::gen::vec(-9i64..=9, 8)) {
            let t = IMat::from_fn(2, 4, |i, j| Int::from(entries[i * 4 + j]));
            for gamma in kernel_basis(&t) {
                assert!(t.mul_vec(&gamma).is_zero());
            }
        }

        fn kernel_is_saturated(entries in cfmap_testkit::gen::vec(-5i64..=5, 8)) {
            // Theorem 4.2: every integral solution γ of Tγ = 0 has β = V·γ
            // with β integral (automatic: V is integral) and its first
            // `rank` entries zero — i.e. γ is an *integral* combination of
            // the kernel columns of U. Scan a small box of solutions.
            let t = IMat::from_fn(2, 4, |i, j| Int::from(entries[i * 4 + j]));
            let hnf = crate::hnf::hermite_normal_form(&t);
            for a in -3i64..=3 {
                for b in -3i64..=3 {
                    for c in -3i64..=3 {
                        for d in -3i64..=3 {
                            let g = IVec::from_i64s(&[a, b, c, d]);
                            if g.is_zero() || !t.mul_vec(&g).is_zero() {
                                continue;
                            }
                            let beta = hnf.v().mul_vec(&g);
                            for i in 0..hnf.rank {
                                assert!(
                                    beta[i].is_zero(),
                                    "β = V·γ has nonzero leading entry for γ = {}", g
                                );
                            }
                            // Reconstruct γ from kernel coefficients alone.
                            let mut rebuilt = IVec::zeros(4);
                            for (i, col) in hnf.kernel_cols().iter().enumerate() {
                                rebuilt = &rebuilt + &col.scale(&beta[hnf.rank + i]);
                            }
                            assert_eq!(rebuilt, g);
                        }
                    }
                }
            }
        }
    }
}
