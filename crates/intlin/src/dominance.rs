//! Exact Pareto-dominance comparisons over rational objective vectors.
//!
//! The Pareto-frontier search (cfmap-core `pareto`) compares candidate
//! designs on several axes at once — time, processors, wire length and
//! optionally peak link bandwidth. Dominance must be decided exactly:
//! a frontier pruned by a lossy comparison is not the non-dominated set,
//! and the exhaustive differential tests would catch it. All comparisons
//! here go through [`Rat`], so mixed integer/rational objective vectors
//! compare without rounding.

use crate::rat::Rat;

/// `true` iff `a` Pareto-dominates `b`: `a` is no worse than `b` on
/// every axis and strictly better on at least one (minimization).
///
/// Vectors of unequal length never dominate each other — that is a
/// caller bug, but treating it as incomparable keeps the frontier filter
/// total.
pub fn dominates(a: &[Rat], b: &[Rat]) -> bool {
    if a.len() != b.len() || a.is_empty() {
        return false;
    }
    let mut strict = false;
    for (x, y) in a.iter().zip(b.iter()) {
        match x.cmp(y) {
            std::cmp::Ordering::Greater => return false,
            std::cmp::Ordering::Less => strict = true,
            std::cmp::Ordering::Equal => {}
        }
    }
    strict
}

/// `true` iff `v` is non-dominated within `set` (minimization). A vector
/// equal to `v` does not dominate it, so duplicates are all kept.
pub fn is_non_dominated(v: &[Rat], set: &[Vec<Rat>]) -> bool {
    !set.iter().any(|w| dominates(w, v))
}

/// Indices of the non-dominated members of `set` (minimization), in
/// their original order. Duplicate vectors all survive — deduplication
/// is the caller's policy, not a dominance question.
pub fn non_dominated_indices(set: &[Vec<Rat>]) -> Vec<usize> {
    (0..set.len())
        .filter(|&i| set.iter().enumerate().all(|(j, w)| j == i || !dominates(w, &set[i])))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(ints: &[i64]) -> Vec<Rat> {
        ints.iter().map(|&x| Rat::from_i64(x)).collect()
    }

    #[test]
    fn strict_dominance() {
        assert!(dominates(&v(&[1, 2, 3]), &v(&[1, 2, 4])));
        assert!(dominates(&v(&[0, 0]), &v(&[1, 1])));
        assert!(!dominates(&v(&[1, 2]), &v(&[1, 2])), "equal vectors do not dominate");
        assert!(!dominates(&v(&[1, 3]), &v(&[2, 2])), "incomparable");
        assert!(!dominates(&v(&[2, 2]), &v(&[1, 3])), "incomparable, other side");
    }

    #[test]
    fn unequal_lengths_are_incomparable() {
        assert!(!dominates(&v(&[1]), &v(&[1, 2])));
        assert!(!dominates(&v(&[]), &v(&[])));
    }

    #[test]
    fn rational_axes_compare_exactly() {
        use crate::int::Int;
        let a = vec![Rat::new(Int::from(1), Int::from(3))];
        let b = vec![Rat::new(Int::from(1), Int::from(2))];
        // 1/3 < 1/2 on the single axis.
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
    }

    #[test]
    fn frontier_filter_keeps_exactly_the_non_dominated() {
        let set = vec![v(&[1, 4]), v(&[2, 2]), v(&[4, 1]), v(&[3, 3]), v(&[2, 2])];
        // (3,3) is dominated by (2,2); the duplicate (2,2) pair both stay.
        assert_eq!(non_dominated_indices(&set), vec![0, 1, 2, 4]);
        assert!(is_non_dominated(&v(&[1, 4]), &set));
        assert!(!is_non_dominated(&v(&[3, 3]), &set));
    }
}
