//! Machine-word (`i64`) Hermite normal form kernel.
//!
//! The search hot path of Procedure 5.1 computes one HNF per candidate
//! schedule over matrices whose entries are tiny (|entry| ≤ Σμ). Running
//! the elimination of [`crate::hnf`] on heap-allocated [`Int`]s there is
//! pure overhead, so this module provides:
//!
//! * [`try_hermite_i64`] — the identical extended-gcd column elimination
//!   on flat `i64` buffers (intermediates in `i128`, every store
//!   overflow-checked), reusing a caller-provided [`HnfWorkspace`] so a
//!   screening loop performs no per-candidate allocation beyond the final
//!   [`Hnf`] assembly.
//! * [`hnf_prefix_i64`] / [`HnfPrefix::complete`] /
//!   [`HnfPrefix::complete_rows`] — incremental screening for a stack
//!   `[F; R]` whose leading block `F` is fixed across the whole
//!   enumeration (the space rows `S` of `T = [S; Π]` in Procedure 5.1;
//!   the fixed `Π` row of the permuted stack `[Π; S]` in the space
//!   search): eliminate `F` once, then per candidate only transform and
//!   reduce the varying trailing rows. Column operations for trailing
//!   rows touch only columns ≥ rank(F), which are zero in the eliminated
//!   `F` block, so the result is bit-identical to running the full
//!   elimination from scratch — including for *multiple* trailing rows,
//!   because every column operation of the from-scratch elimination acts
//!   on whole columns (later trailing rows see earlier ones' operations
//!   through the shared buffer, exactly as in the full run).
//!
//! On any overflow every routine returns `None` and the caller falls back
//! to [`crate::hnf::hermite_normal_form_bignum`]; the fallback frequency
//! is tracked by [`crate::stats`].
//!
//! [`Int`]: crate::int::Int

use std::ops::Range;

use crate::hnf::Hnf;
use crate::int::Int;
use crate::mat::IMat;

/// Reusable flat buffers for the `i64` elimination. Create once per
/// thread (or per search) and pass to every call; buffers grow to the
/// largest problem seen and are then recycled.
#[derive(Default)]
pub struct HnfWorkspace {
    h: Vec<i64>,
    u: Vec<i64>,
}

impl HnfWorkspace {
    /// An empty workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        HnfWorkspace::default()
    }
}

/// Extended gcd in `i128` with exactly the truncated-division update loop
/// of [`Int::extended_gcd`], so both tiers produce identical multipliers.
/// For `i64` inputs no intermediate can overflow `i128`.
fn ext_gcd_i128(a: i128, b: i128) -> (i128, i128, i128) {
    let (mut old_r, mut r) = (a, b);
    let (mut old_s, mut s) = (1i128, 0i128);
    let (mut old_t, mut t) = (0i128, 1i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
        (old_t, t) = (t, old_t - q * t);
    }
    if old_r < 0 {
        (old_r, old_s, old_t) = (-old_r, -old_s, -old_t);
    }
    (old_r, old_s, old_t)
}

fn swap_cols(m: &mut [i64], rows: usize, n: usize, a: usize, b: usize) {
    for r in 0..rows {
        m.swap(r * n + a, r * n + b);
    }
}

fn negate_col(m: &mut [i64], rows: usize, n: usize, c: usize) -> Option<()> {
    for r in 0..rows {
        m[r * n + c] = m[r * n + c].checked_neg()?;
    }
    Some(())
}

/// Coefficients of one extended-gcd column combination (see
/// [`combine_cols`]): Bezout pair `x, y` and the cofactors `bg = b/g`,
/// `ag = a/g`.
#[derive(Clone, Copy)]
struct Combo {
    x: i128,
    y: i128,
    bg: i128,
    ag: i128,
}

/// `[col_i, col_j] ← [x·col_i + y·col_j, −bg·col_i + ag·col_j]`, all
/// products in `i128` and every store checked back into `i64`.
fn combine_cols(m: &mut [i64], rows: usize, n: usize, i: usize, j: usize, co: Combo) -> Option<()> {
    for r in 0..rows {
        let vi = m[r * n + i] as i128;
        let vj = m[r * n + j] as i128;
        let ni = co.x.checked_mul(vi)?.checked_add(co.y.checked_mul(vj)?)?;
        let nj = co.ag.checked_mul(vj)?.checked_sub(co.bg.checked_mul(vi)?)?;
        m[r * n + i] = i64::try_from(ni).ok()?;
        m[r * n + j] = i64::try_from(nj).ok()?;
    }
    Some(())
}

/// The elimination loop of [`crate::hnf::hermite_normal_form_bignum`] on
/// flat buffers: process `rows` of `h` (a `hrows × n` matrix), starting at
/// pivot column `pivot`, mirroring every column operation into `u`
/// (`n × n`). Returns the final pivot count (the rank) or `None` on
/// overflow, in which case the buffers hold garbage and must be discarded.
fn eliminate(
    h: &mut [i64],
    hrows: usize,
    u: &mut [i64],
    n: usize,
    rows: Range<usize>,
    mut pivot: usize,
) -> Option<usize> {
    for row in rows {
        if pivot >= n {
            break;
        }
        let Some(first) = (pivot..n).find(|&c| h[row * n + c] != 0) else {
            continue; // dependent row: no pivot here
        };
        if first != pivot {
            swap_cols(h, hrows, n, pivot, first);
            swap_cols(u, n, n, pivot, first);
        }
        for c in pivot + 1..n {
            if h[row * n + c] == 0 {
                continue;
            }
            let a = h[row * n + pivot];
            let b = h[row * n + c];
            let (g, x, y) = ext_gcd_i128(a as i128, b as i128);
            let co = Combo { x, y, bg: b as i128 / g, ag: a as i128 / g };
            combine_cols(h, hrows, n, pivot, c, co)?;
            combine_cols(u, n, n, pivot, c, co)?;
            debug_assert_eq!(h[row * n + pivot] as i128, g);
            debug_assert_eq!(h[row * n + c], 0);
        }
        if h[row * n + pivot] < 0 {
            negate_col(h, hrows, n, pivot)?;
            negate_col(u, n, n, pivot)?;
        }
        pivot += 1;
    }
    Some(pivot)
}

fn load_i64(t: &IMat, out: &mut Vec<i64>) -> Option<()> {
    out.clear();
    out.reserve(t.nrows() * t.ncols());
    for r in 0..t.nrows() {
        for c in 0..t.ncols() {
            out.push(t.get(r, c).to_i64()?);
        }
    }
    Some(())
}

fn load_identity(n: usize, out: &mut Vec<i64>) {
    out.clear();
    out.resize(n * n, 0);
    for i in 0..n {
        out[i * n + i] = 1;
    }
}

fn build_hnf(h: &[i64], k: usize, u: &[i64], n: usize, rank: usize) -> Hnf {
    let hm = IMat::from_fn(k, n, |i, j| Int::from(h[i * n + j]));
    let um = IMat::from_fn(n, n, |i, j| Int::from(u[i * n + j]));
    Hnf::from_parts(hm, um, rank)
}

/// Attempt the full Hermite normal form entirely in `i64`. Returns `None`
/// when an entry or intermediate does not fit, leaving the workspace ready
/// for reuse. The caller is responsible for the fast/fallback counters.
pub(crate) fn try_hermite_i64(t: &IMat, ws: &mut HnfWorkspace) -> Option<Hnf> {
    let k = t.nrows();
    let n = t.ncols();
    load_i64(t, &mut ws.h)?;
    load_identity(n, &mut ws.u);
    let HnfWorkspace { h, u } = ws;
    let rank = eliminate(h, k, u, n, 0..k, 0)?;
    Some(build_hnf(h, k, u, n, rank))
}

/// The eliminated state of the fixed rows `S` of `T = [S; Π]`, ready to be
/// completed with any number of candidate `Π` rows via
/// [`HnfPrefix::complete`].
pub struct HnfPrefix {
    n: usize,
    k_s: usize,
    rank_s: usize,
    /// `S · U_S`, the eliminated `k_s × n` block (columns ≥ `rank_s` zero).
    h_s: Vec<i64>,
    /// The accumulated `n × n` unimodular multiplier for the `S` rows.
    u_s: Vec<i64>,
}

/// Pre-eliminate the fixed `S` block once. Returns `None` when `S` does
/// not fit the `i64` kernel — the caller then screens candidates with the
/// ordinary full HNF instead.
pub fn hnf_prefix_i64(s: &IMat) -> Option<HnfPrefix> {
    let k_s = s.nrows();
    let n = s.ncols();
    let mut h_s = Vec::new();
    load_i64(s, &mut h_s)?;
    let mut u_s = Vec::new();
    load_identity(n, &mut u_s);
    let rank_s = eliminate(&mut h_s, k_s, &mut u_s, n, 0..k_s, 0)?;
    Some(HnfPrefix { n, k_s, rank_s, h_s, u_s })
}

impl HnfPrefix {
    /// Number of columns of the prefixed matrix.
    pub fn ncols(&self) -> usize {
        self.n
    }

    /// Complete the HNF of `[S; pi]` for one candidate row `pi`,
    /// continuing the saved elimination state. Bit-identical to
    /// `hermite_normal_form(&[S; pi])`: the elimination of the first `k_s`
    /// rows never inspects the last row, and the last row's column
    /// operations only touch columns ≥ rank(S), which are zero throughout
    /// the eliminated `S` block.
    ///
    /// Counts a fast-path HNF on success; on overflow returns `None`
    /// (count nothing — the caller's full-HNF retry records its own
    /// outcome).
    pub fn complete(&self, pi: &[i64], ws: &mut HnfWorkspace) -> Option<Hnf> {
        self.complete_rows(&[pi], ws)
    }

    /// Complete the HNF of `[F; rows]` for any number of candidate
    /// trailing rows, continuing the saved elimination state of the fixed
    /// block `F`. Bit-identical to the from-scratch elimination of the
    /// stacked matrix: eliminating `F` never inspects the trailing rows
    /// but *does* transform them (column operations act on whole columns,
    /// which is exactly right-multiplication by `U_F`), and because all
    /// trailing rows share the workspace buffer, the column operations
    /// performed while reducing one trailing row reach the later ones —
    /// the same data flow as the full run.
    ///
    /// Counts a fast-path HNF on success; on overflow returns `None`
    /// (count nothing — the caller's full-HNF retry records its own
    /// outcome).
    pub fn complete_rows(&self, rows: &[&[i64]], ws: &mut HnfWorkspace) -> Option<Hnf> {
        let n = self.n;
        let k = self.k_s + rows.len();
        ws.h.clear();
        ws.h.extend_from_slice(&self.h_s);
        // Each trailing row after the F eliminations is row · U_F.
        for row in rows {
            assert_eq!(row.len(), n, "candidate row dimension mismatch");
            for c in 0..n {
                let mut acc: i128 = 0;
                for (r, &p) in row.iter().enumerate() {
                    acc = acc.checked_add(p as i128 * self.u_s[r * n + c] as i128)?;
                }
                ws.h.push(i64::try_from(acc).ok()?);
            }
        }
        ws.u.clear();
        ws.u.extend_from_slice(&self.u_s);
        let HnfWorkspace { h, u } = ws;
        let rank = eliminate(h, k, u, n, self.k_s..k, self.rank_s)?;
        let hnf = build_hnf(h, k, u, n, rank);
        crate::stats::note_hnf_i64_fast();
        Some(hnf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hnf::{hermite_normal_form, hermite_normal_form_bignum};

    fn mat_from(v: &[i64], k: usize, n: usize) -> IMat {
        IMat::from_fn(k, n, |i, j| Int::from(v[i * n + j]))
    }

    fn assert_same_hnf(a: &Hnf, b: &Hnf) {
        assert_eq!(a.h, b.h, "H differs");
        assert_eq!(a.u, b.u, "U differs");
        assert_eq!(a.rank, b.rank, "rank differs");
        assert_eq!(a.kernel_cols(), b.kernel_cols(), "kernel differs");
    }

    #[test]
    fn i64_kernel_matches_bignum_on_paper_examples() {
        for t in [
            mat_from(&[1, 7, 1, 1, 1, 7, 1, 0], 2, 4),
            mat_from(&[1, 1, -1, 1, 4, 1], 2, 3),
            mat_from(&[6, 10, 15], 1, 3),
        ] {
            let mut ws = HnfWorkspace::new();
            let fast = try_hermite_i64(&t, &mut ws).expect("small entries must stay i64");
            assert_same_hnf(&fast, &hermite_normal_form_bignum(&t));
        }
    }

    #[test]
    fn mid_elimination_overflow_falls_back() {
        // Entries ~2^40: the first extended-gcd combo produces multiplier
        // entries of the same magnitude, and the second column combination
        // must then form products ~2^80 — far outside i64. The i64 kernel
        // must bail out and the public dispatch must still agree with the
        // bignum path.
        let t = mat_from(
            &[(1 << 40) + 1, 1 << 40, 3, 5, (1 << 40) + 3, (1 << 40) - 7],
            2,
            3,
        );
        let mut ws = HnfWorkspace::new();
        assert!(
            try_hermite_i64(&t, &mut ws).is_none(),
            "engineered overflow case unexpectedly fit i64"
        );
        let fallback_before = crate::stats::hnf_i64_fallback_total();
        let via_dispatch = hermite_normal_form(&t);
        assert_same_hnf(&via_dispatch, &hermite_normal_form_bignum(&t));
        assert!(
            crate::stats::hnf_i64_fallback_total() > fallback_before,
            "fallback counter must record the bignum retry"
        );
    }

    #[test]
    fn entries_beyond_i64_fall_back() {
        let huge: Int = "123456789012345678901234567890".parse().unwrap();
        let t = IMat::from_fn(1, 2, |_, j| if j == 0 { huge.clone() } else { Int::from(3) });
        let mut ws = HnfWorkspace::new();
        assert!(try_hermite_i64(&t, &mut ws).is_none());
        // Dispatch still yields a correct HNF via the bignum path.
        let hnf = hermite_normal_form(&t);
        assert_eq!(&(&t * &hnf.u), &hnf.h);
    }

    #[test]
    fn prefix_completion_matches_full_hnf_on_matmul_enumeration() {
        // S = the paper's matmul space row, Π sweeping a few candidates —
        // exactly the [S; Π] shape Procedure 5.1 screens.
        let s = mat_from(&[1, 1, -1], 1, 3);
        let prefix = hnf_prefix_i64(&s).expect("small S must pre-eliminate");
        let mut ws = HnfWorkspace::new();
        for pi in [[1i64, 4, 1], [1, 0, 0], [0, 0, 0], [2, -3, 5], [-1, -1, 1]] {
            let inc = prefix.complete(&pi, &mut ws).expect("small candidate row");
            let t = mat_from(&[1, 1, -1, pi[0], pi[1], pi[2]], 2, 3);
            assert_same_hnf(&inc, &hermite_normal_form_bignum(&t));
        }
    }

    #[test]
    fn prefix_handles_rank_deficient_s() {
        // S itself is rank-deficient (row 2 = 2·row 1).
        let s = mat_from(&[1, 2, 3, 4, 2, 4, 6, 8], 2, 4);
        let prefix = hnf_prefix_i64(&s).unwrap();
        let mut ws = HnfWorkspace::new();
        for pi in [[0i64, 1, 0, 0], [3, 1, 4, 1], [0, 0, 0, 0]] {
            let inc = prefix.complete(&pi, &mut ws).unwrap();
            let t = mat_from(
                &[1, 2, 3, 4, 2, 4, 6, 8, pi[0], pi[1], pi[2], pi[3]],
                3,
                4,
            );
            assert_same_hnf(&inc, &hermite_normal_form_bignum(&t));
        }
    }

    cfmap_testkit::props! {
        cases = 64;

        /// Differential: the i64 kernel and the bignum elimination are
        /// bit-identical wherever the former applies.
        fn i64_kernel_matches_bignum_2x4(v in cfmap_testkit::gen::vec(-9i64..=9, 8)) {
            let t = mat_from(&v, 2, 4);
            let mut ws = HnfWorkspace::new();
            let fast = try_hermite_i64(&t, &mut ws).expect("single-digit entries fit i64");
            assert_same_hnf(&fast, &hermite_normal_form_bignum(&t));
        }

        fn i64_kernel_matches_bignum_3x5(v in cfmap_testkit::gen::vec(-9i64..=9, 15)) {
            let t = mat_from(&v, 3, 5);
            let mut ws = HnfWorkspace::new();
            let fast = try_hermite_i64(&t, &mut ws).expect("single-digit entries fit i64");
            assert_same_hnf(&fast, &hermite_normal_form_bignum(&t));
        }

        /// Differential: S-prefix incremental completion equals the full
        /// HNF of the stacked matrix for every candidate last row.
        fn prefix_matches_full_2x4(
            s_v in cfmap_testkit::gen::vec(-9i64..=9, 4),
            pi in cfmap_testkit::gen::vec(-9i64..=9, 4),
        ) {
            let s = mat_from(&s_v, 1, 4);
            let prefix = hnf_prefix_i64(&s).unwrap();
            let mut ws = HnfWorkspace::new();
            let inc = prefix.complete(&pi, &mut ws).expect("small rows fit i64");
            let mut t_v = s_v.clone();
            t_v.extend_from_slice(&pi);
            let t = mat_from(&t_v, 2, 4);
            assert_same_hnf(&inc, &hermite_normal_form_bignum(&t));
        }

        fn prefix_matches_full_3x5(
            s_v in cfmap_testkit::gen::vec(-9i64..=9, 10),
            pi in cfmap_testkit::gen::vec(-9i64..=9, 5),
        ) {
            let s = mat_from(&s_v, 2, 5);
            let prefix = hnf_prefix_i64(&s).unwrap();
            let mut ws = HnfWorkspace::new();
            let inc = prefix.complete(&pi, &mut ws).expect("small rows fit i64");
            let mut t_v = s_v.clone();
            t_v.extend_from_slice(&pi);
            let t = mat_from(&t_v, 3, 5);
            assert_same_hnf(&inc, &hermite_normal_form_bignum(&t));
        }

        /// Differential: multi-trailing-row completion equals the full
        /// HNF of the stacked matrix — the space-search shape, where the
        /// fixed block is the Π row and the trailing rows are a varying
        /// 2-row space map.
        fn prefix_matches_full_multirow_3x5(
            f_v in cfmap_testkit::gen::vec(-9i64..=9, 5),
            r_v in cfmap_testkit::gen::vec(-9i64..=9, 10),
        ) {
            let f = mat_from(&f_v, 1, 5);
            let prefix = hnf_prefix_i64(&f).unwrap();
            let mut ws = HnfWorkspace::new();
            let rows: Vec<&[i64]> = vec![&r_v[..5], &r_v[5..]];
            let inc = prefix.complete_rows(&rows, &mut ws).expect("small rows fit i64");
            let mut t_v = f_v.clone();
            t_v.extend_from_slice(&r_v);
            let t = mat_from(&t_v, 3, 5);
            assert_same_hnf(&inc, &hermite_normal_form_bignum(&t));
        }

        fn prefix_matches_full_multirow_4x4(
            f_v in cfmap_testkit::gen::vec(-9i64..=9, 8),
            r_v in cfmap_testkit::gen::vec(-9i64..=9, 8),
        ) {
            let f = mat_from(&f_v, 2, 4);
            let prefix = hnf_prefix_i64(&f).unwrap();
            let mut ws = HnfWorkspace::new();
            let rows: Vec<&[i64]> = vec![&r_v[..4], &r_v[4..]];
            let inc = prefix.complete_rows(&rows, &mut ws).expect("small rows fit i64");
            let mut t_v = f_v.clone();
            t_v.extend_from_slice(&r_v);
            let t = mat_from(&t_v, 4, 4);
            assert_same_hnf(&inc, &hermite_normal_form_bignum(&t));
        }

        /// Overflow honesty: matrices with huge entries either fit (and
        /// agree) or return None — never a wrong answer.
        fn i64_kernel_never_wrong_on_big_entries(
            v in cfmap_testkit::gen::vec(-(1i64 << 45)..=(1i64 << 45), 6),
        ) {
            let t = mat_from(&v, 2, 3);
            let mut ws = HnfWorkspace::new();
            if let Some(fast) = try_hermite_i64(&t, &mut ws) {
                assert_same_hnf(&fast, &hermite_normal_form_bignum(&t));
            }
        }
    }
}
