//! Column-style Hermite normal form with unimodular multiplier.
//!
//! Theorem 4.1 of the paper: for `T ∈ Z^{k×n}` with `rank(T) = k` there is a
//! unimodular `U ∈ Z^{n×n}` with `T·U = H = [L, 0]`, `L` lower triangular
//! and nonsingular. The paper deliberately uses a *relaxed* Hermite form —
//! only the `[L, 0]` shape matters, not positivity or reduction of
//! off-diagonal entries — and so do we.
//!
//! Theorem 4.2 then reads all conflict vectors of `T` off the multiplier:
//! they are exactly the primitive integral combinations of the last `n−k`
//! columns of `U`. [`Hnf::kernel_cols`] exposes those columns.
//!
//! The implementation is the classical extended-gcd column elimination and
//! also handles rank-deficient input (pivots simply skip dependent rows),
//! which [`crate::kernel::kernel_basis`] relies on.
//!
//! [`hermite_normal_form`] first attempts the machine-word kernel in
//! [`crate::hnf64`] (same elimination, `i64` entries, reusable workspace)
//! and falls back to the bignum path ([`hermite_normal_form_bignum`]) when
//! any entry or intermediate overflows `i64`. Both produce bit-identical
//! results because they run the identical operation sequence.

use std::cell::RefCell;
use std::sync::OnceLock;

use crate::int::Int;
use crate::mat::IMat;
use crate::vec::IVec;

/// The result of a Hermite normal form computation `T·U = H`.
#[derive(Clone, Debug)]
pub struct Hnf {
    /// `H = T·U`, lower-trapezoidal with trailing zero columns.
    pub h: IMat,
    /// The unimodular multiplier `U`.
    pub u: IMat,
    /// `V = U⁻¹`, computed lazily on first access (most candidate screens
    /// never need it).
    v: OnceLock<IMat>,
    /// `rank(T)`: the number of pivot columns of `H`.
    pub rank: usize,
}

impl Hnf {
    /// Assemble an HNF result from already-computed parts. `V = U⁻¹` is
    /// deferred until [`Hnf::v`] is first called.
    pub(crate) fn from_parts(h: IMat, u: IMat, rank: usize) -> Hnf {
        Hnf { h, u, v: OnceLock::new(), rank }
    }

    /// `V = U⁻¹`, also unimodular (`T = H·V`). Computed on first access
    /// and cached; the adjugate-based inversion is the single most
    /// expensive step of an HNF, and the search hot path never needs it.
    pub fn v(&self) -> &IMat {
        self.v.get_or_init(|| {
            self.u
                .inverse_unimodular()
                .expect("HNF multiplier must be unimodular by construction")
        })
    }

    /// The last `n − rank` columns of `U`: a basis of the integer kernel
    /// lattice `{γ : Tγ = 0}` (Theorem 4.2 (3)).
    pub fn kernel_cols(&self) -> Vec<IVec> {
        (self.rank..self.u.ncols()).map(|c| self.u.col(c)).collect()
    }

    /// The square lower-triangular pivot block `L` (first `rank` rows and
    /// columns of `H` restricted to pivot rows). Only meaningful when `T`
    /// has full row rank, in which case `H = [L, 0]`.
    pub fn pivot_block(&self) -> IMat {
        let r = self.rank;
        IMat::from_fn(r, r, |i, j| self.h.get(i, j).clone())
    }
}

thread_local! {
    /// Per-thread scratch for the `i64` kernel, so every call site of
    /// [`hermite_normal_form`] reuses buffers instead of allocating.
    static HNF64_WS: RefCell<crate::hnf64::HnfWorkspace> =
        RefCell::new(crate::hnf64::HnfWorkspace::new());
}

/// Compute the column-style Hermite normal form `T·U = H = [L, 0]`.
///
/// Works for any integer matrix; for full-row-rank `T` the result matches
/// Theorem 4.1 exactly. Column operations are unimodular 2×2 extended-gcd
/// combinations plus swaps and negations, accumulated into `U`.
///
/// Dispatches to the `i64` kernel ([`crate::hnf64`]) when all entries fit
/// machine words, falling back to [`hermite_normal_form_bignum`] on
/// overflow; the two paths run the identical operation sequence and return
/// bit-identical results.
///
/// # Examples
///
/// ```
/// use cfmap_intlin::{hermite_normal_form, IMat};
///
/// // The mapping matrix of the paper's Example 4.2 (Equation 2.8).
/// let t = IMat::from_rows(&[&[1, 7, 1, 1], &[1, 7, 1, 0]]);
/// let hnf = hermite_normal_form(&t);
/// assert_eq!(hnf.rank, 2);
/// assert_eq!(&(&t * &hnf.u), &hnf.h);          // T·U = H
/// assert!(hnf.u.is_unimodular());
/// for gamma in hnf.kernel_cols() {             // conflict-vector lattice
///     assert!(t.mul_vec(&gamma).is_zero());
/// }
/// ```
pub fn hermite_normal_form(t: &IMat) -> Hnf {
    let fast = HNF64_WS.with(|ws| {
        // `try_borrow_mut` guards against hypothetical reentrancy; a failed
        // borrow simply routes to the bignum path.
        ws.try_borrow_mut()
            .ok()
            .and_then(|mut ws| crate::hnf64::try_hermite_i64(t, &mut ws))
    });
    match fast {
        Some(hnf) => {
            crate::stats::note_hnf_i64_fast();
            hnf
        }
        None => {
            crate::stats::note_hnf_i64_fallback();
            hermite_normal_form_bignum(t)
        }
    }
}

/// The bignum Hermite normal form: identical elimination over [`Int`],
/// with no size limits. [`hermite_normal_form`] uses this as the overflow
/// fallback; it stays public for differential tests and benchmarks.
pub fn hermite_normal_form_bignum(t: &IMat) -> Hnf {
    let k = t.nrows();
    let n = t.ncols();
    let mut h = t.clone();
    let mut u = IMat::identity(n);
    let mut pivot = 0usize; // next pivot column

    for row in 0..k {
        if pivot >= n {
            break;
        }
        // Find any nonzero entry in this row at or right of the pivot column.
        let Some(first) = (pivot..n).find(|&c| !h.get(row, c).is_zero()) else {
            continue; // dependent row: no pivot here
        };
        if first != pivot {
            swap_cols(&mut h, &mut u, pivot, first);
        }
        // Eliminate the rest of the row with extended-gcd column combos.
        for c in pivot + 1..n {
            if h.get(row, c).is_zero() {
                continue;
            }
            let a = h.get(row, pivot).clone();
            let b = h.get(row, c).clone();
            let (g, x, y) = a.extended_gcd(&b);
            // [col_pivot, col_c] ← [col_pivot, col_c] · [[x, -b/g], [y, a/g]]
            // has determinant (x·a + y·b)/g = 1, hence unimodular.
            let bg = b.exact_div(&g);
            let ag = a.exact_div(&g);
            combine_cols(&mut h, pivot, c, &x, &y, &bg, &ag);
            combine_cols(&mut u, pivot, c, &x, &y, &bg, &ag);
            debug_assert_eq!(h.get(row, pivot), &g);
            debug_assert!(h.get(row, c).is_zero());
        }
        // Canonicalize: make the pivot entry positive (negating a column is
        // unimodular).
        if h.get(row, pivot).is_negative() {
            negate_col(&mut h, pivot);
            negate_col(&mut u, pivot);
        }
        pivot += 1;
    }

    let rank = pivot;
    debug_assert_eq!(&(t * &u), &h);
    Hnf::from_parts(h, u, rank)
}

fn swap_cols(h: &mut IMat, u: &mut IMat, a: usize, b: usize) {
    for m in [h, u] {
        for r in 0..m.nrows() {
            let va = m.get(r, a).clone();
            let vb = m.get(r, b).clone();
            m.set(r, a, vb);
            m.set(r, b, va);
        }
    }
}

fn negate_col(m: &mut IMat, c: usize) {
    for r in 0..m.nrows() {
        let v = -m.get(r, c);
        m.set(r, c, v);
    }
}

/// `[col_i, col_j] ← [x·col_i + y·col_j, −bg·col_i + ag·col_j]`.
fn combine_cols(m: &mut IMat, i: usize, j: usize, x: &Int, y: &Int, bg: &Int, ag: &Int) {
    for r in 0..m.nrows() {
        let vi = m.get(r, i).clone();
        let vj = m.get(r, j).clone();
        m.set(r, i, &(x * &vi) + &(y * &vj));
        m.set(r, j, &(ag * &vj) - &(bg * &vi));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[i64]]) -> IMat {
        IMat::from_rows(rows)
    }

    /// Check every postcondition of Theorem 4.1 / 4.2 on an HNF result.
    fn check_hnf(t: &IMat, hnf: &Hnf) {
        // T·U = H
        assert_eq!(&(t * &hnf.u), &hnf.h, "TU != H");
        // U unimodular, V its inverse.
        assert!(hnf.u.is_unimodular(), "U not unimodular");
        assert_eq!(&(&hnf.u * hnf.v()), &IMat::identity(t.ncols()), "UV != I");
        // rank agrees with rational elimination.
        assert_eq!(hnf.rank, t.rank(), "rank mismatch");
        // Trailing columns of H are zero.
        for c in hnf.rank..t.ncols() {
            assert!(hnf.h.col(c).is_zero(), "nonzero column past rank");
        }
        // Lower-trapezoidal: zero strictly above the staircase, and for
        // full-row-rank T the pivot block is lower triangular nonsingular.
        if hnf.rank == t.nrows() {
            for r in 0..t.nrows() {
                for c in r + 1..t.ncols() {
                    assert!(hnf.h.get(r, c).is_zero(), "H not lower triangular at ({r},{c})");
                }
                assert!(!hnf.h.get(r, r).is_zero(), "zero diagonal in L");
            }
            assert!(!hnf.pivot_block().det().is_zero());
        }
        // Kernel columns are killed by T.
        for gamma in hnf.kernel_cols() {
            assert!(t.mul_vec(&gamma).is_zero(), "kernel column not in kernel");
        }
    }

    #[test]
    fn paper_example_4_2() {
        // T of Equation 2.8; paper finds H = [[1,0,0,0],[1,-1,0,0]].
        let t = m(&[&[1, 7, 1, 1], &[1, 7, 1, 0]]);
        let hnf = hermite_normal_form(&t);
        check_hnf(&t, &hnf);
        assert_eq!(hnf.rank, 2);
        assert_eq!(hnf.kernel_cols().len(), 2);
        // Our pivots are positive; diag = (1, 1) since gcd-based.
        assert!(hnf.h.get(0, 0).is_one());
        // The paper's stated multiplier also satisfies all postconditions —
        // verify it independently (it differs from ours by a unimodular
        // column transform on the kernel block).
        let u_paper = m(&[
            &[1, -1, -1, -7],
            &[0, 0, 0, 1],
            &[0, 0, 1, 0],
            &[0, 1, 0, 0],
        ]);
        let h_paper = &t * &u_paper;
        assert_eq!(h_paper, m(&[&[1, 0, 0, 0], &[1, -1, 0, 0]]));
        assert!(u_paper.is_unimodular());
    }

    #[test]
    fn kernel_lattices_agree_with_paper() {
        // Paper Example 4.2: conflict vectors are integral combinations of
        // u3 = [-1,0,1,0], u4 = [-7,1,0,0]. Our kernel basis must span the
        // same lattice: each paper vector must be an integral combination of
        // ours and vice versa.
        let t = m(&[&[1, 7, 1, 1], &[1, 7, 1, 0]]);
        let hnf = hermite_normal_form(&t);
        let ours = IMat::from_cols(&hnf.kernel_cols());
        let paper = IMat::from_cols(&[
            IVec::from_i64s(&[-1, 0, 1, 0]),
            IVec::from_i64s(&[-7, 1, 0, 0]),
        ]);
        assert!(same_lattice(&ours, &paper));
    }

    /// Two full-column-rank integer matrices generate the same column
    /// lattice iff each column of one is an integral combination of the
    /// other's columns (checked by exact rational solve + integrality).
    fn same_lattice(a: &IMat, b: &IMat) -> bool {
        contains_lattice(a, b) && contains_lattice(b, a)
    }

    fn contains_lattice(a: &IMat, b: &IMat) -> bool {
        // Solve a · x = b_col over rationals via least-squares-free direct
        // elimination: since both span the same Q-subspace in our tests,
        // pick rank many independent rows.
        use crate::rat::Rat;
        let rows = a.nrows();
        let cols = a.ncols();
        for bc in 0..b.ncols() {
            let target = b.col(bc);
            // Gaussian elimination on [a | target].
            let mut aug: Vec<Vec<Rat>> = (0..rows)
                .map(|r| {
                    let mut row: Vec<Rat> = (0..cols)
                        .map(|c| Rat::from_int(a.get(r, c).clone()))
                        .collect();
                    row.push(Rat::from_int(target[r].clone()));
                    row
                })
                .collect();
            let mut piv_rows = Vec::new();
            let mut rr = 0;
            for cc in 0..cols {
                let Some(p) = (rr..rows).find(|&r| !aug[r][cc].is_zero()) else {
                    continue;
                };
                aug.swap(rr, p);
                let pv = aug[rr][cc].clone();
                let pivot_row = aug[rr].clone();
                for (r, row) in aug.iter_mut().enumerate() {
                    if r == rr || row[cc].is_zero() {
                        continue;
                    }
                    let f = &row[cc] / &pv;
                    for (entry, p) in row[cc..].iter_mut().zip(&pivot_row[cc..]) {
                        let d = &f * p;
                        *entry = &*entry - &d;
                    }
                }
                piv_rows.push((rr, cc));
                rr += 1;
            }
            // Inconsistent system ⇒ not in the span at all.
            if aug[rr..].iter().any(|row| !row[cols].is_zero()) {
                return false;
            }
            // Solution must be integral.
            for &(r, c) in &piv_rows {
                let x = &aug[r][cols] / &aug[r][c];
                if !x.is_integer() {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn matmul_mapping_hnf() {
        // T = [[1,1,-1],[1,4,1]] (Example 5.1 optimal mapping, μ=4).
        let t = m(&[&[1, 1, -1], &[1, 4, 1]]);
        let hnf = hermite_normal_form(&t);
        check_hnf(&t, &hnf);
        assert_eq!(hnf.rank, 2);
        let kernel = hnf.kernel_cols();
        assert_eq!(kernel.len(), 1);
        // The unique conflict direction: Eq 3.2 gives γ ∝ [−(π2+π3), π1+π3, π1−π2]
        // = [-5, 2, -3]; primitive, first nonzero positive → [5, -2, 3].
        let gamma = kernel[0].primitive_part().unwrap();
        assert_eq!(gamma, IVec::from_i64s(&[5, -2, 3]));
    }

    #[test]
    fn full_rank_square_has_empty_kernel() {
        let t = m(&[&[2, 1], &[1, 1]]);
        let hnf = hermite_normal_form(&t);
        check_hnf(&t, &hnf);
        assert_eq!(hnf.rank, 2);
        assert!(hnf.kernel_cols().is_empty());
    }

    #[test]
    fn rank_deficient_input() {
        let t = m(&[&[1, 2, 3], &[2, 4, 6]]);
        let hnf = hermite_normal_form(&t);
        check_hnf(&t, &hnf);
        assert_eq!(hnf.rank, 1);
        assert_eq!(hnf.kernel_cols().len(), 2);
    }

    #[test]
    fn zero_matrix() {
        let t = IMat::zeros(2, 3);
        let hnf = hermite_normal_form(&t);
        check_hnf(&t, &hnf);
        assert_eq!(hnf.rank, 0);
        assert_eq!(hnf.kernel_cols().len(), 3);
    }

    #[test]
    fn single_row() {
        let t = m(&[&[6, 10, 15]]);
        let hnf = hermite_normal_form(&t);
        check_hnf(&t, &hnf);
        assert_eq!(hnf.rank, 1);
        // gcd(6,10,15) = 1 must land in the pivot.
        assert!(hnf.h.get(0, 0).is_one());
    }

    #[test]
    fn fast_and_bignum_paths_bit_identical() {
        for t in [
            m(&[&[1, 7, 1, 1], &[1, 7, 1, 0]]),
            m(&[&[1, 1, -1], &[1, 4, 1]]),
            m(&[&[1, 2, 3], &[2, 4, 6]]),
            m(&[&[6, 10, 15]]),
            IMat::zeros(2, 3),
        ] {
            let fast = hermite_normal_form(&t);
            let slow = hermite_normal_form_bignum(&t);
            assert_eq!(fast.h, slow.h);
            assert_eq!(fast.u, slow.u);
            assert_eq!(fast.rank, slow.rank);
            assert_eq!(fast.kernel_cols(), slow.kernel_cols());
        }
    }

    #[test]
    fn paper_examples_never_spill_to_bignum() {
        let before = crate::stats::thread_bigint_spills();
        for t in [
            m(&[&[1, 7, 1, 1], &[1, 7, 1, 0]]),
            m(&[&[1, 1, -1], &[1, 4, 1]]),
        ] {
            let hnf = hermite_normal_form(&t);
            assert_eq!(hnf.rank, 2);
        }
        assert_eq!(
            crate::stats::thread_bigint_spills(),
            before,
            "paper-sized HNF must stay on the inline i64 path"
        );
    }

    fn mat_from(v: &[i64], k: usize, n: usize) -> IMat {
        IMat::from_fn(k, n, |i, j| Int::from(v[i * n + j]))
    }

    cfmap_testkit::props! {
        cases = 64;

        fn hnf_postconditions_2x4(v in cfmap_testkit::gen::vec(-9i64..=9, 8)) {
            let t = mat_from(&v, 2, 4);
            let hnf = hermite_normal_form(&t);
            check_hnf(&t, &hnf);
        }

        fn hnf_postconditions_3x5(v in cfmap_testkit::gen::vec(-9i64..=9, 15)) {
            let t = mat_from(&v, 3, 5);
            let hnf = hermite_normal_form(&t);
            check_hnf(&t, &hnf);
        }

        fn hnf_postconditions_4x4(v in cfmap_testkit::gen::vec(-9i64..=9, 16)) {
            let t = mat_from(&v, 4, 4);
            let hnf = hermite_normal_form(&t);
            check_hnf(&t, &hnf);
        }

        fn kernel_dimension(v in cfmap_testkit::gen::vec(-9i64..=9, 10)) {
            let t = mat_from(&v, 2, 5);
            let hnf = hermite_normal_form(&t);
            assert_eq!(hnf.kernel_cols().len(), 5 - t.rank());
        }

        /// Magnitude stress: million-scale entries exercise the bigint
        /// paths (multi-limb gcds and multiplier growth).
        fn hnf_large_entries(v in cfmap_testkit::gen::vec(-1_000_000i64..=1_000_000, 6)) {
            let t = mat_from(&v, 2, 3);
            let hnf = hermite_normal_form(&t);
            check_hnf(&t, &hnf);
        }

        /// Wide shapes: 3×8 with a 5-dimensional kernel.
        fn hnf_wide(v in cfmap_testkit::gen::vec(-9i64..=9, 24)) {
            let t = mat_from(&v, 3, 8);
            let hnf = hermite_normal_form(&t);
            check_hnf(&t, &hnf);
            assert_eq!(hnf.kernel_cols().len(), 8 - t.rank());
        }
    }
}
