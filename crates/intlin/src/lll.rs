//! LLL lattice basis reduction (Lenstra–Lenstra–Lovász, δ = 3/4).
//!
//! The conflict-freedom decision reduces to "does the kernel lattice of
//! `T` contain a nonzero point of the box `[−μ, μ]^n`?" — a shortest-ish
//! vector question. Enumeration over an arbitrary kernel basis can have a
//! needlessly large coefficient box; reducing the basis first both
//! tightens the box and surfaces small conflict vectors immediately (a
//! reduced basis's first vector is within `2^{(d−1)/2}` of the shortest
//! lattice vector).
//!
//! Exact implementation over [`Rat`]: no floating point, so the reduction
//! is deterministic and the output provably generates the same lattice
//! (only unimodular operations are applied).

use crate::int::Int;
use crate::rat::Rat;
use crate::vec::IVec;

/// LLL-reduce the given lattice basis (columns) in place with δ = 3/4.
///
/// Returns the reduced basis. The output generates exactly the same
/// lattice (size-reductions and swaps are unimodular). Panics if the
/// input vectors are linearly dependent.
///
/// # Examples
///
/// ```
/// use cfmap_intlin::{lll_reduce, norm_sq, IVec, Int};
///
/// let skewed = vec![IVec::from_i64s(&[101, 100]), IVec::from_i64s(&[100, 99])];
/// let reduced = lll_reduce(&skewed);
/// // det = −1 ⇒ the lattice is all of Z²; the reduced basis is short.
/// assert!(norm_sq(&reduced[0]) <= Int::from(2));
/// ```
pub fn lll_reduce(basis: &[IVec]) -> Vec<IVec> {
    let d = basis.len();
    if d <= 1 {
        return basis.to_vec();
    }
    let n = basis[0].dim();
    for v in basis {
        assert_eq!(v.dim(), n, "lll_reduce: ragged basis");
    }
    let mut b: Vec<IVec> = basis.to_vec();

    // Gram–Schmidt data over Rat: `mu[i][j]` for j < i, and the squared
    // norms `b_star_sq[i]` of the orthogonalized vectors.
    let (mut mu, mut b_star_sq) = gram_schmidt(&b);
    for q in &b_star_sq {
        assert!(!q.is_zero(), "lll_reduce: linearly dependent basis");
    }

    let delta = Rat::new(Int::from(3), Int::from(4));
    let half = Rat::new(Int::from(1), Int::from(2));
    let mut k = 1usize;
    while k < d {
        // Size-reduce b_k against b_{k-1}, …, b_0.
        for j in (0..k).rev() {
            if mu[k][j].abs() > half {
                let q = nearest_int(&mu[k][j]);
                b[k] = &b[k] - &b[j].scale(&q);
                let (m2, s2) = gram_schmidt(&b);
                mu = m2;
                b_star_sq = s2;
            }
        }
        // Lovász condition.
        let lhs = b_star_sq[k].clone();
        let rhs = &(&delta - &(&mu[k][k - 1] * &mu[k][k - 1])) * &b_star_sq[k - 1];
        if lhs >= rhs {
            k += 1;
        } else {
            b.swap(k, k - 1);
            let (m2, s2) = gram_schmidt(&b);
            mu = m2;
            b_star_sq = s2;
            k = k.max(2) - 1;
        }
    }
    b
}

/// Exact Gram–Schmidt: returns (μ coefficients, squared norms of b*).
fn gram_schmidt(b: &[IVec]) -> (Vec<Vec<Rat>>, Vec<Rat>) {
    let d = b.len();
    // Represent b*_i over Rat as coefficient-free projections using inner
    // products: maintain b*_i explicitly as rational vectors.
    let n = b[0].dim();
    let mut b_star: Vec<Vec<Rat>> = Vec::with_capacity(d);
    let mut mu = vec![vec![Rat::zero(); d]; d];
    let mut norms = Vec::with_capacity(d);
    for i in 0..d {
        let mut v: Vec<Rat> = (0..n).map(|c| Rat::from_int(b[i][c].clone())).collect();
        for j in 0..i {
            // μ_{ij} = ⟨b_i, b*_j⟩ / ⟨b*_j, b*_j⟩.
            let mut dot = Rat::zero();
            for c in 0..n {
                dot += &(&Rat::from_int(b[i][c].clone()) * &b_star[j][c]);
            }
            let m = if norms[j] == Rat::zero() { Rat::zero() } else { &dot / &norms[j] };
            mu[i][j] = m.clone();
            for c in 0..n {
                let delta = &m * &b_star[j][c];
                v[c] = &v[c] - &delta;
            }
        }
        let mut norm = Rat::zero();
        for x in &v {
            norm += &(x * x);
        }
        norms.push(norm);
        b_star.push(v);
    }
    (mu, norms)
}

/// Round a rational to the nearest integer (ties toward +∞, any
/// consistent rule works for size reduction).
fn nearest_int(r: &Rat) -> Int {
    let half = Rat::new(Int::from(1), Int::from(2));
    (r + &half).floor()
}

/// Squared Euclidean norm of an integer vector.
pub fn norm_sq(v: &IVec) -> Int {
    v.iter().map(|x| x * x).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hnf::hermite_normal_form;
    use crate::mat::IMat;

    fn v(xs: &[i64]) -> IVec {
        IVec::from_i64s(xs)
    }

    /// Same-lattice check via the HNF saturation trick on the stacked
    /// matrices: each basis expresses the other integrally.
    fn same_lattice(a: &[IVec], b: &[IVec]) -> bool {
        if a.len() != b.len() {
            return false;
        }
        expresses(a, b) && expresses(b, a)
    }

    fn expresses(gen: &[IVec], target: &[IVec]) -> bool {
        use crate::rat::Rat;
        let rows = gen[0].dim();
        let cols = gen.len();
        for t in target {
            // Solve gen · x = t exactly; must be integral & consistent.
            let mut aug: Vec<Vec<Rat>> = (0..rows)
                .map(|r| {
                    let mut row: Vec<Rat> =
                        (0..cols).map(|c| Rat::from_int(gen[c][r].clone())).collect();
                    row.push(Rat::from_int(t[r].clone()));
                    row
                })
                .collect();
            let mut rr = 0;
            let mut pivots = Vec::new();
            for cc in 0..cols {
                let Some(p) = (rr..rows).find(|&r| !aug[r][cc].is_zero()) else { continue };
                aug.swap(rr, p);
                let pv = aug[rr][cc].clone();
                let pivot_row = aug[rr].clone();
                for (r, row) in aug.iter_mut().enumerate() {
                    if r == rr || row[cc].is_zero() {
                        continue;
                    }
                    let f = &row[cc] / &pv;
                    for (entry, p) in row[cc..].iter_mut().zip(&pivot_row[cc..]) {
                        let d = &f * p;
                        *entry = &*entry - &d;
                    }
                }
                pivots.push((rr, cc));
                rr += 1;
            }
            if aug[rr..].iter().any(|row| !row[cols].is_zero()) {
                return false;
            }
            if !pivots.iter().all(|&(r, c)| (&aug[r][cols] / &aug[r][c]).is_integer()) {
                return false;
            }
        }
        true
    }

    #[test]
    fn classic_reduction_example() {
        // The textbook 2-D example: (1, 1), (1, 0)-ish skewed basis.
        let basis = vec![v(&[1, 1]), v(&[1, 0])];
        let red = lll_reduce(&basis);
        assert!(same_lattice(&basis, &red));
        // Shortest vector in Z² has norm² 1.
        assert_eq!(norm_sq(&red[0]), crate::int::Int::from(1));
    }

    #[test]
    fn skewed_basis_gets_shorter() {
        // Badly skewed basis of a simple lattice.
        let basis = vec![v(&[101, 100]), v(&[100, 99])];
        let red = lll_reduce(&basis);
        assert!(same_lattice(&basis, &red));
        // The lattice is actually all of Z² (det = 101·99 − 100·100 = −1).
        assert!(norm_sq(&red[0]) <= crate::int::Int::from(2));
        assert!(norm_sq(&red[1]) <= crate::int::Int::from(2));
    }

    #[test]
    fn single_vector_passthrough() {
        let basis = vec![v(&[3, -5, 7])];
        assert_eq!(lll_reduce(&basis), basis);
        assert!(lll_reduce(&[]).is_empty());
    }

    #[test]
    fn kernel_basis_reduction_preserves_lattice() {
        // Reduce the conflict lattice of the Eq 2.8 mapping.
        let t = IMat::from_rows(&[&[1, 7, 1, 1], &[1, 7, 1, 0]]);
        let hnf = hermite_normal_form(&t);
        let kernel = hnf.kernel_cols();
        let red = lll_reduce(&kernel);
        assert!(same_lattice(&kernel, &red));
        for g in &red {
            assert!(t.mul_vec(g).is_zero());
        }
        // The short vector γ₃ = [1, 0, −1, 0] (norm² 2) must be found
        // (first reduced vector is within factor √2^{d−1} of shortest).
        assert!(norm_sq(&red[0]) <= crate::int::Int::from(4));
    }

    #[test]
    #[should_panic(expected = "linearly dependent")]
    fn dependent_basis_rejected() {
        let _ = lll_reduce(&[v(&[1, 2]), v(&[2, 4])]);
    }

    cfmap_testkit::props! {
        cases = 40;

        fn reduction_preserves_lattice_2d(
            a in cfmap_testkit::gen::vec(-20i64..=20, 4),
        ) {
            let b1 = v(&[a[0], a[1]]);
            let b2 = v(&[a[2], a[3]]);
            // Skip dependent inputs.
            cfmap_testkit::tk_assume!(a[0] * a[3] - a[1] * a[2] != 0);
            let basis = vec![b1, b2];
            let red = lll_reduce(&basis);
            assert!(same_lattice(&basis, &red));
            // Reduced vectors are not longer than the originals' max.
            let orig_max = basis.iter().map(norm_sq).max().unwrap();
            for r in &red {
                assert!(norm_sq(r) <= orig_max.clone() * crate::int::Int::from(2));
            }
        }

        fn reduction_preserves_kernel_3d(
            entries in cfmap_testkit::gen::vec(-6i64..=6, 10),
        ) {
            let t = IMat::from_fn(2, 5, |i, j| crate::int::Int::from(entries[i * 5 + j]));
            let hnf = hermite_normal_form(&t);
            let kernel = hnf.kernel_cols();
            if kernel.len() < 2 {
                return;
            }
            let red = lll_reduce(&kernel);
            assert!(same_lattice(&kernel, &red));
            for g in &red {
                assert!(t.mul_vec(g).is_zero());
            }
        }
    }
}
