//! Exact integer and rational linear algebra for the conflict-free mapping
//! library.
//!
//! This crate is the mathematical substrate of the Shang–Fortes (ICPP 1990)
//! reproduction. Everything here is exact: there is no floating point
//! anywhere. The centrepiece is the column-style **Hermite normal form**
//! `T·U = H = [L, 0]` with a unimodular multiplier `U` (Theorem 4.1 of the
//! paper), from which all conflict vectors of a mapping matrix are read off
//! as integral combinations of the last `n−k` columns of `U` (Theorem 4.2).
//!
//! Contents:
//!
//! * [`Int`] — arbitrary-precision signed integers with an inline `i64`
//!   fast path (tagged representation; values spill to sign + little-endian
//!   `u32` limbs only on overflow). Hermite multipliers, adjugates and
//!   simplex pivots can overflow machine words, so every matrix entry in
//!   this crate is an [`Int`].
//! * [`Rat`] — exact rationals over [`Int`], always kept in lowest terms
//!   with a positive denominator. Used by the exact simplex in `cfmap-lp`
//!   and by matrix inversion.
//! * [`IVec`] / [`IMat`] — dense integer vectors and matrices with the
//!   operations the paper needs: products, transpose, Bareiss determinant,
//!   rank, cofactors/adjugate, rational inverse.
//! * [`hnf`] — Hermite normal form with unimodular multiplier `U` and its
//!   inverse `V = U⁻¹`.
//! * [`smith`] — Smith normal form (diagonal `d_1 | d_2 | …` with
//!   unimodular `P`, `Q`), used for lattice-theoretic sanity checks.
//! * [`kernel`] — integer kernel lattice bases (the conflict-vector
//!   lattice of a mapping matrix).
//! * [`hnf64`] — a machine-word (`i64`) Hermite normal form kernel with a
//!   reusable workspace and an incremental fixed-prefix variant for the
//!   search hot path; it promotes to the bignum path on overflow.
//! * [`stats`] — process-wide counters tracking how often the fast paths
//!   fall back to heap-allocated bignum arithmetic.
//! * [`dominance`] — exact Pareto-dominance comparisons over [`Rat`]
//!   objective vectors, used by the multi-objective frontier search.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affine;
pub mod dominance;
pub mod gcd;
pub mod hnf;
pub mod hnf64;
pub mod int;
pub mod kernel;
pub mod lll;
pub mod mat;
pub mod rat;
pub mod smith;
pub mod stats;
pub mod vec;

pub use affine::{AffineInt, RatInterval};
pub use dominance::{dominates, is_non_dominated, non_dominated_indices};
pub use hnf::{hermite_normal_form, hermite_normal_form_bignum, Hnf};
pub use hnf64::{hnf_prefix_i64, HnfPrefix, HnfWorkspace};
pub use int::Int;
pub use kernel::kernel_basis;
pub use lll::{lll_reduce, norm_sq};
pub use mat::IMat;
pub use rat::Rat;
pub use smith::{smith_normal_form, Smith};
pub use stats::{
    bigint_spills_total, hnf_i64_fallback_total, hnf_i64_fast_total, thread_bigint_spills,
};
pub use vec::IVec;
