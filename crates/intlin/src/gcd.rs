//! Greatest-common-divisor helpers on machine integers.
//!
//! The paper leans on gcds in two places: a *conflict vector* must have
//! relatively prime entries (Definition 2.3), and the sufficient condition of
//! Theorem 4.5 bounds `gcd(u_{i,k+1}, …, u_{i,n})` rows of the Hermite
//! multiplier. These helpers cover the machine-word cases; [`crate::Int`]
//! has its own big-integer gcd.

/// Greatest common divisor of two `i64`s, always non-negative.
///
/// `gcd(0, 0) == 0` by convention.
pub fn gcd_i64(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    if a == 0 {
        return b as i64;
    }
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a as i64
}

/// Greatest common divisor of a slice, always non-negative.
///
/// Empty slices and all-zero slices yield 0.
pub fn gcd_slice(xs: &[i64]) -> i64 {
    xs.iter().fold(0, |acc, &x| gcd_i64(acc, x))
}

/// `true` iff the entries of `xs` are relatively prime (gcd is exactly 1).
///
/// This is the primitivity requirement on conflict vectors in
/// Definition 2.3 of the paper.
pub fn is_primitive(xs: &[i64]) -> bool {
    gcd_slice(xs) == 1
}

/// Extended Euclid on `i64`: returns `(g, x, y)` with `a·x + b·y = g` and
/// `g = gcd(a, b) ≥ 0`.
pub fn extended_gcd_i64(a: i64, b: i64) -> (i64, i64, i64) {
    // Invariants: old_r = a*old_s + b*old_t, r = a*s + b*t.
    let (mut old_r, mut r) = (a as i128, b as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    let (mut old_t, mut t) = (0i128, 1i128);
    while r != 0 {
        let q = old_r.div_euclid(r);
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
        (old_t, t) = (t, old_t - q * t);
    }
    if old_r < 0 {
        old_r = -old_r;
        old_s = -old_s;
        old_t = -old_t;
    }
    (old_r as i64, old_s as i64, old_t as i64)
}

/// Least common multiple of two `i64`s (non-negative; 0 if either is 0).
///
/// Panics on overflow in debug builds (the library only uses this on small
/// schedule entries).
pub fn lcm_i64(a: i64, b: i64) -> i64 {
    if a == 0 || b == 0 {
        return 0;
    }
    (a / gcd_i64(a, b)).abs().checked_mul(b.abs()).expect("lcm overflow")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd_i64(0, 0), 0);
        assert_eq!(gcd_i64(0, 7), 7);
        assert_eq!(gcd_i64(7, 0), 7);
        assert_eq!(gcd_i64(12, 18), 6);
        assert_eq!(gcd_i64(-12, 18), 6);
        assert_eq!(gcd_i64(12, -18), 6);
        assert_eq!(gcd_i64(-12, -18), 6);
        assert_eq!(gcd_i64(1, i64::MAX), 1);
        assert_eq!(gcd_i64(i64::MIN, i64::MIN), -(i64::MIN as i128) as i64);
    }

    #[test]
    fn gcd_slice_basics() {
        assert_eq!(gcd_slice(&[]), 0);
        assert_eq!(gcd_slice(&[0, 0]), 0);
        assert_eq!(gcd_slice(&[4, 6, 8]), 2);
        assert_eq!(gcd_slice(&[3, 5, 7]), 1);
        assert_eq!(gcd_slice(&[-4, 6]), 2);
    }

    #[test]
    fn primitivity_matches_paper_example_2_1() {
        // γ1 = [0,1,-7,0], γ2 = [7,-1,0,0], γ3 = [1,0,-1,0] are conflict
        // vectors (primitive); [2,0,-2,0] is not (gcd 2).
        assert!(is_primitive(&[0, 1, -7, 0]));
        assert!(is_primitive(&[7, -1, 0, 0]));
        assert!(is_primitive(&[1, 0, -1, 0]));
        assert!(!is_primitive(&[2, 0, -2, 0]));
    }

    #[test]
    fn extended_gcd_small() {
        let (g, x, y) = extended_gcd_i64(240, 46);
        assert_eq!(g, 2);
        assert_eq!(240 * x + 46 * y, 2);
        let (g, x, y) = extended_gcd_i64(-5, 3);
        assert_eq!(g, 1);
        assert_eq!(-5 * x + 3 * y, 1);
        let (g, _, _) = extended_gcd_i64(0, 0);
        assert_eq!(g, 0);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm_i64(4, 6), 12);
        assert_eq!(lcm_i64(0, 5), 0);
        assert_eq!(lcm_i64(-4, 6), 12);
        assert_eq!(lcm_i64(7, 7), 7);
    }

    cfmap_testkit::props! {
        cases = 256;

        fn gcd_divides_both(a in -10_000i64..10_000, b in -10_000i64..10_000) {
            let g = gcd_i64(a, b);
            if g != 0 {
                assert_eq!(a % g, 0);
                assert_eq!(b % g, 0);
            } else {
                assert_eq!(a, 0);
                assert_eq!(b, 0);
            }
        }

        fn gcd_is_greatest(a in 1i64..5_000, b in 1i64..5_000) {
            let g = gcd_i64(a, b);
            for d in (g + 1)..=a.min(b) {
                assert!(!(a % d == 0 && b % d == 0));
            }
        }

        fn bezout_identity(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
            let (g, x, y) = extended_gcd_i64(a, b);
            assert_eq!(
                (a as i128) * (x as i128) + (b as i128) * (y as i128),
                g as i128
            );
            assert_eq!(g, gcd_i64(a, b));
        }

        fn lcm_gcd_product(a in 1i64..100_000, b in 1i64..100_000) {
            assert_eq!(
                (gcd_i64(a, b) as i128) * (lcm_i64(a, b) as i128),
                (a as i128) * (b as i128)
            );
        }
    }
}
