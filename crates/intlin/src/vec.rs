//! Dense integer (column) vectors.
//!
//! Index points `j̄`, dependence vectors `d̄ᵢ` and conflict vectors `γ̄` are
//! all [`IVec`]s. The paper's primitivity normalization of conflict vectors
//! (Definition 2.3: entries relatively prime, first nonzero entry positive —
//! see Theorem 3.1's convention) is [`IVec::primitive_part`].

use crate::int::Int;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense column vector of arbitrary-precision integers.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct IVec(Vec<Int>);

impl IVec {
    /// Build from big integers.
    pub fn new(entries: Vec<Int>) -> IVec {
        IVec(entries)
    }

    /// Build from machine integers.
    pub fn from_i64s(entries: &[i64]) -> IVec {
        IVec(entries.iter().map(|&e| Int::from(e)).collect())
    }

    /// The zero vector of dimension `n`.
    pub fn zeros(n: usize) -> IVec {
        IVec(vec![Int::zero(); n])
    }

    /// The `i`-th standard basis vector of dimension `n`.
    pub fn unit(n: usize, i: usize) -> IVec {
        assert!(i < n, "unit vector index out of range");
        let mut v = IVec::zeros(n);
        v[i] = Int::one();
        v
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// `true` iff empty or all entries are zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(Int::is_zero)
    }

    /// Entries as a slice.
    pub fn as_slice(&self) -> &[Int] {
        &self.0
    }

    /// Entries converted to `i64`; `None` if any does not fit.
    pub fn to_i64s(&self) -> Option<Vec<i64>> {
        self.0.iter().map(Int::to_i64).collect()
    }

    /// Iterate over entries.
    pub fn iter(&self) -> std::slice::Iter<'_, Int> {
        self.0.iter()
    }

    /// Dot product (panics on dimension mismatch).
    pub fn dot(&self, rhs: &IVec) -> Int {
        assert_eq!(self.dim(), rhs.dim(), "dot: dimension mismatch");
        self.0.iter().zip(rhs.0.iter()).map(|(a, b)| a * b).sum()
    }

    /// Scale by an integer.
    pub fn scale(&self, c: &Int) -> IVec {
        IVec(self.0.iter().map(|e| e * c).collect())
    }

    /// Non-negative gcd of all entries (0 for the zero vector).
    pub fn content(&self) -> Int {
        self.0.iter().fold(Int::zero(), |acc, e| acc.gcd(e))
    }

    /// `true` iff the entries are relatively prime (gcd exactly 1) —
    /// Definition 2.3's requirement on conflict vectors.
    pub fn is_primitive(&self) -> bool {
        self.content().is_one()
    }

    /// Divide out the content and make the first nonzero entry positive.
    ///
    /// This is the canonical representative the paper uses for the unique
    /// conflict vector of a `(n−1)×n` mapping (Theorem 3.1). Returns `None`
    /// for the zero vector.
    pub fn primitive_part(&self) -> Option<IVec> {
        let g = self.content();
        if g.is_zero() {
            return None;
        }
        let mut v = IVec(self.0.iter().map(|e| e.exact_div(&g)).collect());
        if let Some(first) = v.0.iter().find(|e| !e.is_zero()) {
            if first.is_negative() {
                v = -&v;
            }
        }
        Some(v)
    }

    /// Sum of `|entries|·weights` — the weighted L1 norm `Σ |π_i| μ_i`
    /// appearing in the total-execution-time formula (Eq 2.7).
    pub fn weighted_abs_sum(&self, weights: &[Int]) -> Int {
        assert_eq!(self.dim(), weights.len(), "weighted_abs_sum: dimension mismatch");
        self.0.iter().zip(weights).map(|(e, w)| e.abs() * w).sum()
    }

    /// Maximum absolute entry (zero vector → 0).
    pub fn max_abs(&self) -> Int {
        self.0.iter().map(Int::abs).max().unwrap_or_else(Int::zero)
    }
}

impl fmt::Debug for IVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for IVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

impl Index<usize> for IVec {
    type Output = Int;
    fn index(&self, i: usize) -> &Int {
        &self.0[i]
    }
}

impl IndexMut<usize> for IVec {
    fn index_mut(&mut self, i: usize) -> &mut Int {
        &mut self.0[i]
    }
}

impl FromIterator<Int> for IVec {
    fn from_iter<T: IntoIterator<Item = Int>>(iter: T) -> Self {
        IVec(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a IVec {
    type Item = &'a Int;
    type IntoIter = std::slice::Iter<'a, Int>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl Add for &IVec {
    type Output = IVec;
    fn add(self, rhs: &IVec) -> IVec {
        assert_eq!(self.dim(), rhs.dim(), "IVec add: dimension mismatch");
        IVec(self.0.iter().zip(&rhs.0).map(|(a, b)| a + b).collect())
    }
}

impl Sub for &IVec {
    type Output = IVec;
    fn sub(self, rhs: &IVec) -> IVec {
        assert_eq!(self.dim(), rhs.dim(), "IVec sub: dimension mismatch");
        IVec(self.0.iter().zip(&rhs.0).map(|(a, b)| a - b).collect())
    }
}

impl Neg for &IVec {
    type Output = IVec;
    fn neg(self) -> IVec {
        IVec(self.0.iter().map(|e| -e).collect())
    }
}

impl Mul<&IVec> for &Int {
    type Output = IVec;
    fn mul(self, rhs: &IVec) -> IVec {
        rhs.scale(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(xs: &[i64]) -> IVec {
        IVec::from_i64s(xs)
    }

    #[test]
    fn basics() {
        let a = v(&[1, -2, 3]);
        assert_eq!(a.dim(), 3);
        assert!(!a.is_zero());
        assert!(IVec::zeros(3).is_zero());
        assert_eq!(IVec::unit(3, 1), v(&[0, 1, 0]));
        assert_eq!(a.to_i64s(), Some(vec![1, -2, 3]));
        assert_eq!(a.to_string(), "[1, -2, 3]");
    }

    #[test]
    fn arithmetic() {
        let a = v(&[1, 2, 3]);
        let b = v(&[4, -5, 6]);
        assert_eq!(&a + &b, v(&[5, -3, 9]));
        assert_eq!(&a - &b, v(&[-3, 7, -3]));
        assert_eq!(-&a, v(&[-1, -2, -3]));
        assert_eq!(a.dot(&b), Int::from(4 - 10 + 18));
        assert_eq!(a.scale(&Int::from(-2)), v(&[-2, -4, -6]));
    }

    #[test]
    fn content_and_primitivity() {
        assert_eq!(v(&[4, 6, -8]).content(), Int::from(2));
        assert!(v(&[3, 5]).is_primitive());
        assert!(!v(&[2, 0, -2, 0]).is_primitive());
        assert_eq!(v(&[2, 0, -2, 0]).primitive_part(), Some(v(&[1, 0, -1, 0])));
        // First nonzero entry forced positive (Theorem 3.1 convention).
        assert_eq!(v(&[-3, 6]).primitive_part(), Some(v(&[1, -2])));
        assert_eq!(v(&[0, -5, 10]).primitive_part(), Some(v(&[0, 1, -2])));
        assert_eq!(IVec::zeros(3).primitive_part(), None);
    }

    #[test]
    fn weighted_abs_sum_matches_eq_2_7() {
        // Π = [1, 4, 1], μ = [4, 4, 4] ⇒ Σ|π_i|μ_i = 24 ⇒ t = 25 = μ(μ+2)+1.
        let pi = v(&[1, 4, 1]);
        let mu: Vec<Int> = [4, 4, 4].iter().map(|&m| Int::from(m)).collect();
        assert_eq!(pi.weighted_abs_sum(&mu), Int::from(24));
    }

    #[test]
    fn max_abs() {
        assert_eq!(v(&[1, -7, 3]).max_abs(), Int::from(7));
        assert_eq!(IVec::zeros(2).max_abs(), Int::zero());
    }

    cfmap_testkit::props! {
        cases = 256;

        fn dot_symmetric(a in cfmap_testkit::gen::vec(-100i64..100, 1..6)) {
            let b: Vec<i64> = a.iter().rev().cloned().collect();
            let av = v(&a);
            let bv = v(&b);
            assert_eq!(av.dot(&bv), bv.dot(&av));
        }

        fn primitive_part_is_primitive(a in cfmap_testkit::gen::vec(-50i64..50, 1..6)) {
            let av = v(&a);
            match av.primitive_part() {
                None => assert!(av.is_zero()),
                Some(p) => {
                    assert!(p.is_primitive());
                    // p is parallel to a: a = content * (±p)
                    let c = av.content();
                    let scaled = p.scale(&c);
                    assert!(scaled == av || -&scaled == av);
                    let first = p.iter().find(|e| !e.is_zero()).unwrap();
                    assert!(first.is_positive());
                }
            }
        }

        fn add_commutes(a in cfmap_testkit::gen::vec(-100i64..100, 3), b in cfmap_testkit::gen::vec(-100i64..100, 3)) {
            assert_eq!(&v(&a) + &v(&b), &v(&b) + &v(&a));
        }
    }
}
