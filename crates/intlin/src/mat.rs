//! Dense integer matrices.
//!
//! Mapping matrices `T = [S; Π]`, dependence matrices `D`, interconnection
//! matrices `P`, `K` and Hermite multipliers `U`, `V` are all [`IMat`]s.
//! Everything is exact: determinants and rank use fraction-free Bareiss
//! elimination (integer-only, so small-value matrices never leave the
//! inline `i64` fast path of [`Int`]), and the adjugate is computed from
//! cofactors exactly as in Section 3 of the paper (Equations 3.2/3.3).

use crate::int::Int;
use crate::rat::Rat;
use crate::vec::IVec;
use std::fmt;
use std::ops::Mul;

/// A dense, row-major matrix of arbitrary-precision integers.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IMat {
    rows: usize,
    cols: usize,
    data: Vec<Int>,
}

impl IMat {
    /// Build from a row-major closure.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Int) -> IMat {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        IMat { rows, cols, data }
    }

    /// Build from machine-integer rows (panics if rows are ragged).
    pub fn from_rows(rows: &[&[i64]]) -> IMat {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        for r in rows {
            assert_eq!(r.len(), ncols, "ragged rows");
        }
        IMat::from_fn(nrows, ncols, |i, j| Int::from(rows[i][j]))
    }

    /// Build from big-integer rows (panics if rows are ragged).
    pub fn from_int_rows(rows: Vec<Vec<Int>>) -> IMat {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        for r in &rows {
            assert_eq!(r.len(), ncols, "ragged rows");
        }
        IMat { rows: nrows, cols: ncols, data: rows.into_iter().flatten().collect() }
    }

    /// Build a matrix whose columns are the given vectors.
    pub fn from_cols(cols: &[IVec]) -> IMat {
        let ncols = cols.len();
        let nrows = cols.first().map_or(0, IVec::dim);
        for c in cols {
            assert_eq!(c.dim(), nrows, "ragged columns");
        }
        IMat::from_fn(nrows, ncols, |i, j| cols[j][i].clone())
    }

    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> IMat {
        IMat { rows, cols, data: vec![Int::zero(); rows * cols] }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> IMat {
        IMat::from_fn(n, n, |i, j| if i == j { Int::one() } else { Int::zero() })
    }

    /// A 1×n matrix from a row slice.
    pub fn row_vector(row: &[i64]) -> IMat {
        IMat::from_rows(&[row])
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Entry accessor.
    pub fn get(&self, r: usize, c: usize) -> &Int {
        assert!(r < self.rows && c < self.cols, "IMat index out of range");
        &self.data[r * self.cols + c]
    }

    /// Entry mutator.
    pub fn set(&mut self, r: usize, c: usize, v: Int) {
        assert!(r < self.rows && c < self.cols, "IMat index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a vector.
    pub fn row(&self, r: usize) -> IVec {
        assert!(r < self.rows);
        (0..self.cols).map(|c| self.get(r, c).clone()).collect()
    }

    /// Column `c` as a vector.
    pub fn col(&self, c: usize) -> IVec {
        assert!(c < self.cols);
        (0..self.rows).map(|r| self.get(r, c).clone()).collect()
    }

    /// All columns as vectors.
    pub fn columns(&self) -> Vec<IVec> {
        (0..self.cols).map(|c| self.col(c)).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> IMat {
        IMat::from_fn(self.cols, self.rows, |i, j| self.get(j, i).clone())
    }

    /// Matrix–vector product.
    pub fn mul_vec(&self, v: &IVec) -> IVec {
        assert_eq!(self.cols, v.dim(), "mul_vec: dimension mismatch");
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self.get(r, c) * &v[c]).sum())
            .collect()
    }

    /// Stack another matrix below this one.
    pub fn vstack(&self, below: &IMat) -> IMat {
        assert_eq!(self.cols, below.cols, "vstack: column mismatch");
        IMat::from_fn(self.rows + below.rows, self.cols, |i, j| {
            if i < self.rows {
                self.get(i, j).clone()
            } else {
                below.get(i - self.rows, j).clone()
            }
        })
    }

    /// Stack another matrix to the right of this one.
    pub fn hstack(&self, right: &IMat) -> IMat {
        assert_eq!(self.rows, right.rows, "hstack: row mismatch");
        IMat::from_fn(self.rows, self.cols + right.cols, |i, j| {
            if j < self.cols {
                self.get(i, j).clone()
            } else {
                right.get(i, j - self.cols).clone()
            }
        })
    }

    /// The submatrix obtained by deleting row `dr` and column `dc`.
    pub fn minor_matrix(&self, dr: usize, dc: usize) -> IMat {
        assert!(dr < self.rows && dc < self.cols);
        IMat::from_fn(self.rows - 1, self.cols - 1, |i, j| {
            let r = if i < dr { i } else { i + 1 };
            let c = if j < dc { j } else { j + 1 };
            self.get(r, c).clone()
        })
    }

    /// Keep only the listed columns, in order.
    pub fn select_cols(&self, cols: &[usize]) -> IMat {
        IMat::from_fn(self.rows, cols.len(), |i, j| self.get(i, cols[j]).clone())
    }

    /// Keep only the listed rows, in order.
    pub fn select_rows(&self, rows: &[usize]) -> IMat {
        IMat::from_fn(rows.len(), self.cols, |i, j| self.get(rows[i], j).clone())
    }

    /// `true` iff all entries are zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(Int::is_zero)
    }

    /// Determinant by fraction-free Bareiss elimination (exact, panics if
    /// not square).
    pub fn det(&self) -> Int {
        assert_eq!(self.rows, self.cols, "det of non-square matrix");
        let n = self.rows;
        if n == 0 {
            return Int::one();
        }
        let mut a: Vec<Vec<Int>> =
            (0..n).map(|r| (0..n).map(|c| self.get(r, c).clone()).collect()).collect();
        let mut sign = 1i8;
        let mut prev = Int::one();
        for k in 0..n - 1 {
            if a[k][k].is_zero() {
                // Find a row below with a nonzero pivot and swap.
                match (k + 1..n).find(|&r| !a[r][k].is_zero()) {
                    Some(r) => {
                        a.swap(k, r);
                        sign = -sign;
                    }
                    None => return Int::zero(),
                }
            }
            for i in k + 1..n {
                for j in k + 1..n {
                    let num = &(&a[i][j] * &a[k][k]) - &(&a[i][k] * &a[k][j]);
                    a[i][j] = num.exact_div(&prev);
                }
                a[i][k] = Int::zero();
            }
            prev = a[k][k].clone();
        }
        let d = a[n - 1][n - 1].clone();
        if sign < 0 {
            -d
        } else {
            d
        }
    }

    /// Determinant by cofactor expansion (exponential; used to cross-check
    /// Bareiss in tests and for tiny matrices).
    pub fn det_cofactor(&self) -> Int {
        assert_eq!(self.rows, self.cols, "det of non-square matrix");
        let n = self.rows;
        match n {
            0 => Int::one(),
            1 => self.get(0, 0).clone(),
            2 => {
                &(self.get(0, 0) * self.get(1, 1)) - &(self.get(0, 1) * self.get(1, 0))
            }
            _ => {
                let mut acc = Int::zero();
                for c in 0..n {
                    if self.get(0, c).is_zero() {
                        continue;
                    }
                    let m = self.minor_matrix(0, c).det_cofactor();
                    let term = self.get(0, c) * &m;
                    if c % 2 == 0 {
                        acc += &term;
                    } else {
                        acc -= &term;
                    }
                }
                acc
            }
        }
    }

    /// Rank by fraction-free Bareiss elimination (exact; all intermediate
    /// entries are minors of the input, and the one-step divisions by the
    /// previous pivot are exact by Sylvester's identity). Integer-only, so
    /// small matrices never allocate.
    pub fn rank(&self) -> usize {
        let mut a: Vec<Vec<Int>> = (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self.get(r, c).clone()).collect())
            .collect();
        let mut prev = Int::one();
        let mut rank = 0;
        for col in 0..self.cols {
            if rank >= self.rows {
                break;
            }
            let Some(p) = (rank..self.rows).find(|&r| !a[r][col].is_zero()) else { continue };
            a.swap(rank, p);
            for r in rank + 1..self.rows {
                for j in col + 1..self.cols {
                    let num = &(&a[r][j] * &a[rank][col]) - &(&a[r][col] * &a[rank][j]);
                    a[r][j] = num.exact_div(&prev);
                }
                a[r][col] = Int::zero();
            }
            prev = a[rank][col].clone();
            rank += 1;
        }
        rank
    }

    /// `true` iff square with full rank.
    pub fn is_nonsingular(&self) -> bool {
        self.rows == self.cols && !self.det().is_zero()
    }

    /// `true` iff integral with determinant ±1 (the paper's footnote
    /// definition of unimodularity, page preceding Theorem 4.2).
    pub fn is_unimodular(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let d = self.det();
        d.is_one() || d.is_neg_one()
    }

    /// Cofactor `C_{r,c} = (−1)^{r+c}·minor(r,c)` — the `B_{ij}` of
    /// Equation 3.3 in the paper.
    pub fn cofactor(&self, r: usize, c: usize) -> Int {
        let m = self.minor_matrix(r, c).det();
        if (r + c).is_multiple_of(2) {
            m
        } else {
            -m
        }
    }

    /// Adjugate (classical adjoint): `adj(A)·A = A·adj(A) = det(A)·I`.
    ///
    /// This is the `B*` of Equation 3.3, used to derive the unique conflict
    /// vector of an `(n−1)×n` mapping (Equation 3.2).
    pub fn adjugate(&self) -> IMat {
        assert_eq!(self.rows, self.cols, "adjugate of non-square matrix");
        IMat::from_fn(self.rows, self.cols, |i, j| self.cofactor(j, i))
    }

    /// Exact integer inverse, available iff the matrix is unimodular.
    /// The determinant is computed once and reused for both the
    /// unimodularity check and the sign of the adjugate.
    pub fn inverse_unimodular(&self) -> Option<IMat> {
        if self.rows != self.cols {
            return None;
        }
        let d = self.det();
        if !d.is_one() && !d.is_neg_one() {
            return None;
        }
        let adj = self.adjugate();
        Some(if d.is_one() {
            adj
        } else {
            IMat::from_fn(self.rows, self.cols, |i, j| -adj.get(i, j))
        })
    }

    /// Exact rational inverse (Gauss–Jordan); `None` if singular.
    pub fn inverse_rational(&self) -> Option<Vec<Vec<Rat>>> {
        if self.rows != self.cols {
            return None;
        }
        let n = self.rows;
        let mut a: Vec<Vec<Rat>> = (0..n)
            .map(|r| {
                let mut row: Vec<Rat> =
                    (0..n).map(|c| Rat::from_int(self.get(r, c).clone())).collect();
                for c in 0..n {
                    row.push(if r == c { Rat::one() } else { Rat::zero() });
                }
                row
            })
            .collect();
        for col in 0..n {
            let pivot = (col..n).find(|&r| !a[r][col].is_zero())?;
            a.swap(col, pivot);
            let pv = a[col][col].clone();
            for entry in a[col].iter_mut() {
                *entry = &*entry / &pv;
            }
            let pivot_row = a[col].clone();
            for (r, row) in a.iter_mut().enumerate() {
                if r == col || row[col].is_zero() {
                    continue;
                }
                let factor = row[col].clone();
                for (entry, p) in row.iter_mut().zip(&pivot_row) {
                    let delta = &factor * p;
                    *entry = &*entry - &delta;
                }
            }
        }
        Some(a.into_iter().map(|row| row[n..].to_vec()).collect())
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> Int {
        self.data.iter().map(Int::abs).max().unwrap_or_else(Int::zero)
    }

    /// Entries as `i64` row-major rows; `None` if any entry does not fit.
    pub fn to_i64_rows(&self) -> Option<Vec<Vec<i64>>> {
        (0..self.rows).map(|r| self.row(r).to_i64s()).collect()
    }
}

impl fmt::Debug for IMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for IMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column-aligned pretty printer.
        let strings: Vec<Vec<String>> = (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self.get(r, c).to_string()).collect())
            .collect();
        let widths: Vec<usize> = (0..self.cols)
            .map(|c| strings.iter().map(|row| row[c].len()).max().unwrap_or(0))
            .collect();
        for (r, row) in strings.iter().enumerate() {
            write!(f, "[")?;
            for (c, s) in row.iter().enumerate() {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{s:>width$}", width = widths[c])?;
            }
            write!(f, "]")?;
            if r + 1 < self.rows {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

impl Mul for &IMat {
    type Output = IMat;
    fn mul(self, rhs: &IMat) -> IMat {
        assert_eq!(self.cols, rhs.rows, "matrix product: dimension mismatch");
        IMat::from_fn(self.rows, rhs.cols, |i, j| {
            (0..self.cols).map(|k| self.get(i, k) * rhs.get(k, j)).sum()
        })
    }
}

impl Mul<&IVec> for &IMat {
    type Output = IVec;
    fn mul(self, rhs: &IVec) -> IVec {
        self.mul_vec(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[i64]]) -> IMat {
        IMat::from_rows(rows)
    }

    #[test]
    fn construction() {
        let a = m(&[&[1, 2], &[3, 4]]);
        assert_eq!(a.nrows(), 2);
        assert_eq!(a.ncols(), 2);
        assert_eq!(a.get(1, 0), &Int::from(3));
        assert_eq!(a.row(0), IVec::from_i64s(&[1, 2]));
        assert_eq!(a.col(1), IVec::from_i64s(&[2, 4]));
        assert_eq!(IMat::identity(3).det(), Int::one());
        let c = IMat::from_cols(&[IVec::from_i64s(&[1, 3]), IVec::from_i64s(&[2, 4])]);
        assert_eq!(c, a);
    }

    #[test]
    fn product_and_transpose() {
        let a = m(&[&[1, 2], &[3, 4]]);
        let b = m(&[&[5, 6], &[7, 8]]);
        assert_eq!(&a * &b, m(&[&[19, 22], &[43, 50]]));
        assert_eq!(a.transpose(), m(&[&[1, 3], &[2, 4]]));
        let v = IVec::from_i64s(&[1, -1]);
        assert_eq!(a.mul_vec(&v), IVec::from_i64s(&[-1, -1]));
    }

    #[test]
    fn stacking_and_selection() {
        let s = m(&[&[1, 1, -1]]);
        let pi = m(&[&[1, 4, 1]]);
        let t = s.vstack(&pi);
        assert_eq!(t, m(&[&[1, 1, -1], &[1, 4, 1]]));
        assert_eq!(t.select_cols(&[0, 2]), m(&[&[1, -1], &[1, 1]]));
        assert_eq!(t.select_rows(&[1]), pi);
        let h = s.hstack(&m(&[&[9]]));
        assert_eq!(h, m(&[&[1, 1, -1, 9]]));
    }

    #[test]
    fn determinant_known_values() {
        assert_eq!(m(&[&[2]]).det(), Int::from(2));
        assert_eq!(m(&[&[1, 2], &[3, 4]]).det(), Int::from(-2));
        assert_eq!(m(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 9]]).det(), Int::zero());
        assert_eq!(
            m(&[&[3, 0, 2], &[2, 0, -2], &[0, 1, 1]]).det(),
            Int::from(10)
        );
        // Zero pivot requiring a swap.
        assert_eq!(m(&[&[0, 1], &[1, 0]]).det(), Int::from(-1));
        assert_eq!(
            m(&[&[0, 0, 1], &[0, 1, 0], &[1, 0, 0]]).det(),
            Int::from(-1)
        );
    }

    #[test]
    fn rank_values() {
        assert_eq!(m(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 9]]).rank(), 2);
        assert_eq!(IMat::identity(4).rank(), 4);
        assert_eq!(IMat::zeros(3, 5).rank(), 0);
        // The paper's matmul mapping T (Eq 3.5) with Π=[1,4,1] has rank 2.
        assert_eq!(m(&[&[1, 1, -1], &[1, 4, 1]]).rank(), 2);
        // Eq 2.8 mapping has rank 2.
        assert_eq!(m(&[&[1, 7, 1, 1], &[1, 7, 1, 0]]).rank(), 2);
    }

    #[test]
    fn adjugate_identity() {
        let a = m(&[&[3, 0, 2], &[2, 0, -2], &[0, 1, 1]]);
        let adj = a.adjugate();
        let d = a.det();
        let prod = &a * &adj;
        let expect = IMat::from_fn(3, 3, |i, j| if i == j { d.clone() } else { Int::zero() });
        assert_eq!(prod, expect);
        let prod2 = &adj * &a;
        assert_eq!(prod2, expect);
    }

    #[test]
    fn unimodular_inverse() {
        // The multiplier U from Example 4.2 of the paper.
        let u = m(&[
            &[1, -1, -1, -7],
            &[0, 0, 0, 1],
            &[0, 0, 1, 0],
            &[0, 1, 0, 0],
        ]);
        assert!(u.is_unimodular());
        let v = u.inverse_unimodular().unwrap();
        assert_eq!(&u * &v, IMat::identity(4));
        assert_eq!(&v * &u, IMat::identity(4));
        // And V matches the paper's stated inverse.
        assert_eq!(
            v,
            m(&[&[1, 7, 1, 1], &[0, 0, 0, 1], &[0, 0, 1, 0], &[0, 1, 0, 0]])
        );
    }

    #[test]
    fn rational_inverse() {
        let a = m(&[&[2, 0], &[0, 4]]);
        let inv = a.inverse_rational().unwrap();
        assert_eq!(inv[0][0], "1/2".parse().unwrap());
        assert_eq!(inv[1][1], "1/4".parse().unwrap());
        assert_eq!(inv[0][1], Rat::zero());
        assert!(m(&[&[1, 2], &[2, 4]]).inverse_rational().is_none());
    }

    #[test]
    fn display_alignment() {
        let a = m(&[&[1, -10], &[100, 2]]);
        let s = a.to_string();
        assert!(s.contains('\n'));
        assert!(s.starts_with('['));
    }

    fn square_from(v: &[i64], n: usize) -> IMat {
        IMat::from_fn(n, n, |i, j| Int::from(v[i * n + j]))
    }

    /// The pre-Bareiss rank algorithm (exact rational Gaussian
    /// elimination), kept as a differential oracle.
    fn rational_rank(m: &IMat) -> usize {
        let (rows, cols) = (m.nrows(), m.ncols());
        let mut a: Vec<Vec<Rat>> = (0..rows)
            .map(|r| (0..cols).map(|c| Rat::from_int(m.get(r, c).clone())).collect())
            .collect();
        let mut rank = 0;
        for col in 0..cols {
            if rank >= rows {
                break;
            }
            let Some(p) = (rank..rows).find(|&r| !a[r][col].is_zero()) else { continue };
            a.swap(rank, p);
            let pv = a[rank][col].clone();
            let pivot_row = a[rank].clone();
            for tail in a[rank + 1..rows].iter_mut() {
                if tail[col].is_zero() {
                    continue;
                }
                let factor = &tail[col] / &pv;
                for (entry, p) in tail[col..].iter_mut().zip(&pivot_row[col..]) {
                    let delta = &factor * p;
                    *entry = &*entry - &delta;
                }
            }
            rank += 1;
        }
        rank
    }

    cfmap_testkit::props! {
        cases = 256;

        fn bareiss_matches_cofactor(v in cfmap_testkit::gen::vec(-6i64..=6, 16)) {
            let a = square_from(&v, 4);
            assert_eq!(a.det(), a.det_cofactor());
        }

        fn det_of_product(
            va in cfmap_testkit::gen::vec(-6i64..=6, 9),
            vb in cfmap_testkit::gen::vec(-6i64..=6, 9),
        ) {
            let a = square_from(&va, 3);
            let b = square_from(&vb, 3);
            assert_eq!((&a * &b).det(), a.det() * b.det());
        }

        fn det_transpose_invariant(v in cfmap_testkit::gen::vec(-6i64..=6, 16)) {
            let a = square_from(&v, 4);
            assert_eq!(a.det(), a.transpose().det());
        }

        fn adjugate_postcondition(v in cfmap_testkit::gen::vec(-6i64..=6, 9)) {
            let a = square_from(&v, 3);
            let d = a.det();
            let adj = a.adjugate();
            let prod = &a * &adj;
            let expect = IMat::from_fn(3, 3, |i, j| if i == j { d.clone() } else { Int::zero() });
            assert_eq!(prod, expect);
        }

        fn rank_le_min_dim(v in cfmap_testkit::gen::vec(-6i64..=6, 16)) {
            let a = square_from(&v, 4);
            let r = a.rank();
            assert!(r <= 4);
            assert_eq!(r == 4, !a.det().is_zero());
        }

        fn bareiss_rank_matches_rational_rank(v in cfmap_testkit::gen::vec(-6i64..=6, 12)) {
            let a = IMat::from_fn(3, 4, |i, j| Int::from(v[i * 4 + j]));
            assert_eq!(a.rank(), rational_rank(&a));
            let at = a.transpose();
            assert_eq!(at.rank(), rational_rank(&at));
        }

        fn rational_inverse_roundtrip(v in cfmap_testkit::gen::vec(-6i64..=6, 9)) {
            let a = square_from(&v, 3);
            if let Some(inv) = a.inverse_rational() {
                // A · A⁻¹ = I, entrywise over Rat.
                for i in 0..3 {
                    for j in 0..3 {
                        let mut acc = Rat::zero();
                        for (k, inv_row) in inv.iter().enumerate() {
                            acc += &(&Rat::from_int(a.get(i, k).clone()) * &inv_row[j]);
                        }
                        let expect = if i == j { Rat::one() } else { Rat::zero() };
                        assert_eq!(acc, expect);
                    }
                }
            } else {
                assert_eq!(a.det(), Int::zero());
            }
        }
    }
}
