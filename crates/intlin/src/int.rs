//! Arbitrary-precision signed integers with an inline small-value fast path.
//!
//! Hermite multipliers, adjugate matrices and exact simplex pivots grow
//! beyond machine words even for the small mapping matrices the paper deals
//! with (a 5×5 adjugate of entries ≤ μ+2 already reaches ~μ⁴·5!), so every
//! matrix entry in this workspace is an [`Int`].
//!
//! Representation: a tagged enum. The common case — everything the paper's
//! worked examples ever produce — is an inline `i64` ([`Repr::Small`]) on
//! which `+ - * exact_div gcd cmp` never touch the heap; intermediate
//! products run in `i128`. Values that do not fit `i64` spill to the limb
//! representation ([`Repr::Big`]): a sign in {−1, +1} plus a little-endian
//! vector of `u32` limbs with no trailing zero limb. All arithmetic is
//! exact; limb division is Knuth Algorithm D.
//!
//! Canonical-form invariant: `Big` is used **only** for values that do not
//! fit in `i64` (so its sign is never 0 and its magnitude exceeds
//! `i64::MAX`, or equals 2⁶³ with negative sign excluded — that value is
//! `i64::MIN` and stays `Small`). Every constructor normalizes, so derived
//! `PartialEq`/`Eq`/`Hash` are sound. Each promotion out of the inline
//! representation is counted by [`crate::stats::bigint_spills_total`].

use std::cmp::Ordering;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

const BASE_BITS: u32 = 32;

/// Internal representation. `Small` holds every value in `i64`; `Big` is
/// reserved for values outside that range (canonical-form invariant).
#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// Inline machine word — the allocation-free fast path.
    Small(i64),
    /// Heap limbs for values outside `i64`.
    Big {
        /// −1 or +1 (never 0: zero always fits `i64`).
        sign: i8,
        /// Little-endian `u32` limbs, no trailing zeros.
        mag: Vec<u32>,
    },
}

/// An arbitrary-precision signed integer.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Int {
    repr: Repr,
}

impl Default for Int {
    fn default() -> Int {
        Int::small(0)
    }
}

impl Int {
    #[inline]
    fn small(v: i64) -> Int {
        Int { repr: Repr::Small(v) }
    }

    /// The integer 0.
    #[inline]
    pub fn zero() -> Self {
        Int::small(0)
    }

    /// The integer 1.
    #[inline]
    pub fn one() -> Self {
        Int::small(1)
    }

    /// The integer −1.
    #[inline]
    pub fn neg_one() -> Self {
        Int::small(-1)
    }

    /// `true` iff this is 0.
    #[inline]
    pub fn is_zero(&self) -> bool {
        matches!(self.repr, Repr::Small(0))
    }

    /// `true` iff this is exactly 1.
    #[inline]
    pub fn is_one(&self) -> bool {
        matches!(self.repr, Repr::Small(1))
    }

    /// `true` iff this is exactly −1.
    #[inline]
    pub fn is_neg_one(&self) -> bool {
        matches!(self.repr, Repr::Small(-1))
    }

    /// The sign as −1, 0 or +1.
    #[inline]
    pub fn signum(&self) -> i8 {
        match &self.repr {
            Repr::Small(v) => v.signum() as i8,
            Repr::Big { sign, .. } => *sign,
        }
    }

    /// `true` iff strictly positive.
    #[inline]
    pub fn is_positive(&self) -> bool {
        self.signum() > 0
    }

    /// `true` iff strictly negative.
    #[inline]
    pub fn is_negative(&self) -> bool {
        self.signum() < 0
    }

    /// Absolute value.
    pub fn abs(&self) -> Int {
        match &self.repr {
            Repr::Small(v) => match v.checked_abs() {
                Some(a) => Int::small(a),
                // |i64::MIN| = 2^63 does not fit i64: a genuine spill.
                None => Int::from_i128((*v as i128).unsigned_abs() as i128),
            },
            // A canonical Big magnitude always exceeds i64::MAX, so the
            // absolute value stays Big.
            Repr::Big { sign, mag } => Int::canon(sign.abs(), mag.clone()),
        }
    }

    /// Number of bits in the magnitude (0 for zero).
    pub fn bits(&self) -> usize {
        match &self.repr {
            Repr::Small(0) => 0,
            Repr::Small(v) => (64 - v.unsigned_abs().leading_zeros()) as usize,
            Repr::Big { mag, .. } => {
                let top = *mag.last().expect("canonical Big has limbs");
                (mag.len() - 1) * BASE_BITS as usize + (32 - top.leading_zeros()) as usize
            }
        }
    }

    /// The `i64` value of a normalized (sign, limbs) pair, if it fits.
    fn small_from_parts(sign: i8, mag: &[u32]) -> Option<i64> {
        if mag.len() > 2 {
            return None;
        }
        let mut u: u64 = 0;
        for &limb in mag.iter().rev() {
            u = (u << 32) | limb as u64;
        }
        if sign >= 0 {
            i64::try_from(u).ok()
        } else if u == 1u64 << 63 {
            Some(i64::MIN)
        } else {
            i64::try_from(u).ok().map(|v| -v)
        }
    }

    /// Canonicalize a normalized (sign, limbs) pair **without** counting a
    /// spill — for clone/negate-style moves of an existing representation.
    fn canon(sign: i8, mag: Vec<u32>) -> Int {
        match Int::small_from_parts(sign, &mag) {
            Some(v) => Int::small(v),
            None => Int { repr: Repr::Big { sign, mag } },
        }
    }

    /// Build from a possibly-denormalized (sign, limbs) pair, demoting to
    /// the inline representation when the value fits `i64` and counting a
    /// bignum spill when it does not.
    fn from_sign_mag(sign: i8, mut mag: Vec<u32>) -> Int {
        while mag.last() == Some(&0) {
            mag.pop();
        }
        let sign = if mag.is_empty() { 0 } else if sign == 0 { 1 } else { sign };
        match Int::small_from_parts(sign, &mag) {
            Some(v) => Int::small(v),
            None => {
                crate::stats::note_bigint_spill();
                Int { repr: Repr::Big { sign, mag } }
            }
        }
    }

    /// Decompose into (sign, little-endian limbs) without allocating:
    /// small values are written into the caller-provided stack buffer.
    fn parts<'a>(&'a self, buf: &'a mut [u32; 2]) -> (i8, &'a [u32]) {
        match &self.repr {
            Repr::Small(v) => {
                let u = v.unsigned_abs();
                buf[0] = (u & 0xFFFF_FFFF) as u32;
                buf[1] = (u >> 32) as u32;
                let len = if buf[1] != 0 {
                    2
                } else if buf[0] != 0 {
                    1
                } else {
                    0
                };
                (v.signum() as i8, &buf[..len])
            }
            Repr::Big { sign, mag } => (*sign, mag.as_slice()),
        }
    }

    /// Construct from an `i128` (covers all machine-word constructions).
    pub fn from_i128(v: i128) -> Int {
        if let Ok(s) = i64::try_from(v) {
            return Int::small(s);
        }
        crate::stats::note_bigint_spill();
        let sign = if v < 0 { -1 } else { 1 };
        let mut u = v.unsigned_abs();
        let mut mag = Vec::with_capacity(4);
        while u != 0 {
            mag.push((u & 0xFFFF_FFFF) as u32);
            u >>= 32;
        }
        Int { repr: Repr::Big { sign, mag } }
    }

    /// Convert to `i64` if it fits.
    pub fn to_i64(&self) -> Option<i64> {
        match self.repr {
            Repr::Small(v) => Some(v),
            // Canonical form: Big never fits i64.
            Repr::Big { .. } => None,
        }
    }

    /// Convert to `i128` if it fits.
    pub fn to_i128(&self) -> Option<i128> {
        match &self.repr {
            Repr::Small(v) => Some(*v as i128),
            Repr::Big { sign, mag } => {
                if mag.len() > 4 {
                    return None;
                }
                let mut u: u128 = 0;
                for &limb in mag.iter().rev() {
                    u = (u << 32) | limb as u128;
                }
                if *sign >= 0 {
                    i128::try_from(u).ok()
                } else if u == (1u128 << 127) {
                    Some(i128::MIN)
                } else {
                    i128::try_from(u).ok().map(|v| -v)
                }
            }
        }
    }

    /// Magnitude comparison (ignores signs).
    fn cmp_mag(a: &[u32], b: &[u32]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for (x, y) in a.iter().rev().zip(b.iter().rev()) {
            if x != y {
                return x.cmp(y);
            }
        }
        Ordering::Equal
    }

    /// `|a| + |b|`.
    fn add_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &limb) in long.iter().enumerate() {
            let s = limb as u64 + short.get(i).copied().unwrap_or(0) as u64 + carry;
            out.push((s & 0xFFFF_FFFF) as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        out
    }

    /// `|a| − |b|`, requiring `|a| ≥ |b|`.
    fn sub_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        debug_assert!(Int::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0i64;
        for (i, &limb) in a.iter().enumerate() {
            let d = limb as i64 - b.get(i).copied().unwrap_or(0) as i64 - borrow;
            if d < 0 {
                out.push((d + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(d as u32);
                borrow = 0;
            }
        }
        debug_assert_eq!(borrow, 0);
        out
    }

    /// Schoolbook `|a| · |b|`.
    fn mul_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u32; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u64;
            for (j, &bj) in b.iter().enumerate() {
                let t = ai as u64 * bj as u64 + out[i + j] as u64 + carry;
                out[i + j] = (t & 0xFFFF_FFFF) as u32;
                carry = t >> 32;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let t = out[k] as u64 + carry;
                out[k] = (t & 0xFFFF_FFFF) as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        out
    }

    /// Shift magnitude left by `bits` (< 32) bits.
    fn shl_bits(a: &[u32], bits: u32) -> Vec<u32> {
        debug_assert!(bits < 32);
        if bits == 0 {
            return a.to_vec();
        }
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry = 0u32;
        for &limb in a {
            out.push((limb << bits) | carry);
            carry = limb >> (32 - bits);
        }
        if carry != 0 {
            out.push(carry);
        }
        out
    }

    /// Shift magnitude right by `bits` (< 32) bits.
    fn shr_bits(a: &[u32], bits: u32) -> Vec<u32> {
        debug_assert!(bits < 32);
        if bits == 0 {
            return a.to_vec();
        }
        let mut out = vec![0u32; a.len()];
        let mut carry = 0u32;
        for (i, &limb) in a.iter().enumerate().rev() {
            out[i] = (limb >> bits) | carry;
            carry = limb << (32 - bits);
        }
        out
    }

    /// `(|a| / d, |a| % d)` for a single nonzero limb `d`.
    fn divrem_mag_single(a: &[u32], d: u32) -> (Vec<u32>, u32) {
        debug_assert!(d != 0);
        let mut q = vec![0u32; a.len()];
        let mut rem = 0u64;
        for i in (0..a.len()).rev() {
            let cur = (rem << 32) | a[i] as u64;
            q[i] = (cur / d as u64) as u32;
            rem = cur % d as u64;
        }
        (q, rem as u32)
    }

    /// Knuth Algorithm D: `(|a| / |b|, |a| % |b|)` for `|b| ≥ 2` limbs.
    fn divrem_mag_knuth(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
        debug_assert!(b.len() >= 2);
        let shift = b.last().unwrap().leading_zeros();
        let bn = Int::shl_bits(b, shift);
        let mut an = Int::shl_bits(a, shift);
        an.push(0); // extra high limb for the algorithm
        let n = bn.len();
        let m = an.len() - 1 - n; // quotient has m+1 limbs
        let mut q = vec![0u32; m + 1];
        let b_high = bn[n - 1] as u64;
        let b_next = bn[n - 2] as u64;

        for j in (0..=m).rev() {
            // Estimate qhat from the top two limbs of the current remainder.
            let top = ((an[j + n] as u64) << 32) | an[j + n - 1] as u64;
            let mut qhat = top / b_high;
            let mut rhat = top % b_high;
            while qhat > 0xFFFF_FFFF
                || qhat * b_next > ((rhat << 32) | an[j + n - 2] as u64)
            {
                qhat -= 1;
                rhat += b_high;
                if rhat > 0xFFFF_FFFF {
                    break;
                }
            }
            // Multiply-subtract qhat * bn from an[j .. j+n].
            let mut borrow = 0i64;
            let mut carry = 0u64;
            for i in 0..n {
                let p = qhat * bn[i] as u64 + carry;
                carry = p >> 32;
                let sub = an[j + i] as i64 - (p & 0xFFFF_FFFF) as i64 - borrow;
                if sub < 0 {
                    an[j + i] = (sub + (1i64 << 32)) as u32;
                    borrow = 1;
                } else {
                    an[j + i] = sub as u32;
                    borrow = 0;
                }
            }
            let sub = an[j + n] as i64 - carry as i64 - borrow;
            if sub < 0 {
                // qhat was one too large: add back.
                an[j + n] = (sub + (1i64 << 32)) as u32;
                qhat -= 1;
                let mut c = 0u64;
                for i in 0..n {
                    let s = an[j + i] as u64 + bn[i] as u64 + c;
                    an[j + i] = (s & 0xFFFF_FFFF) as u32;
                    c = s >> 32;
                }
                an[j + n] = an[j + n].wrapping_add(c as u32);
            } else {
                an[j + n] = sub as u32;
            }
            q[j] = qhat as u32;
        }
        let rem = Int::shr_bits(&an[..n], shift);
        (q, rem)
    }

    /// Truncated division with remainder: `self = q·rhs + r`, `|r| < |rhs|`,
    /// `r` has the sign of `self` (like Rust's `/` and `%` on primitives).
    ///
    /// Panics if `rhs` is zero.
    pub fn divrem(&self, rhs: &Int) -> (Int, Int) {
        assert!(!rhs.is_zero(), "Int division by zero");
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &rhs.repr) {
            // i128 covers the single i64-overflowing case i64::MIN / −1.
            let (a, b) = (*a as i128, *b as i128);
            return (Int::from_i128(a / b), Int::from_i128(a % b));
        }
        self.divrem_slow(rhs)
    }

    fn divrem_slow(&self, rhs: &Int) -> (Int, Int) {
        let (mut ba, mut bb) = ([0u32; 2], [0u32; 2]);
        let (sa, ma) = self.parts(&mut ba);
        let (sb, mb) = rhs.parts(&mut bb);
        if Int::cmp_mag(ma, mb) == Ordering::Less {
            return (Int::zero(), self.clone());
        }
        let (qm, rm) = if mb.len() == 1 {
            let (q, r) = Int::divrem_mag_single(ma, mb[0]);
            (q, if r == 0 { Vec::new() } else { vec![r] })
        } else {
            Int::divrem_mag_knuth(ma, mb)
        };
        (Int::from_sign_mag(sa * sb, qm), Int::from_sign_mag(sa, rm))
    }

    /// Euclidean division: remainder is always in `[0, |rhs|)`.
    pub fn div_euclid(&self, rhs: &Int) -> Int {
        let (q, r) = self.divrem(rhs);
        if r.is_negative() {
            if rhs.is_positive() {
                q - Int::one()
            } else {
                q + Int::one()
            }
        } else {
            q
        }
    }

    /// Euclidean remainder, always in `[0, |rhs|)`.
    pub fn rem_euclid(&self, rhs: &Int) -> Int {
        let (_, r) = self.divrem(rhs);
        if r.is_negative() {
            r + rhs.abs()
        } else {
            r
        }
    }

    /// `true` iff `rhs` divides `self` exactly (`0` divides only `0`).
    pub fn divisible_by(&self, rhs: &Int) -> bool {
        if rhs.is_zero() {
            return self.is_zero();
        }
        self.divrem(rhs).1.is_zero()
    }

    /// Exact division; panics if `rhs` does not divide `self`.
    ///
    /// Used by the Bareiss fraction-free elimination, where divisions are
    /// guaranteed exact by construction.
    pub fn exact_div(&self, rhs: &Int) -> Int {
        let (q, r) = self.divrem(rhs);
        assert!(r.is_zero(), "exact_div: non-exact division");
        q
    }

    /// Greatest common divisor (non-negative; `gcd(0,0) = 0`).
    pub fn gcd(&self, rhs: &Int) -> Int {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &rhs.repr) {
            let (mut x, mut y) = (a.unsigned_abs(), b.unsigned_abs());
            while y != 0 {
                let r = x % y;
                x = y;
                y = r;
            }
            return Int::from_i128(x as i128);
        }
        let mut a = self.abs();
        let mut b = rhs.abs();
        while !b.is_zero() {
            let r = a.divrem(&b).1;
            a = b;
            b = r;
        }
        a
    }

    /// Extended gcd: `(g, x, y)` with `self·x + rhs·y = g = gcd ≥ 0`.
    pub fn extended_gcd(&self, rhs: &Int) -> (Int, Int, Int) {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &rhs.repr) {
            // Same truncated-division loop as the generic path, entirely in
            // i128: quotients are bounded by the inputs and the Bezout
            // coefficients by max(|a|, |b|), so nothing overflows.
            let (mut old_r, mut r) = (*a as i128, *b as i128);
            let (mut old_s, mut s) = (1i128, 0i128);
            let (mut old_t, mut t) = (0i128, 1i128);
            while r != 0 {
                let q = old_r / r;
                (old_r, r) = (r, old_r - q * r);
                (old_s, s) = (s, old_s - q * s);
                (old_t, t) = (t, old_t - q * t);
            }
            if old_r < 0 {
                (old_r, old_s, old_t) = (-old_r, -old_s, -old_t);
            }
            return (Int::from_i128(old_r), Int::from_i128(old_s), Int::from_i128(old_t));
        }
        let (mut old_r, mut r) = (self.clone(), rhs.clone());
        let (mut old_s, mut s) = (Int::one(), Int::zero());
        let (mut old_t, mut t) = (Int::zero(), Int::one());
        while !r.is_zero() {
            let (q, rem) = old_r.divrem(&r);
            old_r = std::mem::replace(&mut r, rem);
            let ns = &old_s - &(&q * &s);
            old_s = std::mem::replace(&mut s, ns);
            let nt = &old_t - &(&q * &t);
            old_t = std::mem::replace(&mut t, nt);
        }
        if old_r.is_negative() {
            old_r = -old_r;
            old_s = -old_s;
            old_t = -old_t;
        }
        (old_r, old_s, old_t)
    }

    /// Least common multiple (non-negative; 0 if either operand is 0).
    pub fn lcm(&self, rhs: &Int) -> Int {
        if self.is_zero() || rhs.is_zero() {
            return Int::zero();
        }
        (self.exact_div(&self.gcd(rhs)) * rhs).abs()
    }

    /// Non-negative integer power.
    pub fn pow(&self, mut e: u32) -> Int {
        let mut base = self.clone();
        let mut acc = Int::one();
        while e > 0 {
            if e & 1 == 1 {
                acc = &acc * &base;
            }
            e >>= 1;
            if e > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Parse from a decimal string with an optional leading `-` or `+`.
    pub fn parse_decimal(s: &str) -> Option<Int> {
        let s = s.trim();
        let (sign, digits) = match s.as_bytes().first()? {
            b'-' => (-1i8, &s[1..]),
            b'+' => (1, &s[1..]),
            _ => (1, s),
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let mut v = Int::zero();
        for chunk in digits.as_bytes().chunks(9) {
            let chunk_str = std::str::from_utf8(chunk).ok()?;
            let part: u64 = chunk_str.parse().ok()?;
            let scale = Int::from(10i64.pow(chunk.len() as u32));
            v = &(&v * &scale) + &Int::from(part as i64);
        }
        if sign < 0 {
            v = -v;
        }
        Some(v)
    }
}

impl fmt::Debug for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.repr {
            Repr::Small(v) => {
                let mut buf = [0u8; 20];
                let mut u = v.unsigned_abs();
                let mut i = buf.len();
                loop {
                    i -= 1;
                    buf[i] = b'0' + (u % 10) as u8;
                    u /= 10;
                    if u == 0 {
                        break;
                    }
                }
                let s = std::str::from_utf8(&buf[i..]).expect("decimal digits are ASCII");
                f.pad_integral(*v >= 0, "", s)
            }
            Repr::Big { sign, mag } => {
                // Repeatedly divide the magnitude by 10^9.
                let mut mag = mag.clone();
                let mut chunks: Vec<u32> = Vec::new();
                while !mag.is_empty() {
                    let (q, r) = Int::divrem_mag_single(&mag, 1_000_000_000);
                    mag = q;
                    while mag.last() == Some(&0) {
                        mag.pop();
                    }
                    chunks.push(r);
                }
                let mut s = String::new();
                s.push_str(&chunks.pop().unwrap().to_string());
                for c in chunks.iter().rev() {
                    s.push_str(&format!("{c:09}"));
                }
                f.pad_integral(*sign >= 0, "", &s)
            }
        }
    }
}

impl FromStr for Int {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Int::parse_decimal(s).ok_or_else(|| format!("invalid integer literal: {s:?}"))
    }
}

macro_rules! impl_from_prim {
    ($($t:ty),*) => {$(
        impl From<$t> for Int {
            fn from(v: $t) -> Int {
                Int::from_i128(v as i128)
            }
        }
    )*};
}
impl_from_prim!(i8, i16, i32, i64, i128, u8, u16, u32, u64);

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Self) -> Ordering {
        match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => a.cmp(b),
            // Canonical form: a Big value lies outside the i64 range, so
            // its sign alone decides against any Small value.
            (Repr::Small(_), Repr::Big { sign, .. }) => {
                if *sign > 0 {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (Repr::Big { sign, .. }, Repr::Small(_)) => {
                if *sign > 0 {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (Repr::Big { sign: sa, mag: ma }, Repr::Big { sign: sb, mag: mb }) => {
                match sa.cmp(sb) {
                    Ordering::Equal => {}
                    ord => return ord,
                }
                let mag_ord = Int::cmp_mag(ma, mb);
                if *sa >= 0 {
                    mag_ord
                } else {
                    mag_ord.reverse()
                }
            }
        }
    }
}

impl Neg for Int {
    type Output = Int;
    fn neg(self) -> Int {
        match self.repr {
            Repr::Small(v) => match v.checked_neg() {
                Some(n) => Int::small(n),
                // −(i64::MIN) = 2^63: a genuine spill.
                None => Int::from_i128(-(v as i128)),
            },
            Repr::Big { sign, mag } => Int::canon(-sign, mag),
        }
    }
}

impl Neg for &Int {
    type Output = Int;
    fn neg(self) -> Int {
        match &self.repr {
            Repr::Small(v) => match v.checked_neg() {
                Some(n) => Int::small(n),
                None => Int::from_i128(-(*v as i128)),
            },
            Repr::Big { sign, mag } => Int::canon(-sign, mag.clone()),
        }
    }
}

impl Int {
    fn addsub_slow(&self, rhs: &Int, negate_rhs: bool) -> Int {
        let (mut ba, mut bb) = ([0u32; 2], [0u32; 2]);
        let (sa, ma) = self.parts(&mut ba);
        let (mut sb, mb) = rhs.parts(&mut bb);
        if negate_rhs {
            sb = -sb;
        }
        if sa == 0 {
            return Int::canon(sb, mb.to_vec());
        }
        if sb == 0 {
            return Int::canon(sa, ma.to_vec());
        }
        if sa == sb {
            Int::from_sign_mag(sa, Int::add_mag(ma, mb))
        } else {
            match Int::cmp_mag(ma, mb) {
                Ordering::Equal => Int::zero(),
                Ordering::Greater => Int::from_sign_mag(sa, Int::sub_mag(ma, mb)),
                Ordering::Less => Int::from_sign_mag(sb, Int::sub_mag(mb, ma)),
            }
        }
    }
}

impl Add for &Int {
    type Output = Int;
    fn add(self, rhs: &Int) -> Int {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &rhs.repr) {
            return match a.checked_add(*b) {
                Some(v) => Int::small(v),
                None => Int::from_i128(*a as i128 + *b as i128),
            };
        }
        self.addsub_slow(rhs, false)
    }
}

impl Sub for &Int {
    type Output = Int;
    fn sub(self, rhs: &Int) -> Int {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &rhs.repr) {
            return match a.checked_sub(*b) {
                Some(v) => Int::small(v),
                None => Int::from_i128(*a as i128 - *b as i128),
            };
        }
        self.addsub_slow(rhs, true)
    }
}

impl Mul for &Int {
    type Output = Int;
    fn mul(self, rhs: &Int) -> Int {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &rhs.repr) {
            return match a.checked_mul(*b) {
                Some(v) => Int::small(v),
                None => Int::from_i128(*a as i128 * *b as i128),
            };
        }
        let (mut ba, mut bb) = ([0u32; 2], [0u32; 2]);
        let (sa, ma) = self.parts(&mut ba);
        let (sb, mb) = rhs.parts(&mut bb);
        Int::from_sign_mag(sa * sb, Int::mul_mag(ma, mb))
    }
}

impl Div for &Int {
    type Output = Int;
    fn div(self, rhs: &Int) -> Int {
        self.divrem(rhs).0
    }
}

impl Rem for &Int {
    type Output = Int;
    fn rem(self, rhs: &Int) -> Int {
        self.divrem(rhs).1
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Int {
            type Output = Int;
            fn $method(self, rhs: Int) -> Int {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Int> for Int {
            type Output = Int;
            fn $method(self, rhs: &Int) -> Int {
                (&self).$method(rhs)
            }
        }
        impl $trait<Int> for &Int {
            type Output = Int;
            fn $method(self, rhs: Int) -> Int {
                self.$method(&rhs)
            }
        }
    };
}
forward_binop!(Add, add);
forward_binop!(Sub, sub);
forward_binop!(Mul, mul);
forward_binop!(Div, div);
forward_binop!(Rem, rem);

impl AddAssign<&Int> for Int {
    fn add_assign(&mut self, rhs: &Int) {
        *self = &*self + rhs;
    }
}
impl SubAssign<&Int> for Int {
    fn sub_assign(&mut self, rhs: &Int) {
        *self = &*self - rhs;
    }
}
impl MulAssign<&Int> for Int {
    fn mul_assign(&mut self, rhs: &Int) {
        *self = &*self * rhs;
    }
}

impl Sum for Int {
    fn sum<I: Iterator<Item = Int>>(iter: I) -> Int {
        iter.fold(Int::zero(), |a, b| a + b)
    }
}

impl<'a> Sum<&'a Int> for Int {
    fn sum<I: Iterator<Item = &'a Int>>(iter: I) -> Int {
        iter.fold(Int::zero(), |a, b| a + b)
    }
}

impl Product for Int {
    fn product<I: Iterator<Item = Int>>(iter: I) -> Int {
        iter.fold(Int::one(), |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i128) -> Int {
        Int::from_i128(v)
    }

    /// Force the limb representation even for values that fit `i64` —
    /// deliberately non-canonical, used only to drive the slow paths in
    /// differential tests. Zero stays canonical (several predicates key
    /// on `Small(0)`).
    fn forced_big(v: i128) -> Int {
        if v == 0 {
            return Int::zero();
        }
        let sign = if v < 0 { -1 } else { 1 };
        let mut u = v.unsigned_abs();
        let mut mag = Vec::new();
        while u != 0 {
            mag.push((u & 0xFFFF_FFFF) as u32);
            u >>= 32;
        }
        Int { repr: Repr::Big { sign, mag } }
    }

    #[test]
    fn construction_and_roundtrip() {
        for v in [0i128, 1, -1, 42, -42, i64::MAX as i128, i64::MIN as i128, i128::MAX, i128::MIN] {
            assert_eq!(int(v).to_i128(), Some(v), "roundtrip {v}");
        }
        assert!(int(0).is_zero());
        assert!(int(1).is_one());
        assert!(int(-1).is_neg_one());
        assert_eq!(int(5).signum(), 1);
        assert_eq!(int(-5).signum(), -1);
        assert_eq!(int(0).signum(), 0);
    }

    #[test]
    fn display_and_parse() {
        assert_eq!(int(0).to_string(), "0");
        assert_eq!(int(-1).to_string(), "-1");
        assert_eq!(int(1234567890123456789).to_string(), "1234567890123456789");
        let big = int(i128::MAX);
        assert_eq!(big.to_string(), i128::MAX.to_string());
        assert_eq!("-170141183460469231731687303715884105728".parse::<Int>().unwrap(), int(i128::MIN));
        let huge: Int = "123456789012345678901234567890123456789012345".parse().unwrap();
        assert_eq!(huge.to_string(), "123456789012345678901234567890123456789012345");
        assert!("".parse::<Int>().is_err());
        assert!("12a".parse::<Int>().is_err());
        assert!("-".parse::<Int>().is_err());
    }

    #[test]
    fn big_multiplication_known_value() {
        // (2^64 + 1)^2 = 2^128 + 2^65 + 1
        let a = &int(1i128 << 64) + &int(1);
        let sq = &a * &a;
        let expected: Int = "340282366920938463500268095579187314689".parse().unwrap();
        assert_eq!(sq, expected);
    }

    #[test]
    fn division_basics() {
        assert_eq!(int(7).divrem(&int(2)), (int(3), int(1)));
        assert_eq!(int(-7).divrem(&int(2)), (int(-3), int(-1)));
        assert_eq!(int(7).divrem(&int(-2)), (int(-3), int(1)));
        assert_eq!(int(-7).divrem(&int(-2)), (int(3), int(-1)));
        assert_eq!(int(0).divrem(&int(5)), (int(0), int(0)));
        assert_eq!(int(4).divrem(&int(5)), (int(0), int(4)));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = int(5).divrem(&int(0));
    }

    #[test]
    fn knuth_d_add_back_case() {
        // A case engineered to exercise the qhat correction path:
        // dividend with high limbs just below divisor multiples.
        let a: Int = "340282366920938463463374607431768211455".parse().unwrap(); // 2^128-1
        let b: Int = "18446744073709551616".parse().unwrap(); // 2^64
        let (q, r) = a.divrem(&b);
        assert_eq!(q.to_string(), "18446744073709551615");
        assert_eq!(r.to_string(), "18446744073709551615");
    }

    #[test]
    fn euclid_division() {
        assert_eq!(int(-7).div_euclid(&int(2)), int(-4));
        assert_eq!(int(-7).rem_euclid(&int(2)), int(1));
        assert_eq!(int(7).div_euclid(&int(-2)), int(-3));
        assert_eq!(int(7).rem_euclid(&int(-2)), int(1));
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(int(12).gcd(&int(18)), int(6));
        assert_eq!(int(-12).gcd(&int(18)), int(6));
        assert_eq!(int(0).gcd(&int(0)), int(0));
        assert_eq!(int(0).gcd(&int(-7)), int(7));
        assert_eq!(int(4).lcm(&int(6)), int(12));
        assert_eq!(int(0).lcm(&int(6)), int(0));
    }

    #[test]
    fn extended_gcd_bezout() {
        let (g, x, y) = int(240).extended_gcd(&int(46));
        assert_eq!(g, int(2));
        assert_eq!(&(&int(240) * &x) + &(&int(46) * &y), int(2));
    }

    #[test]
    fn pow_and_bits() {
        assert_eq!(int(2).pow(100).to_string(), "1267650600228229401496703205376");
        assert_eq!(int(0).pow(0), int(1));
        assert_eq!(int(3).pow(0), int(1));
        assert_eq!(int(-2).pow(3), int(-8));
        assert_eq!(int(0).bits(), 0);
        assert_eq!(int(1).bits(), 1);
        assert_eq!(int(255).bits(), 8);
        assert_eq!(int(256).bits(), 9);
    }

    #[test]
    fn ordering() {
        assert!(int(-5) < int(-4));
        assert!(int(-1) < int(0));
        assert!(int(0) < int(1));
        assert!(int(i64::MAX as i128) < int(i64::MAX as i128 + 1));
        let mut v = vec![int(3), int(-10), int(0), int(7), int(-1)];
        v.sort();
        assert_eq!(v, vec![int(-10), int(-1), int(0), int(3), int(7)]);
    }

    #[test]
    fn exact_div_ok_and_panic() {
        assert_eq!(int(84).exact_div(&int(7)), int(12));
        let r = std::panic::catch_unwind(|| int(85).exact_div(&int(7)));
        assert!(r.is_err());
    }

    #[test]
    fn i64_boundary_edges() {
        let min = int(i64::MIN as i128);
        assert_eq!(min.to_i64(), Some(i64::MIN));
        // −(i64::MIN) = 2^63 spills to limbs…
        let negmin = -&min;
        assert!(negmin.to_i64().is_none());
        assert_eq!(negmin.to_i128(), Some(-(i64::MIN as i128)));
        // …and negating back demotes to the inline representation.
        assert_eq!(-&negmin, min);
        assert_eq!(min.abs(), negmin);
        assert_eq!(min.divrem(&int(-1)), (negmin.clone(), int(0)));
        // i64::MAX + 1 crosses the boundary upward and back.
        let just_over = &int(i64::MAX as i128) + &int(1);
        assert!(just_over.to_i64().is_none());
        assert_eq!(&just_over - &int(1), int(i64::MAX as i128));
    }

    #[test]
    fn small_arithmetic_never_spills() {
        let before = crate::stats::thread_bigint_spills();
        let a = int(123_456_789);
        let b = int(-987_654);
        let _ = &a + &b;
        let _ = &a - &b;
        let _ = &a * &b;
        let _ = a.divrem(&b);
        let _ = a.gcd(&b);
        let _ = a.extended_gcd(&b);
        let _ = a.exact_div(&int(3));
        let _ = -&a;
        let _ = b.abs();
        let _ = a.pow(2);
        let _ = a.cmp(&b);
        let _ = a.lcm(&int(42));
        let _ = a.to_string();
        assert_eq!(crate::stats::thread_bigint_spills(), before);
    }

    #[test]
    fn overflow_spills_and_counts() {
        let before = crate::stats::thread_bigint_spills();
        let big = &int(i64::MAX as i128) * &int(2);
        assert!(big.to_i64().is_none());
        assert_eq!(big.to_i128(), Some(i64::MAX as i128 * 2));
        assert!(crate::stats::thread_bigint_spills() > before);
    }

    cfmap_testkit::props! {
        cases = 256;

        fn add_matches_i128(a in -(1i128<<96)..(1i128<<96), b in -(1i128<<96)..(1i128<<96)) {
            assert_eq!(&int(a) + &int(b), int(a + b));
        }

        fn sub_matches_i128(a in -(1i128<<96)..(1i128<<96), b in -(1i128<<96)..(1i128<<96)) {
            assert_eq!(&int(a) - &int(b), int(a - b));
        }

        fn mul_matches_i128(a in -(1i128<<62)..(1i128<<62), b in -(1i128<<62)..(1i128<<62)) {
            assert_eq!(&int(a) * &int(b), int(a * b));
        }

        fn divrem_matches_i128(a in cfmap_testkit::gen::any_i128(), b in cfmap_testkit::gen::any_i128()) {
            cfmap_testkit::tk_assume!(b != 0);
            // Avoid the single overflowing case i128::MIN / -1.
            cfmap_testkit::tk_assume!(!(a == i128::MIN && b == -1));
            let (q, r) = int(a).divrem(&int(b));
            assert_eq!(q, int(a / b));
            assert_eq!(r, int(a % b));
        }

        fn divrem_reconstructs(
            a_s in cfmap_testkit::gen::nonzero_digit_string(61),
            b_s in cfmap_testkit::gen::nonzero_digit_string(31),
            sa in cfmap_testkit::gen::bools(),
            sb in cfmap_testkit::gen::bools(),
        ) {
            let mut a: Int = a_s.parse().unwrap();
            let mut b: Int = b_s.parse().unwrap();
            if sa { a = -a; }
            if sb { b = -b; }
            let (q, r) = a.divrem(&b);
            assert_eq!(&(&q * &b) + &r, a.clone());
            assert!(r.abs() < b.abs());
            if !r.is_zero() {
                assert_eq!(r.signum(), a.signum());
            }
        }

        fn display_parse_roundtrip(s in cfmap_testkit::gen::signed_digit_string(81)) {
            let v: Int = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }

        fn gcd_divides(
            a_s in cfmap_testkit::gen::digit_string(1, 40),
            b_s in cfmap_testkit::gen::digit_string(1, 40),
        ) {
            let a: Int = a_s.parse().unwrap();
            let b: Int = b_s.parse().unwrap();
            let g = a.gcd(&b);
            if !g.is_zero() {
                assert!(a.divisible_by(&g));
                assert!(b.divisible_by(&g));
            }
        }

        fn extended_gcd_holds(a in cfmap_testkit::gen::any_i128(), b in cfmap_testkit::gen::any_i128()) {
            cfmap_testkit::tk_assume!(a != i128::MIN && b != i128::MIN);
            let (g, x, y) = int(a).extended_gcd(&int(b));
            assert_eq!(&(&int(a) * &x) + &(&int(b) * &y), g.clone());
            assert_eq!(g, int(a).gcd(&int(b)));
        }

        fn mul_commutes_and_associates(
            a_s in cfmap_testkit::gen::digit_string(1, 30),
            b_s in cfmap_testkit::gen::digit_string(1, 30),
            c_s in cfmap_testkit::gen::digit_string(1, 30),
        ) {
            let a: Int = a_s.parse().unwrap();
            let b: Int = b_s.parse().unwrap();
            let c: Int = c_s.parse().unwrap();
            assert_eq!(&a * &b, &b * &a);
            assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        }

        fn ord_consistent_with_sub(a in cfmap_testkit::gen::any_i128(), b in cfmap_testkit::gen::any_i128()) {
            assert_eq!(int(a).cmp(&int(b)), a.cmp(&b));
        }

        // Differential tests: the same computation on the inline `i64`
        // fast path and on (deliberately non-canonical) limb operands
        // must agree for every operation with a dedicated fast path.

        fn smallbig_add_sub_mul_agree(a in -(1i128<<62)..(1i128<<62), b in -(1i128<<62)..(1i128<<62)) {
            let (fa, fb) = (forced_big(a), forced_big(b));
            assert_eq!(&fa + &fb, int(a + b));
            assert_eq!(&fa - &fb, int(a - b));
            assert_eq!(&fa * &fb, int(a * b));
        }

        fn smallbig_divrem_gcd_agree(a in -(1i128<<62)..(1i128<<62), b in -(1i128<<62)..(1i128<<62)) {
            cfmap_testkit::tk_assume!(b != 0);
            let (fa, fb) = (forced_big(a), forced_big(b));
            // Compare by value: the |a| < |b| early return clones the
            // operand verbatim, which here is deliberately non-canonical.
            let (q, r) = fa.divrem(&fb);
            assert_eq!(q.to_i128(), Some(a / b));
            assert_eq!(r.to_i128(), Some(a % b));
            assert_eq!(fa.gcd(&fb), int(a).gcd(&int(b)));
        }

        fn smallbig_cmp_agree(a in -(1i128<<62)..(1i128<<62), b in -(1i128<<62)..(1i128<<62)) {
            // Mixed Small/Big comparison relies on the canonical-form
            // invariant, so compare like representations only.
            cfmap_testkit::tk_assume!(a != 0 && b != 0);
            assert_eq!(forced_big(a).cmp(&forced_big(b)), a.cmp(&b));
        }

        fn smallbig_exact_div_agree(a in -(1i128<<31)..(1i128<<31), b in -(1i128<<31)..(1i128<<31)) {
            cfmap_testkit::tk_assume!(b != 0);
            let p = a * b;
            assert_eq!(forced_big(p).exact_div(&forced_big(b)), int(a));
        }

        fn mixed_repr_ops_agree(a in -(1i128<<40)..(1i128<<40), b in -(1i128<<40)..(1i128<<40)) {
            let fb = forced_big(b);
            assert_eq!(&int(a) + &fb, int(a + b));
            assert_eq!(&fb - &int(a), int(b - a));
            assert_eq!(&int(a) * &fb, int(a * b));
        }
    }
}
