//! Process-wide fast-path instrumentation.
//!
//! The exact-arithmetic layer has two tiers: an inline machine-word fast
//! path and a heap-allocated limb fallback (see [`crate::int`] and
//! [`crate::hnf64`]). These counters record how often the fallback tier
//! is exercised, so a service can alert when a workload silently leaves
//! the allocation-free regime. They are plain relaxed atomics — `cfmap-intlin`
//! must not depend on the metrics registry living in `cfmap-core`; the
//! service layer surfaces them through render-time gauge callbacks
//! instead.
//!
//! Each event is additionally mirrored into a thread-local counter so
//! tests can assert "this exact computation never spilled" without being
//! polluted by concurrently running tests on other threads.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static BIGINT_SPILLS: AtomicU64 = AtomicU64::new(0);
static HNF_I64_FAST: AtomicU64 = AtomicU64::new(0);
static HNF_I64_FALLBACK: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_BIGINT_SPILLS: Cell<u64> = const { Cell::new(0) };
}

/// Record one promotion of an [`crate::Int`] out of the inline `i64`
/// representation into heap-allocated limbs.
pub(crate) fn note_bigint_spill() {
    BIGINT_SPILLS.fetch_add(1, Ordering::Relaxed);
    THREAD_BIGINT_SPILLS.with(|c| c.set(c.get() + 1));
}

/// Record one Hermite normal form served entirely by the `i64` kernel.
pub(crate) fn note_hnf_i64_fast() {
    HNF_I64_FAST.fetch_add(1, Ordering::Relaxed);
}

/// Record one Hermite normal form that fell back to bignum arithmetic
/// (entries or intermediates overflowed `i64`).
pub(crate) fn note_hnf_i64_fallback() {
    HNF_I64_FALLBACK.fetch_add(1, Ordering::Relaxed);
}

/// Process-wide count of heap bignum values materialized by exact
/// integer arithmetic. Zero for a workload that stays entirely on the
/// inline `i64` fast path (all of the paper's worked examples do).
pub fn bigint_spills_total() -> u64 {
    BIGINT_SPILLS.load(Ordering::Relaxed)
}

/// [`bigint_spills_total`] restricted to the calling thread — the
/// deterministic view used by zero-allocation regression tests.
pub fn thread_bigint_spills() -> u64 {
    THREAD_BIGINT_SPILLS.with(Cell::get)
}

/// Process-wide count of Hermite normal forms computed entirely in the
/// dedicated `i64` kernel (see [`crate::hnf64`]).
pub fn hnf_i64_fast_total() -> u64 {
    HNF_I64_FAST.load(Ordering::Relaxed)
}

/// Process-wide count of Hermite normal forms that overflowed the `i64`
/// kernel and were recomputed with bignum arithmetic.
pub fn hnf_i64_fallback_total() -> u64 {
    HNF_I64_FALLBACK.load(Ordering::Relaxed)
}
