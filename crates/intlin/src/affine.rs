//! Symbolic affine forms in one integer parameter.
//!
//! The family-inference layer reasons about schedules whose entries are
//! affine in the problem size μ: `f(μ) = slope·μ + offset`. The paper's
//! closed-form conflict conditions then become linear-in-μ inequalities,
//! and "does this hold for *every* integer μ ≥ μ₀?" is decidable
//! exactly — an affine form is monotone, so each inequality carves a
//! rational interval out of the μ-axis. This module provides the form
//! itself (exact [`Int`] coefficients, no overflow) and the two
//! decision primitives the certifier needs: sign stability on a ray and
//! the solution interval of `f(μ) ≥ 0`.

use crate::int::Int;
use crate::rat::Rat;

/// `slope·μ + offset` with exact integer coefficients.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AffineInt {
    /// Coefficient of μ.
    pub slope: Int,
    /// Constant term.
    pub offset: Int,
}

impl AffineInt {
    /// `slope·μ + offset` from exact coefficients.
    pub fn new(slope: Int, offset: Int) -> AffineInt {
        AffineInt { slope, offset }
    }

    /// A constant form (zero slope).
    pub fn constant(offset: Int) -> AffineInt {
        AffineInt { slope: Int::zero(), offset }
    }

    /// `slope·μ + offset` from machine integers.
    pub fn from_i64(slope: i64, offset: i64) -> AffineInt {
        AffineInt { slope: Int::from(slope), offset: Int::from(offset) }
    }

    /// The zero form.
    pub fn zero() -> AffineInt {
        AffineInt::constant(Int::zero())
    }

    /// Is this identically zero?
    pub fn is_zero(&self) -> bool {
        self.slope.is_zero() && self.offset.is_zero()
    }

    /// Is this independent of μ?
    pub fn is_constant(&self) -> bool {
        self.slope.is_zero()
    }

    /// Exact evaluation at an integer parameter value.
    pub fn eval(&self, mu: &Int) -> Int {
        &(&self.slope * mu) + &self.offset
    }

    /// Pointwise sum.
    pub fn add(&self, rhs: &AffineInt) -> AffineInt {
        AffineInt { slope: &self.slope + &rhs.slope, offset: &self.offset + &rhs.offset }
    }

    /// Pointwise difference.
    pub fn sub(&self, rhs: &AffineInt) -> AffineInt {
        AffineInt { slope: &self.slope - &rhs.slope, offset: &self.offset - &rhs.offset }
    }

    /// Pointwise negation.
    pub fn neg(&self) -> AffineInt {
        AffineInt { slope: -&self.slope, offset: -&self.offset }
    }

    /// Multiply both coefficients by a constant.
    pub fn scale(&self, c: &Int) -> AffineInt {
        AffineInt { slope: &self.slope * c, offset: &self.offset * c }
    }

    /// Divide both coefficients exactly (caller guarantees divisibility).
    pub fn exact_div(&self, c: &Int) -> AffineInt {
        AffineInt { slope: self.slope.exact_div(c), offset: self.offset.exact_div(c) }
    }

    /// `gcd(slope, offset)` — the *coefficient* content, constant in μ.
    /// (The pointwise content `gcd over evaluations` can still vary with
    /// μ; see [`pairwise_cross`] for the bound the certifier uses.)
    pub fn coeff_gcd(&self) -> Int {
        self.slope.gcd(&self.offset)
    }

    /// Decide `f(μ) > 0` for **every** integer `μ ≥ μ₀`. Exact: an
    /// affine form is monotone on the ray, so it suffices to look at the
    /// slope sign and the value at the endpoint.
    pub fn always_positive(&self, mu0: &Int) -> bool {
        match self.slope.signum() {
            1 => self.eval(mu0).is_positive(),
            0 => self.offset.is_positive(),
            _ => false, // negative slope: eventually non-positive
        }
    }

    /// The solution set of `f(μ) ≥ 0` over the reals, as a rational
    /// interval (possibly empty or unbounded on either side).
    pub fn nonneg_interval(&self) -> RatInterval {
        let s = self.slope.signum();
        if s == 0 {
            if self.offset.is_negative() {
                RatInterval::empty()
            } else {
                RatInterval::all()
            }
        } else {
            // slope·μ + offset ≥ 0  ⟺  μ ≥ −offset/slope (slope > 0)
            //                       ⟺  μ ≤ −offset/slope (slope < 0)
            let root = Rat::new(-&self.offset, self.slope.clone());
            if s > 0 {
                RatInterval { lo: Some(root), hi: None, empty: false }
            } else {
                RatInterval { lo: None, hi: Some(root), empty: false }
            }
        }
    }
}

/// `|slopeᵢ·offsetⱼ − slopeⱼ·offsetᵢ|` — the resultant of two affine
/// forms. Any common divisor of `f(μ)` and `g(μ)` at a concrete μ
/// divides this constant, which is how the certifier bounds the
/// pointwise gcd content of a symbolic conflict vector.
pub fn pairwise_cross(f: &AffineInt, g: &AffineInt) -> Int {
    (&(&f.slope * &g.offset) - &(&g.slope * &f.offset)).abs()
}

/// A closed rational interval, possibly unbounded on either side.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RatInterval {
    /// Lower bound (`None` = −∞).
    pub lo: Option<Rat>,
    /// Upper bound (`None` = +∞).
    pub hi: Option<Rat>,
    empty: bool,
}

impl RatInterval {
    /// The whole real line.
    pub fn all() -> RatInterval {
        RatInterval { lo: None, hi: None, empty: false }
    }

    /// The empty set.
    pub fn empty() -> RatInterval {
        RatInterval { lo: None, hi: None, empty: true }
    }

    /// Does the interval contain no points?
    pub fn is_empty(&self) -> bool {
        if self.empty {
            return true;
        }
        match (&self.lo, &self.hi) {
            (Some(lo), Some(hi)) => lo > hi,
            _ => false,
        }
    }

    /// Intersect two intervals (tightest bounds win).
    pub fn intersect(&self, other: &RatInterval) -> RatInterval {
        if self.is_empty() || other.is_empty() {
            return RatInterval::empty();
        }
        let lo = match (&self.lo, &other.lo) {
            (Some(a), Some(b)) => Some(if a >= b { a.clone() } else { b.clone() }),
            (Some(a), None) => Some(a.clone()),
            (None, b) => b.clone(),
        };
        let hi = match (&self.hi, &other.hi) {
            (Some(a), Some(b)) => Some(if a <= b { a.clone() } else { b.clone() }),
            (Some(a), None) => Some(a.clone()),
            (None, b) => b.clone(),
        };
        RatInterval { lo, hi, empty: false }
    }

    /// Does the interval contain an **integer** point `≥ lo_int`?
    /// Returns the smallest such integer when one exists — the witness
    /// the certifier reports when a template is refuted.
    pub fn first_integer_at_least(&self, lo_int: &Int) -> Option<Int> {
        if self.is_empty() {
            return None;
        }
        let mut start = lo_int.clone();
        if let Some(lo) = &self.lo {
            let ceil = lo.ceil();
            if ceil > start {
                start = ceil;
            }
        }
        match &self.hi {
            None => Some(start),
            Some(hi) => {
                if Rat::from_int(start.clone()) <= *hi {
                    Some(start)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aff(s: i64, o: i64) -> AffineInt {
        AffineInt::from_i64(s, o)
    }

    #[test]
    fn eval_and_ops() {
        let f = aff(2, -3);
        assert_eq!(f.eval(&Int::from(5)), Int::from(7));
        assert_eq!(f.add(&aff(1, 1)), aff(3, -2));
        assert_eq!(f.sub(&aff(1, 1)), aff(1, -4));
        assert_eq!(f.neg(), aff(-2, 3));
        assert_eq!(f.scale(&Int::from(3)), aff(6, -9));
        assert_eq!(aff(4, 6).coeff_gcd(), Int::from(2));
    }

    #[test]
    fn positivity_on_ray_is_exact() {
        // μ + 1 > 0 for μ ≥ 0; μ − 3 > 0 only from μ = 4.
        assert!(aff(1, 1).always_positive(&Int::zero()));
        assert!(!aff(1, -3).always_positive(&Int::from(3)));
        assert!(aff(1, -3).always_positive(&Int::from(4)));
        assert!(aff(0, 2).always_positive(&Int::from(100)));
        assert!(!aff(0, 0).always_positive(&Int::zero()));
        assert!(!aff(-1, 1000).always_positive(&Int::zero()));
    }

    #[test]
    fn nonneg_interval_shapes() {
        // 2μ − 5 ≥ 0 ⟺ μ ≥ 5/2.
        let i = aff(2, -5).nonneg_interval();
        assert_eq!(i.first_integer_at_least(&Int::zero()), Some(Int::from(3)));
        // −μ + 4 ≥ 0 ⟺ μ ≤ 4.
        let j = aff(-1, 4).nonneg_interval();
        assert_eq!(j.first_integer_at_least(&Int::from(5)), None);
        assert_eq!(j.first_integer_at_least(&Int::from(2)), Some(Int::from(2)));
        // Intersection [5/2, 4] has integers {3, 4}.
        let k = i.intersect(&j);
        assert_eq!(k.first_integer_at_least(&Int::zero()), Some(Int::from(3)));
        assert_eq!(k.first_integer_at_least(&Int::from(4)), Some(Int::from(4)));
        assert_eq!(k.first_integer_at_least(&Int::from(5)), None);
        // Constant −1 ≥ 0 is empty; constant 0 ≥ 0 is everything.
        assert!(aff(0, -1).nonneg_interval().is_empty());
        assert!(!aff(0, 0).nonneg_interval().is_empty());
    }

    #[test]
    fn cross_bounds_pointwise_content() {
        // f = μ+1, g = μ−1: cross = 2, and indeed gcd(f, g) | 2 at
        // every μ (gcd is 2 at odd μ, 1 at even μ).
        let c = pairwise_cross(&aff(1, 1), &aff(1, -1));
        assert_eq!(c, Int::from(2));
        for mu in 0..20i64 {
            let g = Int::from(mu + 1).gcd(&Int::from(mu - 1));
            assert!(c.divisible_by(&g));
        }
    }
}
