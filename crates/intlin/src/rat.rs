//! Exact rational numbers over [`Int`].
//!
//! Invariants: the denominator is always strictly positive and
//! `gcd(num, den) == 1` (zero is represented as `0/1`). These are exactly
//! the numbers the exact simplex in `cfmap-lp` pivots on, and what matrix
//! inversion produces. No floating point appears anywhere in the workspace.

use crate::int::Int;
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number in lowest terms with a positive denominator.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rat {
    num: Int,
    den: Int,
}

impl Rat {
    /// Construct `num/den`, normalizing sign and common factors.
    ///
    /// Panics if `den` is zero.
    pub fn new(num: Int, den: Int) -> Rat {
        assert!(!den.is_zero(), "Rat with zero denominator");
        let mut r = Rat { num, den };
        r.normalize();
        r
    }

    /// The rational 0.
    pub fn zero() -> Rat {
        Rat { num: Int::zero(), den: Int::one() }
    }

    /// The rational 1.
    pub fn one() -> Rat {
        Rat { num: Int::one(), den: Int::one() }
    }

    /// An integer as a rational.
    pub fn from_int(v: Int) -> Rat {
        Rat { num: v, den: Int::one() }
    }

    /// A machine integer as a rational.
    pub fn from_i64(v: i64) -> Rat {
        Rat::from_int(Int::from(v))
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &Int {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &Int {
        &self.den
    }

    /// `true` iff exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// `true` iff strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// `true` iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// `true` iff the denominator is 1.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Sign as −1, 0 or +1.
    pub fn signum(&self) -> i8 {
        self.num.signum()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rat {
        Rat { num: self.num.abs(), den: self.den.clone() }
    }

    /// Multiplicative inverse; panics on zero.
    pub fn recip(&self) -> Rat {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rat::new(self.den.clone(), self.num.clone())
    }

    /// Largest integer ≤ self.
    pub fn floor(&self) -> Int {
        self.num.div_euclid(&self.den)
    }

    /// Smallest integer ≥ self.
    pub fn ceil(&self) -> Int {
        -((-&self.num).div_euclid(&self.den))
    }

    /// The integer value if the denominator is 1.
    pub fn to_int(&self) -> Option<Int> {
        if self.is_integer() {
            Some(self.num.clone())
        } else {
            None
        }
    }

    /// Approximate `f64` value (for diagnostics only — never used in
    /// decision logic).
    pub fn to_f64_lossy(&self) -> f64 {
        // Scale through strings only when small enough; otherwise do a
        // coarse bit-based estimate.
        match (self.num.to_i128(), self.den.to_i128()) {
            (Some(n), Some(d)) => n as f64 / d as f64,
            _ => {
                let shift = (self.num.bits().max(self.den.bits())).saturating_sub(60) as u32;
                let scale = Int::from(2i64).pow(shift);
                let n = (&self.num / &scale).to_i128().unwrap_or(0) as f64;
                let d = (&self.den / &scale).to_i128().unwrap_or(1).max(1) as f64;
                n / d
            }
        }
    }

    fn normalize(&mut self) {
        if self.num.is_zero() {
            self.den = Int::one();
            return;
        }
        if self.den.is_negative() {
            self.num = -std::mem::take(&mut self.num);
            self.den = -std::mem::take(&mut self.den);
        }
        let g = self.num.gcd(&self.den);
        if !g.is_one() {
            self.num = self.num.exact_div(&g);
            self.den = self.den.exact_div(&g);
        }
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::zero()
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl FromStr for Rat {
    type Err = String;
    /// Parses `"a"` or `"a/b"` in decimal.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('/') {
            None => Ok(Rat::from_int(s.parse::<Int>()?)),
            Some((n, d)) => {
                let num = n.trim().parse::<Int>()?;
                let den = d.trim().parse::<Int>()?;
                if den.is_zero() {
                    return Err(format!("zero denominator in {s:?}"));
                }
                Ok(Rat::new(num, den))
            }
        }
    }
}

impl From<Int> for Rat {
    fn from(v: Int) -> Rat {
        Rat::from_int(v)
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Rat {
        Rat::from_i64(v)
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d (b,d > 0)  ⇔  a·d vs c·b
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(mut self) -> Rat {
        self.num = -self.num;
        self
    }
}

impl Neg for &Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat { num: -&self.num, den: self.den.clone() }
    }
}

impl Add for &Rat {
    type Output = Rat;
    fn add(self, rhs: &Rat) -> Rat {
        Rat::new(
            &(&self.num * &rhs.den) + &(&rhs.num * &self.den),
            &self.den * &rhs.den,
        )
    }
}

impl Sub for &Rat {
    type Output = Rat;
    fn sub(self, rhs: &Rat) -> Rat {
        Rat::new(
            &(&self.num * &rhs.den) - &(&rhs.num * &self.den),
            &self.den * &rhs.den,
        )
    }
}

impl Mul for &Rat {
    type Output = Rat;
    fn mul(self, rhs: &Rat) -> Rat {
        Rat::new(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Div for &Rat {
    type Output = Rat;
    fn div(self, rhs: &Rat) -> Rat {
        assert!(!rhs.is_zero(), "Rat division by zero");
        Rat::new(&self.num * &rhs.den, &self.den * &rhs.num)
    }
}

macro_rules! forward_rat_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Rat {
            type Output = Rat;
            fn $method(self, rhs: Rat) -> Rat {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Rat> for Rat {
            type Output = Rat;
            fn $method(self, rhs: &Rat) -> Rat {
                (&self).$method(rhs)
            }
        }
        impl $trait<Rat> for &Rat {
            type Output = Rat;
            fn $method(self, rhs: Rat) -> Rat {
                self.$method(&rhs)
            }
        }
    };
}
forward_rat_binop!(Add, add);
forward_rat_binop!(Sub, sub);
forward_rat_binop!(Mul, mul);
forward_rat_binop!(Div, div);

impl AddAssign<&Rat> for Rat {
    fn add_assign(&mut self, rhs: &Rat) {
        *self = &*self + rhs;
    }
}
impl SubAssign<&Rat> for Rat {
    fn sub_assign(&mut self, rhs: &Rat) {
        *self = &*self - rhs;
    }
}

impl Sum for Rat {
    fn sum<I: Iterator<Item = Rat>>(iter: I) -> Rat {
        iter.fold(Rat::zero(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(n: i64, d: i64) -> Rat {
        Rat::new(Int::from(n), Int::from(d))
    }

    #[test]
    fn normalization() {
        assert_eq!(rat(2, 4), rat(1, 2));
        assert_eq!(rat(-2, -4), rat(1, 2));
        assert_eq!(rat(2, -4), rat(-1, 2));
        assert_eq!(rat(0, 7), Rat::zero());
        assert_eq!(rat(0, -7).denom(), &Int::one());
        assert!(rat(6, 3).is_integer());
        assert_eq!(rat(6, 3).to_int(), Some(Int::from(2)));
        assert_eq!(rat(1, 2).to_int(), None);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = rat(1, 0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(&rat(1, 2) + &rat(1, 3), rat(5, 6));
        assert_eq!(&rat(1, 2) - &rat(1, 3), rat(1, 6));
        assert_eq!(&rat(2, 3) * &rat(3, 4), rat(1, 2));
        assert_eq!(&rat(2, 3) / &rat(4, 9), rat(3, 2));
        assert_eq!(-rat(1, 2), rat(-1, 2));
        assert_eq!(rat(-3, 4).abs(), rat(3, 4));
        assert_eq!(rat(2, 3).recip(), rat(3, 2));
        assert_eq!(rat(-2, 3).recip(), rat(-3, 2));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(rat(7, 2).floor(), Int::from(3));
        assert_eq!(rat(7, 2).ceil(), Int::from(4));
        assert_eq!(rat(-7, 2).floor(), Int::from(-4));
        assert_eq!(rat(-7, 2).ceil(), Int::from(-3));
        assert_eq!(rat(6, 2).floor(), Int::from(3));
        assert_eq!(rat(6, 2).ceil(), Int::from(3));
    }

    #[test]
    fn ordering() {
        assert!(rat(1, 3) < rat(1, 2));
        assert!(rat(-1, 2) < rat(-1, 3));
        assert!(rat(-1, 2) < rat(0, 1));
        let mut v = vec![rat(1, 2), rat(-3, 4), rat(5, 6), rat(0, 1)];
        v.sort();
        assert_eq!(v, vec![rat(-3, 4), rat(0, 1), rat(1, 2), rat(5, 6)]);
    }

    #[test]
    fn display_parse() {
        assert_eq!(rat(1, 2).to_string(), "1/2");
        assert_eq!(rat(4, 2).to_string(), "2");
        assert_eq!(rat(-1, 2).to_string(), "-1/2");
        assert_eq!("3/6".parse::<Rat>().unwrap(), rat(1, 2));
        assert_eq!("-5".parse::<Rat>().unwrap(), rat(-5, 1));
        assert!("1/0".parse::<Rat>().is_err());
    }

    cfmap_testkit::props! {
        cases = 256;

        fn field_axioms(
            an in -1000i64..1000, ad in 1i64..50,
            bn in -1000i64..1000, bd in 1i64..50,
            cn in -1000i64..1000, cd in 1i64..50,
        ) {
            let a = rat(an, ad);
            let b = rat(bn, bd);
            let c = rat(cn, cd);
            assert_eq!(&a + &b, &b + &a);
            assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
            assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
            if !b.is_zero() {
                assert_eq!(&(&a / &b) * &b, a.clone());
            }
            assert_eq!(&a - &a, Rat::zero());
        }

        fn always_lowest_terms(n in -100_000i64..100_000, d in 1i64..100_000) {
            let r = rat(n, d);
            assert!(r.denom().is_positive());
            assert!(r.numer().gcd(r.denom()).is_one() || r.is_zero());
        }

        fn floor_le_value_le_ceil(n in -10_000i64..10_000, d in 1i64..100) {
            let r = rat(n, d);
            let fl = Rat::from_int(r.floor());
            let ce = Rat::from_int(r.ceil());
            assert!(fl <= r && r <= ce);
            assert!(&ce - &fl <= Rat::one());
        }

        fn cmp_matches_f64(an in -1000i64..1000, ad in 1i64..100, bn in -1000i64..1000, bd in 1i64..100) {
            let a = rat(an, ad);
            let b = rat(bn, bd);
            let fa = an as f64 / ad as f64;
            let fb = bn as f64 / bd as f64;
            if (fa - fb).abs() > 1e-9 {
                assert_eq!(a < b, fa < fb);
            }
        }
    }
}
