//! Canonicalization is a true symmetry of the mapping theory: every
//! axis-permuted / column-reordered presentation of a problem gets the
//! same cache key, and solving the *canonical* problem once then
//! translating the schedule back through each presentation's permutation
//! yields a conflict-free, time-optimal Π for that presentation — the
//! exact contract the cfmapd design cache relies on.
//!
//! Two subtleties make the assertions precise rather than naive:
//!
//! * a direct `Procedure51` run on a permuted presentation may return a
//!   *different* equally-optimal schedule (ties break by enumeration
//!   order), so schedules are taken from the canonical pipeline;
//! * a problem can have nontrivial automorphisms (matmul is symmetric in
//!   its first two axes), in which case the de-canonicalized answers of
//!   two presentations related by σ differ by exactly such an
//!   automorphism. The invariant that always holds — and the one the
//!   cache relies on — is that the *canonical* Π is shared, and each
//!   presentation's answer, pulled back through its σ, is an optimal
//!   conflict-free schedule of the base problem.

use cfmap_core::{
    canonicalize, diagnose, CanonicalProblem, MappingMatrix, Procedure51, SpaceMap,
};
use cfmap_model::{algorithms, DependenceMatrix, LinearSchedule, Uda};

fn all_perms_3() -> Vec<[usize; 3]> {
    vec![
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ]
}

fn key(alg: &Uda, space: &SpaceMap) -> CanonicalProblem {
    canonicalize(alg, space).problem
}

/// Directly search the presented problem; returns (schedule, objective).
fn solve_direct(alg: &Uda, space: &SpaceMap) -> (Vec<i64>, i64) {
    let opt = Procedure51::new(alg, space)
        .solve()
        .expect("search ran")
        .expect_optimal("mapping exists");
    (opt.schedule.as_slice().to_vec(), opt.objective)
}

/// Solve via the canonical pipeline (what the cfmapd cache does): search
/// the canonical problem, then translate Π back to presented coordinates.
/// Returns (Π in presented coordinates, Π in canonical coordinates).
fn solve_via_canon(alg: &Uda, space: &SpaceMap) -> (Vec<i64>, Vec<i64>) {
    let canon = canonicalize(alg, space);
    let c_alg = canon.problem.uda("canonical");
    let c_space = canon.problem.space_map();
    let (pi_c, _) = solve_direct(&c_alg, &c_space);
    (canon.schedule_to_original(&pi_c), pi_c)
}

fn objective(pi: &[i64], mu: &[i64]) -> i64 {
    pi.iter().zip(mu).map(|(p, m)| p.abs() * m).sum()
}

/// Run the invariance checks for one workload/space pair.
fn assert_invariant(alg: &Uda, s_row: &[i64; 3]) {
    let space = SpaceMap::row(s_row);
    let base_key = key(alg, &space);
    let (_, base_pi_canonical) = solve_via_canon(alg, &space);
    let (_, base_obj) = solve_direct(alg, &space);

    for perm in all_perms_3() {
        let alg_p = alg.permuted_axes(&perm);
        let row_p: Vec<i64> = perm.iter().map(|&p| s_row[p]).collect();
        let space_p = SpaceMap::row(&row_p);

        // Identical cache key for every presentation…
        assert_eq!(key(&alg_p, &space_p), base_key, "{} perm {perm:?}", alg.name);

        // …hence the identical canonical Π (one search serves them all).
        let (pi_p, pi_c) = solve_via_canon(&alg_p, &space_p);
        assert_eq!(pi_c, base_pi_canonical, "{} perm {perm:?}", alg.name);

        // The de-canonicalized schedule is optimal for the presented
        // problem (same objective as a direct search of it)…
        assert_eq!(
            objective(&pi_p, alg_p.index_set.mu()),
            base_obj,
            "{} perm {perm:?}: canonical answer must match the direct optimum",
            alg.name
        );
        assert_eq!(solve_direct(&alg_p, &space_p).1, base_obj, "{} perm {perm:?}", alg.name);

        // …and genuinely conflict-free (exact lattice diagnosis).
        let mapping = MappingMatrix::new(space_p, LinearSchedule::new(&pi_p));
        assert!(
            diagnose(&alg_p, &mapping, None).is_valid(),
            "{} perm {perm:?}: de-canonicalized Π must be conflict-free",
            alg.name
        );

        // Identical Π modulo the permutation: pulled back through σ
        // (base axis perm[c] gets entry c), the permuted presentation's
        // answer is an optimal, conflict-free schedule of the BASE
        // problem. (Exact equality with the base answer would be too
        // strong: problems with automorphisms — matmul is symmetric in
        // its first two axes — admit several equivalent optima.)
        let mut pulled_back = vec![0i64; pi_p.len()];
        for (c, &orig) in perm.iter().enumerate() {
            pulled_back[orig] = pi_p[c];
        }
        assert_eq!(objective(&pulled_back, alg.index_set.mu()), base_obj);
        let base_mapping =
            MappingMatrix::new(SpaceMap::row(s_row), LinearSchedule::new(&pulled_back));
        assert!(
            diagnose(alg, &base_mapping, None).is_valid(),
            "{} perm {perm:?}: pulled-back Π must solve the base problem",
            alg.name
        );
    }
}

#[test]
fn matmul_axis_permutations_share_key_and_schedule() {
    assert_invariant(&algorithms::matmul(4), &[1, 1, -1]);
}

#[test]
fn transitive_closure_axis_permutations_share_key_and_schedule() {
    assert_invariant(&algorithms::transitive_closure(4), &[0, 0, 1]);
}

#[test]
fn dependence_column_reorderings_share_key_and_schedule() {
    for alg in [algorithms::matmul(4), algorithms::transitive_closure(4)] {
        let space = SpaceMap::row(&[1, 1, -1]);
        let base_key = key(&alg, &space);
        let base_answer = solve_via_canon(&alg, &space);
        // Rotate and reverse the dependence columns: same set, new order.
        let cols = alg.deps.columns_i64();
        let mut variants: Vec<Vec<Vec<i64>>> = vec![cols.iter().rev().cloned().collect()];
        let mut rotated = cols.clone();
        rotated.rotate_left(1);
        variants.push(rotated);
        for variant in variants {
            let refs: Vec<&[i64]> = variant.iter().map(Vec::as_slice).collect();
            let alg_v = Uda::new(
                alg.name.clone(),
                alg.index_set.clone(),
                DependenceMatrix::from_columns(&refs),
            );
            assert_eq!(key(&alg_v, &space), base_key, "{}", alg.name);
            // Column order never touches the axes, so here the full
            // answer — presented AND canonical coordinates — is identical.
            assert_eq!(solve_via_canon(&alg_v, &space), base_answer, "{}", alg.name);
        }
    }
}

#[test]
fn space_row_presentation_does_not_change_the_key() {
    let alg = algorithms::matmul(4);
    let base = key(&alg, &SpaceMap::row(&[1, 1, -1]));
    for row in [[2i64, 2, -2], [-1, -1, 1], [-4, -4, 4]] {
        assert_eq!(key(&alg, &SpaceMap::row(&row)), base, "row {row:?}");
    }
}
