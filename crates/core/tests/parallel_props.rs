//! Testkit property: `Procedure51::solve_parallel(t)` is an exact
//! drop-in for `solve()` on generated 3-D problems for t ∈ {2, 4} —
//! identical certification, schedule, objective, and
//! `candidates_examined` (the deterministic tie-break the design cache
//! depends on). Telemetry is deliberately *not* compared: parallel
//! workers screen whole objective levels, so per-gate rejection counts
//! legitimately differ from the sequential early-exit order.

use cfmap_core::{Procedure51, SpaceMap};
use cfmap_model::UdaBuilder;
use cfmap_testkit::{gen, tk_assume};

const IDENTITY: [[i64; 3]; 3] = [[1, 0, 0], [0, 1, 0], [0, 0, 1]];

cfmap_testkit::props! {
    cases = 24;

    fn solve_parallel_is_a_drop_in_for_solve(
        mu in gen::vec(2i64..=3, 3),
        extra in gen::vec(-2i64..=2, 6),
        s_row in gen::vec(-1i64..=1, 3),
    ) {
        tk_assume!(s_row.iter().any(|&x| x != 0));
        let (a, b) = (&extra[..3], &extra[3..]);
        // The builder rejects zero and duplicate dependence columns.
        tk_assume!(a.iter().any(|&x| x != 0) && b.iter().any(|&x| x != 0));
        tk_assume!(a != b);
        tk_assume!(IDENTITY.iter().all(|e| e != a && e != b));

        // Identity dependence columns keep every generated problem
        // schedulable; the two generated columns vary the conflict
        // structure. (A negative column can still make the instance
        // infeasible — the equivalence must hold for that outcome too.)
        let alg = UdaBuilder::new("generated")
            .bounds(&mu)
            .deps(&[&IDENTITY[0], &IDENTITY[1], &IDENTITY[2], a, b])
            .build();
        let space = SpaceMap::row(&s_row);
        // A modest objective cap bounds the infeasible-instance sweep.
        let seq = Procedure51::new(&alg, &space).max_objective(12).solve().unwrap();
        for threads in [2usize, 4] {
            let par = Procedure51::new(&alg, &space)
                .max_objective(12)
                .solve_parallel(threads)
                .unwrap();
            assert_eq!(par.certification, seq.certification, "t={threads}");
            assert_eq!(par.candidates_examined, seq.candidates_examined, "t={threads}");
            match (&seq.mapping, &par.mapping) {
                (Some(s_m), Some(p_m)) => {
                    assert_eq!(p_m.objective, s_m.objective, "t={threads}");
                    assert_eq!(
                        p_m.schedule.as_slice(),
                        s_m.schedule.as_slice(),
                        "t={threads}: deterministic tie-break"
                    );
                    assert_eq!(p_m.candidates_examined, s_m.candidates_examined, "t={threads}");
                }
                (None, None) => {}
                _ => panic!("t={threads}: mapping presence diverged"),
            }
        }
    }
}
