//! Differential guarantees behind the symmetry quotient (ISSUE 8): on
//! every n ≤ 4 catalogue problem, `SymmetryMode::Quotient` under the
//! `TieBreak::LexMax` pin returns a bit-identical `OptimalMapping`
//! (schedule, objective, certification) to full enumeration, and the
//! sharded parallel path is bit-identical to both. The quotient's
//! soundness rests on orbit expansion — every skipped candidate is a
//! non-representative of an orbit whose representative is screened — so
//! the orbit structure itself is property-tested here too.

use cfmap_core::{
    stabilizer, HybridPolicy, Procedure51, SearchBudget, SolveRoute, SpaceMap, SymmetryMode,
    TieBreak,
};
use cfmap_model::{algorithms, Uda, UdaBuilder};
use cfmap_testkit::{gen, tk_assume};

/// Every catalogue problem with n ≤ 4 (plus the paper-default space map
/// used across the experiments) — the differential corpus.
fn catalogue() -> Vec<(Uda, SpaceMap, &'static str)> {
    vec![
        (algorithms::matmul(3), SpaceMap::row(&[1, 1, -1]), "matmul μ=3"),
        (algorithms::matmul(4), SpaceMap::row(&[1, 1, -1]), "matmul μ=4"),
        (algorithms::transitive_closure(4), SpaceMap::row(&[0, 0, 1]), "tc μ=4"),
        (algorithms::lu_decomposition(4), SpaceMap::row(&[1, 1, -1]), "lu μ=4"),
        (algorithms::sor(3, 3), SpaceMap::row(&[0, 1]), "sor 3×3"),
        (algorithms::matvec(3, 3), SpaceMap::row(&[1, 0]), "matvec 3×3"),
        (algorithms::convolution(5, 3), SpaceMap::row(&[1, 0]), "conv 5/3"),
        (
            algorithms::identity_cube(3, 2),
            SpaceMap::row(&[1, 0, 0]),
            "identity n=3 μ=2",
        ),
        (
            algorithms::identity_cube(4, 2),
            SpaceMap::row(&[1, 0, 0, 0]),
            "identity n=4 μ=2",
        ),
    ]
}

/// Tentpole acceptance: quotiented enumeration is bit-identical to full
/// enumeration under LexMax on every n ≤ 4 catalogue problem, and the
/// sharded parallel solver is bit-identical to both.
#[test]
fn quotient_is_bit_identical_to_full_enumeration_on_catalogue() {
    for (alg, space, name) in catalogue() {
        let full = Procedure51::new(&alg, &space)
            .tie_break(TieBreak::LexMax)
            .solve()
            .unwrap();
        let quot = Procedure51::new(&alg, &space)
            .tie_break(TieBreak::LexMax)
            .symmetry(SymmetryMode::Quotient)
            .solve()
            .unwrap();
        assert_eq!(quot.certification, full.certification, "{name}");
        assert_eq!(quot.route, full.route, "{name}");
        match (&full.mapping, &quot.mapping) {
            (Some(f), Some(q)) => {
                assert_eq!(q.objective, f.objective, "{name}");
                assert_eq!(
                    q.schedule.as_slice(),
                    f.schedule.as_slice(),
                    "{name}: LexMax winner must be an orbit representative"
                );
            }
            (None, None) => {}
            _ => panic!("{name}: mapping presence diverged"),
        }
        for threads in [2usize, 4] {
            let par = Procedure51::new(&alg, &space)
                .tie_break(TieBreak::LexMax)
                .symmetry(SymmetryMode::Quotient)
                .solve_parallel(threads)
                .unwrap();
            assert_eq!(par.certification, quot.certification, "{name} t={threads}");
            assert_eq!(
                par.candidates_examined, quot.candidates_examined,
                "{name} t={threads}"
            );
            match (&quot.mapping, &par.mapping) {
                (Some(q), Some(p)) => {
                    assert_eq!(p.objective, q.objective, "{name} t={threads}");
                    assert_eq!(p.schedule.as_slice(), q.schedule.as_slice(), "{name} t={threads}");
                }
                (None, None) => {}
                _ => panic!("{name} t={threads}: mapping presence diverged"),
            }
        }
    }
}

/// Orbit expansion, tested directly: within any stabilizer orbit of any
/// candidate, exactly one element is the representative, every orbit
/// element has the same objective, and orbits are closed (applying any
/// group element lands inside the orbit). Together these prove the
/// quotient skips only candidates dominated by a screened representative.
#[test]
fn orbits_partition_candidates_with_one_representative_each() {
    let alg = algorithms::identity_cube(4, 2);
    let space = SpaceMap::row(&[1, 0, 0, 0]);
    let stab = stabilizer(&alg, &space);
    // Axes 1..3 are interchangeable (equal μ, identity dep columns, zero
    // space-row entries); axis 0 is pinned by the space row: |S_3| = 6.
    assert_eq!(stab.order(), 6);
    let mu = alg.index_set.mu();
    let objective =
        |pi: &[i64]| pi.iter().zip(mu).map(|(&p, &m)| p.abs() * m).sum::<i64>();
    // Exhaustive small box.
    let mut seen = std::collections::BTreeSet::new();
    for a in -2i64..=2 {
        for b in -2i64..=2 {
            for c in -2i64..=2 {
                for d in -2i64..=2 {
                    let pi = vec![a, b, c, d];
                    if seen.contains(&pi) {
                        continue;
                    }
                    let orbit = stab.orbit(&pi);
                    let reps: Vec<_> =
                        orbit.iter().filter(|p| stab.is_representative(p)).collect();
                    assert_eq!(reps.len(), 1, "orbit of {pi:?} has {} reps", reps.len());
                    assert_eq!(*reps[0], *orbit.first().unwrap(), "rep is the lex-max element");
                    for p in &orbit {
                        assert_eq!(objective(p), objective(&pi), "objective is orbit-invariant");
                        assert_eq!(stab.orbit(p), orbit, "orbits are closed");
                        seen.insert(p.clone());
                    }
                }
            }
        }
    }
}

/// The quotient factor is real: the representative count below the
/// optimum is strictly smaller than the full count, and the pruned
/// difference is what `orbits_pruned` telemetry reports.
#[test]
fn quotient_prunes_and_accounts_for_orbits() {
    let alg = algorithms::identity_cube(4, 2);
    let space = SpaceMap::row(&[1, 0, 0, 0]);
    let quot = Procedure51::new(&alg, &space)
        .tie_break(TieBreak::LexMax)
        .symmetry(SymmetryMode::Quotient)
        .solve()
        .unwrap();
    let proc = Procedure51::new(&alg, &space);
    let opt = quot.mapping.as_ref().expect("identity n=4 is solvable");
    let full = proc.count_candidates(opt.objective);
    let reps = proc.count_candidates_quotiented(opt.objective);
    assert!(reps < full, "quotient must shrink the space: {reps} vs {full}");
    assert_eq!(
        quot.telemetry.orbits_pruned,
        full - reps,
        "orbit accounting must match the counted difference"
    );
    assert!(quot.telemetry.orbits_pruned > 0);
}

/// Acceptance criterion: identity n=5 (μ=2) — the instance E9 records as
/// "gives up entirely" — now returns Optimal under the default
/// `SearchBudget` via quotient + adaptive cap extension, without ever
/// taking the ILP route (a 1-row space map is not ILP-decomposable).
#[test]
fn identity_n5_solves_under_default_budget() {
    let alg = algorithms::identity_cube(5, 2);
    let space = SpaceMap::row(&[1, 0, 0, 0, 0]);
    assert_eq!(stabilizer(&alg, &space).order(), 24, "S_4 on the unpinned axes");
    let out = Procedure51::new(&alg, &space)
        .tie_break(TieBreak::LexMax)
        .symmetry(SymmetryMode::Quotient)
        .hybrid(HybridPolicy::default())
        .budget(SearchBudget::unlimited())
        .solve()
        .unwrap();
    assert_eq!(out.route, SolveRoute::Enumeration, "1-row S is not ILP-decomposable");
    let opt = out.expect_optimal("identity n=5 must now solve");
    // The optimum needs schedule entries far beyond the default cap
    // Σ μ(μ+3) = 50 — the adaptive extension is what reaches it.
    assert!(opt.objective > 50, "objective {} should exceed the static cap", opt.objective);
    assert!(
        cfmap_core::oracle::is_conflict_free_by_enumeration(&opt.mapping, &alg.index_set),
        "exact certificate must hold"
    );
}

cfmap_testkit::props! {
    cases = 24;

    /// Randomized differential: quotient ≡ full on generated 3-D
    /// problems (mostly trivial stabilizers, some symmetric — both
    /// paths must agree either way), mirroring the `parallel_props`
    /// corpus.
    fn quotient_matches_full_on_generated_problems(
        mu in gen::vec(2i64..=3, 3),
        extra in gen::vec(-2i64..=2, 6),
        s_row in gen::vec(-1i64..=1, 3),
    ) {
        tk_assume!(s_row.iter().any(|&x| x != 0));
        let (a, b) = (&extra[..3], &extra[3..]);
        tk_assume!(a.iter().any(|&x| x != 0) && b.iter().any(|&x| x != 0));
        tk_assume!(a != b);
        let identity: [[i64; 3]; 3] = [[1, 0, 0], [0, 1, 0], [0, 0, 1]];
        tk_assume!(identity.iter().all(|e| e != a && e != b));
        let alg = UdaBuilder::new("generated")
            .bounds(&mu)
            .deps(&[&identity[0], &identity[1], &identity[2], a, b])
            .build();
        let space = SpaceMap::row(&s_row);
        let full = Procedure51::new(&alg, &space)
            .tie_break(TieBreak::LexMax)
            .max_objective(12)
            .solve()
            .unwrap();
        let quot = Procedure51::new(&alg, &space)
            .tie_break(TieBreak::LexMax)
            .symmetry(SymmetryMode::Quotient)
            .max_objective(12)
            .solve()
            .unwrap();
        assert_eq!(quot.certification, full.certification);
        match (&full.mapping, &quot.mapping) {
            (Some(f), Some(q)) => {
                assert_eq!(q.objective, f.objective);
                assert_eq!(q.schedule.as_slice(), f.schedule.as_slice());
            }
            (None, None) => {}
            _ => panic!("mapping presence diverged"),
        }
    }
}

/// Hybrid escalation: with an absurdly low candidate horizon, matmul
/// escalates to the ILP route, returns the same optimal objective, and
/// tags the outcome `SolveRoute::HybridIlp` so downstream consumers
/// (family fitter, cache) can tell it apart.
#[test]
fn hybrid_escalates_matmul_to_ilp_at_tiny_horizon() {
    let alg = algorithms::matmul(3);
    let space = SpaceMap::row(&[1, 1, -1]);
    let enumerated = Procedure51::new(&alg, &space)
        .tie_break(TieBreak::LexMax)
        .solve()
        .unwrap();
    let expected = enumerated.expect_optimal("matmul solvable").objective;
    let hybrid = Procedure51::new(&alg, &space)
        .tie_break(TieBreak::LexMax)
        .hybrid(HybridPolicy { candidate_horizon: 1, min_levels: 1 })
        .solve()
        .unwrap();
    assert_eq!(hybrid.route, SolveRoute::HybridIlp, "tiny horizon must trip escalation");
    let opt = hybrid.expect_optimal("ILP route proves the same optimum");
    assert_eq!(opt.objective, expected, "ILP optimum must equal the enumerative optimum");
    assert!(cfmap_core::oracle::is_conflict_free_by_enumeration(&opt.mapping, &alg.index_set));
}

/// Hybrid applicability guard: a problem outside the ILP decomposition's
/// shape (k ≠ n − 1) never escalates, even at horizon 1 — it keeps
/// enumerating and still reports the enumeration route.
#[test]
fn hybrid_never_escalates_outside_ilp_shape() {
    let alg = algorithms::identity_cube(4, 2);
    let space = SpaceMap::row(&[1, 0, 0, 0]); // array_dims 1, n 4: not k = n−1
    let out = Procedure51::new(&alg, &space)
        .tie_break(TieBreak::LexMax)
        .symmetry(SymmetryMode::Quotient)
        .hybrid(HybridPolicy { candidate_horizon: 1, min_levels: 1 })
        .solve()
        .unwrap();
    assert_eq!(out.route, SolveRoute::Enumeration);
    out.expect_optimal("still solved by enumeration");
}

/// `degrade()` regression (satellite): the BestEffort fallback must obey
/// the configured tie-break. Under LexMax it returns the lex-greatest of
/// the minimal-objective fallback variants — deterministically, at any
/// repetition — and FirstFound keeps its historical first-variant pick,
/// so the fallback can no longer hand LexMax callers a FirstFound-shaped
/// representative.
#[test]
fn degrade_respects_the_tie_break() {
    let alg = algorithms::matmul(3);
    let space = SpaceMap::row(&[1, 1, -1]);
    let budget = SearchBudget::unlimited().with_candidates(2);
    let lex1 = Procedure51::new(&alg, &space)
        .tie_break(TieBreak::LexMax)
        .budget(budget)
        .solve()
        .unwrap();
    let lex2 = Procedure51::new(&alg, &space)
        .tie_break(TieBreak::LexMax)
        .budget(budget)
        .solve()
        .unwrap();
    let first = Procedure51::new(&alg, &space)
        .tie_break(TieBreak::FirstFound)
        .budget(budget)
        .solve()
        .unwrap();
    let l1 = lex1.mapping.as_ref().expect("fallback finds a mapping");
    let l2 = lex2.mapping.as_ref().expect("fallback finds a mapping");
    let ff = first.mapping.as_ref().expect("fallback finds a mapping");
    assert_eq!(l1.schedule.as_slice(), l2.schedule.as_slice(), "deterministic");
    assert_eq!(l1.objective, ff.objective, "same minimal fallback objective");
    assert!(
        l1.schedule.as_slice() >= ff.schedule.as_slice(),
        "LexMax fallback {:?} must be lex-≥ FirstFound's {:?}",
        l1.schedule.as_slice(),
        ff.schedule.as_slice()
    );
}

/// Calibration printer for the E15 table (run with
/// `cargo test -p cfmap-core --release -- --ignored calibration --nocapture`).
#[test]
#[ignore = "manual calibration helper, not a gate"]
fn calibration_print() {
    for n in [3usize, 4, 5] {
        let alg = algorithms::identity_cube(n, 2);
        let s_row: Vec<i64> = (0..n).map(|i| i64::from(i == 0)).collect();
        let space = SpaceMap::row(&s_row);
        let out = Procedure51::new(&alg, &space)
            .tie_break(TieBreak::LexMax)
            .symmetry(SymmetryMode::Quotient)
            .solve()
            .unwrap();
        let opt = out.mapping.as_ref().expect("solvable");
        let proc = Procedure51::new(&alg, &space);
        eprintln!(
            "identity n={n}: objective={} schedule={:?} examined={} full={} quotiented={} pruned={}",
            opt.objective,
            opt.schedule.as_slice(),
            out.candidates_examined,
            proc.count_candidates(opt.objective),
            proc.count_candidates_quotiented(opt.objective),
            out.telemetry.orbits_pruned,
        );
    }
    let alg = algorithms::matmul(3);
    let space = SpaceMap::row(&[1, 1, -1]);
    let budget = SearchBudget::unlimited().with_candidates(2);
    for tb in [TieBreak::LexMax, TieBreak::FirstFound] {
        let out = Procedure51::new(&alg, &space).tie_break(tb).budget(budget).solve().unwrap();
        let m = out.mapping.as_ref().unwrap();
        eprintln!("degrade {tb:?}: objective={} schedule={:?}", m.objective, m.schedule.as_slice());
    }
}
