//! Golden canonical keys.
//!
//! The design cache, the router's consistent-hash placement, and the
//! warm-start snapshot format all key on [`CanonicalProblem`] — so the
//! canonicalization's *observable output* is a compatibility surface,
//! not an implementation detail. These tests pin the exact canonical
//! forms of the two paper workloads plus [`canon_fingerprint`], the
//! digest stamped into every snapshot header.
//!
//! If a change to the canonicalizer breaks one of these assertions, it
//! invalidates every snapshot in the fleet. That can be the right call —
//! but it must be deliberate: update the goldens *and* bump the snapshot
//! story (the digest change already makes old snapshots refuse to load
//! with a precise `SnapshotMismatch`, which is the designed failure
//! mode), and say so in the changelog.

use cfmap_core::{canon_fingerprint, canonicalize, SpaceMap};
use cfmap_model::algorithms;

#[test]
fn matmul_canonical_key_is_pinned() {
    let alg = algorithms::matmul(3);
    let p = canonicalize(&alg, &SpaceMap::row(&[1, 1, -1])).problem;
    assert_eq!(p.mu, vec![3, 3, 3]);
    assert_eq!(p.deps, vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 0, 0]]);
    assert_eq!(p.space, vec![vec![1, -1, -1]]);
}

#[test]
fn transitive_closure_canonical_key_is_pinned() {
    let alg = algorithms::transitive_closure(3);
    let p = canonicalize(&alg, &SpaceMap::row(&[0, 0, 1])).problem;
    assert_eq!(p.mu, vec![3, 3, 3]);
    assert_eq!(
        p.deps,
        vec![vec![-1, -1, 1], vec![-1, 0, 1], vec![0, -1, 1], vec![0, 1, 0], vec![1, 0, 0]]
    );
    assert_eq!(p.space, vec![vec![0, 1, 0]]);
}

#[test]
fn canonicalization_fingerprint_is_pinned() {
    // The digest in every snapshot header. A mismatch here means every
    // deployed warm-start snapshot will (correctly) refuse to load.
    assert_eq!(canon_fingerprint(), 0x2ca9361de8547b65);
}

#[test]
fn permuted_presentations_share_the_golden_key() {
    // The golden key is reached from *any* presentation — that is the
    // property that makes it a fleet-wide cache identity.
    let base = canonicalize(&algorithms::matmul(3), &SpaceMap::row(&[1, 1, -1])).problem;
    let alg = algorithms::matmul(3).permuted_axes(&[2, 0, 1]);
    let p = canonicalize(&alg, &SpaceMap::row(&[-1, 1, 1])).problem;
    assert_eq!(p, base);
}
