//! The family-certificate contract, checked against the ground truth:
//! for every size μ in the fitted range ∪ the probe set (and beyond),
//! instantiating the affine-in-μ template must be **bit-identical** to
//! running Procedure 5.1 from scratch at that size — same schedule, same
//! objective, same total time. Anything weaker would let a warm-started
//! daemon answer differently from a cold one, which is the one thing a
//! memoizing service must never do.
//!
//! Families covered: matmul (Example 5.1), transitive closure, and the
//! bit-level convolution family of the paper's Section 6 experiments
//! (4-dimensional, 2-dimensional array — exercising the r = 1 adjugate
//! path on a wider template than the 3-D workloads). A synthetic family
//! whose true schedule grows quadratically checks the negative side:
//! the fitter must refuse to certify it rather than extrapolate wrongly.

use cfmap_core::family::{
    certify, cold_solve, instantiate, CertifyError, FamilyInstance, FamilyKey,
};
use cfmap_core::{canonicalize, SpaceMap};
use cfmap_model::{algorithms, Uda};

/// The family key of `alg` under `space`, via the same canonicalization
/// the service cache uses.
fn family_of(alg: &Uda, space: &SpaceMap) -> (FamilyKey, i64) {
    FamilyKey::of(&canonicalize(alg, space).problem)
}

/// Fit on `fitted`, certify, then demand bit-identity with a fresh
/// Procedure 5.1 solve at every fitted size, every probe size, and every
/// extrapolation size in `beyond`.
fn assert_family_matches_cold_solves(key: &FamilyKey, fitted: &[i64], beyond: &[i64]) {
    let instances: Vec<FamilyInstance> = fitted
        .iter()
        .map(|&p| cold_solve(key, p).expect("search runs").expect("family is feasible"))
        .collect();
    let cert = certify(key, &instances).expect("family certifies");
    assert_eq!(cert.fitted, fitted, "certificate records the fitted sizes");
    let mut sizes: Vec<i64> = fitted.to_vec();
    sizes.extend_from_slice(&cert.probes);
    sizes.extend_from_slice(beyond);
    for p in sizes {
        let cold = cold_solve(key, p).expect("search runs").expect("feasible at this size");
        let inst = instantiate(&cert, &key.problem_at(p))
            .unwrap_or_else(|| panic!("certificate must cover μ-parameter {p}"));
        assert_eq!(inst.schedule, cold.schedule, "schedule differs at parameter {p}");
        assert_eq!(inst.objective, cold.objective, "objective differs at parameter {p}");
        assert_eq!(inst.total_time, cold.total_time, "total time differs at parameter {p}");
    }
}

#[test]
fn matmul_instantiation_is_bit_identical_to_cold_solves() {
    let (key, _) = family_of(&algorithms::matmul(3), &SpaceMap::row(&[1, 1, -1]));
    assert_family_matches_cold_solves(&key, &[2, 3, 4], &[9, 17]);
}

#[test]
fn transitive_closure_instantiation_is_bit_identical_to_cold_solves() {
    let (key, _) = family_of(&algorithms::transitive_closure(3), &SpaceMap::row(&[0, 0, 1]));
    assert_family_matches_cold_solves(&key, &[2, 3, 4], &[9]);
}

#[test]
fn bitlevel_convolution_instantiation_is_bit_identical_to_cold_solves() {
    // The Section 6 bit-level family: 4 axes, a 2-dimensional array, and
    // μ entering two of the four template coordinates.
    let alg = algorithms::bitlevel_convolution(2, 3);
    let space = SpaceMap::from_rows(&[&[1, 0, 0, 0][..], &[0, 1, 0, 0][..]]);
    let (key, _) = family_of(&alg, &space);
    assert_family_matches_cold_solves(&key, &[3, 4, 5], &[]);
}

#[test]
fn quadratic_family_refuses_to_certify() {
    // True schedules that grow like (p+1)² have no affine-in-μ template.
    // Extrapolating one linearly would produce wrong answers at every
    // unfitted size — the only safe behavior is refusal.
    let key = FamilyKey {
        deps: vec![vec![1, 0], vec![0, 1]],
        space: vec![vec![1, 0]],
        shape: vec![None, None],
    };
    let instances: Vec<FamilyInstance> = [2i64, 3, 4, 5]
        .iter()
        .map(|&p| FamilyInstance {
            param: p,
            schedule: vec![(p + 1) * (p + 1), 1],
            objective: p * (p + 1) * (p + 1) + p,
            total_time: p * (p + 1) * (p + 1) + p + 1,
        })
        .collect();
    let err = certify(&key, &instances).expect_err("quadratic data must not certify");
    assert!(matches!(err, CertifyError::NonAffine { .. }), "{err:?}");
    assert_eq!(err.outcome_label(), "rejected_nonaffine");
}
