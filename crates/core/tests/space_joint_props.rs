//! Differential guarantees behind the unified screening core (ISSUE 9):
//! the fast routes ported from Procedure 5.1 into `SpaceSearch` and
//! `JointSearch` — the kernel-lattice conflict memo, the symmetry
//! quotient under the `TieBreak::LexMax` pin, and the sharded parallel
//! enumeration — must all be bit-identical to the plain sequential
//! search. "Bit-identical" means: same design (space map / schedule),
//! same cost/score, same certification, and — where the convention of
//! `quotient_props.rs` requires it — the same `candidates_examined`:
//! memo on/off and quotient-sequential vs quotient-parallel compare
//! examined counts too; full-vs-quotient does not (the quotient screens
//! fewer candidates by design).

use cfmap_core::{
    find_valid_schedule, is_schedulable, JointCriterion, JointOptimal, JointSearch,
    SearchOutcome, SpaceOptimalMapping, SpaceSearch, SymmetryMode, TieBreak,
};
use cfmap_model::{algorithms, LinearSchedule, Uda, UdaBuilder};
use cfmap_testkit::{gen, tk_assume};

/// The n ≤ 4 catalogue with a fixed valid schedule per problem — the
/// `SpaceSearch` differential corpus. Schedules are the paper's designs
/// where one exists, otherwise the LP witness.
fn space_catalogue() -> Vec<(Uda, LinearSchedule, &'static str)> {
    let mut out = vec![
        (algorithms::matmul(3), LinearSchedule::new(&[1, 3, 1]), "matmul μ=3"),
        (algorithms::matmul(4), LinearSchedule::new(&[1, 4, 1]), "matmul μ=4"),
        (algorithms::transitive_closure(4), LinearSchedule::new(&[5, 1, 1]), "tc μ=4"),
        (algorithms::sor(3, 3), LinearSchedule::new(&[2, 1]), "sor 3×3"),
        (algorithms::matvec(3, 3), LinearSchedule::new(&[1, 1]), "matvec 3×3"),
        (algorithms::convolution(5, 3), LinearSchedule::new(&[1, 1]), "conv 5/3"),
        (algorithms::identity_cube(3, 2), LinearSchedule::new(&[1, 1, 1]), "identity n=3"),
        (algorithms::identity_cube(4, 2), LinearSchedule::new(&[1, 1, 1, 1]), "identity n=4"),
    ];
    let lu = algorithms::lu_decomposition(4);
    let pi = find_valid_schedule(&lu).expect("lu μ=4 is schedulable");
    out.push((lu, pi, "lu μ=4"));
    for (alg, pi, name) in &out {
        assert!(pi.is_valid_for(&alg.deps), "{name}: catalogue schedule must be valid");
    }
    out
}

/// The `JointSearch` corpus: problems small enough for the full outer ×
/// inner product in debug builds, each with an objective cap that still
/// contains its optimum.
fn joint_catalogue() -> Vec<(Uda, i64, &'static str)> {
    vec![
        (algorithms::matmul(3), 25, "matmul μ=3"),
        (algorithms::transitive_closure(3), 19, "tc μ=3"),
        (algorithms::sor(3, 3), 15, "sor 3×3"),
        (algorithms::matvec(3, 3), 15, "matvec 3×3"),
        (algorithms::convolution(5, 3), 15, "conv 5/3"),
    ]
}

fn assert_space_eq(
    a: &SearchOutcome<SpaceOptimalMapping>,
    b: &SearchOutcome<SpaceOptimalMapping>,
    examined_too: bool,
    ctx: &str,
) {
    assert_eq!(a.certification, b.certification, "{ctx}: certification");
    if examined_too {
        assert_eq!(a.candidates_examined, b.candidates_examined, "{ctx}: examined");
    }
    match (&a.mapping, &b.mapping) {
        (Some(x), Some(y)) => {
            assert_eq!(x.space, y.space, "{ctx}: space map");
            assert_eq!(x.cost, y.cost, "{ctx}: cost");
            assert_eq!(x.processors, y.processors, "{ctx}: processors");
            assert_eq!(x.wire_length, y.wire_length, "{ctx}: wires");
        }
        (None, None) => {}
        _ => panic!("{ctx}: mapping presence diverged"),
    }
}

fn assert_joint_eq(
    a: &SearchOutcome<JointOptimal>,
    b: &SearchOutcome<JointOptimal>,
    examined_too: bool,
    ctx: &str,
) {
    assert_eq!(a.certification, b.certification, "{ctx}: certification");
    if examined_too {
        assert_eq!(a.candidates_examined, b.candidates_examined, "{ctx}: examined");
    }
    match (&a.mapping, &b.mapping) {
        (Some(x), Some(y)) => {
            assert_eq!(x.space, y.space, "{ctx}: space map");
            assert_eq!(x.schedule, y.schedule, "{ctx}: schedule");
            assert_eq!(x.total_time, y.total_time, "{ctx}: time");
            assert_eq!(x.space_cost, y.space_cost, "{ctx}: space cost");
            if examined_too {
                assert_eq!(x.space_maps_tried, y.space_maps_tried, "{ctx}: maps tried");
            }
        }
        (None, None) => {}
        _ => panic!("{ctx}: mapping presence diverged"),
    }
}

/// Satellite acceptance (memo): disabling the kernel-lattice conflict
/// memo changes nothing observable under either tie-break, on every
/// catalogue problem — the memo is a pure cache, never a semantic knob.
#[test]
fn space_search_memo_off_is_bit_identical_on_catalogue() {
    for (alg, pi, name) in space_catalogue() {
        for tb in [TieBreak::FirstFound, TieBreak::LexMax] {
            let on = SpaceSearch::new(&alg, &pi).tie_break(tb).solve().unwrap();
            let off = SpaceSearch::new(&alg, &pi).tie_break(tb).memo(false).solve().unwrap();
            assert_space_eq(&on, &off, true, &format!("{name} {tb:?} memo on/off"));
        }
    }
}

#[test]
fn joint_search_memo_off_is_bit_identical_on_catalogue() {
    for (alg, cap, name) in joint_catalogue() {
        for tb in [TieBreak::FirstFound, TieBreak::LexMax] {
            let on =
                JointSearch::new(&alg).tie_break(tb).max_objective(cap).solve().unwrap();
            let off = JointSearch::new(&alg)
                .tie_break(tb)
                .max_objective(cap)
                .memo(false)
                .solve()
                .unwrap();
            assert_joint_eq(&on, &off, true, &format!("{name} {tb:?} memo on/off"));
        }
    }
}

/// Tentpole acceptance (quotient + shards): quotiented enumeration under
/// the LexMax pin matches full enumeration on the design, and the
/// sharded parallel solver is bit-identical to the quotiented sequential
/// one — including `candidates_examined`.
#[test]
fn space_search_quotient_and_shards_match_sequential_on_catalogue() {
    for (alg, pi, name) in space_catalogue() {
        let full =
            SpaceSearch::new(&alg, &pi).tie_break(TieBreak::LexMax).solve().unwrap();
        let quot = SpaceSearch::new(&alg, &pi)
            .tie_break(TieBreak::LexMax)
            .symmetry(SymmetryMode::Quotient)
            .solve()
            .unwrap();
        assert_space_eq(&full, &quot, false, &format!("{name} full vs quotient"));
        for threads in [2usize, 4] {
            let par = SpaceSearch::new(&alg, &pi)
                .tie_break(TieBreak::LexMax)
                .symmetry(SymmetryMode::Quotient)
                .solve_parallel(threads)
                .unwrap();
            assert_space_eq(&quot, &par, true, &format!("{name} t={threads}"));
        }
    }
}

#[test]
fn joint_search_quotient_and_shards_match_sequential_on_catalogue() {
    for (alg, cap, name) in joint_catalogue() {
        for criterion in [JointCriterion::TimeThenSpace, JointCriterion::SpaceThenTime] {
            let full = JointSearch::new(&alg)
                .criterion(criterion)
                .tie_break(TieBreak::LexMax)
                .max_objective(cap)
                .solve()
                .unwrap();
            let quot = JointSearch::new(&alg)
                .criterion(criterion)
                .tie_break(TieBreak::LexMax)
                .symmetry(SymmetryMode::Quotient)
                .max_objective(cap)
                .solve()
                .unwrap();
            assert_joint_eq(&full, &quot, false, &format!("{name} {criterion:?} quotient"));
            for threads in [2usize, 4] {
                let par = JointSearch::new(&alg)
                    .criterion(criterion)
                    .tie_break(TieBreak::LexMax)
                    .symmetry(SymmetryMode::Quotient)
                    .max_objective(cap)
                    .solve_parallel(threads)
                    .unwrap();
                assert_joint_eq(&quot, &par, true, &format!("{name} {criterion:?} t={threads}"));
            }
        }
    }
}

/// The parallel path must also replay the sequential `FirstFound`
/// semantics exactly — the replay logic, not the LexMax pin, is what
/// guarantees it (the quotient is inactive under FirstFound).
#[test]
fn parallel_matches_sequential_firstfound_on_catalogue() {
    for (alg, pi, name) in space_catalogue() {
        let seq = SpaceSearch::new(&alg, &pi).solve().unwrap();
        let par = SpaceSearch::new(&alg, &pi).solve_parallel(3).unwrap();
        assert_space_eq(&seq, &par, true, &format!("{name} space ff t=3"));
    }
    for (alg, cap, name) in joint_catalogue() {
        let seq = JointSearch::new(&alg).max_objective(cap).solve().unwrap();
        let par = JointSearch::new(&alg).max_objective(cap).solve_parallel(3).unwrap();
        assert_joint_eq(&seq, &par, true, &format!("{name} joint ff t=3"));
    }
}

/// Exact-route memo accounting: on an exact search every condition
/// dispatch is answered by the memo (hit or miss) — the telemetry
/// invariant the /metrics gauges are built on.
#[test]
fn memo_accounts_for_every_exact_dispatch() {
    let alg = algorithms::matmul(4);
    let pi = LinearSchedule::new(&[1, 4, 1]);
    let out = SpaceSearch::new(&alg, &pi).solve().unwrap();
    let t = &out.telemetry;
    assert_eq!(t.memo_hits + t.memo_misses, t.condition_hits.exact);
    let off = SpaceSearch::new(&alg, &pi).memo(false).solve().unwrap();
    assert_eq!(off.telemetry.memo_hits, 0);
    assert_eq!(off.telemetry.memo_misses, 0);
}

cfmap_testkit::props! {
    cases = 12;

    /// Randomized differential, mirroring `quotient_props`: on generated
    /// 3-D problems (identity deps plus two extra columns — mostly
    /// trivial stabilizers, some symmetric), every fast route agrees
    /// with the plain sequential search for both searches.
    fn fast_routes_match_on_generated_problems(
        mu in gen::vec(2i64..=3, 3),
        extra in gen::vec(-2i64..=2, 6),
    ) {
        let (a, b) = (&extra[..3], &extra[3..]);
        tk_assume!(a.iter().any(|&x| x != 0) && b.iter().any(|&x| x != 0));
        tk_assume!(a != b);
        let identity: [[i64; 3]; 3] = [[1, 0, 0], [0, 1, 0], [0, 0, 1]];
        tk_assume!(identity.iter().all(|e| e != a && e != b));
        let alg = UdaBuilder::new("generated")
            .bounds(&mu)
            .deps(&[&identity[0], &identity[1], &identity[2], a, b])
            .build();
        tk_assume!(is_schedulable(&alg));
        let pi = find_valid_schedule(&alg).unwrap();
        for tb in [TieBreak::FirstFound, TieBreak::LexMax] {
            let on = SpaceSearch::new(&alg, &pi).tie_break(tb).solve().unwrap();
            let off = SpaceSearch::new(&alg, &pi).tie_break(tb).memo(false).solve().unwrap();
            assert_space_eq(&on, &off, true, "generated memo");
        }
        let full = SpaceSearch::new(&alg, &pi).tie_break(TieBreak::LexMax).solve().unwrap();
        let quot = SpaceSearch::new(&alg, &pi)
            .tie_break(TieBreak::LexMax)
            .symmetry(SymmetryMode::Quotient)
            .solve()
            .unwrap();
        assert_space_eq(&full, &quot, false, "generated quotient");
        let par = SpaceSearch::new(&alg, &pi)
            .tie_break(TieBreak::LexMax)
            .symmetry(SymmetryMode::Quotient)
            .solve_parallel(3)
            .unwrap();
        assert_space_eq(&quot, &par, true, "generated parallel");

        let jfull = JointSearch::new(&alg)
            .tie_break(TieBreak::LexMax)
            .max_objective(12)
            .solve()
            .unwrap();
        let jquot = JointSearch::new(&alg)
            .tie_break(TieBreak::LexMax)
            .symmetry(SymmetryMode::Quotient)
            .max_objective(12)
            .solve()
            .unwrap();
        assert_joint_eq(&jfull, &jquot, false, "generated joint quotient");
        let jpar = JointSearch::new(&alg)
            .tie_break(TieBreak::LexMax)
            .symmetry(SymmetryMode::Quotient)
            .max_objective(12)
            .solve_parallel(3)
            .unwrap();
        assert_joint_eq(&jquot, &jpar, true, "generated joint parallel");
        let joff = JointSearch::new(&alg)
            .tie_break(TieBreak::LexMax)
            .max_objective(12)
            .memo(false)
            .solve()
            .unwrap();
        assert_joint_eq(&jfull, &joff, true, "generated joint memo");
    }
}
