//! Conflict vectors and their feasibility (Definition 2.3, Theorem 2.2,
//! Equation 3.2 / Theorem 3.1).
//!
//! A *conflict vector* of `T` is a primitive integral `γ ≠ 0` with
//! `Tγ = 0`. It is *feasible* iff no two points of the index set differ by
//! it; for constant-bounded index sets Theorem 2.2 reduces this to
//! `∃ i: |γ_i| > μ_i`. `T` is *conflict-free* iff **all** its conflict
//! vectors are feasible — equivalently (this module's
//! [`ConflictAnalysis::is_conflict_free_exact`]) iff the integer kernel
//! lattice of `T` contains no nonzero point of the box `[−μ, μ]^n`.

use crate::error::CfmapError;
use crate::mapping::MappingMatrix;
use cfmap_intlin::{Hnf, IMat, IVec, Int, Rat};
use cfmap_model::IndexSet;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{LazyLock, Mutex};

/// Outcome of one kernel-lattice memo probe
/// ([`ConflictAnalysis::is_conflict_free_exact_memoized`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemoProbe {
    /// The verdict was answered from the memo without enumerating.
    Hit,
    /// The verdict was computed and recorded for future candidates.
    Miss,
    /// The memo was bypassed: trivial (rank-`n`) kernel, or the canonical
    /// key overflowed `i64` and the verdict was computed directly.
    Bypass,
}

/// Shard count for the process-wide conflict memo. Keys are spread by
/// hash so concurrent search workers rarely contend on one lock.
const MEMO_SHARD_COUNT: usize = 16;

/// Per-shard entry cap. A full shard is cleared rather than evicted —
/// the memo caches deterministic facts, so dropping it only costs
/// recomputation, and clearing keeps the bookkeeping allocation-free.
const MEMO_SHARD_CAP: usize = 8192;

/// Process-wide memo of exact conflict-freedom verdicts keyed on the
/// canonical (Hermite) basis of the saturated kernel lattice plus the
/// index-set box. Distinct mapping matrices with the same rational row
/// space share a kernel lattice and therefore a verdict — e.g. `[S; Π]`
/// vs `[Π; S]`, or `Π` vs `Π + αS` under a fixed `S` — so collisions
/// are common in Problem 6.1/6.2 sweeps.
type MemoShard = Mutex<HashMap<Vec<i64>, bool>>;

static CONFLICT_MEMO: LazyLock<Vec<MemoShard>> = LazyLock::new(|| {
    (0..MEMO_SHARD_COUNT).map(|_| Mutex::new(HashMap::new())).collect()
});

fn memo_shard(key: &[i64]) -> &'static MemoShard {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    &CONFLICT_MEMO[(h.finish() as usize) % MEMO_SHARD_COUNT]
}

/// In-place row-style Hermite normalization of `rows` (full reduction:
/// positive pivots, entries above each pivot reduced into `[0, pivot)`),
/// over checked `i64`. Returns `None` on overflow — callers fall back to
/// the direct verdict. The result is the unique canonical basis of the
/// row lattice, so two inputs generate the same lattice iff their
/// normalized forms are equal.
fn row_hnf_i64(rows: &mut [Vec<i64>]) -> Option<()> {
    let nrows = rows.len();
    if nrows == 0 {
        return Some(());
    }
    let ncols = rows[0].len();
    let mut pr = 0;
    for c in 0..ncols {
        if pr == nrows {
            break;
        }
        let Some(first) = (pr..nrows).find(|&r| rows[r][c] != 0) else {
            continue;
        };
        rows.swap(pr, first);
        // Euclidean elimination below the pivot.
        for r in pr + 1..nrows {
            while rows[r][c] != 0 {
                let q = rows[pr][c] / rows[r][c];
                let (head, tail) = rows.split_at_mut(r);
                for (a, &b) in head[pr].iter_mut().zip(tail[0].iter()) {
                    *a = a.checked_sub(q.checked_mul(b)?)?;
                }
                rows.swap(pr, r);
            }
        }
        if rows[pr][c] < 0 {
            for v in rows[pr].iter_mut() {
                *v = v.checked_neg()?;
            }
        }
        let p = rows[pr][c];
        for r in 0..pr {
            let q = rows[r][c].div_euclid(p);
            if q != 0 {
                let (head, tail) = rows.split_at_mut(pr);
                for (a, &b) in head[r].iter_mut().zip(tail[0].iter()) {
                    *a = a.checked_sub(q.checked_mul(b)?)?;
                }
            }
        }
        pr += 1;
    }
    Some(())
}

/// Feasibility of a single conflict vector (Theorem 2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Feasibility {
    /// Some entry exceeds its box bound: `j̄` and `j̄ + γ̄` are never both
    /// in `J`.
    Feasible,
    /// Every entry fits inside the box: a conflict witness pair exists.
    NonFeasible,
}

/// Theorem 2.2: `γ` is feasible for the box `{0 ≤ j_i ≤ μ_i}` iff some
/// `|γ_i| > μ_i`.
pub fn feasibility(gamma: &IVec, index_set: &IndexSet) -> Feasibility {
    assert_eq!(gamma.dim(), index_set.dim(), "feasibility: dimension mismatch");
    for i in 0..gamma.dim() {
        if gamma[i].abs() > Int::from(index_set.mu_i(i)) {
            return Feasibility::Feasible;
        }
    }
    Feasibility::NonFeasible
}

/// A conflict witness: two distinct index points with `T·j̄₁ = T·j̄₂`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConflictWitness {
    /// First index point.
    pub j1: Vec<i64>,
    /// Second index point.
    pub j2: Vec<i64>,
}

/// HNF-backed conflict analysis of a mapping matrix over an index set.
///
/// # Examples
///
/// The Example 2.1 mapping is *not* conflict-free — `γ₃ = [1, 0, −1, 0]`
/// stays inside the box:
///
/// ```
/// use cfmap_core::{ConflictAnalysis, MappingMatrix};
/// use cfmap_model::IndexSet;
///
/// let t = MappingMatrix::from_rows(&[&[1, 7, 1, 1], &[1, 7, 1, 0]]);
/// let j = IndexSet::cube(4, 6);
/// let analysis = ConflictAnalysis::new(&t, &j);
/// assert!(!analysis.is_conflict_free_exact());
/// let gamma = analysis.find_small_kernel_vector().unwrap();
/// let witness = analysis.witness_from_kernel_vector(&gamma).unwrap();
/// assert_eq!(t.apply(&witness.j1), t.apply(&witness.j2));
/// ```
pub struct ConflictAnalysis<'a> {
    mapping: &'a MappingMatrix,
    index_set: &'a IndexSet,
    hnf: Hnf,
}

impl<'a> ConflictAnalysis<'a> {
    /// Analyze `T` over `J`. Computes the Hermite normal form once.
    pub fn new(mapping: &'a MappingMatrix, index_set: &'a IndexSet) -> Self {
        Self::with_hnf(mapping, index_set, mapping.hnf())
    }

    /// Analyze `T` over `J` reusing an already-computed Hermite normal
    /// form of `T` — the incremental screening path of Procedure 5.1
    /// completes a pre-eliminated `S` prefix per candidate instead of
    /// recomputing from scratch. The caller must pass the HNF of exactly
    /// this mapping matrix.
    pub fn with_hnf(mapping: &'a MappingMatrix, index_set: &'a IndexSet, hnf: Hnf) -> Self {
        assert_eq!(mapping.dim(), index_set.dim(), "T and J dimension mismatch");
        crate::metrics::HNF_COMPUTATIONS.inc();
        ConflictAnalysis { mapping, index_set, hnf }
    }

    /// The Hermite normal form of `T`.
    pub fn hnf(&self) -> &Hnf {
        &self.hnf
    }

    /// `rank(T)`.
    pub fn rank(&self) -> usize {
        self.hnf.rank
    }

    /// The conflict-lattice basis: the last `n − rank` columns of the
    /// Hermite multiplier `U` (Theorem 4.2). Every conflict vector of `T`
    /// is a primitive *integral* combination of these.
    pub fn lattice_basis(&self) -> Vec<IVec> {
        self.hnf.kernel_cols()
    }

    /// For `k = n−1` and full-rank `T`: the **unique** conflict vector
    /// (Theorem 3.1), canonicalized to primitive form with a positive
    /// first nonzero entry. `None` if `rank(T) < n−1` (kernel dimension
    /// exceeds 1) or `rank(T) = n`.
    pub fn unique_conflict_vector(&self) -> Option<IVec> {
        let basis = self.lattice_basis();
        if basis.len() != 1 {
            return None;
        }
        basis[0].primitive_part()
    }

    /// Equation 3.2: the unique conflict vector of a full-rank
    /// `(n−1)×n` mapping via the adjugate formula
    /// `γ = λ·[−B*·b̄; det B]`, where `T = [B, b̄]`.
    ///
    /// This is the closed form the paper's Section 3 derives; it must (and
    /// in tests does) agree with [`Self::unique_conflict_vector`]. Returns
    /// `None` when the leading `(n−1)×(n−1)` block `B` is singular — the
    /// formula's precondition `rank(B) = n−1` (the paper assumes it
    /// "without loss of generality" by column reordering, which we also
    /// try).
    pub fn conflict_vector_eq_3_2(&self) -> Option<IVec> {
        let t = self.mapping.as_mat();
        let n = t.ncols();
        if t.nrows() + 1 != n {
            return None;
        }
        // Try each column as the "b̄" column until B is nonsingular.
        for bcol in (0..n).rev() {
            let cols: Vec<usize> = (0..n).filter(|&c| c != bcol).collect();
            let b_mat = t.select_cols(&cols);
            let det_b = b_mat.det();
            if det_b.is_zero() {
                continue;
            }
            let b_vec = t.col(bcol);
            // γ over the reordered columns: [−B*·b̄; det B].
            let adj = b_mat.adjugate();
            let minus_adj_b = -&adj.mul_vec(&b_vec);
            // Scatter back into original column order.
            let mut gamma = IVec::zeros(n);
            for (pos, &c) in cols.iter().enumerate() {
                gamma[c] = minus_adj_b[pos].clone();
            }
            gamma[bcol] = det_b;
            return gamma.primitive_part();
        }
        None
    }

    /// Exact conflict-freedom decision (the ground truth the paper's
    /// closed-form conditions are checked against in our tests):
    ///
    /// `T` is conflict-free iff `ker_Z(T) ∩ ([−μ, μ]^n \ {0}) = ∅`.
    ///
    /// The kernel lattice has full column-rank basis `U_ker`; pick
    /// `n−k` rows forming a nonsingular square block `M`, so
    /// `β = M⁻¹·γ_rows`; `|γ_i| ≤ μ_i` bounds `β` in a computable box,
    /// which is enumerated exactly.
    pub fn is_conflict_free_exact(&self) -> bool {
        self.find_small_kernel_vector().is_none()
    }

    /// [`Self::is_conflict_free_exact`] through the process-wide
    /// kernel-lattice memo. The exact verdict depends only on
    /// `(ker_Z(T), μ)` — not on `T` itself — so candidates whose
    /// saturated kernel lattices coincide over the same index box share
    /// one enumeration. The memo key is the unique Hermite canonical
    /// basis of the lattice, so any two such candidates collide exactly.
    ///
    /// Always returns the same verdict as the unmemoized route (the
    /// memo caches a deterministic fact); the probe reports whether it
    /// was answered from cache, computed-and-recorded, or bypassed.
    pub fn is_conflict_free_exact_memoized(&self) -> (bool, MemoProbe) {
        let basis = self.lattice_basis();
        if basis.is_empty() {
            // rank n: injective on Z^n, no memo traffic needed.
            return (true, MemoProbe::Bypass);
        }
        let Some(key) = self.memo_key(&basis) else {
            return (self.is_conflict_free_exact(), MemoProbe::Bypass);
        };
        let shard = memo_shard(&key);
        if let Some(&verdict) = shard.lock().unwrap_or_else(|p| p.into_inner()).get(&key) {
            crate::metrics::CONFLICT_MEMO_HITS.inc();
            return (verdict, MemoProbe::Hit);
        }
        let verdict = self.is_conflict_free_exact();
        crate::metrics::CONFLICT_MEMO_MISSES.inc();
        let mut guard = shard.lock().unwrap_or_else(|p| p.into_inner());
        if guard.len() >= MEMO_SHARD_CAP {
            guard.clear();
        }
        guard.insert(key, verdict);
        (verdict, MemoProbe::Miss)
    }

    /// Canonical memo key for the kernel lattice spanned by `basis` over
    /// this index set: `[d, n, μ…, canonical basis rows…]`. `None` when
    /// any basis entry or intermediate of the Hermite normalization
    /// leaves `i64` (the caller then computes the verdict directly).
    fn memo_key(&self, basis: &[IVec]) -> Option<Vec<i64>> {
        let n = self.mapping.dim();
        let d = basis.len();
        let mut rows: Vec<Vec<i64>> = Vec::with_capacity(d);
        for b in basis {
            let mut row = Vec::with_capacity(n);
            for i in 0..n {
                row.push(b[i].to_i64()?);
            }
            rows.push(row);
        }
        row_hnf_i64(&mut rows)?;
        let mut key = Vec::with_capacity(2 + n + d * n);
        key.push(i64::try_from(d).ok()?);
        key.push(i64::try_from(n).ok()?);
        key.extend(self.index_set.mu().iter().copied());
        for row in &rows {
            key.extend_from_slice(row);
        }
        Some(key)
    }

    /// A nonzero kernel-lattice vector inside the box `[−μ, μ]^n`, if one
    /// exists — i.e. a *non-feasible* conflict direction (after
    /// normalization to primitive form).
    ///
    /// The raw HNF kernel basis is first LLL-reduced: the reduced basis
    /// generates the same lattice (so the decision is unchanged) but its
    /// shorter, more orthogonal vectors both surface small conflict
    /// vectors directly and shrink the coefficient box the enumeration
    /// must cover.
    pub fn find_small_kernel_vector(&self) -> Option<IVec> {
        crate::metrics::EXACT_CONFLICT_TESTS.inc();
        let basis = cfmap_intlin::lll_reduce(&self.lattice_basis());
        let d = basis.len();
        if d == 0 {
            return None; // injective on all of Z^n
        }
        // Fast path: a reduced basis vector already inside the box.
        let mu_box: Vec<Int> = self.index_set.mu().iter().map(|&m| Int::from(m)).collect();
        for b in &basis {
            if (0..b.dim()).all(|i| b[i].abs() <= mu_box[i]) {
                return Some(b.clone());
            }
        }
        let n = self.mapping.dim();
        let u_ker = IMat::from_cols(&basis);

        // Find d linearly independent rows of U_ker.
        let rows = independent_rows(&u_ker, d)?;
        let m = u_ker.select_rows(&rows);
        let m_inv = m.inverse_rational().expect("chosen rows are independent");

        // |β_j| ≤ Σ_i |(M⁻¹)_{ji}|·μ_{rows[i]}.
        let mut bounds = Vec::with_capacity(d);
        for inv_row in m_inv.iter().take(d) {
            let mut acc = Rat::zero();
            for (i, &row) in rows.iter().enumerate() {
                let mu = Rat::from_i64(self.index_set.mu_i(row));
                acc += &(&inv_row[i].abs() * &mu);
            }
            let b = acc.floor().to_i64().unwrap_or(i64::MAX);
            bounds.push(b.max(0));
        }

        // Enumerate β in the box, skip 0, test the full γ against μ.
        let mu: Vec<Int> = self.index_set.mu().iter().map(|&m| Int::from(m)).collect();
        let mut beta = vec![0i64; d];
        self.search_beta(&basis, &bounds, &mu, n, 0, &mut beta)
    }

    fn search_beta(
        &self,
        basis: &[IVec],
        bounds: &[i64],
        mu: &[Int],
        n: usize,
        idx: usize,
        beta: &mut Vec<i64>,
    ) -> Option<IVec> {
        if idx == beta.len() {
            if beta.iter().all(|&b| b == 0) {
                return None;
            }
            let mut gamma = IVec::zeros(n);
            for (b, col) in beta.iter().zip(basis) {
                if *b != 0 {
                    gamma = &gamma + &col.scale(&Int::from(*b));
                }
            }
            for i in 0..n {
                if gamma[i].abs() > mu[i] {
                    return None;
                }
            }
            return Some(gamma);
        }
        for b in -bounds[idx]..=bounds[idx] {
            beta[idx] = b;
            if let Some(g) = self.search_beta(basis, bounds, mu, n, idx + 1, beta) {
                return Some(g);
            }
        }
        beta[idx] = 0;
        None
    }

    /// Turn a small kernel vector into a concrete conflict witness pair
    /// (the construction in the proof of Theorem 2.2): `j_i = 0` where
    /// `γ_i ≥ 0`, `j_i = −γ_i` where `γ_i < 0`.
    ///
    /// Kernel vectors produced by [`Self::find_small_kernel_vector`] are
    /// box-bounded and always convert; a caller-supplied `γ` with
    /// entries outside the `i64` interchange range reports
    /// [`CfmapError::Overflow`] instead of aborting (the exact `Int`
    /// layer promotes past `i128` internally, so such vectors exist).
    pub fn witness_from_kernel_vector(
        &self,
        gamma: &IVec,
    ) -> Result<ConflictWitness, CfmapError> {
        let n = gamma.dim();
        let overflow = || CfmapError::Overflow {
            context: "witness_from_kernel_vector: kernel vector entry".into(),
        };
        let mut j1 = vec![0i64; n];
        for i in 0..n {
            let g = gamma[i].to_i64().ok_or_else(overflow)?;
            if g < 0 {
                j1[i] = g.checked_neg().ok_or_else(overflow)?;
            }
        }
        let mut j2 = Vec::with_capacity(n);
        for i in 0..n {
            let g = gamma[i].to_i64().ok_or_else(overflow)?;
            j2.push(j1[i].checked_add(g).ok_or_else(overflow)?);
        }
        Ok(ConflictWitness { j1, j2 })
    }
}

/// Choose `d` rows of `m` that are linearly independent (exact rank
/// computation on candidate sets, greedy).
fn independent_rows(m: &IMat, d: usize) -> Option<Vec<usize>> {
    let mut chosen: Vec<usize> = Vec::with_capacity(d);
    for r in 0..m.nrows() {
        if chosen.len() == d {
            break;
        }
        let mut candidate = chosen.clone();
        candidate.push(r);
        if m.select_rows(&candidate).rank() == candidate.len() {
            chosen = candidate;
        }
    }
    (chosen.len() == d).then_some(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingMatrix;
    use cfmap_model::IndexSet;

    fn mapping(rows: &[&[i64]]) -> MappingMatrix {
        MappingMatrix::from_rows(rows)
    }

    #[test]
    fn theorem_2_2_feasibility() {
        let j = IndexSet::new(&[4, 4]);
        assert_eq!(feasibility(&IVec::from_i64s(&[1, 1]), &j), Feasibility::NonFeasible);
        assert_eq!(feasibility(&IVec::from_i64s(&[3, 5]), &j), Feasibility::Feasible);
        assert_eq!(feasibility(&IVec::from_i64s(&[-5, 0]), &j), Feasibility::Feasible);
        assert_eq!(feasibility(&IVec::from_i64s(&[4, -4]), &j), Feasibility::NonFeasible);
    }

    #[test]
    fn example_2_1_classification() {
        // J = {0..6}⁴, T from Eq 2.8. γ1, γ2 feasible; γ3 non-feasible.
        let j = IndexSet::cube(4, 6);
        let g1 = IVec::from_i64s(&[0, 1, -7, 0]);
        let g2 = IVec::from_i64s(&[7, -1, 0, 0]);
        let g3 = IVec::from_i64s(&[1, 0, -1, 0]);
        assert_eq!(feasibility(&g1, &j), Feasibility::Feasible);
        assert_eq!(feasibility(&g2, &j), Feasibility::Feasible);
        assert_eq!(feasibility(&g3, &j), Feasibility::NonFeasible);
        // All three are genuine conflict vectors of T.
        let t = mapping(&[&[1, 7, 1, 1], &[1, 7, 1, 0]]);
        for g in [&g1, &g2, &g3] {
            assert!(t.as_mat().mul_vec(g).is_zero());
            assert!(g.is_primitive());
        }
        // And T is NOT conflict-free (γ3 is the culprit).
        let analysis = ConflictAnalysis::new(&t, &j);
        assert!(!analysis.is_conflict_free_exact());
        let small = analysis.find_small_kernel_vector().unwrap();
        assert_eq!(feasibility(&small, &j), Feasibility::NonFeasible);
    }

    #[test]
    fn eq_3_2_matches_hnf_for_matmul() {
        // T = [[1,1,-1],[π1,π2,π3]]: Eq 3.5 says γ ∝ [−π2−π3, π1+π3, π1−π2].
        for pi in [[1i64, 4, 1], [2, 1, 4], [1, 1, 1], [3, 5, 2]] {
            let t = mapping(&[&[1, 1, -1], &pi]);
            let j = IndexSet::cube(3, 4);
            let analysis = ConflictAnalysis::new(&t, &j);
            if t.as_mat().rank() < 2 {
                continue;
            }
            let via_hnf = analysis.unique_conflict_vector().unwrap();
            let via_adj = analysis.conflict_vector_eq_3_2().unwrap();
            assert_eq!(via_hnf, via_adj, "Π = {pi:?}");
            // Explicit formula check.
            let raw = IVec::from_i64s(&[-(pi[1] + pi[2]), pi[0] + pi[2], pi[0] - pi[1]]);
            assert_eq!(via_adj, raw.primitive_part().unwrap());
        }
    }

    #[test]
    fn eq_3_2_matches_for_transitive_closure() {
        // T = [[0,0,1],[π1,π2,π3]] → γ ∝ [π2, −π1, 0] (Eq 3.7).
        let t = mapping(&[&[0, 0, 1], &[5, 1, 1]]);
        let j = IndexSet::cube(3, 4);
        let analysis = ConflictAnalysis::new(&t, &j);
        let gamma = analysis.conflict_vector_eq_3_2().unwrap();
        assert_eq!(gamma, IVec::from_i64s(&[1, -5, 0]));
        assert_eq!(analysis.unique_conflict_vector().unwrap(), gamma);
        // Feasible (|−5| > μ = 4) ⇒ conflict-free.
        assert_eq!(feasibility(&gamma, &j), Feasibility::Feasible);
        assert!(analysis.is_conflict_free_exact());
    }

    #[test]
    fn eq_3_2_reorders_columns_past_singular_leading_block() {
        // T = [[1,1,2],[1,1,3]]: removing the last column leaves
        // B = [[1,1],[1,1]], which is singular — the paper's "without
        // loss of generality" reordering is load-bearing here. The
        // bcol = 2 attempt must be skipped and the bcol = 1 block
        // ([[1,2],[1,3]], det 1) used instead.
        let t = mapping(&[&[1, 1, 2], &[1, 1, 3]]);
        let j = IndexSet::cube(3, 4);
        let analysis = ConflictAnalysis::new(&t, &j);
        let gamma = analysis.conflict_vector_eq_3_2().expect("reordering finds a block");
        assert!(t.as_mat().mul_vec(&gamma).is_zero(), "γ = {gamma:?} not in ker T");
        assert!(gamma.is_primitive());
        assert_eq!(gamma, analysis.unique_conflict_vector().unwrap());
        // The only primitive kernel direction of this T is ±[1, −1, 0].
        assert_eq!(gamma, IVec::from_i64s(&[1, -1, 0]).primitive_part().unwrap());
    }

    #[test]
    fn eq_3_2_declines_fully_singular_mappings() {
        // Every (n−1)×(n−1) block of T = [[1,1,1],[1,1,1]] is singular:
        // no column choice works and the formula must return None
        // instead of dividing by a zero determinant.
        let t = mapping(&[&[1, 1, 1], &[1, 1, 1]]);
        let j = IndexSet::cube(3, 4);
        let analysis = ConflictAnalysis::new(&t, &j);
        assert_eq!(analysis.conflict_vector_eq_3_2(), None);
    }

    #[test]
    fn exact_checker_on_paper_optimal_matmul() {
        // Π = [1, μ, 1] with even μ: conflict vector [μ+1, −2, μ−1] is
        // feasible ⇒ conflict-free.
        let t = mapping(&[&[1, 1, -1], &[1, 4, 1]]);
        let j = IndexSet::cube(3, 4);
        let analysis = ConflictAnalysis::new(&t, &j);
        assert!(analysis.is_conflict_free_exact());
        // Π1 = [1, 1, μ] has conflict vector ∝ [−(1+μ), 1+μ, 0] →
        // primitive [1, −1, 0]: non-feasible ⇒ conflicts. (The paper's
        // appendix prints this vector as "[1, 1, 0]ᵀ", which does not
        // satisfy Tγ = 0 — an evident typo; the conclusion that Π1 is
        // rejected is unchanged.)
        let t_bad = mapping(&[&[1, 1, -1], &[1, 1, 4]]);
        let analysis_bad = ConflictAnalysis::new(&t_bad, &j);
        assert!(!analysis_bad.is_conflict_free_exact());
        let gamma = analysis_bad.unique_conflict_vector().unwrap();
        assert_eq!(gamma, IVec::from_i64s(&[1, -1, 0]));
    }

    #[test]
    fn witness_construction_matches_theorem_2_2_proof() {
        let t = mapping(&[&[1, 1, -1], &[1, 1, 4]]);
        let j = IndexSet::cube(3, 4);
        let analysis = ConflictAnalysis::new(&t, &j);
        let gamma = analysis.find_small_kernel_vector().unwrap();
        let w = analysis.witness_from_kernel_vector(&gamma).unwrap();
        assert!(j.contains(&w.j1));
        assert!(j.contains(&w.j2));
        assert_ne!(w.j1, w.j2);
        assert_eq!(t.apply(&w.j1), t.apply(&w.j2), "witness must collide");
    }

    #[test]
    fn rank_deficient_has_no_unique_vector() {
        let t = mapping(&[&[1, 1, -1], &[2, 2, -2]]);
        let j = IndexSet::cube(3, 4);
        let analysis = ConflictAnalysis::new(&t, &j);
        assert_eq!(analysis.rank(), 1);
        assert!(analysis.unique_conflict_vector().is_none());
    }

    #[test]
    fn square_full_rank_is_always_conflict_free() {
        let t = mapping(&[&[1, 0], &[0, 1]]);
        let j = IndexSet::new(&[9, 9]);
        let analysis = ConflictAnalysis::new(&t, &j);
        assert!(analysis.lattice_basis().is_empty());
        assert!(analysis.is_conflict_free_exact());
    }

    #[test]
    fn witness_overflow_is_reported_not_fatal() {
        // A kernel vector with entries past i64 cannot index the box;
        // the conversion must surface CfmapError::Overflow.
        let t = mapping(&[&[1, 1, -1], &[1, 1, 4]]);
        let j = IndexSet::cube(3, 4);
        let analysis = ConflictAnalysis::new(&t, &j);
        let huge = Int::from(i64::MAX) * Int::from(4);
        let gamma = IVec::new(vec![huge.clone(), -&huge, Int::zero()]);
        match analysis.witness_from_kernel_vector(&gamma) {
            Err(crate::CfmapError::Overflow { context }) => {
                assert!(context.contains("witness"));
            }
            other => panic!("expected Overflow, got {other:?}"),
        }
    }

    #[test]
    fn memoized_verdict_matches_and_collides_across_row_spans() {
        // Distinctive μ so this test's memo keys don't collide with other
        // tests sharing the process-wide memo.
        let j = IndexSet::new(&[5, 7, 3]);
        let t = mapping(&[&[1, 1, -1], &[1, 4, 1]]);
        let a = ConflictAnalysis::new(&t, &j);
        let plain = a.is_conflict_free_exact();
        let (verdict, probe) = a.is_conflict_free_exact_memoized();
        assert_eq!(verdict, plain);
        assert_ne!(probe, MemoProbe::Bypass, "small i64 basis must be memoizable");
        // Row-permuted and row-combined stacks span the same rational row
        // space ⇒ same saturated kernel lattice ⇒ memo hit.
        for rows in [
            vec![vec![1i64, 4, 1], vec![1, 1, -1]],
            vec![vec![1, 1, -1], vec![2, 5, 0]], // row2 + row1
            vec![vec![2, 2, -2], vec![1, 4, 1]], // 2·row1
        ] {
            let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
            let t2 = mapping(&refs);
            let a2 = ConflictAnalysis::new(&t2, &j);
            let (v2, p2) = a2.is_conflict_free_exact_memoized();
            assert_eq!(v2, plain, "rows {rows:?}");
            assert_eq!(v2, a2.is_conflict_free_exact(), "rows {rows:?}");
            assert_eq!(p2, MemoProbe::Hit, "rows {rows:?} share the kernel lattice");
        }
        // Full-rank square mapping bypasses the memo (trivial kernel).
        let t3 = mapping(&[&[1, 0, 0], &[0, 1, 0], &[0, 0, 1]]);
        let a3 = ConflictAnalysis::new(&t3, &j);
        assert_eq!(a3.is_conflict_free_exact_memoized(), (true, MemoProbe::Bypass));
        // A different box must NOT reuse the verdict key.
        let j2 = IndexSet::new(&[5, 7, 4]);
        let a4 = ConflictAnalysis::new(&t, &j2);
        let (v4, p4) = a4.is_conflict_free_exact_memoized();
        assert_eq!(v4, a4.is_conflict_free_exact());
        assert_ne!(p4, MemoProbe::Hit, "μ is part of the memo key");
    }

    #[test]
    fn row_hnf_canonicalizes_equal_lattices() {
        let mut a = vec![vec![2i64, 4, 6], vec![0, 3, 9]];
        let mut b = vec![vec![0i64, 3, 9], vec![2, 7, 15]]; // same row lattice
        row_hnf_i64(&mut a).unwrap();
        row_hnf_i64(&mut b).unwrap();
        assert_eq!(a, b);
        for row in &a {
            let p = row.iter().find(|&&x| x != 0).copied().unwrap();
            assert!(p > 0, "pivots positive: {a:?}");
        }
        // Different lattices must stay distinct.
        let mut c = vec![vec![2i64, 4, 6], vec![0, 3, 8]];
        row_hnf_i64(&mut c).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn two_dimensional_kernel_interaction() {
        // Example 4.1: γ1 and γ2 feasible but γ = (γ1+γ2)/7 is a
        // non-feasible conflict vector — the exact checker must find it.
        let t = mapping(&[&[1, 7, 1, 1], &[1, 7, 1, 0]]);
        let j = IndexSet::cube(4, 6);
        let analysis = ConflictAnalysis::new(&t, &j);
        let small = analysis.find_small_kernel_vector().unwrap();
        // The found vector is (±) [1, 0, -1, 0] or another in-box kernel
        // point; any is a valid refutation.
        assert!(t.as_mat().mul_vec(&small).is_zero());
        assert!(!small.is_zero());
        for i in 0..4 {
            assert!(small[i].abs() <= Int::from(6));
        }
    }
}
