//! Mapping matrices `T = [S; Π]` and the conditions of Definition 2.2.
//!
//! A linear algorithm transformation maps index point `j̄` to processor
//! `S·j̄` (space) and time `Π·j̄` (schedule). Definition 2.2 imposes:
//!
//! 1. `ΠD > 0` — dependencies respected (checked by
//!    [`cfmap_model::LinearSchedule::is_valid_for`]);
//! 2. `SD = P·K` with `Σ_j k_{ji} ≤ Π·d̄ᵢ` — routable on the target
//!    interconnect with data arriving no later than use ([`routing`] /
//!    [`InterconnectionPrimitives`]);
//! 3. injectivity on `J` — no computational conflicts (the subject of
//!    [`crate::conflict`] and [`crate::conditions`]);
//! 4. `rank(T) = k` — the array is genuinely `(k−1)`-dimensional.

use crate::error::CfmapError;
use cfmap_intlin::{hermite_normal_form, Hnf, IMat, IVec, Int};
use cfmap_lp::{solve_ilp, LpOutcome, LpProblem, Relation};
use cfmap_model::{DependenceMatrix, LinearSchedule};
use std::fmt;

/// The space mapping matrix `S ∈ Z^{(k−1)×n}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpaceMap {
    mat: IMat,
}

impl SpaceMap {
    /// Build from rows.
    pub fn from_rows(rows: &[&[i64]]) -> SpaceMap {
        SpaceMap { mat: IMat::from_rows(rows) }
    }

    /// A single-row space map (→ linear array).
    pub fn row(row: &[i64]) -> SpaceMap {
        SpaceMap::from_rows(&[row])
    }

    /// Number of array dimensions `k − 1`.
    pub fn array_dims(&self) -> usize {
        self.mat.nrows()
    }

    /// Algorithm dimension `n`.
    pub fn dim(&self) -> usize {
        self.mat.ncols()
    }

    /// The matrix `S`.
    pub fn as_mat(&self) -> &IMat {
        &self.mat
    }

    /// Processor coordinates of index point `j̄`: `S·j̄` (machine ints).
    pub fn place(&self, j: &[i64]) -> Vec<i64> {
        (0..self.mat.nrows())
            .map(|r| {
                (0..self.mat.ncols())
                    .map(|c| {
                        self.mat.get(r, c).to_i64().expect("space map entry fits i64") * j[c]
                    })
                    .sum()
            })
            .collect()
    }
}

impl fmt::Display for SpaceMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mat)
    }
}

/// The full mapping matrix `T = [S; Π] ∈ Z^{k×n}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MappingMatrix {
    space: SpaceMap,
    schedule: LinearSchedule,
    t: IMat,
}

impl MappingMatrix {
    /// Stack a space map and a schedule into `T = [S; Π]`.
    pub fn new(space: SpaceMap, schedule: LinearSchedule) -> MappingMatrix {
        assert_eq!(space.dim(), schedule.dim(), "S and Π dimension mismatch");
        let pi_row = IMat::from_rows(&[schedule.as_slice()]);
        let t = space.as_mat().vstack(&pi_row);
        MappingMatrix { space, schedule, t }
    }

    /// Build directly from rows (last row is `Π`).
    pub fn from_rows(rows: &[&[i64]]) -> MappingMatrix {
        assert!(rows.len() >= 2, "mapping matrix needs at least S and Π rows");
        let space = SpaceMap::from_rows(&rows[..rows.len() - 1]);
        let schedule = LinearSchedule::new(rows[rows.len() - 1]);
        MappingMatrix::new(space, schedule)
    }

    /// `k` = number of rows of `T` (array dimension + 1).
    pub fn k(&self) -> usize {
        self.t.nrows()
    }

    /// Algorithm dimension `n`.
    pub fn dim(&self) -> usize {
        self.t.ncols()
    }

    /// The space part `S`.
    pub fn space(&self) -> &SpaceMap {
        &self.space
    }

    /// The schedule part `Π`.
    pub fn schedule(&self) -> &LinearSchedule {
        &self.schedule
    }

    /// The matrix `T`.
    pub fn as_mat(&self) -> &IMat {
        &self.t
    }

    /// `τ(j̄) = T·j̄` as machine integers: `(processor coords, time)`.
    pub fn apply(&self, j: &[i64]) -> (Vec<i64>, i64) {
        (self.space.place(j), self.schedule.time_of(j))
    }

    /// Condition 4 of Definition 2.2: `rank(T) = k`.
    pub fn has_full_rank(&self) -> bool {
        self.t.rank() == self.k()
    }

    /// Condition 1 of Definition 2.2: `ΠD > 0`.
    pub fn respects_dependencies(&self, deps: &DependenceMatrix) -> bool {
        self.schedule.is_valid_for(deps)
    }

    /// The Hermite normal form `T·U = [L, 0]` (Theorem 4.1) — the engine
    /// behind all the conflict conditions of Section 4.
    pub fn hnf(&self) -> Hnf {
        hermite_normal_form(&self.t)
    }
}

impl fmt::Display for MappingMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T =\n{}", self.t)
    }
}

/// The matrix `P` of interconnection primitives of the target array
/// (Definition 2.2): one column per physical link direction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InterconnectionPrimitives {
    mat: IMat,
}

impl InterconnectionPrimitives {
    /// Build from columns (each a `(k−1)`-dimensional direction).
    pub fn from_columns(cols: &[&[i64]]) -> InterconnectionPrimitives {
        let vecs: Vec<IVec> = cols.iter().map(|c| IVec::from_i64s(c)).collect();
        InterconnectionPrimitives { mat: IMat::from_cols(&vecs) }
    }

    /// The nearest-neighbour mesh primitives in `d` dimensions:
    /// `±e₁, …, ±e_d` (the paper's east/south/west/north example for
    /// `d = 2`).
    pub fn mesh(d: usize) -> InterconnectionPrimitives {
        let mut cols: Vec<IVec> = Vec::with_capacity(2 * d);
        for i in 0..d {
            cols.push(IVec::unit(d, i));
            cols.push(-&IVec::unit(d, i));
        }
        InterconnectionPrimitives { mat: IMat::from_cols(&cols) }
    }

    /// Number of primitives `r`.
    pub fn num_primitives(&self) -> usize {
        self.mat.ncols()
    }

    /// Array dimension `k − 1`.
    pub fn array_dims(&self) -> usize {
        self.mat.nrows()
    }

    /// The matrix `P`.
    pub fn as_mat(&self) -> &IMat {
        &self.mat
    }
}

/// A routing certificate: the matrix `K` of Definition 2.2 condition 2,
/// with per-dependence diagnostics.
#[derive(Clone, Debug)]
pub struct Routing {
    /// `K ∈ N^{r×m}` with `P·K = S·D`.
    pub k: IMat,
    /// `Π·d̄ᵢ` for each dependence (available time budget).
    pub dep_times: Vec<Int>,
    /// `Σ_j k_{ji}` for each dependence (hops used).
    pub hops: Vec<Int>,
    /// Buffers per dependence: `Π·d̄ᵢ − Σ_j k_{ji}` (the paper's
    /// shift-register count, cf. Example 5.1's "three buffers").
    pub buffers: Vec<Int>,
}

impl Routing {
    /// Appendix criterion: *"there is no data link collision because in
    /// every column of matrix K there is only one non-zero entry"* — each
    /// datum uses a link exactly once on its way.
    pub fn is_collision_free_by_k(&self) -> bool {
        (0..self.k.ncols()).all(|c| {
            let nonzeros = (0..self.k.nrows()).filter(|&r| !self.k.get(r, c).is_zero()).count();
            nonzeros <= 1
        })
    }

    /// Total buffer count `Σᵢ (Π·d̄ᵢ − Σ_j k_{ji})` — the quantity the
    /// paper compares against [23] at the end of Example 5.1.
    pub fn total_buffers(&self) -> Int {
        self.buffers.iter().sum()
    }
}

/// Solve condition 2 of Definition 2.2: find `K ≥ 0` integral with
/// `P·K = S·D` and `Σ_j k_{ji} ≤ Π·d̄ᵢ`, minimizing hops per dependence.
///
/// Each dependence is an independent small ILP (minimize `Σ_j k_j` s.t.
/// `P·k = (S·D) column`, `k ≥ 0`). Returns [`CfmapError::Unroutable`]
/// naming the first dependence that cannot be delivered within its time
/// budget, or [`CfmapError::Overflow`] when a quantity leaves the `i64`
/// interchange range.
pub fn route(
    mapping: &MappingMatrix,
    deps: &DependenceMatrix,
    primitives: &InterconnectionPrimitives,
) -> Result<Routing, CfmapError> {
    if primitives.array_dims() != mapping.k() - 1 {
        return Err(CfmapError::DimensionMismatch {
            context: "interconnection primitives vs mapping array dimension".into(),
            expected: mapping.k() - 1,
            actual: primitives.array_dims(),
        });
    }
    let sd = mapping.space().as_mat() * deps.as_mat();
    let r = primitives.num_primitives();
    let m = deps.num_deps();
    let dep_times = mapping.schedule().dep_times(deps);

    let overflow = |context: &str| CfmapError::Overflow { context: format!("route: {context}") };

    let mut k = IMat::zeros(r, m);
    let mut hops = Vec::with_capacity(m);
    for (i, dep_time) in dep_times.iter().enumerate() {
        let target = sd.col(i);
        // min Σ k_j  s.t.  P·k = target, 0 ≤ k_j ≤ Π·d̄ᵢ.
        let mut p = LpProblem::minimize(&vec![1; r]);
        let budget =
            dep_time.to_i64().ok_or_else(|| overflow("schedule time Π·d̄ᵢ"))?;
        for j in 0..r {
            p.set_lower(j, cfmap_intlin::Rat::zero());
            p.set_upper(j, cfmap_intlin::Rat::from_i64(budget));
        }
        for row in 0..primitives.array_dims() {
            let mut coeffs = Vec::with_capacity(r);
            for j in 0..r {
                coeffs.push(
                    primitives
                        .as_mat()
                        .get(row, j)
                        .to_i64()
                        .ok_or_else(|| overflow("primitive matrix entry"))?,
                );
            }
            let rhs = target[row].to_i64().ok_or_else(|| overflow("S·D entry"))?;
            p.constrain_i64(&coeffs, Relation::Eq, rhs);
        }
        match solve_ilp(&p, 50_000) {
            Err(e) => {
                return Err(CfmapError::Unroutable {
                    dependence: i,
                    reason: format!("routing ILP gave up: {e}"),
                })
            }
            Ok(LpOutcome::Optimal { x, value }) => {
                if value > cfmap_intlin::Rat::from_int(dep_time.clone()) {
                    return Err(CfmapError::Unroutable {
                        dependence: i,
                        reason: format!(
                            "needs {value} hops but only {} time steps are available",
                            dep_time
                        ),
                    });
                }
                for (j, v) in x.iter().enumerate() {
                    k.set(j, i, v.to_int().expect("ILP solution is integral"));
                }
                hops.push(value.to_int().expect("integral hops"));
            }
            Ok(_) => {
                return Err(CfmapError::Unroutable {
                    dependence: i,
                    reason: format!(
                        "no nonnegative integral combination of the {r} primitives \
                         reaches processor offset {:?} within {} time steps",
                        target.to_i64s().unwrap_or_default(),
                        dep_time
                    ),
                })
            }
        }
    }

    let buffers: Vec<Int> = dep_times.iter().zip(&hops).map(|(t, h)| t - h).collect();
    Ok(Routing { k, dep_times, hops, buffers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfmap_model::algorithms;

    #[test]
    fn space_map_placement() {
        let s = SpaceMap::row(&[1, 1, -1]);
        assert_eq!(s.array_dims(), 1);
        assert_eq!(s.dim(), 3);
        assert_eq!(s.place(&[2, 3, 1]), vec![4]);
        let s2 = SpaceMap::from_rows(&[&[1, 0, 0, 0], &[0, 1, 0, 0]]);
        assert_eq!(s2.place(&[5, 7, 9, 11]), vec![5, 7]);
    }

    #[test]
    fn mapping_matrix_stacking() {
        let t = MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[1, 4, 1]));
        assert_eq!(t.k(), 2);
        assert_eq!(t.dim(), 3);
        assert_eq!(t.as_mat(), &IMat::from_rows(&[&[1, 1, -1], &[1, 4, 1]]));
        let (proc, time) = t.apply(&[2, 3, 1]);
        assert_eq!(proc, vec![4]);
        assert_eq!(time, 2 + 12 + 1);
        assert!(t.has_full_rank());
    }

    #[test]
    fn rank_condition_detects_degenerate_mapping() {
        // Π parallel to S ⇒ rank 1 < 2 (condition 4 violated).
        let t = MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[2, 2, -2]));
        assert!(!t.has_full_rank());
    }

    #[test]
    fn dependency_condition() {
        let alg = algorithms::matmul(4);
        let good = MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[1, 4, 1]));
        assert!(good.respects_dependencies(&alg.deps));
        let bad = MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[0, 4, 1]));
        assert!(!bad.respects_dependencies(&alg.deps));
    }

    #[test]
    fn mesh_primitives() {
        let p = InterconnectionPrimitives::mesh(2);
        assert_eq!(p.num_primitives(), 4);
        assert_eq!(p.array_dims(), 2);
        // The paper's P for the 4-neighbour mesh, up to column order.
        let cols: Vec<Vec<i64>> =
            (0..4).map(|c| p.as_mat().col(c).to_i64s().unwrap()).collect();
        for want in [vec![0, 1], vec![0, -1], vec![1, 0], vec![-1, 0]] {
            assert!(cols.contains(&want), "missing primitive {want:?}");
        }
    }

    #[test]
    fn routing_example_5_1() {
        // Example 5.1: P = SD = [1, 1, −1], K = I; Πd̄ = (1, 4, 1) ⇒
        // hops (1, 1, 1), buffers (0, 3, 0) — "three buffers are needed on
        // the data link for d̄₂ induced by data A".
        let alg = algorithms::matmul(4);
        let mapping =
            MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[1, 4, 1]));
        let p = InterconnectionPrimitives::from_columns(&[&[1], &[1], &[-1]]);
        let routing = route(&mapping, &alg.deps, &p).expect("routable");
        assert_eq!(routing.dep_times, vec![Int::from(1), Int::from(4), Int::from(1)]);
        assert_eq!(routing.hops, vec![Int::from(1), Int::from(1), Int::from(1)]);
        assert_eq!(routing.buffers, vec![Int::from(0), Int::from(3), Int::from(0)]);
        assert_eq!(routing.total_buffers(), Int::from(3));
        assert!(routing.is_collision_free_by_k());
        // P·K = S·D.
        let sd = mapping.space().as_mat() * alg.deps.as_mat();
        assert_eq!(&(p.as_mat() * &routing.k), &sd);
    }

    #[test]
    fn routing_baseline_23_needs_four_buffers() {
        // [23]'s Π' = [2, 1, μ]: Σ(Πd̄ᵢ − 1) = (2−1)+(1−1)+(4−1) = 4.
        let alg = algorithms::matmul(4);
        let mapping =
            MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[2, 1, 4]));
        let p = InterconnectionPrimitives::from_columns(&[&[1], &[1], &[-1]]);
        let routing = route(&mapping, &alg.deps, &p).expect("routable");
        assert_eq!(routing.total_buffers(), Int::from(4));
    }

    #[test]
    fn routing_transitive_closure_example_5_2() {
        // Example 5.2: P = SD = [1, 0, −1, 0, −1], K = I.
        let alg = algorithms::transitive_closure(4);
        let mapping =
            MappingMatrix::new(SpaceMap::row(&[0, 0, 1]), LinearSchedule::new(&[5, 1, 1]));
        let sd = mapping.space().as_mat() * alg.deps.as_mat();
        assert_eq!(sd, IMat::from_rows(&[&[1, 0, -1, 0, -1]]));
        let p = InterconnectionPrimitives::from_columns(&[&[1], &[0], &[-1], &[0], &[-1]]);
        // A primitive with a zero column is degenerate; use the distinct
        // directions {+1, −1} plus a "stay" omitted — route must still
        // work with the minimal set {+1, −1}.
        let p_minimal = InterconnectionPrimitives::from_columns(&[&[1], &[-1]]);
        let routing = route(&mapping, &alg.deps, &p_minimal).expect("routable");
        assert!(routing.is_collision_free_by_k());
        assert_eq!(&(p_minimal.as_mat() * &routing.k), &sd);
        // d̄₂ = [0,1,0] maps to processor-distance 0 and needs 0 hops.
        assert_eq!(routing.hops[1], Int::zero());
        let _ = p;
    }

    #[test]
    fn unroutable_when_budget_too_small() {
        // Processor distance 3 in one hop budget 1 ⇒ unroutable.
        let deps = DependenceMatrix::from_columns(&[&[1, 0]]);
        let mapping = MappingMatrix::new(SpaceMap::row(&[3, 0]), LinearSchedule::new(&[1, 1]));
        let p = InterconnectionPrimitives::from_columns(&[&[1], &[-1]]);
        let err = route(&mapping, &deps, &p).unwrap_err();
        match err {
            CfmapError::Unroutable { dependence, reason } => {
                assert_eq!(dependence, 0);
                assert!(!reason.is_empty());
            }
            other => panic!("expected Unroutable, got {other:?}"),
        }
    }

    #[test]
    fn route_rejects_mismatched_primitives() {
        // 2-D primitives against a 1-D (linear) array.
        let deps = DependenceMatrix::from_columns(&[&[1, 0]]);
        let mapping = MappingMatrix::new(SpaceMap::row(&[1, 0]), LinearSchedule::new(&[1, 1]));
        let p = InterconnectionPrimitives::mesh(2);
        assert!(matches!(
            route(&mapping, &deps, &p),
            Err(CfmapError::DimensionMismatch { .. })
        ));
    }
}
