//! Structured error taxonomy for the mapping pipeline.
//!
//! Every public entry point that used to panic or silently return
//! `None` now reports *why* it could not produce a mapping, in terms of
//! the conditions of Definition 2.2: rank deficiency (condition 4),
//! schedule validity (condition 1), routability (condition 2), machine
//! arithmetic overflow in the exact/fixed-width boundary layer, or an
//! exhausted [`crate::SearchBudget`].

use std::fmt;

/// Which resource limit of a [`crate::SearchBudget`] tripped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetLimit {
    /// The candidate-count ceiling (`max_candidates`).
    Candidates,
    /// The branch-and-bound node ceiling (`max_nodes`).
    Nodes,
    /// The wall-clock ceiling (`max_wall`).
    WallClock,
    /// The absolute request deadline (`deadline`) passed before the
    /// search completed. Unlike `max_wall` (a relative cap started when
    /// the search starts), a deadline is anchored by the caller — e.g.
    /// at connection-accept time — so queueing delay counts against it.
    Deadline,
    /// The search was cancelled cooperatively via a
    /// [`crate::CancelToken`] (e.g. the serving daemon hit its drain
    /// deadline during shutdown).
    Cancelled,
}

impl fmt::Display for BudgetLimit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetLimit::Candidates => write!(f, "candidate-count limit"),
            BudgetLimit::Nodes => write!(f, "node limit"),
            BudgetLimit::WallClock => write!(f, "wall-clock limit"),
            BudgetLimit::Deadline => write!(f, "request deadline"),
            BudgetLimit::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Errors from the conflict-free mapping pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CfmapError {
    /// Condition 4 of Definition 2.2 failed: `rank(T) < k`, so the
    /// mapping collapses the array to fewer dimensions than requested.
    RankDeficient {
        /// Required rank `k` (array dimensions + 1).
        expected: usize,
        /// Actual rank of `T`.
        actual: usize,
    },
    /// Condition 1 of Definition 2.2 failed: `Π·d̄ ≤ 0` for some
    /// dependence, i.e. the schedule does not respect the data flow.
    InvalidSchedule {
        /// The offending schedule vector `Π`.
        schedule: Vec<i64>,
        /// Human-readable explanation (which dependence is violated).
        reason: String,
    },
    /// Condition 2 of Definition 2.2 failed: no nonnegative integral `K`
    /// with `P·K = S·D` delivers every datum within its time budget
    /// `Π·d̄ᵢ` on the given interconnection primitives.
    Unroutable {
        /// Index of the first unroutable dependence column.
        dependence: usize,
        /// Human-readable explanation (distance vs. available time).
        reason: String,
    },
    /// A quantity left the exactly-representable range of the
    /// fixed-width boundary layer (`i64` interchange values). The exact
    /// `Int` layer promotes to big integers internally; this error marks
    /// the points where results must re-enter machine integers.
    Overflow {
        /// Where the conversion failed (function / quantity).
        context: String,
    },
    /// A [`crate::SearchBudget`] limit was hit and no mapping — not even
    /// a degraded best-effort one — could be produced.
    BudgetExhausted {
        /// Which limit tripped.
        limit: BudgetLimit,
        /// Candidates examined before giving up.
        candidates_examined: u64,
    },
    /// Inputs disagree on the algorithm dimension `n` or the array
    /// dimension `k − 1`.
    DimensionMismatch {
        /// What was being combined.
        context: String,
        /// Dimension required by the first operand.
        expected: usize,
        /// Dimension offered by the second operand.
        actual: usize,
    },
    /// The request is outside the implemented fragment of the theory
    /// (e.g. a space map with more than two rows in the VLSI-cost
    /// search).
    Unsupported {
        /// What was requested and what the supported range is.
        reason: String,
    },
    /// An internal invariant broke — e.g. a worker thread of the
    /// parallel search panicked. Unlike every other variant this is a
    /// bug in cfmap, not in the caller's input; surfacing it as an error
    /// (HTTP 500 on the wire) keeps the pipeline's panic-free contract.
    Internal {
        /// Where the invariant broke.
        context: String,
    },
    /// A persisted warm-start snapshot cannot be loaded: its format
    /// version, canonical-key digest, or checksum disagrees with this
    /// build. Loading anyway would serve cache entries keyed under a
    /// *different* canonicalization (silently wrong answers), so the
    /// mismatch is precise and fatal to the load, never papered over.
    SnapshotMismatch {
        /// Which header field disagreed (`version`, `digest`,
        /// `checksum`, `body`).
        field: String,
        /// The value this build requires.
        expected: String,
        /// The value found in the snapshot.
        actual: String,
    },
}

impl fmt::Display for CfmapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfmapError::RankDeficient { expected, actual } => write!(
                f,
                "rank-deficient mapping: rank(T) = {actual} but condition 4 of \
                 Definition 2.2 requires rank {expected}; choose S and Π with \
                 linearly independent rows"
            ),
            CfmapError::InvalidSchedule { schedule, reason } => write!(
                f,
                "invalid schedule Π = {schedule:?}: {reason} (condition 1 of \
                 Definition 2.2 requires Π·d̄ > 0 for every dependence)"
            ),
            CfmapError::Unroutable { dependence, reason } => write!(
                f,
                "unroutable interconnect for dependence {dependence}: {reason} \
                 (condition 2 of Definition 2.2); add primitives or slow the \
                 schedule to enlarge the time budget"
            ),
            CfmapError::Overflow { context } => write!(
                f,
                "integer overflow in {context}: value exceeds the i64 \
                 interchange range; shrink the problem extents or keep the \
                 computation in the exact Int layer"
            ),
            CfmapError::BudgetExhausted { limit, candidates_examined } => write!(
                f,
                "search budget exhausted ({limit}) after examining \
                 {candidates_examined} candidates, and no fallback mapping was \
                 found; raise the budget or relax the constraints"
            ),
            CfmapError::DimensionMismatch { context, expected, actual } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {actual}"
            ),
            CfmapError::Unsupported { reason } => write!(f, "unsupported request: {reason}"),
            CfmapError::Internal { context } => write!(
                f,
                "internal error in {context}: this is a bug in cfmap, not in \
                 the request; please report it with the input that triggered it"
            ),
            CfmapError::SnapshotMismatch { field, expected, actual } => write!(
                f,
                "snapshot mismatch: {field} is {actual} but this build \
                 requires {expected}; regenerate the snapshot with \
                 `cfmap client --get /cache/save` against a matching daemon"
            ),
        }
    }
}

impl std::error::Error for CfmapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_actionable() {
        let cases: Vec<(CfmapError, &str)> = vec![
            (CfmapError::RankDeficient { expected: 2, actual: 1 }, "rank-deficient"),
            (
                CfmapError::InvalidSchedule {
                    schedule: vec![0, 1],
                    reason: "Π·d̄₁ = 0".into(),
                },
                "invalid schedule",
            ),
            (
                CfmapError::Unroutable { dependence: 2, reason: "distance 3 > budget 1".into() },
                "unroutable",
            ),
            (CfmapError::Overflow { context: "space span".into() }, "overflow"),
            (
                CfmapError::BudgetExhausted {
                    limit: BudgetLimit::Candidates,
                    candidates_examined: 7,
                },
                "budget exhausted",
            ),
            (
                CfmapError::BudgetExhausted {
                    limit: BudgetLimit::Deadline,
                    candidates_examined: 0,
                },
                "deadline",
            ),
            (
                CfmapError::BudgetExhausted {
                    limit: BudgetLimit::Cancelled,
                    candidates_examined: 0,
                },
                "cancelled",
            ),
            (
                CfmapError::DimensionMismatch {
                    context: "S vs Π".into(),
                    expected: 3,
                    actual: 2,
                },
                "dimension mismatch",
            ),
            (CfmapError::Unsupported { reason: "3-row S".into() }, "unsupported"),
            (
                CfmapError::Internal { context: "solve_parallel worker".into() },
                "internal error",
            ),
            (
                CfmapError::SnapshotMismatch {
                    field: "digest".into(),
                    expected: "0011223344556677".into(),
                    actual: "8899aabbccddeeff".into(),
                },
                "snapshot mismatch",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(
                msg.to_lowercase().contains(needle),
                "message {msg:?} does not mention {needle:?}"
            );
        }
    }

    #[test]
    fn error_trait_object_safe() {
        let e: Box<dyn std::error::Error> =
            Box::new(CfmapError::Overflow { context: "test".into() });
        assert!(e.to_string().contains("overflow"));
    }
}
