//! Resource budgets and graceful degradation for the searches.
//!
//! Procedure 5.1, the ILP decomposition and the Problem 6.1/6.2
//! searches all enumerate candidate spaces whose size grows
//! combinatorially with the extents `μ`. A [`SearchBudget`] bounds the
//! work (candidates screened, branch-and-bound nodes, wall-clock time);
//! when a limit trips, the searches degrade gracefully: they return the
//! best mapping found so far — or a cheap deterministic fallback — tagged
//! with a [`Certification`] instead of hanging or panicking.
//!
//! Degradation with a candidate budget is **deterministic**: the
//! enumeration order is fixed, so the same budget always yields the same
//! outcome. Wall-clock budgets are inherently machine-dependent and
//! reproducibility is limited to "some prefix of the same ordered
//! enumeration".

use crate::error::BudgetLimit;
use crate::metrics::SearchTelemetry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

pub mod clock {
    //! The budget clock: a process-wide monotonic microsecond counter
    //! with a thread-local test override.
    //!
    //! All time-based budget decisions ([`SearchBudget::max_wall`],
    //! [`Deadline`]) read this clock instead of [`std::time::Instant`]
    //! directly, so tests can drive expiry deterministically: install a
    //! [`TestClock`] and advance it from a candidate probe, and the
    //! search trips its deadline at an exact, reproducible candidate
    //! count. The override is thread-local, which suffices because the
    //! searches run sequentially whenever a budget is in force (see
    //! `Procedure51::solve_parallel`).

    use std::cell::Cell;
    use std::sync::OnceLock;
    use std::time::Instant;

    thread_local! {
        static TEST_NOW: Cell<Option<u64>> = const { Cell::new(None) };
    }

    /// Microseconds on the budget clock: the thread's test override if
    /// one is installed, otherwise time elapsed since the first call in
    /// this process.
    pub fn now_micros() -> u64 {
        if let Some(t) = TEST_NOW.with(Cell::get) {
            return t;
        }
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        let epoch = *EPOCH.get_or_init(Instant::now);
        u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// A thread-local override of the budget clock, removed on drop.
    ///
    /// While installed, `now_micros()` on this thread returns exactly
    /// the value last set — time only moves when the test says so.
    #[derive(Debug)]
    pub struct TestClock {
        // !Send so the override provably dies on the thread it patched.
        _not_send: std::marker::PhantomData<*const ()>,
    }

    impl TestClock {
        /// Install the override on the current thread, starting at
        /// `start_us` microseconds.
        pub fn start_at(start_us: u64) -> TestClock {
            TEST_NOW.with(|c| c.set(Some(start_us)));
            TestClock { _not_send: std::marker::PhantomData }
        }

        /// Move the clock to an absolute time. Panics if moved backwards.
        pub fn set(&self, us: u64) {
            TEST_NOW.with(|c| {
                let now = c.get().expect("test clock was cleared");
                assert!(us >= now, "test clock moved backwards: {now} -> {us}");
                c.set(Some(us));
            });
        }

        /// Advance the clock by `us` microseconds.
        pub fn advance(&self, us: u64) {
            TEST_NOW.with(|c| {
                let now = c.get().expect("test clock was cleared");
                c.set(Some(now.saturating_add(us)));
            });
        }

        /// Current reading of the override.
        pub fn now(&self) -> u64 {
            TEST_NOW.with(|c| c.get().expect("test clock was cleared"))
        }
    }

    impl Drop for TestClock {
        fn drop(&mut self) {
            TEST_NOW.with(|c| c.set(None));
        }
    }

    /// Advance the current thread's installed override by `us`
    /// microseconds. Equivalent to [`TestClock::advance`], but callable
    /// from contexts that demand `Sync` closures (a candidate probe),
    /// where holding a `&TestClock` — deliberately `!Sync` — is not
    /// possible. Panics if no override is installed on this thread.
    pub fn advance_test_clock(us: u64) {
        TEST_NOW.with(|c| {
            let now = c.get().expect("no test clock installed on this thread");
            c.set(Some(now.saturating_add(us)));
        });
    }
}

/// An absolute point on the budget clock by which a search must answer.
///
/// Unlike [`SearchBudget::max_wall`] — a relative allowance started when
/// the search starts — a deadline is anchored by the *caller*, so time a
/// request spends queued before the search begins counts against it. A
/// search whose deadline has already passed degrades on its first
/// candidate check.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Deadline {
    at_us: u64,
}

impl Deadline {
    /// A deadline at an absolute budget-clock reading (microseconds).
    pub fn at_micros(at_us: u64) -> Deadline {
        Deadline { at_us }
    }

    /// A deadline `d` from now on the budget clock.
    pub fn after(d: Duration) -> Deadline {
        let d_us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        Deadline { at_us: clock::now_micros().saturating_add(d_us) }
    }

    /// A deadline `ms` milliseconds from now on the budget clock.
    pub fn after_millis(ms: u64) -> Deadline {
        Deadline::after(Duration::from_millis(ms))
    }

    /// The absolute budget-clock reading, in microseconds.
    pub fn as_micros(self) -> u64 {
        self.at_us
    }

    /// True once the budget clock has reached the deadline.
    pub fn is_expired(self) -> bool {
        clock::now_micros() >= self.at_us
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(self) -> Duration {
        Duration::from_micros(self.at_us.saturating_sub(clock::now_micros()))
    }
}

/// A cooperative cancellation flag shared between a search and its
/// controller.
///
/// The searches poll the token once per screened candidate; setting it
/// makes them wind down with a [`BudgetLimit::Cancelled`] degradation
/// within one candidate's latency. Cloning shares the flag.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Set the flag. Idempotent; there is no way to un-cancel.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// Resource limits for a search. The default is unlimited.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchBudget {
    /// Maximum number of schedule candidates screened.
    pub max_candidates: Option<u64>,
    /// Maximum number of branch-and-bound nodes (ILP searches).
    pub max_nodes: Option<u64>,
    /// Maximum wall-clock time.
    pub max_wall: Option<Duration>,
    /// Absolute deadline on the budget clock (caller-anchored; queueing
    /// delay counts, unlike `max_wall`).
    pub deadline: Option<Deadline>,
}

impl SearchBudget {
    /// No limits: searches run to completion (the pre-budget behaviour).
    pub fn unlimited() -> SearchBudget {
        SearchBudget::default()
    }

    /// Budget limited to `n` candidates.
    pub fn candidates(n: u64) -> SearchBudget {
        SearchBudget { max_candidates: Some(n), ..SearchBudget::default() }
    }

    /// Budget limited to `n` branch-and-bound nodes.
    pub fn nodes(n: u64) -> SearchBudget {
        SearchBudget { max_nodes: Some(n), ..SearchBudget::default() }
    }

    /// Budget limited to `d` of wall-clock time.
    pub fn wall_clock(d: Duration) -> SearchBudget {
        SearchBudget { max_wall: Some(d), ..SearchBudget::default() }
    }

    /// Budget limited by an absolute deadline.
    pub fn until(d: Deadline) -> SearchBudget {
        SearchBudget { deadline: Some(d), ..SearchBudget::default() }
    }

    /// Add a candidate-count limit.
    pub fn with_candidates(mut self, n: u64) -> SearchBudget {
        self.max_candidates = Some(n);
        self
    }

    /// Add a node limit.
    pub fn with_nodes(mut self, n: u64) -> SearchBudget {
        self.max_nodes = Some(n);
        self
    }

    /// Add a wall-clock limit.
    pub fn with_wall_clock(mut self, d: Duration) -> SearchBudget {
        self.max_wall = Some(d);
        self
    }

    /// Add an absolute deadline.
    pub fn with_deadline(mut self, d: Deadline) -> SearchBudget {
        self.deadline = Some(d);
        self
    }

    /// True when no limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_candidates.is_none()
            && self.max_nodes.is_none()
            && self.max_wall.is_none()
            && self.deadline.is_none()
    }

    /// Start metering against this budget.
    pub fn start(&self) -> BudgetMeter {
        BudgetMeter { budget: *self, started_us: clock::now_micros(), candidates: 0, nodes: 0 }
    }
}

/// Running tally of work performed against a [`SearchBudget`].
#[derive(Clone, Debug)]
pub struct BudgetMeter {
    budget: SearchBudget,
    started_us: u64,
    /// Candidates charged so far.
    pub candidates: u64,
    /// Nodes charged so far.
    pub nodes: u64,
}

impl BudgetMeter {
    /// Charge one screened candidate. Returns the limit that tripped,
    /// if any (the charged candidate itself is still within budget; the
    /// *next* one would not be).
    pub fn charge_candidate(&mut self) -> Option<BudgetLimit> {
        self.candidates += 1;
        if let Some(max) = self.budget.max_candidates {
            if self.candidates >= max {
                return Some(BudgetLimit::Candidates);
            }
        }
        self.check_wall()
    }

    /// Charge `n` branch-and-bound nodes.
    pub fn charge_nodes(&mut self, n: u64) -> Option<BudgetLimit> {
        self.nodes += n;
        if let Some(max) = self.budget.max_nodes {
            if self.nodes >= max {
                return Some(BudgetLimit::Nodes);
            }
        }
        self.check_wall()
    }

    /// Branch-and-bound nodes still available (for passing down to the
    /// ILP solver's own node cap). `None` means unlimited.
    pub fn nodes_remaining(&self) -> Option<u64> {
        self.budget.max_nodes.map(|max| max.saturating_sub(self.nodes))
    }

    /// Candidates still available. `None` means unlimited.
    pub fn candidates_remaining(&self) -> Option<u64> {
        self.budget.max_candidates.map(|max| max.saturating_sub(self.candidates))
    }

    /// Check the time limits: the relative wall-clock cap and the
    /// absolute deadline. (Kept under the pre-deadline name; every
    /// charge path funnels through it.)
    pub fn check_wall(&self) -> Option<BudgetLimit> {
        if self.budget.max_wall.is_none() && self.budget.deadline.is_none() {
            return None;
        }
        let now = clock::now_micros();
        if let Some(max) = self.budget.max_wall {
            let max_us = u64::try_from(max.as_micros()).unwrap_or(u64::MAX);
            if now.saturating_sub(self.started_us) >= max_us {
                return Some(BudgetLimit::WallClock);
            }
        }
        if let Some(d) = self.budget.deadline {
            if now >= d.as_micros() {
                return Some(BudgetLimit::Deadline);
            }
        }
        None
    }
}

/// How much trust a search result carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Certification {
    /// The search ran to completion; the mapping is provably optimal
    /// for its objective (first accepted candidate in increasing-cost
    /// order, Theorem 2.1).
    Optimal,
    /// A budget limit tripped; the mapping is valid and conflict-free
    /// but may be suboptimal.
    BestEffort {
        /// Candidates screened before degradation.
        candidates_examined: u64,
    },
    /// The candidate space (up to the configured objective cap) was
    /// exhausted without finding any acceptable mapping.
    Infeasible,
}

impl Certification {
    /// True for [`Certification::Optimal`].
    pub fn is_optimal(&self) -> bool {
        matches!(self, Certification::Optimal)
    }

    /// True for [`Certification::BestEffort`].
    pub fn is_best_effort(&self) -> bool {
        matches!(self, Certification::BestEffort { .. })
    }
}

impl std::fmt::Display for Certification {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Certification::Optimal => write!(f, "optimal"),
            Certification::BestEffort { candidates_examined } => {
                write!(f, "best-effort (budget exhausted after {candidates_examined} candidates)")
            }
            Certification::Infeasible => write!(f, "infeasible"),
        }
    }
}

/// Which solver route produced a [`SearchOutcome`].
///
/// Orthogonal to [`Certification`]: an ILP-escalated answer can still be
/// `Optimal` (the decomposition proves optimality within its entry bound),
/// but downstream consumers that depend on the *enumerative* tie-break pin
/// (the schedule-family fitter, warm-start certificates) must not treat it
/// as a `TieBreak::LexMax` representative — the ILP route makes no promise
/// about which optimal schedule it returns among ties.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SolveRoute {
    /// Plain enumerative search (Procedure 5.1), honoring the configured
    /// tie-break pin.
    #[default]
    Enumeration,
    /// Enumeration escalated mid-search to the ILP decomposition via a
    /// [`HybridPolicy`](crate::HybridPolicy).
    HybridIlp,
}

/// A search result tagged with its [`Certification`].
///
/// `mapping` is `Some` exactly when the certification is `Optimal` or
/// `BestEffort`; an `Infeasible` outcome carries no mapping.
#[derive(Clone, Debug)]
pub struct SearchOutcome<T> {
    /// The mapping found, if any.
    pub mapping: Option<T>,
    /// Trust level of the result.
    pub certification: Certification,
    /// Total candidates screened by the search.
    pub candidates_examined: u64,
    /// Per-stage search effort counters (see [`SearchTelemetry`]).
    pub telemetry: SearchTelemetry,
    /// Which solver route produced this outcome.
    pub route: SolveRoute,
}

impl<T> SearchOutcome<T> {
    /// A completed search with a provably optimal result.
    pub fn optimal(mapping: T, candidates_examined: u64) -> SearchOutcome<T> {
        SearchOutcome {
            mapping: Some(mapping),
            certification: Certification::Optimal,
            candidates_examined,
            telemetry: SearchTelemetry::default(),
            route: SolveRoute::default(),
        }
    }

    /// A budget-degraded but valid result.
    pub fn best_effort(mapping: T, candidates_examined: u64) -> SearchOutcome<T> {
        SearchOutcome {
            mapping: Some(mapping),
            certification: Certification::BestEffort { candidates_examined },
            candidates_examined,
            telemetry: SearchTelemetry::default(),
            route: SolveRoute::default(),
        }
    }

    /// A completed search that proved the candidate space empty.
    pub fn infeasible(candidates_examined: u64) -> SearchOutcome<T> {
        SearchOutcome {
            mapping: None,
            certification: Certification::Infeasible,
            candidates_examined,
            telemetry: SearchTelemetry::default(),
            route: SolveRoute::default(),
        }
    }

    /// Attach search telemetry (builder style, used by the searches).
    pub fn with_telemetry(mut self, telemetry: SearchTelemetry) -> SearchOutcome<T> {
        self.telemetry = telemetry;
        self
    }

    /// Tag the outcome with the solver route that produced it (builder
    /// style, used by the searches).
    pub fn with_route(mut self, route: SolveRoute) -> SearchOutcome<T> {
        self.route = route;
        self
    }

    /// The mapping, discarding the certification.
    pub fn into_mapping(self) -> Option<T> {
        self.mapping
    }

    /// Borrow the mapping.
    pub fn mapping(&self) -> Option<&T> {
        self.mapping.as_ref()
    }

    /// True when the result is certified optimal.
    pub fn is_optimal(&self) -> bool {
        self.certification.is_optimal()
    }

    /// Unwrap a mapping that must be certified optimal; panics (with
    /// the caller's message) otherwise. Intended for tests and examples
    /// where optimality is part of the claim being checked.
    pub fn expect_optimal(self, msg: &str) -> T {
        assert!(self.certification.is_optimal(), "{msg}: certification was {}", self.certification);
        self.mapping.expect(msg)
    }

    /// Map the carried mapping type.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> SearchOutcome<U> {
        SearchOutcome {
            mapping: self.mapping.map(f),
            certification: self.certification,
            candidates_examined: self.candidates_examined,
            telemetry: self.telemetry,
            route: self.route,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let mut meter = SearchBudget::unlimited().start();
        for _ in 0..10_000 {
            assert_eq!(meter.charge_candidate(), None);
        }
        assert_eq!(meter.charge_nodes(1 << 40), None);
    }

    #[test]
    fn candidate_budget_trips_at_limit() {
        let mut meter = SearchBudget::candidates(3).start();
        assert_eq!(meter.charge_candidate(), None);
        assert_eq!(meter.charge_candidate(), None);
        assert_eq!(meter.charge_candidate(), Some(BudgetLimit::Candidates));
        assert_eq!(meter.candidates, 3);
    }

    #[test]
    fn node_budget_trips_and_reports_remaining() {
        let mut meter = SearchBudget::nodes(100).start();
        assert_eq!(meter.charge_nodes(40), None);
        assert_eq!(meter.nodes_remaining(), Some(60));
        assert_eq!(meter.charge_nodes(60), Some(BudgetLimit::Nodes));
        assert_eq!(meter.nodes_remaining(), Some(0));
    }

    #[test]
    fn zero_wall_clock_trips_immediately() {
        let meter = SearchBudget::wall_clock(Duration::ZERO).start();
        assert_eq!(meter.check_wall(), Some(BudgetLimit::WallClock));
    }

    #[test]
    fn builder_composes_limits() {
        let b = SearchBudget::unlimited()
            .with_candidates(5)
            .with_nodes(7)
            .with_wall_clock(Duration::from_secs(1));
        assert_eq!(b.max_candidates, Some(5));
        assert_eq!(b.max_nodes, Some(7));
        assert!(!b.is_unlimited());
        assert!(SearchBudget::unlimited().is_unlimited());
        assert!(!SearchBudget::until(Deadline::at_micros(u64::MAX)).is_unlimited());
    }

    #[test]
    fn test_clock_drives_deadline_expiry() {
        let tc = clock::TestClock::start_at(1_000);
        let d = Deadline::after_millis(5); // expires at 6_000 µs
        assert_eq!(d.as_micros(), 6_000);
        assert!(!d.is_expired());
        assert_eq!(d.remaining(), Duration::from_millis(5));

        let mut meter = SearchBudget::until(d).start();
        assert_eq!(meter.charge_candidate(), None);
        tc.advance(4_999);
        assert_eq!(meter.charge_candidate(), None);
        tc.advance(1);
        assert!(d.is_expired());
        assert_eq!(meter.charge_candidate(), Some(BudgetLimit::Deadline));
        assert_eq!(meter.check_wall(), Some(BudgetLimit::Deadline));
    }

    #[test]
    fn test_clock_drives_wall_budget_too() {
        let tc = clock::TestClock::start_at(0);
        let meter = SearchBudget::wall_clock(Duration::from_millis(2)).start();
        assert_eq!(meter.check_wall(), None);
        tc.advance(2_000);
        assert_eq!(meter.check_wall(), Some(BudgetLimit::WallClock));
    }

    #[test]
    fn wall_clock_trips_before_deadline_when_both_expired() {
        let tc = clock::TestClock::start_at(0);
        let meter = SearchBudget::wall_clock(Duration::ZERO)
            .with_deadline(Deadline::at_micros(0))
            .start();
        let _ = &tc;
        assert_eq!(meter.check_wall(), Some(BudgetLimit::WallClock));
    }

    #[test]
    fn test_clock_is_removed_on_drop() {
        {
            let _tc = clock::TestClock::start_at(u64::MAX);
            assert_eq!(clock::now_micros(), u64::MAX);
        }
        // Back on the real monotonic clock: ordered, and far from MAX.
        let a = clock::now_micros();
        let b = clock::now_micros();
        assert!(b >= a);
        assert_ne!(a, u64::MAX, "override leaked past its scope");
    }

    #[test]
    fn cancel_token_is_shared_and_sticky() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled() && !u.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled() && u.is_cancelled());
        u.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn outcome_constructors_are_consistent() {
        let o = SearchOutcome::optimal("m", 4);
        assert!(o.is_optimal());
        assert_eq!(o.into_mapping(), Some("m"));

        let b = SearchOutcome::best_effort("m", 9);
        assert!(b.certification.is_best_effort());
        assert_eq!(b.candidates_examined, 9);

        let i: SearchOutcome<&str> = SearchOutcome::infeasible(12);
        assert_eq!(i.certification, Certification::Infeasible);
        assert!(i.mapping().is_none());
    }

    #[test]
    #[should_panic(expected = "best-effort")]
    fn expect_optimal_rejects_degraded_results() {
        SearchOutcome::best_effort((), 1).expect_optimal("must be optimal");
    }

    #[test]
    fn certification_display() {
        assert_eq!(Certification::Optimal.to_string(), "optimal");
        assert!(Certification::BestEffort { candidates_examined: 3 }
            .to_string()
            .contains("3 candidates"));
        assert_eq!(Certification::Infeasible.to_string(), "infeasible");
    }
}
