//! Resource budgets and graceful degradation for the searches.
//!
//! Procedure 5.1, the ILP decomposition and the Problem 6.1/6.2
//! searches all enumerate candidate spaces whose size grows
//! combinatorially with the extents `μ`. A [`SearchBudget`] bounds the
//! work (candidates screened, branch-and-bound nodes, wall-clock time);
//! when a limit trips, the searches degrade gracefully: they return the
//! best mapping found so far — or a cheap deterministic fallback — tagged
//! with a [`Certification`] instead of hanging or panicking.
//!
//! Degradation with a candidate budget is **deterministic**: the
//! enumeration order is fixed, so the same budget always yields the same
//! outcome. Wall-clock budgets are inherently machine-dependent and
//! reproducibility is limited to "some prefix of the same ordered
//! enumeration".

use crate::error::BudgetLimit;
use crate::metrics::SearchTelemetry;
use std::time::{Duration, Instant};

/// Resource limits for a search. The default is unlimited.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchBudget {
    /// Maximum number of schedule candidates screened.
    pub max_candidates: Option<u64>,
    /// Maximum number of branch-and-bound nodes (ILP searches).
    pub max_nodes: Option<u64>,
    /// Maximum wall-clock time.
    pub max_wall: Option<Duration>,
}

impl SearchBudget {
    /// No limits: searches run to completion (the pre-budget behaviour).
    pub fn unlimited() -> SearchBudget {
        SearchBudget::default()
    }

    /// Budget limited to `n` candidates.
    pub fn candidates(n: u64) -> SearchBudget {
        SearchBudget { max_candidates: Some(n), ..SearchBudget::default() }
    }

    /// Budget limited to `n` branch-and-bound nodes.
    pub fn nodes(n: u64) -> SearchBudget {
        SearchBudget { max_nodes: Some(n), ..SearchBudget::default() }
    }

    /// Budget limited to `d` of wall-clock time.
    pub fn wall_clock(d: Duration) -> SearchBudget {
        SearchBudget { max_wall: Some(d), ..SearchBudget::default() }
    }

    /// Add a candidate-count limit.
    pub fn with_candidates(mut self, n: u64) -> SearchBudget {
        self.max_candidates = Some(n);
        self
    }

    /// Add a node limit.
    pub fn with_nodes(mut self, n: u64) -> SearchBudget {
        self.max_nodes = Some(n);
        self
    }

    /// Add a wall-clock limit.
    pub fn with_wall_clock(mut self, d: Duration) -> SearchBudget {
        self.max_wall = Some(d);
        self
    }

    /// True when no limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_candidates.is_none() && self.max_nodes.is_none() && self.max_wall.is_none()
    }

    /// Start metering against this budget.
    pub fn start(&self) -> BudgetMeter {
        BudgetMeter { budget: *self, started: Instant::now(), candidates: 0, nodes: 0 }
    }
}

/// Running tally of work performed against a [`SearchBudget`].
#[derive(Clone, Debug)]
pub struct BudgetMeter {
    budget: SearchBudget,
    started: Instant,
    /// Candidates charged so far.
    pub candidates: u64,
    /// Nodes charged so far.
    pub nodes: u64,
}

impl BudgetMeter {
    /// Charge one screened candidate. Returns the limit that tripped,
    /// if any (the charged candidate itself is still within budget; the
    /// *next* one would not be).
    pub fn charge_candidate(&mut self) -> Option<BudgetLimit> {
        self.candidates += 1;
        if let Some(max) = self.budget.max_candidates {
            if self.candidates >= max {
                return Some(BudgetLimit::Candidates);
            }
        }
        self.check_wall()
    }

    /// Charge `n` branch-and-bound nodes.
    pub fn charge_nodes(&mut self, n: u64) -> Option<BudgetLimit> {
        self.nodes += n;
        if let Some(max) = self.budget.max_nodes {
            if self.nodes >= max {
                return Some(BudgetLimit::Nodes);
            }
        }
        self.check_wall()
    }

    /// Branch-and-bound nodes still available (for passing down to the
    /// ILP solver's own node cap). `None` means unlimited.
    pub fn nodes_remaining(&self) -> Option<u64> {
        self.budget.max_nodes.map(|max| max.saturating_sub(self.nodes))
    }

    /// Candidates still available. `None` means unlimited.
    pub fn candidates_remaining(&self) -> Option<u64> {
        self.budget.max_candidates.map(|max| max.saturating_sub(self.candidates))
    }

    /// Check only the wall clock.
    pub fn check_wall(&self) -> Option<BudgetLimit> {
        if let Some(max) = self.budget.max_wall {
            if self.started.elapsed() >= max {
                return Some(BudgetLimit::WallClock);
            }
        }
        None
    }
}

/// How much trust a search result carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Certification {
    /// The search ran to completion; the mapping is provably optimal
    /// for its objective (first accepted candidate in increasing-cost
    /// order, Theorem 2.1).
    Optimal,
    /// A budget limit tripped; the mapping is valid and conflict-free
    /// but may be suboptimal.
    BestEffort {
        /// Candidates screened before degradation.
        candidates_examined: u64,
    },
    /// The candidate space (up to the configured objective cap) was
    /// exhausted without finding any acceptable mapping.
    Infeasible,
}

impl Certification {
    /// True for [`Certification::Optimal`].
    pub fn is_optimal(&self) -> bool {
        matches!(self, Certification::Optimal)
    }

    /// True for [`Certification::BestEffort`].
    pub fn is_best_effort(&self) -> bool {
        matches!(self, Certification::BestEffort { .. })
    }
}

impl std::fmt::Display for Certification {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Certification::Optimal => write!(f, "optimal"),
            Certification::BestEffort { candidates_examined } => {
                write!(f, "best-effort (budget exhausted after {candidates_examined} candidates)")
            }
            Certification::Infeasible => write!(f, "infeasible"),
        }
    }
}

/// A search result tagged with its [`Certification`].
///
/// `mapping` is `Some` exactly when the certification is `Optimal` or
/// `BestEffort`; an `Infeasible` outcome carries no mapping.
#[derive(Clone, Debug)]
pub struct SearchOutcome<T> {
    /// The mapping found, if any.
    pub mapping: Option<T>,
    /// Trust level of the result.
    pub certification: Certification,
    /// Total candidates screened by the search.
    pub candidates_examined: u64,
    /// Per-stage search effort counters (see [`SearchTelemetry`]).
    pub telemetry: SearchTelemetry,
}

impl<T> SearchOutcome<T> {
    /// A completed search with a provably optimal result.
    pub fn optimal(mapping: T, candidates_examined: u64) -> SearchOutcome<T> {
        SearchOutcome {
            mapping: Some(mapping),
            certification: Certification::Optimal,
            candidates_examined,
            telemetry: SearchTelemetry::default(),
        }
    }

    /// A budget-degraded but valid result.
    pub fn best_effort(mapping: T, candidates_examined: u64) -> SearchOutcome<T> {
        SearchOutcome {
            mapping: Some(mapping),
            certification: Certification::BestEffort { candidates_examined },
            candidates_examined,
            telemetry: SearchTelemetry::default(),
        }
    }

    /// A completed search that proved the candidate space empty.
    pub fn infeasible(candidates_examined: u64) -> SearchOutcome<T> {
        SearchOutcome {
            mapping: None,
            certification: Certification::Infeasible,
            candidates_examined,
            telemetry: SearchTelemetry::default(),
        }
    }

    /// Attach search telemetry (builder style, used by the searches).
    pub fn with_telemetry(mut self, telemetry: SearchTelemetry) -> SearchOutcome<T> {
        self.telemetry = telemetry;
        self
    }

    /// The mapping, discarding the certification.
    pub fn into_mapping(self) -> Option<T> {
        self.mapping
    }

    /// Borrow the mapping.
    pub fn mapping(&self) -> Option<&T> {
        self.mapping.as_ref()
    }

    /// True when the result is certified optimal.
    pub fn is_optimal(&self) -> bool {
        self.certification.is_optimal()
    }

    /// Unwrap a mapping that must be certified optimal; panics (with
    /// the caller's message) otherwise. Intended for tests and examples
    /// where optimality is part of the claim being checked.
    pub fn expect_optimal(self, msg: &str) -> T {
        assert!(self.certification.is_optimal(), "{msg}: certification was {}", self.certification);
        self.mapping.expect(msg)
    }

    /// Map the carried mapping type.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> SearchOutcome<U> {
        SearchOutcome {
            mapping: self.mapping.map(f),
            certification: self.certification,
            candidates_examined: self.candidates_examined,
            telemetry: self.telemetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let mut meter = SearchBudget::unlimited().start();
        for _ in 0..10_000 {
            assert_eq!(meter.charge_candidate(), None);
        }
        assert_eq!(meter.charge_nodes(1 << 40), None);
    }

    #[test]
    fn candidate_budget_trips_at_limit() {
        let mut meter = SearchBudget::candidates(3).start();
        assert_eq!(meter.charge_candidate(), None);
        assert_eq!(meter.charge_candidate(), None);
        assert_eq!(meter.charge_candidate(), Some(BudgetLimit::Candidates));
        assert_eq!(meter.candidates, 3);
    }

    #[test]
    fn node_budget_trips_and_reports_remaining() {
        let mut meter = SearchBudget::nodes(100).start();
        assert_eq!(meter.charge_nodes(40), None);
        assert_eq!(meter.nodes_remaining(), Some(60));
        assert_eq!(meter.charge_nodes(60), Some(BudgetLimit::Nodes));
        assert_eq!(meter.nodes_remaining(), Some(0));
    }

    #[test]
    fn zero_wall_clock_trips_immediately() {
        let meter = SearchBudget::wall_clock(Duration::ZERO).start();
        assert_eq!(meter.check_wall(), Some(BudgetLimit::WallClock));
    }

    #[test]
    fn builder_composes_limits() {
        let b = SearchBudget::unlimited()
            .with_candidates(5)
            .with_nodes(7)
            .with_wall_clock(Duration::from_secs(1));
        assert_eq!(b.max_candidates, Some(5));
        assert_eq!(b.max_nodes, Some(7));
        assert!(!b.is_unlimited());
        assert!(SearchBudget::unlimited().is_unlimited());
    }

    #[test]
    fn outcome_constructors_are_consistent() {
        let o = SearchOutcome::optimal("m", 4);
        assert!(o.is_optimal());
        assert_eq!(o.into_mapping(), Some("m"));

        let b = SearchOutcome::best_effort("m", 9);
        assert!(b.certification.is_best_effort());
        assert_eq!(b.candidates_examined, 9);

        let i: SearchOutcome<&str> = SearchOutcome::infeasible(12);
        assert_eq!(i.certification, Certification::Infeasible);
        assert!(i.mapping().is_none());
    }

    #[test]
    #[should_panic(expected = "best-effort")]
    fn expect_optimal_rejects_degraded_results() {
        SearchOutcome::best_effort((), 1).expect_optimal("must be optimal");
    }

    #[test]
    fn certification_display() {
        assert_eq!(Certification::Optimal.to_string(), "optimal");
        assert!(Certification::BestEffort { candidates_examined: 3 }
            .to_string()
            .contains("3 candidates"));
        assert_eq!(Certification::Infeasible.to_string(), "infeasible");
    }
}
