//! Resource-aware Pareto frontiers over conflict-free mappings.
//!
//! Procedure 5.1 minimizes time alone; Problem 6.1 minimizes PEs +
//! wires under a fixed schedule. Real array deployments trade those
//! axes off — and per-link bandwidth besides — so this module returns
//! the *full non-dominated set* over
//!
//! > time × processors × wire length (× peak link bandwidth)
//!
//! instead of a single design. Both classic searches fall out as
//! degenerate corners: with a fixed space map the frontier collapses to
//! the minimum-time vector whose witness is exactly Procedure 5.1's
//! `LexMax` winner, and with a fixed schedule the minimum `PEs + wires`
//! corner is exactly [`crate::SpaceSearch`]'s `LexMax` winner (see
//! [`ParetoFrontier::time_corner`] / [`ParetoFrontier::space_corner`]
//! and `tests/pareto_props.rs`).
//!
//! The screening per candidate is the unified core every search shares:
//! schedule validity, fixed-prefix Hermite completion, the rank gate,
//! and the exact kernel-lattice conflict test (optionally memoized).
//! The optional bandwidth axis is fed by an *injected probe* — the
//! simulator's per-link load accounting (`cfmap_systolic::peak_link_load`)
//! — so this crate stays independent of the simulator while the service
//! and CLI report exactly what the simulator would measure.
//!
//! **Determinism.** The frontier is a pure function of the problem and
//! the knobs: one witness design is kept per distinct objective vector —
//! the lexicographically greatest `(space rows, schedule)` among all
//! accepted candidates achieving that vector — so thread counts, the
//! symmetry quotient, and the conflict memo cannot change the result
//! (`tests/pareto_props.rs` proves all three equalities).

use crate::canon::Stabilizer;
use crate::conditions::{check, check_memoized, rule_for, ConditionKind};
use crate::conflict::ConflictAnalysis;
use crate::error::CfmapError;
use crate::mapping::{MappingMatrix, SpaceMap};
use crate::metrics::SearchTelemetry;
use crate::search::{weighted_objective, Procedure51, SymmetryMode, TieBreak};
use crate::space_search::{collect_rows, is_class_representative, vlsi_cost};
use cfmap_intlin::dominance::non_dominated_indices;
use cfmap_intlin::{hnf_prefix_i64, HnfPrefix, HnfWorkspace, IMat, Rat};
use cfmap_model::{LinearSchedule, Uda};
use std::collections::{BTreeMap, BTreeSet};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// The injected bandwidth evaluator: peak per-link load of a design,
/// or `None` when the design is mesh-unroutable. Production installs
/// `cfmap_systolic::peak_link_load`; tests may install fakes.
pub type BandwidthProbe<'a> = dyn Fn(&MappingMatrix) -> Option<u64> + Sync + 'a;

/// Per-array resource budgets and the axes the frontier tracks.
///
/// Budgets are hard feasibility filters: a candidate exceeding any set
/// budget is discarded before dominance is even considered, so a
/// tighter model can only shrink the frontier. `include_bandwidth`
/// adds the bandwidth axis to the objective vector without bounding it
/// (setting `max_bandwidth` implies the axis).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResourceModel {
    /// Upper bound on processor (site) count, if any.
    pub max_processors: Option<usize>,
    /// Upper bound on total wire length `Σᵢ ‖S·d̄ᵢ‖₁`, if any.
    pub max_wires: Option<i64>,
    /// Upper bound on peak per-link bandwidth (data per link per
    /// cycle, all channels aggregated), if any. Requires a bandwidth
    /// probe (see [`ParetoSearch::bandwidth_probe`]).
    pub max_bandwidth: Option<u64>,
    /// Track bandwidth as a fourth objective axis even when unbounded.
    pub include_bandwidth: bool,
}

impl ResourceModel {
    /// No budgets, three objective axes — the permissive default.
    pub fn unconstrained() -> ResourceModel {
        ResourceModel::default()
    }

    /// `true` when the objective vector carries the bandwidth axis.
    pub fn tracks_bandwidth(&self) -> bool {
        self.include_bandwidth || self.max_bandwidth.is_some()
    }

    fn admits_space(&self, processors: usize, wires: i64) -> bool {
        self.max_processors.is_none_or(|b| processors <= b)
            && self.max_wires.is_none_or(|b| wires <= b)
    }

    fn admits_bandwidth(&self, bandwidth: u64) -> bool {
        self.max_bandwidth.is_none_or(|b| bandwidth <= b)
    }
}

/// One non-dominated design.
#[derive(Clone, Debug)]
pub struct ParetoPoint {
    /// The space map `S`.
    pub space: SpaceMap,
    /// The schedule `Π`.
    pub schedule: LinearSchedule,
    /// The full mapping `T = [S; Π]`.
    pub mapping: MappingMatrix,
    /// Makespan `1 + Σ|π_i|μ_i` (Equation 2.7).
    pub total_time: i64,
    /// Processor (site) count of the array.
    pub processors: usize,
    /// Total wire length `Σᵢ ‖S·d̄ᵢ‖₁`.
    pub wires: i64,
    /// Peak per-link bandwidth; `Some` iff the model tracks it.
    pub bandwidth: Option<u64>,
}

impl ParetoPoint {
    /// The objective vector dominance is decided on (minimization):
    /// `[time, processors, wires]`, plus bandwidth when tracked.
    pub fn objective_vector(&self) -> Vec<Rat> {
        let mut v = vec![
            Rat::from_i64(self.total_time),
            Rat::from_i64(i64::try_from(self.processors).unwrap_or(i64::MAX)),
            Rat::from_i64(self.wires),
        ];
        if let Some(bw) = self.bandwidth {
            v.push(Rat::from_i64(i64::try_from(bw).unwrap_or(i64::MAX)));
        }
        v
    }

    /// The rows of `S` as machine integers.
    pub fn space_rows(&self) -> Vec<Vec<i64>> {
        (0..self.space.array_dims())
            .map(|r| self.space.as_mat().row(r).to_i64s().expect("space entries fit i64"))
            .collect()
    }

    /// The witness identity: per distinct objective vector the frontier
    /// keeps the accepted candidate maximizing this key.
    fn witness_key(&self) -> (Vec<Vec<i64>>, Vec<i64>) {
        (self.space_rows(), self.schedule.as_slice().to_vec())
    }
}

/// The exact non-dominated set, with effort accounting.
#[derive(Clone, Debug)]
pub struct ParetoFrontier {
    /// Non-dominated points in ascending objective-vector order (time
    /// first), one witness per distinct vector.
    pub points: Vec<ParetoPoint>,
    /// Accepted, budget-admissible designs that did not survive the
    /// dominance filter (dominated vectors plus duplicate witnesses).
    pub dominated_pruned: u64,
    /// Accepted, budget-admissible designs seen in total.
    pub points_seen: u64,
    /// Candidates screened across the whole search.
    pub candidates_examined: u64,
    /// Merged screening telemetry.
    pub telemetry: SearchTelemetry,
}

impl ParetoFrontier {
    /// Number of frontier points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no feasible design exists under the model.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The time-first corner: minimum makespan, remaining axes as
    /// tie-breaks in ascending vector order. For a fixed-space search
    /// without the bandwidth axis this is bit-identical to
    /// [`Procedure51`] under [`TieBreak::LexMax`].
    pub fn time_corner(&self) -> Option<&ParetoPoint> {
        self.points.first()
    }

    /// The space-first corner: minimum `processors + wires` (Problem
    /// 6.1's combined VLSI cost), ties resolved to the lex-greatest
    /// witness. For a fixed-schedule search without the bandwidth axis
    /// this is bit-identical to [`crate::SpaceSearch`] under
    /// [`TieBreak::LexMax`].
    pub fn space_corner(&self) -> Option<&ParetoPoint> {
        fn cost(p: &ParetoPoint) -> i64 {
            i64::try_from(p.processors).unwrap_or(i64::MAX) + p.wires
        }
        let min_cost = self.points.iter().map(cost).min()?;
        self.points.iter().filter(|p| cost(p) == min_cost).max_by_key(|p| p.witness_key())
    }
}

/// Accumulates accepted designs into one witness per distinct vector
/// (the lex-greatest `(space rows, schedule)` achieving it), then
/// filters to the non-dominated set.
#[derive(Default)]
struct FrontierBuilder {
    by_vector: BTreeMap<Vec<Rat>, ParetoPoint>,
    points_seen: u64,
}

impl FrontierBuilder {
    fn push(&mut self, p: ParetoPoint) {
        self.points_seen += 1;
        match self.by_vector.entry(p.objective_vector()) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                if p.witness_key() > e.get().witness_key() {
                    e.insert(p);
                }
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(p);
            }
        }
    }

    fn finish(self, candidates_examined: u64, telemetry: SearchTelemetry) -> ParetoFrontier {
        let vectors: Vec<Vec<Rat>> = self.by_vector.keys().cloned().collect();
        let keep: BTreeSet<usize> = non_dominated_indices(&vectors).into_iter().collect();
        let mut points = Vec::with_capacity(keep.len());
        for (i, p) in self.by_vector.into_values().enumerate() {
            if keep.contains(&i) {
                points.push(p);
            }
        }
        let dominated_pruned = self.points_seen - points.len() as u64;
        crate::metrics::PARETO_DOMINATED_PRUNED.add(dominated_pruned);
        ParetoFrontier {
            points,
            dominated_pruned,
            points_seen: self.points_seen,
            candidates_examined,
            telemetry,
        }
    }
}

/// One enumerated space row's worth of work: its accepted admissible
/// designs and screening telemetry.
#[derive(Default)]
struct RowScan {
    points: Vec<ParetoPoint>,
    tel: SearchTelemetry,
    /// The symmetry quotient skipped this row as a non-representative
    /// orbit member.
    pruned: bool,
}

/// Multi-objective frontier search. Three scopes, chosen by which side
/// of the mapping is pinned:
///
/// * **fixed space** ([`Self::fixed_space`]) — enumerate schedules for
///   a given `S`, Procedure 5.1's candidate space;
/// * **fixed schedule** ([`Self::fixed_schedule`]) — enumerate
///   canonical 1-row space maps for a given `Π`, Problem 6.1's
///   candidate space;
/// * **joint** (neither pinned) — canonical 1-row space maps crossed
///   with the schedule scan per row.
pub struct ParetoSearch<'a> {
    alg: &'a Uda,
    space: Option<&'a SpaceMap>,
    schedule: Option<&'a LinearSchedule>,
    resources: ResourceModel,
    entry_bound: i64,
    max_objective: Option<i64>,
    symmetry: SymmetryMode,
    memo: bool,
    bandwidth_probe: Option<&'a BandwidthProbe<'a>>,
}

impl<'a> ParetoSearch<'a> {
    /// Start a joint-scope search for `alg`.
    pub fn new(alg: &'a Uda) -> Self {
        ParetoSearch {
            alg,
            space: None,
            schedule: None,
            resources: ResourceModel::unconstrained(),
            entry_bound: 2,
            max_objective: None,
            symmetry: SymmetryMode::default(),
            memo: true,
            bandwidth_probe: None,
        }
    }

    /// Pin the space map; the frontier ranges over schedules only.
    pub fn fixed_space(mut self, space: &'a SpaceMap) -> Self {
        self.space = Some(space);
        self
    }

    /// Pin the schedule; the frontier ranges over space maps only.
    pub fn fixed_schedule(mut self, schedule: &'a LinearSchedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Install resource budgets / extra axes (default: unconstrained).
    pub fn resources(mut self, model: ResourceModel) -> Self {
        self.resources = model;
        self
    }

    /// Bound on `|s_i|` for enumerated space rows (default 2, matching
    /// [`crate::SpaceSearch`] so the corner designs coincide).
    pub fn entry_bound(mut self, bound: i64) -> Self {
        self.entry_bound = bound;
        self
    }

    /// Override the schedule-objective cap (default: Procedure 5.1's
    /// `Σ μ_i(μ_i + 3)`). Unlike [`Procedure51::solve`] the frontier
    /// scan never extends the cap adaptively — the cap *is* the time
    /// horizon of the frontier.
    pub fn max_objective(mut self, cap: i64) -> Self {
        self.max_objective = Some(cap);
        self
    }

    /// Quotient the enumerated space rows by the problem's symmetry
    /// stabilizer (default: [`SymmetryMode::Full`]). Sound because the
    /// witness rule is inherently lex-max: the overall lex-greatest
    /// achiever of a vector is its own orbit's representative, so
    /// quotienting drops only candidates that could never be witnesses.
    /// Ignored while bandwidth is tracked — a stabilizer element with
    /// `Π·G = −Π` reverses time, and per-slot link contention is not
    /// proven orbit-invariant under reversal.
    pub fn symmetry(mut self, mode: SymmetryMode) -> Self {
        self.symmetry = mode;
        self
    }

    /// Route exact conflict verdicts through the process-wide
    /// kernel-lattice memo (default: on); see [`Procedure51::memo`].
    pub fn memo(mut self, on: bool) -> Self {
        self.memo = on;
        self
    }

    /// Install the bandwidth evaluator — `cfmap_systolic::peak_link_load`
    /// in production; injected so cfmap-core stays simulator-free.
    /// Returning `None` marks a design mesh-unroutable: it is skipped,
    /// never admitted with an undefined bandwidth. Required whenever
    /// the model tracks bandwidth.
    pub fn bandwidth_probe(mut self, probe: &'a BandwidthProbe<'a>) -> Self {
        self.bandwidth_probe = Some(probe);
        self
    }

    fn validate(&self) -> Result<(), CfmapError> {
        if self.space.is_some() && self.schedule.is_some() {
            return Err(CfmapError::Unsupported {
                reason: "Pareto search pins a space map or a schedule, not both".to_string(),
            });
        }
        if let Some(space) = self.space {
            if space.dim() != self.alg.dim() {
                return Err(CfmapError::DimensionMismatch {
                    context: "Pareto search: algorithm vs space map".to_string(),
                    expected: self.alg.dim(),
                    actual: space.dim(),
                });
            }
        }
        if let Some(pi) = self.schedule {
            if pi.dim() != self.alg.dim() {
                return Err(CfmapError::DimensionMismatch {
                    context: "Pareto search: algorithm vs schedule".to_string(),
                    expected: self.alg.dim(),
                    actual: pi.dim(),
                });
            }
        }
        if self.resources.tracks_bandwidth() && self.bandwidth_probe.is_none() {
            return Err(CfmapError::Unsupported {
                reason: "bandwidth tracking needs a bandwidth probe \
                         (inject cfmap_systolic::peak_link_load)"
                    .to_string(),
            });
        }
        Ok(())
    }

    /// Run the search; the result is the exact non-dominated set of the
    /// scoped candidate space under the resource model.
    pub fn solve(&self) -> Result<ParetoFrontier, CfmapError> {
        self.validate()?;
        match self.space {
            Some(space) => self.solve_fixed_space(space),
            None => self.solve_rows(1),
        }
    }

    /// [`Self::solve`] with the enumerated space rows sharded over
    /// `threads` workers. Bit-identical to the sequential search: each
    /// row's scan is independent, and the accepted designs are replayed
    /// in row order before the (order-independent) witness dedup and
    /// dominance filter. The fixed-space scope has no row fan-out and
    /// delegates to [`Self::solve`].
    pub fn solve_parallel(&self, threads: usize) -> Result<ParetoFrontier, CfmapError> {
        assert!(threads >= 1, "need at least one worker");
        if threads == 1 || self.space.is_some() {
            return self.solve();
        }
        self.validate()?;
        self.solve_rows(threads)
    }

    /// Evaluate the optional bandwidth axis for an accepted design and
    /// build its point; `None` when the design is mesh-unroutable or a
    /// bandwidth budget rejects it.
    #[allow(clippy::too_many_arguments)]
    fn eval_point(
        &self,
        space: &SpaceMap,
        schedule: LinearSchedule,
        mapping: MappingMatrix,
        total_time: i64,
        processors: usize,
        wires: i64,
    ) -> Option<ParetoPoint> {
        let bandwidth = if self.resources.tracks_bandwidth() {
            let probe = self.bandwidth_probe.expect("validated: probe present when tracking");
            match probe(&mapping) {
                Some(bw) if self.resources.admits_bandwidth(bw) => Some(bw),
                _ => return None,
            }
        } else {
            None
        };
        Some(ParetoPoint {
            space: space.clone(),
            schedule,
            mapping,
            total_time,
            processors,
            wires,
            bandwidth,
        })
    }

    /// Fixed-space scope: one space map, scan schedules with the shared
    /// Procedure 5.1 screening core. Without the bandwidth axis the
    /// scan stops after the first accepting objective level — every
    /// later acceptance shares this map's sites/wires at strictly worse
    /// time, hence is dominated.
    fn solve_fixed_space(&self, space: &SpaceMap) -> Result<ParetoFrontier, CfmapError> {
        let (_, processors, wires) = vlsi_cost(self.alg, space)?;
        let mut fb = FrontierBuilder::default();
        let mut tel = SearchTelemetry::default();
        if self.resources.admits_space(processors, wires) {
            let mut proc =
                Procedure51::new(self.alg, space).tie_break(TieBreak::LexMax).memo(self.memo);
            if let Some(cap) = self.max_objective {
                proc = proc.max_objective(cap);
            }
            let stop_early = !self.resources.tracks_bandwidth();
            tel = proc.scan_accepted(stop_early, &mut |opt| {
                if let Some(p) = self.eval_point(
                    space,
                    opt.schedule,
                    opt.mapping,
                    opt.total_time,
                    processors,
                    wires,
                ) {
                    fb.push(p);
                }
            })?;
        }
        let examined = tel.enumerated;
        Ok(fb.finish(examined, tel))
    }

    /// The active row quotient, or `None` when the mode is off, the
    /// stabilizer is trivial, or bandwidth is tracked (see
    /// [`Self::symmetry`] for why tracking disables it). Fixed-schedule
    /// scope pins `Π` into the stabilizer exactly like
    /// [`crate::SpaceSearch`]; joint scope uses the problem stabilizer.
    fn active_quotient(&self) -> Option<Stabilizer> {
        if self.symmetry != SymmetryMode::Quotient || self.resources.tracks_bandwidth() {
            return None;
        }
        let stab = match self.schedule {
            Some(pi) => crate::canon::stabilizer(self.alg, &SpaceMap::row(pi.as_slice())),
            None => crate::canon::problem_stabilizer(self.alg),
        };
        if stab.is_trivial() {
            return None;
        }
        Some(stab)
    }

    /// The canonical 1-row candidate pool: nonzero rows with entries in
    /// `[-entry_bound, entry_bound]`, first nonzero entry positive,
    /// lex-ascending — exactly [`crate::SpaceSearch`]'s pool, so the
    /// space corner can be compared design-for-design.
    fn candidate_rows(&self) -> Vec<Vec<i64>> {
        let n = self.alg.dim();
        let mut pool: Vec<Vec<i64>> = Vec::new();
        let mut row = vec![0i64; n];
        collect_rows(&mut row, 0, self.entry_bound, &mut |r| {
            if r.iter().all(|&x| x == 0) {
                return;
            }
            if r.iter().find(|&&x| x != 0).is_some_and(|&x| x < 0) {
                return; // canonical sign
            }
            pool.push(r.to_vec());
        });
        pool
    }

    /// Screen one candidate row. `fixed_time` is `Some(makespan)` in
    /// the fixed-schedule scope (where the row itself is the candidate)
    /// and `None` in the joint scope (where a schedule scan runs per
    /// row).
    fn row_accepts(
        &self,
        row: &[i64],
        fixed_time: Option<i64>,
        quotient: Option<&Stabilizer>,
        prefix: Option<&HnfPrefix>,
        ws: &mut HnfWorkspace,
    ) -> Result<RowScan, CfmapError> {
        let mut scan = RowScan::default();
        let rows_vec = vec![row.to_vec()];
        if quotient.is_some_and(|stab| !is_class_representative(stab, &rows_vec)) {
            scan.pruned = true;
            return Ok(scan);
        }
        let space = SpaceMap::row(row);
        let (_, processors, wires) = vlsi_cost(self.alg, &space)?;
        if !self.resources.admits_space(processors, wires) {
            return Ok(scan);
        }
        match (self.schedule, fixed_time) {
            (Some(pi), Some(total_time)) => {
                scan.tel.enumerated += 1;
                let mapping = MappingMatrix::new(space.clone(), pi.clone());
                let refs: Vec<&[i64]> = vec![row];
                let hnf = match prefix.and_then(|p| p.complete_rows(&refs, ws)) {
                    Some(h) => h,
                    None => mapping.hnf(),
                };
                let analysis = ConflictAnalysis::with_hnf(&mapping, &self.alg.index_set, hnf);
                scan.tel.hnf_computations += 1;
                if analysis.rank() != mapping.k() {
                    scan.tel.rejected_rank += 1;
                    return Ok(scan);
                }
                scan.tel.condition_hits.record(rule_for(ConditionKind::Exact, &analysis));
                let verdict = if self.memo {
                    check_memoized(
                        ConditionKind::Exact,
                        &analysis,
                        &self.alg.index_set,
                        &mut scan.tel,
                    )
                } else {
                    check(ConditionKind::Exact, &analysis, &self.alg.index_set)
                };
                if !verdict.accepts() {
                    scan.tel.rejected_conflict += 1;
                    return Ok(scan);
                }
                scan.tel.accepted += 1;
                if let Some(p) = self.eval_point(
                    &space,
                    pi.clone(),
                    mapping,
                    total_time,
                    processors,
                    wires,
                ) {
                    scan.points.push(p);
                }
            }
            _ => {
                let mut proc = Procedure51::new(self.alg, &space).memo(self.memo);
                if let Some(cap) = self.max_objective {
                    proc = proc.max_objective(cap);
                }
                let stop_early = !self.resources.tracks_bandwidth();
                let points = &mut scan.points;
                scan.tel = proc.scan_accepted(stop_early, &mut |opt| {
                    if let Some(p) = self.eval_point(
                        &space,
                        opt.schedule,
                        opt.mapping,
                        opt.total_time,
                        processors,
                        wires,
                    ) {
                        points.push(p);
                    }
                })?;
            }
        }
        Ok(scan)
    }

    /// Fixed-schedule and joint scopes: enumerate the canonical row
    /// pool (optionally quotiented), screen each row, and fold the
    /// accepted designs — in row order, so the parallel path replays to
    /// a bit-identical frontier.
    fn solve_rows(&self, threads: usize) -> Result<ParetoFrontier, CfmapError> {
        let fixed_time = match self.schedule {
            Some(pi) => {
                if !pi.is_valid_for(&self.alg.deps) {
                    // An invalid schedule admits no design at all.
                    return Ok(FrontierBuilder::default().finish(0, SearchTelemetry::default()));
                }
                let t = weighted_objective(pi.as_slice(), self.alg.index_set.mu())
                    .and_then(|o| o.checked_add(1))
                    .ok_or_else(|| CfmapError::Overflow {
                        context: format!(
                            "Pareto search makespan 1 + Σ|π_i|μ_i overflows i64 for Π = {:?}",
                            pi.as_slice()
                        ),
                    })?;
                Some(t)
            }
            None => None,
        };
        let quotient = self.active_quotient();
        let rows = self.candidate_rows();
        let prefix = self
            .schedule
            .and_then(|pi| hnf_prefix_i64(&IMat::from_rows(&[pi.as_slice()])));
        let scans = if threads == 1 {
            let mut ws = HnfWorkspace::new();
            let mut out = Vec::with_capacity(rows.len());
            for row in &rows {
                out.push(self.row_accepts(row, fixed_time, quotient.as_ref(), prefix.as_ref(), &mut ws)?);
            }
            out
        } else {
            self.scan_rows_parallel(&rows, fixed_time, quotient.as_ref(), prefix.as_ref(), threads)?
        };
        let mut fb = FrontierBuilder::default();
        let mut tel = SearchTelemetry::default();
        for scan in scans {
            if scan.pruned {
                tel.orbits_pruned += 1;
                crate::metrics::ORBITS_PRUNED.inc();
                continue;
            }
            tel.merge(&scan.tel);
            for p in scan.points {
                fb.push(p);
            }
        }
        let examined = tel.enumerated;
        Ok(fb.finish(examined, tel))
    }

    /// Shard the row pool over a worker pool with a work-stealing
    /// cursor; results are collected with their row indices and sorted
    /// before folding, so the fold is the sequential one verbatim.
    fn scan_rows_parallel(
        &self,
        rows: &[Vec<i64>],
        fixed_time: Option<i64>,
        quotient: Option<&Stabilizer>,
        prefix: Option<&HnfPrefix>,
        threads: usize,
    ) -> Result<Vec<RowScan>, CfmapError> {
        let cursor = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let panicked = AtomicBool::new(false);
        let error: Mutex<Option<CfmapError>> = Mutex::new(None);
        let collected: Mutex<Vec<(usize, RowScan)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut ws = HnfWorkspace::new();
                    let mut local: Vec<(usize, RowScan)> = Vec::new();
                    loop {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= rows.len() {
                            break;
                        }
                        let out = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            self.row_accepts(&rows[idx], fixed_time, quotient, prefix, &mut ws)
                        }));
                        match out {
                            Ok(Ok(scan)) => local.push((idx, scan)),
                            Ok(Err(e)) => {
                                *error.lock().unwrap() = Some(e);
                                stop.store(true, Ordering::SeqCst);
                                break;
                            }
                            Err(_) => {
                                panicked.store(true, Ordering::SeqCst);
                                stop.store(true, Ordering::SeqCst);
                                break;
                            }
                        }
                    }
                    collected.lock().unwrap().extend(local);
                });
            }
        });
        if panicked.load(Ordering::SeqCst) {
            return Err(CfmapError::Internal {
                context: "Pareto solve_parallel worker panicked".to_string(),
            });
        }
        if let Some(e) = error.lock().unwrap().take() {
            return Err(e);
        }
        let mut all = collected.into_inner().unwrap();
        all.sort_by_key(|(i, _)| *i);
        Ok(all.into_iter().map(|(_, s)| s).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfmap_model::algorithms;

    #[test]
    fn fixed_space_time_corner_is_procedure51_lexmax() {
        let alg = algorithms::matmul(4);
        let space = SpaceMap::row(&[1, 1, -1]);
        let frontier =
            ParetoSearch::new(&alg).fixed_space(&space).solve().expect("frontier solves");
        assert_eq!(frontier.len(), 1, "fixed space, 3 axes: a single vector survives");
        let corner = frontier.time_corner().unwrap();
        let opt = Procedure51::new(&alg, &space)
            .tie_break(TieBreak::LexMax)
            .solve()
            .unwrap()
            .expect_optimal("matmul is feasible");
        assert_eq!(corner.total_time, opt.total_time);
        assert_eq!(corner.schedule.as_slice(), opt.schedule.as_slice());
        assert_eq!(corner.total_time, 25, "the paper's μ=4 matmul makespan");
    }

    #[test]
    fn fixed_schedule_space_corner_is_space_search_lexmax() {
        let alg = algorithms::matmul(4);
        let pi = LinearSchedule::new(&[1, 4, 1]);
        let frontier =
            ParetoSearch::new(&alg).fixed_schedule(&pi).solve().expect("frontier solves");
        assert!(!frontier.is_empty());
        let corner = frontier.space_corner().unwrap();
        let sol = crate::SpaceSearch::new(&alg, &pi)
            .tie_break(TieBreak::LexMax)
            .solve()
            .unwrap()
            .expect_optimal("some S works");
        assert_eq!(corner.space_rows(), vec![sol
            .space
            .as_mat()
            .row(0)
            .to_i64s()
            .unwrap()]);
        assert_eq!(corner.processors, sol.processors);
        assert_eq!(corner.wires, sol.wire_length);
    }

    #[test]
    fn frontier_points_are_mutually_non_dominated() {
        let alg = algorithms::matmul(3);
        let frontier = ParetoSearch::new(&alg).solve().expect("joint frontier solves");
        assert!(!frontier.is_empty());
        for (i, a) in frontier.points.iter().enumerate() {
            for (j, b) in frontier.points.iter().enumerate() {
                if i != j {
                    assert!(
                        !cfmap_intlin::dominance::dominates(
                            &a.objective_vector(),
                            &b.objective_vector()
                        ),
                        "frontier point {j} dominated by {i}"
                    );
                }
            }
        }
        assert_eq!(
            frontier.points_seen,
            frontier.dominated_pruned + frontier.len() as u64
        );
    }

    #[test]
    fn budgets_filter_the_frontier() {
        let alg = algorithms::matmul(3);
        let full = ParetoSearch::new(&alg).solve().unwrap();
        let max_pes = full.points.iter().map(|p| p.processors).min().unwrap();
        let tight = ParetoSearch::new(&alg)
            .resources(ResourceModel { max_processors: Some(max_pes), ..Default::default() })
            .solve()
            .unwrap();
        assert!(!tight.is_empty());
        assert!(tight.points.iter().all(|p| p.processors <= max_pes));
        assert!(tight.len() <= full.len());
    }

    #[test]
    fn bandwidth_axis_requires_a_probe() {
        let alg = algorithms::matmul(2);
        let err = ParetoSearch::new(&alg)
            .resources(ResourceModel { include_bandwidth: true, ..Default::default() })
            .solve()
            .unwrap_err();
        assert!(matches!(err, CfmapError::Unsupported { .. }));
    }

    #[test]
    fn bandwidth_probe_feeds_the_fourth_axis() {
        let alg = algorithms::matmul(2);
        // A fake probe: bandwidth = wire length of the design, so the
        // axis is exercised without a simulator dependency.
        let probe = |m: &MappingMatrix| -> Option<u64> {
            vlsi_cost(&algorithms::matmul(2), m.space())
                .ok()
                .map(|(_, _, w)| w.unsigned_abs())
        };
        let frontier = ParetoSearch::new(&alg)
            .resources(ResourceModel { include_bandwidth: true, ..Default::default() })
            .bandwidth_probe(&probe)
            .solve()
            .unwrap();
        assert!(!frontier.is_empty());
        assert!(frontier.points.iter().all(|p| p.bandwidth.is_some()));
        assert!(frontier.points.iter().all(|p| p.objective_vector().len() == 4));
    }

    #[test]
    fn pinning_both_sides_is_rejected() {
        let alg = algorithms::matmul(2);
        let space = SpaceMap::row(&[1, 1, -1]);
        let pi = LinearSchedule::new(&[1, 2, 1]);
        let err = ParetoSearch::new(&alg)
            .fixed_space(&space)
            .fixed_schedule(&pi)
            .solve()
            .unwrap_err();
        assert!(matches!(err, CfmapError::Unsupported { .. }));
    }

    #[test]
    fn parallel_equals_sequential() {
        let alg = algorithms::transitive_closure(3);
        let seq = ParetoSearch::new(&alg).solve().unwrap();
        let par = ParetoSearch::new(&alg).solve_parallel(4).unwrap();
        assert_eq!(seq.len(), par.len());
        assert_eq!(seq.points_seen, par.points_seen);
        for (a, b) in seq.points.iter().zip(&par.points) {
            assert_eq!(a.objective_vector(), b.objective_vector());
            assert_eq!(a.space_rows(), b.space_rows());
            assert_eq!(a.schedule.as_slice(), b.schedule.as_slice());
        }
    }

    #[test]
    fn every_frontier_point_is_certified_conflict_free() {
        let alg = algorithms::matmul(3);
        let frontier = ParetoSearch::new(&alg).solve().unwrap();
        for p in &frontier.points {
            assert!(p.mapping.has_full_rank());
            assert!(crate::oracle::is_conflict_free_by_enumeration(
                &p.mapping,
                &alg.index_set
            ));
        }
    }
}
