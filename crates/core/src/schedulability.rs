//! Schedulability: does *any* linear schedule exist?
//!
//! A uniform dependence algorithm is computable by a systolic schedule iff
//! some hyperplane strictly separates the dependence cone from the origin
//! — `∃ Π: ΠD > 0` (Definition 2.2 condition 1; the existence question
//! behind the paper's standing assumption that candidates exist). Over
//! the rationals this is an LP feasibility question, decided exactly by
//! the workspace's simplex: maximize nothing subject to `Π·d̄ᵢ ≥ 1`
//! (strict positivity and ≥ 1 are equivalent up to scaling). Integrality
//! is free — scale a rational solution by the lcm of denominators.

use cfmap_intlin::{Int, Rat};
use cfmap_lp::problem::{LpProblem, Relation};
use cfmap_lp::{solve_lp, LpOutcome};
use cfmap_model::{LinearSchedule, Uda};

/// A witness schedule with `ΠD > 0`, or `None` when the dependence cone
/// is not strictly separable (the algorithm has no linear schedule — e.g.
/// antiparallel dependence pairs).
pub fn find_valid_schedule(alg: &Uda) -> Option<LinearSchedule> {
    let n = alg.dim();
    // Feasibility LP: Π free, Π·d̄ᵢ ≥ 1, |π_j| ≤ M. A basic feasible
    // solution's entries are bounded by subdeterminant ratios of D, so
    // for adversarial dependence matrices a fixed M could wrongly report
    // infeasibility — start from a heuristic box and double it a few
    // times before concluding (an unbounded cone-feasibility LP would
    // also work but the simplex needs a bounded region to return a
    // point).
    let mut big: i64 = alg
        .deps
        .deps()
        .iter()
        .map(|d| d.iter().map(|e| e.abs().to_i64().unwrap_or(0)).sum::<i64>())
        .sum::<i64>()
        + n as i64;
    let mut solution: Option<Vec<Rat>> = None;
    for _ in 0..8 {
        let mut p = LpProblem::minimize(&vec![0i64; n]);
        for i in 0..alg.num_deps() {
            let d = alg.deps.dep_i64(i);
            p.constrain_i64(&d, Relation::Ge, 1);
        }
        for j in 0..n {
            p.set_lower(j, Rat::from_i64(-big));
            p.set_upper(j, Rat::from_i64(big));
        }
        if let LpOutcome::Optimal { x, .. } = solve_lp(&p) {
            solution = Some(x);
            break;
        }
        big = big.saturating_mul(16);
    }
    let x = solution?;
    // Scale to integers: multiply by the lcm of denominators.
    let lcm = x.iter().fold(Int::one(), |acc, r| acc.lcm(r.denom()));
    let pi: Vec<i64> = x
        .iter()
        .map(|r| {
            (r.numer() * &lcm.exact_div(r.denom()))
                .to_i64()
                .expect("scaled schedule fits i64")
        })
        .collect();
    let schedule = LinearSchedule::new(&pi);
    debug_assert!(schedule.is_valid_for(&alg.deps));
    Some(schedule)
}

/// `true` iff the algorithm admits some linear schedule.
pub fn is_schedulable(alg: &Uda) -> bool {
    find_valid_schedule(alg).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfmap_model::{algorithms, DependenceMatrix, IndexSet};

    #[test]
    fn library_algorithms_all_schedulable() {
        for alg in algorithms::all_small() {
            let pi = find_valid_schedule(&alg)
                .unwrap_or_else(|| panic!("{} must be schedulable", alg.name));
            assert!(pi.is_valid_for(&alg.deps), "{}", alg.name);
        }
    }

    #[test]
    fn antiparallel_pair_is_not_schedulable() {
        // d and −d cannot both be strictly positive under any Π.
        let alg = Uda::new(
            "cycle",
            IndexSet::cube(2, 3),
            DependenceMatrix::from_columns(&[&[1, 0], &[-1, 0]]),
        );
        assert!(!is_schedulable(&alg));
        assert!(alg.has_antiparallel_dependence_pair());
    }

    #[test]
    fn subtler_infeasible_cone() {
        // Three vectors whose positive combination hits zero:
        // (1,0), (−1,1), (0,−1) sum to (0,0) ⇒ no separating hyperplane,
        // even though no antiparallel pair exists.
        let alg = Uda::new(
            "zero-sum-cone",
            IndexSet::cube(2, 3),
            DependenceMatrix::from_columns(&[&[1, 0], &[-1, 1], &[0, -1]]),
        );
        assert!(!alg.has_antiparallel_dependence_pair());
        assert!(!is_schedulable(&alg));
    }

    #[test]
    fn witness_scales_to_integers() {
        let alg = algorithms::transitive_closure(4);
        let pi = find_valid_schedule(&alg).unwrap();
        // Integral by construction and strictly valid.
        assert!(pi.is_valid_for(&alg.deps));
        // TC requires π1 > π2 + π3 — the witness must satisfy it.
        let p = pi.as_slice();
        assert!(p[0] > p[1] + p[2]);
    }
}
