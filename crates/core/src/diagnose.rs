//! Structured mapping diagnosis: every condition of Definition 2.2,
//! checked and explained.
//!
//! `Procedure 5.1` tells you *which* mapping to use; this module tells you
//! *why* a mapping you already have is (or is not) valid — with concrete
//! witnesses for every failure. The CLI's `analyze` command and the
//! examples print these.

use crate::conflict::{feasibility, ConflictAnalysis, ConflictWitness, Feasibility};
use crate::mapping::{route, InterconnectionPrimitives, MappingMatrix};
use cfmap_model::Uda;
use std::fmt;

/// Verdict on one condition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Check {
    /// Condition satisfied.
    Pass,
    /// Condition violated; the string explains how.
    Fail(String),
    /// Not applicable / not requested (e.g. routing without primitives).
    Skipped,
}

impl Check {
    /// `true` for [`Check::Pass`].
    pub fn passed(&self) -> bool {
        matches!(self, Check::Pass)
    }
}

/// The full diagnosis of a mapping against Definition 2.2.
#[derive(Clone, Debug)]
pub struct MappingDiagnosis {
    /// Condition 1: `ΠD > 0`.
    pub dependencies: Check,
    /// Condition 2: `SD = PK` with timely arrival (when primitives given).
    pub routability: Check,
    /// Condition 3: conflict-freedom (exact lattice decision).
    pub conflict_free: Check,
    /// Condition 4: `rank(T) = k`.
    pub full_rank: Check,
    /// The conflict-lattice basis with per-vector feasibility.
    pub lattice: Vec<(String, Feasibility)>,
    /// A concrete collision pair when condition 3 fails.
    pub witness: Option<ConflictWitness>,
    /// Total execution time (Equation 2.7) — meaningful when valid.
    pub total_time: i64,
}

impl MappingDiagnosis {
    /// `true` iff every checked condition passed.
    pub fn is_valid(&self) -> bool {
        self.dependencies.passed()
            && self.conflict_free.passed()
            && self.full_rank.passed()
            && !matches!(self.routability, Check::Fail(_))
    }
}

impl fmt::Display for MappingDiagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let show = |c: &Check| match c {
            Check::Pass => "PASS".to_string(),
            Check::Fail(why) => format!("FAIL — {why}"),
            Check::Skipped => "skipped".to_string(),
        };
        writeln!(f, "Definition 2.2 conditions:")?;
        writeln!(f, "  1. ΠD > 0            : {}", show(&self.dependencies))?;
        writeln!(f, "  2. SD = PK, on time  : {}", show(&self.routability))?;
        writeln!(f, "  3. conflict-free     : {}", show(&self.conflict_free))?;
        writeln!(f, "  4. rank(T) = k       : {}", show(&self.full_rank))?;
        writeln!(f, "conflict lattice ({} basis vector(s)):", self.lattice.len())?;
        for (v, feas) in &self.lattice {
            writeln!(f, "  {v} → {feas:?}")?;
        }
        if let Some(w) = &self.witness {
            writeln!(f, "collision witness: {:?} and {:?}", w.j1, w.j2)?;
        }
        write!(f, "total time (Eq 2.7): {}", self.total_time)
    }
}

/// Diagnose `mapping` for `alg`, optionally against an interconnect.
pub fn diagnose(
    alg: &Uda,
    mapping: &MappingMatrix,
    primitives: Option<&InterconnectionPrimitives>,
) -> MappingDiagnosis {
    // Condition 1 with a per-dependence witness.
    let dep_times = mapping.schedule().dep_times(&alg.deps);
    let dependencies = match dep_times.iter().position(|t| !t.is_positive()) {
        None => Check::Pass,
        Some(i) => Check::Fail(format!(
            "Π·d̄{} = {} ≤ 0 (dependence {:?})",
            i + 1,
            dep_times[i],
            alg.deps.dep_i64(i)
        )),
    };

    // Condition 4.
    let analysis = ConflictAnalysis::new(mapping, &alg.index_set);
    let full_rank = if analysis.rank() == mapping.k() {
        Check::Pass
    } else {
        Check::Fail(format!("rank(T) = {} < k = {}", analysis.rank(), mapping.k()))
    };

    // Condition 3 with witness. A witness conversion overflow is itself
    // a finding, not a crash: the conflict is real either way.
    let (conflict_free, witness) = match analysis.find_small_kernel_vector() {
        None => (Check::Pass, None),
        Some(gamma) => (
            Check::Fail(format!("kernel vector {gamma} stays inside the box (Theorem 2.2)")),
            analysis.witness_from_kernel_vector(&gamma).ok(),
        ),
    };

    // Condition 2.
    let routability = match primitives {
        None => Check::Skipped,
        Some(p) => match route(mapping, &alg.deps, p) {
            Ok(r) => {
                debug_assert!(r.hops.iter().zip(&r.dep_times).all(|(h, t)| h <= t));
                Check::Pass
            }
            Err(e) => Check::Fail(e.to_string()),
        },
    };

    let lattice = analysis
        .lattice_basis()
        .iter()
        .map(|v| (v.to_string(), feasibility(v, &alg.index_set)))
        .collect();

    MappingDiagnosis {
        dependencies,
        routability,
        conflict_free,
        full_rank,
        lattice,
        witness,
        total_time: mapping.schedule().total_time(&alg.index_set),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::SpaceMap;
    use cfmap_model::{algorithms, LinearSchedule};

    #[test]
    fn valid_design_all_pass() {
        let alg = algorithms::matmul(4);
        let m = MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[1, 4, 1]));
        let p = InterconnectionPrimitives::from_columns(&[&[1], &[1], &[-1]]);
        let d = diagnose(&alg, &m, Some(&p));
        assert!(d.is_valid());
        assert!(d.dependencies.passed());
        assert!(d.routability.passed());
        assert!(d.conflict_free.passed());
        assert!(d.full_rank.passed());
        assert!(d.witness.is_none());
        assert_eq!(d.total_time, 25);
        let text = d.to_string();
        assert!(text.contains("1. ΠD > 0            : PASS"));
        assert!(text.contains("total time (Eq 2.7): 25"));
    }

    #[test]
    fn each_failure_mode_explained() {
        let alg = algorithms::matmul(4);
        // Condition 1 failure.
        let m = MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[0, 4, 1]));
        let d = diagnose(&alg, &m, None);
        assert!(matches!(&d.dependencies, Check::Fail(why) if why.contains("≤ 0")));
        assert!(!d.is_valid());

        // Condition 3 failure, with witness.
        let m = MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[1, 1, 4]));
        let d = diagnose(&alg, &m, None);
        assert!(matches!(&d.conflict_free, Check::Fail(why) if why.contains("Theorem 2.2")));
        let w = d.witness.as_ref().expect("witness provided");
        assert_eq!(m.apply(&w.j1), m.apply(&w.j2));
        assert!(d.to_string().contains("collision witness"));

        // Condition 4 failure.
        let m = MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[2, 2, -2]));
        let d = diagnose(&alg, &m, None);
        assert!(matches!(&d.full_rank, Check::Fail(why) if why.contains("rank")));

        // Condition 2 failure.
        let m = MappingMatrix::new(SpaceMap::row(&[1, 1, -1]), LinearSchedule::new(&[1, 4, 1]));
        let only_left = InterconnectionPrimitives::from_columns(&[&[-1]]);
        let d = diagnose(&alg, &m, Some(&only_left));
        assert!(matches!(&d.routability, Check::Fail(_)));
    }

    #[test]
    fn skipped_routing_does_not_invalidate() {
        let alg = algorithms::transitive_closure(3);
        let m = MappingMatrix::new(SpaceMap::row(&[0, 0, 1]), LinearSchedule::new(&[4, 1, 1]));
        let d = diagnose(&alg, &m, None);
        assert_eq!(d.routability, Check::Skipped);
        assert!(d.is_valid());
        assert_eq!(d.lattice.len(), 1);
    }
}
