//! Procedure 5.1: time-optimal conflict-free schedule search.
//!
//! Candidates `Π` are enumerated in increasing order of the objective
//! `f = Σ |π_i|·μ_i` (by Theorem 2.1 the total execution time is monotone
//! in the `|π_i|`, so the first accepted candidate is optimal). Each
//! candidate is screened by the conditions of Definition 2.2:
//!
//! 1. `ΠD > 0`;
//! 2. (optional) routability `SD = PK`, `Σ_j k_{ji} ≤ Π·d̄ᵢ`;
//! 3. conflict-freedom — the paper's closed-form conditions
//!    (Theorem 3.1 / 4.7 / 4.8 / 4.5 depending on `n − k`) or the exact
//!    lattice test, selectable via [`ConditionKind`];
//! 4. `rank(T) = k`.
//!
//! With [`ConditionKind::Exact`] the search is optimal for every `k`;
//! with [`ConditionKind::Paper`] it is optimal whenever the dispatched
//! condition is necessary-and-sufficient (`k ≥ n−3` per the paper; see
//! the necessity caveat in [`crate::conditions`]) and otherwise sound but
//! possibly conservative.
//!
//! ## Budgets and graceful degradation
//!
//! The search accepts a [`SearchBudget`]. When a limit trips before the
//! optimum is found, [`Procedure51::solve`] does not hang or panic: it
//! falls back to a deterministic family of *mixed-radix* schedules
//! (`Π·j̄` injective on the bounding box of `J`, hence conflict-free for
//! any `S`), screens them through the same validity/rank/routability
//! gates, and returns the best one tagged
//! [`Certification::BestEffort`]. Only when even that family is empty
//! does it report [`CfmapError::BudgetExhausted`].

use crate::budget::{CancelToken, SearchBudget, SearchOutcome, SolveRoute};
use crate::canon::Stabilizer;
use crate::conditions::{check, check_memoized, rule_for, ConditionKind};
use crate::conflict::ConflictAnalysis;
use crate::error::{BudgetLimit, CfmapError};
use crate::mapping::{route, InterconnectionPrimitives, MappingMatrix, Routing, SpaceMap};
use crate::metrics::SearchTelemetry;
use cfmap_intlin::{hnf_prefix_i64, HnfPrefix, HnfWorkspace};
use cfmap_model::{LinearSchedule, Uda};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

/// The result of a successful optimal-mapping search.
#[derive(Clone, Debug)]
pub struct OptimalMapping {
    /// The full mapping matrix `T = [S; Π°]`.
    pub mapping: MappingMatrix,
    /// The optimal schedule `Π°`.
    pub schedule: LinearSchedule,
    /// Objective value `f = Σ |π_i| μ_i` (total time − 1).
    pub objective: i64,
    /// Total execution time `t = f + 1` (Equation 2.7).
    pub total_time: i64,
    /// Routing certificate, when interconnection primitives were given.
    pub routing: Option<Routing>,
    /// Number of candidates examined before acceptance (search effort).
    pub candidates_examined: u64,
}

/// Procedure 5.1, configured via the builder methods.
///
/// # Examples
///
/// Example 5.1 of the paper — the optimal matmul linear-array schedule:
///
/// ```
/// use cfmap_core::{Procedure51, SpaceMap};
/// use cfmap_model::algorithms;
///
/// let alg = algorithms::matmul(4);
/// let s = SpaceMap::row(&[1, 1, -1]);
/// let opt = Procedure51::new(&alg, &s)
///     .solve()
///     .expect("search ran")
///     .expect_optimal("mapping exists");
/// assert_eq!(opt.total_time, 4 * (4 + 2) + 1); // t = μ(μ+2)+1
/// ```
///
/// Budgeted search degrades instead of hanging:
///
/// ```
/// use cfmap_core::{Certification, Procedure51, SearchBudget, SpaceMap};
/// use cfmap_model::algorithms;
///
/// let alg = algorithms::matmul(4);
/// let s = SpaceMap::row(&[1, 1, -1]);
/// let out = Procedure51::new(&alg, &s)
///     .budget(SearchBudget::candidates(2))
///     .solve()
///     .expect("degrades instead of failing");
/// assert!(matches!(out.certification, Certification::BestEffort { .. }));
/// assert!(out.mapping.is_some());
/// ```
pub struct Procedure51<'a> {
    alg: &'a Uda,
    space: &'a SpaceMap,
    condition: ConditionKind,
    primitives: Option<&'a InterconnectionPrimitives>,
    max_objective: i64,
    /// True when the caller pinned the cap via [`Self::max_objective`];
    /// only a defaulted cap may be extended adaptively (see
    /// [`Self::adaptive_cap_bound`]).
    cap_explicit: bool,
    /// True when the default cap `Σ μ_i(μ_i+3)` overflowed `i64`; the
    /// searches then fail fast with [`CfmapError::Overflow`] instead of
    /// iterating a wrapped (possibly tiny or negative) cap.
    cap_overflowed: bool,
    budget: SearchBudget,
    tie_break: TieBreak,
    symmetry: SymmetryMode,
    hybrid: Option<HybridPolicy>,
    cancel: Option<&'a CancelToken>,
    /// Whether exact conflict verdicts go through the process-wide
    /// kernel-lattice memo (see [`Self::memo`]).
    memo: bool,
    /// Column indices where `S` is entirely zero — used by the exact
    /// pairwise pre-filter (see [`Self::pairwise_prefilter_rejects`]).
    zero_space_cols: Vec<usize>,
    /// Test instrumentation: called with each candidate before
    /// screening (see [`Self::candidate_probe`]).
    probe: Option<CandidateProbe<'a>>,
}

/// A per-candidate instrumentation hook (see
/// [`Procedure51::candidate_probe`]).
type CandidateProbe<'a> = &'a (dyn Fn(&[i64]) + Sync);

/// How ties among equally-optimal schedules at the winning objective
/// level are broken.
///
/// Every candidate at the first level with an acceptance is optimal in
/// the paper's objective `Σ|π_i|μ_i`, so the choice among them is pure
/// convention — but the convention matters operationally. `FirstFound`
/// depends on which conflict vectors happen to collapse (gcd content)
/// at each concrete μ, so the representative jumps around as μ varies.
/// `LexMax` picks the extremal accepted schedule of the level, which is
/// stable across μ for the paper's algorithm families — the property
/// the family-inference layer (affine-in-μ certificates) relies on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TieBreak {
    /// Return the first accepted candidate in enumeration order and stop
    /// (the historic behavior, and the default).
    #[default]
    FirstFound,
    /// Screen the whole winning level and return the lexicographically
    /// greatest accepted schedule (standard `[i64]` ordering). Costs the
    /// remainder of one level's screening; yields a μ-stable canonical
    /// representative of the optimum.
    LexMax,
}

/// Whether the candidate space is quotiented by the problem's symmetry
/// stabilizer (see [`crate::canon::stabilizer`]).
///
/// Quotienting screens one representative per orbit — the
/// lexicographically greatest member — and is **bit-identical** to full
/// enumeration under [`TieBreak::LexMax`]: every gate of Definition 2.2
/// and the objective are invariant under the stabilizer, so an orbit is
/// accepted as a whole or not at all, and the level's lex-greatest
/// accepted candidate is always its own orbit's representative. The
/// quotient therefore activates only when its preconditions hold
/// (`LexMax`, [`ConditionKind::Exact`], no routing primitives); in any
/// other configuration — `FirstFound` order sensitivity, closed-form
/// conditions that need not be orbit-invariant, routing costs that break
/// the symmetry — it silently degrades to full enumeration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SymmetryMode {
    /// Enumerate the full candidate space (the historic behavior, and
    /// the default).
    #[default]
    Full,
    /// Enumerate one representative per stabilizer orbit when sound (see
    /// the type-level docs), counting skipped candidates in
    /// `SearchTelemetry::orbits_pruned`.
    Quotient,
}

/// When to abandon enumeration for the ILP decomposition mid-search.
///
/// After each completed objective level without an acceptance, the
/// search extrapolates the candidates-per-level growth rate; when the
/// projected total crosses `candidate_horizon`, it runs
/// [`crate::ilp::optimal_schedule_ilp`] (applicable only to
/// `(n−2)`-dimensional arrays, the `k = n−1` decomposition) and, if that
/// yields a certified-optimal schedule, returns it tagged
/// [`SolveRoute::HybridIlp`]. A failed or inapplicable escalation falls
/// back to enumeration — one attempt per solve.
///
/// Escalated answers carry no tie-break promise: the ILP route does not
/// honor the [`TieBreak::LexMax`] pin, which is why consumers minting
/// μ-family certificates must check [`SearchOutcome::route`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HybridPolicy {
    /// Escalate when the projected enumeration total (candidates
    /// screened so far plus one extrapolated next level) exceeds this.
    pub candidate_horizon: u64,
    /// Observe at least this many non-empty levels before projecting —
    /// early levels are too noisy to extrapolate from.
    pub min_levels: u32,
}

impl Default for HybridPolicy {
    fn default() -> HybridPolicy {
        HybridPolicy { candidate_horizon: 250_000, min_levels: 3 }
    }
}

/// Growth-rate tracker backing a [`HybridPolicy`] (one per solve).
struct HybridState {
    policy: Option<HybridPolicy>,
    /// One escalation attempt per solve, successful or not.
    spent: bool,
    nonempty_levels: u32,
    prev_level: u64,
    total: u64,
}

impl HybridState {
    fn new(policy: Option<HybridPolicy>) -> HybridState {
        HybridState { policy, spent: false, nonempty_levels: 0, prev_level: 0, total: 0 }
    }

    /// Feed one completed (non-accepted) level; true when the policy
    /// says to escalate now. Empty levels are skipped: with even-only
    /// objective levels (all-even μ) a zero would poison the ratio.
    fn should_escalate(&mut self, level_enumerated: u64) -> bool {
        if level_enumerated == 0 {
            return false;
        }
        let Some(p) = self.policy else { return false };
        self.total = self.total.saturating_add(level_enumerated);
        self.nonempty_levels += 1;
        // Projected next level: last · (last / prev), the observed
        // geometric growth applied once more.
        let projected = (u128::from(level_enumerated) * u128::from(level_enumerated))
            / u128::from(self.prev_level.max(1));
        self.prev_level = level_enumerated;
        !self.spent
            && self.nonempty_levels >= p.min_levels
            && u128::from(self.total).saturating_add(projected) > u128::from(p.candidate_horizon)
    }
}

/// An active symmetry quotient: the stabilizer plus, when it has the
/// class-product shape, the per-axis predecessor map that lets the
/// enumerator prune non-representative subtrees instead of filtering.
struct Quotient {
    stab: Stabilizer,
    classes: Option<Vec<Option<usize>>>,
}

/// Per-level shared state of the sharded parallel search.
struct LevelWork {
    cost: i64,
    candidates: Vec<Vec<i64>>,
    /// Work-stealing cursor: workers claim `SHARD_BATCH`-sized index
    /// ranges until the level is drained.
    cursor: AtomicUsize,
    /// `FirstFound` mid-level prune: smallest accepted index so far
    /// (`u64::MAX` until the first acceptance). Any candidate with a
    /// larger index cannot win, so workers skip its screening.
    best_idx: AtomicU64,
    /// `LexMax` mid-level prune: bumped on every improvement of
    /// `best_pi` so workers can refresh their cached copy lock-free.
    best_version: AtomicU64,
    /// Lex-greatest accepted schedule so far.
    best_pi: Mutex<Option<Vec<i64>>>,
    /// Set when a worker's screening panicked; the level's results are
    /// then discarded and the search reports `CfmapError::Internal`.
    panicked: AtomicBool,
    hits: Mutex<Vec<(usize, OptimalMapping)>>,
    tel: Mutex<SearchTelemetry>,
}

/// Candidates claimed per cursor bump in the sharded parallel search —
/// small enough to load-balance a level with a few hundred candidates,
/// large enough to keep the cursor off the contention path.
const SHARD_BATCH: usize = 16;

/// Ceiling for the adaptive objective-cap extension. The extension is
/// driven by a screened mixed-radix witness, so levels up to the new cap
/// are known to terminate in an acceptance — but a witness objective in
/// the millions would still mean an impractically long enumeration, so
/// beyond this the search keeps its original cap and reports
/// `Infeasible` there, exactly as before.
const ADAPTIVE_CAP_CEILING: i64 = 1 << 20;

/// Largest objective for which [`FullCounter`] still computes exact
/// full-space level counts (the basis of `orbits_pruned` accounting).
/// The incremental DP costs `O(n · cost² / μ_min)` over a whole search;
/// past this bound the count is skipped and `orbits_pruned` becomes a
/// lower bound rather than an exact tally.
const ORBIT_COUNT_MAX: i64 = 4096;

/// The defaulted objective cap `Σ μ_i(μ_i + 3)`, floored at 16 — the
/// paper bounds the useful search at |π_i| ≤ μ_i plus slack for the
/// μ+2-style extreme points. Shared by [`Procedure51::new`] and the
/// Pareto frontier search so both agree on the default horizon.
/// Checked: μ near 2⁴⁰ (the wire bound) squares past i64, and a wrapped
/// cap would silently truncate — or explode — the level loop; `None`
/// signals the overflow.
pub(crate) fn default_objective_cap(mu: &[i64]) -> Option<i64> {
    mu.iter()
        .try_fold(0i64, |acc, &m| {
            m.checked_add(3).and_then(|s| m.checked_mul(s)).and_then(|v| acc.checked_add(v))
        })
        .map(|c| c.max(16))
}

impl<'a> Procedure51<'a> {
    /// Start a search for `alg` with the given space mapping.
    pub fn new(alg: &'a Uda, space: &'a SpaceMap) -> Self {
        assert_eq!(alg.dim(), space.dim(), "algorithm / space map dimension mismatch");
        let (max_objective, cap_overflowed) = match default_objective_cap(alg.index_set.mu()) {
            Some(c) => (c, false),
            None => (0, true),
        };
        let zero_space_cols = (0..space.dim())
            .filter(|&c| space.as_mat().col(c).is_zero())
            .collect();
        Procedure51 {
            alg,
            space,
            condition: ConditionKind::Exact,
            primitives: None,
            max_objective,
            cap_explicit: false,
            cap_overflowed,
            budget: SearchBudget::unlimited(),
            tie_break: TieBreak::default(),
            symmetry: SymmetryMode::default(),
            hybrid: None,
            cancel: None,
            memo: true,
            zero_space_cols,
            probe: None,
        }
    }

    /// Fail fast when the defaulted objective cap overflowed `i64`
    /// (extreme μ); an explicit [`Self::max_objective`] clears the flag.
    fn check_cap(&self) -> Result<(), CfmapError> {
        if self.cap_overflowed {
            return Err(CfmapError::Overflow {
                context: format!(
                    "Procedure 5.1 default objective cap Σ μ_i(μ_i+3) exceeds i64 for μ = {:?}; \
                     set an explicit max_objective",
                    self.alg.index_set.mu()
                ),
            });
        }
        Ok(())
    }

    /// Exact O(z²) pre-filter: for columns `i < j` where `S` is zero, the
    /// vector with `γ_i = π_j/g`, `γ_j = −π_i/g` (`g = gcd(π_i, π_j)`) is
    /// a primitive kernel vector of `T`; if it fits inside the box it is a
    /// non-feasible conflict vector and the candidate can be rejected
    /// without computing a Hermite form. Only ever rejects genuinely
    /// conflicting candidates, so optimality is unaffected.
    fn pairwise_prefilter_rejects(&self, pi: &[i64]) -> bool {
        let mu = self.alg.index_set.mu();
        for (a, &i) in self.zero_space_cols.iter().enumerate() {
            for &j in &self.zero_space_cols[a + 1..] {
                let g = cfmap_intlin::gcd::gcd_i64(pi[i], pi[j]);
                let (gi, gj) = if g == 0 {
                    (1, 0) // both π entries zero: e_i itself is in the kernel
                } else {
                    (pi[j].abs() / g, pi[i].abs() / g)
                };
                if gi <= mu[i] && gj <= mu[j] {
                    return true;
                }
            }
        }
        false
    }

    /// Select the conflict-freedom test (default: exact).
    pub fn condition(mut self, kind: ConditionKind) -> Self {
        self.condition = kind;
        self
    }

    /// Require routability on the given interconnection primitives
    /// (Definition 2.2 condition 2).
    pub fn primitives(mut self, p: &'a InterconnectionPrimitives) -> Self {
        self.primitives = Some(p);
        self
    }

    /// Override the objective cap at which the search gives up. An
    /// explicit cap is never extended adaptively.
    pub fn max_objective(mut self, cap: i64) -> Self {
        self.max_objective = cap;
        self.cap_explicit = true;
        self.cap_overflowed = false;
        self
    }

    /// Select whether the candidate space is quotiented by the problem's
    /// symmetry stabilizer (default: [`SymmetryMode::Full`]). See
    /// [`SymmetryMode`] for the soundness preconditions — in
    /// configurations where they fail the setting is ignored.
    pub fn symmetry(mut self, mode: SymmetryMode) -> Self {
        self.symmetry = mode;
        self
    }

    /// Install a mid-search enumeration→ILP escape hatch (default:
    /// none). See [`HybridPolicy`].
    pub fn hybrid(mut self, policy: HybridPolicy) -> Self {
        self.hybrid = Some(policy);
        self
    }

    /// Route exact conflict verdicts through the process-wide
    /// kernel-lattice memo (default: on). The memo caches a
    /// deterministic fact — the verdict depends only on the candidate's
    /// saturated kernel lattice and the index box — so results are
    /// bit-identical either way; turning it off recovers the unmemoized
    /// baseline for differential tests and benchmarks.
    pub fn memo(mut self, on: bool) -> Self {
        self.memo = on;
        self
    }

    /// Bound the search effort (default: unlimited). With a
    /// candidate-count limit the outcome is deterministic: the
    /// enumeration order is fixed, so equal budgets give equal results.
    pub fn budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Select how ties at the winning objective level are broken
    /// (default: [`TieBreak::FirstFound`]). With [`TieBreak::LexMax`] a
    /// budget or cancellation that trips mid-level returns the best
    /// representative screened so far — still tagged optimal, since the
    /// objective level was already proven, and still deterministic for
    /// equal budgets.
    pub fn tie_break(mut self, tie_break: TieBreak) -> Self {
        self.tie_break = tie_break;
        self
    }

    /// Make the search poll a [`CancelToken`] once per candidate.
    /// Cancellation degrades like a tripped budget ([`BudgetLimit::Cancelled`])
    /// within one candidate's latency.
    pub fn cancel_token(mut self, token: &'a CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// `Some(Cancelled)` once an attached token has been tripped.
    fn cancel_tripped(&self) -> Option<BudgetLimit> {
        match self.cancel {
            Some(c) if c.is_cancelled() => Some(BudgetLimit::Cancelled),
            _ => None,
        }
    }

    /// Install a per-candidate probe, invoked with each candidate `Π`
    /// before screening. Test instrumentation (panic injection, candidate
    /// recording) — not part of the stable API.
    #[doc(hidden)]
    pub fn candidate_probe(mut self, probe: &'a (dyn Fn(&[i64]) + Sync)) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Run the search: the first accepted candidate in increasing
    /// objective order is certified [`Certification::Optimal`]. If the
    /// budget trips first, a deterministic fallback mapping is returned
    /// as [`Certification::BestEffort`]; an exhausted candidate space is
    /// [`Certification::Infeasible`].
    ///
    /// [`Certification::Optimal`]: crate::Certification::Optimal
    /// [`Certification::BestEffort`]: crate::Certification::BestEffort
    /// [`Certification::Infeasible`]: crate::Certification::Infeasible
    pub fn solve(&self) -> Result<SearchOutcome<OptimalMapping>, CfmapError> {
        self.check_cap()?;
        let mut meter = self.budget.start();
        let mut tel = SearchTelemetry::default();
        if let Some(limit) = meter.check_wall().or_else(|| self.cancel_tripped()) {
            return self.degrade(limit, 0, tel);
        }
        // The S rows of T = [S; Π] are fixed across the whole search:
        // pre-eliminate them once, so each candidate only reduces its own
        // Π row (see `HnfPrefix`). `None` when S has entries beyond i64.
        let prefix = hnf_prefix_i64(self.space.as_mat());
        let deps_i64 = self.deps_columns_i64();
        let mut ws = HnfWorkspace::new();
        let quotient = self.active_quotient();
        let mut counter = quotient.as_ref().map(|_| FullCounter::new(self.alg.index_set.mu()));
        let mut hybrid = HybridState::new(self.hybrid);
        let mut cap = self.max_objective;
        let mut extended = false;
        let mut cost = 1i64;
        while cost <= cap {
            let mut found: Option<OptimalMapping> = None;
            let mut tripped: Option<BudgetLimit> = None;
            let level_start = tel.enumerated;
            self.enumerate_level(cost, quotient.as_ref(), &mut |pi| {
                if tripped.is_some()
                    || (found.is_some() && self.tie_break == TieBreak::FirstFound)
                {
                    return;
                }
                let limit = meter.charge_candidate().or_else(|| self.cancel_tripped());
                tel.enumerated += 1;
                if let Some(result) = self.try_candidate(
                    pi,
                    cost,
                    meter.candidates,
                    &mut tel,
                    prefix.as_ref(),
                    deps_i64.as_deref(),
                    &mut ws,
                ) {
                    tel.accepted += 1;
                    let improves = found
                        .as_ref()
                        .is_none_or(|cur| pi > cur.schedule.as_slice());
                    if improves {
                        found = Some(result);
                    }
                    tripped = tripped.or(limit);
                } else {
                    tripped = limit;
                }
            });
            let level_enumerated = tel.enumerated - level_start;
            account_orbits(cost, level_enumerated, counter.as_mut(), &mut tel);
            let level_accepted = u64::from(found.is_some());
            tel.record_level(cost, level_enumerated, level_accepted);
            if let Some(mut win) = found {
                if self.tie_break == TieBreak::LexMax {
                    // The winner may have been screened mid-level; report
                    // the whole level's effort (matches solve_parallel).
                    win.candidates_examined = meter.candidates;
                }
                return Ok(SearchOutcome::optimal(win, meter.candidates).with_telemetry(tel));
            }
            if let Some(limit) = tripped {
                return self.degrade(limit, meter.candidates, tel);
            }
            if hybrid.should_escalate(level_enumerated) {
                hybrid.spent = true;
                if let Some(out) = self.escalate_to_ilp(&mut tel, meter.candidates) {
                    return Ok(out.with_telemetry(tel));
                }
            }
            cost += 1;
            if cost > cap && !extended && !self.cap_explicit {
                extended = true;
                if let Some(bound) = self.adaptive_cap_bound() {
                    if bound > cap && bound <= ADAPTIVE_CAP_CEILING {
                        cap = bound;
                    }
                }
            }
        }
        Ok(SearchOutcome::infeasible(meter.candidates).with_telemetry(tel))
    }

    /// Enumerate *every* accepted candidate up to [`Self::max_objective`],
    /// invoking `on_accept` for each — in increasing objective order,
    /// lex-ascending within each level. This is the multi-objective
    /// analogue of [`Self::solve`]: the Pareto frontier needs the whole
    /// accepted set, not just the first level's tie-break winner. No
    /// symmetry quotient, budget, hybrid escalation or adaptive cap
    /// extension applies — the scan must visit every acceptance exactly
    /// once so the caller's dominance filter sees the full picture.
    ///
    /// With `stop_after_accepting_level` the scan ends after the first
    /// level containing an acceptance: sound for the 3-axis frontier
    /// (time × sites × wires) where every later acceptance shares this
    /// space map's sites/wires but has strictly worse time, hence is
    /// dominated.
    pub(crate) fn scan_accepted(
        &self,
        stop_after_accepting_level: bool,
        on_accept: &mut dyn FnMut(OptimalMapping),
    ) -> Result<SearchTelemetry, CfmapError> {
        self.check_cap()?;
        let mut tel = SearchTelemetry::default();
        let prefix = hnf_prefix_i64(self.space.as_mat());
        let deps_i64 = self.deps_columns_i64();
        let mut ws = HnfWorkspace::new();
        for cost in 1..=self.max_objective {
            let level_start = tel.enumerated;
            let mut level_accepted = 0u64;
            self.enumerate_level(cost, None, &mut |pi| {
                tel.enumerated += 1;
                let examined = tel.enumerated;
                if let Some(result) = self.try_candidate(
                    pi,
                    cost,
                    examined,
                    &mut tel,
                    prefix.as_ref(),
                    deps_i64.as_deref(),
                    &mut ws,
                ) {
                    tel.accepted += 1;
                    level_accepted += 1;
                    on_accept(result);
                }
            });
            tel.record_level(cost, tel.enumerated - level_start, level_accepted);
            if stop_after_accepting_level && level_accepted > 0 {
                break;
            }
        }
        Ok(tel)
    }

    /// The active symmetry quotient, or `None` when the mode is off or a
    /// soundness precondition fails (see [`SymmetryMode`]): quotienting
    /// requires the `LexMax` pin (the representative rule *is* lex-max),
    /// the exact conflict test (the paper's closed forms are dispatched
    /// on data that need not be orbit-invariant), and no routing
    /// primitives (wire lengths are not symmetric under axis swaps).
    fn active_quotient(&self) -> Option<Quotient> {
        if self.symmetry != SymmetryMode::Quotient
            || self.tie_break != TieBreak::LexMax
            || self.condition != ConditionKind::Exact
            || self.primitives.is_some()
        {
            return None;
        }
        let stab = crate::canon::stabilizer(self.alg, self.space);
        if stab.is_trivial() {
            return None;
        }
        let classes = stab.symmetric_classes();
        Some(Quotient { stab, classes })
    }

    /// Enumerate one objective level — the full space, or one
    /// representative per orbit when a quotient is active. The
    /// class-product shape prunes non-representative subtrees inside the
    /// recursion; the generic shape filters full enumeration through
    /// [`Stabilizer::is_representative`].
    fn enumerate_level(&self, cost: i64, quotient: Option<&Quotient>, f: &mut impl FnMut(&[i64])) {
        let mu = self.alg.index_set.mu();
        let n = self.alg.dim();
        match quotient {
            None => enumerate_weighted(n, mu, cost, f),
            Some(q) => match &q.classes {
                Some(prev) => enumerate_weighted_classes(n, mu, cost, prev, f),
                None => enumerate_weighted(n, mu, cost, &mut |pi| {
                    if q.stab.is_representative(pi) {
                        f(pi);
                    }
                }),
            },
        }
    }

    /// One-shot enumeration→ILP escalation (see [`HybridPolicy`]).
    /// Returns the adopted outcome — route-tagged, telemetry merged into
    /// `tel` — or `None` when the decomposition is inapplicable, errors,
    /// or cannot certify optimality, in which case enumeration continues.
    fn escalate_to_ilp(
        &self,
        tel: &mut SearchTelemetry,
        examined: u64,
    ) -> Option<SearchOutcome<OptimalMapping>> {
        // The (5.1)–(5.2) decomposition solves the k = n−1 problem: an
        // (n−2)-dimensional array. Routing constraints have no ILP
        // encoding here.
        if self.space.array_dims() + 2 != self.alg.dim() || self.primitives.is_some() {
            return None;
        }
        crate::metrics::HYBRID_ESCALATIONS.inc();
        let mu_max = self.alg.index_set.mu().iter().copied().max().unwrap_or(1);
        // The appendix's extreme points fit in μ_max + 2; double it like
        // every other caller. Checked: extreme μ must not wrap the bound.
        let bound = mu_max.checked_mul(2).and_then(|b| b.checked_add(4))?;
        let out = crate::ilp::optimal_schedule_ilp(self.alg, self.space, bound, self.budget).ok()?;
        tel.merge(&out.telemetry);
        if !out.is_optimal() {
            // A budget-degraded ILP answer is worth less than continuing
            // the still-exact enumeration.
            return None;
        }
        let ilp_examined = out.candidates_examined;
        let sol = out.into_mapping()?;
        debug_assert!(sol.schedule.is_valid_for(&self.alg.deps));
        let total = examined.saturating_add(ilp_examined);
        let mapping = MappingMatrix::new(self.space.clone(), sol.schedule.clone());
        Some(
            SearchOutcome::optimal(
                OptimalMapping {
                    mapping,
                    schedule: sol.schedule,
                    objective: sol.objective,
                    total_time: sol.total_time,
                    routing: None,
                    candidates_examined: total,
                },
                total,
            )
            .with_route(SolveRoute::HybridIlp),
        )
    }

    /// A provable finite objective bound for the adaptive cap extension:
    /// the smallest objective over the mixed-radix fallback family whose
    /// variant passes the *full* acceptance screen (validity, rank,
    /// exact conflict-freedom). Such a witness guarantees the extended
    /// level loop terminates in an acceptance at or below the bound.
    /// `None` when no variant is acceptable — the search then keeps its
    /// original cap and stays `Infeasible`, exactly as before.
    fn adaptive_cap_bound(&self) -> Option<i64> {
        let mu = self.alg.index_set.mu();
        let n = self.alg.dim();
        // Scratch telemetry: these screens are a bound probe, not search
        // effort, and must not skew the per-gate accounting invariants.
        let mut scratch = SearchTelemetry::default();
        let mut best: Option<i64> = None;
        let mut screened = 0u64;
        let mut perm: Vec<usize> = (0..n).collect();
        'perms: loop {
            let mut w = vec![0i64; n];
            let mut acc: i64 = 1;
            let mut overflow = false;
            for &ax in &perm {
                w[ax] = acc;
                match mu[ax].checked_add(1).and_then(|radix| acc.checked_mul(radix)) {
                    Some(next) => acc = next,
                    None => {
                        overflow = true;
                        break;
                    }
                }
            }
            if overflow {
                screened += 1;
                if screened >= MAX_FALLBACK_VARIANTS {
                    break;
                }
            } else {
                let sign_count = match n {
                    0..=62 => 1u64 << n,
                    _ => u64::MAX, // the cap trips long before 2⁶³
                };
                for signs in 0u64..sign_count {
                    if screened >= MAX_FALLBACK_VARIANTS {
                        break 'perms;
                    }
                    screened += 1;
                    let pi: Vec<i64> = (0..n)
                        .map(|i| if i < 64 && signs >> i & 1 == 1 { -w[i] } else { w[i] })
                        .collect();
                    let Some(objective) = weighted_objective(&pi, mu) else { continue };
                    if best.is_some_and(|b| objective >= b) {
                        continue; // cannot improve; skip the HNF screen
                    }
                    if self.fallback_candidate(&pi, objective, 0, &mut scratch).is_some() {
                        best = Some(objective);
                    }
                }
            }
            if !next_permutation(&mut perm) {
                break;
            }
        }
        best
    }

    /// Evaluate one candidate against all conditions of Definition 2.2,
    /// charging each gate's rejection to the telemetry and the elapsed
    /// screen time to [`crate::metrics::CANDIDATE_SCREEN_TIME`].
    #[allow(clippy::too_many_arguments)]
    fn try_candidate(
        &self,
        pi: &[i64],
        cost: i64,
        examined: u64,
        tel: &mut SearchTelemetry,
        prefix: Option<&HnfPrefix>,
        deps: Option<&[Vec<i64>]>,
        ws: &mut HnfWorkspace,
    ) -> Option<OptimalMapping> {
        let start = Instant::now();
        let out = self.screen_candidate(pi, cost, examined, tel, prefix, deps, ws);
        crate::metrics::CANDIDATE_SCREEN_TIME.observe(start.elapsed());
        out
    }

    /// The dependence columns as machine integers, extracted once per
    /// search so the condition-1 gate — the reject path nearly every
    /// enumerated candidate takes — runs allocation-free i128 dot
    /// products instead of per-candidate bignum vectors. `None` when any
    /// entry exceeds i64 (the bignum route stays the fallback).
    fn deps_columns_i64(&self) -> Option<Vec<Vec<i64>>> {
        let cols: Option<Vec<Vec<i64>>> =
            (0..self.alg.deps.num_deps()).map(|i| self.alg.deps.dep(i).to_i64s()).collect();
        // The i32 ceiling keeps every i128 dot product overflow-free for
        // any i64 candidate: |π_i·d_i| < 2^94, far from the i128 edge.
        cols.filter(|cs| cs.iter().flatten().all(|&v| v.unsigned_abs() <= i32::MAX as u64))
    }

    #[allow(clippy::too_many_arguments)]
    fn screen_candidate(
        &self,
        pi: &[i64],
        cost: i64,
        examined: u64,
        tel: &mut SearchTelemetry,
        prefix: Option<&HnfPrefix>,
        deps: Option<&[Vec<i64>]>,
        ws: &mut HnfWorkspace,
    ) -> Option<OptimalMapping> {
        if let Some(probe) = self.probe {
            probe(pi);
        }
        // Condition 1: ΠD > 0 — exact i128 dot products over the
        // pre-extracted columns when they fit i64, else the bignum route.
        let valid = match deps {
            Some(cols) => schedule_valid_i64(pi, cols),
            None => LinearSchedule::new(pi).is_valid_for(&self.alg.deps),
        };
        if !valid {
            tel.rejected_schedule += 1;
            return None;
        }
        // Cheap exact conflict pre-filter (see pairwise_prefilter_rejects).
        if self.pairwise_prefilter_rejects(pi) {
            tel.rejected_prefilter += 1;
            return None;
        }
        let schedule = LinearSchedule::new(pi);
        let mapping = MappingMatrix::new(self.space.clone(), schedule.clone());
        // Conditions 4 and 3 share the Hermite decomposition: complete the
        // pre-eliminated S prefix with this candidate's Π row when
        // possible (bit-identical to the from-scratch HNF, see
        // `HnfPrefix::complete`), else recompute in full; its rank is
        // rank(T).
        let hnf = match prefix.and_then(|p| p.complete(pi, ws)) {
            Some(h) => h,
            None => mapping.hnf(),
        };
        let analysis = ConflictAnalysis::with_hnf(&mapping, &self.alg.index_set, hnf);
        tel.hnf_computations += 1;
        if analysis.rank() != mapping.k() {
            tel.rejected_rank += 1;
            return None; // condition 4: rank(T) = k
        }
        tel.condition_hits.record(rule_for(self.condition, &analysis));
        let verdict = if self.memo {
            check_memoized(self.condition, &analysis, &self.alg.index_set, tel)
        } else {
            check(self.condition, &analysis, &self.alg.index_set)
        };
        if !verdict.accepts() {
            tel.rejected_conflict += 1;
            return None; // condition 3: conflict-freedom
        }
        // Condition 2: routability (optional). An unroutable candidate is
        // an ordinary rejection — the search keeps looking.
        let routing = match self.primitives {
            Some(p) => match route(&mapping, &self.alg.deps, p) {
                Ok(r) => Some(r),
                Err(_) => {
                    tel.rejected_unroutable += 1;
                    return None;
                }
            },
            None => None,
        };
        let total_time = cost + 1;
        Some(OptimalMapping {
            mapping,
            schedule,
            objective: cost,
            total_time,
            routing,
            candidates_examined: examined,
        })
    }

    /// Graceful degradation: the budget tripped before any candidate was
    /// accepted (the enumeration is in increasing objective order, so
    /// there is no "best so far" — the first acceptance *is* the
    /// optimum). Fall back to the mixed-radix schedule family: weights
    /// `w` assigned to the axes in some order with `w_next = w · (μ+1)`
    /// make `Π·j̄` injective on the bounding box of `J`, hence
    /// conflict-free for *any* space map. The `n!·2ⁿ` (permutation,
    /// sign) variants are screened deterministically — lexicographic
    /// permutations outer, sign patterns inner, capped at
    /// [`MAX_FALLBACK_VARIANTS`] — and the valid one with the smallest
    /// objective wins.
    fn degrade(
        &self,
        limit: BudgetLimit,
        candidates_examined: u64,
        mut tel: SearchTelemetry,
    ) -> Result<SearchOutcome<OptimalMapping>, CfmapError> {
        tel.budget_limit = Some(limit);
        // Time-critical trips promise an answer within one candidate's
        // latency, so take the *first* valid fallback — the enumeration
        // order is fixed, so the choice is still deterministic. Work
        // budgets (candidates/nodes) have no latency promise and keep
        // screening the whole family for the cheapest variant.
        let first_valid_suffices = matches!(
            limit,
            BudgetLimit::WallClock | BudgetLimit::Deadline | BudgetLimit::Cancelled
        );
        let mu = self.alg.index_set.mu();
        let n = self.alg.dim();
        let mut best: Option<OptimalMapping> = None;
        let mut screened = 0u64;
        let mut perm: Vec<usize> = (0..n).collect();
        'perms: loop {
            // Mixed-radix weights: the axis visited first varies fastest.
            let mut w = vec![0i64; n];
            let mut acc: i64 = 1;
            let mut overflow = false;
            for &ax in &perm {
                w[ax] = acc;
                match mu[ax].checked_add(1).and_then(|radix| acc.checked_mul(radix)) {
                    Some(next) => acc = next,
                    None => {
                        overflow = true;
                        break;
                    }
                }
            }
            if overflow {
                // Still charge the cap: with huge μ every permutation
                // may overflow, and n! of even these cheap skips must
                // not run unbounded.
                screened += 1;
                if screened >= MAX_FALLBACK_VARIANTS {
                    break;
                }
            } else {
                let sign_count = match n {
                    0..=62 => 1u64 << n,
                    _ => u64::MAX, // the cap trips long before 2⁶³
                };
                for signs in 0u64..sign_count {
                    if screened >= MAX_FALLBACK_VARIANTS {
                        break 'perms;
                    }
                    screened += 1;
                    let pi: Vec<i64> = (0..n)
                        .map(|i| if i < 64 && signs >> i & 1 == 1 { -w[i] } else { w[i] })
                        .collect();
                    let Some(objective) = weighted_objective(&pi, mu) else { continue };
                    if let Some(cand) =
                        self.fallback_candidate(&pi, objective, candidates_examined, &mut tel)
                    {
                        let better = match &best {
                            None => true,
                            Some(b) => {
                                // Equal-objective ties follow the solver's
                                // tie-break pin: the fallback must return
                                // the same representative convention as
                                // `solve`, or a budgeted warm-start probe
                                // and the full search would disagree on
                                // μ-stable families.
                                let tie = match self.tie_break {
                                    TieBreak::FirstFound => {
                                        cand.schedule.as_slice() < b.schedule.as_slice()
                                    }
                                    TieBreak::LexMax => {
                                        cand.schedule.as_slice() > b.schedule.as_slice()
                                    }
                                };
                                cand.objective < b.objective
                                    || (cand.objective == b.objective && tie)
                            }
                        };
                        if better {
                            best = Some(cand);
                        }
                        if first_valid_suffices {
                            break 'perms;
                        }
                    }
                }
            }
            if !next_permutation(&mut perm) {
                break;
            }
        }
        tel.fallback_screened = screened;
        match best {
            Some(mapping) => {
                Ok(SearchOutcome::best_effort(mapping, candidates_examined).with_telemetry(tel))
            }
            None => Err(CfmapError::BudgetExhausted { limit, candidates_examined }),
        }
    }

    /// Screen a fallback schedule. Uses the *exact* conflict test
    /// regardless of the configured [`ConditionKind`] — injectivity of
    /// the mixed-radix `Π` guarantees conflict-freedom, and the exact
    /// test certifies it without the conservatism of the closed forms.
    fn fallback_candidate(
        &self,
        pi: &[i64],
        objective: i64,
        examined: u64,
        tel: &mut SearchTelemetry,
    ) -> Option<OptimalMapping> {
        let schedule = LinearSchedule::new(pi);
        if !schedule.is_valid_for(&self.alg.deps) {
            return None;
        }
        let mapping = MappingMatrix::new(self.space.clone(), schedule.clone());
        let analysis = ConflictAnalysis::new(&mapping, &self.alg.index_set);
        tel.hnf_computations += 1;
        if analysis.rank() != mapping.k() {
            return None;
        }
        tel.condition_hits.record(crate::metrics::ConditionRule::Exact);
        if !analysis.is_conflict_free_exact() {
            return None;
        }
        let routing = match self.primitives {
            Some(p) => Some(route(&mapping, &self.alg.deps, p).ok()?),
            None => None,
        };
        Some(OptimalMapping {
            mapping,
            schedule,
            objective,
            total_time: objective + 1,
            routing,
            candidates_examined: examined,
        })
    }

    /// [`Self::solve`] with each objective level's candidates screened by
    /// a persistent pool of `threads` workers. Workers claim
    /// [`SHARD_BATCH`]-sized index ranges off a shared cursor (so a slow
    /// shard never stalls the level the way fixed chunking did) and
    /// publish acceptances into shared per-level state mid-flight —
    /// under `FirstFound` an atomic least-accepted-index, under `LexMax`
    /// a versioned lex-greatest schedule — which the other workers use
    /// to skip candidates that provably cannot win. The final winner is
    /// re-derived from the complete hit list, so the result is
    /// deterministic and bit-identical to the sequential search
    /// (including the symmetry-quotiented space when active).
    ///
    /// A non-unlimited budget — or an attached [`CancelToken`] —
    /// delegates to the sequential search so that budget and
    /// cancellation semantics stay exactly deterministic.
    pub fn solve_parallel(
        &self,
        threads: usize,
    ) -> Result<SearchOutcome<OptimalMapping>, CfmapError> {
        assert!(threads >= 1, "need at least one worker");
        if threads == 1 || !self.budget.is_unlimited() || self.cancel.is_some() {
            return self.solve();
        }
        self.check_cap()?;
        let mut examined_before = 0u64;
        let mut tel = SearchTelemetry::default();
        // Shared read-only S prefix; each worker owns its scratch space.
        let prefix = hnf_prefix_i64(self.space.as_mat());
        let prefix_ref = prefix.as_ref();
        let deps_i64 = self.deps_columns_i64();
        let deps_ref = deps_i64.as_deref();
        let quotient = self.active_quotient();
        let mut counter = quotient.as_ref().map(|_| FullCounter::new(self.alg.index_set.mu()));
        let mut hybrid = HybridState::new(self.hybrid);

        // Level hand-off: the main thread publishes an Arc<LevelWork>
        // into `slot`, releases the workers through `start`, and collects
        // them at `done`. An empty slot after `start` is the shutdown
        // signal. Workers never touch the barriers out of lock-step:
        // screening panics are contained by catch_unwind (an escaped
        // panic would desert the barrier and deadlock the pool).
        let slot: Mutex<Option<Arc<LevelWork>>> = Mutex::new(None);
        let start = Barrier::new(threads + 1);
        let done = Barrier::new(threads + 1);

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    start.wait();
                    let Some(level) = slot.lock().unwrap().clone() else { break };
                    let shard = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        self.process_level_shard(&level, prefix_ref, deps_ref);
                    }));
                    if shard.is_err() {
                        level.panicked.store(true, Ordering::SeqCst);
                    }
                    done.wait();
                });
            }
            let mut run = || -> Result<SearchOutcome<OptimalMapping>, CfmapError> {
                let mut cap = self.max_objective;
                let mut extended = false;
                let mut cost = 1i64;
                while cost <= cap {
                    let mut candidates: Vec<Vec<i64>> = Vec::new();
                    self.enumerate_level(cost, quotient.as_ref(), &mut |pi| {
                        candidates.push(pi.to_vec());
                    });
                    let level_enumerated = candidates.len() as u64;
                    account_orbits(cost, level_enumerated, counter.as_mut(), &mut tel);
                    if !candidates.is_empty() {
                        let level = Arc::new(LevelWork {
                            cost,
                            candidates,
                            cursor: AtomicUsize::new(0),
                            best_idx: AtomicU64::new(u64::MAX),
                            best_version: AtomicU64::new(0),
                            best_pi: Mutex::new(None),
                            panicked: AtomicBool::new(false),
                            hits: Mutex::new(Vec::new()),
                            tel: Mutex::new(SearchTelemetry::default()),
                        });
                        *slot.lock().unwrap() = Some(level.clone());
                        start.wait();
                        done.wait();
                        *slot.lock().unwrap() = None;
                        if level.panicked.load(Ordering::SeqCst) {
                            return Err(CfmapError::Internal {
                                context: format!(
                                    "solve_parallel worker panicked at objective level {cost}"
                                ),
                            });
                        }
                        let level_tel = std::mem::take(&mut *level.tel.lock().unwrap());
                        let hits = std::mem::take(&mut *level.hits.lock().unwrap());
                        let best = match self.tie_break {
                            TieBreak::FirstFound => hits.into_iter().min_by_key(|(i, _)| *i),
                            TieBreak::LexMax => hits.into_iter().max_by(|a, b| {
                                a.1.schedule.as_slice().cmp(b.1.schedule.as_slice())
                            }),
                        };
                        tel.merge(&level_tel); // workers record no levels of their own
                        tel.record_level(cost, level_tel.enumerated, level_tel.accepted);
                        let level_len = level.candidates.len() as u64;
                        if let Some((idx, mut win)) = best {
                            let examined = match self.tie_break {
                                // Sequential equivalence: FirstFound stops
                                // at the winner's index, LexMax screens
                                // the whole level.
                                TieBreak::FirstFound => examined_before + idx as u64 + 1,
                                TieBreak::LexMax => examined_before + level_len,
                            };
                            win.candidates_examined = examined;
                            return Ok(SearchOutcome::optimal(win, examined).with_telemetry(tel.clone()));
                        }
                        examined_before += level_len;
                        if hybrid.should_escalate(level_enumerated) {
                            hybrid.spent = true;
                            if let Some(out) = self.escalate_to_ilp(&mut tel, examined_before) {
                                return Ok(out.with_telemetry(tel.clone()));
                            }
                        }
                    }
                    cost += 1;
                    if cost > cap && !extended && !self.cap_explicit {
                        extended = true;
                        if let Some(bound) = self.adaptive_cap_bound() {
                            if bound > cap && bound <= ADAPTIVE_CAP_CEILING {
                                cap = bound;
                            }
                        }
                    }
                }
                Ok(SearchOutcome::infeasible(examined_before).with_telemetry(tel.clone()))
            };
            let outcome = run();
            // Shutdown: an empty slot released through `start` makes
            // every worker break out of its loop; the scope then joins
            // them (no handle can panic — shards are unwind-contained).
            *slot.lock().unwrap() = None;
            start.wait();
            outcome
        })
    }

    /// One worker's share of a level: claim batches off the cursor,
    /// screen them (skipping candidates the shared prune state proves
    /// cannot win), and fold acceptances and telemetry back into the
    /// level. See [`LevelWork`] for the pruning invariants.
    fn process_level_shard(
        &self,
        level: &LevelWork,
        prefix: Option<&HnfPrefix>,
        deps: Option<&[Vec<i64>]>,
    ) {
        let mut wtel = SearchTelemetry::default();
        let mut ws = HnfWorkspace::new();
        let mut local_hits: Vec<(usize, OptimalMapping)> = Vec::new();
        // Worker-cached copy of the shared lex floor, refreshed only when
        // the version stamp moves (keeps the Mutex off the fast path).
        let mut floor_version = 0u64;
        let mut lex_floor: Option<Vec<i64>> = None;
        'claims: loop {
            let base = level.cursor.fetch_add(SHARD_BATCH, Ordering::Relaxed);
            if base >= level.candidates.len() {
                break;
            }
            let end = (base + SHARD_BATCH).min(level.candidates.len());
            for idx in base..end {
                let pi = &level.candidates[idx];
                wtel.enumerated += 1;
                match self.tie_break {
                    TieBreak::FirstFound => {
                        // A smaller accepted index exists: this candidate
                        // cannot be the level winner.
                        if (idx as u64) > level.best_idx.load(Ordering::Relaxed) {
                            continue;
                        }
                    }
                    TieBreak::LexMax => {
                        let v = level.best_version.load(Ordering::Acquire);
                        if v != floor_version {
                            lex_floor = level.best_pi.lock().unwrap().clone();
                            floor_version = v;
                        }
                        // An accepted schedule ≥lex this candidate exists:
                        // it cannot be the lex-greatest acceptance.
                        if lex_floor.as_ref().is_some_and(|b| pi.as_slice() <= b.as_slice()) {
                            continue;
                        }
                    }
                }
                if let Some(r) =
                    self.try_candidate(pi, level.cost, 0, &mut wtel, prefix, deps, &mut ws)
                {
                    wtel.accepted += 1;
                    match self.tie_break {
                        TieBreak::FirstFound => {
                            level.best_idx.fetch_min(idx as u64, Ordering::Relaxed);
                            local_hits.push((idx, r));
                            // The cursor only moves forward: every index
                            // this worker could still claim is larger.
                            break 'claims;
                        }
                        TieBreak::LexMax => {
                            let mut best = level.best_pi.lock().unwrap();
                            if best.as_ref().is_none_or(|b| pi.as_slice() > b.as_slice()) {
                                *best = Some(pi.clone());
                                level.best_version.fetch_add(1, Ordering::Release);
                            }
                            drop(best);
                            local_hits.push((idx, r));
                        }
                    }
                }
            }
        }
        level.hits.lock().unwrap().extend(local_hits);
        level.tel.lock().unwrap().merge(&wtel);
    }

    /// Count (without accepting) how many candidates exist up to the given
    /// objective — the search-space measurement of experiment E9.
    pub fn count_candidates(&self, max_objective: i64) -> u64 {
        let mu = self.alg.index_set.mu();
        let n = self.alg.dim();
        let mut count = 0u64;
        for cost in 1..=max_objective {
            enumerate_weighted(n, mu, cost, &mut |_| count += 1);
        }
        count
    }

    /// [`Self::count_candidates`] over the symmetry-quotiented space:
    /// one representative per stabilizer orbit. The quotient-factor
    /// measurement of experiment E15 — counted regardless of the
    /// configured [`SymmetryMode`]/tie-break gates, since counting has
    /// no soundness preconditions.
    pub fn count_candidates_quotiented(&self, max_objective: i64) -> u64 {
        let stab = crate::canon::stabilizer(self.alg, self.space);
        let quotient = (!stab.is_trivial()).then(|| {
            let classes = stab.symmetric_classes();
            Quotient { stab, classes }
        });
        let mut count = 0u64;
        for cost in 1..=max_objective {
            self.enumerate_level(cost, quotient.as_ref(), &mut |_| count += 1);
        }
        count
    }
}

/// Fold one level's orbit-pruning tally into the telemetry and the
/// process-wide counter: the exact full-space level count (when still
/// cheap to compute, see [`ORBIT_COUNT_MAX`]) minus the representatives
/// actually enumerated.
fn account_orbits(
    cost: i64,
    reps_enumerated: u64,
    counter: Option<&mut FullCounter>,
    tel: &mut SearchTelemetry,
) {
    let Some(counter) = counter else { return };
    let Some(full) = counter.count(cost) else { return };
    let pruned = full.saturating_sub(reps_enumerated);
    if pruned > 0 {
        tel.orbits_pruned += pruned;
        crate::metrics::ORBITS_PRUNED.add(pruned);
    }
}

/// Incremental exact count of the *full* candidate space per objective
/// level, `completions[i][r]` = number of ways to assign signed values to
/// axes `i..n` with total weight exactly `r` — mirroring
/// [`enumerate_weighted`]'s semantics, including the `|π| ≤ remaining`
/// truncation of zero-weight axes. Saturating `u64` throughout. The
/// tables grow lazily with the requested cost, so a whole search costs
/// `O(n · cost_max² / μ_min)` — trivial next to the screening it meters.
struct FullCounter {
    mu: Vec<i64>,
    /// `table[i][r]` for `i ∈ 0..=n`; `table[n][r] = [r == 0]`.
    table: Vec<Vec<u64>>,
}

impl FullCounter {
    fn new(mu: &[i64]) -> FullCounter {
        FullCounter { mu: mu.to_vec(), table: vec![Vec::new(); mu.len() + 1] }
    }

    /// Full-space candidate count at exactly `cost`; `None` past
    /// [`ORBIT_COUNT_MAX`] (accounting stops, enumeration does not).
    fn count(&mut self, cost: i64) -> Option<u64> {
        if !(0..=ORBIT_COUNT_MAX).contains(&cost) {
            return None;
        }
        let c = usize::try_from(cost).expect("cost in range");
        let n = self.mu.len();
        for r in self.table[n].len()..=c {
            self.table[n].push(u64::from(r == 0));
        }
        for i in (0..n).rev() {
            let w = self.mu[i];
            for r in self.table[i].len()..=c {
                let mut acc: u64;
                if w == 0 {
                    // Zero-weight axis: 2r+1 choices of π_i, none spend.
                    let choices = 2 * (r as u64) + 1;
                    acc = self.table[i + 1][r].saturating_mul(choices);
                } else {
                    acc = self.table[i + 1][r]; // a = 0
                    let step = usize::try_from(w).expect("μ > 0 fits usize");
                    let mut spent = step;
                    while spent <= r {
                        acc = acc.saturating_add(self.table[i + 1][r - spent].saturating_mul(2));
                        spent += step;
                    }
                }
                self.table[i].push(acc);
            }
        }
        Some(self.table[0][c])
    }
}

/// Condition 1 (`Π·d̄ᵢ ≥ 1` for every dependence) on pre-extracted i64
/// columns: exact — [`Procedure51::deps_columns_i64`] bounds the entries
/// so no i128 dot product can overflow — and allocation-free, which
/// matters because this is the rejection nearly every enumerated
/// candidate takes.
fn schedule_valid_i64(pi: &[i64], deps: &[Vec<i64>]) -> bool {
    deps.iter().all(|d| {
        d.iter().zip(pi).map(|(&a, &b)| i128::from(a) * i128::from(b)).sum::<i128>() > 0
    })
}

/// `Σ |π_i|·μ_i` with overflow checking.
pub(crate) fn weighted_objective(pi: &[i64], mu: &[i64]) -> Option<i64> {
    let mut acc: i64 = 0;
    for (p, m) in pi.iter().zip(mu) {
        acc = acc.checked_add(p.checked_abs()?.checked_mul(*m)?)?;
    }
    Some(acc)
}

/// Cap on (permutation, sign) variants screened by the budget-degrade
/// fallback. Exactly `6!·2⁶`, the full variant space of a 6-axis
/// problem, so results for `n ≤ 6` are unchanged; larger problems screen
/// the deterministic lexicographic prefix. Without a cap the fallback
/// was `n!·2ⁿ` — materializing (and walking) that for a wire-supplied
/// `n` of a few dozen axes is an OOM/hang.
const MAX_FALLBACK_VARIANTS: u64 = 46_080;

/// Advance `p` to the lexicographically next permutation in place;
/// `false` once `p` is the last (descending) one.
fn next_permutation(p: &mut [usize]) -> bool {
    if p.len() < 2 {
        return false;
    }
    let mut i = p.len() - 1;
    while i > 0 && p[i - 1] >= p[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let mut j = p.len() - 1;
    while p[j] <= p[i - 1] {
        j -= 1;
    }
    p.swap(i - 1, j);
    p[i..].reverse();
    true
}

/// Enumerate all `Π ∈ Z^n` with `Σ |π_i|·μ_i == cost` (each candidate
/// visited exactly once, sign choices included, `π_i = 0` allowed where
/// the remaining weight permits).
///
/// A zero weight `μ_i = 0` would make axis `i` cost-free and the candidate
/// set infinite; such axes are capped at `|π_i| ≤ cost` — they do not
/// affect the objective, and larger entries only worsen rank/validity, so
/// the truncation preserves optimality for the searches the paper runs.
pub(crate) fn enumerate_weighted(n: usize, mu: &[i64], cost: i64, f: &mut impl FnMut(&[i64])) {
    let mut pi = vec![0i64; n];
    rec(0, cost, n, mu, &mut pi, f);

    fn rec(i: usize, remaining: i64, n: usize, mu: &[i64], pi: &mut Vec<i64>, f: &mut impl FnMut(&[i64])) {
        if i == n {
            if remaining == 0 {
                f(pi);
            }
            return;
        }
        let w = mu[i];
        let max_abs = if w == 0 { remaining } else { remaining / w };
        for a in 0..=max_abs {
            let used = if w == 0 { 0 } else { a * w };
            // Zero-weight axes must still terminate: spend nothing but cap |π|.
            pi[i] = a;
            rec(i + 1, remaining - used, n, mu, pi, f);
            if a != 0 {
                pi[i] = -a;
                rec(i + 1, remaining - used, n, mu, pi, f);
            }
        }
        pi[i] = 0;
    }
}

/// [`enumerate_weighted`] restricted to class-product orbit
/// representatives: for each axis `i` with a same-class predecessor
/// `p = prev[i]`, only values `π_i ≤ π_p` are explored — the
/// non-increasing-within-class rule that picks exactly the lex-greatest
/// member of each orbit when the stabilizer is the full symmetric group
/// on each class (with no sign flips; see
/// [`Stabilizer::symmetric_classes`]). Pruning happens inside the
/// recursion, so skipped orbit members cost nothing, not even a callback.
fn enumerate_weighted_classes(
    n: usize,
    mu: &[i64],
    cost: i64,
    prev: &[Option<usize>],
    f: &mut impl FnMut(&[i64]),
) {
    let mut pi = vec![0i64; n];
    rec(0, cost, n, mu, prev, &mut pi, f);

    #[allow(clippy::too_many_arguments)]
    fn rec(
        i: usize,
        remaining: i64,
        n: usize,
        mu: &[i64],
        prev: &[Option<usize>],
        pi: &mut Vec<i64>,
        f: &mut impl FnMut(&[i64]),
    ) {
        if i == n {
            if remaining == 0 {
                f(pi);
            }
            return;
        }
        let w = mu[i];
        let max_abs = if w == 0 { remaining } else { remaining / w };
        let hi = match prev[i] {
            Some(p) => max_abs.min(pi[p]),
            None => max_abs,
        };
        // Same-class axes share μ, so every value in range fits the
        // remaining weight; the loop only ascends to the class ceiling.
        for v in -max_abs..=hi {
            let used = if w == 0 { 0 } else { v.abs() * w };
            pi[i] = v;
            rec(i + 1, remaining - used, n, mu, prev, pi, f);
        }
        pi[i] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Certification;
    use cfmap_model::algorithms;

    #[test]
    fn enumerate_weighted_small() {
        // n = 2, μ = (1, 1), cost 2: vectors with |π1| + |π2| = 2:
        // (±2, 0), (0, ±2), (±1, ±1) → 8 candidates.
        let mut seen = Vec::new();
        enumerate_weighted(2, &[1, 1], 2, &mut |pi| seen.push(pi.to_vec()));
        assert_eq!(seen.len(), 8);
        let mut set: Vec<Vec<i64>> = seen.clone();
        set.sort();
        set.dedup();
        assert_eq!(set.len(), 8, "duplicates produced");
        for pi in &seen {
            assert_eq!(pi[0].abs() + pi[1].abs(), 2);
        }
    }

    #[test]
    fn enumerate_weighted_heterogeneous() {
        // μ = (2, 3), cost 6: |π1|·2 + |π2|·3 = 6 → (±3, 0), (0, ±2).
        let mut seen = Vec::new();
        enumerate_weighted(2, &[2, 3], 6, &mut |pi| seen.push(pi.to_vec()));
        seen.sort();
        assert_eq!(
            seen,
            vec![vec![-3, 0], vec![0, -2], vec![0, 2], vec![3, 0]]
        );
    }

    #[test]
    fn matmul_search_finds_paper_optimum() {
        // Example 5.1 (μ = 4, S = [1, 1, −1]): optimum f = 24,
        // Π° ∈ {[1, 4, 1], [4, 1, 1]}, t = 25 = μ(μ+2)+1.
        let alg = algorithms::matmul(4);
        let s = SpaceMap::row(&[1, 1, -1]);
        let opt = Procedure51::new(&alg, &s)
            .solve()
            .expect("search ran")
            .expect_optimal("optimum exists");
        assert_eq!(opt.objective, 24);
        assert_eq!(opt.total_time, 25);
        // The optimum is not unique: the whole edge between the paper's
        // extreme points [1, μ, 1] and [1, 1, μ]... (strictly: the edge of
        // subset I minus the non-feasible vertex) achieves f = 24, e.g.
        // Π = [1, 2, 3]. Procedure 5.1 returns *an* optimum; verify it is
        // one, and separately that the paper's Π₂ = [1, μ, 1] is too.
        let found = opt.schedule.as_slice();
        assert_eq!(found.iter().map(|p| p.abs() * 4).sum::<i64>(), 24);
        let paper_mapping = MappingMatrix::new(s.clone(), LinearSchedule::new(&[1, 4, 1]));
        assert!(crate::oracle::is_conflict_free_by_enumeration(
            &paper_mapping,
            &alg.index_set
        ));
        // Same answer under the paper's closed-form conditions.
        let opt_paper = Procedure51::new(&alg, &s)
            .condition(ConditionKind::Paper)
            .solve()
            .expect("search ran")
            .expect_optimal("optimum exists");
        assert_eq!(opt_paper.objective, 24);
    }

    #[test]
    fn transitive_closure_search_finds_paper_optimum() {
        // Example 5.2 (μ = 4, S = [0, 0, 1]): Π° = [μ+1, 1, 1] = [5, 1, 1],
        // t = μ(μ+3)+1 = 29.
        let alg = algorithms::transitive_closure(4);
        let s = SpaceMap::row(&[0, 0, 1]);
        let opt = Procedure51::new(&alg, &s)
            .solve()
            .expect("search ran")
            .expect_optimal("optimum exists");
        assert_eq!(opt.schedule.as_slice(), &[5, 1, 1]);
        assert_eq!(opt.total_time, 29);
        assert_eq!(opt.total_time, 4 * (4 + 3) + 1);
    }

    #[test]
    fn transitive_closure_beats_prior_work() {
        // The paper's improvement claim: t = μ(μ+3)+1 improves on [22]'s
        // μ(2μ+3)+1 for every μ ≥ 1.
        for mu in 2..=6 {
            let alg = algorithms::transitive_closure(mu);
            let s = SpaceMap::row(&[0, 0, 1]);
            let opt = Procedure51::new(&alg, &s)
                .solve()
                .expect("search ran")
                .expect_optimal("optimum exists");
            assert_eq!(opt.total_time, mu * (mu + 3) + 1, "μ = {mu}");
            assert!(opt.total_time < mu * (2 * mu + 3) + 1);
        }
    }

    #[test]
    fn matmul_with_routing_requirement() {
        let alg = algorithms::matmul(4);
        let s = SpaceMap::row(&[1, 1, -1]);
        let p = InterconnectionPrimitives::from_columns(&[&[1], &[1], &[-1]]);
        let opt = Procedure51::new(&alg, &s)
            .primitives(&p)
            .solve()
            .expect("search ran")
            .expect_optimal("routable optimum exists");
        assert_eq!(opt.objective, 24);
        let routing = opt.routing.expect("routing present");
        assert!(routing.is_collision_free_by_k());
        assert_eq!(routing.total_buffers(), cfmap_intlin::Int::from(3));
    }

    #[test]
    fn parallel_search_matches_sequential() {
        for (alg, s_row) in [
            (algorithms::matmul(4), vec![1i64, 1, -1]),
            (algorithms::transitive_closure(4), vec![0, 0, 1]),
        ] {
            let s = SpaceMap::row(&s_row);
            let seq = Procedure51::new(&alg, &s).solve().unwrap().into_mapping().unwrap();
            for threads in [2, 4] {
                let par = Procedure51::new(&alg, &s)
                    .solve_parallel(threads)
                    .unwrap()
                    .into_mapping()
                    .unwrap();
                assert_eq!(par.objective, seq.objective, "{} × {threads}", alg.name);
                assert_eq!(
                    par.schedule.as_slice(),
                    seq.schedule.as_slice(),
                    "{} × {threads}: deterministic tie-break",
                    alg.name
                );
                assert_eq!(par.candidates_examined, seq.candidates_examined);
            }
        }
    }

    #[test]
    fn parallel_worker_panic_is_an_error_not_an_abort() {
        // Regression: a panic inside a parallel worker used to be
        // re-raised by `h.join().expect(...)`, aborting the caller and
        // violating the panic-free taxonomy. It must surface as
        // CfmapError::Internal.
        let alg = algorithms::matmul(3);
        let s = SpaceMap::row(&[1, 1, -1]);
        let boom = |_pi: &[i64]| panic!("injected candidate panic");
        let err = Procedure51::new(&alg, &s)
            .candidate_probe(&boom)
            .solve_parallel(2)
            .expect_err("worker panic must become an error");
        assert!(matches!(err, CfmapError::Internal { .. }), "{err:?}");
        assert!(err.to_string().contains("internal error"), "{err}");
    }

    #[test]
    fn telemetry_accounts_for_every_candidate() {
        let alg = algorithms::matmul(4);
        let s = SpaceMap::row(&[1, 1, -1]);
        let out = Procedure51::new(&alg, &s).solve().unwrap();
        let t = &out.telemetry;
        assert_eq!(t.enumerated, out.candidates_examined);
        assert_eq!(t.accepted, 1);
        assert_eq!(t.enumerated, t.accepted + t.rejected_total(), "{t:?}");
        assert!(t.hnf_computations > 0);
        // Every candidate surviving the rank gate reaches a condition test.
        assert_eq!(t.condition_hits.total(), t.hnf_computations - t.rejected_rank);
        assert_eq!(t.condition_hits.exact, t.condition_hits.total(), "default kind is Exact");
        let last = t.levels.last().expect("levels recorded");
        assert_eq!((last.objective, last.accepted), (24, 1));
        assert_eq!(t.levels.iter().map(|l| l.enumerated).sum::<u64>(), t.enumerated);
        assert!(t.budget_limit.is_none());

        // Under the paper's conditions the r = 1 dispatch (Theorem 3.1)
        // carries the load for a 3-D → linear-array search.
        let paper = Procedure51::new(&alg, &s)
            .condition(ConditionKind::Paper)
            .solve()
            .unwrap();
        assert!(paper.telemetry.condition_hits.thm_3_1 > 0, "{:?}", paper.telemetry);
        assert_eq!(paper.telemetry.condition_hits.exact, 0);
    }

    #[test]
    fn budget_telemetry_records_limit_and_fallback_effort() {
        let alg = algorithms::matmul(3);
        let s = SpaceMap::row(&[1, 1, -1]);
        let out = Procedure51::new(&alg, &s)
            .budget(SearchBudget::candidates(2))
            .solve()
            .unwrap();
        assert_eq!(out.telemetry.budget_limit, Some(BudgetLimit::Candidates));
        assert!(out.telemetry.fallback_screened > 0);
        assert!(out.telemetry.condition_hits.exact > 0, "fallback screens exactly");
    }

    #[test]
    fn parallel_search_single_thread_delegates() {
        let alg = algorithms::matmul(3);
        let s = SpaceMap::row(&[1, 1, -1]);
        let a = Procedure51::new(&alg, &s).solve().unwrap().into_mapping().unwrap();
        let b = Procedure51::new(&alg, &s).solve_parallel(1).unwrap().into_mapping().unwrap();
        assert_eq!(a.objective, b.objective);
    }

    #[test]
    fn search_gives_up_at_cap() {
        // An impossible requirement: tiny objective cap means the candidate
        // space is exhausted without an acceptable schedule.
        let alg = algorithms::matmul(2);
        let s = SpaceMap::row(&[1, 1, -1]);
        let out = Procedure51::new(&alg, &s).max_objective(2).solve().unwrap();
        assert_eq!(out.certification, Certification::Infeasible);
        assert!(out.mapping.is_none());
        assert!(out.candidates_examined > 0);
    }

    #[test]
    fn tiny_budget_degrades_to_best_effort() {
        let alg = algorithms::matmul(3);
        let s = SpaceMap::row(&[1, 1, -1]);
        let out = Procedure51::new(&alg, &s)
            .budget(SearchBudget::candidates(2))
            .solve()
            .expect("degrades, does not fail");
        let Certification::BestEffort { candidates_examined } = out.certification else {
            panic!("expected BestEffort, got {:?}", out.certification);
        };
        assert_eq!(candidates_examined, 2);
        let m = out.mapping.expect("fallback mapping present");
        // The fallback is a genuinely valid conflict-free mapping.
        assert!(m.mapping.respects_dependencies(&alg.deps));
        assert!(m.mapping.has_full_rank());
        assert!(crate::oracle::is_conflict_free_by_enumeration(&m.mapping, &alg.index_set));
    }

    #[test]
    fn budget_degradation_is_deterministic() {
        let alg = algorithms::matmul(3);
        let s = SpaceMap::row(&[1, 1, -1]);
        let a = Procedure51::new(&alg, &s)
            .budget(SearchBudget::candidates(3))
            .solve()
            .unwrap();
        let b = Procedure51::new(&alg, &s)
            .budget(SearchBudget::candidates(3))
            .solve()
            .unwrap();
        assert_eq!(a.certification, b.certification);
        assert_eq!(
            a.mapping.unwrap().schedule.as_slice(),
            b.mapping.unwrap().schedule.as_slice()
        );
    }

    #[test]
    fn generous_budget_still_finds_optimum() {
        let alg = algorithms::matmul(3);
        let s = SpaceMap::row(&[1, 1, -1]);
        let free = Procedure51::new(&alg, &s).solve().unwrap();
        let budgeted = Procedure51::new(&alg, &s)
            .budget(SearchBudget::candidates(1_000_000))
            .solve()
            .unwrap();
        assert!(budgeted.is_optimal());
        assert_eq!(
            free.mapping.unwrap().objective,
            budgeted.mapping.unwrap().objective
        );
    }

    #[test]
    fn zero_wall_clock_budget_degrades_immediately() {
        let alg = algorithms::matmul(3);
        let s = SpaceMap::row(&[1, 1, -1]);
        let out = Procedure51::new(&alg, &s)
            .budget(SearchBudget::wall_clock(std::time::Duration::ZERO))
            .solve()
            .expect("degrades, does not fail");
        assert!(out.certification.is_best_effort());
    }

    #[test]
    fn cancel_token_winds_search_down_mid_enumeration() {
        use crate::budget::CancelToken;
        use std::sync::atomic::{AtomicU64, Ordering};

        let alg = algorithms::matmul(4);
        let s = SpaceMap::row(&[1, 1, -1]);
        let token = CancelToken::new();
        let seen = AtomicU64::new(0);
        let cancel_after = 5u64;
        let t = token.clone();
        let probe = move |_pi: &[i64]| {
            if seen.fetch_add(1, Ordering::Relaxed) + 1 == cancel_after {
                t.cancel();
            }
        };
        let out = Procedure51::new(&alg, &s)
            .cancel_token(&token)
            .candidate_probe(&probe)
            .solve()
            .expect("cancellation degrades, does not fail");
        assert!(out.certification.is_best_effort());
        assert_eq!(out.telemetry.budget_limit, Some(BudgetLimit::Cancelled));
        // The cancelled candidate itself is still screened; the search
        // stops before the next one.
        assert_eq!(out.candidates_examined, cancel_after + 1);
        // Time-critical degradation takes the first valid fallback
        // instead of screening the full n!·2ⁿ = 48 family.
        assert!(out.telemetry.fallback_screened < 48);
        assert!(out.mapping.is_some());
    }

    #[test]
    fn pre_cancelled_search_returns_without_enumerating() {
        use crate::budget::CancelToken;

        let alg = algorithms::matmul(4);
        let s = SpaceMap::row(&[1, 1, -1]);
        let token = CancelToken::new();
        token.cancel();
        let out = Procedure51::new(&alg, &s)
            .cancel_token(&token)
            .solve()
            .expect("degrades");
        assert!(out.certification.is_best_effort());
        assert_eq!(out.candidates_examined, 0);
        assert_eq!(out.telemetry.budget_limit, Some(BudgetLimit::Cancelled));
    }

    #[test]
    fn candidate_counting_grows_with_cost() {
        let alg = algorithms::matmul(3);
        let s = SpaceMap::row(&[1, 1, -1]);
        let proc = Procedure51::new(&alg, &s);
        let c10 = proc.count_candidates(10);
        let c20 = proc.count_candidates(20);
        assert!(c20 > c10);
        assert!(c10 > 0);
    }

    #[test]
    fn paper_searches_never_spill_to_bignum() {
        // Acceptance criterion of the small-integer fast path: the full
        // Procedure 5.1 searches for the paper's worked examples stay on
        // the inline i64 representation end to end — zero heap-spilling
        // Int promotions on this thread.
        for (alg, s_row) in [
            (algorithms::matmul(4), vec![1i64, 1, -1]),
            (algorithms::transitive_closure(4), vec![0, 0, 1]),
        ] {
            let s = SpaceMap::row(&s_row);
            let before = cfmap_intlin::thread_bigint_spills();
            let opt = Procedure51::new(&alg, &s)
                .solve()
                .expect("search ran")
                .expect_optimal("optimum exists");
            assert!(opt.objective > 0);
            assert_eq!(
                cfmap_intlin::thread_bigint_spills(),
                before,
                "{}: search spilled to bignum",
                alg.name
            );
        }
    }

    #[test]
    fn first_found_is_optimal_invariant() {
        // Cross-check: no valid conflict-free candidate with a smaller
        // objective exists below the reported optimum (probe a grid).
        let alg = algorithms::matmul(3);
        let s = SpaceMap::row(&[1, 1, -1]);
        let opt = Procedure51::new(&alg, &s).solve().unwrap().into_mapping().unwrap();
        let mu = alg.index_set.mu();
        for p1 in -3i64..=3 {
            for p2 in -3i64..=3 {
                for p3 in -3i64..=3 {
                    let pi = [p1, p2, p3];
                    let cost: i64 = pi.iter().zip(mu).map(|(p, m)| p.abs() * m).sum();
                    if cost >= opt.objective || cost == 0 {
                        continue;
                    }
                    let sched = LinearSchedule::new(&pi);
                    if !sched.is_valid_for(&alg.deps) {
                        continue;
                    }
                    let m = MappingMatrix::new(s.clone(), sched);
                    if !m.has_full_rank() {
                        continue;
                    }
                    assert!(
                        !crate::oracle::is_conflict_free_by_enumeration(&m, &alg.index_set),
                        "Π = {pi:?} beats the reported optimum"
                    );
                }
            }
        }
    }
}
