//! Brute-force conflict detection by exhaustive enumeration.
//!
//! The paper's conclusion stresses that *"without these necessary and
//! sufficient conditions … even the optimization procedure has to
//! enumerate all index points of the algorithm to see if there is a
//! computational conflict."* This module is that enumeration — kept as
//! (a) the ground-truth oracle our closed-form conditions are validated
//! against in tests, and (b) the baseline whose cost experiment E7b
//! measures against the closed-form test.

use crate::conflict::ConflictWitness;
use crate::mapping::MappingMatrix;
use cfmap_model::IndexSet;
use std::collections::HashMap;

/// Scan every index point, hashing its image `T·j̄`; report the first
/// colliding pair, or `None` if the mapping is injective on `J`.
///
/// Cost: `O(|J|)` time and space — exponential in `n`, which is exactly
/// why the paper's closed-form conditions matter.
pub fn find_conflict(mapping: &MappingMatrix, index_set: &IndexSet) -> Option<ConflictWitness> {
    assert_eq!(mapping.dim(), index_set.dim(), "T and J dimension mismatch");
    let mut seen: HashMap<(Vec<i64>, i64), Vec<i64>> =
        HashMap::with_capacity(index_set.len().min(1 << 22) as usize);
    for j in index_set.iter() {
        let image = mapping.apply(&j);
        if let Some(prev) = seen.get(&image) {
            return Some(ConflictWitness { j1: prev.clone(), j2: j });
        }
        seen.insert(image, j);
    }
    None
}

/// `true` iff the mapping is injective on the index set (conflict-free),
/// decided by enumeration.
pub fn is_conflict_free_by_enumeration(mapping: &MappingMatrix, index_set: &IndexSet) -> bool {
    find_conflict(mapping, index_set).is_none()
}

/// Count all conflicting *pairs* — useful for reporting how bad a
/// non-conflict-free mapping is (e.g. Figure 1's diagonal chain collapses
/// 5 points onto one (processor, time) pair → C(5,2) = 10 pairs).
pub fn count_conflicting_pairs(mapping: &MappingMatrix, index_set: &IndexSet) -> u128 {
    let mut buckets: HashMap<(Vec<i64>, i64), u128> = HashMap::new();
    for j in index_set.iter() {
        *buckets.entry(mapping.apply(&j)).or_insert(0) += 1;
    }
    buckets.values().map(|&c| c * (c - 1) / 2).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::ConflictAnalysis;
    use crate::mapping::MappingMatrix;
    use cfmap_model::IndexSet;

    #[test]
    fn paper_optimal_matmul_mapping_is_clean() {
        let t = MappingMatrix::from_rows(&[&[1, 1, -1], &[1, 4, 1]]);
        let j = IndexSet::cube(3, 4);
        assert!(is_conflict_free_by_enumeration(&t, &j));
        assert_eq!(count_conflicting_pairs(&t, &j), 0);
    }

    #[test]
    fn rejected_candidate_pi1_conflicts() {
        // Π1 = [1, 1, μ] from the appendix: conflict vector [1, −1, 0].
        let t = MappingMatrix::from_rows(&[&[1, 1, -1], &[1, 1, 4]]);
        let j = IndexSet::cube(3, 4);
        let w = find_conflict(&t, &j).expect("must conflict");
        assert_eq!(t.apply(&w.j1), t.apply(&w.j2));
        assert_ne!(w.j1, w.j2);
        assert!(count_conflicting_pairs(&t, &j) > 0);
    }

    #[test]
    fn eq_2_8_mapping_conflicts_via_gamma3() {
        let t = MappingMatrix::from_rows(&[&[1, 7, 1, 1], &[1, 7, 1, 0]]);
        let j = IndexSet::cube(4, 6);
        let w = find_conflict(&t, &j).expect("Example 2.1 mapping is not conflict-free");
        // Difference of the witness pair must be an in-box kernel vector.
        let diff: Vec<i64> = w.j2.iter().zip(&w.j1).map(|(a, b)| a - b).collect();
        let diff_vec = cfmap_intlin::IVec::from_i64s(&diff);
        assert!(t.as_mat().mul_vec(&diff_vec).is_zero());
    }

    #[test]
    fn figure_1_conflict_count() {
        // A 2-D sanity instance in the spirit of Figure 1: T = [1, −1]
        // (1×2 mapping: k = 1, a "0-dimensional array" = single point in
        // space-time per value) over {0..4}²: γ = [1, 1] collapses each
        // diagonal; diagonals have sizes 1,2,3,4,5,4,3,2,1 →
        // Σ C(s,2) = 0+1+3+6+10+6+3+1+0 = 30 pairs.
        let t = MappingMatrix::from_rows(&[&[1, -1], &[1, -1]]);
        // from_rows needs ≥ 2 rows; duplicate row keeps image identical to
        // the 1-row mapping for counting purposes.
        let j = IndexSet::new(&[4, 4]);
        assert_eq!(count_conflicting_pairs(&t, &j), 30);
    }

    cfmap_testkit::props! {
        cases = 40;

        /// The oracle and the exact lattice checker must always agree.
        fn oracle_agrees_with_exact_checker(
            s in cfmap_testkit::gen::vec(-3i64..=3, 3),
            pi in cfmap_testkit::gen::vec(-3i64..=3, 3),
            mu in 1i64..5,
        ) {
            let t = MappingMatrix::from_rows(&[&s[..], &pi[..]]);
            let j = IndexSet::cube(3, mu);
            let analysis = ConflictAnalysis::new(&t, &j);
            assert_eq!(
                analysis.is_conflict_free_exact(),
                is_conflict_free_by_enumeration(&t, &j),
                "disagreement for S={:?} Π={:?} μ={}", s, pi, mu
            );
        }

        /// 4-D, k = 2 (two-dimensional kernel): same agreement.
        fn oracle_agrees_with_exact_checker_4d(
            s in cfmap_testkit::gen::vec(-2i64..=2, 4),
            pi in cfmap_testkit::gen::vec(-2i64..=2, 4),
            mu in 1i64..4,
        ) {
            let t = MappingMatrix::from_rows(&[&s[..], &pi[..]]);
            let j = IndexSet::cube(4, mu);
            let analysis = ConflictAnalysis::new(&t, &j);
            assert_eq!(
                analysis.is_conflict_free_exact(),
                is_conflict_free_by_enumeration(&t, &j),
                "disagreement for S={:?} Π={:?} μ={}", s, pi, mu
            );
        }
    }
}
