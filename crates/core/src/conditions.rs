//! The closed-form conflict-freedom conditions of Sections 3 and 4.
//!
//! All conditions operate on the Hermite multiplier `U` of `T·U = [L, 0]`
//! (Theorem 4.1): writing `r = n − k` for the kernel dimension and
//! `ū_{k+1}, …, ū_n` for the last `r` columns of `U`, every conflict
//! vector of `T` is a primitive integral combination `γ = Σ β_l·ū_{k+l}`
//! (Theorem 4.2).
//!
//! | `r` | condition | paper | status |
//! |---|---|---|---|
//! | 1 | unique `γ` feasible | Thm 3.1 | necessary & sufficient |
//! | any | each `V` column has a nonzero among its first `k` entries | Thm 4.3 | necessary |
//! | any | each `ū_l` feasible | Thm 4.4 | necessary |
//! | any | row-gcd bound on an invertible row subset | Thm 4.5 | sufficient |
//! | 2 | gcd + annihilator condition | Thm 4.6 | sufficient |
//! | 2 | sign-pattern conditions (1)–(3) | Thm 4.7 | sufficient; **necessity fails** (see below) |
//! | 3 | sign-pattern conditions (1)–(5) | Thm 4.8 | sufficient; necessity inherits the same flaw |
//!
//! **Reproduction finding 1 (necessity gap).** The necessity direction of
//! Theorem 4.7 assumes that when no *same-sign* row has
//! `|u_{i,n−1} + u_{i,n}| > μ_i`, the conflict vector `ū_{n−1} + ū_n` is
//! non-feasible. That inference overlooks mixed-sign rows: with kernel
//! columns `ū₁ = [10, −3, 1, 0]ᵀ`, `ū₂ = [−3, 10, 0, 1]ᵀ` and
//! `μ = (5, 5, 1, 1)`, every conflict vector is feasible (the mapping *is*
//! conflict-free — confirmed by exhaustive enumeration in the tests), yet
//! condition (1) of Theorem 4.7 fails. The conditions remain *sufficient*,
//! which is what Procedure 5.1's soundness needs; our optimizer therefore
//! offers both the paper's conditions and the exact lattice test
//! ([`crate::conflict::ConflictAnalysis::is_conflict_free_exact`]).
//!
//! **Reproduction finding 2 (Theorem 4.8 soundness repair).** For kernel
//! dimension 3, conflict vectors `γ = β₁ū₁ + β₂ū₂ + β₃ū₃` with exactly one
//! zero coefficient (e.g. `β = (1, −1, 0)`) are covered by **neither** the
//! four full sign-pattern conditions (their bound `|±u₁ ± u₂ ± u₃| > μ_i`
//! includes the third column, which contributes nothing to this `γ`) nor
//! condition (5)'s axis feasibility. Concretely, for
//! `T = [[1,1,0,0,0], [1,3,6,6,1]]` over `μ = (2,2,2,1,1)` the conditions
//! (1)–(5) as stated all pass, yet `γ = [0,0,1,−1,0]ᵀ` is an in-box kernel
//! vector — a conflict (regression test below). The repaired — and, for
//! any kernel dimension, sound — form adds the analogous condition for
//! **every nonempty support subset** of the coefficients; for dimension 2
//! the repair coincides with Theorem 4.7. [`sign_pattern_condition_on_basis`]
//! implements the repaired form.

use crate::conflict::{feasibility, ConflictAnalysis, Feasibility};
use cfmap_intlin::{IVec, Int};
use cfmap_model::IndexSet;

/// Which conflict-freedom test to use (Procedure 5.1 step 5(3) plug-in).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConditionKind {
    /// The paper's closed-form conditions, dispatched on `n − k` exactly
    /// as Procedure 5.1 prescribes (Thm 3.1 / 4.7 / 4.8 / 4.5).
    Paper,
    /// The exact integer-lattice test (ground truth; still closed-form in
    /// the sense that no index point is ever enumerated).
    Exact,
}

/// Outcome of a closed-form test: the paper's `r > 3` fallback
/// (Theorem 4.5) is only sufficient, so "fails the test" does not always
/// mean "has conflicts".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConditionVerdict {
    /// Certified conflict-free.
    ConflictFree,
    /// Certified to have a conflict (a non-feasible conflict vector
    /// exists).
    HasConflict,
    /// The (sufficient-only) condition did not fire; no certificate.
    Unknown,
}

impl ConditionVerdict {
    /// Collapse to a boolean the way Procedure 5.1 does: only a positive
    /// certificate counts.
    pub fn accepts(self) -> bool {
        self == ConditionVerdict::ConflictFree
    }
}

/// Theorem 3.1 (`r = 1`): `T ∈ Z^{(n−1)×n}` is conflict-free iff its
/// unique conflict vector is feasible.
pub fn theorem_3_1(analysis: &ConflictAnalysis<'_>, index_set: &IndexSet) -> ConditionVerdict {
    let Some(gamma) = analysis.unique_conflict_vector() else {
        return ConditionVerdict::Unknown; // not an r = 1 instance
    };
    match feasibility(&gamma, index_set) {
        Feasibility::Feasible => ConditionVerdict::ConflictFree,
        Feasibility::NonFeasible => ConditionVerdict::HasConflict,
    }
}

/// Theorem 4.3 (necessary): every column of `V = U⁻¹` must have a nonzero
/// entry among its first `k` rows. Returns `false` if the necessary
/// condition is violated (⇒ `T` is certainly not conflict-free, because a
/// unit vector is then a conflict vector).
pub fn theorem_4_3_necessary(analysis: &ConflictAnalysis<'_>) -> bool {
    let v = analysis.hnf().v();
    let k = analysis.rank();
    (0..v.ncols()).all(|c| (0..k).any(|r| !v.get(r, c).is_zero()))
}

/// Theorem 4.4 (necessary): the kernel columns `ū_{k+1}, …, ū_n`
/// themselves must be feasible conflict vectors.
pub fn theorem_4_4_necessary(analysis: &ConflictAnalysis<'_>, index_set: &IndexSet) -> bool {
    analysis
        .lattice_basis()
        .iter()
        .all(|u| feasibility(u, index_set) == Feasibility::Feasible)
}

/// Theorem 4.5 (sufficient, any `r`): if there are rows `i₁ < … < i_r`
/// such that the `r×r` block `U[{i}, kernel cols]` is nonsingular and each
/// chosen row's gcd `gcd(u_{i,k+1}, …, u_{i,n}) ≥ μ_i + 1`, then `T` is
/// conflict-free.
pub fn theorem_4_5_sufficient(
    analysis: &ConflictAnalysis<'_>,
    index_set: &IndexSet,
) -> ConditionVerdict {
    let basis = analysis.lattice_basis();
    let r = basis.len();
    if r == 0 {
        return ConditionVerdict::ConflictFree; // injective on Z^n
    }
    let n = index_set.dim();
    // Candidate rows: gcd already large enough.
    let candidates: Vec<usize> = (0..n)
        .filter(|&i| {
            let g = basis.iter().fold(Int::zero(), |acc, u| acc.gcd(&u[i]));
            g > Int::from(index_set.mu_i(i))
        })
        .collect();
    if candidates.len() < r {
        return ConditionVerdict::Unknown;
    }
    // Search candidate subsets of size r for a nonsingular block.
    let u_ker = cfmap_intlin::IMat::from_cols(&basis);
    let mut chosen: Vec<usize> = Vec::new();
    if pick_nonsingular(&u_ker, &candidates, r, 0, &mut chosen) {
        ConditionVerdict::ConflictFree
    } else {
        ConditionVerdict::Unknown
    }
}

fn pick_nonsingular(
    u_ker: &cfmap_intlin::IMat,
    candidates: &[usize],
    r: usize,
    start: usize,
    chosen: &mut Vec<usize>,
) -> bool {
    if chosen.len() == r {
        return !u_ker.select_rows(chosen).det().is_zero();
    }
    for idx in start..candidates.len() {
        chosen.push(candidates[idx]);
        if pick_nonsingular(u_ker, candidates, r, idx + 1, chosen) {
            return true;
        }
        chosen.pop();
    }
    false
}

/// Theorem 4.6 (sufficient, `r = 2`): (1) some row `i` has
/// `gcd(u_{i,n−1}, u_{i,n}) ≥ μ_i + 1`; (2) for the (unique up to sign)
/// primitive `β` annihilating row `i`, some other row `j` has
/// `|β_{n−1}·u_{j,n−1} + β_n·u_{j,n}| > μ_j`.
pub fn theorem_4_6_sufficient(
    analysis: &ConflictAnalysis<'_>,
    index_set: &IndexSet,
) -> ConditionVerdict {
    let basis = analysis.lattice_basis();
    if basis.len() != 2 {
        return ConditionVerdict::Unknown;
    }
    let (u1, u2) = (&basis[0], &basis[1]);
    let n = index_set.dim();
    for i in 0..n {
        let g = u1[i].gcd(&u2[i]);
        if g <= Int::from(index_set.mu_i(i)) {
            continue; // condition (1) fails at this row
        }
        // β annihilating row i: (u2[i], −u1[i]) reduced to primitive form.
        // (g > μ_i ≥ 0 ⇒ not both entries are zero.)
        let beta = IVec::new(vec![u2[i].clone(), -&u1[i]]);
        let beta = beta.primitive_part().expect("nonzero by condition (1)");
        let ok = (0..n).filter(|&j| j != i).any(|j| {
            let val = &(&beta[0] * &u1[j]) + &(&beta[1] * &u2[j]);
            val.abs() > Int::from(index_set.mu_i(j))
        });
        if ok {
            return ConditionVerdict::ConflictFree;
        }
    }
    ConditionVerdict::Unknown
}

/// The sign-pattern conditions shared by Theorems 4.7 and 4.8 (and their
/// natural generalization to any `r`): for every sign pattern
/// `σ ∈ {±1}^r` up to global negation, some row `i` must have its
/// σ-weighted kernel entries `σ_l·u_{i,l}` all of one sign (zeros are
/// wildcards — the paper's "sign of zero is either positive or negative")
/// with `|Σ_l σ_l·u_{i,l}| > μ_i`; plus Theorem 4.4's axis feasibility.
///
/// For `r = 2` this is exactly Theorem 4.7 (conditions (1) = pattern
/// `(+,+)`, (2) = pattern `(+,−)`, (3) = axis feasibility); for `r = 3`
/// exactly Theorem 4.8.
pub fn sign_pattern_condition(
    analysis: &ConflictAnalysis<'_>,
    index_set: &IndexSet,
) -> ConditionVerdict {
    let basis = analysis.lattice_basis();
    if basis.len() == 1 {
        return theorem_3_1(analysis, index_set);
    }
    sign_pattern_condition_on_basis(&basis, index_set)
}

/// [`sign_pattern_condition`] on an explicitly supplied kernel basis.
///
/// The theorem's verdict depends on *which* Hermite multiplier was
/// computed — different valid `U`s can make the (sufficient-only)
/// condition fire or not. This entry point lets callers (and the
/// necessity-counterexample test) pin the basis; the sufficiency proof
/// only uses that the kernel is the integral span of the basis, so a
/// `ConflictFree` verdict is sound for any basis of the lattice.
pub fn sign_pattern_condition_on_basis(
    basis: &[IVec],
    index_set: &IndexSet,
) -> ConditionVerdict {
    let r = basis.len();
    if r == 0 {
        return ConditionVerdict::ConflictFree;
    }
    // Condition "axis": each ū_l feasible (Theorem 4.4, also necessary).
    if basis.iter().any(|u| feasibility(u, index_set) == Feasibility::NonFeasible) {
        return ConditionVerdict::HasConflict; // a necessary condition failed
    }
    let n = index_set.dim();
    // Every nonempty support subset of the β coefficients, every sign
    // pattern on it up to global negation (fix the first chosen σ = +1).
    // Subsets of size 1 are the axis condition above; subsets of size r
    // are the paper's conditions; the intermediate sizes are the
    // **soundness repair** the module docs describe — a conflict vector
    // with zero β components is covered by no full pattern.
    for subset_bits in 1u32..(1 << r) {
        let support: Vec<usize> = (0..r).filter(|l| subset_bits >> l & 1 == 1).collect();
        let s = support.len();
        if s < 2 {
            continue; // singletons handled by the axis condition
        }
        for pattern_bits in 0..(1u32 << (s - 1)) {
            let sigma: Vec<i8> = std::iter::once(1i8)
                .chain((0..s - 1).map(|b| if pattern_bits >> b & 1 == 1 { -1 } else { 1 }))
                .collect();
            let satisfied = (0..n).any(|i| {
                let weighted: Vec<Int> = support
                    .iter()
                    .zip(&sigma)
                    .map(|(&l, &sg)| if sg > 0 { basis[l][i].clone() } else { -&basis[l][i] })
                    .collect();
                let all_nonneg = weighted.iter().all(|w| !w.is_negative());
                let all_nonpos = weighted.iter().all(|w| !w.is_positive());
                if !(all_nonneg || all_nonpos) {
                    return false;
                }
                let sum: Int = weighted.iter().sum();
                sum.abs() > Int::from(index_set.mu_i(i))
            });
            if !satisfied {
                return ConditionVerdict::Unknown;
            }
        }
    }
    ConditionVerdict::ConflictFree
}

/// Theorem 4.7: the `r = 2` (i.e. `T ∈ Z^{(n−2)×n}`) conditions.
/// Sufficient always; see the module docs for the necessity caveat.
pub fn theorem_4_7(analysis: &ConflictAnalysis<'_>, index_set: &IndexSet) -> ConditionVerdict {
    if analysis.lattice_basis().len() != 2 {
        return ConditionVerdict::Unknown;
    }
    sign_pattern_condition(analysis, index_set)
}

/// Theorem 4.8: the `r = 3` (i.e. `T ∈ Z^{(n−3)×n}`) conditions.
pub fn theorem_4_8(analysis: &ConflictAnalysis<'_>, index_set: &IndexSet) -> ConditionVerdict {
    if analysis.lattice_basis().len() != 3 {
        return ConditionVerdict::Unknown;
    }
    sign_pattern_condition(analysis, index_set)
}

/// The dispatch Procedure 5.1 step 5(3) prescribes: Theorem 3.1 for
/// `r = 1`, Theorem 4.7 for `r = 2`, Theorem 4.8 for `r = 3`,
/// Theorem 4.5 otherwise.
pub fn paper_condition(analysis: &ConflictAnalysis<'_>, index_set: &IndexSet) -> ConditionVerdict {
    match analysis.lattice_basis().len() {
        0 => ConditionVerdict::ConflictFree,
        1 => theorem_3_1(analysis, index_set),
        2 | 3 => sign_pattern_condition(analysis, index_set),
        _ => theorem_4_5_sufficient(analysis, index_set),
    }
}

/// Which rule [`check`] will dispatch to for this analysis — the
/// telemetry label of a conflict-freedom test. Mirrors the dispatch in
/// [`paper_condition`] exactly (Theorem 4.7 and 4.8 both route through
/// the repaired sign-pattern condition, but remain distinct rules for
/// the effort statistics).
pub fn rule_for(
    kind: ConditionKind,
    analysis: &ConflictAnalysis<'_>,
) -> crate::metrics::ConditionRule {
    use crate::metrics::ConditionRule;
    match kind {
        ConditionKind::Exact => ConditionRule::Exact,
        ConditionKind::Paper => match analysis.lattice_basis().len() {
            0 => ConditionRule::Trivial,
            1 => ConditionRule::Theorem31,
            2 => ConditionRule::Theorem47,
            3 => ConditionRule::Theorem48,
            _ => ConditionRule::Theorem45,
        },
    }
}

/// Run the configured condition kind through the process-wide
/// kernel-lattice conflict memo (see
/// [`ConflictAnalysis::is_conflict_free_exact_memoized`]). Only the
/// exact test is memoized — its verdict depends solely on
/// `(ker_Z(T), μ)` — while the paper's closed forms are basis-dependent
/// and cheap, so they run directly. Verdicts are identical to
/// [`check`]; memo traffic is recorded in `tel`.
pub fn check_memoized(
    kind: ConditionKind,
    analysis: &ConflictAnalysis<'_>,
    index_set: &IndexSet,
    tel: &mut crate::metrics::SearchTelemetry,
) -> ConditionVerdict {
    match kind {
        ConditionKind::Paper => paper_condition(analysis, index_set),
        ConditionKind::Exact => {
            let (free, probe) = analysis.is_conflict_free_exact_memoized();
            match probe {
                crate::conflict::MemoProbe::Hit => tel.memo_hits += 1,
                crate::conflict::MemoProbe::Miss => tel.memo_misses += 1,
                crate::conflict::MemoProbe::Bypass => {}
            }
            if free {
                ConditionVerdict::ConflictFree
            } else {
                ConditionVerdict::HasConflict
            }
        }
    }
}

/// Run the configured condition kind.
pub fn check(
    kind: ConditionKind,
    analysis: &ConflictAnalysis<'_>,
    index_set: &IndexSet,
) -> ConditionVerdict {
    match kind {
        ConditionKind::Paper => paper_condition(analysis, index_set),
        ConditionKind::Exact => {
            if analysis.is_conflict_free_exact() {
                ConditionVerdict::ConflictFree
            } else {
                ConditionVerdict::HasConflict
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingMatrix;
    use crate::oracle;
    use cfmap_model::IndexSet;

    fn mapping(rows: &[&[i64]]) -> MappingMatrix {
        MappingMatrix::from_rows(rows)
    }

    #[test]
    fn theorem_3_1_on_matmul_candidates() {
        let j = IndexSet::cube(3, 4);
        // Optimal Π = [1, 4, 1]: conflict-free.
        let t = mapping(&[&[1, 1, -1], &[1, 4, 1]]);
        let a = ConflictAnalysis::new(&t, &j);
        assert_eq!(theorem_3_1(&a, &j), ConditionVerdict::ConflictFree);
        // Rejected Π1 = [1, 1, 4]: conflict.
        let t = mapping(&[&[1, 1, -1], &[1, 1, 4]]);
        let a = ConflictAnalysis::new(&t, &j);
        assert_eq!(theorem_3_1(&a, &j), ConditionVerdict::HasConflict);
    }

    #[test]
    fn theorem_4_3_violated_by_unit_kernel() {
        // T whose kernel contains a unit vector: T = [[1,0,0],[0,1,0]]
        // has kernel e₃, so V's third column has zeros in its first two
        // rows ⇒ Theorem 4.3 necessary condition fails.
        let t = mapping(&[&[1, 0, 0], &[0, 1, 0]]);
        let j = IndexSet::cube(3, 2);
        let a = ConflictAnalysis::new(&t, &j);
        assert!(!theorem_4_3_necessary(&a));
        // And indeed there is a conflict (e₃ stays inside the box).
        assert!(!a.is_conflict_free_exact());
    }

    #[test]
    fn theorem_4_3_holds_for_clean_mapping() {
        let t = mapping(&[&[1, 1, -1], &[1, 4, 1]]);
        let j = IndexSet::cube(3, 4);
        let a = ConflictAnalysis::new(&t, &j);
        assert!(theorem_4_3_necessary(&a));
        assert!(theorem_4_4_necessary(&a, &j));
    }

    #[test]
    fn theorem_4_5_certifies_scaled_kernel() {
        // Kernel basis with a row of large-gcd entries: T = [[1,0,-7],[0,1,0]]
        // has kernel ū = [7, 0, 1]... compute: Tγ=0 ⇒ γ1 = 7γ3, γ2 = 0.
        // Basis [7, 0, 1]: row 0 gcd = 7 ≥ μ0+1 for μ0 ≤ 6.
        let t = mapping(&[&[1, 0, -7], &[0, 1, 0]]);
        let j = IndexSet::new(&[6, 6, 6]);
        let a = ConflictAnalysis::new(&t, &j);
        assert_eq!(theorem_4_5_sufficient(&a, &j), ConditionVerdict::ConflictFree);
        assert!(a.is_conflict_free_exact());
        // With μ0 = 7 the certificate must not fire (γ = [7,0,1] fits).
        let j_big = IndexSet::new(&[7, 6, 6]);
        let a2 = ConflictAnalysis::new(&t, &j_big);
        assert_eq!(theorem_4_5_sufficient(&a2, &j_big), ConditionVerdict::Unknown);
        assert!(!a2.is_conflict_free_exact());
    }

    #[test]
    fn theorem_4_7_on_eq_2_8() {
        // Example 2.1 / 4.1 / 4.2: T of Eq 2.8 over {0..6}⁴ is NOT
        // conflict-free (γ3 = [1,0,−1,0]); Theorem 4.7 must not certify it.
        let t = mapping(&[&[1, 7, 1, 1], &[1, 7, 1, 0]]);
        let j = IndexSet::cube(4, 6);
        let a = ConflictAnalysis::new(&t, &j);
        let verdict = theorem_4_7(&a, &j);
        assert_ne!(verdict, ConditionVerdict::ConflictFree);
        assert!(!a.is_conflict_free_exact());
    }

    #[test]
    fn theorem_4_7_certifies_good_4d_mapping() {
        // Build a 2×4 mapping that is conflict-free over {0..6}⁴ and check
        // the paper condition fires. T = [[1,7,1,1],[0,1,15,3]] — search
        // in tests below found such; here use a hand-verified one:
        // kernel of T = [[1, 0, 0, -7], [0, 1, 0, -7]] is spanned by
        // [0,0,1,0] → unit kernel vector: conflicts. Instead take
        // T = [[1,0,0,7],[0,1,7,0]]: kernel basis {[0,-7,1,0],[-7,0,0,1]}.
        let t = mapping(&[&[1, 0, 0, 7], &[0, 1, 7, 0]]);
        let j = IndexSet::cube(4, 6);
        let a = ConflictAnalysis::new(&t, &j);
        assert_eq!(theorem_4_7(&a, &j), ConditionVerdict::ConflictFree);
        assert!(a.is_conflict_free_exact());
        assert!(oracle::is_conflict_free_by_enumeration(&t, &j));
    }

    #[test]
    fn theorem_4_7_necessity_counterexample() {
        // The reproduction finding documented in the module docs: a
        // conflict-free T ∈ Z^{2×4} that Theorem 4.7 fails to certify.
        // Kernel columns ū₁ = [10,−3,1,0], ū₂ = [−3,10,0,1];
        // T = [[1,0,−10,3],[0,1,3,−10]] annihilates both.
        let t = mapping(&[&[1, 0, -10, 3], &[0, 1, 3, -10]]);
        let j = IndexSet::new(&[5, 5, 1, 1]);
        let a = ConflictAnalysis::new(&t, &j);
        // Exhaustive ground truth: conflict-free.
        assert!(oracle::is_conflict_free_by_enumeration(&t, &j));
        assert!(a.is_conflict_free_exact());
        // With the kernel basis {ū₁, ū₂} (a valid Hermite-multiplier
        // kernel block: it generates exactly ker_Z(T)), the theorem's
        // condition (1) has no qualifying row, so the test cannot certify
        // the (actually conflict-free) mapping: the necessity gap.
        let u1 = IVec::from_i64s(&[10, -3, 1, 0]);
        let u2 = IVec::from_i64s(&[-3, 10, 0, 1]);
        assert!(t.as_mat().mul_vec(&u1).is_zero());
        assert!(t.as_mat().mul_vec(&u2).is_zero());
        let verdict = sign_pattern_condition_on_basis(&[u1, u2], &j);
        assert_eq!(verdict, ConditionVerdict::Unknown);
    }

    #[test]
    fn theorem_4_8_soundness_repair_regression() {
        // Reproduction finding 2: conditions (1)–(5) of Theorem 4.8 as
        // literally stated pass for this mapping, but β = (1,−1,0)-type
        // conflict vectors slip through; the repaired subset condition
        // must NOT certify it.
        let t = mapping(&[&[1, 1, 0, 0, 0], &[1, 3, 6, 6, 1]]);
        let j = IndexSet::new(&[2, 2, 2, 1, 1]);
        let a = ConflictAnalysis::new(&t, &j);
        assert_eq!(a.lattice_basis().len(), 3);
        // Ground truth: γ = [0,0,1,−1,0] is an in-box kernel vector.
        let gamma = IVec::from_i64s(&[0, 0, 1, -1, 0]);
        assert!(t.as_mat().mul_vec(&gamma).is_zero());
        assert!(!a.is_conflict_free_exact());
        assert!(!oracle::is_conflict_free_by_enumeration(&t, &j));
        // Repaired condition: no false certificate.
        assert_ne!(theorem_4_8(&a, &j), ConditionVerdict::ConflictFree);
        assert_ne!(paper_condition(&a, &j), ConditionVerdict::ConflictFree);
    }

    #[test]
    fn paper_condition_dispatch() {
        let j3 = IndexSet::cube(3, 4);
        let t1 = mapping(&[&[1, 1, -1], &[1, 4, 1]]); // r = 1
        let a1 = ConflictAnalysis::new(&t1, &j3);
        assert!(paper_condition(&a1, &j3).accepts());

        let j4 = IndexSet::cube(4, 6);
        let t2 = mapping(&[&[1, 0, 0, 7], &[0, 1, 7, 0]]); // r = 2
        let a2 = ConflictAnalysis::new(&t2, &j4);
        assert!(paper_condition(&a2, &j4).accepts());

        // Full-rank square: r = 0.
        let t0 = mapping(&[&[1, 0], &[0, 1]]);
        let j2 = IndexSet::cube(2, 4);
        let a0 = ConflictAnalysis::new(&t0, &j2);
        assert!(paper_condition(&a0, &j2).accepts());
    }

    #[test]
    fn check_dispatches_both_kinds() {
        let t = mapping(&[&[1, 1, -1], &[1, 4, 1]]);
        let j = IndexSet::cube(3, 4);
        let a = ConflictAnalysis::new(&t, &j);
        assert!(check(ConditionKind::Paper, &a, &j).accepts());
        assert!(check(ConditionKind::Exact, &a, &j).accepts());
        let bad = mapping(&[&[1, 1, -1], &[1, 1, 4]]);
        let ab = ConflictAnalysis::new(&bad, &j);
        assert_eq!(check(ConditionKind::Exact, &ab, &j), ConditionVerdict::HasConflict);
    }

    cfmap_testkit::props! {
        cases = 60;

        /// Soundness of every closed-form certificate: whenever any paper
        /// condition answers ConflictFree/HasConflict, the exhaustive
        /// oracle agrees.
        fn certificates_are_sound_3d(
            s in cfmap_testkit::gen::vec(-3i64..=3, 3),
            pi in cfmap_testkit::gen::vec(-3i64..=3, 3),
            mu in 1i64..5,
        ) {
            let t = MappingMatrix::from_rows(&[&s[..], &pi[..]]);
            let j = IndexSet::cube(3, mu);
            let a = ConflictAnalysis::new(&t, &j);
            let truth = oracle::is_conflict_free_by_enumeration(&t, &j);
            match paper_condition(&a, &j) {
                ConditionVerdict::ConflictFree => assert!(truth, "false certificate"),
                ConditionVerdict::HasConflict => assert!(!truth, "false refutation"),
                ConditionVerdict::Unknown => {}
            }
            // Necessary conditions really are necessary.
            if truth {
                assert!(theorem_4_3_necessary(&a));
                assert!(theorem_4_4_necessary(&a, &j));
            }
        }

        fn certificates_are_sound_4d(
            s in cfmap_testkit::gen::vec(-2i64..=2, 4),
            pi in cfmap_testkit::gen::vec(-2i64..=2, 4),
            mu in 1i64..4,
        ) {
            let t = MappingMatrix::from_rows(&[&s[..], &pi[..]]);
            let j = IndexSet::cube(4, mu);
            let a = ConflictAnalysis::new(&t, &j);
            let truth = oracle::is_conflict_free_by_enumeration(&t, &j);
            match paper_condition(&a, &j) {
                ConditionVerdict::ConflictFree => assert!(truth, "false certificate"),
                ConditionVerdict::HasConflict => assert!(!truth, "false refutation"),
                ConditionVerdict::Unknown => {}
            }
            if let ConditionVerdict::ConflictFree = theorem_4_5_sufficient(&a, &j) {
                assert!(truth, "Thm 4.5 false certificate");
            }
            if let ConditionVerdict::ConflictFree = theorem_4_6_sufficient(&a, &j) {
                assert!(truth, "Thm 4.6 false certificate");
            }
        }

        /// Kernel dimension 3 (the repaired Theorem 4.8): soundness against
        /// the oracle on random 2×5 mappings.
        fn certificates_are_sound_5d(
            s in cfmap_testkit::gen::vec(-2i64..=2, 5),
            pi in cfmap_testkit::gen::vec(-2i64..=2, 5),
            mu in 1i64..3,
        ) {
            let t = MappingMatrix::from_rows(&[&s[..], &pi[..]]);
            let j = IndexSet::cube(5, mu);
            let a = ConflictAnalysis::new(&t, &j);
            let truth = oracle::is_conflict_free_by_enumeration(&t, &j);
            match paper_condition(&a, &j) {
                ConditionVerdict::ConflictFree => assert!(truth, "false certificate (5d)"),
                ConditionVerdict::HasConflict => assert!(!truth, "false refutation (5d)"),
                ConditionVerdict::Unknown => {}
            }
        }

        /// For r = 1 (Theorem 3.1) the condition is exactly
        /// necessary-and-sufficient — verify equivalence with the oracle.
        fn theorem_3_1_is_exact(
            s in cfmap_testkit::gen::vec(-3i64..=3, 3),
            pi in cfmap_testkit::gen::vec(-3i64..=3, 3),
            mu in 1i64..5,
        ) {
            let t = MappingMatrix::from_rows(&[&s[..], &pi[..]]);
            let j = IndexSet::cube(3, mu);
            let a = ConflictAnalysis::new(&t, &j);
            if a.lattice_basis().len() != 1 {
                return; // rank-deficient: Thm 3.1 out of scope
            }
            let truth = oracle::is_conflict_free_by_enumeration(&t, &j);
            match theorem_3_1(&a, &j) {
                ConditionVerdict::ConflictFree => assert!(truth),
                ConditionVerdict::HasConflict => assert!(!truth),
                ConditionVerdict::Unknown => panic!("must decide r = 1"),
            }
        }
    }
}
