//! Prior-work baseline mappings the paper compares against.
//!
//! * **[23]** (Lee & Kedem-style linear-array matmul): with the same space
//!   map `S = [1, 1, −1]`, the schedule `Π' = [2, 1, μ]`, total time
//!   `t' = μ(μ+3)+1`, needing `Σ(Π'd̄ᵢ − 1) = 4` buffers. Optimal for
//!   `μ = 3` but not `μ ≥ 4` (Example 5.1's closing discussion).
//! * **[22]** (heuristic lower-dimensional mapping): for the reindexed
//!   transitive closure with `S = [0, 0, 1]`, the schedule
//!   `Π' = [2μ+1, 1, 1]`, total time `t' = μ(2μ+3)+1` — improved by the
//!   paper to `μ(μ+3)+1` (Example 5.2).

use crate::mapping::{MappingMatrix, SpaceMap};
use cfmap_model::{LinearSchedule, Uda};

/// A named baseline design: (citation tag, space map, schedule).
#[derive(Clone, Debug)]
pub struct Baseline {
    /// Paper-reference tag, e.g. `"[23]"`.
    pub source: &'static str,
    /// Human-readable description.
    pub description: &'static str,
    /// The space map used by the baseline.
    pub space: SpaceMap,
    /// The baseline's schedule.
    pub schedule: LinearSchedule,
}

impl Baseline {
    /// The full mapping matrix `T' = [S; Π']`.
    pub fn mapping(&self) -> MappingMatrix {
        MappingMatrix::new(self.space.clone(), self.schedule.clone())
    }

    /// Total execution time on the given algorithm (Equation 2.7).
    pub fn total_time(&self, alg: &Uda) -> i64 {
        self.schedule.total_time(&alg.index_set)
    }
}

/// The matmul baseline of [23]: `S = [1, 1, −1]`, `Π' = [2, 1, μ]`.
pub fn matmul_baseline_23(mu: i64) -> Baseline {
    Baseline {
        source: "[23]",
        description: "matmul → linear array, Π' = [2, 1, μ] (t' = μ(μ+3)+1, 4 buffers)",
        space: SpaceMap::row(&[1, 1, -1]),
        schedule: LinearSchedule::new(&[2, 1, mu]),
    }
}

/// The transitive-closure baseline of [22]: `S = [0, 0, 1]`,
/// `Π' = [2μ+1, 1, 1]`.
pub fn transitive_closure_baseline_22(mu: i64) -> Baseline {
    Baseline {
        source: "[22]",
        description: "transitive closure → linear array, Π' = [2μ+1, 1, 1] (t' = μ(2μ+3)+1)",
        space: SpaceMap::row(&[0, 0, 1]),
        schedule: LinearSchedule::new(&[2 * mu + 1, 1, 1]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use cfmap_model::algorithms;

    #[test]
    fn baseline_23_times_match_paper() {
        for mu in 2..=6 {
            let alg = algorithms::matmul(mu);
            let b = matmul_baseline_23(mu);
            assert_eq!(b.total_time(&alg), mu * (mu + 3) + 1, "μ = {mu}");
        }
    }

    #[test]
    fn baseline_22_times_match_paper() {
        for mu in 2..=6 {
            let alg = algorithms::transitive_closure(mu);
            let b = transitive_closure_baseline_22(mu);
            assert_eq!(b.total_time(&alg), mu * (2 * mu + 3) + 1, "μ = {mu}");
        }
    }

    #[test]
    fn baselines_are_valid_and_conflict_free() {
        // Both prior designs are correct (just slower): they must respect
        // dependencies and be conflict-free.
        for mu in 2..=5 {
            let alg = algorithms::matmul(mu);
            let b = matmul_baseline_23(mu);
            assert!(b.schedule.is_valid_for(&alg.deps));
            assert!(oracle::is_conflict_free_by_enumeration(&b.mapping(), &alg.index_set));

            let alg = algorithms::transitive_closure(mu);
            let b = transitive_closure_baseline_22(mu);
            assert!(b.schedule.is_valid_for(&alg.deps));
            assert!(oracle::is_conflict_free_by_enumeration(&b.mapping(), &alg.index_set));
        }
    }

    #[test]
    fn baseline_23_conflict_vector_matches_paper() {
        // The paper: "the corresponding conflict vector is
        // γ = [−(μ+1), 2+μ, 1]" for Π' = [2, 1, μ].
        let mu = 4;
        let b = matmul_baseline_23(mu);
        let alg = algorithms::matmul(mu);
        let mapping = b.mapping();
        let analysis = crate::conflict::ConflictAnalysis::new(&mapping, &alg.index_set);
        let gamma = analysis.unique_conflict_vector().unwrap();
        // Canonical form of ±[−(μ+1), μ+2, 1]: first entry positive.
        assert_eq!(gamma.to_i64s().unwrap(), vec![mu + 1, -(mu + 2), -1]);
    }
}
