//! The integer-programming formulation of Problem 2.2 (Section 5,
//! formulations (5.1)–(5.2)) for `T ∈ Z^{(n−1)×n}`.
//!
//! With the space map `S` fixed, the entries `f_i(π)` of the unique
//! conflict vector (Equation 3.2) are **linear** functions of `Π`
//! (Proposition 3.2), so "the conflict vector is feasible" becomes the
//! disjunction `∃i: |f_i(π)| ≥ μ_i + 1` — a union of `2n` half-spaces.
//! Combined with an orthant split to linearize `Σ μ_i·|π_i|`, Problem 2.2
//! decomposes into small exact ILPs (appendix technique), each solved by
//! branch & bound *and* integral-vertex enumeration.
//!
//! The paper knowingly drops the constraint `gcd(f₁, …, f_n) = 1` ("this
//! constraint is ignored and the resulting conflict vector is checked")
//! — we do the same: every branch candidate is post-verified with the
//! exact lattice test, in objective order, and the best verified one is
//! returned. Experiment E7 cross-checks the result against Procedure 5.1.

use crate::budget::{SearchBudget, SearchOutcome};
use crate::conflict::ConflictAnalysis;
use crate::error::{BudgetLimit, CfmapError};
use crate::mapping::{MappingMatrix, SpaceMap};
use cfmap_intlin::{IMat, Rat};
use cfmap_lp::problem::{LpProblem, Relation};
use cfmap_lp::vertex::enumerate_vertices;
use cfmap_lp::{solve_ilp_counted, LpOutcome};
use cfmap_model::{LinearSchedule, Uda};

/// Per-branch safety cap on branch-and-bound nodes when the caller's
/// budget is unlimited. The mapping formulations carry box bounds, so real
/// instances stay far below this.
const DEFAULT_BRANCH_NODE_CAP: u64 = 100_000;

/// The coefficient vectors of the conflict functions `f_i(π)`
/// (Equation 3.2): `f_i(π) = Σ_j coeffs[i][j]·π_j`, where `f_i` is (up to
/// a global sign irrelevant to `|f_i|`) the determinant of `T` with its
/// `i`-th column removed.
///
/// Computed by evaluation: the coefficient of `π_j` in `f_i` is the
/// determinant of `[S; e_j]` minus column `i` — linearity is
/// Proposition 3.2.
pub fn conflict_functions(space: &SpaceMap) -> Result<Vec<Vec<i64>>, CfmapError> {
    let n = space.dim();
    if space.array_dims() != n - 2 {
        return Err(CfmapError::DimensionMismatch {
            context: "conflict functions require k = n−1 (space map with n−2 rows)".to_string(),
            expected: n - 2,
            actual: space.array_dims(),
        });
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let cols: Vec<usize> = (0..n).filter(|&c| c != i).collect();
        let mut coeffs = vec![0i64; n];
        for (j, c) in coeffs.iter_mut().enumerate() {
            if j == i {
                continue; // π_i's column is removed from T_i
            }
            let mut unit = vec![0i64; n];
            unit[j] = 1;
            let t_i = space
                .as_mat()
                .vstack(&IMat::from_rows(&[&unit]))
                .select_cols(&cols);
            // Cramer sign (−1)^i makes (f₁, …, f_n) an actual kernel
            // vector of T, handy for diagnostics; |f_i| is unaffected.
            let d = t_i.det();
            let signed = if i % 2 == 0 { d } else { -d };
            *c = signed.to_i64().ok_or_else(|| CfmapError::Overflow {
                context: format!("conflict function coefficient f_{}[π_{}] exceeds i64", i + 1, j + 1),
            })?;
        }
        out.push(coeffs);
    }
    Ok(out)
}

/// One verified solution of the ILP decomposition.
#[derive(Clone, Debug)]
pub struct IlpSolution {
    /// The optimal schedule.
    pub schedule: LinearSchedule,
    /// `f = Σ μ_i |π_i|`.
    pub objective: i64,
    /// Total time `t = f + 1`.
    pub total_time: i64,
    /// Number of convex branches solved (orthants × disjuncts).
    pub branches_solved: usize,
    /// Candidates that failed post-verification (the `gcd(f) = 1` caveat
    /// in action — e.g. `Π₁ = [1, 1, μ]` in the appendix).
    pub rejected_candidates: Vec<Vec<i64>>,
}

/// Solve Problem 2.2 for `k = n−1` via the (5.1)–(5.2) decomposition.
///
/// `bound` caps `|π_i|`; the appendix's extreme points fit in
/// `bound = μ_max + 2`, and Theorem 2.1 means larger entries only help if
/// smaller ones all fail, so callers typically pass `2μ_max + 4`.
///
/// `budget` bounds the work: `max_nodes` is shared across every convex
/// branch's branch-and-bound tree, `max_candidates` meters the
/// post-verification sweep, and `max_wall` covers both phases. When the
/// branch phase is cut short the exact lower bound is lost, so a schedule
/// verified afterwards is tagged `BestEffort` rather than `Optimal`;
/// exhaustion before *any* verified schedule is
/// [`CfmapError::BudgetExhausted`].
pub fn optimal_schedule_ilp(
    alg: &Uda,
    space: &SpaceMap,
    bound: i64,
    budget: SearchBudget,
) -> Result<SearchOutcome<IlpSolution>, CfmapError> {
    let n = alg.dim();
    if space.dim() != n {
        return Err(CfmapError::DimensionMismatch {
            context: "ILP schedule search: space map vs algorithm".to_string(),
            expected: n,
            actual: space.dim(),
        });
    }
    let coeffs = conflict_functions(space)?;
    let mu = alg.index_set.mu();
    let deps = alg.deps.as_mat();
    let mut meter = budget.start();
    let mut tripped: Option<BudgetLimit> = None;

    // Collect candidate points (objective, π) across all branches.
    let mut candidates: Vec<(i64, Vec<i64>)> = Vec::new();
    let mut branches = 0usize;

    'orthants: for orthant in 0..(1usize << n) {
        let signs: Vec<i64> = (0..n).map(|b| if orthant >> b & 1 == 1 { -1 } else { 1 }).collect();
        // Base problem for this orthant.
        let mut base = LpProblem::minimize(
            &signs.iter().zip(mu).map(|(&s, &m)| s * m).collect::<Vec<_>>(),
        );
        for j in 0..n {
            let mut orth = vec![0i64; n];
            orth[j] = signs[j];
            base.constrain_i64(&orth, Relation::Ge, 0);
            base.constrain_i64(&orth, Relation::Le, bound);
        }
        // ΠD ≥ 1 per dependence.
        for d in 0..deps.ncols() {
            let col: Vec<i64> = (0..n)
                .map(|r| {
                    deps.get(r, d).to_i64().ok_or_else(|| CfmapError::Overflow {
                        context: format!("ILP formulation: dependence entry d̄{} exceeds i64", d + 1),
                    })
                })
                .collect::<Result<_, _>>()?;
            base.constrain_i64(&col, Relation::Ge, 1);
        }

        for (i, f_i) in coeffs.iter().enumerate() {
            for sign in [1i64, -1] {
                if let Some(limit) = meter.check_wall() {
                    tripped = Some(limit);
                    break 'orthants;
                }
                branches += 1;
                let mut p = base.clone();
                let scaled: Vec<i64> = f_i.iter().map(|&c| sign * c).collect();
                p.constrain_i64(&scaled, Relation::Ge, mu[i] + 1);
                // Branch optimum by branch & bound, capped by whichever is
                // tighter: the remaining node budget or the safety cap.
                let cap = meter
                    .nodes_remaining()
                    .map_or(DEFAULT_BRANCH_NODE_CAP, |r| r.min(DEFAULT_BRANCH_NODE_CAP))
                    .max(1) as usize;
                match solve_ilp_counted(&p, cap) {
                    Ok((out, nodes)) => {
                        if let LpOutcome::Optimal { x, value } = out {
                            push_candidate(&mut candidates, &value, &x);
                        }
                        if let Some(limit) = meter.charge_nodes(nodes as u64) {
                            tripped = Some(limit);
                            break 'orthants;
                        }
                    }
                    Err(e) => {
                        // Node horizon hit — the branch (and hence the
                        // global lower bound) is unresolved.
                        meter.charge_nodes(e.nodes as u64);
                        tripped = Some(BudgetLimit::Nodes);
                        break 'orthants;
                    }
                }
                // Plus every integral vertex (appendix technique) so that
                // post-verification failures can fall through to the next
                // extreme point at equal objective.
                for v in enumerate_vertices(&p) {
                    if v.iter().all(Rat::is_integer) {
                        let val = p.objective_value(&v);
                        push_candidate(&mut candidates, &val, &v);
                    }
                }
            }
        }
    }

    candidates.sort();
    candidates.dedup();
    let Some(lower_bound) = candidates.first().map(|(v, _)| *v) else {
        return match tripped {
            // Nothing collected before the budget fired: no degradation
            // target exists.
            Some(limit) => {
                Err(CfmapError::BudgetExhausted { limit, candidates_examined: meter.candidates })
            }
            // Every branch solved and all were infeasible.
            None => Ok(SearchOutcome::infeasible(meter.candidates)),
        };
    };

    // Post-verification. The branch optima and extreme points ignore the
    // gcd(f) = 1 constraint (as the paper prescribes), so the candidate at
    // the ILP optimum can fail — and the *true* optimum can then be a
    // non-vertex point of the same region (e.g. matmul μ = 3, where both
    // extreme points [1,1,3] and [1,3,1] collapse to non-primitive
    // conflict vectors but the edge point [1,2,2] is conflict-free). The
    // ILP therefore supplies the exact lower bound, and each objective
    // fiber above it is swept exhaustively until a verified schedule
    // appears — preserving optimality (when the branch phase completed).
    let mut rejected = Vec::new();
    let max_objective: i64 = mu.iter().map(|&m| bound * m.max(1)).sum();
    for objective in lower_bound..=max_objective {
        let mut found: Option<LinearSchedule> = None;
        let mut sweep_limit: Option<BudgetLimit> = None;
        crate::search::enumerate_weighted(n, mu, objective, &mut |pi| {
            if found.is_some() || sweep_limit.is_some() {
                return;
            }
            // The charged schedule is still screened (budget N means N
            // candidates examined); the trip stops the sweep afterwards.
            let limit = meter.charge_candidate();
            let schedule = LinearSchedule::new(pi);
            let acceptable = schedule.is_valid_for(&alg.deps) && {
                let mapping = MappingMatrix::new(space.clone(), schedule.clone());
                mapping.has_full_rank()
                    && if ConflictAnalysis::new(&mapping, &alg.index_set).is_conflict_free_exact() {
                        true
                    } else {
                        rejected.push(pi.to_vec());
                        false
                    }
            };
            if acceptable {
                found = Some(schedule);
            }
            sweep_limit = limit;
        });
        if let Some(schedule) = found {
            let sol = IlpSolution {
                total_time: objective + 1,
                objective,
                schedule,
                branches_solved: branches,
                rejected_candidates: rejected,
            };
            // A branch phase cut short loses the exact lower bound (the
            // true optimum may sit *below* the swept range), so the
            // verified schedule is only best-effort.
            return Ok(match tripped {
                None => SearchOutcome::optimal(sol, meter.candidates),
                Some(_) => SearchOutcome::best_effort(sol, meter.candidates),
            });
        }
        if let Some(limit) = sweep_limit {
            return Err(CfmapError::BudgetExhausted {
                limit,
                candidates_examined: meter.candidates,
            });
        }
    }
    match tripped {
        // Full branch phase + full sweep: provably no conflict-free
        // schedule within the bound.
        None => Ok(SearchOutcome::infeasible(meter.candidates)),
        // Partial branch phase and the (possibly misplaced) sweep came up
        // empty: nothing can be certified.
        Some(limit) => {
            Err(CfmapError::BudgetExhausted { limit, candidates_examined: meter.candidates })
        }
    }
}

fn push_candidate(candidates: &mut Vec<(i64, Vec<i64>)>, value: &Rat, x: &[Rat]) {
    let Some(v) = value.to_int().and_then(|i| i.to_i64()) else { return };
    let Some(pi) = x
        .iter()
        .map(|r| r.to_int().and_then(|i| i.to_i64()))
        .collect::<Option<Vec<i64>>>()
    else {
        return;
    };
    candidates.push((v, pi));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::Procedure51;
    use cfmap_model::algorithms;

    #[test]
    fn conflict_functions_matmul() {
        // S = [1, 1, −1]: Eq 3.5 gives γ = [−π2−π3, π1+π3, π1−π2].
        let s = SpaceMap::row(&[1, 1, -1]);
        let f = conflict_functions(&s).unwrap();
        // As a kernel vector (up to global sign): check T·f(π) = 0 for a
        // sample π by direct evaluation.
        for pi in [[1i64, 4, 1], [2, 1, 4], [3, 1, 2]] {
            let vals: Vec<i64> = f
                .iter()
                .map(|row| row.iter().zip(&pi).map(|(c, p)| c * p).sum())
                .collect();
            // T = [[1,1,-1],[π]] · vals = 0.
            assert_eq!(vals[0] + vals[1] - vals[2], 0, "S row");
            assert_eq!(
                pi[0] * vals[0] + pi[1] * vals[1] + pi[2] * vals[2],
                0,
                "Π row"
            );
            // And |f| matches the paper's formula entries.
            assert_eq!(vals[0].abs(), (pi[1] + pi[2]).abs());
            assert_eq!(vals[1].abs(), (pi[0] + pi[2]).abs());
            assert_eq!(vals[2].abs(), (pi[0] - pi[1]).abs());
        }
    }

    #[test]
    fn conflict_functions_transitive_closure() {
        // S = [0, 0, 1]: Eq 3.7 gives γ ∝ [π2, −π1, 0].
        let s = SpaceMap::row(&[0, 0, 1]);
        let f = conflict_functions(&s).unwrap();
        let pi = [5i64, 1, 1];
        let vals: Vec<i64> = f
            .iter()
            .map(|row| row.iter().zip(&pi).map(|(c, p)| c * p).sum())
            .collect();
        assert_eq!(vals[0].abs(), 1); // |π2|
        assert_eq!(vals[1].abs(), 5); // |π1|
        assert_eq!(vals[2], 0);
    }

    #[test]
    fn ilp_matches_paper_matmul() {
        let alg = algorithms::matmul(4);
        let s = SpaceMap::row(&[1, 1, -1]);
        let sol = optimal_schedule_ilp(&alg, &s, 12, SearchBudget::unlimited())
            .unwrap()
            .expect_optimal("solvable");
        assert_eq!(sol.objective, 24);
        assert_eq!(sol.total_time, 25);
        // The non-feasible extreme point [1, 1, 4] must be among the
        // rejected candidates (the gcd caveat) unless a verified candidate
        // at the same objective sorts before it.
        assert!(sol.schedule.is_valid_for(&alg.deps));
    }

    #[test]
    fn ilp_matches_paper_transitive_closure() {
        let alg = algorithms::transitive_closure(4);
        let s = SpaceMap::row(&[0, 0, 1]);
        let sol = optimal_schedule_ilp(&alg, &s, 12, SearchBudget::unlimited())
            .unwrap()
            .expect_optimal("solvable");
        assert_eq!(sol.schedule.as_slice(), &[5, 1, 1]);
        assert_eq!(sol.total_time, 29);
    }

    #[test]
    fn ilp_agrees_with_procedure_5_1() {
        for mu in 2..=5 {
            let alg = algorithms::matmul(mu);
            let s = SpaceMap::row(&[1, 1, -1]);
            let ilp = optimal_schedule_ilp(&alg, &s, 2 * mu + 4, SearchBudget::unlimited())
                .unwrap()
                .expect_optimal("ILP solvable");
            let search =
                Procedure51::new(&alg, &s).solve().unwrap().expect_optimal("search solvable");
            assert_eq!(ilp.objective, search.objective, "matmul μ = {mu}");

            let alg = algorithms::transitive_closure(mu);
            let s = SpaceMap::row(&[0, 0, 1]);
            let ilp = optimal_schedule_ilp(&alg, &s, 2 * mu + 4, SearchBudget::unlimited())
                .unwrap()
                .expect_optimal("ILP solvable");
            let search =
                Procedure51::new(&alg, &s).solve().unwrap().expect_optimal("search solvable");
            assert_eq!(ilp.objective, search.objective, "TC μ = {mu}");
        }
    }

    #[test]
    fn ilp_agrees_with_search_on_random_space_maps() {
        // Random 1×3 space maps over matmul: wherever both optimizers find
        // a solution within their bounds, the objectives must match.
        for seed in 0..30i64 {
            let v = |k: i64| ((seed * 31 + k * 17) % 5) - 2;
            let s_row = [v(1), v(2), v(3)];
            if s_row.iter().all(|&x| x == 0) {
                continue;
            }
            let alg = algorithms::matmul(3);
            let s = SpaceMap::row(&s_row);
            let search =
                Procedure51::new(&alg, &s).max_objective(40).solve().unwrap().into_mapping();
            let ilp = optimal_schedule_ilp(&alg, &s, 10, SearchBudget::unlimited())
                .unwrap()
                .into_mapping();
            // Different caps can make exactly one side give up; only
            // flag contradictions where both answered.
            if let (Some(a), Some(b)) = (search, ilp) {
                assert_eq!(a.objective, b.objective, "S = {s_row:?}");
            }
        }
    }

    #[test]
    fn ilp_respects_bound() {
        // With a bound too tight to reach any conflict-free schedule the
        // solver must certify infeasibility rather than emit an invalid
        // design.
        let alg = algorithms::matmul(4);
        let s = SpaceMap::row(&[1, 1, -1]);
        let out = optimal_schedule_ilp(&alg, &s, 1, SearchBudget::unlimited()).unwrap();
        assert_eq!(out.certification, crate::budget::Certification::Infeasible);
        assert!(out.mapping().is_none());
    }

    #[test]
    fn ilp_rejects_wrong_space_map_shape() {
        let s = SpaceMap::from_rows(&[&[1, 0, 0], &[0, 1, 0]]); // n−1 rows, not n−2
        assert!(matches!(
            conflict_functions(&s),
            Err(CfmapError::DimensionMismatch { expected: 1, actual: 2, .. })
        ));
    }

    #[test]
    fn ilp_node_budget_degrades_or_reports_exhaustion() {
        // An already-expired wall clock stops the search before any branch
        // is resolved: no degradation target exists, so the search must
        // fail loudly with BudgetExhausted, not panic or hang.
        let alg = algorithms::matmul(4);
        let s = SpaceMap::row(&[1, 1, -1]);
        let err =
            optimal_schedule_ilp(&alg, &s, 12, SearchBudget::wall_clock(std::time::Duration::ZERO))
                .unwrap_err();
        assert!(matches!(err, CfmapError::BudgetExhausted { limit: BudgetLimit::WallClock, .. }));

        // Any node budget yields either a verified schedule (optimal or
        // best-effort) or explicit exhaustion — and the result at a fixed
        // budget is deterministic.
        for nodes in [1u64, 8, 64, 512] {
            let a = optimal_schedule_ilp(&alg, &s, 12, SearchBudget::nodes(nodes));
            let b = optimal_schedule_ilp(&alg, &s, 12, SearchBudget::nodes(nodes));
            match (a, b) {
                (Ok(oa), Ok(ob)) => {
                    let sa = oa.into_mapping().expect("non-infeasible outcome carries schedule");
                    let sb = ob.into_mapping().unwrap();
                    assert_eq!(sa.schedule.as_slice(), sb.schedule.as_slice());
                    let mapping = MappingMatrix::new(s.clone(), sa.schedule.clone());
                    assert!(ConflictAnalysis::new(&mapping, &alg.index_set)
                        .is_conflict_free_exact());
                }
                (Err(ea), Err(eb)) => {
                    assert!(matches!(ea, CfmapError::BudgetExhausted { .. }));
                    assert_eq!(ea.to_string(), eb.to_string());
                }
                _ => panic!("same budget produced different outcome kinds"),
            }
        }
    }
}
