//! Problem 6.2 — optimal conflict-free mapping with **both** `S` and `Π`
//! free (the paper's second future-work problem, Section 6).
//!
//! *"Given an n-dimensional uniform dependence algorithm and a
//! (k−1)-dimensional processor array, find a conflict-free mapping matrix
//! `T ∈ Z^{k×n}` such that a certain criterion is optimized."*
//!
//! The search composes the two single-variable procedures: enumerate
//! canonical space maps (as in Problem 6.1) and run Procedure 5.1 under
//! each, ranking complete designs by the chosen criterion. Pruning: under
//! the time-first criterion, once some design achieves time `t*`, later
//! space maps only search schedules with objective `< t* − 1`.

use crate::budget::{CancelToken, SearchBudget, SearchOutcome};
use crate::conditions::ConditionKind;
use crate::error::{BudgetLimit, CfmapError};
use crate::mapping::{MappingMatrix, SpaceMap};
use crate::metrics::SearchTelemetry;
use crate::search::Procedure51;
use cfmap_intlin::Int;
use cfmap_model::{LinearSchedule, Uda};

/// What "optimal" means for a complete design (Problem 6.2's "certain
/// criterion").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JointCriterion {
    /// Minimize total time; break ties by VLSI cost (sites + wires).
    TimeThenSpace,
    /// Minimize VLSI cost; break ties by total time.
    SpaceThenTime,
    /// Minimize `time·tw + cost·sw`.
    WeightedSum {
        /// Weight on total execution time.
        time_weight: i64,
        /// Weight on VLSI cost.
        space_weight: i64,
    },
}

/// A complete Problem 6.2 solution.
#[derive(Clone, Debug)]
pub struct JointOptimal {
    /// The chosen space map.
    pub space: SpaceMap,
    /// The chosen schedule.
    pub schedule: LinearSchedule,
    /// The full mapping.
    pub mapping: MappingMatrix,
    /// Total execution time.
    pub total_time: i64,
    /// VLSI cost (sites + wire length, as in Problem 6.1).
    pub space_cost: i64,
    /// Space maps tried.
    pub space_maps_tried: u64,
}

/// Problem 6.2 search over 1-row space maps.
pub struct JointSearch<'a> {
    alg: &'a Uda,
    entry_bound: i64,
    criterion: JointCriterion,
    condition: ConditionKind,
    max_objective: Option<i64>,
    budget: SearchBudget,
    cancel: Option<&'a CancelToken>,
}

impl<'a> JointSearch<'a> {
    /// Start a joint search for `alg` targeting a linear array.
    pub fn new(alg: &'a Uda) -> Self {
        JointSearch {
            alg,
            entry_bound: 1,
            criterion: JointCriterion::TimeThenSpace,
            condition: ConditionKind::Exact,
            max_objective: None,
            budget: SearchBudget::unlimited(),
            cancel: None,
        }
    }

    /// Bound on `|s_i|` (default 1).
    pub fn entry_bound(mut self, bound: i64) -> Self {
        self.entry_bound = bound;
        self
    }

    /// The optimization criterion (default: time, then space).
    pub fn criterion(mut self, c: JointCriterion) -> Self {
        self.criterion = c;
        self
    }

    /// Conflict test (default exact).
    pub fn condition(mut self, kind: ConditionKind) -> Self {
        self.condition = kind;
        self
    }

    /// Cap each inner schedule search.
    pub fn max_objective(mut self, cap: i64) -> Self {
        self.max_objective = Some(cap);
        self
    }

    /// Bound the work performed (space maps screened / wall clock).
    /// Exhaustion degrades gracefully to the best design found so far.
    pub fn budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Poll a [`CancelToken`] once per space map and inside every inner
    /// Procedure 5.1 run; tripping it degrades to the best design found
    /// so far within one candidate's latency.
    pub fn cancel_token(mut self, token: &'a CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    fn cancel_tripped(&self) -> Option<BudgetLimit> {
        match self.cancel {
            Some(c) if c.is_cancelled() => Some(BudgetLimit::Cancelled),
            _ => None,
        }
    }

    fn space_cost(&self, space: &SpaceMap) -> Result<i64, CfmapError> {
        // Sites: bounding span of the 1-row image; wires: Σ‖S·d̄ᵢ‖₁.
        let overflow = |what: &str| CfmapError::Overflow {
            context: format!("joint-search space cost: {what} does not fit in i64"),
        };
        let row = space.as_mat().row(0);
        let (mut lo, mut hi) = (Int::zero(), Int::zero());
        for (i, c) in row.iter().enumerate() {
            let m = Int::from(self.alg.index_set.mu_i(i));
            if c.is_positive() {
                hi += &(c * &m);
            } else {
                lo += &(c * &m);
            }
        }
        let sites = (&hi - &lo).to_i64().ok_or_else(|| overflow("processor span"))?
            .checked_add(1)
            .ok_or_else(|| overflow("processor count"))?;
        let mut wires = 0i64;
        for i in 0..self.alg.num_deps() {
            let hop = row
                .dot(&self.alg.deps.dep(i))
                .abs()
                .to_i64()
                .ok_or_else(|| overflow("wire length"))?;
            wires = wires.checked_add(hop).ok_or_else(|| overflow("total wire length"))?;
        }
        sites.checked_add(wires).ok_or_else(|| overflow("sites + wires"))
    }

    fn score(&self, time: i64, cost: i64) -> (i64, i64) {
        match self.criterion {
            JointCriterion::TimeThenSpace => (time, cost),
            JointCriterion::SpaceThenTime => (cost, time),
            JointCriterion::WeightedSum { time_weight, space_weight } => {
                (time * time_weight + cost * space_weight, 0)
            }
        }
    }

    /// Run the search.
    ///
    /// Completion yields [`Certification::Optimal`] (every canonical space
    /// map screened) or [`Certification::Infeasible`] (none admits a
    /// conflict-free schedule under the configured caps). A tripped
    /// [`SearchBudget`] degrades to the best complete design found so far,
    /// tagged [`Certification::BestEffort`]; if the budget trips before
    /// *any* design is found, the error is
    /// [`CfmapError::BudgetExhausted`].
    ///
    /// [`Certification::Optimal`]: crate::budget::Certification::Optimal
    /// [`Certification::Infeasible`]: crate::budget::Certification::Infeasible
    /// [`Certification::BestEffort`]: crate::budget::Certification::BestEffort
    pub fn solve(&self) -> Result<SearchOutcome<JointOptimal>, CfmapError> {
        let n = self.alg.dim();
        let mut rows: Vec<Vec<i64>> = Vec::new();
        collect_rows_rec(&mut vec![0i64; n], 0, self.entry_bound, &mut |r| {
            if r.iter().all(|&x| x == 0) {
                return;
            }
            if r.iter().find(|&&x| x != 0).is_some_and(|&x| x < 0) {
                return;
            }
            rows.push(r.to_vec());
        });

        let mut best: Option<(JointOptimal, (i64, i64))> = None;
        let mut meter = self.budget.start();
        let mut tripped = None;
        // Aggregate telemetry of every inner Procedure 5.1 run; the
        // joint search's own per-space-map effort is `enumerated`.
        let mut tel = SearchTelemetry::default();
        for r in &rows {
            // The charged space map is still screened; the trip takes
            // effect before the *next* one, keeping degradation
            // deterministic for candidate budgets.
            let limit = meter.charge_candidate().or_else(|| self.cancel_tripped());
            let tried = meter.candidates;
            let space = SpaceMap::row(r);
            let mut proc = Procedure51::new(self.alg, &space).condition(self.condition);
            // Time-critical limits must interrupt the *inner* search too,
            // not just the between-space-maps boundary: hand the deadline
            // and the cancel token down.
            if let Some(c) = self.cancel {
                proc = proc.cancel_token(c);
            }
            if let Some(d) = self.budget.deadline {
                proc = proc.budget(SearchBudget::until(d));
            }
            if let Some(cap) = self.max_objective {
                proc = proc.max_objective(cap);
            }
            // Time-first pruning: no point searching past the incumbent.
            if self.criterion == JointCriterion::TimeThenSpace {
                if let Some((ref inc, _)) = best {
                    proc = proc.max_objective(
                        (inc.total_time - 1).min(self.max_objective.unwrap_or(i64::MAX)),
                    );
                }
            }
            let inner = proc.solve()?;
            tel.merge(&inner.telemetry);
            // The inner budget carries only time-critical limits
            // (deadline / cancellation), so an inner trip ends the joint
            // search too — even on the last space map, where the
            // between-maps charge below would never see it.
            let inner_limit = inner.telemetry.budget_limit;
            if let Some(opt) = inner.into_mapping() {
                let cost = self.space_cost(&space)?;
                let score = self.score(opt.total_time, cost);
                let better = match &best {
                    None => true,
                    Some((_, bs)) => score < *bs,
                };
                if better {
                    best = Some((
                        JointOptimal {
                            space: space.clone(),
                            schedule: opt.schedule.clone(),
                            mapping: opt.mapping,
                            total_time: opt.total_time,
                            space_cost: cost,
                            space_maps_tried: tried,
                        },
                        score,
                    ));
                }
            }
            if let Some(limit) = limit.or(inner_limit) {
                tripped = Some(limit);
                break;
            }
        }
        let examined = meter.candidates;
        tel.budget_limit = tripped;
        match (best, tripped) {
            (Some((mut sol, _)), None) => {
                sol.space_maps_tried = examined;
                Ok(SearchOutcome::optimal(sol, examined).with_telemetry(tel))
            }
            (Some((mut sol, _)), Some(_)) => {
                sol.space_maps_tried = examined;
                Ok(SearchOutcome::best_effort(sol, examined).with_telemetry(tel))
            }
            (None, None) => Ok(SearchOutcome::infeasible(examined).with_telemetry(tel)),
            (None, Some(limit)) => {
                Err(CfmapError::BudgetExhausted { limit, candidates_examined: examined })
            }
        }
    }
}

fn collect_rows_rec(row: &mut Vec<i64>, idx: usize, bound: i64, f: &mut impl FnMut(&[i64])) {
    if idx == row.len() {
        f(row);
        return;
    }
    for v in -bound..=bound {
        row[idx] = v;
        collect_rows_rec(row, idx + 1, bound, f);
    }
    row[idx] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use cfmap_model::algorithms;

    #[test]
    fn joint_matmul_beats_fixed_space_design() {
        // With S also free, the μ=4 matmul admits designs at least as
        // good as the paper's S = [1,1,−1] / t = 25.
        let alg = algorithms::matmul(4);
        let sol = JointSearch::new(&alg).solve().unwrap().expect_optimal("solvable");
        assert!(sol.total_time <= 25, "joint optimum {} worse than fixed-S", sol.total_time);
        assert!(oracle::is_conflict_free_by_enumeration(&sol.mapping, &alg.index_set));
        assert!(sol.mapping.has_full_rank());
    }

    #[test]
    fn joint_tc() {
        let alg = algorithms::transitive_closure(3);
        let sol = JointSearch::new(&alg).solve().unwrap().expect_optimal("solvable");
        assert!(sol.total_time <= 3 * (3 + 3) + 1);
        assert!(oracle::is_conflict_free_by_enumeration(&sol.mapping, &alg.index_set));
    }

    #[test]
    fn criteria_trade_time_for_space() {
        let alg = algorithms::matmul(3);
        let fast = JointSearch::new(&alg)
            .criterion(JointCriterion::TimeThenSpace)
            .solve()
            .unwrap()
            .expect_optimal("solvable");
        let small = JointSearch::new(&alg)
            .criterion(JointCriterion::SpaceThenTime)
            .solve()
            .unwrap()
            .expect_optimal("solvable");
        assert!(fast.total_time <= small.total_time);
        assert!(small.space_cost <= fast.space_cost);
    }

    #[test]
    fn weighted_criterion_is_feasible() {
        let alg = algorithms::matmul(3);
        let sol = JointSearch::new(&alg)
            .criterion(JointCriterion::WeightedSum { time_weight: 1, space_weight: 2 })
            .solve()
            .unwrap()
            .expect_optimal("solvable");
        assert!(oracle::is_conflict_free_by_enumeration(&sol.mapping, &alg.index_set));
    }

    #[test]
    fn cap_propagates() {
        let alg = algorithms::matmul(4);
        let out = JointSearch::new(&alg).max_objective(3).solve().unwrap();
        assert_eq!(out.certification, crate::budget::Certification::Infeasible);
        assert!(out.mapping().is_none());
    }

    #[test]
    fn budget_degrades_to_best_space_map_so_far() {
        let alg = algorithms::matmul(3);
        let full = JointSearch::new(&alg).solve().unwrap();
        let total = full.candidates_examined;
        assert!(total > 1, "need a multi-candidate search for this test");
        // A budget big enough to reach at least one complete design but
        // smaller than the full enumeration must degrade, not fail.
        let out = JointSearch::new(&alg)
            .budget(SearchBudget::candidates(total - 1))
            .solve()
            .unwrap();
        assert!(out.certification.is_best_effort(), "got {}", out.certification);
        assert_eq!(out.candidates_examined, total - 1);
        let sol = out.into_mapping().expect("best-effort carries a design");
        assert!(oracle::is_conflict_free_by_enumeration(&sol.mapping, &alg.index_set));
        assert!(sol.mapping.has_full_rank());
    }

    #[test]
    fn outcome_aggregates_inner_search_telemetry() {
        let alg = algorithms::matmul(3);
        let out = JointSearch::new(&alg).solve().unwrap();
        let t = &out.telemetry;
        // Inner Procedure 5.1 effort across all space maps.
        assert!(t.enumerated > 0);
        assert!(t.hnf_computations > 0);
        assert!(t.accepted >= 1, "at least one inner search accepted: {t:?}");
        assert!(t.budget_limit.is_none());
    }

    #[test]
    fn pre_cancelled_joint_search_degrades_promptly() {
        let alg = algorithms::matmul(3);
        let token = CancelToken::new();
        token.cancel();
        let out = JointSearch::new(&alg).cancel_token(&token).solve().unwrap();
        assert!(out.certification.is_best_effort(), "got {}", out.certification);
        assert_eq!(out.telemetry.budget_limit, Some(BudgetLimit::Cancelled));
        // Only the one charged space map was screened (via its fallback).
        assert_eq!(out.candidates_examined, 1);
        let sol = out.into_mapping().expect("fallback design");
        assert!(oracle::is_conflict_free_by_enumeration(&sol.mapping, &alg.index_set));
    }

    #[test]
    fn budget_exhausted_before_any_design_is_an_error() {
        // Entry bound 0 leaves no candidate rows at all, so even one
        // charged candidate cannot exist; use a 1-candidate budget on a
        // search whose first space map admits no schedule instead.
        let alg = algorithms::matmul(4);
        let err = JointSearch::new(&alg)
            .max_objective(3) // nothing is schedulable this fast
            .budget(SearchBudget::candidates(1))
            .solve()
            .unwrap_err();
        assert!(matches!(err, CfmapError::BudgetExhausted { candidates_examined: 1, .. }));
    }
}
