//! Problem 6.2 — optimal conflict-free mapping with **both** `S` and `Π`
//! free (the paper's second future-work problem, Section 6).
//!
//! *"Given an n-dimensional uniform dependence algorithm and a
//! (k−1)-dimensional processor array, find a conflict-free mapping matrix
//! `T ∈ Z^{k×n}` such that a certain criterion is optimized."*
//!
//! The search composes the two single-variable procedures: enumerate
//! canonical space maps (as in Problem 6.1) and run Procedure 5.1 under
//! each, ranking complete designs by the chosen criterion. Pruning: under
//! the time-first criterion, once some design achieves time `t*`, later
//! space maps only search schedules with objective `< t*` (`≤ t*` under
//! [`TieBreak::LexMax`], which must still see equal-time designs to pick
//! the lex-greatest space row among them).
//!
//! The screening hot path shares Procedure 5.1's fast machinery (see
//! `space_search`): exact verdicts go through the kernel-lattice conflict
//! memo, the outer space-row space can be quotiented by the bare
//! problem's symmetry stabilizer ([`crate::canon::problem_stabilizer`] —
//! no `Π` is pinned here, `S` itself is the variable), and
//! [`JointSearch::solve_parallel`] fans the outer rows over a worker pool
//! with a shared atomic best-time bound, replaying the collected results
//! in sequential row order so the answer stays bit-identical to
//! [`JointSearch::solve`].

use crate::budget::{CancelToken, SearchBudget, SearchOutcome};
use crate::canon::Stabilizer;
use crate::conditions::ConditionKind;
use crate::error::{BudgetLimit, CfmapError};
use crate::mapping::{MappingMatrix, SpaceMap};
use crate::metrics::SearchTelemetry;
use crate::search::{Procedure51, SymmetryMode, TieBreak};
use cfmap_intlin::Int;
use cfmap_model::{LinearSchedule, Uda};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// What "optimal" means for a complete design (Problem 6.2's "certain
/// criterion").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JointCriterion {
    /// Minimize total time; break ties by VLSI cost (sites + wires).
    TimeThenSpace,
    /// Minimize VLSI cost; break ties by total time.
    SpaceThenTime,
    /// Minimize `time·tw + cost·sw`.
    WeightedSum {
        /// Weight on total execution time.
        time_weight: i64,
        /// Weight on VLSI cost.
        space_weight: i64,
    },
}

/// A complete Problem 6.2 solution.
#[derive(Clone, Debug)]
pub struct JointOptimal {
    /// The chosen space map.
    pub space: SpaceMap,
    /// The chosen schedule.
    pub schedule: LinearSchedule,
    /// The full mapping.
    pub mapping: MappingMatrix,
    /// Total execution time.
    pub total_time: i64,
    /// VLSI cost (sites + wire length, as in Problem 6.1).
    pub space_cost: i64,
    /// Space maps tried.
    pub space_maps_tried: u64,
}

/// A fully-screened outer candidate: its index in the canonical row
/// order, and — when its inner schedule search found a design under the
/// cap it ran with — the complete design and its `(time, cost)` pair.
type RowResult = (usize, Option<(i64, i64, JointOptimal)>);

/// Problem 6.2 search over 1-row space maps.
pub struct JointSearch<'a> {
    alg: &'a Uda,
    entry_bound: i64,
    criterion: JointCriterion,
    condition: ConditionKind,
    max_objective: Option<i64>,
    budget: SearchBudget,
    cancel: Option<&'a CancelToken>,
    tie_break: TieBreak,
    symmetry: SymmetryMode,
    memo: bool,
}

impl<'a> JointSearch<'a> {
    /// Start a joint search for `alg` targeting a linear array.
    pub fn new(alg: &'a Uda) -> Self {
        JointSearch {
            alg,
            entry_bound: 1,
            criterion: JointCriterion::TimeThenSpace,
            condition: ConditionKind::Exact,
            max_objective: None,
            budget: SearchBudget::unlimited(),
            cancel: None,
            tie_break: TieBreak::default(),
            symmetry: SymmetryMode::default(),
            memo: true,
        }
    }

    /// Bound on `|s_i|` (default 1).
    pub fn entry_bound(mut self, bound: i64) -> Self {
        self.entry_bound = bound;
        self
    }

    /// The optimization criterion (default: time, then space).
    pub fn criterion(mut self, c: JointCriterion) -> Self {
        self.criterion = c;
        self
    }

    /// Conflict test (default exact).
    pub fn condition(mut self, kind: ConditionKind) -> Self {
        self.condition = kind;
        self
    }

    /// Cap each inner schedule search.
    pub fn max_objective(mut self, cap: i64) -> Self {
        self.max_objective = Some(cap);
        self
    }

    /// Bound the work performed (space maps screened / wall clock).
    /// Exhaustion degrades gracefully to the best design found so far.
    pub fn budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Poll a [`CancelToken`] once per space map and inside every inner
    /// Procedure 5.1 run; tripping it degrades to the best design found
    /// so far within one candidate's latency.
    pub fn cancel_token(mut self, token: &'a CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Select how ties among equally-scored designs are broken across
    /// space rows (default: [`TieBreak::FirstFound`], the lex-least
    /// winning row). [`TieBreak::LexMax`] keeps equal-time designs alive
    /// through the time-first pruning and returns the lex-greatest
    /// minimal-score row — the pin the symmetry quotient requires.
    pub fn tie_break(mut self, tie_break: TieBreak) -> Self {
        self.tie_break = tie_break;
        self
    }

    /// Select whether the outer space-row space is quotiented by the bare
    /// problem's symmetry stabilizer (default: [`SymmetryMode::Full`]).
    /// Active only under [`TieBreak::LexMax`] + [`ConditionKind::Exact`]
    /// with an unlimited budget and no cancel token (the soundness
    /// preconditions); silently degrades to full enumeration otherwise.
    pub fn symmetry(mut self, mode: SymmetryMode) -> Self {
        self.symmetry = mode;
        self
    }

    /// Route exact conflict verdicts of the inner schedule searches
    /// through the process-wide kernel-lattice memo (default: on); see
    /// [`crate::Procedure51::memo`].
    pub fn memo(mut self, on: bool) -> Self {
        self.memo = on;
        self
    }

    fn cancel_tripped(&self) -> Option<BudgetLimit> {
        match self.cancel {
            Some(c) if c.is_cancelled() => Some(BudgetLimit::Cancelled),
            _ => None,
        }
    }

    fn space_cost(&self, space: &SpaceMap) -> Result<i64, CfmapError> {
        // Sites: bounding span of the 1-row image; wires: Σ‖S·d̄ᵢ‖₁.
        let overflow = |what: &str| CfmapError::Overflow {
            context: format!("joint-search space cost: {what} does not fit in i64"),
        };
        let row = space.as_mat().row(0);
        let (mut lo, mut hi) = (Int::zero(), Int::zero());
        for (i, c) in row.iter().enumerate() {
            let m = Int::from(self.alg.index_set.mu_i(i));
            if c.is_positive() {
                hi += &(c * &m);
            } else {
                lo += &(c * &m);
            }
        }
        let sites = (&hi - &lo).to_i64().ok_or_else(|| overflow("processor span"))?
            .checked_add(1)
            .ok_or_else(|| overflow("processor count"))?;
        let mut wires = 0i64;
        for i in 0..self.alg.num_deps() {
            let hop = row
                .dot(&self.alg.deps.dep(i))
                .abs()
                .to_i64()
                .ok_or_else(|| overflow("wire length"))?;
            wires = wires.checked_add(hop).ok_or_else(|| overflow("total wire length"))?;
        }
        sites.checked_add(wires).ok_or_else(|| overflow("sites + wires"))
    }

    fn score(&self, time: i64, cost: i64) -> (i64, i64) {
        match self.criterion {
            JointCriterion::TimeThenSpace => (time, cost),
            JointCriterion::SpaceThenTime => (cost, time),
            JointCriterion::WeightedSum { time_weight, space_weight } => {
                (time * time_weight + cost * space_weight, 0)
            }
        }
    }

    /// The active outer symmetry quotient, or `None` when the mode is off
    /// or a soundness precondition fails. With no `Π` pinned the group is
    /// the stabilizer of `(μ, D)` alone: each element maps a candidate
    /// space row to one of identical VLSI cost whose inner schedule
    /// search has the identical optimal objective (the map `Π ↦ Π·G` is
    /// an objective-preserving bijection of feasible schedules), so whole
    /// orbits share one score and the `LexMax` winner is always its
    /// orbit's representative.
    fn active_quotient(&self) -> Option<Stabilizer> {
        if self.symmetry != SymmetryMode::Quotient
            || self.tie_break != TieBreak::LexMax
            || self.condition != ConditionKind::Exact
            || !self.budget.is_unlimited()
            || self.cancel.is_some()
        {
            return None;
        }
        let stab = crate::canon::problem_stabilizer(self.alg);
        if stab.is_trivial() {
            return None;
        }
        Some(stab)
    }

    /// The canonical outer candidate rows (nonzero, first nonzero entry
    /// positive, lex-ascending), quotient-filtered when one is active.
    /// Returns the rows and the number of non-representatives dropped.
    fn candidate_rows(&self, quotient: Option<&Stabilizer>) -> (Vec<Vec<i64>>, u64) {
        let n = self.alg.dim();
        let mut rows: Vec<Vec<i64>> = Vec::new();
        let mut pruned = 0u64;
        collect_rows_rec(&mut vec![0i64; n], 0, self.entry_bound, &mut |r| {
            if r.iter().all(|&x| x == 0) {
                return;
            }
            if r.iter().find(|&&x| x != 0).is_some_and(|&x| x < 0) {
                return;
            }
            if quotient.is_some_and(|stab| {
                !crate::space_search::is_class_representative(stab, std::slice::from_ref(&r.to_vec()))
            }) {
                pruned += 1;
                return;
            }
            rows.push(r.to_vec());
        });
        (rows, pruned)
    }

    /// Run the inner Procedure 5.1 for one outer row under `cap` (when
    /// finite), producing the row's complete design if one exists within
    /// the cap.
    fn solve_row(
        &self,
        idx: usize,
        row: &[i64],
        cap: i64,
        tel: &mut SearchTelemetry,
    ) -> Result<RowResult, CfmapError> {
        let space = SpaceMap::row(row);
        let mut proc =
            Procedure51::new(self.alg, &space).condition(self.condition).memo(self.memo);
        if let Some(c) = self.cancel {
            proc = proc.cancel_token(c);
        }
        if let Some(d) = self.budget.deadline {
            proc = proc.budget(SearchBudget::until(d));
        }
        if cap < i64::MAX {
            proc = proc.max_objective(cap);
        }
        let inner = proc.solve()?;
        tel.merge(&inner.telemetry);
        tel.budget_limit = inner.telemetry.budget_limit;
        let design = match inner.into_mapping() {
            Some(opt) => {
                let cost = self.space_cost(&space)?;
                let time = opt.total_time;
                let sol = JointOptimal {
                    space,
                    schedule: opt.schedule.clone(),
                    mapping: opt.mapping,
                    total_time: time,
                    space_cost: cost,
                    space_maps_tried: 0, // filled at the end
                };
                Some((time, cost, sol))
            }
            None => None,
        };
        Ok((idx, design))
    }

    /// The incumbent-driven cap the sequential search hands an inner run:
    /// the global objective cap, tightened under the time-first criterion
    /// to the incumbent's time (exclusive for [`TieBreak::FirstFound`] —
    /// only strictly faster rows can win; inclusive for
    /// [`TieBreak::LexMax`] — equal-time rows must still be seen so the
    /// lex-greatest minimal-score row is kept).
    fn sequential_cap(&self, incumbent: Option<i64>) -> i64 {
        let mut cap = self.max_objective.unwrap_or(i64::MAX);
        if self.criterion == JointCriterion::TimeThenSpace {
            if let Some(t) = incumbent {
                let tight = match self.tie_break {
                    TieBreak::FirstFound => t - 1,
                    TieBreak::LexMax => t,
                };
                cap = cap.min(tight);
            }
        }
        cap
    }

    /// Run the search.
    ///
    /// Completion yields [`Certification::Optimal`] (every canonical space
    /// map screened) or [`Certification::Infeasible`] (none admits a
    /// conflict-free schedule under the configured caps). A tripped
    /// [`SearchBudget`] degrades to the best complete design found so far,
    /// tagged [`Certification::BestEffort`]; if the budget trips before
    /// *any* design is found, the error is
    /// [`CfmapError::BudgetExhausted`].
    ///
    /// [`Certification::Optimal`]: crate::budget::Certification::Optimal
    /// [`Certification::Infeasible`]: crate::budget::Certification::Infeasible
    /// [`Certification::BestEffort`]: crate::budget::Certification::BestEffort
    pub fn solve(&self) -> Result<SearchOutcome<JointOptimal>, CfmapError> {
        let quotient = self.active_quotient();
        let (rows, pruned) = self.candidate_rows(quotient.as_ref());

        let mut best: Option<(JointOptimal, (i64, i64))> = None;
        let mut meter = self.budget.start();
        let mut tripped = None;
        // Aggregate telemetry of every inner Procedure 5.1 run; the
        // joint search's own per-space-map effort is `enumerated`.
        let mut tel = SearchTelemetry::default();
        tel.orbits_pruned += pruned;
        crate::metrics::ORBITS_PRUNED.add(pruned);
        for (idx, r) in rows.iter().enumerate() {
            // The charged space map is still screened; the trip takes
            // effect before the *next* one, keeping degradation
            // deterministic for candidate budgets.
            let limit = meter.charge_candidate().or_else(|| self.cancel_tripped());
            let tried = meter.candidates;
            let cap = self.sequential_cap(best.as_ref().map(|(inc, _)| inc.total_time));
            let (_, design) = self.solve_row(idx, r, cap, &mut tel)?;
            // The inner budget carries only time-critical limits
            // (deadline / cancellation), so an inner trip ends the joint
            // search too — even on the last space map, where the
            // between-maps charge below would never see it.
            let inner_limit = tel.budget_limit;
            if let Some((time, cost, mut sol)) = design {
                let score = self.score(time, cost);
                let better = match &best {
                    None => true,
                    // LexMax admits equal scores so the lex-greatest
                    // minimal-score row (the last seen) wins.
                    Some((_, bs)) => match self.tie_break {
                        TieBreak::FirstFound => score < *bs,
                        TieBreak::LexMax => score <= *bs,
                    },
                };
                if better {
                    sol.space_maps_tried = tried;
                    best = Some((sol, score));
                }
            }
            if let Some(limit) = limit.or(inner_limit) {
                tripped = Some(limit);
                break;
            }
        }
        let examined = meter.candidates;
        tel.budget_limit = tripped;
        match (best, tripped) {
            (Some((mut sol, _)), None) => {
                sol.space_maps_tried = examined;
                Ok(SearchOutcome::optimal(sol, examined).with_telemetry(tel))
            }
            (Some((mut sol, _)), Some(_)) => {
                sol.space_maps_tried = examined;
                Ok(SearchOutcome::best_effort(sol, examined).with_telemetry(tel))
            }
            (None, None) => Ok(SearchOutcome::infeasible(examined).with_telemetry(tel)),
            (None, Some(limit)) => {
                Err(CfmapError::BudgetExhausted { limit, candidates_examined: examined })
            }
        }
    }

    /// [`Self::solve`] with the outer space rows fanned over `threads`
    /// workers. A shared atomic best-time bound prunes inner searches
    /// under the time-first criterion — it is never tightened below the
    /// optimal time, so every row that could win is solved intact — and
    /// the collected per-row results are replayed in sequential row
    /// order, making the outcome bit-identical to the sequential search.
    /// Budgeted or cancellable searches delegate to [`Self::solve`] so
    /// degradation semantics stay exactly deterministic.
    pub fn solve_parallel(
        &self,
        threads: usize,
    ) -> Result<SearchOutcome<JointOptimal>, CfmapError> {
        assert!(threads >= 1, "need at least one worker");
        if threads == 1 || !self.budget.is_unlimited() || self.cancel.is_some() {
            return self.solve();
        }
        let quotient = self.active_quotient();
        let (rows, pruned) = self.candidate_rows(quotient.as_ref());
        let mut tel = SearchTelemetry::default();
        tel.orbits_pruned += pruned;
        crate::metrics::ORBITS_PRUNED.add(pruned);

        let cursor = AtomicUsize::new(0);
        let best_time = AtomicI64::new(i64::MAX);
        let panicked = AtomicBool::new(false);
        let error: Mutex<Option<CfmapError>> = Mutex::new(None);
        let results: Mutex<Vec<(RowResult, SearchTelemetry)>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        self.process_row_shard(&rows, &cursor, &best_time, &error, &results);
                    }));
                    if run.is_err() {
                        panicked.store(true, Ordering::SeqCst);
                    }
                });
            }
        });
        if panicked.load(Ordering::SeqCst) {
            return Err(CfmapError::Internal {
                context: "joint solve_parallel worker panicked".to_string(),
            });
        }
        if let Some(err) = error.into_inner().unwrap() {
            return Err(err);
        }
        let mut results = results.into_inner().unwrap();
        // Replay in sequential row order: deterministic telemetry
        // aggregation and a winner identical to the sequential scan's.
        results.sort_by_key(|((idx, _), _)| *idx);
        let mut intact: Vec<(usize, (i64, i64, JointOptimal))> = Vec::new();
        for ((idx, design), rtel) in results {
            tel.merge(&rtel);
            if let Some(d) = design {
                intact.push((idx, d));
            }
        }
        let examined = rows.len() as u64;
        match self.pick_winner(intact) {
            Some(mut sol) => {
                sol.space_maps_tried = examined;
                Ok(SearchOutcome::optimal(sol, examined).with_telemetry(tel))
            }
            None => Ok(SearchOutcome::infeasible(examined).with_telemetry(tel)),
        }
    }

    /// One worker's share of the outer rows: claim rows off the cursor,
    /// solve each inner search under the shared best-time bound, and fold
    /// the results back.
    fn process_row_shard(
        &self,
        rows: &[Vec<i64>],
        cursor: &AtomicUsize,
        best_time: &AtomicI64,
        error: &Mutex<Option<CfmapError>>,
        results: &Mutex<Vec<(RowResult, SearchTelemetry)>>,
    ) {
        loop {
            let idx = cursor.fetch_add(1, Ordering::Relaxed);
            if idx >= rows.len() {
                break;
            }
            let mut cap = self.max_objective.unwrap_or(i64::MAX);
            if self.criterion == JointCriterion::TimeThenSpace {
                // Inclusive bound: the winner's time t* is the minimum
                // over all rows, so capping at the best achieved time so
                // far never truncates a row whose optimum is ≤ t*.
                cap = cap.min(best_time.load(Ordering::Relaxed));
            }
            let mut rtel = SearchTelemetry::default();
            match self.solve_row(idx, &rows[idx], cap, &mut rtel) {
                Ok(result) => {
                    if let (_, Some((time, _, _))) = &result {
                        if self.criterion == JointCriterion::TimeThenSpace {
                            best_time.fetch_min(*time, Ordering::Relaxed);
                        }
                    }
                    results.lock().unwrap().push((result, rtel));
                }
                Err(e) => {
                    *error.lock().unwrap() = Some(e);
                    break;
                }
            }
        }
    }

    /// The sequential scan's winner, recomputed from complete per-row
    /// results. Under the time-first criterion with
    /// [`TieBreak::FirstFound`] the sequential pruning cap (`t − 1`)
    /// blinds the scan to cost differences among equal-time rows, so the
    /// winner is the *first* row achieving the minimal time; in every
    /// other configuration all minimal-score rows are fully scored and
    /// the tie-break picks the first or last of them.
    fn pick_winner(
        &self,
        intact: Vec<(usize, (i64, i64, JointOptimal))>,
    ) -> Option<JointOptimal> {
        let keyed: Vec<(usize, (i64, i64), JointOptimal)> = intact
            .into_iter()
            .map(|(idx, (time, cost, sol))| {
                let key = match (self.criterion, self.tie_break) {
                    (JointCriterion::TimeThenSpace, TieBreak::FirstFound) => (time, 0),
                    _ => self.score(time, cost),
                };
                (idx, key, sol)
            })
            .collect();
        let best_key = keyed.iter().map(|(_, k, _)| *k).min()?;
        let winners = keyed.into_iter().filter(|(_, k, _)| *k == best_key);
        let picked = match self.tie_break {
            TieBreak::FirstFound => winners.min_by_key(|(idx, _, _)| *idx),
            TieBreak::LexMax => winners.max_by_key(|(idx, _, _)| *idx),
        };
        picked.map(|(_, _, sol)| sol)
    }
}

fn collect_rows_rec(row: &mut Vec<i64>, idx: usize, bound: i64, f: &mut impl FnMut(&[i64])) {
    if idx == row.len() {
        f(row);
        return;
    }
    for v in -bound..=bound {
        row[idx] = v;
        collect_rows_rec(row, idx + 1, bound, f);
    }
    row[idx] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use cfmap_model::algorithms;

    #[test]
    fn joint_matmul_beats_fixed_space_design() {
        // With S also free, the μ=4 matmul admits designs at least as
        // good as the paper's S = [1,1,−1] / t = 25.
        let alg = algorithms::matmul(4);
        let sol = JointSearch::new(&alg).solve().unwrap().expect_optimal("solvable");
        assert!(sol.total_time <= 25, "joint optimum {} worse than fixed-S", sol.total_time);
        assert!(oracle::is_conflict_free_by_enumeration(&sol.mapping, &alg.index_set));
        assert!(sol.mapping.has_full_rank());
    }

    #[test]
    fn joint_tc() {
        let alg = algorithms::transitive_closure(3);
        let sol = JointSearch::new(&alg).solve().unwrap().expect_optimal("solvable");
        assert!(sol.total_time <= 3 * (3 + 3) + 1);
        assert!(oracle::is_conflict_free_by_enumeration(&sol.mapping, &alg.index_set));
    }

    #[test]
    fn criteria_trade_time_for_space() {
        let alg = algorithms::matmul(3);
        let fast = JointSearch::new(&alg)
            .criterion(JointCriterion::TimeThenSpace)
            .solve()
            .unwrap()
            .expect_optimal("solvable");
        let small = JointSearch::new(&alg)
            .criterion(JointCriterion::SpaceThenTime)
            .solve()
            .unwrap()
            .expect_optimal("solvable");
        assert!(fast.total_time <= small.total_time);
        assert!(small.space_cost <= fast.space_cost);
    }

    #[test]
    fn weighted_criterion_is_feasible() {
        let alg = algorithms::matmul(3);
        let sol = JointSearch::new(&alg)
            .criterion(JointCriterion::WeightedSum { time_weight: 1, space_weight: 2 })
            .solve()
            .unwrap()
            .expect_optimal("solvable");
        assert!(oracle::is_conflict_free_by_enumeration(&sol.mapping, &alg.index_set));
    }

    #[test]
    fn cap_propagates() {
        let alg = algorithms::matmul(4);
        let out = JointSearch::new(&alg).max_objective(3).solve().unwrap();
        assert_eq!(out.certification, crate::budget::Certification::Infeasible);
        assert!(out.mapping().is_none());
    }

    #[test]
    fn budget_degrades_to_best_space_map_so_far() {
        let alg = algorithms::matmul(3);
        let full = JointSearch::new(&alg).solve().unwrap();
        let total = full.candidates_examined;
        assert!(total > 1, "need a multi-candidate search for this test");
        // A budget big enough to reach at least one complete design but
        // smaller than the full enumeration must degrade, not fail.
        let out = JointSearch::new(&alg)
            .budget(SearchBudget::candidates(total - 1))
            .solve()
            .unwrap();
        assert!(out.certification.is_best_effort(), "got {}", out.certification);
        assert_eq!(out.candidates_examined, total - 1);
        let sol = out.into_mapping().expect("best-effort carries a design");
        assert!(oracle::is_conflict_free_by_enumeration(&sol.mapping, &alg.index_set));
        assert!(sol.mapping.has_full_rank());
    }

    #[test]
    fn outcome_aggregates_inner_search_telemetry() {
        let alg = algorithms::matmul(3);
        let out = JointSearch::new(&alg).solve().unwrap();
        let t = &out.telemetry;
        // Inner Procedure 5.1 effort across all space maps.
        assert!(t.enumerated > 0);
        assert!(t.hnf_computations > 0);
        assert!(t.accepted >= 1, "at least one inner search accepted: {t:?}");
        assert!(t.budget_limit.is_none());
    }

    #[test]
    fn pre_cancelled_joint_search_degrades_promptly() {
        let alg = algorithms::matmul(3);
        let token = CancelToken::new();
        token.cancel();
        let out = JointSearch::new(&alg).cancel_token(&token).solve().unwrap();
        assert!(out.certification.is_best_effort(), "got {}", out.certification);
        assert_eq!(out.telemetry.budget_limit, Some(BudgetLimit::Cancelled));
        // Only the one charged space map was screened (via its fallback).
        assert_eq!(out.candidates_examined, 1);
        let sol = out.into_mapping().expect("fallback design");
        assert!(oracle::is_conflict_free_by_enumeration(&sol.mapping, &alg.index_set));
    }

    #[test]
    fn budget_exhausted_before_any_design_is_an_error() {
        // Entry bound 0 leaves no candidate rows at all, so even one
        // charged candidate cannot exist; use a 1-candidate budget on a
        // search whose first space map admits no schedule instead.
        let alg = algorithms::matmul(4);
        let err = JointSearch::new(&alg)
            .max_objective(3) // nothing is schedulable this fast
            .budget(SearchBudget::candidates(1))
            .solve()
            .unwrap_err();
        assert!(matches!(err, CfmapError::BudgetExhausted { candidates_examined: 1, .. }));
    }

    #[test]
    fn memo_off_is_bit_identical() {
        let alg = algorithms::matmul(3);
        let on = JointSearch::new(&alg).solve().unwrap().expect_optimal("on");
        let off = JointSearch::new(&alg).memo(false).solve().unwrap().expect_optimal("off");
        assert_eq!(on.space, off.space);
        assert_eq!(on.schedule, off.schedule);
        assert_eq!(on.total_time, off.total_time);
        assert_eq!(on.space_cost, off.space_cost);
        assert_eq!(on.space_maps_tried, off.space_maps_tried);
    }

    #[test]
    fn lexmax_winner_is_lex_greatest_minimal_row() {
        let alg = algorithms::matmul(3);
        for criterion in [JointCriterion::TimeThenSpace, JointCriterion::SpaceThenTime] {
            let first = JointSearch::new(&alg)
                .criterion(criterion)
                .solve()
                .unwrap()
                .expect_optimal("ff");
            let lexmax = JointSearch::new(&alg)
                .criterion(criterion)
                .tie_break(TieBreak::LexMax)
                .solve()
                .unwrap()
                .expect_optimal("lm");
            // The LexMax design's score can only match the optimum.
            assert_eq!(lexmax.total_time, first.total_time);
            if criterion == JointCriterion::SpaceThenTime {
                assert_eq!(lexmax.space_cost, first.space_cost);
            }
        }
    }

    #[test]
    fn quotient_and_parallel_match_sequential_lexmax() {
        for alg in [algorithms::matmul(3), algorithms::transitive_closure(3)] {
            for criterion in [JointCriterion::TimeThenSpace, JointCriterion::SpaceThenTime] {
                let base = JointSearch::new(&alg)
                    .criterion(criterion)
                    .tie_break(TieBreak::LexMax)
                    .solve()
                    .unwrap()
                    .expect_optimal("base");
                let quot = JointSearch::new(&alg)
                    .criterion(criterion)
                    .tie_break(TieBreak::LexMax)
                    .symmetry(SymmetryMode::Quotient)
                    .solve()
                    .unwrap()
                    .expect_optimal("quot");
                assert_eq!(quot.space, base.space);
                assert_eq!(quot.schedule, base.schedule);
                assert_eq!(quot.total_time, base.total_time);
                assert_eq!(quot.space_cost, base.space_cost);
                for threads in [2usize, 4] {
                    let par = JointSearch::new(&alg)
                        .criterion(criterion)
                        .tie_break(TieBreak::LexMax)
                        .symmetry(SymmetryMode::Quotient)
                        .solve_parallel(threads)
                        .unwrap()
                        .expect_optimal("par");
                    assert_eq!(par.space, quot.space);
                    assert_eq!(par.schedule, quot.schedule);
                    assert_eq!(par.total_time, quot.total_time);
                    assert_eq!(par.space_cost, quot.space_cost);
                    assert_eq!(par.space_maps_tried, quot.space_maps_tried);
                }
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_firstfound() {
        let alg = algorithms::matmul(3);
        let seq = JointSearch::new(&alg).solve().unwrap().expect_optimal("seq");
        let par = JointSearch::new(&alg).solve_parallel(3).unwrap().expect_optimal("par");
        assert_eq!(par.space, seq.space);
        assert_eq!(par.schedule, seq.schedule);
        assert_eq!(par.total_time, seq.total_time);
        assert_eq!(par.space_cost, seq.space_cost);
        assert_eq!(par.space_maps_tried, seq.space_maps_tried);
    }
}
