//! Problem 6.2 — optimal conflict-free mapping with **both** `S` and `Π`
//! free (the paper's second future-work problem, Section 6).
//!
//! *"Given an n-dimensional uniform dependence algorithm and a
//! (k−1)-dimensional processor array, find a conflict-free mapping matrix
//! `T ∈ Z^{k×n}` such that a certain criterion is optimized."*
//!
//! The search composes the two single-variable procedures: enumerate
//! canonical space maps (as in Problem 6.1) and run Procedure 5.1 under
//! each, ranking complete designs by the chosen criterion. Pruning: under
//! the time-first criterion, once some design achieves time `t*`, later
//! space maps only search schedules with objective `< t* − 1`.

use crate::conditions::ConditionKind;
use crate::mapping::{MappingMatrix, SpaceMap};
use crate::search::Procedure51;
use cfmap_intlin::Int;
use cfmap_model::{LinearSchedule, Uda};

/// What "optimal" means for a complete design (Problem 6.2's "certain
/// criterion").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JointCriterion {
    /// Minimize total time; break ties by VLSI cost (sites + wires).
    TimeThenSpace,
    /// Minimize VLSI cost; break ties by total time.
    SpaceThenTime,
    /// Minimize `time·tw + cost·sw`.
    WeightedSum {
        /// Weight on total execution time.
        time_weight: i64,
        /// Weight on VLSI cost.
        space_weight: i64,
    },
}

/// A complete Problem 6.2 solution.
#[derive(Clone, Debug)]
pub struct JointOptimal {
    /// The chosen space map.
    pub space: SpaceMap,
    /// The chosen schedule.
    pub schedule: LinearSchedule,
    /// The full mapping.
    pub mapping: MappingMatrix,
    /// Total execution time.
    pub total_time: i64,
    /// VLSI cost (sites + wire length, as in Problem 6.1).
    pub space_cost: i64,
    /// Space maps tried.
    pub space_maps_tried: u64,
}

/// Problem 6.2 search over 1-row space maps.
pub struct JointSearch<'a> {
    alg: &'a Uda,
    entry_bound: i64,
    criterion: JointCriterion,
    condition: ConditionKind,
    max_objective: Option<i64>,
}

impl<'a> JointSearch<'a> {
    /// Start a joint search for `alg` targeting a linear array.
    pub fn new(alg: &'a Uda) -> Self {
        JointSearch {
            alg,
            entry_bound: 1,
            criterion: JointCriterion::TimeThenSpace,
            condition: ConditionKind::Exact,
            max_objective: None,
        }
    }

    /// Bound on `|s_i|` (default 1).
    pub fn entry_bound(mut self, bound: i64) -> Self {
        self.entry_bound = bound;
        self
    }

    /// The optimization criterion (default: time, then space).
    pub fn criterion(mut self, c: JointCriterion) -> Self {
        self.criterion = c;
        self
    }

    /// Conflict test (default exact).
    pub fn condition(mut self, kind: ConditionKind) -> Self {
        self.condition = kind;
        self
    }

    /// Cap each inner schedule search.
    pub fn max_objective(mut self, cap: i64) -> Self {
        self.max_objective = Some(cap);
        self
    }

    fn space_cost(&self, space: &SpaceMap) -> i64 {
        // Sites: bounding span of the 1-row image; wires: Σ‖S·d̄ᵢ‖₁.
        let row = space.as_mat().row(0);
        let (mut lo, mut hi) = (Int::zero(), Int::zero());
        for (i, c) in row.iter().enumerate() {
            let m = Int::from(self.alg.index_set.mu_i(i));
            if c.is_positive() {
                hi += &(c * &m);
            } else {
                lo += &(c * &m);
            }
        }
        let sites = (&hi - &lo).to_i64().expect("span fits i64") + 1;
        let wires: i64 = (0..self.alg.num_deps())
            .map(|i| row.dot(&self.alg.deps.dep(i)).abs().to_i64().expect("fits"))
            .sum();
        sites + wires
    }

    fn score(&self, time: i64, cost: i64) -> (i64, i64) {
        match self.criterion {
            JointCriterion::TimeThenSpace => (time, cost),
            JointCriterion::SpaceThenTime => (cost, time),
            JointCriterion::WeightedSum { time_weight, space_weight } => {
                (time * time_weight + cost * space_weight, 0)
            }
        }
    }

    /// Run the search.
    pub fn solve(&self) -> Option<JointOptimal> {
        let n = self.alg.dim();
        let mut rows: Vec<Vec<i64>> = Vec::new();
        collect_rows_rec(&mut vec![0i64; n], 0, self.entry_bound, &mut |r| {
            if r.iter().all(|&x| x == 0) {
                return;
            }
            if r.iter().find(|&&x| x != 0).is_some_and(|&x| x < 0) {
                return;
            }
            rows.push(r.to_vec());
        });

        let mut best: Option<(JointOptimal, (i64, i64))> = None;
        let mut tried = 0u64;
        for r in &rows {
            tried += 1;
            let space = SpaceMap::row(r);
            let mut proc = Procedure51::new(self.alg, &space).condition(self.condition);
            if let Some(cap) = self.max_objective {
                proc = proc.max_objective(cap);
            }
            // Time-first pruning: no point searching past the incumbent.
            if self.criterion == JointCriterion::TimeThenSpace {
                if let Some((ref inc, _)) = best {
                    proc = proc.max_objective(
                        (inc.total_time - 1).min(self.max_objective.unwrap_or(i64::MAX)),
                    );
                }
            }
            let Some(opt) = proc.solve() else { continue };
            let cost = self.space_cost(&space);
            let score = self.score(opt.total_time, cost);
            let better = match &best {
                None => true,
                Some((_, bs)) => score < *bs,
            };
            if better {
                best = Some((
                    JointOptimal {
                        space: space.clone(),
                        schedule: opt.schedule.clone(),
                        mapping: opt.mapping,
                        total_time: opt.total_time,
                        space_cost: cost,
                        space_maps_tried: tried,
                    },
                    score,
                ));
            }
        }
        best.map(|(mut sol, _)| {
            sol.space_maps_tried = tried;
            sol
        })
    }
}

fn collect_rows_rec(row: &mut Vec<i64>, idx: usize, bound: i64, f: &mut impl FnMut(&[i64])) {
    if idx == row.len() {
        f(row);
        return;
    }
    for v in -bound..=bound {
        row[idx] = v;
        collect_rows_rec(row, idx + 1, bound, f);
    }
    row[idx] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use cfmap_model::algorithms;

    #[test]
    fn joint_matmul_beats_fixed_space_design() {
        // With S also free, the μ=4 matmul admits designs at least as
        // good as the paper's S = [1,1,−1] / t = 25.
        let alg = algorithms::matmul(4);
        let sol = JointSearch::new(&alg).solve().expect("solvable");
        assert!(sol.total_time <= 25, "joint optimum {} worse than fixed-S", sol.total_time);
        assert!(oracle::is_conflict_free_by_enumeration(&sol.mapping, &alg.index_set));
        assert!(sol.mapping.has_full_rank());
    }

    #[test]
    fn joint_tc() {
        let alg = algorithms::transitive_closure(3);
        let sol = JointSearch::new(&alg).solve().expect("solvable");
        assert!(sol.total_time <= 3 * (3 + 3) + 1);
        assert!(oracle::is_conflict_free_by_enumeration(&sol.mapping, &alg.index_set));
    }

    #[test]
    fn criteria_trade_time_for_space() {
        let alg = algorithms::matmul(3);
        let fast = JointSearch::new(&alg)
            .criterion(JointCriterion::TimeThenSpace)
            .solve()
            .unwrap();
        let small = JointSearch::new(&alg)
            .criterion(JointCriterion::SpaceThenTime)
            .solve()
            .unwrap();
        assert!(fast.total_time <= small.total_time);
        assert!(small.space_cost <= fast.space_cost);
    }

    #[test]
    fn weighted_criterion_is_feasible() {
        let alg = algorithms::matmul(3);
        let sol = JointSearch::new(&alg)
            .criterion(JointCriterion::WeightedSum { time_weight: 1, space_weight: 2 })
            .solve()
            .unwrap();
        assert!(oracle::is_conflict_free_by_enumeration(&sol.mapping, &alg.index_set));
    }

    #[test]
    fn cap_propagates() {
        let alg = algorithms::matmul(4);
        assert!(JointSearch::new(&alg).max_objective(3).solve().is_none());
    }
}
