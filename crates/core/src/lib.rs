//! The conflict-free mapping theory of Shang & Fortes (ICPP 1990).
//!
//! This crate implements the paper's primary contribution: identifying and
//! optimizing linear mappings `τ(j̄) = T·j̄`, `T = [S; Π] ∈ Z^{k×n}`, of
//! `n`-dimensional uniform dependence algorithms onto `(k−1)`-dimensional
//! processor arrays **without computational conflicts** — no two index
//! points may land on the same (processor, time) pair.
//!
//! Map of the theory to modules:
//!
//! | Paper | Module |
//! |---|---|
//! | Definition 2.2 (mapping `T = [S; Π]`, conditions 1–4) | [`mapping`] |
//! | Definition 2.3 + Theorem 2.2 (conflict vectors, feasibility) | [`conflict`] |
//! | Equation 3.2 / Theorem 3.1 (`k = n−1` closed form) | [`conflict`] |
//! | Theorems 4.3–4.8 (HNF-based conditions, general `k`) | [`conditions`] |
//! | brute-force conflict detection (what the paper's conditions replace) | [`oracle`] |
//! | Procedure 5.1 (enumerative optimal search) | [`search`] |
//! | Formulations (5.1)–(5.6) (integer programming) | [`ilp`] |
//! | Proposition 8.1 (closed-form `U` for `T ∈ Z^{3×5}`) | [`prop81`] |
//! | Prior-work baselines [22], [23] | [`baselines`] |
//! | Problem 6.1 (space-optimal mapping — the paper's future work) | [`space_search`] |
//! | Problem 6.2 (joint `S`, `Π` optimization — future work) | [`joint_search`] |
//! | search effort / observability counters (not in the paper) | [`metrics`] |
//! | affine-in-μ schedule families & certificates (not in the paper) | [`family`] |
//! | resource budgets & Pareto frontiers (not in the paper) | [`pareto`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod budget;
pub mod canon;
pub mod conditions;
pub mod conflict;
pub mod diagnose;
pub mod error;
pub mod family;
pub mod ilp;
pub mod joint_search;
pub mod mapping;
pub mod metrics;
pub mod oracle;
pub mod pareto;
pub mod prop81;
pub mod schedulability;
pub mod search;
pub mod space_search;

pub use budget::{
    BudgetMeter, CancelToken, Certification, Deadline, SearchBudget, SearchOutcome, SolveRoute,
};
pub use canon::{
    canon_fingerprint, canonicalize, problem_stabilizer, stabilizer, Canonicalization,
    CanonicalProblem, SignedPerm, Stabilizer,
};
pub use conflict::{ConflictAnalysis, Feasibility, MemoProbe};
pub use error::{BudgetLimit, CfmapError};
pub use family::{
    certify, instantiate, CertifyError, Discharge, FamilyCertificate, FamilyInstance, FamilyKey,
    FamilyTemplate, InstantiatedDesign, ProofObligation,
};
pub use diagnose::{diagnose, Check, MappingDiagnosis};
pub use mapping::{InterconnectionPrimitives, MappingMatrix, SpaceMap};
pub use metrics::{ConditionRule, SearchTelemetry};
pub use pareto::{BandwidthProbe, ParetoFrontier, ParetoPoint, ParetoSearch, ResourceModel};
pub use schedulability::{find_valid_schedule, is_schedulable};
pub use search::{HybridPolicy, OptimalMapping, Procedure51, SymmetryMode, TieBreak};
pub use space_search::{SpaceOptimalMapping, SpaceSearch};
pub use joint_search::{JointCriterion, JointOptimal, JointSearch};
